(** Quickstart: create tables, load rows, and run the paper's section-4
    query, watching it move through the whole Corona pipeline —
    including the Figure 2 rewrite (subquery to join, then operation
    merging). *)

let section title = Printf.printf "\n=== %s ===\n" title

let () =
  let db = Starburst.create () in
  let run s = print_endline (Starburst.render_result (Starburst.run db s)) in

  section "DDL (note the declared UNIQUE key, which Rule 1 exploits)";
  run "CREATE TABLE quotations (partno INT NOT NULL, price FLOAT, order_qty INT)";
  run "CREATE TABLE inventory (partno INT NOT NULL UNIQUE, onhand_qty INT, type STRING)";

  section "Load data";
  run
    "INSERT INTO quotations VALUES (1, 10.5, 100), (2, 20.0, 5), (3, 7.25, 50), \
     (4, 99.0, 2), (1, 11.0, 30)";
  run
    "INSERT INTO inventory VALUES (1, 20, 'CPU'), (2, 500, 'CPU'), (3, 10, \
     'DISK'), (4, 1, 'CPU')";
  run "ANALYZE";

  section "The paper's query (section 4)";
  let q =
    "SELECT partno, price, order_qty FROM quotations Q1 WHERE Q1.partno IN \
     (SELECT partno FROM inventory Q3 WHERE Q3.onhand_qty < Q1.order_qty AND \
     Q3.type = 'CPU')"
  in
  print_endline q;
  run q;

  section "EXPLAIN: QGM before/after rewrite (Figure 2) and the plan";
  run ("EXPLAIN " ^ q);

  section "Host variables";
  Starburst.bind_host db "min_qty" (Sb_storage.Value.Int 25);
  run "SELECT partno, order_qty FROM quotations WHERE order_qty >= :min_qty";

  section "Execution counters for the last query";
  let c = Starburst.counters db in
  Printf.printf "tuples scanned: %d, output rows: %d\n"
    c.Sb_qes.Exec.c_scanned c.Sb_qes.Exec.c_output;

  section "Semantic analysis: EXPLAIN ANALYSIS (inferred keys, bounds, lints)";
  let join =
    "SELECT q.partno, count(*) FROM quotations q, inventory i WHERE q.partno \
     = i.partno GROUP BY q.partno"
  in
  print_endline join;
  run ("EXPLAIN ANALYSIS " ^ join);

  section "The linter proves the second conjunct redundant";
  (* keep in sync with the "lint: examples query" test *)
  let redundant =
    "SELECT partno, price FROM quotations WHERE partno = 1 AND partno >= 1"
  in
  print_endline redundant;
  run ("EXPLAIN ANALYSIS " ^ redundant)
