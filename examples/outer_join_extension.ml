(** The paper's running extension example, end to end: registering left
    outer join as a database-customizer extension and watching it flow
    through every layer — PF quantifiers in QGM, extension-specific
    rewrite rules (predicate push-through and outer-join reduction), a
    plan with the new join kind, and execution. *)

let section title = Printf.printf "\n=== %s ===\n" title

let () =
  let db = Starburst.create () in
  let run s = print_endline (Starburst.render_result (Starburst.run db s)) in

  section "Schema and data";
  run "CREATE TABLE dept (id INT NOT NULL UNIQUE, dname STRING, region STRING)";
  run "CREATE TABLE emp (eid INT, dept INT, salary FLOAT)";
  run
    "INSERT INTO dept VALUES (1,'eng','west'),(2,'sales','east'),\
     (3,'legal','west'),(4,'empty','east')";
  run
    "INSERT INTO emp VALUES (10,1,100.0),(11,1,120.0),(12,2,90.0),(13,1,95.0),\
     (14,3,150.0)";
  run "ANALYZE";

  section "Without the extension, the syntax is rejected";
  (try ignore (Starburst.run db "SELECT d.dname FROM dept d LEFT OUTER JOIN emp e ON d.id = e.dept")
   with Starburst.Error e -> Printf.printf "rejected: %s\n" e.Starburst.Err.err_msg);

  section "Install the extension (one call; see Sb_extensions.Outer_join)";
  Sb_extensions.Outer_join.install db;
  print_endline "installed: PF quantifier type, rewrite rules, plan handler, join kind";

  section "Preserved rows appear with NULLs";
  run
    "SELECT d.dname, e.eid, e.salary FROM dept d LEFT OUTER JOIN emp e ON \
     d.id = e.dept ORDER BY 1, 2";

  section "QGM: the preserved side ranges through a PF setformer";
  run
    "EXPLAIN QGM SELECT d.dname, e.salary FROM dept d LEFT OUTER JOIN emp e \
     ON d.id = e.dept";

  section
    "Extension rewrite 1: predicates on preserved columns push THROUGH the \
     outer join";
  run
    "EXPLAIN REWRITE SELECT d.dname, e.salary FROM dept d LEFT OUTER JOIN emp \
     e ON d.id = e.dept WHERE d.region = 'west'";

  section
    "Extension rewrite 2: a null-intolerant predicate on the null-producing \
     side reduces the outer join to a regular join (PF becomes F)";
  run
    "EXPLAIN REWRITE SELECT d.dname FROM dept d LEFT OUTER JOIN emp e ON d.id \
     = e.dept WHERE e.salary > 100";

  section "The plan uses the extension join kind (and the hash variant)";
  run
    "EXPLAIN PLAN SELECT d.dname, e.salary FROM dept d LEFT OUTER JOIN emp e \
     ON d.id = e.dept";

  section "Right outer join is normalized to left outer";
  run
    "SELECT d.dname, e.eid FROM emp e RIGHT OUTER JOIN dept d ON d.id = \
     e.dept ORDER BY 1, 2"
