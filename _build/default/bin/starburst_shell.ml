(** The Starburst interactive shell and script runner.

    {v
    starburst_shell                 # interactive REPL
    starburst_shell script.sql      # run a script
    starburst_shell -e "SELECT 1"   # one statement   (not valid: needs FROM)
    v}

    All bundled extensions (outer join, spatial, sampling, MAJORITY,
    statistics aggregates) are installed unless [--bare] is given. *)

let install_extensions db =
  Sb_extensions.Outer_join.install db;
  Sb_extensions.Spatial.install db;
  Sb_extensions.Sampling.install db;
  Sb_extensions.Majority.install db;
  Sb_extensions.Stats_fns.install db

let print_result db r =
  print_endline
    (Starburst.render_result
       ~registry:db.Starburst.Corona.catalog.Sb_storage.Catalog.datatypes r)

let run_one db text =
  match Starburst.run db text with
  | r -> print_result db r
  | exception Starburst.Error msg -> Printf.printf "error: %s\n" msg
  | exception Sb_qgm.Builder.Semantic_error msg -> Printf.printf "error: %s\n" msg
  | exception Sb_optimizer.Generator.Unsupported msg ->
    Printf.printf "unsupported: %s\n" msg
  | exception Sb_qes.Exec.Runtime_error msg -> Printf.printf "runtime error: %s\n" msg
  | exception Sb_storage.Value.Type_error msg -> Printf.printf "type error: %s\n" msg

let run_script db text =
  List.iter
    (fun stmt -> run_one db (Sb_hydrogen.Pretty.statement_to_string stmt))
    (Sb_hydrogen.Parser.script text)

let repl db =
  print_endline "Starburst shell — end statements with ';', \\q to quit.";
  let buf = Buffer.create 256 in
  let rec loop () =
    print_string (if Buffer.length buf = 0 then "starburst> " else "       ...> ");
    match read_line () with
    | exception End_of_file -> ()
    | "\\q" | "\\quit" -> ()
    | line ->
      Buffer.add_string buf line;
      Buffer.add_char buf '\n';
      let text = Buffer.contents buf in
      if String.contains line ';' then begin
        Buffer.clear buf;
        (try run_script db text
         with
        | Sb_hydrogen.Parser.Parse_error (msg, _) -> Printf.printf "parse error: %s\n" msg
        | Sb_hydrogen.Lexer.Lex_error (msg, _) -> Printf.printf "lex error: %s\n" msg)
      end;
      loop ()
  in
  loop ()

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let bare = List.mem "--bare" args in
  let args = List.filter (fun a -> a <> "--bare") args in
  let db = Starburst.create () in
  if not bare then install_extensions db;
  match args with
  | [] -> repl db
  | [ "-e"; stmt ] -> run_one db stmt
  | [ path ] ->
    let ic = open_in path in
    let n = in_channel_length ic in
    let text = really_input_string ic n in
    close_in ic;
    (try run_script db text
     with
    | Sb_hydrogen.Parser.Parse_error (msg, _) -> Printf.printf "parse error: %s\n" msg
    | Sb_hydrogen.Lexer.Lex_error (msg, _) -> Printf.printf "lex error: %s\n" msg)
  | _ ->
    prerr_endline "usage: starburst_shell [--bare] [script.sql | -e STATEMENT]";
    exit 2
