(** Experiments E9–E13: the QES's evaluate-on-demand subquery cache, the
    OR operator, access-method attachments (B-tree/R-tree crossover),
    the fixed-length storage-manager extension, and the cost of adding
    the outer-join extension. *)

open Bench_util
module Plan = Sb_optimizer.Plan
module Exec = Sb_qes.Exec
module Star = Sb_optimizer.Star
module Generator = Sb_optimizer.Generator

(* ------------------------------------------------------------------ *)
(* E9: evaluate-on-demand                                              *)
(* ------------------------------------------------------------------ *)

let e9 () =
  header "E9. Evaluate-on-demand: subquery re-evaluations with/without the cache";
  let query =
    "SELECT count(*) FROM quotations q WHERE EXISTS (SELECT * FROM inventory \
     i WHERE i.partno = q.partno AND i.onhand_qty < 500)"
  in
  let rows =
    List.map
      (fun (n_parts, fanout) ->
        let db = parts_db ~n_parts ~fanout () in
        ignore (Starburst.run db "SET rewrite = off");
        let exec_db = db.Starburst.Corona.exec_db in
        exec_db.Exec.x_demand_cache <- false;
        let t_nocache = time_ms (fun () -> run_q db query) in
        let evals_nocache = (counters db).Exec.c_sub_evals in
        exec_db.Exec.x_demand_cache <- true;
        let t_cache = time_ms (fun () -> run_q db query) in
        let c = counters db in
        [ itos (n_parts * fanout); itos evals_nocache; ms t_nocache;
          itos c.Exec.c_sub_evals; itos c.Exec.c_sub_cache_hits; ms t_cache ])
      [ (100, 20); (400, 20) ]
  in
  table
    ~cols:
      [ "outer rows"; "evals (no cache)"; "ms"; "evals (cache)"; "hits"; "ms" ]
    rows;
  print_endline
    "  (correlation values repeat across outer tuples, so the uniform\n\
    \   evaluate-on-demand mechanism re-evaluates only on changes -- sec. 7)"

(* ------------------------------------------------------------------ *)
(* E10: the OR operator                                                *)
(* ------------------------------------------------------------------ *)

let e10 () =
  header "E10. The OR operator vs naive disjunction evaluation (paper sec. 7)";
  let db = parts_db ~n_parts:2000 ~fanout:5 () in
  let query =
    "SELECT count(*) FROM quotations q WHERE q.price > 95 OR q.partno = \
     (SELECT partno FROM inventory WHERE onhand_qty = 1 AND type = 'CPU')"
  in
  (* the optimizer compiles this to the OR operator; build the naive
     variant by folding the disjuncts into one FILTER expression, whose
     evaluator computes both sides (3VL OR needs both unless the first
     is TRUE and our naive evaluation is eager) *)
  let plan = Starburst.compile_text db query in
  let rec naive (p : Plan.plan) : Plan.plan =
    let p = { p with Plan.inputs = List.map naive p.Plan.inputs } in
    match p.Plan.op with
    | Plan.Or_filter (d :: rest) ->
      let folded =
        List.fold_left (fun acc e -> Plan.RBin (Sb_hydrogen.Ast.Or, acc, e)) d rest
      in
      { p with Plan.op = Plan.Filter [ folded ] }
    | _ -> p
  in
  let naive_plan = naive plan in
  let t_or = time_ms ~reps:5 (fun () -> Starburst.run_plan db plan) in
  let or_evals = (counters db).Exec.c_sub_evals + (counters db).Exec.c_sub_cache_hits in
  let t_naive = time_ms ~reps:5 (fun () -> Starburst.run_plan db naive_plan) in
  let naive_evals = (counters db).Exec.c_sub_evals + (counters db).Exec.c_sub_cache_hits in
  table
    ~cols:[ "variant"; "time (ms)"; "subquery lookups" ]
    [
      [ "OR operator (branch bypass)"; ms t_or; itos or_evals ];
      [ "naive single predicate"; ms t_naive; itos naive_evals ];
    ];
  check "OR operator never does more subquery lookups" (or_evals <= naive_evals)

(* ------------------------------------------------------------------ *)
(* E11: access-method attachments                                      *)
(* ------------------------------------------------------------------ *)

let e11 () =
  header "E11. Access methods: B-tree vs scan crossover over selectivity";
  let db = Starburst.create () in
  ignore (Starburst.run db "CREATE TABLE big (k INT NOT NULL UNIQUE, grp INT, pay INT)");
  insert_batch db "big"
    (List.init 20000 (fun i -> Printf.sprintf "(%d, %d, %d)" i (i mod 100) (i * 7)));
  ignore (Starburst.run db "ANALYZE");
  let query pct =
    Printf.sprintf "SELECT count(*) FROM big WHERE k < %d" (20000 * pct / 100)
  in
  (* scan times (no index yet) *)
  let scan_times = List.map (fun pct -> time_ms (fun () -> run_q db (query pct))) [ 1; 5; 20; 60 ] in
  ignore (Starburst.run db "CREATE INDEX big_k ON big (k)");
  ignore (Starburst.run db "ANALYZE");
  let rows =
    List.map2
      (fun pct t_scan ->
        let t_idx = time_ms (fun () -> run_q db (query pct)) in
        let plan = Starburst.compile_text db (query pct) in
        let rec ops (p : Plan.plan) = p.Plan.op :: List.concat_map ops p.Plan.inputs in
        let chose =
          if List.exists (function Plan.Idx_access _ -> true | _ -> false) (ops plan)
          then "index"
          else "scan"
        in
        [ Printf.sprintf "%d%%" pct; ms t_scan; ms t_idx; chose ])
      [ 1; 5; 20; 60 ] scan_times
  in
  table ~cols:[ "selectivity"; "scan (ms)"; "with index (ms)"; "optimizer chose" ] rows;
  (* R-tree *)
  print_newline ();
  let db2 = Starburst.create () in
  Sb_extensions.Spatial.install db2;
  ignore (Starburst.run db2 "CREATE TABLE geo (id INT, loc BOX)");
  insert_batch db2 "geo"
    (List.init 5000 (fun i ->
         let x = float_of_int (i mod 100) *. 10.0 in
         let y = float_of_int (i / 100) *. 10.0 in
         Printf.sprintf "(%d, make_box(%g, %g, %g, %g))" i x y (x +. 5.0) (y +. 5.0)));
  ignore (Starburst.run db2 "ANALYZE");
  let sq = "SELECT count(*) FROM geo WHERE overlaps(loc, make_box(100, 100, 160, 160))" in
  let t_scan = time_ms (fun () -> run_q db2 sq) in
  ignore (Starburst.run db2 "CREATE INDEX geo_loc ON geo (loc) USING rtree");
  ignore (Starburst.run db2 "ANALYZE");
  let t_rtree = time_ms (fun () -> run_q db2 sq) in
  table
    ~cols:[ "spatial query (5000 boxes)"; "scan (ms)"; "r-tree (ms)"; "speedup" ]
    [ [ "overlaps window"; ms t_scan; ms t_rtree; ratio t_scan t_rtree ] ]

(* ------------------------------------------------------------------ *)
(* E12: storage-manager extension                                      *)
(* ------------------------------------------------------------------ *)

let e12 () =
  header "E12. Storage managers: generic heap vs the fixed-length extension";
  let bench storage =
    let db = Starburst.create () in
    ignore
      (Starburst.run db
         (Printf.sprintf "CREATE TABLE t (a INT NOT NULL, b FLOAT, c INT) USING %s" storage));
    let t_insert =
      time_ms ~reps:1 (fun () ->
          insert_batch db "t"
            (List.init 20000 (fun i -> Printf.sprintf "(%d, %f, %d)" i (float_of_int i) (i * 2))))
    in
    let t_scan = time_ms (fun () -> run_q db "SELECT count(*) FROM t WHERE c % 2 = 0") in
    let t_update =
      time_ms ~reps:1 (fun () ->
          ignore (Starburst.run db "UPDATE t SET b = b + 1 WHERE a % 100 = 0"))
    in
    (* point fetches through stable record ids *)
    let tab =
      Option.get (Sb_storage.Catalog.find_table db.Starburst.Corona.catalog "t")
    in
    let rids = List.of_seq (Seq.map fst (Sb_storage.Table_store.scan tab)) in
    let t_fetch =
      time_ms (fun () ->
          List.iter (fun rid -> ignore (Sb_storage.Table_store.fetch tab rid)) rids)
    in
    (t_insert, t_scan, t_update, t_fetch)
  in
  let hi, hs, hu, hf = bench "heap" in
  let fi, fs, fu, ff = bench "fixed" in
  table
    ~cols:
      [ "manager"; "insert 20k (ms)"; "scan (ms)"; "update 200 (ms)";
        "fetch 20k (ms)" ]
    [
      [ "heap (slotted pages)"; ms hi; ms hs; ms hu; ms hf ];
      [ "fixed (dense cells)"; ms fi; ms fs; ms fu; ms ff ];
    ]

(* ------------------------------------------------------------------ *)
(* E13: the cost of an extension                                       *)
(* ------------------------------------------------------------------ *)

let e13 () =
  header "E13. Adding left outer join as an extension: what it took";
  let db = parts_db ~n_parts:500 ~fanout:3 () in
  ignore (Starburst.run db "CREATE TABLE extras (partno INT, note STRING)");
  insert_batch db "extras"
    (List.init 100 (fun i -> Printf.sprintf "(%d, 'n%d')" (i * 3) i));
  let rules_before = List.length (Sb_rewrite.Rule.all db.Starburst.Corona.rules) in
  let alts_before = Star.alternative_count db.Starburst.Corona.optimizer.Generator.sctx in
  let loj =
    "SELECT count(*) FROM inventory i LEFT OUTER JOIN extras x ON i.partno = \
     x.partno"
  in
  let rejected = match Starburst.run db loj with
    | _ -> false
    | exception _ -> true
  in
  Sb_extensions.Outer_join.install db;
  let rules_after = List.length (Sb_rewrite.Rule.all db.Starburst.Corona.rules) in
  let alts_after = Star.alternative_count db.Starburst.Corona.optimizer.Generator.sctx in
  let t = time_ms (fun () -> run_q db loj) in
  table
    ~cols:[ "registration"; "before"; "after" ]
    [
      [ "rewrite rules"; itos rules_before; itos rules_after ];
      [ "STAR alternatives"; itos alts_before; itos alts_after ];
      [ "builder operations"; "0"; "1 (left_outer_join)" ];
      [ "QES join kinds"; "0"; "1 (left_outer)" ];
    ];
  check "syntax rejected before install" rejected;
  Printf.printf "  outer-join query after install: %.2f ms\n" t;
  (* extension rules compose with base rules: outer join reduced to
     inner when a null-intolerant predicate allows, unlocking base
     merge + join ordering *)
  let g =
    Starburst.build_qgm db
      (Sb_hydrogen.Parser.query_text
         (loj ^ " WHERE x.note LIKE 'n%'"))
  in
  let stats = Starburst.rewrite db g in
  check "extension rule composes with base rules (reduction fired)"
    (List.mem_assoc "oj_reduce_to_inner" stats.Sb_rewrite.Engine.firings)

(* ------------------------------------------------------------------ *)
(* E14: distributed joins and the Bloom-join STAR                      *)
(* ------------------------------------------------------------------ *)

let e14 () =
  header "E14. Distributed join: SHIP whole inner vs Bloom-reduced inner [MACK86]";
  let make_db () =
    let db = Starburst.create () in
    ignore (Starburst.run db "CREATE TABLE local_small (k INT NOT NULL, tag STRING)");
    ignore (Starburst.run db "CREATE TABLE remote_big (k INT NOT NULL, payload INT)");
    insert_batch db "local_small"
      (List.init 50 (fun i -> Printf.sprintf "(%d, 't%d')" (i * 100) i));
    insert_batch db "remote_big"
      (List.init 20000 (fun i -> Printf.sprintf "(%d, %d)" i (i * 3)));
    ignore (Starburst.run db "ANALYZE");
    Starburst.Extension.set_site_map db (fun t ->
        if t = "remote_big" then "east" else "local");
    db
  in
  let query =
    "SELECT count(*) FROM local_small s, remote_big b WHERE s.k = b.k"
  in
  let run db =
    let t = time_ms (fun () -> run_q db query) in
    (t, (counters db).Exec.c_shipped)
  in
  let db1 = make_db () in
  let t_base, shipped_base = run db1 in
  let db2 = make_db () in
  Sb_extensions.Bloom_join.install db2;
  let t_bloom, shipped_bloom = run db2 in
  let rec ops (p : Plan.plan) = p.Plan.op :: List.concat_map ops p.Plan.inputs in
  let plan2 = Starburst.compile_text db2 query in
  table
    ~cols:[ "plan"; "time (ms)"; "tuples shipped" ]
    [
      [ "ship whole inner"; ms t_base; itos shipped_base ];
      [ "bloom-reduced inner"; ms t_bloom; itos shipped_bloom ];
    ];
  check "bloom ships (far) fewer tuples" (shipped_bloom * 10 < shipped_base);
  check "optimizer chose the Bloom LOLEPOP"
    (List.exists (function Plan.Bloom_filter _ -> true | _ -> false) (ops plan2));
  check "results agree"
    (Starburst.query db1 query = Starburst.query db2 query)
