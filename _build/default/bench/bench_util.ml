(** Shared machinery for the experiment harness: timing, table
    rendering, and workload generators. *)

open Sb_storage

(* --- timing --- *)

(** Median-of-[reps] wall-clock milliseconds. *)
let time_ms ?(reps = 3) f =
  let runs =
    List.init reps (fun _ ->
        let t0 = Unix.gettimeofday () in
        ignore (f ());
        (Unix.gettimeofday () -. t0) *. 1000.0)
  in
  List.nth (List.sort Float.compare runs) (reps / 2)

(* --- output --- *)

let header title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '-')

let table ~cols rows =
  let all = cols :: rows in
  let n = List.length cols in
  let widths = Array.make n 0 in
  List.iter
    (List.iteri (fun i cell ->
         if i < n then widths.(i) <- max widths.(i) (String.length cell)))
    all;
  let render r =
    String.concat "  "
      (List.mapi
         (fun i cell -> Printf.sprintf "%-*s" widths.(i) cell)
         r)
  in
  print_endline (render cols);
  print_endline
    (String.concat "  " (Array.to_list (Array.map (fun w -> String.make w '-') widths)));
  List.iter (fun r -> print_endline (render r)) rows

let ms v = Printf.sprintf "%.2f" v
let itos = string_of_int
let ratio a b = if b = 0.0 then "-" else Printf.sprintf "%.1fx" (a /. b)

(* --- workloads --- *)

let insert_batch db table rows =
  (* chunked insert to keep statements manageable *)
  let rec go = function
    | [] -> ()
    | rows ->
      let chunk = List.filteri (fun i _ -> i < 500) rows in
      let rest = List.filteri (fun i _ -> i >= 500) rows in
      ignore
        (Starburst.run db
           (Printf.sprintf "INSERT INTO %s VALUES %s" table (String.concat "," chunk)));
      go rest
  in
  go rows

(** The parts/supply workload at a size: [n_parts] unique parts,
    [fanout] quotations per part. *)
let parts_db ~n_parts ~fanout () =
  let db = Starburst.create () in
  ignore
    (Starburst.run db
       "CREATE TABLE inventory (partno INT NOT NULL UNIQUE, onhand_qty INT, type STRING)");
  ignore
    (Starburst.run db
       "CREATE TABLE quotations (partno INT NOT NULL, price FLOAT, order_qty INT, supplier STRING)");
  let rng = Random.State.make [| 42 |] in
  insert_batch db "inventory"
    (List.init n_parts (fun k ->
         Printf.sprintf "(%d, %d, '%s')" k
           (Random.State.int rng 1000)
           (if k mod 3 = 0 then "CPU" else if k mod 3 = 1 then "DISK" else "RAM")));
  insert_batch db "quotations"
    (List.init (n_parts * fanout) (fun k ->
         Printf.sprintf "(%d, %.2f, %d, 's%d')" (k mod n_parts)
           (Random.State.float rng 100.0)
           (Random.State.int rng 200)
           (k mod 17)));
  ignore (Starburst.run db "ANALYZE");
  db

(** A chain-of-[n] edges graph db plus disconnected noise components. *)
let graph_db ~chains ~chain_len () =
  let db = Starburst.create () in
  ignore (Starburst.run db "CREATE TABLE edges (src INT, dst INT)");
  let rows = ref [] in
  for c = 0 to chains - 1 do
    let base = c * (chain_len + 1) in
    for k = 0 to chain_len - 1 do
      rows := Printf.sprintf "(%d, %d)" (base + k) (base + k + 1) :: !rows
    done
  done;
  insert_batch db "edges" !rows;
  ignore (Starburst.run db "ANALYZE");
  db

(** Two generic tables for join experiments. *)
let join_db ~outer_rows ~inner_rows ~matches_per_key () =
  let db = Starburst.create () in
  ignore (Starburst.run db "CREATE TABLE outer_t (k INT NOT NULL, v INT)");
  ignore (Starburst.run db "CREATE TABLE inner_t (k INT NOT NULL, w INT)");
  insert_batch db "outer_t"
    (List.init outer_rows (fun i -> Printf.sprintf "(%d, %d)" i (i * 3)));
  insert_batch db "inner_t"
    (List.init inner_rows (fun i ->
         Printf.sprintf "(%d, %d)" (i / max 1 matches_per_key) i));
  ignore (Starburst.run db "ANALYZE");
  db

let counters db = Starburst.counters db

let run_q db text = ignore (Starburst.query db text)

let scanned db = (counters db).Sb_qes.Exec.c_scanned

let plan_text db text = Sb_optimizer.Plan.to_string (Starburst.compile_text db text)

let check label ok = Printf.printf "  [%s] %s\n" (if ok then "ok" else "DEVIATION") label

(* silence unused warnings for generators some experiments skip *)
let _ = plan_text
let _ = ratio
let _ = Datatype.Int
