(** Experiments E6–E8: the join enumerator's search space (ONO88),
    the STAR inventory ("under 20 rules"), and the join-method cost
    crossover with glue-established order properties. *)

open Bench_util
module Plan = Sb_optimizer.Plan
module Cost = Sb_optimizer.Cost
module Star = Sb_optimizer.Star
module Generator = Sb_optimizer.Generator
module Exec = Sb_qes.Exec
open Sb_storage

(* ------------------------------------------------------------------ *)
(* E6: join enumeration space                                          *)
(* ------------------------------------------------------------------ *)

let chain_query n =
  let tables = List.init n (fun k -> Printf.sprintf "edges e%d" k) |> String.concat ", " in
  let preds =
    List.init (n - 1) (fun k -> Printf.sprintf "e%d.dst = e%d.src" k (k + 1))
    |> String.concat " AND "
  in
  Printf.sprintf "SELECT e0.src FROM %s WHERE %s" tables preds

let star_query n =
  let tables = List.init n (fun k -> Printf.sprintf "edges e%d" k) |> String.concat ", " in
  let preds =
    List.init (n - 1) (fun k -> Printf.sprintf "e0.src = e%d.dst" (k + 1))
    |> String.concat " AND "
  in
  Printf.sprintf "SELECT e0.src FROM %s WHERE %s" tables preds

let e6 () =
  header "E6. Join enumerator search space (ONO88): joinable pairs considered";
  let db = graph_db ~chains:2 ~chain_len:5 () in
  let opt = db.Starburst.Corona.optimizer in
  let measure ~bushy ~cartesian text =
    opt.Generator.allow_bushy <- bushy;
    opt.Generator.allow_cartesian <- cartesian;
    opt.Generator.enum_pairs <- 0;
    (try ignore (Starburst.compile_text db text) with _ -> ());
    opt.Generator.enum_pairs
  in
  let rows =
    List.concat_map
      (fun (shape, query_of) ->
        List.map
          (fun n ->
            let text = query_of n in
            let linear = measure ~bushy:false ~cartesian:false text in
            let bushy = measure ~bushy:true ~cartesian:false text in
            let cartesian = measure ~bushy:true ~cartesian:true text in
            [ shape; itos n; itos linear; itos bushy; itos cartesian ])
          [ 3; 4; 5; 6; 7; 8 ])
      [ ("chain", chain_query); ("star", star_query) ]
  in
  opt.Generator.allow_bushy <- false;
  opt.Generator.allow_cartesian <- false;
  table
    ~cols:[ "shape"; "n tables"; "linear"; "+bushy"; "+cartesian" ]
    rows;
  print_endline
    "  (R* and System R always pruned composite inners and Cartesian products;\n\
    \   Starburst makes both toggles of the enumerator — sec. 6)"

(* ------------------------------------------------------------------ *)
(* E7: STAR inventory                                                  *)
(* ------------------------------------------------------------------ *)

let e7 () =
  header "E7. STAR inventory: \"all of R*'s strategies ... in under 20 rules\"";
  let db = Starburst.create () in
  let sctx = db.Starburst.Corona.optimizer.Generator.sctx in
  let base_stars = Star.star_count sctx in
  let base_alts = Star.alternative_count sctx in
  Sb_extensions.Outer_join.install db;
  let ext_alts = Star.alternative_count sctx in
  table
    ~cols:[ "configuration"; "STARs"; "alternatives" ]
    [
      [ "base system"; itos base_stars; itos base_alts ];
      [ "+ outer-join extension"; itos (Star.star_count sctx); itos ext_alts ];
    ];
  check "base alternatives < 20 (paper's claim)" (base_alts < 20);
  check "extension adds alternatives without touching the evaluator"
    (ext_alts = base_alts + 1);
  (* plan-space effect of the rule set: plans generated for one query *)
  let db2 = parts_db ~n_parts:500 ~fanout:4 () in
  ignore (Starburst.run db2 "CREATE INDEX inv_pk ON inventory (partno)");
  ignore (Starburst.run db2 "ANALYZE");
  let sctx2 = db2.Starburst.Corona.optimizer.Generator.sctx in
  sctx2.Star.plans_generated <- 0;
  sctx2.Star.invocations <- 0;
  ignore
    (Starburst.compile_text db2
       "SELECT q.price FROM quotations q, inventory i WHERE q.partno = \
        i.partno AND i.type = 'CPU' ORDER BY q.price");
  Printf.printf "  one 2-table query: %d STAR invocations, %d plans generated before pruning\n"
    sctx2.Star.invocations sctx2.Star.plans_generated

(* ------------------------------------------------------------------ *)
(* E8: join methods and the order property                             *)
(* ------------------------------------------------------------------ *)

(** Hand-built plans joining outer_t and inner_t with each method, so
    the methods are compared directly rather than through the chooser. *)
let method_plan db method_ =
  let cat = db.Starburst.Corona.catalog in
  let stats name =
    match Catalog.find_table cat name with
    | Some tab -> Table_store.analyze tab
    | None -> Stats.empty
  in
  let scan name quant =
    Cost.mk_scan ~table:name ~stats:(stats name) ~site:"local" ~quant
      ~cols:[ 0; 1 ] ~preds:[] ~info:Cost.no_info ()
  in
  let outer = scan "outer_t" 1 and inner = scan "inner_t" 2 in
  let outer, inner =
    match method_ with
    | Plan.Sort_merge ->
      ( Cost.mk_sort [ (0, Sb_hydrogen.Ast.Asc) ] outer,
        Cost.mk_sort [ (0, Sb_hydrogen.Ast.Asc) ] inner )
    | _ -> (outer, inner)
  in
  let inner = if method_ = Plan.Nested_loop then Cost.mk_temp inner else inner in
  Cost.mk_join ~method_ ~kind:Plan.J_regular ~equi:[ (0, 0) ] ~pred:None
    ~kind_pred:None ~corr:[] ~sel:0.001 outer inner

let e8 () =
  header "E8. Join methods (same kind, different control structures): time (ms)";
  let rows =
    List.map
      (fun (outer_rows, inner_rows) ->
        let db = join_db ~outer_rows ~inner_rows ~matches_per_key:1 () in
        let t m =
          let plan = method_plan db m in
          time_ms (fun () -> Starburst.run_plan db plan)
        in
        let nl = t Plan.Nested_loop in
        let mg = t Plan.Sort_merge in
        let hs = t Plan.Hash_join in
        let winner =
          List.sort compare [ (nl, "NL"); (mg, "MERGE"); (hs, "HASH") ]
          |> List.hd |> snd
        in
        [ itos outer_rows; itos inner_rows; ms nl; ms mg; ms hs; winner ])
      [ (50, 50); (500, 500); (3000, 3000); (5000, 50); (50, 5000) ]
  in
  table ~cols:[ "outer"; "inner"; "NL"; "MERGE"; "HASH"; "winner" ] rows;
  print_endline
    "  (expected shape: NL wins only on tiny inputs; HASH wins on equal large\n\
    \   inputs; the cost model drives the same choice inside the optimizer)";
  (* glue: the optimizer inserts SORT only when order is missing *)
  let db = join_db ~outer_rows:2000 ~inner_rows:2000 ~matches_per_key:1 () in
  ignore (Starburst.run db "CREATE INDEX outer_k ON outer_t (k)");
  ignore (Starburst.run db "ANALYZE");
  let p =
    Starburst.compile_text db
      "SELECT o.v FROM outer_t o, inner_t i WHERE o.k = i.k ORDER BY o.k"
  in
  let rec ops (p : Plan.plan) = p.Plan.op :: List.concat_map ops p.Plan.inputs in
  let sorts =
    List.length (List.filter (function Plan.Sort _ -> true | _ -> false) (ops p))
  in
  Printf.printf "  glue check: plan for an ORDER BY join contains %d SORT operator(s)\n" sorts
