(** Experiments F1, F2 and E1–E5: the pipeline phase breakdown, the
    Figure-2 rewrite reproduction, and the query-rewrite benefit
    experiments (see DESIGN.md section 5 and EXPERIMENTS.md). *)

open Bench_util
module Qgm = Sb_qgm.Qgm
module Parser = Sb_hydrogen.Parser
module Engine = Sb_rewrite.Engine
module Rule = Sb_rewrite.Rule
module Generator = Sb_optimizer.Generator

let paper_query =
  "SELECT partno, price, order_qty FROM quotations Q1 WHERE Q1.partno IN \
   (SELECT partno FROM inventory Q3 WHERE Q3.onhand_qty < Q1.order_qty AND \
   Q3.type = 'CPU')"

(* ------------------------------------------------------------------ *)
(* F1: phases of query processing (Figure 1)                           *)
(* ------------------------------------------------------------------ *)

let f1 () =
  header "F1. Phases of query processing (Figure 1): time per phase";
  let db = parts_db ~n_parts:2000 ~fanout:5 () in
  let queries =
    [
      ("paper query (sec. 4)", paper_query);
      ( "3-way join + group",
        "SELECT i.type, count(*), avg(q.price) FROM quotations q, inventory i \
         WHERE q.partno = i.partno AND i.onhand_qty > 100 GROUP BY i.type" );
      ( "view + order",
        "SELECT partno, price FROM quotations WHERE price > 90 ORDER BY price \
         DESC LIMIT 10" );
    ]
  in
  let rows =
    List.map
      (fun (label, text) ->
        let t_parse = time_ms (fun () -> Parser.query_text text) in
        let ast = Parser.query_text text in
        let t_qgm = time_ms (fun () -> Starburst.build_qgm db ast) in
        let t_rewrite =
          time_ms (fun () ->
              let g = Starburst.build_qgm db ast in
              Starburst.rewrite db g)
        in
        let g = Starburst.build_qgm db ast in
        ignore (Starburst.rewrite db g);
        let t_opt =
          time_ms (fun () -> Generator.optimize db.Starburst.Corona.optimizer g)
        in
        let plan = Generator.optimize db.Starburst.Corona.optimizer g in
        let t_exec = time_ms (fun () -> Starburst.run_plan db plan) in
        [ label; ms t_parse; ms t_qgm; ms (Float.max 0.0 (t_rewrite -. t_qgm));
          ms t_opt; ms t_exec ])
      queries
  in
  table
    ~cols:[ "query"; "parse"; "qgm"; "rewrite"; "optimize"; "execute (ms)" ]
    rows

(* ------------------------------------------------------------------ *)
(* F2: the Figure 2 rewrite trace                                      *)
(* ------------------------------------------------------------------ *)

let f2 () =
  header "F2. Figure 2: QGM before/after query rewrite (paper, sec. 4-5)";
  let db = parts_db ~n_parts:50 ~fanout:2 () in
  let g = Starburst.build_qgm db (Parser.query_text paper_query) in
  let boxes_before = List.length (Qgm.reachable_boxes g) in
  let e_quants g =
    List.concat_map
      (fun (b : Qgm.box) -> List.filter (fun q -> q.Qgm.q_type = Qgm.E) b.Qgm.b_quants)
      (Qgm.reachable_boxes g)
  in
  let e_before = List.length (e_quants g) in
  let stats = Starburst.rewrite db g in
  let top = Qgm.top_box g in
  Printf.printf "  boxes: %d -> %d (paper: two SELECT boxes merge into one)\n"
    boxes_before
    (List.length (Qgm.reachable_boxes g));
  Printf.printf "  existential quantifiers: %d -> %d (Q2: E -> F)\n" e_before
    (List.length (e_quants g));
  Printf.printf "  predicates in the merged box: %d (paper: 3 qualifier edges)\n"
    (List.length top.Qgm.b_preds);
  Printf.printf "  rules fired: %s\n"
    (String.concat ", "
       (List.map (fun (n, c) -> Printf.sprintf "%s x%d" n c) stats.Engine.firings));
  check "subquery-to-join (Rule 1) fired" (List.mem_assoc "subquery_to_join" stats.Engine.firings);
  check "operation merging (Rule 2) fired" (List.mem_assoc "merge_select" stats.Engine.firings);
  check "result is a single SELECT over the two base tables"
    (List.length (Qgm.reachable_boxes g) = 3
    && List.length top.Qgm.b_quants = 2
    && List.for_all (fun q -> q.Qgm.q_type = Qgm.F) top.Qgm.b_quants)

(* ------------------------------------------------------------------ *)
(* E1: rewrite on/off for the paper query                              *)
(* ------------------------------------------------------------------ *)

let e1 () =
  header "E1. Rewrite benefit on the paper query (exec time, rewrite off vs on)";
  let rows =
    List.map
      (fun n_parts ->
        let db = parts_db ~n_parts ~fanout:5 () in
        ignore (Starburst.run db "SET rewrite = off");
        let t_off = time_ms (fun () -> run_q db paper_query) in
        let s_off = scanned db in
        ignore (Starburst.run db "SET rewrite = on");
        let t_on = time_ms (fun () -> run_q db paper_query) in
        let s_on = scanned db in
        [ itos (n_parts * 5); ms t_off; itos s_off; ms t_on; itos s_on;
          ratio t_off t_on ])
      [ 200; 1000; 4000 ]
  in
  table
    ~cols:
      [ "quotations"; "off: ms"; "off: scanned"; "on: ms"; "on: scanned"; "speedup" ]
    rows

(* ------------------------------------------------------------------ *)
(* E2: predicate push-down                                             *)
(* ------------------------------------------------------------------ *)

let e2 () =
  header "E2. Predicate push-down: a group-key filter pushed below GROUP BY";
  let query = function
    | `One ->
      "SELECT partno, total FROM (SELECT partno, sum(price * order_qty) AS \
       total FROM quotations GROUP BY partno) v WHERE partno = 7"
    | `Range n ->
      Printf.sprintf
        "SELECT count(*) FROM (SELECT partno, sum(price * order_qty) AS total \
         FROM quotations GROUP BY partno) v WHERE partno < %d" n
  in
  let db = parts_db ~n_parts:4000 ~fanout:8 () in
  let rows =
    List.map
      (fun (label, text) ->
        ignore (Starburst.run db "SET rewrite = off");
        let t_off = time_ms (fun () -> run_q db text) in
        let s_off = scanned db in
        ignore (Starburst.run db "SET rewrite = on");
        let t_on = time_ms (fun () -> run_q db text) in
        let s_on = scanned db in
        ignore s_off;
        ignore s_on;
        [ label; ms t_off; ms t_on; ratio t_off t_on ])
      [
        ("one group (partno = 7)", query `One);
        ("tight range (partno < 40)", query (`Range 40));
        ("wide range (partno < 2000)", query (`Range 2000));
      ]
  in
  table ~cols:[ "group-key filter"; "no pushdown (ms)"; "pushdown (ms)"; "speedup" ] rows

(* ------------------------------------------------------------------ *)
(* E3: view merging                                                    *)
(* ------------------------------------------------------------------ *)

let e3 () =
  header "E3. View merging: a filtered view joined to a base table";
  let db = parts_db ~n_parts:3000 ~fanout:5 () in
  ignore
    (Starburst.run db
       "CREATE VIEW cpu_parts AS SELECT partno, onhand_qty FROM inventory \
        WHERE type = 'CPU'");
  let text =
    "SELECT count(*) FROM cpu_parts c, quotations q WHERE c.partno = q.partno \
     AND q.price < 5"
  in
  ignore (Starburst.run db "SET rewrite = off");
  let t_off = time_ms (fun () -> run_q db text) in
  ignore (Starburst.run db "SET rewrite = on");
  let t_on = time_ms (fun () -> run_q db text) in
  (* structural evidence: the view box disappears *)
  let g = Starburst.build_qgm db (Parser.query_text text) in
  let before = List.length (Qgm.reachable_boxes g) in
  ignore (Starburst.rewrite db g);
  let after = List.length (Qgm.reachable_boxes g) in
  table
    ~cols:[ "metric"; "unmerged"; "merged" ]
    [
      [ "QGM boxes"; itos before; itos after ];
      [ "execution (ms)"; ms t_off; ms t_on ];
    ]

(* ------------------------------------------------------------------ *)
(* E4: rule-engine strategies and budget                               *)
(* ------------------------------------------------------------------ *)

let e4 () =
  header "E4. Rule engine: control strategies, search orders, budget";
  let db = parts_db ~n_parts:200 ~fanout:3 () in
  ignore
    (Starburst.run db
       "CREATE VIEW v1 AS SELECT partno AS p, price AS pr FROM quotations \
        WHERE order_qty > 10");
  let text =
    "SELECT count(*) FROM (SELECT p, pr FROM v1 WHERE pr < 50) w, inventory i \
     WHERE w.p = i.partno AND w.p IN (SELECT partno FROM inventory WHERE type \
     = 'CPU') AND i.onhand_qty > 3"
  in
  let ast = Parser.query_text text in
  let strategies =
    [
      ("sequential", Engine.Sequential);
      ("priority", Engine.Priority);
      ("statistical", Engine.Statistical { weights = []; seed = 11 });
    ]
  in
  let rows =
    List.concat_map
      (fun (sname, strategy) ->
        List.map
          (fun (order_name, search) ->
            let g = Starburst.build_qgm db ast in
            let t =
              time_ms ~reps:5 (fun () ->
                  let g = Starburst.build_qgm db ast in
                  Engine.run ~strategy ~search
                    ~rules:(Rule.all db.Starburst.Corona.rules) g)
            in
            let stats =
              Engine.run ~strategy ~search
                ~rules:(Rule.all db.Starburst.Corona.rules) g
            in
            [ sname; order_name; itos stats.Engine.rules_fired;
              itos stats.Engine.rules_examined; itos stats.Engine.passes; ms t ])
          [ ("depth-first", Engine.Depth_first); ("breadth-first", Engine.Breadth_first) ])
      strategies
  in
  table
    ~cols:[ "strategy"; "search"; "fired"; "examined"; "passes"; "time (ms)" ]
    rows;
  (* budget sweep: processing always stops at a consistent QGM *)
  print_newline ();
  let rows =
    List.map
      (fun budget ->
        let g = Starburst.build_qgm db ast in
        let stats =
          Engine.run ~budget ~rules:(Rule.all db.Starburst.Corona.rules) g
        in
        [ itos budget; itos stats.Engine.rules_fired;
          (if stats.Engine.budget_exhausted then "yes" else "no");
          (if Sb_qgm.Check.is_consistent g then "consistent" else "INCONSISTENT") ])
      [ 0; 1; 2; 4; 100 ]
  in
  table ~cols:[ "budget"; "fired"; "exhausted"; "QGM state" ] rows

(* ------------------------------------------------------------------ *)
(* E5: magic sets for recursion                                        *)
(* ------------------------------------------------------------------ *)

let e5 () =
  header "E5. Magic-sets rule: selective binding pushed into the recursion seed";
  let tc =
    "WITH RECURSIVE paths (src, dst) AS (SELECT src, dst FROM edges UNION \
     SELECT p.src, e.dst FROM paths p, edges e WHERE p.dst = e.src) SELECT \
     count(*) FROM paths WHERE src = 0"
  in
  let rows =
    List.map
      (fun chains ->
        let db = graph_db ~chains ~chain_len:12 () in
        ignore (Starburst.run db "SET rewrite = off");
        let t_naive = time_ms (fun () -> run_q db tc) in
        ignore (Starburst.run db "SET rewrite = on");
        let t_magic = time_ms (fun () -> run_q db tc) in
        [ itos chains; itos (chains * 12); ms t_naive; ms t_magic;
          ratio t_naive t_magic ])
      [ 5; 20; 80 ]
  in
  table
    ~cols:[ "components"; "edges"; "naive (ms)"; "magic (ms)"; "speedup" ]
    rows

(* ------------------------------------------------------------------ *)
(* E15: rule-class ablation                                            *)
(* ------------------------------------------------------------------ *)

(** Which rule classes carry the rewrite benefit?  Each row disables one
    class and measures a mixed workload; rule classes are the paper's
    own modularization unit, so they ablate cleanly. *)
let e15 () =
  header "E15. Ablation: rewrite cost with one rule class disabled";
  let workload db =
    run_q db paper_query;
    run_q db
      "SELECT count(*) FROM (SELECT partno, sum(price) AS tp FROM quotations \
       GROUP BY partno) v WHERE partno < 50";
    run_q db
      "SELECT a.onhand_qty FROM inventory a, inventory b WHERE a.partno = \
       b.partno AND b.type = 'CPU'"
  in
  let time_with_classes classes_removed =
    let db = parts_db ~n_parts:2000 ~fanout:5 () in
    let all = Rule.all db.Starburst.Corona.rules in
    let rules =
      List.filter (fun r -> not (List.mem r.Rule.rule_class classes_removed)) all
    in
    (* swap the rule set *)
    db.Starburst.Corona.rules.Rule.rules <- rules;
    time_ms (fun () -> workload db)
  in
  let full = time_with_classes [] in
  let rows =
    [ "(none: full rule set)"; "merge"; "predicate"; "projection"; "subquery";
      "redundant" ]
    |> List.map (fun cl ->
           let t = if cl = "(none: full rule set)" then full else time_with_classes [ cl ] in
           [ cl; ms t; Printf.sprintf "%+.0f%%" ((t -. full) /. full *. 100.0) ])
  in
  table ~cols:[ "class disabled"; "workload (ms)"; "vs full" ] rows;
  print_endline
    "  (classes are the paper's modularization unit; disabling one leaves a\n\
    \   consistent system, just a slower one)"
