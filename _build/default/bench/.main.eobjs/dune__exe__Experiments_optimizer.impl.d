bench/experiments_optimizer.ml: Bench_util Catalog List Printf Sb_extensions Sb_hydrogen Sb_optimizer Sb_qes Sb_storage Starburst Stats String Table_store
