bench/experiments_rewrite.ml: Bench_util Float List Printf Sb_hydrogen Sb_optimizer Sb_qgm Sb_rewrite Starburst String
