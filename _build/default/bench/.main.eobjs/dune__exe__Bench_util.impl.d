bench/bench_util.ml: Array Datatype Float List Printf Random Sb_optimizer Sb_qes Sb_storage Starburst String Unix
