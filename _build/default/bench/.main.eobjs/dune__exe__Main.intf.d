bench/main.mli:
