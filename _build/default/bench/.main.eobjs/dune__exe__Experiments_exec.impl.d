bench/experiments_exec.ml: Bench_util List Option Printf Sb_extensions Sb_hydrogen Sb_optimizer Sb_qes Sb_rewrite Sb_storage Seq Starburst
