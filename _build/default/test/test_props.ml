(** Whole-pipeline property tests: randomly generated queries over
    randomly generated data, executed with rewrite on vs off and with
    different optimizer configurations — all must agree (bag equality).
    This is the strongest soundness check in the suite: it covers the
    rewrite rules, the join enumerator, join methods and the executor in
    one property. *)

open Sb_storage
module Star = Sb_optimizer.Star
module Generator = Sb_optimizer.Generator
open Test_util

(* --- random data --- *)

let mk_db seed =
  let rng = Random.State.make [| seed |] in
  let db = Starburst.create () in
  ignore (Starburst.run db "CREATE TABLE r (a INT NOT NULL, b INT, c STRING)");
  ignore (Starburst.run db "CREATE TABLE u (k INT NOT NULL UNIQUE, x INT, y STRING)");
  let r_rows =
    List.init 60 (fun _ ->
        Printf.sprintf "(%d, %s, '%c')"
          (Random.State.int rng 8)
          (if Random.State.int rng 10 = 0 then "NULL" else string_of_int (Random.State.int rng 20))
          (Char.chr (97 + Random.State.int rng 4)))
    |> String.concat ","
  in
  let u_rows =
    List.init 12 (fun k ->
        Printf.sprintf "(%d, %d, '%c')" k (Random.State.int rng 20)
          (Char.chr (97 + Random.State.int rng 4)))
    |> String.concat ","
  in
  ignore (Starburst.run db ("INSERT INTO r VALUES " ^ r_rows));
  ignore (Starburst.run db ("INSERT INTO u VALUES " ^ u_rows));
  ignore (Starburst.run db "ANALYZE");
  db

(* --- random queries --- *)

let gen_pred rng =
  let col = List.nth [ "r.a"; "r.b"; "u.x"; "u.k" ] (Random.State.int rng 4) in
  let op = List.nth [ "="; "<"; ">"; "<="; "<>" ] (Random.State.int rng 5) in
  Printf.sprintf "%s %s %d" col op (Random.State.int rng 15)

let gen_query rng =
  let kind = Random.State.int rng 10 in
  match kind with
  | 0 ->
    (* single table with predicates *)
    Printf.sprintf "SELECT r.a, r.b FROM r, u WHERE r.a = u.k AND %s" (gen_pred rng)
  | 1 ->
    (* IN subquery, possibly correlated *)
    if Random.State.bool rng then
      "SELECT r.a FROM r WHERE r.a IN (SELECT k FROM u WHERE u.x > 5)"
    else
      "SELECT r.a FROM r WHERE r.b IN (SELECT x FROM u WHERE u.y = r.c)"
  | 2 ->
    (* NOT EXISTS / ALL *)
    if Random.State.bool rng then
      "SELECT r.a FROM r WHERE NOT EXISTS (SELECT * FROM u WHERE u.k = r.a AND u.x < 5)"
    else "SELECT r.a FROM r WHERE r.b >= ALL (SELECT x FROM u WHERE u.k < 3)"
  | 3 ->
    (* group by over a derived table *)
    Printf.sprintf
      "SELECT c, count(*), sum(b) FROM (SELECT r.c AS c, r.b AS b FROM r \
       WHERE %s) v GROUP BY c"
      (gen_pred rng |> String.map (fun ch -> if ch = 'u' then 'r' else ch))
  | 4 ->
    (* set operation with pushdown opportunity *)
    Printf.sprintf
      "SELECT * FROM ((SELECT a FROM r) UNION ALL (SELECT k FROM u)) w WHERE a > %d"
      (Random.State.int rng 8)
  | 5 ->
    (* OR with subquery *)
    Printf.sprintf
      "SELECT r.a FROM r WHERE r.a > %d OR r.b = (SELECT max(x) FROM u WHERE u.y = r.c)"
      (Random.State.int rng 8)
  | 6 ->
    (* three-way join *)
    Printf.sprintf
      "SELECT r.a, u.y FROM r, u, u u2 WHERE r.a = u.k AND u.x = u2.x AND u2.k < %d"
      (Random.State.int rng 12)
  | 7 ->
    (* distinct + order + limit *)
    Printf.sprintf
      "SELECT DISTINCT a FROM r WHERE a <> %d ORDER BY a LIMIT %d"
      (Random.State.int rng 8)
      (1 + Random.State.int rng 6)
  | 8 ->
    (* except with duplicates on the left *)
    Printf.sprintf
      "(SELECT a FROM r) EXCEPT (SELECT k FROM u WHERE u.x > %d)"
      (Random.State.int rng 15)
  | _ ->
    (* correlated scalar in the select list over a join *)
    Printf.sprintf
      "SELECT u.k, (SELECT count(*) FROM r WHERE r.a = u.k AND r.b > %d) FROM u"
      (Random.State.int rng 10)

(* queries referencing u only make sense in variants 0..2; variant 3
   rewrites 'u' columns to 'r', guarded above *)

let gen_valid rng db =
  let rec go n =
    if n > 20 then None
    else
      let text = gen_query rng in
      match Starburst.compile_text db text with
      | _ -> Some text
      | exception _ -> go (n + 1)
  in
  go 0

let prop_configurations_agree =
  QCheck2.Test.make ~name:"rewrite/optimizer configurations agree" ~count:40
    QCheck2.Gen.(int_bound 100000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let db = mk_db seed in
      match gen_valid rng db with
      | None -> true
      | Some text ->
        let base = List.sort Tuple.compare (q db text) in
        let same label rows =
          let rows = List.sort Tuple.compare rows in
          if List.equal (fun a b -> Tuple.compare a b = 0) base rows then true
          else begin
            Printf.printf "MISMATCH (%s): %s\n" label text;
            false
          end
        in
        (* rewrite off *)
        ignore (Starburst.run db "SET rewrite = off");
        let r1 = q db text in
        ignore (Starburst.run db "SET rewrite = on");
        (* greedy strategy (NL joins only) *)
        let sctx = db.Starburst.Corona.optimizer.Generator.sctx in
        sctx.Star.strategy <- Star.greedy_strategy;
        let r2 = q db text in
        sctx.Star.strategy <- Star.default_strategy;
        (* bushy + cartesian *)
        db.Starburst.Corona.optimizer.Generator.allow_bushy <- true;
        db.Starburst.Corona.optimizer.Generator.allow_cartesian <- true;
        let r3 = q db text in
        db.Starburst.Corona.optimizer.Generator.allow_bushy <- false;
        db.Starburst.Corona.optimizer.Generator.allow_cartesian <- false;
        same "rewrite off" r1 && same "greedy" r2 && same "bushy" r3)

(* sorting property: ORDER BY yields ordered output under every config *)
let prop_order_by_sorted =
  QCheck2.Test.make ~name:"ORDER BY output is ordered" ~count:25
    QCheck2.Gen.(int_bound 100000)
    (fun seed ->
      let db = mk_db seed in
      let rows = q db "SELECT b FROM r WHERE b IS NOT NULL ORDER BY b" in
      let values = List.map (fun r -> Value.as_int r.(0)) rows in
      List.sort compare values = values)

(* DISTINCT yields no duplicates and the right set *)
let prop_distinct =
  QCheck2.Test.make ~name:"DISTINCT is a set" ~count:25
    QCheck2.Gen.(int_bound 100000)
    (fun seed ->
      let db = mk_db seed in
      let d = q db "SELECT DISTINCT a FROM r" in
      let all = q db "SELECT a FROM r" in
      let set l = List.sort_uniq Tuple.compare l in
      List.length d = List.length (set d) && set d = set all)

let qcheck t = QCheck_alcotest.to_alcotest t

let suite =
  ( "properties",
    [
      qcheck prop_configurations_agree;
      qcheck prop_order_by_sorted;
      qcheck prop_distinct;
    ] )

(* --- OR operator vs folded disjunction --- *)

let prop_or_operator_equiv =
  QCheck2.Test.make ~name:"OR operator matches folded disjunction" ~count:25
    QCheck2.Gen.(int_bound 100000)
    (fun seed ->
      let db = mk_db seed in
      let text =
        "SELECT r.a FROM r WHERE r.a > 5 OR r.b = (SELECT max(x) FROM u WHERE \
         u.y = r.c)"
      in
      let plan = Starburst.compile_text db text in
      let module Plan = Sb_optimizer.Plan in
      let rec fold (p : Plan.plan) : Plan.plan =
        let p = { p with Plan.inputs = List.map fold p.Plan.inputs } in
        match p.Plan.op with
        | Plan.Or_filter (d :: rest) ->
          let e =
            List.fold_left
              (fun acc x -> Plan.RBin (Sb_hydrogen.Ast.Or, acc, x))
              d rest
          in
          { p with Plan.op = Plan.Filter [ e ] }
        | _ -> p
      in
      let a = Starburst.run_plan db plan in
      let b = Starburst.run_plan db (fold plan) in
      same_bag a b)

(* --- fixpoint vs a model transitive closure --- *)

let prop_fixpoint_model =
  QCheck2.Test.make ~name:"fixpoint matches model closure" ~count:25
    QCheck2.Gen.(pair (int_bound 100000) (list_size (1 -- 40) (pair (int_bound 12) (int_bound 12))))
    (fun (seed, edge_list) ->
      ignore seed;
      let db = Starburst.create () in
      ignore (Starburst.run db "CREATE TABLE g (src INT, dst INT)");
      let values =
        String.concat "," (List.map (fun (a, b) -> Printf.sprintf "(%d,%d)" a b) edge_list)
      in
      ignore (Starburst.run db ("INSERT INTO g VALUES " ^ values));
      let rows =
        q db
          "WITH RECURSIVE p (src, dst) AS (SELECT src, dst FROM g UNION \
           SELECT p.src, e.dst FROM p, g e WHERE p.dst = e.src) SELECT src, \
           dst FROM p"
      in
      (* model: warshall-style closure over the edge set *)
      let edges = List.sort_uniq compare edge_list in
      let closure = Hashtbl.create 64 in
      List.iter (fun e -> Hashtbl.replace closure e ()) edges;
      let changed = ref true in
      while !changed do
        changed := false;
        Hashtbl.iter
          (fun (a, b) () ->
            List.iter
              (fun (c, d) ->
                if b = c && not (Hashtbl.mem closure (a, d)) then begin
                  Hashtbl.replace closure (a, d) ();
                  changed := true
                end)
              edges)
          (Hashtbl.copy closure)
      done;
      let expected =
        Hashtbl.fold (fun (a, b) () acc -> row [ i a; i b ] :: acc) closure []
      in
      same_bag rows expected)

(* --- index access equals scan on random data/predicates --- *)

let prop_index_equals_scan =
  QCheck2.Test.make ~name:"index plans match scan plans" ~count:20
    QCheck2.Gen.(pair (int_bound 100000) (int_bound 18))
    (fun (seed, bound) ->
      let rng = Random.State.make [| seed |] in
      let db = Starburst.create () in
      ignore (Starburst.run db "CREATE TABLE ix (k INT NOT NULL, v INT)");
      let values =
        String.concat ","
          (List.init 300 (fun _ ->
               Printf.sprintf "(%d,%d)" (Random.State.int rng 20) (Random.State.int rng 5)))
      in
      ignore (Starburst.run db ("INSERT INTO ix VALUES " ^ values));
      let texts =
        [
          Printf.sprintf "SELECT v FROM ix WHERE k = %d" bound;
          Printf.sprintf "SELECT v FROM ix WHERE k > %d AND k < %d" bound (bound + 4);
          Printf.sprintf "SELECT count(*) FROM ix WHERE k <= %d" bound;
        ]
      in
      let before = List.map (q db) texts in
      ignore (Starburst.run db "CREATE INDEX ix_k ON ix (k)");
      ignore (Starburst.run db "ANALYZE");
      let after = List.map (q db) texts in
      (* a second index opens the index-ANDing alternative *)
      ignore (Starburst.run db "CREATE INDEX ix_v ON ix (v)");
      ignore (Starburst.run db "ANALYZE");
      let anded =
        q db (Printf.sprintf "SELECT count(*) FROM ix WHERE k = %d AND v = 2" bound)
      in
      let manual =
        q db
          (Printf.sprintf
             "SELECT count(*) FROM (SELECT k, v FROM ix) w WHERE w.k = %d AND w.v = 2"
             bound)
      in
      List.for_all2 same_bag before after && same_bag anded manual)

let suite =
  ( fst suite,
    snd suite
    @ [
        qcheck prop_or_operator_equiv;
        qcheck prop_fixpoint_model;
        qcheck prop_index_equals_scan;
      ] )
