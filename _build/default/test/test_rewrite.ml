(** Tests for the query-rewrite rule system: the engine (strategies,
    budget, search orders, consistency), each base rule class, and rule
    interactions — including the Figure 2 transformation. *)

open Sb_storage
module Qgm = Sb_qgm.Qgm
module Builder = Sb_qgm.Builder
module Check = Sb_qgm.Check
module Rule = Sb_rewrite.Rule
module Engine = Sb_rewrite.Engine
module Base_rules = Sb_rewrite.Base_rules
open Test_util

let setup () =
  let cat = Catalog.create () in
  let mk name schema = ignore (Catalog.create_table cat ~name ~schema ()) in
  mk "quotations"
    [| Schema.column ~nullable:false "partno" Datatype.Int;
       Schema.column "price" Datatype.Float;
       Schema.column "order_qty" Datatype.Int |];
  mk "inventory"
    [| Schema.column ~nullable:false ~unique:true "partno" Datatype.Int;
       Schema.column "onhand_qty" Datatype.Int;
       Schema.column "type" Datatype.String |];
  mk "edges" [| Schema.column "src" Datatype.Int; Schema.column "dst" Datatype.Int |];
  let cfg = Builder.make_config ~catalog:cat ~functions:(Sb_hydrogen.Functions.create ()) in
  (cat, cfg)

let rewrite ?strategy ?search ?budget cat g =
  Engine.run ?strategy ?search ?budget ~check_each:true
    ~rules:(Rule.all (Base_rules.default_set ~catalog:cat))
    g

let fired stats name = List.mem_assoc name stats.Engine.firings

(* --- Figure 2 --- *)

let figure2_query =
  "SELECT partno, price, order_qty FROM quotations Q1 WHERE Q1.partno IN \
   (SELECT partno FROM inventory Q3 WHERE Q3.onhand_qty < Q1.order_qty AND \
   Q3.type = 'CPU')"

let test_figure2 () =
  let cat, cfg = setup () in
  let g = Builder.build_text cfg figure2_query in
  Alcotest.(check int) "boxes before" 4 (List.length (Qgm.reachable_boxes g));
  let stats = rewrite cat g in
  Alcotest.(check bool) "rule 1 fired" true (fired stats "subquery_to_join");
  Alcotest.(check bool) "rule 2 fired" true (fired stats "merge_select");
  (* Figure 2(b): one SELECT box over the two base tables *)
  let boxes = Qgm.reachable_boxes g in
  Alcotest.(check int) "boxes after" 3 (List.length boxes);
  let top = Qgm.top_box g in
  Alcotest.(check int) "three conjuncts" 3 (List.length top.Qgm.b_preds);
  Alcotest.(check bool) "E became F" true
    (List.for_all (fun q -> q.Qgm.q_type = Qgm.F) top.Qgm.b_quants);
  Alcotest.(check (list string)) "consistent" [] (Check.check g)

let test_rule1_needs_uniqueness () =
  let cat, cfg = setup () in
  (* quotations.partno is NOT unique: converting the subquery would
     change duplicates, so Rule 1 must not fire *)
  let g =
    Builder.build_text cfg
      "SELECT partno FROM inventory WHERE partno IN (SELECT partno FROM quotations)"
  in
  let stats = rewrite cat g in
  Alcotest.(check bool) "rule 1 did not fire" false (fired stats "subquery_to_join");
  (* but the general CHOOSE-producing rule did *)
  Alcotest.(check bool) "choose rule fired" true (fired stats "subquery_to_join_choose");
  Alcotest.(check bool) "choose box created" true
    (List.exists
       (fun (b : Qgm.box) -> b.Qgm.b_kind = Qgm.Choose)
       (Qgm.reachable_boxes g))

let test_view_merging () =
  let cat, cfg = setup () in
  Catalog.create_view cat ~name:"cpus"
    ~text:"SELECT partno AS pn, onhand_qty AS qty FROM inventory WHERE type = 'CPU'" ();
  let g = Builder.build_text cfg "SELECT pn FROM cpus WHERE qty > 5" in
  let stats = rewrite cat g in
  Alcotest.(check bool) "merged" true (fired stats "merge_select");
  (* view disappeared: top box ranges directly over the base table *)
  let top = Qgm.top_box g in
  (match top.Qgm.b_quants with
  | [ q ] ->
    Alcotest.(check bool) "direct base access" true
      ((Qgm.box g q.Qgm.q_input).Qgm.b_kind = Qgm.Base_table "inventory")
  | _ -> Alcotest.fail "expected a single quantifier");
  Alcotest.(check int) "both predicates" 2 (List.length top.Qgm.b_preds)

let test_predicate_pushdown () =
  let cat, cfg = setup () in
  let g =
    Builder.build_text cfg
      "SELECT pn FROM (SELECT partno AS pn, price AS pr FROM quotations) v \
       WHERE pn > 2 ORDER BY pn"
  in
  (* ORDER BY on the top box prevents merging the derived table only if
     rules require it; pushdown should still fire or merge subsumes it *)
  let stats = rewrite cat g in
  Alcotest.(check bool) "pushdown or merge" true
    (fired stats "push_into_select" || fired stats "merge_select");
  Alcotest.(check (list string)) "consistent" [] (Check.check g)

let test_pushdown_through_group_by () =
  let cat, cfg = setup () in
  let g =
    Builder.build_text cfg
      "SELECT t, total FROM (SELECT type AS t, sum(onhand_qty) AS total FROM \
       inventory GROUP BY type) v WHERE t = 'CPU'"
  in
  let stats = rewrite cat g in
  Alcotest.(check bool) "pushed through group" true (fired stats "push_through_group_by");
  (* predicate ended up below the GROUP BY box *)
  let gb =
    List.find
      (fun (b : Qgm.box) -> match b.Qgm.b_kind with Qgm.Group_by _ -> true | _ -> false)
      (Qgm.reachable_boxes g)
  in
  Alcotest.(check bool) "group box or below holds pred" true
    (gb.Qgm.b_preds <> []
    || List.exists
         (fun q -> (Qgm.box g q.Qgm.q_input).Qgm.b_preds <> [])
         gb.Qgm.b_quants)

let test_pushdown_through_set_op () =
  let cat, cfg = setup () in
  let g =
    Builder.build_text cfg
      "SELECT * FROM ((SELECT partno FROM quotations) UNION ALL (SELECT \
       partno FROM inventory)) u WHERE partno > 2"
  in
  let stats = rewrite cat g in
  Alcotest.(check bool) "replicated into arms" true (fired stats "push_through_set_op");
  Alcotest.(check (list string)) "consistent" [] (Check.check g)

let test_projection_pruning () =
  let cat, cfg = setup () in
  let g =
    Builder.build_text cfg
      "SELECT pn FROM (SELECT partno AS pn, price AS pr, order_qty AS oq FROM \
       quotations) v"
  in
  let stats = rewrite cat g in
  (* either pruning fired before the merge, or the merge removed the
     derived table altogether *)
  Alcotest.(check bool) "pruned or merged" true
    (fired stats "prune_projection" || fired stats "merge_select");
  Alcotest.(check (list string)) "consistent" [] (Check.check g)

let test_redundant_join_elimination () =
  let cat, cfg = setup () in
  let g =
    Builder.build_text cfg
      "SELECT a.onhand_qty FROM inventory a, inventory b WHERE a.partno = \
       b.partno AND b.type = 'CPU'"
  in
  let stats = rewrite cat g in
  Alcotest.(check bool) "eliminated" true (fired stats "eliminate_redundant_join");
  let top = Qgm.top_box g in
  Alcotest.(check int) "one iterator left" 1 (List.length top.Qgm.b_quants);
  Alcotest.(check (list string)) "consistent" [] (Check.check g)

let test_replication () =
  let cat, cfg = setup () in
  let g =
    Builder.build_text cfg
      "SELECT q.partno FROM quotations q, inventory i WHERE q.partno = \
       i.partno AND q.partno = 3"
  in
  let stats = rewrite cat g in
  Alcotest.(check bool) "replicated" true (fired stats "replicate_restriction");
  Alcotest.(check (list string)) "consistent" [] (Check.check g)

let test_magic () =
  let cat, cfg = setup () in
  let g =
    Builder.build_text cfg
      "WITH RECURSIVE paths (src, dst) AS (SELECT src, dst FROM edges UNION \
       SELECT p.src, e.dst FROM paths p, edges e WHERE p.dst = e.src) SELECT \
       * FROM paths WHERE src = 1"
  in
  let stats = rewrite cat g in
  Alcotest.(check bool) "magic fired" true (fired stats "magic_selection_pushdown");
  Alcotest.(check (list string)) "consistent" [] (Check.check g)

let test_magic_not_on_unpropagated () =
  let cat, cfg = setup () in
  (* dst is NOT propagated unchanged by the recursive arm, so the magic
     rule must not fire on it *)
  let g =
    Builder.build_text cfg
      "WITH RECURSIVE paths (src, dst) AS (SELECT src, dst FROM edges UNION \
       SELECT p.src, e.dst FROM paths p, edges e WHERE p.dst = e.src) SELECT \
       * FROM paths WHERE dst = 3"
  in
  let stats = rewrite cat g in
  Alcotest.(check bool) "magic did not fire" false (fired stats "magic_selection_pushdown")

(* --- engine mechanics --- *)

let test_budget () =
  let cat, cfg = setup () in
  let g = Builder.build_text cfg figure2_query in
  let stats = rewrite ~budget:1 cat g in
  Alcotest.(check int) "stopped at one firing" 1 stats.Engine.rules_fired;
  Alcotest.(check bool) "budget exhausted" true stats.Engine.budget_exhausted;
  (* the QGM left behind is consistent (the paper's guarantee) *)
  Alcotest.(check (list string)) "consistent at budget stop" [] (Check.check g);
  (* budget 0 fires nothing *)
  let g2 = Builder.build_text cfg figure2_query in
  let stats2 = rewrite ~budget:0 cat g2 in
  Alcotest.(check int) "zero budget" 0 stats2.Engine.rules_fired

let strategies_agree text =
  let results =
    List.map
      (fun strategy ->
        let cat, cfg = setup () in
        let g = Builder.build_text cfg text in
        let _ = rewrite ~strategy cat g in
        Alcotest.(check (list string)) "consistent" [] (Check.check g);
        List.length (Qgm.reachable_boxes g))
      [
        Engine.Sequential;
        Engine.Priority;
        Engine.Statistical { weights = [ ("merge_select", 5.0) ]; seed = 7 };
      ]
  in
  match results with
  | a :: rest -> List.iter (fun b -> Alcotest.(check int) "same fixpoint" a b) rest
  | [] -> ()

let test_strategies () = strategies_agree figure2_query

let test_searches () =
  List.iter
    (fun search ->
      let cat, cfg = setup () in
      let g = Builder.build_text cfg figure2_query in
      let _ = rewrite ~search cat g in
      Alcotest.(check int) "fixpoint boxes" 3 (List.length (Qgm.reachable_boxes g)))
    [ Engine.Depth_first; Engine.Breadth_first ]

let test_rule_classes () =
  let cat, _ = setup () in
  let set = Base_rules.default_set ~catalog:cat in
  let classes = Rule.classes set in
  List.iter
    (fun cl ->
      Alcotest.(check bool) ("class " ^ cl) true (List.mem cl classes))
    [ "merge"; "predicate"; "projection"; "subquery"; "redundant"; "magic" ];
  (* class filtering works *)
  let merge_only = Rule.in_classes set [ "merge" ] in
  Alcotest.(check bool) "nonempty" true (merge_only <> []);
  Alcotest.(check bool) "only merge" true
    (List.for_all (fun r -> r.Rule.rule_class = "merge") merge_only)

let test_custom_rule () =
  let cat, cfg = setup () in
  let fired_flag = ref false in
  let rule =
    Rule.make ~name:"dbc_noop" ~rule_class:"custom"
      ~condition:(fun ctx -> ctx.Rule.box.Qgm.b_kind = Qgm.Select && not !fired_flag)
      ~action:(fun _ -> fired_flag := true)
      ()
  in
  let set = Base_rules.default_set ~catalog:cat in
  Rule.add set rule;
  let g = Builder.build_text cfg "SELECT partno FROM quotations" in
  let stats = Engine.run ~rules:(Rule.all set) g in
  Alcotest.(check bool) "custom rule ran" true (List.mem_assoc "dbc_noop" stats.Engine.firings)

let suite =
  ( "rewrite",
    [
      case "figure 2 transformation" test_figure2;
      case "rule 1 requires uniqueness" test_rule1_needs_uniqueness;
      case "view merging" test_view_merging;
      case "predicate push-down" test_predicate_pushdown;
      case "push through GROUP BY" test_pushdown_through_group_by;
      case "push through set op" test_pushdown_through_set_op;
      case "projection pruning" test_projection_pruning;
      case "redundant join elimination" test_redundant_join_elimination;
      case "predicate replication" test_replication;
      case "magic selection push" test_magic;
      case "magic guards propagation" test_magic_not_on_unpropagated;
      case "budget stops consistently" test_budget;
      case "control strategies agree" test_strategies;
      case "search strategies" test_searches;
      case "rule classes" test_rule_classes;
      case "DBC custom rule" test_custom_rule;
    ] )
