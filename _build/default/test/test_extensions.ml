(** Tests for the bundled DBC extensions, exercised strictly through the
    public extension API — the paper's extensibility claims made
    executable. *)

open Sb_storage
open Test_util
module Qgm = Sb_qgm.Qgm
module Plan = Sb_optimizer.Plan

let rec collect_ops (p : Plan.plan) =
  p.Plan.op :: List.concat_map collect_ops p.Plan.inputs

let has_op pred plan = List.exists pred (collect_ops plan)

(* --- outer join --- *)

let test_outer_join_requires_install () =
  let db = sample_db () in
  expect_error db "SELECT d.dname FROM dept d LEFT OUTER JOIN emp e ON d.id = e.dept"

let test_outer_join_pf_quantifier () =
  let db = sample_db ~extensions:true () in
  let g =
    Starburst.build_qgm db
      (Sb_hydrogen.Parser.query_text
         "SELECT d.dname FROM dept d LEFT OUTER JOIN emp e ON d.id = e.dept")
  in
  let pf_count =
    List.fold_left
      (fun acc (b : Qgm.box) ->
        acc
        + List.length (List.filter (fun q -> q.Qgm.q_type = Qgm.Ext "PF") b.Qgm.b_quants))
      0 (Qgm.reachable_boxes g)
  in
  Alcotest.(check int) "one PF quantifier" 1 pf_count

let test_outer_join_plan_kind () =
  let db = sample_db ~extensions:true () in
  let p =
    Starburst.compile_text db
      "SELECT d.dname, e.salary FROM dept d LEFT OUTER JOIN emp e ON d.id = e.dept"
  in
  Alcotest.(check bool) "left_outer join kind" true
    (has_op
       (function Plan.Join { j_kind = Plan.J_ext "left_outer"; _ } -> true | _ -> false)
       p)

let test_outer_join_reduction_rule () =
  let db = sample_db ~extensions:true () in
  let g =
    Starburst.build_qgm db
      (Sb_hydrogen.Parser.query_text
         "SELECT d.dname FROM dept d LEFT OUTER JOIN emp e ON d.id = e.dept \
          WHERE e.salary > 100")
  in
  ignore (Starburst.rewrite db g);
  (* all PF quantifiers reduced to F *)
  let pf_left =
    List.exists
      (fun (b : Qgm.box) ->
        List.exists (fun q -> q.Qgm.q_type = Qgm.Ext "PF") b.Qgm.b_quants)
      (Qgm.reachable_boxes g)
  in
  Alcotest.(check bool) "reduced to inner join" false pf_left;
  (* and the reduction agrees with the unrewritten result *)
  let text =
    "SELECT d.dname FROM dept d LEFT OUTER JOIN emp e ON d.id = e.dept WHERE \
     e.salary > 100"
  in
  let db2 = sample_db ~extensions:true () in
  ignore (Starburst.run db2 "SET rewrite = off");
  check_bag "same rows" (q db2 text) (q (sample_db ~extensions:true ()) text)

let test_outer_join_pushdown_rule () =
  let db = sample_db ~extensions:true () in
  let text =
    "SELECT d.dname, e.salary FROM dept d LEFT OUTER JOIN emp e ON d.id = \
     e.dept WHERE d.region = 'west'"
  in
  let g = Starburst.build_qgm db (Sb_hydrogen.Parser.query_text text) in
  let stats = Starburst.rewrite db g in
  Alcotest.(check bool) "push-through rule fired" true
    (List.mem_assoc "oj_push_through_pf" stats.Sb_rewrite.Engine.firings);
  (* semantics preserved *)
  let db2 = sample_db ~extensions:true () in
  ignore (Starburst.run db2 "SET rewrite = off");
  check_bag "same rows" (q db2 text) (q db text)

let test_right_outer_normalization () =
  let db = sample_db ~extensions:true () in
  check_bag "right outer = left flipped"
    (q db "SELECT d.dname, e.eid FROM dept d LEFT OUTER JOIN emp e ON d.id = e.dept")
    (q db "SELECT d.dname, e.eid FROM emp e RIGHT OUTER JOIN dept d ON d.id = e.dept")

(* --- spatial --- *)

let spatial_db () =
  let db = sample_db ~extensions:true () in
  ignore (Starburst.run db "CREATE TABLE places (name STRING, loc BOX)");
  ignore
    (Starburst.run db
       "INSERT INTO places VALUES ('a', make_box(0,0,2,2)), ('b', \
        make_box(10,10,12,12)), ('c', make_box(1,1,3,3)), ('d', make_box(50,50,51,51))");
  ignore (Starburst.run db "ANALYZE");
  db

let test_spatial_functions () =
  let db = spatial_db () in
  check_bag "overlaps" [ row [ s "a" ]; row [ s "c" ] ]
    (q db "SELECT name FROM places WHERE overlaps(loc, make_box(1.5, 1.5, 1.6, 1.6))");
  check_bag "contains" [ row [ s "b" ] ]
    (q db "SELECT name FROM places WHERE contains(make_box(9,9,13,13), loc)");
  check_bag "area" [ row [ f 4.0 ] ]
    (q db "SELECT area(loc) FROM places WHERE name = 'a'");
  (* BOX values group and compare *)
  check_bag "count distinct boxes" [ row [ i 4 ] ]
    (q db "SELECT count(DISTINCT loc) FROM places")

let test_rtree_index_used_and_correct () =
  let db = spatial_db () in
  (* larger data so the R-tree wins on cost *)
  let values =
    List.init 500 (fun k ->
        Printf.sprintf "('x%d', make_box(%d, %d, %d, %d))" k (k mod 50 * 5)
          (k / 50 * 5)
          ((k mod 50 * 5) + 2)
          ((k / 50 * 5) + 2))
    |> String.concat ","
  in
  ignore (Starburst.run db ("INSERT INTO places VALUES " ^ values));
  ignore (Starburst.run db "ANALYZE");
  let query = "SELECT name FROM places WHERE overlaps(loc, make_box(3, 3, 8, 8))" in
  let before = q db query in
  ignore (Starburst.run db "CREATE INDEX places_loc ON places (loc) USING rtree");
  ignore (Starburst.run db "ANALYZE");
  let p = Starburst.compile_text db query in
  Alcotest.(check bool) "rtree probe chosen" true
    (has_op
       (function
         | Plan.Idx_access { ix_probe = Plan.Pr_custom ("overlaps", _); _ } -> true
         | _ -> false)
       p);
  check_bag "index agrees with scan" before (q db query)

let test_box_literal_validation () =
  let db = spatial_db () in
  (* ext type parse via make_box only; direct string payloads go through
     Datatype validation when inserted as Ext — invalid payload from
     make_box with NULL yields NULL, filtered by NOT NULL check *)
  check_bag "null box" [ row [ nul ] ] (q db "SELECT make_box(NULL, 1, 2, 3) FROM places WHERE name = 'a'")

(* --- sampling --- *)

let test_sample () =
  let db = sample_db ~extensions:true () in
  check_bag "sample size" [ row [ i 3 ] ]
    (q db "SELECT count(*) FROM sample(quotations, 3) s");
  check_bag "sample larger than table" [ row [ i 5 ] ]
    (q db "SELECT count(*) FROM sample(quotations, 100) s");
  check_bag "sample zero" [ row [ i 0 ] ]
    (q db "SELECT count(*) FROM sample(quotations, 0) s");
  (* sampled rows are real rows *)
  let rows = q db "SELECT partno FROM sample(quotations, 2) s" in
  List.iter
    (fun r ->
      let v = Value.as_int r.(0) in
      Alcotest.(check bool) "member" true (List.mem v [ 1; 2; 3; 4 ]))
    rows;
  (* table functions compose with WHERE and joins *)
  check_bag "composed" [ row [ i 1 ] ]
    (q db
       "SELECT count(*) FROM sample(quotations, 5) s, inventory i WHERE \
        s.partno = i.partno AND i.type = 'DISK'")

(* --- majority --- *)

let test_majority_semantics () =
  let db = sample_db ~extensions:true () in
  (* depts of emp = [1;1;2;1;3]: 1 is the strict majority *)
  check_bag "strict majority" [ row [ i 1 ] ]
    (q db "SELECT id FROM dept d WHERE d.id = MAJORITY (SELECT dept FROM emp)");
  (* empty set: false for every candidate *)
  check_bag "empty set" []
    (q db "SELECT id FROM dept d WHERE d.id = MAJORITY (SELECT dept FROM emp WHERE salary > 999)")

(* --- stddev etc. --- *)

let test_stats_aggregates () =
  let db = sample_db ~extensions:true () in
  let rows =
    q db "SELECT stddev(salary), variance(salary), median(salary) FROM emp WHERE dept = 1"
  in
  (match rows with
  | [ r ] ->
    let sd = Value.as_float r.(0) and var = Value.as_float r.(1) and med = Value.as_float r.(2) in
    Alcotest.(check bool) "variance = sd^2" true (Float.abs (var -. (sd *. sd)) < 1e-9);
    (* salaries 100, 120, 95 -> median 100 *)
    Alcotest.(check (float 1e-9)) "median" 100.0 med
  | _ -> Alcotest.fail "one row expected");
  (* stddev of a single value is NULL *)
  check_bag "stddev singleton" [ row [ nul ] ]
    (q db "SELECT stddev(salary) FROM emp WHERE dept = 2")

(* --- fixed storage manager as an extension-selected engine --- *)

let test_fixed_storage_via_sql () =
  let db = sample_db () in
  ignore (Starburst.run db "CREATE TABLE fixed_t (a INT, b FLOAT) USING fixed");
  ignore (Starburst.run db "INSERT INTO fixed_t VALUES (1, 1.5), (2, 2.5)");
  check_bag "fixed rows" [ row [ i 1; f 1.5 ]; row [ i 2; f 2.5 ] ]
    (q db "SELECT * FROM fixed_t");
  (* fixed manager refuses variable-length schemas *)
  expect_error db "CREATE TABLE bad_t (a STRING) USING fixed"

let suite =
  ( "extensions",
    [
      case "outer join requires install" test_outer_join_requires_install;
      case "outer join PF quantifier" test_outer_join_pf_quantifier;
      case "outer join plan kind" test_outer_join_plan_kind;
      case "outer join reduction rule" test_outer_join_reduction_rule;
      case "outer join predicate push-through" test_outer_join_pushdown_rule;
      case "right outer normalization" test_right_outer_normalization;
      case "spatial functions" test_spatial_functions;
      case "rtree index used and correct" test_rtree_index_used_and_correct;
      case "box null handling" test_box_literal_validation;
      case "sampling table function" test_sample;
      case "majority semantics" test_majority_semantics;
      case "statistics aggregates" test_stats_aggregates;
      case "fixed storage via SQL" test_fixed_storage_via_sql;
    ] )
