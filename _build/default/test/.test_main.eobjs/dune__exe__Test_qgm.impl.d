test/test_qgm.ml: Alcotest Catalog Datatype Hashtbl List Sb_hydrogen Sb_qgm Sb_storage Schema String Test_util
