test/test_features.ml: Alcotest Array Hashtbl List Page Printf Sb_extensions Sb_optimizer Sb_qes Sb_rewrite Sb_storage Starburst String Test_util Value
