test/test_optimizer.ml: Alcotest Array List Printf Sb_optimizer Sb_qgm Sb_storage Starburst String Test_util Value
