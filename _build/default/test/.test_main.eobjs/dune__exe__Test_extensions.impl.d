test/test_extensions.ml: Alcotest Array Float List Printf Sb_hydrogen Sb_optimizer Sb_qgm Sb_rewrite Sb_storage Starburst String Test_util Value
