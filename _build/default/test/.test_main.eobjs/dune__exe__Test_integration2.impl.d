test/test_integration2.ml: Alcotest List Sb_hydrogen Sb_qes Sb_qgm Starburst String Test_util
