test/test_props.ml: Array Char Hashtbl List Printf QCheck2 QCheck_alcotest Random Sb_hydrogen Sb_optimizer Sb_storage Starburst String Test_util Tuple Value
