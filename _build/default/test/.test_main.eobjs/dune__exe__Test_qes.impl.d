test/test_qes.ml: Alcotest Printf Sb_qes Starburst Test_util
