test/test_rewrite.ml: Alcotest Catalog Datatype List Sb_hydrogen Sb_qgm Sb_rewrite Sb_storage Schema Test_util
