test/test_util.ml: Alcotest Array List Sb_extensions Sb_hydrogen Sb_optimizer Sb_qes Sb_qgm Sb_storage Starburst String Tuple Value
