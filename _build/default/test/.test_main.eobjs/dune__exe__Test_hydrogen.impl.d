test/test_hydrogen.ml: Alcotest Ast Functions Lexer List Parser Pretty Result Sb_hydrogen Sb_storage Test_util
