test/test_integration.ml: Alcotest List Starburst String Test_util
