(** QES-level tests: execution counters, the evaluate-on-demand
    correlation cache, the OR operator's branch accounting, join kinds,
    and the fixpoint driver. *)

open Test_util
module Exec = Sb_qes.Exec

let test_counters_scan () =
  let db = sample_db () in
  ignore (q db "SELECT partno FROM quotations");
  let c = Starburst.counters db in
  Alcotest.(check int) "scanned all rows" 5 c.Exec.c_scanned;
  Alcotest.(check int) "output" 5 c.Exec.c_output

let test_evaluate_on_demand_cache () =
  let db = sample_db () in
  (* a correlated subquery whose correlation value repeats: partno = 1
     appears twice in quotations, so one evaluation must be a cache hit *)
  ignore (Starburst.run db "SET rewrite = off");
  ignore
    (q db
       "SELECT partno FROM quotations q WHERE EXISTS (SELECT * FROM inventory \
        i WHERE i.partno = q.partno)");
  let c = Starburst.counters db in
  Alcotest.(check bool) "cache hits occurred" true (c.Exec.c_sub_cache_hits >= 1);
  Alcotest.(check bool) "fewer evals than outer rows" true (c.Exec.c_sub_evals < 5)

let test_or_operator_counters () =
  let db = sample_db () in
  ignore
    (q db
       "SELECT partno FROM quotations q WHERE q.price > 50 OR q.partno = \
        (SELECT partno FROM inventory WHERE onhand_qty = 10)");
  let c = Starburst.counters db in
  (* 5 outer tuples, first branch tried for each; second branch only for
     the tuples the first rejects *)
  Alcotest.(check bool) "branch evals bounded" true
    (c.Exec.c_or_branch_evals >= 5 && c.Exec.c_or_branch_evals <= 10)

let test_fixpoint_rounds () =
  let db = sample_db () in
  ignore
    (q db
       "WITH RECURSIVE paths (src, dst) AS (SELECT src, dst FROM edges UNION \
        SELECT p.src, e.dst FROM paths p, edges e WHERE p.dst = e.src) SELECT \
        * FROM paths");
  let c = Starburst.counters db in
  (* chain of length 3 plus one isolated edge: closure converges in 3–4 rounds *)
  Alcotest.(check bool) "rounds" true (c.Exec.c_fixpoint_rounds >= 2 && c.Exec.c_fixpoint_rounds <= 5)

let test_index_probe_counter () =
  let db = sample_db () in
  ignore (Starburst.run db "CREATE INDEX inv_part ON inventory (partno)");
  ignore (Starburst.run db "ANALYZE");
  ignore (q db "SELECT onhand_qty FROM inventory WHERE partno = 2");
  let c = Starburst.counters db in
  if c.Exec.c_index_probes > 0 then
    Alcotest.(check bool) "probe cheaper than scan" true (c.Exec.c_scanned <= 2)

let test_set_predicate_kind () =
  let db = sample_db ~extensions:true () in
  (* MAJORITY over emp depts [1;1;2;1;3] *)
  check_bag "majority" [ row [ i 1 ] ]
    (q db "SELECT id FROM dept d WHERE d.id = MAJORITY (SELECT dept FROM emp)");
  check_bag "atleast_third" [ row [ i 1 ] ]
    (q db "SELECT id FROM dept d WHERE d.id = atleast_third (SELECT dept FROM emp)")

let test_left_outer_kind () =
  let db = sample_db ~extensions:true () in
  check_bag "left outer"
    [ row [ s "eng"; f 100.0 ]; row [ s "eng"; f 120.0 ]; row [ s "eng"; f 95.0 ];
      row [ s "sales"; f 90.0 ]; row [ s "legal"; f 150.0 ]; row [ s "empty"; nul ] ]
    (q db "SELECT d.dname, e.salary FROM dept d LEFT OUTER JOIN emp e ON d.id = e.dept");
  (* ON predicates never filter preserved rows *)
  check_bag "on pred keeps preserved"
    [ row [ s "eng"; f 120.0 ]; row [ s "sales"; nul ]; row [ s "legal"; f 150.0 ];
      row [ s "empty"; nul ] ]
    (q db
       "SELECT d.dname, e.salary FROM dept d LEFT OUTER JOIN emp e ON d.id = \
        e.dept AND e.salary > 100");
  (* WHERE predicates on the preserved side do filter *)
  check_bag "where filters"
    [ row [ s "eng" ]; row [ s "legal" ] ]
    (q db
       "SELECT DISTINCT d.dname FROM dept d LEFT OUTER JOIN emp e ON d.id = \
        e.dept WHERE d.region = 'west'")

let test_temp_rescan () =
  let db = sample_db () in
  (* an uncorrelated NL-join inner is TEMP'ed: the inner must be
     evaluated once, not once per outer row *)
  ignore (Starburst.run db "SET rewrite = off");
  ignore
    (q db
       "SELECT q.partno FROM quotations q WHERE q.order_qty > ALL (SELECT \
        order_qty FROM quotations WHERE supplier = 'initech')");
  let c = Starburst.counters db in
  (* one materialization for the TEMP, one for the join's demand cache;
     crucially NOT one per outer tuple *)
  Alcotest.(check bool) "inner evaluated once" true (c.Exec.c_sub_evals <= 2);
  Alcotest.(check bool) "subsequent outers hit the cache" true
    (c.Exec.c_sub_cache_hits >= 3)

let test_like_matching () =
  let db = sample_db () in
  let like pat = Printf.sprintf "SELECT count(*) FROM quotations WHERE supplier LIKE '%s'" pat in
  check_bag "percent both" [ row [ i 2 ] ] (q db (like "%cm%"));
  check_bag "anchor" [ row [ i 0 ] ] (q db (like "cme"));
  check_bag "underscore" [ row [ i 2 ] ] (q db (like "_lobe_"));
  check_bag "all" [ row [ i 5 ] ] (q db (like "%"))

let test_division_by_zero_is_null () =
  let db = sample_db () in
  check_bag "div0" [ row [ nul ] ] (q db "SELECT 1 / (partno - partno) FROM quotations WHERE partno = 2 AND supplier = 'acme'")

let suite =
  ( "qes",
    [
      case "scan counters" test_counters_scan;
      case "evaluate-on-demand cache" test_evaluate_on_demand_cache;
      case "OR operator branch accounting" test_or_operator_counters;
      case "fixpoint rounds" test_fixpoint_rounds;
      case "index probe counter" test_index_probe_counter;
      case "set-predicate join kind" test_set_predicate_kind;
      case "left-outer join kind" test_left_outer_kind;
      case "uncorrelated inner evaluated once" test_temp_rescan;
      case "LIKE matching" test_like_matching;
      case "division by zero yields NULL" test_division_by_zero_is_null;
    ] )
