(** Tests for the cost-based optimizer: STAR machinery, access-path
    selection, glue (SORT/SHIP), join enumeration (spaces and toggles),
    CHOOSE resolution, interesting-order pruning, and the SHIP/site
    property. *)

open Sb_storage
module Qgm = Sb_qgm.Qgm
module Plan = Sb_optimizer.Plan
module Star = Sb_optimizer.Star
module Generator = Sb_optimizer.Generator
open Test_util

(* find operators in a plan *)
let rec collect_ops (p : Plan.plan) =
  p.Plan.op :: List.concat_map collect_ops p.Plan.inputs

let has_op pred plan = List.exists pred (collect_ops plan)

let plan_of db text = Starburst.compile_text db text

(** A db with a larger table so that index access wins. *)
let big_db () =
  let db = sample_db () in
  ignore (Starburst.run db "CREATE TABLE big (k INT NOT NULL UNIQUE, grp INT, payload STRING)");
  let values =
    List.init 2000 (fun k -> Printf.sprintf "(%d, %d, 'p%d')" k (k mod 20) k)
    |> String.concat ","
  in
  ignore (Starburst.run db ("INSERT INTO big VALUES " ^ values));
  ignore (Starburst.run db "CREATE INDEX big_k ON big (k)");
  ignore (Starburst.run db "CREATE INDEX big_grp ON big (grp)");
  ignore (Starburst.run db "ANALYZE");
  db

let test_index_selection () =
  let db = big_db () in
  (* selective equality: index *)
  let p = plan_of db "SELECT payload FROM big WHERE k = 17" in
  Alcotest.(check bool) "eq uses index" true
    (has_op (function Plan.Idx_access { ix_index = "big_k"; _ } -> true | _ -> false) p);
  (* unselective predicate: scan *)
  let p2 = plan_of db "SELECT payload FROM big WHERE grp >= 0" in
  Alcotest.(check bool) "unselective scans" true
    (has_op (function Plan.Scan _ -> true | _ -> false) p2);
  (* range probe *)
  let p3 = plan_of db "SELECT payload FROM big WHERE k > 10 AND k < 14" in
  Alcotest.(check bool) "range uses index" true
    (has_op
       (function
         | Plan.Idx_access { ix_probe = Plan.Pr_range (Some _, Some _); _ } -> true
         | _ -> false)
       p3)

let test_index_results_match_scan () =
  let db = big_db () in
  let with_index = q db "SELECT payload FROM big WHERE k = 42" in
  ignore (Starburst.run db "DROP INDEX big_k ON big");
  ignore (Starburst.run db "DROP INDEX big_grp ON big");
  let without = q db "SELECT payload FROM big WHERE k = 42" in
  check_bag "same rows" with_index without

let test_join_method_choice () =
  let db = big_db () in
  (* equal-sized large tables favour hash or merge over NL *)
  let p = plan_of db "SELECT a.payload FROM big a, big b WHERE a.k = b.grp" in
  Alcotest.(check bool) "not plain NL" true
    (has_op
       (function
         | Plan.Join { j_method = Plan.Hash_join | Plan.Sort_merge; _ } -> true
         | _ -> false)
       p)

let test_sort_glue () =
  let db = sample_db () in
  let p = plan_of db "SELECT price FROM quotations ORDER BY price" in
  Alcotest.(check bool) "sort present" true
    (has_op (function Plan.Sort _ -> true | _ -> false) p);
  (* ordered index access satisfies ORDER BY without a sort *)
  let db2 = big_db () in
  let p2 = plan_of db2 "SELECT k FROM big WHERE k > 1990 ORDER BY k" in
  ignore p2
(* whether the optimizer exploits the index order here is a cost call;
   the correctness check is that results are ordered, covered below *)

let test_order_by_correct_after_optimizer () =
  let db = big_db () in
  let rows = q db "SELECT k FROM big WHERE grp = 3 ORDER BY k DESC LIMIT 5" in
  let ks = List.map (fun r -> Value.as_int r.(0)) rows in
  Alcotest.(check (list int)) "descending" [ 1983; 1963; 1943; 1923; 1903 ] ks

let test_join_enumeration_space () =
  let db = sample_db () in
  let opt = db.Starburst.Corona.optimizer in
  let chain n =
    (* chain query over n copies of edges *)
    let tables =
      List.init n (fun k -> Printf.sprintf "edges e%d" k) |> String.concat ", "
    in
    let preds =
      List.init (n - 1) (fun k -> Printf.sprintf "e%d.dst = e%d.src" k (k + 1))
      |> String.concat " AND "
    in
    Printf.sprintf "SELECT e0.src FROM %s WHERE %s" tables preds
  in
  let measure ~bushy ~cartesian text =
    opt.Generator.allow_bushy <- bushy;
    opt.Generator.allow_cartesian <- cartesian;
    opt.Generator.enum_pairs <- 0;
    let _ = Starburst.compile_text db text in
    opt.Generator.enum_pairs
  in
  let linear = measure ~bushy:false ~cartesian:false (chain 5) in
  let bushy = measure ~bushy:true ~cartesian:false (chain 5) in
  let cartesian = measure ~bushy:true ~cartesian:true (chain 5) in
  opt.Generator.allow_bushy <- false;
  opt.Generator.allow_cartesian <- false;
  Alcotest.(check bool) "bushy expands space" true (bushy > linear);
  Alcotest.(check bool) "cartesian expands further" true (cartesian > bushy)

let test_join_order_quality () =
  let db = big_db () in
  (* joining a 1-row selection against 2000 rows: the selective side
     should not be the full inner of a Cartesian-ish NL plan; just check
     the plan's estimated cost is far below the naive NL bound *)
  let p =
    plan_of db
      "SELECT a.payload FROM big a, big b WHERE a.grp = b.grp AND b.k = 7"
  in
  Alcotest.(check bool) "plan found" true (Plan.size p > 2);
  Alcotest.(check bool) "cost sane" true (p.Plan.props.Plan.p_cost < 100000.0)

let test_disconnected_join_falls_back () =
  let db = sample_db () in
  (* no join predicate at all: needs the Cartesian fallback *)
  check_bag "cartesian count" [ row [ i 20 ] ]
    (q db "SELECT count(*) FROM quotations, inventory")

let test_bushy_same_results () =
  let db = sample_db () in
  let text =
    "SELECT q.partno FROM quotations q, inventory i, dept d, emp e WHERE \
     q.partno = i.partno AND d.id = e.dept AND e.salary > 100 AND i.type = 'CPU'"
  in
  let r1 = q db text in
  db.Starburst.Corona.optimizer.Generator.allow_bushy <- true;
  let r2 = q db text in
  db.Starburst.Corona.optimizer.Generator.allow_bushy <- false;
  check_bag "bushy agrees" r1 r2

let test_strategies_same_results () =
  let db = sample_db () in
  let text =
    "SELECT q.partno, i.onhand_qty FROM quotations q, inventory i WHERE \
     q.partno = i.partno AND q.price < 50 ORDER BY 1, 2"
  in
  let r_default = q db text in
  let sctx = db.Starburst.Corona.optimizer.Generator.sctx in
  sctx.Star.strategy <- Star.greedy_strategy;
  let r_greedy = q db text in
  sctx.Star.strategy <- Star.default_strategy;
  check_rows "greedy agrees" r_default r_greedy

let test_choose_resolution () =
  let db = sample_db () in
  (* quotations.partno is not unique, so the rewrite produces a CHOOSE;
     optimization must resolve it and execution must be correct *)
  check_bag "choose query"
    [ row [ i 1 ]; row [ i 2 ]; row [ i 3 ]; row [ i 4 ] ]
    (q db "SELECT partno FROM inventory WHERE partno IN (SELECT partno FROM quotations)");
  let p =
    plan_of db "SELECT partno FROM inventory WHERE partno IN (SELECT partno FROM quotations)"
  in
  Alcotest.(check bool) "no CHOOSE op survives" false
    (has_op (function Plan.Choose_op -> true | _ -> false) p)

let test_ship_property () =
  let db = sample_db () in
  Starburst.Extension.set_site_map db (fun t -> if t = "inventory" then "east" else "local");
  let p =
    plan_of db
      "SELECT q.partno FROM quotations q, inventory i WHERE q.partno = i.partno"
  in
  Alcotest.(check bool) "ship inserted" true
    (has_op (function Plan.Ship _ -> true | _ -> false) p);
  (* execution still correct *)
  check_bag "distributed result"
    [ row [ i 1 ]; row [ i 1 ]; row [ i 2 ]; row [ i 3 ]; row [ i 4 ] ]
    (q db "SELECT q.partno FROM quotations q, inventory i WHERE q.partno = i.partno");
  Starburst.Extension.set_site_map db (fun _ -> "local")

let test_star_inventory () =
  let db = sample_db () in
  let sctx = db.Starburst.Corona.optimizer.Generator.sctx in
  (* the paper: R* strategies in under 20 rules *)
  Alcotest.(check bool) "under 20 alternatives" true (Star.alternative_count sctx < 20);
  Alcotest.(check bool) "at least the base STARs" true (Star.star_count sctx >= 4)

let test_custom_star () =
  let db = sample_db () in
  let invoked = ref false in
  Starburst.Extension.register_star db "TableAccess"
    [
      {
        Star.alt_name = "spy";
        alt_rank = 2;
        alt_cond =
          (fun _ _ ->
            invoked := true;
            false);
        alt_produce = (fun _ _ -> []);
      };
    ];
  ignore (plan_of db "SELECT partno FROM quotations");
  Alcotest.(check bool) "custom alternative consulted" true !invoked

let test_property_functions () =
  let db = big_db () in
  let p = plan_of db "SELECT k FROM big WHERE grp = 3" in
  (* estimated cardinality should be near 100 (2000 rows / 20 groups) *)
  let card = p.Plan.props.Plan.p_card in
  Alcotest.(check bool) "card estimate sane" true (card > 20.0 && card < 500.0);
  Alcotest.(check bool) "cost positive" true (p.Plan.props.Plan.p_cost > 0.0)

let suite =
  ( "optimizer",
    [
      case "index selection" test_index_selection;
      case "index matches scan results" test_index_results_match_scan;
      case "join method choice" test_join_method_choice;
      case "sort glue" test_sort_glue;
      case "order by after optimization" test_order_by_correct_after_optimizer;
      case "join enumeration space toggles" test_join_enumeration_space;
      case "join order quality" test_join_order_quality;
      case "disconnected joins fall back" test_disconnected_join_falls_back;
      case "bushy produces same results" test_bushy_same_results;
      case "strategies produce same results" test_strategies_same_results;
      case "CHOOSE resolution" test_choose_resolution;
      case "SHIP site property" test_ship_property;
      case "STAR inventory under 20 rules" test_star_inventory;
      case "custom STAR alternative" test_custom_star;
      case "property functions" test_property_functions;
    ] )
