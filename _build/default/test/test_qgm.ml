(** Tests for the Query Graph Model: the builder's translation (name
    resolution, semantic analysis, quantifier types), consistency
    checking, graph navigation, and the copy machinery. *)

open Sb_storage
module Qgm = Sb_qgm.Qgm
module Builder = Sb_qgm.Builder
module Check = Sb_qgm.Check
open Test_util

let config () =
  let cat = Catalog.create () in
  let mk name schema = ignore (Catalog.create_table cat ~name ~schema ()) in
  mk "quotations"
    [| Schema.column ~nullable:false "partno" Datatype.Int;
       Schema.column "price" Datatype.Float;
       Schema.column "order_qty" Datatype.Int |];
  mk "inventory"
    [| Schema.column ~nullable:false ~unique:true "partno" Datatype.Int;
       Schema.column "onhand_qty" Datatype.Int;
       Schema.column "type" Datatype.String |];
  mk "edges" [| Schema.column "src" Datatype.Int; Schema.column "dst" Datatype.Int |];
  (cat, Builder.make_config ~catalog:cat ~functions:(Sb_hydrogen.Functions.create ()))

let build text =
  let _, cfg = config () in
  Builder.build_text cfg text

let top_of g = Qgm.top_box g

let quant_types g =
  List.map (fun q -> q.Qgm.q_type) (top_of g).Qgm.b_quants

let test_paper_query_shape () =
  let g =
    build
      "SELECT partno, price, order_qty FROM quotations Q1 WHERE Q1.partno IN \
       (SELECT partno FROM inventory Q3 WHERE Q3.onhand_qty < Q1.order_qty AND \
       Q3.type = 'CPU')"
  in
  Alcotest.(check int) "boxes" 4 (List.length (Qgm.reachable_boxes g));
  Alcotest.(check bool) "quant types F,E" true (quant_types g = [ Qgm.F; Qgm.E ]);
  let top = top_of g in
  Alcotest.(check int) "head arity" 3 (Qgm.arity top);
  Alcotest.(check int) "one conjunct" 1 (List.length top.Qgm.b_preds);
  (* the subquery is correlated: its inner box references Q1 *)
  let sub =
    List.find (fun q -> q.Qgm.q_type = Qgm.E) top.Qgm.b_quants |> fun q ->
    Qgm.box g q.Qgm.q_input
  in
  let refs =
    List.concat_map (fun (p : Qgm.pred) -> Qgm.quant_refs p.Qgm.p_expr) sub.Qgm.b_preds
  in
  let top_f = List.find (fun q -> q.Qgm.q_type = Qgm.F) top.Qgm.b_quants in
  Alcotest.(check bool) "correlated" true (List.mem top_f.Qgm.q_id refs);
  Alcotest.(check (list string)) "consistent" [] (Check.check g)

let test_quantifier_types () =
  let cases =
    [
      ("SELECT partno FROM quotations WHERE partno IN (SELECT partno FROM inventory)", [ Qgm.F; Qgm.E ]);
      ("SELECT partno FROM quotations WHERE EXISTS (SELECT * FROM inventory)", [ Qgm.F; Qgm.E ]);
      ("SELECT partno FROM quotations WHERE partno NOT IN (SELECT partno FROM inventory)", [ Qgm.F; Qgm.A ]);
      ("SELECT partno FROM quotations WHERE NOT EXISTS (SELECT * FROM inventory)", [ Qgm.F; Qgm.A ]);
      ("SELECT partno FROM quotations WHERE price > ALL (SELECT onhand_qty FROM inventory)", [ Qgm.F; Qgm.A ]);
      ("SELECT partno FROM quotations WHERE price > ANY (SELECT onhand_qty FROM inventory)", [ Qgm.F; Qgm.E ]);
      ("SELECT partno FROM quotations WHERE price = (SELECT max(price) FROM quotations)", [ Qgm.F; Qgm.S ]);
    ]
  in
  List.iter
    (fun (text, expected) ->
      let g = build text in
      if quant_types g <> expected then Alcotest.failf "quantifier types for %s" text)
    cases

let test_semantic_errors () =
  let _, cfg = config () in
  let bad =
    [
      "SELECT nosuch FROM quotations";
      "SELECT partno FROM nosuch";
      "SELECT q.partno FROM quotations p";
      "SELECT partno FROM quotations, inventory";  (* ambiguous partno *)
      "SELECT partno + price FROM quotations WHERE partno";  (* non-boolean WHERE *)
      "SELECT nosuchfn(partno) FROM quotations";
      "SELECT partno FROM quotations q, quotations q";  (* duplicate alias *)
      "SELECT price FROM quotations GROUP BY partno";  (* not grouped *)
      "SELECT partno FROM quotations HAVING price > 1";  (* HAVING without GROUP *)
      "SELECT count(*) + partno FROM quotations GROUP BY price";  (* mixed *)
      "(SELECT partno FROM quotations) UNION (SELECT partno, price FROM quotations)";
      "SELECT * FROM quotations ORDER BY 9";
      "SELECT 'a' + 1 FROM quotations";
      "SELECT substr(partno, 1, 2) FROM quotations";  (* type error in function *)
      "WITH RECURSIVE r AS (SELECT src FROM edges UNION SELECT n FROM r) SELECT * FROM r";
      (* recursive def requires explicit columns *)
    ]
  in
  List.iter
    (fun text ->
      match Builder.build_text cfg text with
      | _ -> Alcotest.failf "expected semantic error: %s" text
      | exception Builder.Semantic_error _ -> ())
    bad

let test_group_by_shape () =
  let g =
    build
      "SELECT supplier_region, count(*) AS n FROM (SELECT type AS \
       supplier_region, partno FROM inventory) v GROUP BY supplier_region \
       HAVING count(*) > 1"
  in
  let kinds = List.map (fun b -> b.Qgm.b_kind) (Qgm.reachable_boxes g) in
  Alcotest.(check bool) "has group box" true
    (List.exists (function Qgm.Group_by _ -> true | _ -> false) kinds);
  Alcotest.(check (list string)) "consistent" [] (Check.check g);
  (* having became a predicate on the top select *)
  Alcotest.(check int) "having pred" 1 (List.length (top_of g).Qgm.b_preds)

let test_view_expansion () =
  let cat, cfg = config () in
  Catalog.create_view cat ~name:"cpus" ~text:"SELECT partno, onhand_qty FROM inventory WHERE type = 'CPU'" ();
  let g = Builder.build_text cfg "SELECT partno FROM cpus WHERE onhand_qty > 5" in
  Alcotest.(check (list string)) "consistent" [] (Check.check g);
  (* view box present with its label *)
  Alcotest.(check bool) "view box" true
    (List.exists (fun b -> b.Qgm.b_label = "cpus") (Qgm.reachable_boxes g));
  (* cyclic views rejected *)
  Catalog.create_view cat ~name:"v1" ~text:"SELECT * FROM v2" ();
  Catalog.create_view cat ~name:"v2" ~text:"SELECT * FROM v1" ();
  (match Builder.build_text cfg "SELECT * FROM v1" with
  | _ -> Alcotest.fail "expected cyclic view error"
  | exception Builder.Semantic_error _ -> ())

let test_recursion_cycle () =
  let g =
    build
      "WITH RECURSIVE paths (src, dst) AS (SELECT src, dst FROM edges UNION \
       SELECT p.src, e.dst FROM paths p, edges e WHERE p.dst = e.src) SELECT \
       * FROM paths"
  in
  Alcotest.(check bool) "cycle detected" true
    (List.exists
       (fun (b : Qgm.box) -> Qgm.is_recursive g b.Qgm.b_id)
       (Qgm.reachable_boxes g));
  Alcotest.(check (list string)) "consistent" [] (Check.check g)

let test_copy_subgraph () =
  let g =
    build "SELECT partno FROM quotations WHERE partno IN (SELECT partno FROM inventory)"
  in
  let before = List.length (Qgm.reachable_boxes g) in
  let copy = Qgm.copy_subgraph g g.Qgm.top in
  Alcotest.(check bool) "new box id" true (copy <> g.Qgm.top);
  (* base tables are shared, derived boxes copied *)
  g.Qgm.top <- copy;
  Alcotest.(check (list string)) "copy consistent" [] (Check.check g);
  Alcotest.(check int) "same shape" before (List.length (Qgm.reachable_boxes g))

let test_garbage_collect () =
  let g = build "SELECT partno FROM quotations" in
  let orphan = Qgm.new_box g Qgm.Select in
  orphan.Qgm.b_head <- [ { Qgm.hc_name = "x"; hc_type = None; hc_expr = Some (Qgm.Lit (i 1)) } ];
  let before = Hashtbl.length g.Qgm.boxes in
  Qgm.garbage_collect g;
  Alcotest.(check int) "orphan removed" (before - 1) (Hashtbl.length g.Qgm.boxes)

let test_expr_utils () =
  let e =
    Qgm.Bin
      ( Sb_hydrogen.Ast.And,
        Qgm.Bin (Sb_hydrogen.Ast.Eq, Qgm.Col (1, 0), Qgm.Col (2, 1)),
        Qgm.Quantified (3, Qgm.Col (3, 0)) )
  in
  Alcotest.(check (list int)) "quant refs" [ 1; 2; 3 ] (Qgm.quant_refs e);
  Alcotest.(check int) "col refs" 3 (List.length (Qgm.col_refs e));
  Alcotest.(check bool) "has quantified" true (Qgm.contains_quantified e);
  let e' = Qgm.subst_cols (fun q i -> if q = 1 then Some (Qgm.Col (9, i)) else None) e in
  Alcotest.(check bool) "subst" true (List.mem 9 (Qgm.quant_refs e'));
  Alcotest.(check int) "conjuncts" 2 (List.length (Qgm.conjuncts e))

let test_check_catches_violations () =
  let g = build "SELECT partno FROM quotations" in
  let top = top_of g in
  (* dangling column reference *)
  (List.hd top.Qgm.b_head).Qgm.hc_expr <- Some (Qgm.Col (999, 0));
  Alcotest.(check bool) "missing quant flagged" true (Check.check g <> []);
  (List.hd top.Qgm.b_head).Qgm.hc_expr <-
    Some (Qgm.Col ((List.hd top.Qgm.b_quants).Qgm.q_id, 99));
  Alcotest.(check bool) "bad column flagged" true (Check.check g <> [])

let test_dot_output () =
  let g = build "SELECT partno FROM quotations WHERE partno IN (SELECT partno FROM inventory)" in
  let dot = Sb_qgm.Print.to_dot g in
  Alcotest.(check bool) "digraph" true
    (String.length dot > 20 && String.sub dot 0 7 = "digraph");
  let contains hay needle =
    let n = String.length needle in
    let rec go i = i + n <= String.length hay && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "mentions table" true (contains dot "quotations")

let suite =
  ( "qgm",
    [
      case "paper query shape (Figure 2a)" test_paper_query_shape;
      case "quantifier types" test_quantifier_types;
      case "semantic errors" test_semantic_errors;
      case "group-by shape" test_group_by_shape;
      case "view expansion" test_view_expansion;
      case "recursion cycle" test_recursion_cycle;
      case "copy subgraph" test_copy_subgraph;
      case "garbage collect" test_garbage_collect;
      case "expression utilities" test_expr_utils;
      case "checker catches violations" test_check_catches_violations;
      case "dot output" test_dot_output;
    ] )
