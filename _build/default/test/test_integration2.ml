(** Second-wave integration tests: deep nesting, correlation across
    multiple levels, edge cases of every subsystem, and regression tests
    for bugs found during development (quantified-join equi extraction,
    parameter-space renumbering, OR routing of scalar subqueries). *)

open Test_util

let t () = sample_db ()

(* --- deep nesting and correlation --- *)

let test_two_level_correlation () =
  let db = t () in
  (* inner-inner references the outermost quantifier *)
  check_bag "two levels"
    [ row [ s "eng" ]; row [ s "sales" ]; row [ s "legal" ] ]
    (q db
       "SELECT dname FROM dept d WHERE EXISTS (SELECT * FROM emp e WHERE \
        e.dept = d.id AND EXISTS (SELECT * FROM emp e2 WHERE e2.dept = d.id \
        AND e2.salary >= e.salary))")

let test_subquery_in_subquery () =
  let db = t () in
  check_bag "nested IN"
    [ row [ i 1 ]; row [ i 1 ]; row [ i 2 ]; row [ i 4 ] ]
    (q db
       "SELECT partno FROM quotations WHERE partno IN (SELECT partno FROM \
        inventory WHERE type IN (SELECT type FROM inventory WHERE onhand_qty \
        = 20))")

let test_correlated_scalar_in_having () =
  let db = t () in
  check_bag "scalar in having"
    [ row [ i 1; i 3 ] ]
    (q db
       "SELECT dept, count(*) FROM emp GROUP BY dept HAVING count(*) > \
        (SELECT count(*) FROM dept WHERE region = 'east')")

let test_agg_of_expression () =
  let db = t () in
  check_bag "sum of product"
    [ row [ f 1150.0 ] ]
    (q db "SELECT sum(price * order_qty) FROM quotations WHERE supplier = 'acme'")

let test_group_by_two_keys () =
  let db = t () in
  check_bag "two keys"
    [ row [ i 1; s "acme"; i 1 ]; row [ i 2; s "acme"; i 1 ];
      row [ i 3; s "globex"; i 1 ]; row [ i 1; s "globex"; i 1 ];
      row [ i 4; s "initech"; i 1 ] ]
    (q db "SELECT partno, supplier, count(*) FROM quotations GROUP BY partno, supplier")

let test_having_without_selecting_agg () =
  let db = t () in
  check_bag "having-only aggregate"
    [ row [ s "acme" ]; row [ s "globex" ] ]
    (q db "SELECT supplier FROM quotations GROUP BY supplier HAVING sum(order_qty) > 50")

(* --- views --- *)

let test_view_over_view () =
  let db = t () in
  ignore (Starburst.run db "CREATE VIEW v1 AS SELECT partno, price FROM quotations WHERE price < 50");
  ignore (Starburst.run db "CREATE VIEW v2 AS SELECT partno FROM v1 WHERE price > 10");
  check_bag "stacked views"
    [ row [ i 1 ]; row [ i 2 ]; row [ i 1 ] ]
    (q db "SELECT partno FROM v2");
  (* both view layers merge away *)
  let g = Starburst.build_qgm db (Sb_hydrogen.Parser.query_text "SELECT partno FROM v2") in
  ignore (Starburst.rewrite db g);
  Alcotest.(check int) "merged to 2 boxes" 2
    (List.length (Sb_qgm.Qgm.reachable_boxes g))

let test_view_with_set_op () =
  let db = t () in
  ignore
    (Starburst.run db
       "CREATE VIEW all_parts AS (SELECT partno FROM quotations) UNION \
        (SELECT partno FROM inventory)");
  check_bag "set-op view" [ row [ i 4 ] ] (q db "SELECT count(*) FROM all_parts")

let test_view_in_subquery () =
  let db = t () in
  ignore (Starburst.run db "CREATE VIEW cpus AS SELECT partno FROM inventory WHERE type = 'CPU'");
  check_bag "view inside subquery"
    [ row [ i 3 ] ]
    (q db "SELECT partno FROM inventory WHERE partno NOT IN (SELECT partno FROM cpus)")

(* --- set operations --- *)

let test_set_ops_nested () =
  let db = t () in
  check_bag "except of union"
    [ row [ i 3 ] ]
    (q db
       "SELECT * FROM (((SELECT partno FROM quotations) UNION (SELECT partno \
        FROM inventory)) EXCEPT (SELECT partno FROM inventory WHERE type = \
        'CPU')) u");
  check_bag "union of intersect"
    [ row [ i 1 ]; row [ i 2 ]; row [ i 3 ]; row [ i 4 ] ]
    (q db
       "((SELECT partno FROM quotations) INTERSECT (SELECT partno FROM \
        inventory)) UNION (SELECT partno FROM inventory)")

(* --- LIMIT/ORDER edge cases --- *)

let test_limit_edges () =
  let db = t () in
  check_bag "limit zero" [] (q db "SELECT partno FROM quotations LIMIT 0");
  check_bag "limit beyond" [ row [ i 5 ] ]
    (q db "SELECT count(*) FROM (SELECT partno FROM quotations LIMIT 100) v");
  check_rows "limit in derived table"
    [ row [ f 99.0 ] ]
    (q db
       "SELECT price FROM (SELECT price FROM quotations ORDER BY price DESC \
        LIMIT 2) v ORDER BY price DESC LIMIT 1")

let test_order_by_multiple_keys () =
  let db = t () in
  check_rows "two keys, mixed directions"
    [ row [ s "acme"; f 20.0 ]; row [ s "acme"; f 10.5 ];
      row [ s "globex"; f 11.0 ]; row [ s "globex"; f 7.25 ];
      row [ s "initech"; f 99.0 ] ]
    (q db "SELECT supplier, price FROM quotations ORDER BY supplier, price DESC")

(* --- DML edge cases --- *)

let test_update_swap () =
  let db = t () in
  ignore (Starburst.run db "CREATE TABLE sw (a INT, b INT)");
  ignore (Starburst.run db "INSERT INTO sw VALUES (1, 2)");
  (* both assignments read the pre-update row *)
  ignore (Starburst.run db "UPDATE sw SET a = b, b = a");
  check_bag "swapped" [ row [ i 2; i 1 ] ] (q db "SELECT a, b FROM sw")

let test_delete_all () =
  let db = t () in
  (match Starburst.run db "DELETE FROM edges" with
  | Starburst.Affected 4 -> ()
  | _ -> Alcotest.fail "expected 4");
  check_bag "empty" [ row [ i 0 ] ] (q db "SELECT count(*) FROM edges")

let test_insert_type_checks () =
  let db = t () in
  expect_error db "INSERT INTO inventory VALUES ('not-an-int', 1, 'CPU')";
  expect_error db "INSERT INTO inventory (partno) VALUES (1, 2)"

(* --- recursion edge cases --- *)

let test_recursion_empty_seed () =
  let db = t () in
  check_bag "empty seed terminates" [ row [ i 0 ] ]
    (q db
       "WITH RECURSIVE p (src, dst) AS (SELECT src, dst FROM edges WHERE src \
        = 999 UNION SELECT p.src, e.dst FROM p, edges e WHERE p.dst = e.src) \
        SELECT count(*) FROM p")

let test_recursion_self_loop () =
  let db = t () in
  ignore (Starburst.run db "INSERT INTO edges VALUES (7, 7)");
  check_bag "self loop terminates" [ row [ i 7; i 7 ] ]
    (q db
       "WITH RECURSIVE p (src, dst) AS (SELECT src, dst FROM edges WHERE src \
        = 7 UNION SELECT p.src, e.dst FROM p, edges e WHERE p.dst = e.src) \
        SELECT * FROM p")

let test_two_with_defs () =
  let db = t () in
  check_bag "two non-recursive defs"
    [ row [ i 1 ] ]
    (q db
       "WITH a AS (SELECT partno FROM quotations WHERE price > 15), b AS \
        (SELECT partno FROM inventory WHERE onhand_qty > 100) SELECT count(*) \
        FROM a, b WHERE a.partno = b.partno")

let test_recursion_used_by_two_quants () =
  let db = t () in
  check_bag "closure self-join"
    [ row [ i 3 ] ]
    (q db
       "WITH RECURSIVE p (src, dst) AS (SELECT src, dst FROM edges UNION \
        SELECT p.src, e.dst FROM p, edges e WHERE p.dst = e.src) SELECT \
        count(*) FROM p x, p y WHERE x.src = 1 AND y.src = 1 AND x.dst = y.dst")

(* --- regression tests for bugs found during development --- *)

(* equi extraction once corrupted quantified kinds: the comparison was
   hoisted out of the per-row predicate, making ALL/MAJORITY vacuous *)
let test_regression_all_with_equality () =
  let db = t () in
  (* partno 4's set is {2} and its onhand_qty is 1, so it must NOT
     qualify; every other part has an empty set (vacuously ALL) *)
  check_bag "eq under ALL"
    [ row [ i 1 ]; row [ i 2 ]; row [ i 3 ] ]
    (q db
       "SELECT partno FROM inventory i WHERE i.onhand_qty = ALL (SELECT \
        order_qty FROM quotations q WHERE q.partno = 4 AND q.partno = \
        i.partno)");
  (* outer rows with empty sets qualify too *)
  check_bag "ALL over empty for others"
    [ row [ i 1 ]; row [ i 2 ]; row [ i 3 ]; row [ i 4 ] ]
    (q db
       "SELECT partno FROM inventory i WHERE 0 = ALL (SELECT order_qty FROM \
        quotations q WHERE q.partno = i.partno AND q.order_qty < 0)")

(* parameter renumbering: an inline derived table with correlation used
   to evaluate against the wrong parameter slot *)
let test_regression_param_spaces () =
  let db = t () in
  check_bag "nested correlated derived"
    [ row [ s "eng" ]; row [ s "legal" ] ]
    (q db
       "SELECT dname FROM dept d WHERE EXISTS (SELECT * FROM (SELECT dept, \
        salary FROM emp) v WHERE v.dept = d.id AND v.salary > 110)")

(* scalar subqueries under OR must route through the OR operator *)
let test_regression_or_scalar () =
  let db = t () in
  ignore
    (q db
       "SELECT partno FROM quotations q WHERE q.price > 50 OR q.partno = \
        (SELECT partno FROM inventory WHERE onhand_qty = 10)");
  let c = Starburst.counters db in
  Alcotest.(check bool) "or operator engaged" true
    (c.Sb_qes.Exec.c_or_branch_evals > 0)

(* exists head truncation: EXISTS over a wide subquery keeps one column *)
let test_regression_exists_wide () =
  let db = t () in
  ignore (Starburst.run db "SET rewrite = off");
  check_bag "wide exists (no rewrite)"
    [ row [ i 4 ] ]
    (q db
       "SELECT count(*) FROM quotations q WHERE EXISTS (SELECT * FROM \
        inventory i WHERE i.partno = q.partno AND i.type = 'CPU')")

(* identity WITH placeholders must not confuse the bypass rule when the
   recursion cycle runs through them *)
let test_regression_with_bypass () =
  let db = t () in
  check_bag "non-recursive WITH used twice, bypassed"
    [ row [ i 4 ] ]
    (q db
       "WITH v AS (SELECT partno FROM inventory) SELECT count(*) FROM v a \
        WHERE a.partno IN (SELECT partno FROM v)")

(* ext setformer conservatism: base merge must not merge boxes holding
   PF quantifiers *)
let test_regression_pf_not_merged () =
  let db = sample_db ~extensions:true () in
  let g =
    Starburst.build_qgm db
      (Sb_hydrogen.Parser.query_text
         "SELECT d.dname FROM dept d LEFT OUTER JOIN emp e ON d.id = e.dept")
  in
  ignore (Starburst.rewrite db g);
  (* the OJ box must survive rewrite (nothing fired that would break it) *)
  Alcotest.(check bool) "PF box intact" true
    (List.exists
       (fun (b : Sb_qgm.Qgm.box) ->
         List.exists (fun q -> q.Sb_qgm.Qgm.q_type = Sb_qgm.Qgm.Ext "PF") b.Sb_qgm.Qgm.b_quants)
       (Sb_qgm.Qgm.reachable_boxes g))

let test_empty_table_everything () =
  let db = t () in
  ignore (Starburst.run db "CREATE TABLE void (a INT, b STRING)");
  check_bag "scan" [] (q db "SELECT * FROM void");
  check_bag "agg" [ row [ i 0; nul ] ] (q db "SELECT count(*), sum(a) FROM void");
  check_bag "group" [] (q db "SELECT b, count(*) FROM void GROUP BY b");
  check_bag "join" [] (q db "SELECT * FROM void v, inventory i WHERE v.a = i.partno");
  check_bag "in" [] (q db "SELECT partno FROM inventory WHERE partno IN (SELECT a FROM void)");
  check_bag "all-true" [ row [ i 4 ] ]
    (q db "SELECT count(*) FROM inventory WHERE partno > ALL (SELECT a FROM void)")

let test_duplicate_rows_semantics () =
  let db = t () in
  ignore (Starburst.run db "CREATE TABLE dup (x INT)");
  ignore (Starburst.run db "INSERT INTO dup VALUES (1), (1), (2)");
  check_bag "bag projection" [ row [ i 1 ]; row [ i 1 ]; row [ i 2 ] ]
    (q db "SELECT x FROM dup");
  check_bag "join multiplies"
    [ row [ i 4 ] ]
    (q db "SELECT count(*) FROM dup a, dup b WHERE a.x = b.x AND a.x = 1");
  check_bag "union all keeps" [ row [ i 6 ] ]
    (q db "SELECT count(*) FROM ((SELECT x FROM dup) UNION ALL (SELECT x FROM dup)) u");
  check_bag "union dedups" [ row [ i 2 ] ]
    (q db "SELECT count(*) FROM ((SELECT x FROM dup) UNION (SELECT x FROM dup)) u")

let suite =
  ( "integration2",
    [
      case "two-level correlation" test_two_level_correlation;
      case "subquery in subquery" test_subquery_in_subquery;
      case "correlated scalar in HAVING" test_correlated_scalar_in_having;
      case "aggregate of expression" test_agg_of_expression;
      case "group by two keys" test_group_by_two_keys;
      case "HAVING-only aggregate" test_having_without_selecting_agg;
      case "view over view" test_view_over_view;
      case "view with set operation" test_view_with_set_op;
      case "view in subquery" test_view_in_subquery;
      case "nested set operations" test_set_ops_nested;
      case "limit edges" test_limit_edges;
      case "order by multiple keys" test_order_by_multiple_keys;
      case "update swap" test_update_swap;
      case "delete all" test_delete_all;
      case "insert type checks" test_insert_type_checks;
      case "recursion with empty seed" test_recursion_empty_seed;
      case "recursion with self loop" test_recursion_self_loop;
      case "two WITH definitions" test_two_with_defs;
      case "recursive table used twice" test_recursion_used_by_two_quants;
      case "regression: ALL with equality" test_regression_all_with_equality;
      case "regression: parameter spaces" test_regression_param_spaces;
      case "regression: OR with scalar subquery" test_regression_or_scalar;
      case "regression: wide EXISTS" test_regression_exists_wide;
      case "regression: WITH bypass" test_regression_with_bypass;
      case "regression: PF boxes survive base rules" test_regression_pf_not_merged;
      case "empty tables everywhere" test_empty_table_everything;
      case "duplicate (bag) semantics" test_duplicate_rows_semantics;
    ] )

(* --- CREATE TABLE AS --- *)

let test_create_table_as () =
  let db = t () in
  (match
     Starburst.run db
       "CREATE TABLE cpu_quotes AS SELECT q.partno, q.price FROM quotations \
        q, inventory i WHERE q.partno = i.partno AND i.type = 'CPU'"
   with
  | Starburst.Message _ -> ()
  | _ -> Alcotest.fail "expected message");
  check_bag "materialized rows"
    [ row [ i 1; f 10.5 ]; row [ i 2; f 20.0 ]; row [ i 4; f 99.0 ]; row [ i 1; f 11.0 ] ]
    (q db "SELECT partno, price FROM cpu_quotes");
  (* the new table is an ordinary table: indexable, updatable *)
  ignore (Starburst.run db "CREATE INDEX cq_p ON cpu_quotes (partno)");
  ignore (Starburst.run db "DELETE FROM cpu_quotes WHERE price > 50");
  check_bag "after delete" [ row [ i 3 ] ] (q db "SELECT count(*) FROM cpu_quotes");
  (* duplicate name still rejected *)
  expect_error db "CREATE TABLE cpu_quotes AS SELECT partno FROM inventory";
  (* round-trips through the pretty printer *)
  let stmt =
    Sb_hydrogen.Parser.statement "CREATE TABLE x AS SELECT a FROM t WHERE a > 1"
  in
  let printed = Sb_hydrogen.Pretty.statement_to_string stmt in
  Alcotest.(check bool) "round trip" true
    (Sb_hydrogen.Parser.statement printed = stmt)

let test_explain_dot () =
  let db = t () in
  match Starburst.run db "EXPLAIN DOT SELECT partno FROM quotations WHERE partno IN (SELECT partno FROM inventory)" with
  | Starburst.Message m ->
    Alcotest.(check bool) "digraph" true (String.length m > 20 && String.sub m 0 7 = "digraph")
  | _ -> Alcotest.fail "expected message"

let suite =
  ( fst suite,
    snd suite
    @ [ case "CREATE TABLE AS" test_create_table_as;
        case "EXPLAIN DOT" test_explain_dot ] )
