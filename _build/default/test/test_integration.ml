(** End-to-end golden tests: Hydrogen text in, rows out, through the full
    parse → QGM → rewrite → optimize → execute pipeline.  These double
    as the QES semantics suite (three-valued logic, join kinds,
    aggregation, set operations, recursion, subquery mechanisms). *)

open Test_util

let t () = sample_db ()

let test_basic_select () =
  let db = t () in
  check_bag "projection"
    [ row [ i 1 ]; row [ i 2 ]; row [ i 3 ]; row [ i 4 ]; row [ i 1 ] ]
    (q db "SELECT partno FROM quotations");
  check_bag "filter"
    [ row [ i 4; f 99.0 ] ]
    (q db "SELECT partno, price FROM quotations WHERE price > 50");
  check_bag "expressions"
    [ row [ f 1050.0 ] ]
    (q db "SELECT price * order_qty FROM quotations WHERE partno = 1 AND supplier = 'acme'");
  check_rows "order by"
    [ row [ f 7.25 ]; row [ f 10.5 ]; row [ f 11.0 ]; row [ f 20.0 ]; row [ f 99.0 ] ]
    (q db "SELECT price FROM quotations ORDER BY price");
  check_rows "order desc limit"
    [ row [ f 99.0 ]; row [ f 20.0 ] ]
    (q db "SELECT price FROM quotations ORDER BY price DESC LIMIT 2");
  check_bag "distinct"
    [ row [ i 1 ]; row [ i 2 ]; row [ i 3 ]; row [ i 4 ] ]
    (q db "SELECT DISTINCT partno FROM quotations")

let test_joins () =
  let db = t () in
  check_bag "equi join"
    [ row [ i 1; s "CPU" ]; row [ i 1; s "CPU" ]; row [ i 2; s "CPU" ];
      row [ i 3; s "DISK" ]; row [ i 4; s "CPU" ] ]
    (q db "SELECT q.partno, i.type FROM quotations q, inventory i WHERE q.partno = i.partno");
  check_bag "theta join"
    [ row [ i 4 ] ]
    (q db
       "SELECT q.partno FROM quotations q, inventory i WHERE q.partno = \
        i.partno AND q.order_qty > i.onhand_qty AND q.price > 20");
  (* three-way join *)
  check_bag "three-way"
    [ row [ s "eng"; s "west" ] ]
    (q db
       "SELECT d.dname, d.region FROM dept d, emp e, emp e2 WHERE d.id = \
        e.dept AND d.id = e2.dept AND e.salary > 110 AND e2.salary < 100");
  (* explicit JOIN syntax *)
  check_bag "inner join syntax"
    [ row [ s "eng" ]; row [ s "eng" ]; row [ s "eng" ]; row [ s "sales" ]; row [ s "legal" ] ]
    (q db "SELECT d.dname FROM dept d JOIN emp e ON d.id = e.dept")

let test_subqueries () =
  let db = t () in
  check_bag "IN correlated (paper query)"
    [ row [ i 1; f 10.5; i 100 ]; row [ i 4; f 99.0; i 2 ]; row [ i 1; f 11.0; i 30 ] ]
    (q db
       "SELECT partno, price, order_qty FROM quotations Q1 WHERE Q1.partno IN \
        (SELECT partno FROM inventory Q3 WHERE Q3.onhand_qty < Q1.order_qty \
        AND Q3.type = 'CPU')");
  check_bag "NOT IN"
    [ row [ i 4 ] ]
    (q db
       "SELECT partno FROM inventory WHERE partno NOT IN (SELECT partno FROM \
        quotations WHERE price < 50)");
  check_bag "EXISTS"
    [ row [ s "eng" ]; row [ s "sales" ]; row [ s "legal" ] ]
    (q db "SELECT dname FROM dept d WHERE EXISTS (SELECT * FROM emp e WHERE e.dept = d.id)");
  check_bag "NOT EXISTS"
    [ row [ s "empty" ] ]
    (q db "SELECT dname FROM dept d WHERE NOT EXISTS (SELECT * FROM emp e WHERE e.dept = d.id)");
  check_bag "ALL"
    [ row [ i 4 ] ]
    (q db "SELECT partno FROM quotations WHERE price >= ALL (SELECT price FROM quotations)");
  check_bag "ALL over empty is true"
    [ row [ i 1 ]; row [ i 2 ]; row [ i 3 ]; row [ i 4 ] ]
    (q db
       "SELECT partno FROM inventory WHERE onhand_qty > ALL (SELECT price \
        FROM quotations WHERE partno = 99)");
  check_bag "ANY"
    [ row [ i 2 ] ]
    (q db
       "SELECT partno FROM inventory WHERE onhand_qty > ANY (SELECT order_qty \
        FROM quotations WHERE order_qty > 40)");
  check_bag "scalar subquery"
    [ row [ i 4; f 99.0 ] ]
    (q db "SELECT partno, price FROM quotations WHERE price = (SELECT max(price) FROM quotations)");
  check_bag "scalar subquery in select list"
    [ row [ i 2; i 500 ] ]
    (q db
       "SELECT partno, (SELECT onhand_qty FROM inventory i WHERE i.partno = \
        q.partno) FROM quotations q WHERE partno = 2");
  (* uncorrelated scalar subquery returning no rows -> NULL *)
  check_bag "empty scalar is null"
    []
    (q db "SELECT partno FROM quotations WHERE price = (SELECT price FROM quotations WHERE partno = 99)")

let test_or_with_subquery () =
  let db = t () in
  (* the paper's section-7 OR example *)
  check_bag "OR with scalar subquery"
    [ row [ i 3 ]; row [ i 4 ] ]
    (q db
       "SELECT partno FROM quotations q WHERE q.price > 50 OR q.partno = \
        (SELECT partno FROM inventory WHERE onhand_qty = 10)");
  check_bag "OR with IN subquery"
    [ row [ i 1 ]; row [ i 2 ]; row [ i 4 ] ]
    (q db
       "SELECT partno FROM quotations q WHERE q.order_qty < 3 OR q.partno IN \
        (SELECT partno FROM inventory WHERE onhand_qty >= 10 AND onhand_qty \
        <= 500 AND type = 'CPU') AND q.order_qty < 50")

let test_three_valued_logic () =
  let db = t () in
  ignore (Starburst.run db "CREATE TABLE n3 (a INT, b INT)");
  ignore (Starburst.run db "INSERT INTO n3 VALUES (1, 10), (2, NULL), (NULL, 30)");
  check_bag "null comparison filtered" [ row [ i 1 ] ]
    (q db "SELECT a FROM n3 WHERE b < 20");
  check_bag "IS NULL" [ row [ i 2 ] ] (q db "SELECT a FROM n3 WHERE b IS NULL");
  check_bag "IS NOT NULL" [ row [ i 1 ]; row [ nul ] ]
    (q db "SELECT a FROM n3 WHERE b IS NOT NULL");
  (* x NOT IN (set containing NULL) is never true *)
  ignore (Starburst.run db "CREATE TABLE vals (v INT)");
  ignore (Starburst.run db "INSERT INTO vals VALUES (10), (NULL)");
  check_bag "NOT IN with null set" []
    (q db "SELECT a FROM n3 WHERE b NOT IN (SELECT v FROM vals)");
  (* arithmetic with NULL propagates *)
  check_bag "null arith" [ row [ nul ] ] (q db "SELECT b + 1 FROM n3 WHERE a = 2");
  (* CASE *)
  check_bag "case over null"
    [ row [ s "small" ]; row [ s "other" ]; row [ s "big" ] ]
    (q db
       "SELECT CASE WHEN b < 20 THEN 'small' WHEN b >= 20 THEN 'big' ELSE \
        'other' END FROM n3")

let test_aggregation () =
  let db = t () in
  check_bag "global aggregates"
    [ row [ i 5; f 147.75; f 29.55; f 7.25; f 99.0 ] ]
    (q db "SELECT count(*), sum(price), avg(price), min(price), max(price) FROM quotations");
  check_bag "group by"
    [ row [ s "acme"; i 2 ]; row [ s "globex"; i 2 ]; row [ s "initech"; i 1 ] ]
    (q db "SELECT supplier, count(*) FROM quotations GROUP BY supplier");
  check_bag "having"
    [ row [ s "acme" ]; row [ s "globex" ] ]
    (q db "SELECT supplier FROM quotations GROUP BY supplier HAVING count(*) > 1");
  check_bag "count distinct"
    [ row [ i 4 ] ]
    (q db "SELECT count(DISTINCT partno) FROM quotations");
  check_bag "count on empty input"
    [ row [ i 0 ] ]
    (q db "SELECT count(*) FROM quotations WHERE partno = 99");
  (* aggregates skip nulls *)
  ignore (Starburst.run db "CREATE TABLE agg3 (v INT)");
  ignore (Starburst.run db "INSERT INTO agg3 VALUES (1), (NULL), (3)");
  check_bag "nulls skipped"
    [ row [ i 2; i 4; f 2.0 ] ]
    (q db "SELECT count(v), sum(v), avg(v) FROM agg3");
  (* group expression *)
  check_bag "group by expression"
    [ row [ i 0; i 2 ]; row [ i 1; i 3 ] ]
    (q db "SELECT partno % 2, count(*) FROM quotations GROUP BY partno % 2");
  (* group keys with order *)
  check_rows "grouped ordered"
    [ row [ s "acme"; f 30.5 ]; row [ s "globex"; f 18.25 ]; row [ s "initech"; f 99.0 ] ]
    (q db "SELECT supplier, sum(price) FROM quotations GROUP BY supplier ORDER BY supplier")

let test_set_operations () =
  let db = t () in
  check_bag "union distinct"
    [ row [ i 1 ]; row [ i 2 ]; row [ i 3 ]; row [ i 4 ] ]
    (q db "(SELECT partno FROM quotations) UNION (SELECT partno FROM inventory)");
  check_bag "union all count"
    [ row [ i 9 ] ]
    (q db
       "SELECT count(*) FROM ((SELECT partno FROM quotations) UNION ALL \
        (SELECT partno FROM inventory)) u");
  check_bag "intersect"
    [ row [ i 1 ]; row [ i 2 ]; row [ i 3 ]; row [ i 4 ] ]
    (q db "(SELECT partno FROM quotations) INTERSECT (SELECT partno FROM inventory)");
  check_bag "except"
    [ row [ i 2 ]; row [ i 4 ] ]
    (q db
       "(SELECT partno FROM inventory) EXCEPT (SELECT partno FROM quotations \
        WHERE order_qty > 20)");
  (* ALL variants keep duplicates *)
  check_bag "except all"
    [ row [ i 1 ] ]
    (q db
       "(SELECT partno FROM quotations WHERE partno = 1) EXCEPT ALL (SELECT \
        partno FROM inventory WHERE partno = 1)");
  check_bag "intersect all"
    [ row [ i 1 ] ]
    (q db
       "(SELECT partno FROM quotations WHERE partno = 1) INTERSECT ALL \
        (SELECT partno FROM inventory)")

let test_views_and_with () =
  let db = t () in
  ignore (Starburst.run db "CREATE VIEW cpus AS SELECT partno, onhand_qty FROM inventory WHERE type = 'CPU'");
  check_bag "view" [ row [ i 1 ]; row [ i 2 ]; row [ i 4 ] ] (q db "SELECT partno FROM cpus");
  check_bag "view joined"
    [ row [ i 1; f 10.5 ]; row [ i 1; f 11.0 ] ]
    (q db "SELECT c.partno, q.price FROM cpus c, quotations q WHERE c.partno = q.partno AND c.onhand_qty = 20");
  (* aggregation view joined to a table: beyond SQL'89 *)
  ignore
    (Starburst.run db
       "CREATE VIEW totals AS SELECT supplier, count(*) AS n FROM quotations GROUP BY supplier");
  check_bag "aggregating view join"
    [ row [ s "acme"; i 2 ]; row [ s "globex"; i 2 ] ]
    (q db "SELECT t.supplier, t.n FROM totals t WHERE t.n > 1");
  check_bag "with"
    [ row [ i 4 ] ]
    (q db
       "WITH expensive AS (SELECT partno FROM quotations WHERE price > 50) \
        SELECT partno FROM expensive");
  check_bag "with used twice"
    [ row [ i 1 ] ]
    (q db
       "WITH pts (p) AS (SELECT partno FROM quotations WHERE order_qty >= 30) \
        SELECT count(*) FROM pts a, pts b WHERE a.p = b.p AND a.p = 3")

let test_recursion () =
  let db = t () in
  check_bag "transitive closure"
    [ row [ i 2 ]; row [ i 3 ]; row [ i 4 ] ]
    (q db
       "WITH RECURSIVE paths (src, dst) AS (SELECT src, dst FROM edges UNION \
        SELECT p.src, e.dst FROM paths p, edges e WHERE p.dst = e.src) SELECT \
        dst FROM paths WHERE src = 1");
  (* a cyclic graph must terminate thanks to distinct semantics *)
  ignore (Starburst.run db "INSERT INTO edges VALUES (4, 1)");
  check_bag "cyclic closure"
    [ row [ i 1 ]; row [ i 2 ]; row [ i 3 ]; row [ i 4 ] ]
    (q db
       "WITH RECURSIVE paths (src, dst) AS (SELECT src, dst FROM edges UNION \
        SELECT p.src, e.dst FROM paths p, edges e WHERE p.dst = e.src) SELECT \
        dst FROM paths WHERE src = 1")

let test_values_and_functions () =
  let db = t () in
  check_bag "values" [ row [ i 1; s "x" ]; row [ i 2; s "y" ] ]
    (q db "VALUES (1, 'x'), (2, 'y')");
  check_bag "values in from" [ row [ i 3 ] ]
    (q db "SELECT a + b FROM (VALUES (1, 2)) v (a, b)");
  check_bag "scalar functions"
    [ row [ s "ACME"; i 4 ] ]
    (q db "SELECT upper(supplier), length(supplier) FROM quotations WHERE partno = 2");
  check_bag "like"
    [ row [ s "acme" ]; row [ s "acme" ] ]
    (q db "SELECT supplier FROM quotations WHERE supplier LIKE 'a%e'");
  check_bag "like underscore"
    [ row [ s "acme" ]; row [ s "acme" ] ]
    (q db "SELECT supplier FROM quotations WHERE supplier LIKE '_cm_'");
  check_bag "between"
    [ row [ i 3 ] ]
    (q db "SELECT partno FROM quotations WHERE price BETWEEN 5 AND 10");
  check_bag "in list"
    [ row [ i 2 ]; row [ i 3 ] ]
    (q db "SELECT partno FROM quotations WHERE partno IN (2, 3)")

let test_dml () =
  let db = t () in
  (match Starburst.run db "INSERT INTO emp (eid, dept) VALUES (99, 2)" with
  | Starburst.Affected 1 -> ()
  | _ -> Alcotest.fail "insert");
  check_bag "defaulted column is null" [ row [ nul ] ]
    (q db "SELECT salary FROM emp WHERE eid = 99");
  (match Starburst.run db "UPDATE emp SET salary = 77.0 WHERE eid = 99" with
  | Starburst.Affected 1 -> ()
  | _ -> Alcotest.fail "update");
  check_bag "updated" [ row [ f 77.0 ] ] (q db "SELECT salary FROM emp WHERE eid = 99");
  (match Starburst.run db "DELETE FROM emp WHERE eid = 99" with
  | Starburst.Affected 1 -> ()
  | _ -> Alcotest.fail "delete");
  check_bag "deleted" [] (q db "SELECT salary FROM emp WHERE eid = 99");
  (* insert from query *)
  (match Starburst.run db "INSERT INTO emp SELECT eid + 100, dept, salary * 2 FROM emp WHERE dept = 1" with
  | Starburst.Affected 3 -> ()
  | _ -> Alcotest.fail "insert-select");
  check_bag "insert select" [ row [ i 3 ] ]
    (q db "SELECT count(*) FROM emp WHERE eid > 100");
  (* NOT NULL violation *)
  expect_error db "INSERT INTO inventory VALUES (NULL, 1, 'CPU')"

let test_host_variables () =
  let db = t () in
  Starburst.bind_host db "lim" (i 15);
  check_bag "host var"
    [ row [ i 1 ]; row [ i 1 ]; row [ i 3 ] ]
    (q db "SELECT partno FROM quotations WHERE price < :lim");
  expect_error db "SELECT partno FROM quotations WHERE price < :unbound"

let test_rewrite_preserves_results () =
  (* the core soundness check: rewrite on and off agree *)
  let queries =
    [
      "SELECT partno, price FROM quotations Q1 WHERE Q1.partno IN (SELECT \
       partno FROM inventory Q3 WHERE Q3.onhand_qty < Q1.order_qty)";
      "SELECT q.partno FROM quotations q, inventory i WHERE q.partno = \
       i.partno AND q.partno = 1";
      "SELECT a.onhand_qty FROM inventory a, inventory b WHERE a.partno = \
       b.partno AND b.type = 'CPU'";
      "SELECT t, total FROM (SELECT type AS t, sum(onhand_qty) AS total FROM \
       inventory GROUP BY type) v WHERE t = 'CPU'";
      "SELECT * FROM ((SELECT partno FROM quotations) UNION ALL (SELECT \
       partno FROM inventory)) u WHERE partno > 2";
      "WITH RECURSIVE paths (src, dst) AS (SELECT src, dst FROM edges UNION \
       SELECT p.src, e.dst FROM paths p, edges e WHERE p.dst = e.src) SELECT \
       * FROM paths WHERE src = 1";
      "SELECT partno FROM inventory WHERE partno IN (SELECT partno FROM \
       quotations)";
      "SELECT dname FROM dept d WHERE NOT EXISTS (SELECT * FROM emp e WHERE \
       e.dept = d.id AND e.salary > 100)";
    ]
  in
  List.iter
    (fun text ->
      let db1 = t () and db2 = t () in
      ignore (Starburst.run db2 "SET rewrite = off");
      let r1 = q db1 text and r2 = q db2 text in
      if not (same_bag r1 r2) then Alcotest.failf "rewrite changed results for: %s" text)
    queries

let test_explain_runs () =
  let db = t () in
  (match Starburst.run db ("EXPLAIN " ^ "SELECT partno FROM quotations WHERE partno = 1") with
  | Starburst.Message m ->
    Alcotest.(check bool) "has sections" true
      (String.length m > 50)
  | _ -> Alcotest.fail "explain should return a message")

let test_errors () =
  let db = t () in
  expect_error db "SELECT FROM quotations";
  expect_error db "SELECT nosuch FROM quotations";
  expect_error db "INSERT INTO quotations VALUES (1)";
  expect_error db "CREATE TABLE quotations (a INT)";
  expect_error db "DROP TABLE nosuch";
  expect_error db "SET nosuch = on";
  (* scalar subquery returning several rows fails at runtime *)
  expect_error db "SELECT partno FROM inventory WHERE onhand_qty = (SELECT order_qty FROM quotations)"

let suite =
  ( "integration",
    [
      case "basic select" test_basic_select;
      case "joins" test_joins;
      case "subqueries" test_subqueries;
      case "OR with subqueries" test_or_with_subquery;
      case "three-valued logic" test_three_valued_logic;
      case "aggregation" test_aggregation;
      case "set operations" test_set_operations;
      case "views and WITH" test_views_and_with;
      case "recursion" test_recursion;
      case "values and functions" test_values_and_functions;
      case "DML" test_dml;
      case "host variables" test_host_variables;
      case "rewrite preserves results" test_rewrite_preserves_results;
      case "explain" test_explain_runs;
      case "errors" test_errors;
    ] )
