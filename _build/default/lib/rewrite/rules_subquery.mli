(** Subquery-to-join conversion — the paper's Rule 1 (fires when the
    declared-UNIQUE key guarantees at most one match), its
    CHOOSE-emitting general form, and EXISTS head narrowing. *)

val subquery_to_join : catalog:Sb_storage.Catalog.t -> Rule.t
val subquery_to_join_choose : catalog:Sb_storage.Catalog.t -> Rule.t
val exists_distinct : Rule.t
val rules : catalog:Sb_storage.Catalog.t -> Rule.t list
