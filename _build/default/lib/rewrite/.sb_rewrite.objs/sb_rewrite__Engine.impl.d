lib/rewrite/engine.ml: Hashtbl Int List Logs Option Queue Random Rule Sb_qgm String
