lib/rewrite/engine.mli: Rule Sb_qgm
