lib/rewrite/rules_predicate.ml: Array List Option Rule Rules_util Sb_hydrogen Sb_qgm Sb_storage
