lib/rewrite/rules_projection.mli: Rule
