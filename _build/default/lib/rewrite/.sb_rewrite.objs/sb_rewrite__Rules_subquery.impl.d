lib/rewrite/rules_subquery.ml: List Rule Rules_util Sb_hydrogen Sb_qgm Sb_storage Value
