lib/rewrite/base_rules.mli: Rule Sb_storage
