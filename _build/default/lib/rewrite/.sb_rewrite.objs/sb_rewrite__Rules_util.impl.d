lib/rewrite/rules_util.ml: Array Catalog Hashtbl List Option Sb_hydrogen Sb_qgm Sb_storage Schema Table_store
