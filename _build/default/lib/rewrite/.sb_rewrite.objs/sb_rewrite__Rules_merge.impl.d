lib/rewrite/rules_merge.ml: Array Fun List Rule Rules_util Sb_qgm
