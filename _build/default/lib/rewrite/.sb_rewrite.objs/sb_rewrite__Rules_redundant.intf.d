lib/rewrite/rules_redundant.mli: Rule Sb_storage
