lib/rewrite/rules_util.mli: Sb_qgm Sb_storage
