lib/rewrite/rules_projection.ml: List Rule Rules_util Sb_qgm
