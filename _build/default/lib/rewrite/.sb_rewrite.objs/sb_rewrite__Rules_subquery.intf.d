lib/rewrite/rules_subquery.mli: Rule Sb_storage
