lib/rewrite/rules_redundant.ml: List Rule Rules_util Sb_hydrogen Sb_qgm
