lib/rewrite/rules_predicate.mli: Rule
