lib/rewrite/rule.ml: List Sb_qgm String
