lib/rewrite/rule.mli: Sb_qgm
