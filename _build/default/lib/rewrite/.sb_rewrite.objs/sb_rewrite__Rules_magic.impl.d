lib/rewrite/rules_magic.ml: Array Hashtbl List Rule Rules_util Sb_hydrogen Sb_qgm
