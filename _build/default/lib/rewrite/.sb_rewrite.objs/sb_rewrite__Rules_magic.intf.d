lib/rewrite/rules_magic.mli: Rule
