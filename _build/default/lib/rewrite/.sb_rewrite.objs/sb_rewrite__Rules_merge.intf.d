lib/rewrite/rules_merge.mli: Rule
