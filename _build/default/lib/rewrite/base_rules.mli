(** The base system's rewrite-rule repertoire, grouped into the classes
    section 5 describes.  A DBC adds rules to these classes — or new
    classes — via {!Rule.add}. *)

val default_set : catalog:Sb_storage.Catalog.t -> Rule.set
