(** Redundant-join elimination [OTT82]: two iterators over the same
    table joined on a declared-UNIQUE, NOT NULL column denote the same
    row, so one access can be removed.  The classic source of such joins
    is a merged view re-accessing a table the query already reads. *)

module Qgm = Sb_qgm.Qgm
module Ast = Sb_hydrogen.Ast
open Rules_util

let candidate ~catalog g (b : Qgm.box) =
  if b.Qgm.b_kind <> Qgm.Select then None
  else
    let fs = List.filter (fun q -> q.Qgm.q_type = Qgm.F) b.Qgm.b_quants in
    List.find_map
      (fun (p : Qgm.pred) ->
        match p.Qgm.p_expr with
        | Qgm.Bin (Ast.Eq, Qgm.Col (q1, i), Qgm.Col (q2, j))
          when q1 <> q2 && i = j ->
          let quant1 = Qgm.quant g q1 and quant2 = Qgm.quant g q2 in
          if
            List.exists (fun q -> q.Qgm.q_id = q1) fs
            && List.exists (fun q -> q.Qgm.q_id = q2) fs
            && quant1.Qgm.q_input = quant2.Qgm.q_input
            && (match (Qgm.box g quant1.Qgm.q_input).Qgm.b_kind with
               | Qgm.Base_table _ -> true
               | _ -> false)
            && derives_unique g quant1 i ~catalog
            && derives_not_null g quant1 i ~catalog
          then Some (p, quant1, quant2)
          else None
        | _ -> None)
      b.Qgm.b_preds

let eliminate_redundant_join ~catalog : Rule.t =
  Rule.make ~priority:52 ~name:"eliminate_redundant_join" ~rule_class:"redundant"
    ~condition:(fun ctx -> candidate ~catalog ctx.Rule.graph ctx.Rule.box <> None)
    ~action:(fun ctx ->
      let g = ctx.Rule.graph and b = ctx.Rule.box in
      match candidate ~catalog g b with
      | Some (p, keep, drop) ->
        remove_pred b p;
        (* both iterators denote the same row: redirect and remove *)
        subst_everywhere g (fun qid i ->
            if qid = drop.Qgm.q_id then Some (Qgm.Col (keep.Qgm.q_id, i)) else None);
        (* predicates that became trivially reflexive can go *)
        b.Qgm.b_preds <-
          List.filter
            (fun (p : Qgm.pred) ->
              match p.Qgm.p_expr with
              | Qgm.Bin (Ast.Eq, a, c) when a = c && Qgm.col_refs a <> [] ->
                (* e = e is TRUE for non-null e; sound because the join
                   column was NOT NULL *)
                false
              | _ -> true)
            b.Qgm.b_preds;
        Qgm.remove_quant g drop
      | None -> ())
    ()

let rules ~catalog = [ eliminate_redundant_join ~catalog ]
