(** Operation-merging rules (section 5's Rule 2 and the view-merging
    class): two SELECT operations merge when duplicates are handled
    compatibly, unioning their predicates and iterators. *)

val merge_select : Rule.t

(** Bypasses identity pass-through SELECT boxes (left behind by view
    expansion and WITH). *)
val bypass_identity : Rule.t

val rules : Rule.t list
