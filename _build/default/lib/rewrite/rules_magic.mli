(** A magic-sets-style rule for recursive queries [BANC86], in its most
    common special case: a selection on a column every recursive arm
    propagates unchanged is pushed into the recursion's seed. *)

val magic_selection_pushdown : Rule.t
val rules : Rule.t list
