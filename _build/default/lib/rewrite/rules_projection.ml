(** Projection push-down: "rules for projection push-down avoid the
    retrieval of unused columns of tables or views", and interact with
    predicate migration — once a predicate moves down, columns it alone
    referenced become unused above (section 5). *)

module Qgm = Sb_qgm.Qgm
open Rules_util

(** Parent-box kinds whose quantifier column references can be safely
    renumbered when the input box's head shrinks. *)
let shrinkable_parent (b : Qgm.box) =
  match b.Qgm.b_kind with
  | Qgm.Select | Qgm.Group_by _ | Qgm.Ext_op _ -> true
  | Qgm.Base_table _ | Qgm.Set_op _ | Qgm.Values_box _ | Qgm.Table_fn _
  | Qgm.Choose ->
    false

(** Finds head columns of the box under one of [b]'s quantifiers that no
    expression anywhere references. *)
let prune_candidate g (b : Qgm.box) =
  List.find_map
    (fun q ->
      if q.Qgm.q_parent <> b.Qgm.b_id || not (shrinkable_parent b) then None
      else
        let l = Qgm.box g q.Qgm.q_input in
        match l.Qgm.b_kind with
        | (Qgm.Select | Qgm.Group_by _)
          when has_single_user g l.Qgm.b_id
               && (not (Qgm.is_recursive g l.Qgm.b_id))
               && l.Qgm.b_id <> g.Qgm.top
               && (not l.Qgm.b_distinct) (* pruning would change cardinality *)
               && Qgm.arity l > 1 ->
          let unused =
            List.filteri
              (fun i _ -> not (col_used_anywhere g q.Qgm.q_id i))
              (List.mapi (fun i _ -> i) l.Qgm.b_head)
          in
          (* keep at least one column *)
          let unused =
            if List.length unused >= Qgm.arity l then List.tl unused else unused
          in
          if unused = [] then None else Some (q, l, unused)
        | _ -> None)
    b.Qgm.b_quants

let prune_projection : Rule.t =
  Rule.make ~priority:30 ~name:"prune_projection" ~rule_class:"projection"
    ~condition:(fun ctx -> prune_candidate ctx.Rule.graph ctx.Rule.box <> None)
    ~action:(fun ctx ->
      let g = ctx.Rule.graph in
      match prune_candidate g ctx.Rule.box with
      | Some (q, l, unused) ->
        (* drop the head columns *)
        l.Qgm.b_head <-
          List.filteri (fun i _ -> not (List.mem i unused)) l.Qgm.b_head;
        (* renumber references through q: old index -> new index *)
        let remap i =
          i - List.length (List.filter (fun u -> u < i) unused)
        in
        subst_everywhere g (fun qid i ->
            if qid = q.Qgm.q_id then Some (Qgm.Col (qid, remap i)) else None)
      | None -> ())
    ()

let rules = [ prune_projection ]
