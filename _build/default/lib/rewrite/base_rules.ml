(** The base system's rewrite-rule repertoire, grouped into the classes
    section 5 describes: operation merging (including view merging),
    predicate migration, projection push-down, subquery-to-join
    conversion, redundant-join elimination, and the magic rule for
    recursion.  A DBC adds rules to these classes — or new classes — via
    {!Rule.add}. *)

let default_set ~catalog : Rule.set =
  let set = Rule.empty_set () in
  Rule.add_all set Rules_merge.rules;
  Rule.add_all set Rules_predicate.rules;
  Rule.add_all set Rules_projection.rules;
  Rule.add_all set (Rules_subquery.rules ~catalog);
  Rule.add_all set (Rules_redundant.rules ~catalog);
  Rule.add_all set Rules_magic.rules;
  set
