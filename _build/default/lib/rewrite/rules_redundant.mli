(** Redundant-join elimination [OTT82]: two iterators over the same
    table joined on a declared-UNIQUE NOT NULL column denote the same
    row, so one access is removed. *)

val eliminate_redundant_join : catalog:Sb_storage.Catalog.t -> Rule.t
val rules : catalog:Sb_storage.Catalog.t -> Rule.t list
