(** Operation-merging rules (section 5's Rule 2 and the view-merging
    class): two SELECT operations merge as long as there is no conflict
    in the way they handle duplicates, "creating the union of the
    predicates and iterators of the original operations to allow more
    scope for optimization". *)

module Qgm = Sb_qgm.Qgm
open Rules_util

(** Can the lower box [l], ranged over by [q] from [b], be merged into
    [b]? *)
let mergeable g (b : Qgm.box) (q : Qgm.quant) =
  let l = Qgm.box g q.Qgm.q_input in
  q.Qgm.q_type = Qgm.F
  && b.Qgm.b_kind = Qgm.Select
  && (not (Qgm.is_recursive g b.Qgm.b_id))
  && plain_setformers b
  && is_plain_select g l
  && l.Qgm.b_id <> g.Qgm.top
  && l.Qgm.b_order = []
  && has_single_user g l.Qgm.b_id
  && List.for_all (fun hc -> hc.Qgm.hc_expr <> None) l.Qgm.b_head
  (* Rule 2's duplicate condition: merging may not lose a required
     duplicate elimination.  OP2 (the lower box) eliminating duplicates
     is only harmless if the upper box eliminates them too. *)
  && ((not l.Qgm.b_distinct) || b.Qgm.b_distinct)
  (* scalar/universal quantifiers over l elsewhere would change meaning *)
  && quantified_uses g q.Qgm.q_id = 0

let find_merge_candidate g (b : Qgm.box) =
  List.find_opt
    (fun q -> q.Qgm.q_parent = b.Qgm.b_id && mergeable g b q)
    b.Qgm.b_quants

(** Merges the box under [q] into [b]: the lower box's quantifiers move
    up, references through [q] are inlined, and the predicate sets are
    unioned. *)
let merge_action g (b : Qgm.box) (q : Qgm.quant) =
  let l = Qgm.box g q.Qgm.q_input in
  (* adopt l's quantifiers *)
  List.iter
    (fun lq ->
      lq.Qgm.q_parent <- b.Qgm.b_id;
      b.Qgm.b_quants <- b.Qgm.b_quants @ [ lq ])
    l.Qgm.b_quants;
  l.Qgm.b_quants <- [];
  (* inline references through q everywhere (including correlated ones
     from nested subquery boxes) *)
  let head = Array.of_list l.Qgm.b_head in
  subst_everywhere g (fun qid i ->
      if qid = q.Qgm.q_id then head.(i).Qgm.hc_expr else None);
  (* union the predicates *)
  b.Qgm.b_preds <- b.Qgm.b_preds @ l.Qgm.b_preds;
  l.Qgm.b_preds <- [];
  Qgm.remove_quant g q;
  Qgm.delete_box g l.Qgm.b_id

let merge_select : Rule.t =
  Rule.make ~priority:50 ~name:"merge_select" ~rule_class:"merge"
    ~condition:(fun ctx -> find_merge_candidate ctx.Rule.graph ctx.Rule.box <> None)
    ~action:(fun ctx ->
      match find_merge_candidate ctx.Rule.graph ctx.Rule.box with
      | Some q -> merge_action ctx.Rule.graph ctx.Rule.box q
      | None -> ())
    ()

(** A SELECT box that is a pure identity (head is a 1:1 pass-through of
    a single F quantifier, no predicates, no distinct/order/limit) is
    bypassed: its users range directly over its input.  This cleans up
    boxes left behind by view expansion and WITH placeholders. *)
let bypass_candidate g (b : Qgm.box) =
  (* visiting box b: find a quantifier (of b) whose input is an identity box *)
  List.find_opt
    (fun q ->
      let l = Qgm.box g q.Qgm.q_input in
      l.Qgm.b_kind = Qgm.Select
      && (not (Qgm.is_recursive g l.Qgm.b_id))
      && l.Qgm.b_id <> g.Qgm.top
      && l.Qgm.b_preds = []
      && (not l.Qgm.b_distinct)
      && l.Qgm.b_order = []
      && l.Qgm.b_limit = None
      && (match l.Qgm.b_quants with
         | [ inner ] ->
           inner.Qgm.q_type = Qgm.F
           && List.length l.Qgm.b_head
              = Qgm.arity (Qgm.box g inner.Qgm.q_input)
           && List.for_all2
                (fun i hc -> hc.Qgm.hc_expr = Some (Qgm.Col (inner.Qgm.q_id, i)))
                (List.init (List.length l.Qgm.b_head) Fun.id)
                l.Qgm.b_head
         | _ -> false))
    b.Qgm.b_quants

let bypass_identity : Rule.t =
  Rule.make ~priority:60 ~name:"bypass_identity" ~rule_class:"merge"
    ~condition:(fun ctx -> bypass_candidate ctx.Rule.graph ctx.Rule.box <> None)
    ~action:(fun ctx ->
      let g = ctx.Rule.graph in
      match bypass_candidate g ctx.Rule.box with
      | Some q ->
        let l = Qgm.box g q.Qgm.q_input in
        (match l.Qgm.b_quants with
        | [ inner ] -> q.Qgm.q_input <- inner.Qgm.q_input
        | _ -> ())
      | None -> ())
    ()

let rules = [ merge_select; bypass_identity ]
