(** A magic-sets-style rule for recursive queries [BANC86].

    The general magic-sets transformation specializes a recursion to the
    query's bindings.  We implement its most common and most profitable
    special case: a selection on a column that every recursive arm
    propagates unchanged (e.g. [src] in a transitive closure
    [paths(src,dst)]) is pushed into the recursion's {e seed} (base
    arm), so the fixpoint only ever derives relevant tuples — the
    "sideways information passing" effect for a bound first argument. *)

module Qgm = Sb_qgm.Qgm
open Rules_util

type candidate = {
  mg_pred : Qgm.pred;
  mg_base_arms : Qgm.quant list;  (** non-recursive arms of the union *)
  mg_quant : Qgm.quant;  (** quantifier over the recursive table *)
}

let reaches g src dst =
  let seen = Hashtbl.create 8 in
  let rec go id =
    id = dst
    || (not (Hashtbl.mem seen id))
       && begin
         Hashtbl.replace seen id ();
         List.exists (fun q -> go q.Qgm.q_input) (Qgm.box g id).Qgm.b_quants
       end
  in
  go src

let movable (p : Qgm.pred) =
  (not (Qgm.contains_quantified p.Qgm.p_expr)) && not (Qgm.contains_agg p.Qgm.p_expr)

let candidate g (b : Qgm.box) : candidate option =
  if b.Qgm.b_kind <> Qgm.Select || Qgm.is_recursive g b.Qgm.b_id then None
  else
    List.find_map
      (fun (p : Qgm.pred) ->
        if Qgm.pred_marked p "magic_pushed" || not (movable p) then None
        else
          match Qgm.quant_refs p.Qgm.p_expr with
          | [ qid ] -> (
            let q = Qgm.quant g qid in
            if q.Qgm.q_type <> Qgm.F then None
            else
              let pbox = Qgm.box g q.Qgm.q_input in
              (* the recursion placeholder: identity select on the cycle *)
              if not (Qgm.is_recursive g pbox.Qgm.b_id) then None
              else
                match pbox.Qgm.b_quants with
                | [ uq ] -> (
                  let ubox = Qgm.box g uq.Qgm.q_input in
                  match ubox.Qgm.b_kind with
                  | Qgm.Set_op (Sb_hydrogen.Ast.Union, _) ->
                    let arms = Qgm.setformers ubox in
                    let base_arms, rec_arms =
                      List.partition
                        (fun a -> not (reaches g a.Qgm.q_input pbox.Qgm.b_id))
                        arms
                    in
                    if base_arms = [] || rec_arms = [] then None
                    else
                      let cols = List.map snd (Qgm.col_refs p.Qgm.p_expr) in
                      (* every referenced column must be propagated
                         unchanged by every recursive arm *)
                      let propagated =
                        List.for_all
                          (fun arm ->
                            let r = Qgm.box g arm.Qgm.q_input in
                            r.Qgm.b_kind = Qgm.Select
                            && List.for_all
                                 (fun i ->
                                   match (Qgm.head_col r i).Qgm.hc_expr with
                                   | Some (Qgm.Col (rq, j)) ->
                                     j = i
                                     && (Qgm.quant g rq).Qgm.q_input
                                        = pbox.Qgm.b_id
                                   | _ -> false)
                                 cols)
                          rec_arms
                      in
                      if propagated then
                        Some { mg_pred = p; mg_base_arms = base_arms; mg_quant = q }
                      else None
                  | _ -> None)
                | _ -> None)
          | _ -> None)
      b.Qgm.b_preds

let magic_selection_pushdown : Rule.t =
  Rule.make ~priority:25 ~name:"magic_selection_pushdown" ~rule_class:"magic"
    ~condition:(fun ctx -> candidate ctx.Rule.graph ctx.Rule.box <> None)
    ~action:(fun ctx ->
      let g = ctx.Rule.graph in
      match candidate g ctx.Rule.box with
      | Some cd ->
        Qgm.mark_pred cd.mg_pred "magic_pushed";
        List.iter
          (fun arm ->
            let s = interpose_select g arm in
            let head = Array.of_list s.Qgm.b_head in
            let e =
              Qgm.subst_cols
                (fun qid i ->
                  if qid = cd.mg_quant.Qgm.q_id then head.(i).Qgm.hc_expr
                  else None)
                cd.mg_pred.Qgm.p_expr
            in
            s.Qgm.b_preds <- [ Qgm.pred e ])
          cd.mg_base_arms
      | None -> ())
    ()

let rules = [ magic_selection_pushdown ]
