(** Projection push-down: drops head columns of single-user boxes that
    no expression references, renumbering references graph-wide. *)

val prune_projection : Rule.t
val rules : Rule.t list
