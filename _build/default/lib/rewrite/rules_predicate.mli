(** Predicate-migration rules: push-down into SELECT boxes, push-through
    GROUP BY and set operations (replicating into the arms), restriction
    replication across equality classes, and trivial-conjunct removal. *)

val push_into_select : Rule.t
val push_through_group_by : Rule.t
val push_through_set_op : Rule.t
val replicate_restriction : Rule.t
val drop_true : Rule.t
val rules : Rule.t list
