(** The base system's STAR array.

    "Using STARs, we can readily express all the strategies of the R*
    optimizer ... all in under 20 rules" — this file holds those rules:
    table access (scan and index), the three join methods separated from
    join kinds, and the two glue STARs (order and site) that establish
    required properties, adding SORT or SHIP when needed. *)

module Ast = Sb_hydrogen.Ast
open Sb_storage
open Plan
open Star

(* ------------------------------------------------------------------ *)
(* Probe matching for index access                                     *)
(* ------------------------------------------------------------------ *)

(** Built-in matcher for single-column B-tree attachments: recognizes
    [col = v] (equality probe) and ranges [col < v], [v <= col], ...
    where [v] is a literal, host variable or correlation parameter. *)
let btree_matcher : probe_matcher =
 fun am preds ->
  if am.Access_method.am_kind <> "btree" then None
  else
    match am.Access_method.am_columns with
    | [ key ] -> (
      (* any expression not reading the row is a probe constant
         (literals, host variables, parameters, constant functions) *)
      let is_const e = slots_used e = [] && not (rexpr_has_sub e) in
      let eq =
        List.find_opt
          (fun p ->
            match p with
            | RBin (Ast.Eq, RCol c, v) | RBin (Ast.Eq, v, RCol c) ->
              c = key && is_const v
            | _ -> false)
          preds
      in
      match eq with
      | Some (RBin (Ast.Eq, RCol _, v) | RBin (Ast.Eq, v, RCol _)) ->
        Some (Pr_eq [ v ], -1.0 (* computed by caller *), [ eq |> Option.get ])
      | _ ->
        (* range bounds *)
        let lo = ref None and hi = ref None and absorbed = ref [] in
        List.iter
          (fun p ->
            let bound op v =
              match op with
              | Ast.Gt when !lo = None ->
                lo := Some (v, false);
                absorbed := p :: !absorbed
              | Ast.Ge when !lo = None ->
                lo := Some (v, true);
                absorbed := p :: !absorbed
              | Ast.Lt when !hi = None ->
                hi := Some (v, false);
                absorbed := p :: !absorbed
              | Ast.Le when !hi = None ->
                hi := Some (v, true);
                absorbed := p :: !absorbed
              | _ -> ()
            in
            match p with
            | RBin (op, RCol c, v) when c = key && is_const v -> bound op v
            | RBin (op, v, RCol c) when c = key && is_const v ->
              bound (Ast.flip_comparison op) v
            | _ -> ())
          preds;
        if !lo = None && !hi = None then None
        else Some (Pr_range (!lo, !hi), -1.0, !absorbed))
    | _ -> None

(* ------------------------------------------------------------------ *)
(* TableAccess STAR                                                    *)
(* ------------------------------------------------------------------ *)

let table_access_scan : alternative =
  {
    alt_name = "scan";
    alt_rank = 0;
    alt_cond = (fun _ _ -> true);
    alt_produce =
      (fun ctx pl ->
        [
          Cost.mk_scan ~table:pl.pl_table ~stats:pl.pl_stats
            ~site:(ctx.site_of pl.pl_table) ~quant:pl.pl_quant ~cols:pl.pl_cols
            ~preds:pl.pl_preds ~info:pl.pl_info ();
        ]);
  }

let table_access_index : alternative =
  {
    alt_name = "index";
    alt_rank = 1;
    alt_cond = (fun _ pl -> pl.pl_attachments <> []);
    alt_produce =
      (fun ctx pl ->
        List.concat_map
          (fun am ->
            let matchers = ctx.probe_matchers @ [ btree_matcher ] in
            match List.find_map (fun m -> m am pl.pl_preds) matchers with
            | None -> []
            | Some (probe, sel, absorbed) ->
              let residual =
                List.filter (fun p -> not (List.memq p absorbed)) pl.pl_preds
              in
              let key_slots = am.Access_method.am_columns in
              let sel =
                if sel >= 0.0 then sel
                else Cost.probe_selectivity pl.pl_info ~key_slots probe
              in
              let ordered_on =
                if am.Access_method.am_ordered then
                  (* order on the key columns that survive into output
                     slots, as a prefix *)
                  let rec prefix = function
                    | [] -> []
                    | c :: rest -> (
                      match
                        List.find_index (fun x -> x = c) pl.pl_cols
                      with
                      | Some slot -> (slot, Ast.Asc) :: prefix rest
                      | None -> [])
                  in
                  prefix am.Access_method.am_columns
                else []
              in
              [
                Cost.mk_idx_access ~table:pl.pl_table
                  ~index:am.Access_method.am_name ~stats:pl.pl_stats
                  ~site:(ctx.site_of pl.pl_table) ~quant:pl.pl_quant
                  ~cols:pl.pl_cols ~probe ~probe_sel:sel ~ordered_on
                  ~preds:residual ~info:pl.pl_info ();
              ])
          pl.pl_attachments);
  }

(** Index ANDing (section 6's strategy list): when two or more distinct
    attachments each answer part of the predicate, intersect their rid
    sets before fetching. *)
let table_access_index_and : alternative =
  let matches ctx pl =
    let matchers = ctx.probe_matchers @ [ btree_matcher ] in
    List.filter_map
      (fun am ->
        match List.find_map (fun m -> m am pl.pl_preds) matchers with
        | Some (probe, sel, absorbed) ->
          let sel =
            if sel >= 0.0 then sel
            else
              Cost.probe_selectivity pl.pl_info
                ~key_slots:am.Access_method.am_columns probe
          in
          Some (am, probe, sel, absorbed)
        | None -> None)
      pl.pl_attachments
  in
  {
    alt_name = "index-and";
    alt_rank = 2;
    alt_cond = (fun ctx pl -> List.length (matches ctx pl) >= 2);
    alt_produce =
      (fun ctx pl ->
        let ms = matches ctx pl in
        let absorbed_all = List.concat_map (fun (_, _, _, a) -> a) ms in
        let residual =
          List.filter (fun p -> not (List.memq p absorbed_all)) pl.pl_preds
        in
        [
          Cost.mk_idx_and ~table:pl.pl_table ~stats:pl.pl_stats
            ~site:(ctx.site_of pl.pl_table) ~quant:pl.pl_quant ~cols:pl.pl_cols
            ~probes:
              (List.map
                 (fun (am, probe, sel, _) ->
                   (am.Access_method.am_name, probe, sel))
                 ms)
            ~preds:residual ~info:pl.pl_info ();
        ]);
  }

(* ------------------------------------------------------------------ *)
(* Glue STARs                                                          *)
(* ------------------------------------------------------------------ *)

let ordered_have : alternative =
  {
    alt_name = "already-ordered";
    alt_rank = 0;
    alt_cond =
      (fun _ pl ->
        match pl.pl_plan with
        | Some p -> order_satisfies ~have:p.props.p_order ~want:pl.pl_keys
        | None -> false);
    alt_produce = (fun _ pl -> [ Option.get pl.pl_plan ]);
  }

let ordered_sort : alternative =
  {
    alt_name = "sort";
    alt_rank = 0;
    alt_cond =
      (fun _ pl ->
        match pl.pl_plan with
        | Some p -> not (order_satisfies ~have:p.props.p_order ~want:pl.pl_keys)
        | None -> false);
    alt_produce = (fun _ pl -> [ Cost.mk_sort pl.pl_keys (Option.get pl.pl_plan) ]);
  }

let cosite_have : alternative =
  {
    alt_name = "already-local";
    alt_rank = 0;
    alt_cond =
      (fun _ pl ->
        match pl.pl_plan with
        | Some p -> p.props.p_site = pl.pl_site
        | None -> false);
    alt_produce = (fun _ pl -> [ Option.get pl.pl_plan ]);
  }

let cosite_ship : alternative =
  {
    alt_name = "ship";
    alt_rank = 0;
    alt_cond =
      (fun _ pl ->
        match pl.pl_plan with
        | Some p -> p.props.p_site <> pl.pl_site
        | None -> false);
    alt_produce = (fun _ pl -> [ Cost.mk_ship pl.pl_site (Option.get pl.pl_plan) ]);
  }

(* ------------------------------------------------------------------ *)
(* JoinRoot STAR: methods x kinds                                      *)
(* ------------------------------------------------------------------ *)

(** Which methods can implement which kinds ("this does not imply that
    every join method can be combined with every join kind"). *)
let method_supports_kind method_ kind =
  match method_, kind with
  | Nested_loop, _ -> true
  | (Sort_merge | Hash_join), (J_regular | J_exists) -> true
  | (Sort_merge | Hash_join), (J_all | J_scalar | J_set_pred _ | J_ext _) -> false

let co_sited ctx pl (outer : plan) (inner : plan) k =
  let inner' =
    match
      invoke ctx "CoSite" { pl with pl_plan = Some inner; pl_site = outer.props.p_site }
    with
    | p :: _ -> p
    | [] -> inner
  in
  k inner'

let join_sel pl (outer : plan) (_inner : plan) =
  Cost.join_selectivity ~outer_info:pl.pl_info
    ~inner_info:(fun i -> pl.pl_info (Array.length outer.props.p_slots + i))
    ~equi:pl.pl_equi ~pred:pl.pl_pred ~info_joined:pl.pl_info

let join_nl : alternative =
  {
    alt_name = "nested-loop";
    alt_rank = 0;
    alt_cond = (fun _ _ -> true);
    alt_produce =
      (fun ctx pl ->
        let outer = Option.get pl.pl_outer and inner = Option.get pl.pl_inner in
        co_sited ctx pl outer inner (fun inner ->
            (* the full predicate (equi conjuncts included) is evaluated
               by the NL join *)
            let equi_pred =
              List.map
                (fun (o, i) ->
                  RBin (Ast.Eq, RCol o, RCol (Array.length outer.props.p_slots + i)))
                pl.pl_equi
            in
            let pred =
              match equi_pred @ Option.to_list pl.pl_pred with
              | [] -> None
              | e :: rest ->
                Some (List.fold_left (fun a b -> RBin (Ast.And, a, b)) e rest)
            in
            let inner = if pl.pl_corr = [] then Cost.mk_temp inner else inner in
            [
              Cost.mk_join ~bound:pl.pl_bound ~method_:Nested_loop
                ~kind:pl.pl_kind ~equi:[] ~pred ~kind_pred:pl.pl_kind_pred
                ~corr:pl.pl_corr ~sel:(join_sel pl outer inner) outer inner;
            ]));
  }

let join_merge : alternative =
  {
    alt_name = "sort-merge";
    alt_rank = 1;
    alt_cond =
      (fun _ pl ->
        pl.pl_equi <> [] && pl.pl_corr = []
        && method_supports_kind Sort_merge pl.pl_kind);
    alt_produce =
      (fun ctx pl ->
        let outer = Option.get pl.pl_outer and inner = Option.get pl.pl_inner in
        co_sited ctx pl outer inner (fun inner ->
            let okeys = List.map (fun (o, _) -> (o, Ast.Asc)) pl.pl_equi in
            let ikeys = List.map (fun (_, i) -> (i, Ast.Asc)) pl.pl_equi in
            let outers = invoke ctx "Ordered" { pl with pl_plan = Some outer; pl_keys = okeys } in
            let inners = invoke ctx "Ordered" { pl with pl_plan = Some inner; pl_keys = ikeys } in
            List.concat_map
              (fun o ->
                List.map
                  (fun i ->
                    Cost.mk_join ~bound:pl.pl_bound ~method_:Sort_merge
                      ~kind:pl.pl_kind ~equi:pl.pl_equi ~pred:pl.pl_pred
                      ~kind_pred:pl.pl_kind_pred ~corr:[]
                      ~sel:(join_sel pl o i) o i)
                  inners)
              outers));
  }

let join_hash : alternative =
  {
    alt_name = "hash";
    alt_rank = 1;
    alt_cond =
      (fun _ pl ->
        pl.pl_equi <> [] && pl.pl_corr = []
        && method_supports_kind Hash_join pl.pl_kind);
    alt_produce =
      (fun ctx pl ->
        let outer = Option.get pl.pl_outer and inner = Option.get pl.pl_inner in
        co_sited ctx pl outer inner (fun inner ->
            [
              Cost.mk_join ~bound:pl.pl_bound ~method_:Hash_join
                ~kind:pl.pl_kind ~equi:pl.pl_equi ~pred:pl.pl_pred
                ~kind_pred:pl.pl_kind_pred ~corr:[]
                ~sel:(join_sel pl outer inner) outer inner;
            ]));
  }

(** Installs the base STAR array into [ctx]. *)
let install ctx =
  register ctx "TableAccess"
    [ table_access_scan; table_access_index; table_access_index_and ];
  register ctx "Ordered" [ ordered_have; ordered_sort ];
  register ctx "CoSite" [ cosite_have; cosite_ship ];
  register ctx "JoinRoot" [ join_nl; join_merge; join_hash ]
