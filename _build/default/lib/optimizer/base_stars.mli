(** The base system's STAR array — "all the strategies of the R*
    optimizer … in under 20 rules": table access (scan, single index,
    index ANDing), the three join methods separated from join kinds, and
    the two glue STARs (order and site). *)

open Star

(** Built-in probe matcher for single-column B-tree attachments:
    equality and range probes over constants, host variables and
    correlation parameters. *)
val btree_matcher : probe_matcher

val table_access_scan : alternative
val table_access_index : alternative
val table_access_index_and : alternative
val ordered_have : alternative
val ordered_sort : alternative
val cosite_have : alternative
val cosite_ship : alternative

(** Which methods can implement which kinds ("this does not imply that
    every join method can be combined with every join kind"). *)
val method_supports_kind : Plan.join_method -> Plan.join_kind -> bool

val join_nl : alternative
val join_merge : alternative
val join_hash : alternative

(** Installs the whole base array: TableAccess, Ordered, CoSite,
    JoinRoot. *)
val install : ctx -> unit
