(** The cost model and per-LOLEPOP property functions.

    "Each LOLEPOP changes selected properties of its operands, in a way
    influenced by its parameters, usually adding cost.  These changes,
    including the appropriate cost and cardinality estimates, are
    defined by a ... function for each LOLEPOP" (section 6).  The smart
    constructors below are exactly those property functions: each builds
    a plan node and derives its output properties from its operands'. *)

open Sb_storage
module Ast = Sb_hydrogen.Ast
open Plan

(* --- cost constants (abstract units: 1.0 = one page I/O) --- *)

let io_page = 1.0
let cpu_tuple = 0.01
let cpu_pred = 0.004
let hash_tuple = 0.02
let sort_tuple_log = 0.015
let ship_tuple = 0.08
let temp_tuple = 0.005
(* root-to-leaf descent / fetching one row through an index *)
let index_probe = 2.5
let fetch_row = 0.3

(** Maps an output slot to the base-table statistics of the column it
    carries, when known. *)
type slot_info = int -> (Stats.t * int) option

let no_info : slot_info = fun _ -> None

(* ------------------------------------------------------------------ *)
(* Selectivity                                                         *)
(* ------------------------------------------------------------------ *)

let clamp s = Float.max 0.0001 (Float.min 1.0 s)

let rec selectivity (info : slot_info) (e : rexpr) : float =
  match e with
  | RLit (Value.Bool true) -> 1.0
  | RLit (Value.Bool false) -> 0.0
  | RBin (Ast.And, a, b) -> clamp (selectivity info a *. selectivity info b)
  | RBin (Ast.Or, a, b) ->
    let sa = selectivity info a and sb = selectivity info b in
    clamp (sa +. sb -. (sa *. sb))
  | RUn (Ast.Not, a) -> clamp (1.0 -. selectivity info a)
  | RBin (Ast.Eq, RCol i, (RLit v | RUn (Ast.Neg, RLit v)))
  | RBin (Ast.Eq, (RLit v | RUn (Ast.Neg, RLit v)), RCol i) -> (
    match info i with
    | Some (stats, col) -> clamp (Stats.eq_selectivity stats col v)
    | None -> Stats.default_eq_selectivity)
  | RBin (Ast.Eq, RCol _, (RHost _ | RParam _))
  | RBin (Ast.Eq, (RHost _ | RParam _), RCol _) ->
    Stats.default_eq_selectivity
  | RBin (Ast.Neq, a, b) -> clamp (1.0 -. selectivity info (RBin (Ast.Eq, a, b)))
  | RBin (((Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge) as op), RCol i, RLit v) -> (
    match info i with
    | Some (stats, col) ->
      let o =
        match op with
        | Ast.Lt -> `Lt
        | Ast.Le -> `Le
        | Ast.Gt -> `Gt
        | Ast.Ge -> `Ge
        | _ -> assert false
      in
      clamp (Stats.range_selectivity stats col ~op:o v)
    | None -> Stats.default_range_selectivity)
  | RBin (((Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge) as op), RLit v, RCol i) ->
    selectivity info (RBin (Ast.flip_comparison op, RCol i, RLit v))
  | RBin ((Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge), _, _) ->
    Stats.default_range_selectivity
  | RBin (Ast.Eq, _, _) -> Stats.default_eq_selectivity
  | RLike _ -> 0.1
  | RIs_null (RCol i) -> (
    match info i with
    | Some (stats, col) when stats.Stats.ts_cardinality > 0
                             && col < Array.length stats.Stats.ts_columns ->
      clamp
        (float_of_int stats.Stats.ts_columns.(col).Stats.cs_nulls
        /. float_of_int stats.Stats.ts_cardinality)
    | _ -> 0.05)
  | RIs_null _ -> 0.05
  | RSub { sub_kind = Sk_exists; _ } -> 0.5
  | RSub _ -> 0.3
  | _ -> 0.33

let conj_selectivity info preds =
  List.fold_left (fun acc p -> acc *. selectivity info p) 1.0 preds

(** Distinct values carried by a slot, when derivable. *)
let slot_distinct (info : slot_info) i =
  match info i with
  | Some (stats, col) -> Some (float_of_int (Stats.distinct_of stats col))
  | None -> None

(* ------------------------------------------------------------------ *)
(* Property functions (smart constructors)                             *)
(* ------------------------------------------------------------------ *)

let pred_eval_cost preds card = float_of_int (List.length preds) *. cpu_pred *. card

let mk_scan ~table ~(stats : Stats.t) ~site ~quant ~cols ~preds ~info () : plan =
  let n = float_of_int (max 1 stats.Stats.ts_cardinality) in
  let sel = conj_selectivity info preds in
  let props =
    {
      p_quants = [ quant ];
      p_slots = Array.of_list (List.map (fun c -> (quant, c)) cols);
      p_order = [];
      p_site = site;
      p_distinct = false;
      p_cost =
        (float_of_int (max 1 stats.Stats.ts_pages) *. io_page)
        +. (n *. cpu_tuple) +. pred_eval_cost preds n;
      p_card = Float.max 1.0 (n *. sel);
    }
  in
  { op = Scan { sc_table = table; sc_cols = cols; sc_preds = preds }; inputs = []; props }

let probe_selectivity (info : slot_info) ~key_slots = function
  | Pr_eq _ -> (
    (* product of 1/distinct over the key columns *)
    List.fold_left
      (fun acc slot ->
        match slot_distinct info slot with
        | Some d -> acc /. Float.max 1.0 d
        | None -> acc *. Stats.default_eq_selectivity)
      1.0 key_slots
    |> clamp)
  | Pr_range (lo, hi) -> (
    let key = match key_slots with k :: _ -> Some k | [] -> None in
    let bound_sel op b =
      match b with
      | Some (RLit v, _) -> (
        match Option.bind key info with
        | Some (stats, col) -> Stats.range_selectivity stats col ~op v
        | None -> Stats.default_range_selectivity)
      | Some _ -> Stats.default_range_selectivity
      | None -> 1.0
    in
    match lo, hi with
    | None, None -> 1.0
    | _ ->
      (* fraction below the high bound minus fraction below the low *)
      let below_hi = bound_sel `Le hi in
      let below_lo = if lo = None then 0.0 else bound_sel `Le lo in
      clamp (below_hi -. Float.min below_lo below_hi))
  | Pr_custom _ -> 0.05

let mk_idx_access ~table ~index ~(stats : Stats.t) ~site ~quant ~cols ~probe
    ~probe_sel ~ordered_on ~preds ~info () : plan =
  let n = float_of_int (max 1 stats.Stats.ts_cardinality) in
  let matched = Float.max 1.0 (n *. probe_sel) in
  let residual_sel = conj_selectivity info preds in
  let props =
    {
      p_quants = [ quant ];
      p_slots = Array.of_list (List.map (fun c -> (quant, c)) cols);
      p_order = ordered_on;
      p_site = site;
      p_distinct = false;
      p_cost =
        index_probe +. (matched *. (fetch_row +. cpu_tuple))
        +. pred_eval_cost preds matched;
      p_card = Float.max 1.0 (matched *. residual_sel);
    }
  in
  {
    op =
      Idx_access
        { ix_table = table; ix_index = index; ix_probe = probe; ix_cols = cols;
          ix_preds = preds };
    inputs = [];
    props;
  }

(** Property function for index ANDing: the matched set is the product
    of the probes' selectivities; each probe costs a descent plus leaf
    touches, and only the intersection is fetched. *)
let mk_idx_and ~table ~(stats : Stats.t) ~site ~quant ~cols
    ~(probes : (string * probe_spec * float) list) ~preds ~info () : plan =
  let n = float_of_int (max 1 stats.Stats.ts_cardinality) in
  let matched_each = List.map (fun (_, _, sel) -> Float.max 1.0 (n *. sel)) probes in
  let intersection =
    Float.max 1.0
      (List.fold_left (fun acc (_, _, sel) -> acc *. sel) 1.0 probes *. n)
  in
  let residual_sel = conj_selectivity info preds in
  let probe_cost =
    List.fold_left (fun acc m -> acc +. index_probe +. (m *. cpu_tuple)) 0.0
      matched_each
  in
  let props =
    {
      p_quants = [ quant ];
      p_slots = Array.of_list (List.map (fun c -> (quant, c)) cols);
      p_order = [];
      p_site = site;
      p_distinct = false;
      p_cost =
        probe_cost +. (intersection *. (fetch_row +. cpu_tuple))
        +. pred_eval_cost preds intersection;
      p_card = Float.max 1.0 (intersection *. residual_sel);
    }
  in
  {
    op =
      Idx_and
        {
          ia_table = table;
          ia_probes = List.map (fun (name, probe, _) -> (name, probe)) probes;
          ia_cols = cols;
          ia_preds = preds;
        };
    inputs = [];
    props;
  }

let mk_filter ~info preds (input : plan) : plan =
  if preds = [] then input
  else
    let sel = conj_selectivity info preds in
    let sub_cost =
      (* embedded subplans are charged per evaluation *)
      List.fold_left
        (fun acc p ->
          fold_rexpr
            (fun acc e ->
              match e with
              | RSub s -> acc +. s.sub_plan.props.p_cost
              | RScalar_sub s -> acc +. s.ssub_plan.props.p_cost
              | _ -> acc)
            acc p)
        0.0 preds
    in
    let props =
      {
        input.props with
        p_cost =
          input.props.p_cost
          +. pred_eval_cost preds input.props.p_card
          +. (sub_cost *. input.props.p_card *. 0.25 (* demand caching *));
        p_card = Float.max 1.0 (input.props.p_card *. sel);
      }
    in
    { op = Filter preds; inputs = [ input ]; props }

let mk_or_filter ~info disjuncts (input : plan) : plan =
  let sel =
    clamp
      (List.fold_left
         (fun acc d -> acc +. selectivity info d -. (acc *. selectivity info d))
         0.0 disjuncts)
  in
  let props =
    {
      input.props with
      p_cost =
        input.props.p_cost
        +. (float_of_int (List.length disjuncts) *. cpu_pred *. input.props.p_card);
      p_card = Float.max 1.0 (input.props.p_card *. sel);
    }
  in
  { op = Or_filter disjuncts; inputs = [ input ]; props }

let mk_project ?slots exprs (input : plan) : plan =
  let slots =
    match slots with
    | Some s -> s
    | None ->
      Array.of_list
        (List.map
           (function
             | RCol i when i < width input -> input.props.p_slots.(i)
             | _ -> computed_slot)
           exprs)
  in
  (* order is preserved when the ordering slots survive the projection *)
  let remap i =
    let found = ref None in
    List.iteri
      (fun j e -> if !found = None && e = RCol i then found := Some j)
      exprs;
    !found
  in
  let rec surviving = function
    | [] -> []
    | (i, d) :: rest -> (
      match remap i with
      | Some j -> (j, d) :: surviving rest
      | None -> [] (* prefix only *))
  in
  let props =
    {
      input.props with
      p_slots = slots;
      p_order = surviving input.props.p_order;
      p_cost = input.props.p_cost +. (cpu_tuple *. input.props.p_card);
      p_distinct = false;
    }
  in
  { op = Project exprs; inputs = [ input ]; props }

let mk_sort keys (input : plan) : plan =
  let n = input.props.p_card in
  let props =
    {
      input.props with
      p_order = keys;
      p_cost =
        input.props.p_cost
        +. (n *. sort_tuple_log *. Float.max 1.0 (Float.log (Float.max 2.0 n)));
    }
  in
  { op = Sort keys; inputs = [ input ]; props }

let mk_temp (input : plan) : plan =
  let props =
    { input.props with p_cost = input.props.p_cost +. (temp_tuple *. input.props.p_card) }
  in
  { op = Temp; inputs = [ input ]; props }

let mk_ship site (input : plan) : plan =
  if input.props.p_site = site then input
  else
    let props =
      {
        input.props with
        p_site = site;
        p_cost = input.props.p_cost +. (ship_tuple *. input.props.p_card);
      }
    in
    { op = Ship site; inputs = [ input ]; props }

let mk_limit n (input : plan) : plan =
  let props =
    { input.props with p_card = Float.min input.props.p_card (float_of_int n) }
  in
  { op = Limit_op n; inputs = [ input ]; props }

let mk_distinct ~info (input : plan) : plan =
  if input.props.p_distinct then input
  else
    let card =
      (* product of per-slot distinct counts bounds the result *)
      let bound =
        Array.to_list (Array.mapi (fun i _ -> i) input.props.p_slots)
        |> List.fold_left
             (fun acc i ->
               match slot_distinct info i with
               | Some d -> acc *. d
               | None -> acc *. 1000.0)
             1.0
      in
      Float.max 1.0 (Float.min input.props.p_card bound)
    in
    let props =
      {
        input.props with
        p_distinct = true;
        p_card = card;
        p_cost = input.props.p_cost +. (hash_tuple *. input.props.p_card);
      }
    in
    { op = Distinct_op; inputs = [ input ]; props }

(** Join selectivity from equi-join columns (Selinger's 1/max(d1,d2) per
    column pair). *)
let join_selectivity ~outer_info ~inner_info ~equi ~pred ~info_joined =
  let equi_sel =
    List.fold_left
      (fun acc (o, i) ->
        let d1 = Option.value ~default:100.0 (slot_distinct outer_info o) in
        let d2 = Option.value ~default:100.0 (slot_distinct inner_info i) in
        acc /. Float.max 1.0 (Float.max d1 d2))
      1.0 equi
  in
  let pred_sel =
    match pred with Some p -> selectivity info_joined p | None -> 1.0
  in
  clamp (equi_sel *. pred_sel)

(** Output cardinality for each join kind: quantified kinds emit at most
    one row per outer row. *)
let kind_card ~kind ~outer_card ~regular_card =
  match kind with
  | J_regular | J_ext _ -> Float.max 1.0 regular_card
  | J_exists | J_all | J_set_pred _ -> Float.max 1.0 (outer_card *. 0.5)
  | J_scalar -> Float.max 1.0 outer_card

let mk_join ?(bound = false) ~method_ ~kind ~equi ~pred ~kind_pred ~corr ~sel (outer : plan)
    (inner : plan) : plan =
  let no = outer.props.p_card and ni = inner.props.p_card in
  let regular_card = no *. ni *. sel in
  let card = kind_card ~kind ~outer_card:no ~regular_card in
  let method_cost =
    match method_ with
    | Nested_loop ->
      if corr = [] then
        (* inner materialized once (TEMP is the caller's business; the
           stream is re-scanned per outer tuple) *)
        inner.props.p_cost +. (no *. ni *. cpu_pred)
      else
        (* evaluate-on-demand: re-open the inner per distinct binding;
           assume half the openings hit the correlation cache *)
        no *. 0.5 *. inner.props.p_cost
    | Sort_merge -> (no +. ni) *. cpu_tuple *. 2.0
    | Hash_join -> (ni *. hash_tuple) +. (no *. cpu_tuple)
  in
  let out_slots =
    match kind with
    | J_regular | J_ext _ -> Array.append outer.props.p_slots inner.props.p_slots
    | J_exists | J_all | J_set_pred _ -> outer.props.p_slots
    | J_scalar -> Array.append outer.props.p_slots [| computed_slot |]
  in
  let order =
    match method_ with
    | Nested_loop -> outer.props.p_order
    | Sort_merge ->
      (* result ordered by the outer merge keys *)
      List.map (fun (o, _) -> (o, Ast.Asc)) equi
    | Hash_join -> []
  in
  let props =
    {
      p_quants =
        (match kind with
        | J_regular | J_ext _ ->
          List.sort_uniq Int.compare (outer.props.p_quants @ inner.props.p_quants)
        | _ -> outer.props.p_quants);
      p_slots = out_slots;
      p_order = order;
      p_site = outer.props.p_site;
      p_distinct = false;
      p_cost = outer.props.p_cost +. method_cost +. (card *. cpu_tuple);
      p_card = card;
    }
  in
  {
    op =
      Join
        { j_method = method_; j_kind = kind; j_equi = equi; j_pred = pred;
          j_corr = corr; j_kind_pred = kind_pred; j_bound = bound };
    inputs = [ outer; inner ];
    props;
  }

let mk_group ~keys ~aggs ~sorted ~info (input : plan) : plan =
  let n = input.props.p_card in
  let groups =
    if keys = [] then 1.0
    else
      let bound =
        List.fold_left
          (fun acc k ->
            match slot_distinct info k with
            | Some d -> acc *. d
            | None -> acc *. 30.0)
          1.0 keys
      in
      Float.max 1.0 (Float.min n bound)
  in
  let cost =
    input.props.p_cost
    +. (n *. (if sorted then cpu_tuple else hash_tuple))
    +. (n *. cpu_tuple *. float_of_int (List.length aggs))
  in
  let props =
    {
      input.props with
      p_slots =
        Array.append
          (Array.of_list (List.map (fun k -> input.props.p_slots.(k)) keys))
          (Array.make (List.length aggs) computed_slot);
      p_order = (if sorted then List.mapi (fun i _ -> (i, Ast.Asc)) keys else []);
      p_distinct = keys <> [];
      p_cost = cost;
      p_card = groups;
    }
  in
  { op = Group { g_keys = keys; g_aggs = aggs; g_sorted = sorted }; inputs = [ input ]; props }

let mk_setop op (l : plan) (r : plan) : plan =
  let nl = l.props.p_card and nr = r.props.p_card in
  let card, cost_extra, distinct =
    match op with
    | Union_all -> (nl +. nr, cpu_tuple *. (nl +. nr), false)
    | Intersect_op all -> (Float.min nl nr, hash_tuple *. (nl +. nr), not all)
    | Except_op all -> (nl, hash_tuple *. (nl +. nr), not all)
    | _ -> invalid_arg "mk_setop"
  in
  let props =
    {
      l.props with
      p_order = [];
      p_distinct = distinct;
      p_cost = l.props.p_cost +. r.props.p_cost +. cost_extra;
      p_card = Float.max 1.0 card;
    }
  in
  { op; inputs = [ l; r ]; props }

let mk_values rows ~width:w : plan =
  let props =
    {
      p_quants = [];
      p_slots = Array.make w computed_slot;
      p_order = [];
      p_site = "local";
      p_distinct = false;
      p_cost = cpu_tuple *. float_of_int (List.length rows);
      p_card = Float.max 1.0 (float_of_int (List.length rows));
    }
  in
  { op = Values_scan rows; inputs = []; props }

(** Property function for the Bloom reduction: the subject keeps the
    join selectivity's fraction of rows (plus ~5% false positives). *)
let mk_bloom ~subject_key ~source_key ~sel (subject : plan) (source : plan) : plan =
  let props =
    {
      subject.props with
      p_cost =
        subject.props.p_cost +. source.props.p_cost
        +. (cpu_tuple *. (subject.props.p_card +. source.props.p_card));
      p_card = Float.max 1.0 (subject.props.p_card *. Float.min 1.0 (sel *. 1.05));
    }
  in
  {
    op = Bloom_filter { bl_subject_key = subject_key; bl_source_key = source_key; bl_bits = 1 lsl 16 };
    inputs = [ subject; source ];
    props;
  }

let mk_fixpoint ~distinct (seed : plan) (step : plan) : plan =
  (* the fixpoint is assumed to run a handful of rounds over data of the
     seed's magnitude *)
  let rounds = 6.0 in
  let props =
    {
      seed.props with
      p_order = [];
      p_distinct = true;
      p_cost = seed.props.p_cost +. (rounds *. step.props.p_cost);
      p_card = Float.max 1.0 (seed.props.p_card *. rounds);
    }
  in
  { op = Fixpoint { fx_distinct = distinct }; inputs = [ seed; step ]; props }

let mk_rec_delta ~quant ~width:w ~card : plan =
  let props =
    {
      p_quants = [ quant ];
      p_slots = Array.init w (fun i -> (quant, i));
      p_order = [];
      p_site = "local";
      p_distinct = false;
      p_cost = cpu_tuple *. card;
      p_card = Float.max 1.0 card;
    }
  in
  { op = Rec_delta { rd_width = w }; inputs = []; props }

let mk_table_fn ~name ~args ~quant ~width:w (inputs : plan list) : plan =
  let in_card =
    List.fold_left (fun acc p -> acc +. p.props.p_card) 1.0 inputs
  in
  let props =
    {
      p_quants = [ quant ];
      p_slots = Array.init w (fun i -> (quant, i));
      p_order = [];
      p_site = "local";
      p_distinct = false;
      p_cost =
        List.fold_left (fun acc p -> acc +. p.props.p_cost) 0.0 inputs
        +. (cpu_tuple *. in_card);
      p_card = Float.max 1.0 in_card;
    }
  in
  { op = Table_fn_scan { tf_name = name; tf_args = args }; inputs; props }
