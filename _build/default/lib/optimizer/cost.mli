(** The cost model and per-LOLEPOP property functions.

    "Each LOLEPOP changes selected properties of its operands … these
    changes, including the appropriate cost and cardinality estimates,
    are defined by a function for each LOLEPOP" (section 6).  The smart
    constructors below are those property functions: each builds a plan
    node and derives its output properties from its operands'. *)

open Sb_storage
module Ast = Sb_hydrogen.Ast
open Plan

(** Cost constants, in abstract units (1.0 = one page I/O). *)

val io_page : float
val cpu_tuple : float
val cpu_pred : float
val hash_tuple : float
val sort_tuple_log : float
val ship_tuple : float
val temp_tuple : float
val index_probe : float
val fetch_row : float

(** Maps an output slot to the base-table statistics of the column it
    carries, when known. *)
type slot_info = int -> (Stats.t * int) option

val no_info : slot_info

(** Selectivity of a predicate over rows described by [slot_info],
    using per-column statistics where available. *)
val selectivity : slot_info -> rexpr -> float

val conj_selectivity : slot_info -> rexpr list -> float

val slot_distinct : slot_info -> int -> float option

val probe_selectivity : slot_info -> key_slots:int list -> probe_spec -> float

val join_selectivity :
  outer_info:slot_info ->
  inner_info:slot_info ->
  equi:(int * int) list ->
  pred:rexpr option ->
  info_joined:slot_info ->
  float

(** {1 Property functions (smart constructors)} *)

val mk_scan :
  table:string ->
  stats:Stats.t ->
  site:string ->
  quant:int ->
  cols:int list ->
  preds:rexpr list ->
  info:slot_info ->
  unit ->
  plan

val mk_idx_access :
  table:string ->
  index:string ->
  stats:Stats.t ->
  site:string ->
  quant:int ->
  cols:int list ->
  probe:probe_spec ->
  probe_sel:float ->
  ordered_on:(int * Ast.order_dir) list ->
  preds:rexpr list ->
  info:slot_info ->
  unit ->
  plan

val mk_idx_and :
  table:string ->
  stats:Stats.t ->
  site:string ->
  quant:int ->
  cols:int list ->
  probes:(string * probe_spec * float) list ->
  preds:rexpr list ->
  info:slot_info ->
  unit ->
  plan

val mk_filter : info:slot_info -> rexpr list -> plan -> plan
val mk_or_filter : info:slot_info -> rexpr list -> plan -> plan

(** [slots] overrides the output provenance (defaults to pass-through
    for direct column references, computed otherwise). *)
val mk_project : ?slots:(int * int) array -> rexpr list -> plan -> plan

val mk_sort : (int * Ast.order_dir) list -> plan -> plan
val mk_temp : plan -> plan

(** Identity when the plan is already at [site]. *)
val mk_ship : string -> plan -> plan

val mk_limit : int -> plan -> plan
val mk_distinct : info:slot_info -> plan -> plan

val mk_join :
  ?bound:bool ->
  method_:join_method ->
  kind:join_kind ->
  equi:(int * int) list ->
  pred:rexpr option ->
  kind_pred:rexpr option ->
  corr:rexpr list ->
  sel:float ->
  plan ->
  plan ->
  plan

val mk_group :
  keys:int list ->
  aggs:(string * bool * int option) list ->
  sorted:bool ->
  info:slot_info ->
  plan ->
  plan

(** [op] must be [Union_all], [Intersect_op _] or [Except_op _]. *)
val mk_setop : op -> plan -> plan -> plan

val mk_values : rexpr list list -> width:int -> plan
val mk_bloom : subject_key:int -> source_key:int -> sel:float -> plan -> plan -> plan
val mk_fixpoint : distinct:bool -> plan -> plan -> plan
val mk_rec_delta : quant:int -> width:int -> card:float -> plan
val mk_table_fn :
  name:string -> args:rexpr list -> quant:int -> width:int -> plan list -> plan
