lib/optimizer/generator.ml: Array Base_stars Catalog Cost Fmt Fun Hashtbl Int List Option Plan Sb_hydrogen Sb_qgm Sb_storage Star Stats Table_store
