lib/optimizer/generator.mli: Catalog Cost Plan Sb_hydrogen Sb_qgm Sb_storage Star
