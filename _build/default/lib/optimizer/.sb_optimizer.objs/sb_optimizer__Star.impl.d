lib/optimizer/star.ml: Access_method Catalog Cost Float Fmt Hashtbl Int List Plan Sb_hydrogen Sb_qgm Sb_storage Stats
