lib/optimizer/cost.mli: Plan Sb_hydrogen Sb_storage Stats
