lib/optimizer/star.mli: Access_method Catalog Cost Hashtbl Plan Sb_hydrogen Sb_qgm Sb_storage Stats
