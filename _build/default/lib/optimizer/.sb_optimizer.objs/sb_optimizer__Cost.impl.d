lib/optimizer/cost.ml: Array Float Int List Option Plan Sb_hydrogen Sb_storage Stats Value
