lib/optimizer/base_stars.mli: Plan Star
