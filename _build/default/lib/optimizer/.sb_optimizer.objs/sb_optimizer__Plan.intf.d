lib/optimizer/plan.mli: Format Sb_hydrogen Sb_storage Value
