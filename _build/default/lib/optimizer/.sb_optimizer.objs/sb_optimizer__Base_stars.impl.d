lib/optimizer/base_stars.ml: Access_method Array Cost List Option Plan Sb_hydrogen Sb_storage Star
