lib/optimizer/plan.ml: Array Buffer Fmt Format Int List Option Sb_hydrogen Sb_storage String Value
