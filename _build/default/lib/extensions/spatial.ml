(** The spatial extension: a [BOX] external datatype, spatial scalar
    functions, and the R-tree access-method attachment [GUTT84] — the
    paper's example of a data management extension Corona must learn to
    exploit ("Corona must recognize when this access method is useful
    for a query and when to invoke it").  The optimizer learns it
    through a registered probe matcher recognizing [overlaps]
    predicates. *)

open Sb_storage
module Functions = Sb_hydrogen.Functions
module Plan = Sb_optimizer.Plan
module Star = Sb_optimizer.Star

let type_name = "BOX"

let parse_payload s =
  match Rtree.rect_of_payload s with
  | Some r -> Ok (Rtree.payload_of_rect r)
  | None -> Error (Fmt.str "invalid BOX literal %S (expected 'x0,y0,x1,y1')" s)

let box_type : Datatype.ext_ops =
  {
    Datatype.ext_name = type_name;
    ext_parse = parse_payload;
    ext_compare =
      (fun a b ->
        (* order by lower-left corner, then upper-right: a total order
           so boxes can be sorted and grouped *)
        match Rtree.rect_of_payload a, Rtree.rect_of_payload b with
        | Some ra, Some rb -> compare (ra.Rtree.x0, ra.Rtree.y0, ra.Rtree.x1, ra.Rtree.y1)
                                (rb.Rtree.x0, rb.Rtree.y0, rb.Rtree.x1, rb.Rtree.y1)
        | _ -> String.compare a b);
    ext_print = (fun p -> Fmt.str "BOX(%s)" p);
  }

let as_rect = function
  | Value.Ext (_, p) | Value.String p -> Rtree.rect_of_payload p
  | _ -> None

let make_box_fn : Functions.scalar_fn =
  {
    Functions.sf_name = "make_box";
    sf_arity = Some 4;
    sf_type =
      (fun tys ->
        if
          List.for_all
            (function
              | Some (Datatype.Int | Datatype.Float) | None -> true
              | Some _ -> false)
            tys
        then Ok (Some (Datatype.Ext type_name))
        else Error "make_box expects four numbers");
    sf_eval =
      (function
      | [ a; b; c; d ] when not (List.exists Value.is_null [ a; b; c; d ]) ->
        let r =
          Rtree.rect ~x0:(Value.as_float a) ~y0:(Value.as_float b)
            ~x1:(Value.as_float c) ~y1:(Value.as_float d)
        in
        Value.Ext (type_name, Rtree.payload_of_rect r)
      | [ _; _; _; _ ] -> Value.Null
      | args -> Functions.error "make_box expects 4 arguments, got %d" (List.length args));
  }

let binary_box_type name = function
  | [ Some (Datatype.Ext t1); Some (Datatype.Ext t2) ]
    when t1 = type_name && t2 = type_name ->
    Ok (Some Datatype.Bool)
  | [ None; _ ] | [ _; None ] -> Ok (Some Datatype.Bool)
  | _ -> Error (name ^ " expects two BOX arguments")

let overlaps_fn : Functions.scalar_fn =
  {
    Functions.sf_name = "overlaps";
    sf_arity = Some 2;
    sf_type = binary_box_type "overlaps";
    sf_eval =
      (function
      | [ a; b ] -> (
        match as_rect a, as_rect b with
        | Some ra, Some rb -> Value.Bool (Rtree.overlaps ra rb)
        | _ -> Value.Null)
      | args -> Functions.error "overlaps expects 2 arguments, got %d" (List.length args));
  }

let contains_fn : Functions.scalar_fn =
  {
    Functions.sf_name = "contains";
    sf_arity = Some 2;
    sf_type = binary_box_type "contains";
    sf_eval =
      (function
      | [ a; b ] -> (
        match as_rect a, as_rect b with
        | Some ra, Some rb -> Value.Bool (Rtree.contains ra rb)
        | _ -> Value.Null)
      | args -> Functions.error "contains expects 2 arguments, got %d" (List.length args));
  }

let area_fn : Functions.scalar_fn =
  {
    Functions.sf_name = "area";
    sf_arity = Some 1;
    sf_type =
      (function
      | [ Some (Datatype.Ext t) ] when t = type_name -> Ok (Some Datatype.Float)
      | [ None ] -> Ok (Some Datatype.Float)
      | _ -> Error "area expects a BOX");
    sf_eval =
      (function
      | [ v ] -> (
        match as_rect v with
        | Some r -> Value.Float (Rtree.area r)
        | None -> Value.Null)
      | args -> Functions.error "area expects 1 argument, got %d" (List.length args));
  }

(** Teaches the optimizer that an R-tree attachment answers
    [overlaps(col, constant-box)] predicates. *)
let rtree_matcher : Star.probe_matcher =
 fun am preds ->
  if am.Access_method.am_kind <> "rtree" then None
  else
    match am.Access_method.am_columns with
    | [ key ] ->
      let is_const e = Plan.slots_used e = [] && not (Plan.rexpr_has_sub e) in
      List.find_map
        (fun p ->
          let matched =
            match p with
            | Plan.RFun ("overlaps", [ Plan.RCol c; v ]) when c = key && is_const v
              ->
              Some v
            | Plan.RFun ("overlaps", [ v; Plan.RCol c ]) when c = key && is_const v
              ->
              Some v
            | _ -> None
          in
          (* the R-tree stores the exact boxes, so the probe fully
             answers the predicate *)
          Option.map
            (fun v -> (Plan.Pr_custom ("overlaps", [ v ]), 0.05, [ p ]))
            matched)
        preds
    | _ -> None

(** Registers the BOX type, the spatial functions, the R-tree attachment
    kind and the optimizer probe matcher. *)
let install (db : Starburst.t) =
  Starburst.Extension.register_datatype db box_type;
  Starburst.Extension.register_scalar_function db make_box_fn;
  Starburst.Extension.register_scalar_function db overlaps_fn;
  Starburst.Extension.register_scalar_function db contains_fn;
  Starburst.Extension.register_scalar_function db area_fn;
  Starburst.Extension.register_access_method db Access_method.rtree_kind;
  Starburst.Extension.register_probe_matcher db rtree_matcher

(** Convenience constructor for test data. *)
let box_value ~x0 ~y0 ~x1 ~y1 =
  Value.Ext (type_name, Rtree.payload_of_rect (Rtree.rect ~x0 ~y0 ~x1 ~y1))
