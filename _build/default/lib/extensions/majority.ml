(** The [MAJORITY] set-predicate function — the paper's example of a new
    set predicate (section 2): [x op MAJORITY (subquery)] is true when
    the comparison holds for strictly more than half of the subquery's
    rows.  The executor evaluates it through the same quantified-join
    machinery as the built-in ALL and ANY. *)

module Functions = Sb_hydrogen.Functions

let majority_fn : Functions.set_predicate_fn =
  {
    Functions.spf_name = "majority";
    spf_combine =
      (fun truths ->
        let total = ref 0 and yes = ref 0 and unknown = ref 0 in
        Seq.iter
          (fun t ->
            incr total;
            match t with
            | Some true -> incr yes
            | None -> incr unknown
            | Some false -> ())
          truths;
        if !total = 0 then Some false
        else if 2 * !yes > !total then Some true
        else if 2 * (!yes + !unknown) > !total then None  (* could go either way *)
        else Some false);
  }

(** [x op ATLEAST_ONE_THIRD (subquery)]: a second DBC set predicate,
    showing the interface is not MAJORITY-specific. *)
let at_least_one_third_fn : Functions.set_predicate_fn =
  {
    Functions.spf_name = "atleast_third";
    spf_combine =
      (fun truths ->
        let total = ref 0 and yes = ref 0 in
        Seq.iter
          (fun t ->
            incr total;
            if t = Some true then incr yes)
          truths;
        if !total = 0 then Some false else Some (3 * !yes >= !total));
  }

let install (db : Starburst.t) =
  Starburst.Extension.register_set_predicate db majority_fn;
  Starburst.Extension.register_set_predicate db at_least_one_third_fn
