lib/extensions/bloom_join.ml: Float List Option Sb_optimizer Starburst
