lib/extensions/check_constraint.mli: Sb_storage Starburst
