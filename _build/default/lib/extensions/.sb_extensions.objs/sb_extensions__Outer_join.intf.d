lib/extensions/outer_join.mli: Sb_optimizer Sb_qes Sb_rewrite Starburst
