lib/extensions/stats_fns.mli: Starburst
