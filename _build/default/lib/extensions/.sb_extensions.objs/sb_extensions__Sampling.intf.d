lib/extensions/sampling.mli: Starburst
