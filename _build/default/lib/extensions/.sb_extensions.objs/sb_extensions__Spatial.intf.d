lib/extensions/spatial.mli: Sb_storage Starburst
