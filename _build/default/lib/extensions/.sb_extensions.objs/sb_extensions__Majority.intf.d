lib/extensions/majority.mli: Starburst
