lib/extensions/stats_fns.ml: Datatype Float Fmt List Sb_hydrogen Sb_storage Starburst Value
