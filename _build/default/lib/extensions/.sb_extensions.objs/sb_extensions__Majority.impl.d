lib/extensions/majority.ml: Sb_hydrogen Seq Starburst
