lib/extensions/sampling.ml: Datatype List Sb_hydrogen Sb_storage Seq Starburst Value
