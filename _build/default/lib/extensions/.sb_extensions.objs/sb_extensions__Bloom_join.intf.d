lib/extensions/bloom_join.mli: Sb_optimizer Starburst
