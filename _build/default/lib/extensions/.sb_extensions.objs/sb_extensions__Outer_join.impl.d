lib/extensions/outer_join.ml: Array List Option Sb_hydrogen Sb_optimizer Sb_qes Sb_qgm Sb_rewrite Sb_storage Starburst Value
