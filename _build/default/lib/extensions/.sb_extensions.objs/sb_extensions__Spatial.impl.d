lib/extensions/spatial.ml: Access_method Datatype Fmt List Option Rtree Sb_hydrogen Sb_optimizer Sb_storage Starburst String Value
