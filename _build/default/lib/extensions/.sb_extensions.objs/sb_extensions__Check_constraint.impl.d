lib/extensions/check_constraint.ml: Access_method Catalog Fmt Sb_storage Seq Starburst Table_store Tuple
