(** DBC set-predicate functions (section 2): [x op MAJORITY (subquery)]
    is true when the comparison holds for strictly more than half of the
    subquery's rows; [atleast_third] likewise for one third. *)

val install : Starburst.t -> unit
