(** DBC aggregate functions (section 2's [StandardDeviation] example):
    [stddev], [variance] (sample, Welford's algorithm) and [median]. *)

val install : Starburst.t -> unit
