(** The left outer join extension — the paper's running example
    (sections 4–7), implemented end-to-end through the public extension
    API: the [PF] (Preserve-ForEach) quantifier type in QGM, two
    extension rewrite rules, a plan handler reusing the base STARs with
    the new join kind plus a hash variant, and the QES ["left_outer"]
    join kind. *)

(** Registers the whole extension; afterwards [LEFT OUTER JOIN] (and
    [RIGHT OUTER JOIN], normalized to left) parses, rewrites, optimizes
    and executes. *)
val install : Starburst.t -> unit

(** The extension's pieces, exposed for tests and for DBCs composing
    their own variants. *)

val left_outer_kind : Sb_qes.Exec.kind_impl
val push_through_pf : Sb_rewrite.Rule.t
val reduce_to_inner : Sb_rewrite.Rule.t
val hash_left_outer : Sb_optimizer.Star.alternative
