(** The spatial extension: a [BOX] external datatype, spatial scalar
    functions ([make_box], [overlaps], [contains], [area]), the R-tree
    access-method attachment [GUTT84], and the optimizer probe matcher
    that recognizes [overlaps] predicates. *)

val type_name : string

val install : Starburst.t -> unit

(** Convenience constructor for test data. *)
val box_value : x0:float -> y0:float -> x1:float -> y1:float -> Sb_storage.Value.t
