(** DBC aggregate functions (section 2's [StandardDeviation(Salary)]
    example): standard deviation, variance and median, registered as
    ordinary aggregates usable wherever built-ins are. *)

open Sb_storage
module Functions = Sb_hydrogen.Functions

let numeric_type = function
  | Some (Datatype.Int | Datatype.Float) | None -> Ok (Some Datatype.Float)
  | Some t -> Error (Fmt.str "numeric aggregate over %s" (Datatype.to_string t))

(* Welford's online algorithm *)
let make_moments () =
  let n = ref 0 and mean = ref 0.0 and m2 = ref 0.0 in
  let step v =
    let x = Value.as_float v in
    incr n;
    let d = x -. !mean in
    mean := !mean +. (d /. float_of_int !n);
    m2 := !m2 +. (d *. (x -. !mean))
  in
  (n, mean, m2, step)

let stddev_fn : Functions.aggregate_fn =
  {
    Functions.af_name = "stddev";
    af_type = numeric_type;
    af_make =
      (fun () ->
        let n, _, m2, step = make_moments () in
        {
          Functions.agg_step = step;
          agg_result =
            (fun () ->
              if !n < 2 then Value.Null
              else Value.Float (sqrt (!m2 /. float_of_int (!n - 1))));
        });
  }

let variance_fn : Functions.aggregate_fn =
  {
    Functions.af_name = "variance";
    af_type = numeric_type;
    af_make =
      (fun () ->
        let n, _, m2, step = make_moments () in
        {
          Functions.agg_step = step;
          agg_result =
            (fun () ->
              if !n < 2 then Value.Null
              else Value.Float (!m2 /. float_of_int (!n - 1)));
        });
  }

let median_fn : Functions.aggregate_fn =
  {
    Functions.af_name = "median";
    af_type = numeric_type;
    af_make =
      (fun () ->
        let values = ref [] in
        {
          Functions.agg_step = (fun v -> values := Value.as_float v :: !values);
          agg_result =
            (fun () ->
              match List.sort Float.compare !values with
              | [] -> Value.Null
              | sorted ->
                let n = List.length sorted in
                if n mod 2 = 1 then Value.Float (List.nth sorted (n / 2))
                else
                  Value.Float
                    ((List.nth sorted ((n / 2) - 1) +. List.nth sorted (n / 2))
                    /. 2.0));
        });
  }

let install (db : Starburst.t) =
  Starburst.Extension.register_aggregate_function db stddev_fn;
  Starburst.Extension.register_aggregate_function db variance_fn;
  Starburst.Extension.register_aggregate_function db median_fn
