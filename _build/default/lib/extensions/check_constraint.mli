(** DBC check constraints as attachments — integrity constraints are
    attachments in Core's architecture (section 1 / [LIND87]).  A check
    constraint rejects INSERTs and UPDATEs whose tuple fails its
    predicate. *)

(** Attaches a named predicate constraint; existing rows must already
    satisfy it.
    @raise Starburst.Error when the table does not exist or holds
    violating rows. *)
val attach :
  Starburst.t -> table:string -> name:string -> (Sb_storage.Tuple.t -> bool) -> unit

val detach : Starburst.t -> table:string -> name:string -> unit
