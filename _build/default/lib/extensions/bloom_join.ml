(** Bloom-join: the distributed filtration method of [MACK86], added —
    as the paper claims is possible — "simply by adding a new LOLEPOP"
    plus one STAR alternative.

    When the inner table lives at a different site, the base plan ships
    the whole inner to the join site.  The Bloom alternative instead
    ships the outer's join keys to the inner's site, reduces the inner
    with a Bloom filter there, and ships only the (probably-)matching
    rows; the hash join above re-verifies, so false positives cost
    bandwidth, never correctness. *)

module Plan = Sb_optimizer.Plan
module Cost = Sb_optimizer.Cost
module Star = Sb_optimizer.Star

let bloom_alternative : Star.alternative =
  {
    Star.alt_name = "bloom-reduced-inner";
    alt_rank = 2;
    alt_cond =
      (fun _ pl ->
        match pl.Star.pl_outer, pl.Star.pl_inner with
        | Some outer, Some inner ->
          pl.Star.pl_kind = Plan.J_regular
          && pl.Star.pl_corr = []
          && (match pl.Star.pl_equi with [ _ ] -> true | _ -> false)
          && outer.Plan.props.Plan.p_site <> inner.Plan.props.Plan.p_site
        | _ -> false);
    alt_produce =
      (fun _ pl ->
        let outer = Option.get pl.Star.pl_outer in
        let inner = Option.get pl.Star.pl_inner in
        let okey, ikey = List.hd pl.Star.pl_equi in
        (* ship the outer's keys to the inner's site (they are small),
           reduce the inner there, ship back only survivors *)
        let keys =
          Cost.mk_project [ Plan.RCol okey ] (Cost.mk_temp outer)
        in
        let keys_at_inner = Cost.mk_ship inner.Plan.props.Plan.p_site keys in
        let sel =
          Cost.join_selectivity ~outer_info:pl.Star.pl_info
            ~inner_info:Cost.no_info ~equi:pl.Star.pl_equi ~pred:None
            ~info_joined:pl.Star.pl_info
          *. Float.max 1.0 outer.Plan.props.Plan.p_card
          |> Float.min 1.0
        in
        let reduced =
          Cost.mk_bloom ~subject_key:ikey ~source_key:0 ~sel inner keys_at_inner
        in
        let shipped = Cost.mk_ship outer.Plan.props.Plan.p_site reduced in
        [
          Cost.mk_join ~method_:Plan.Hash_join ~kind:Plan.J_regular
            ~equi:pl.Star.pl_equi ~pred:pl.Star.pl_pred ~kind_pred:None
            ~corr:[]
            ~sel:
              (Cost.join_selectivity ~outer_info:pl.Star.pl_info
                 ~inner_info:Cost.no_info ~equi:pl.Star.pl_equi
                 ~pred:pl.Star.pl_pred ~info_joined:pl.Star.pl_info)
            outer shipped;
        ]);
  }

(** Registers the Bloom-join alternative on the JoinRoot STAR. *)
let install (db : Starburst.t) =
  Starburst.Extension.register_star db "JoinRoot" [ bloom_alternative ]
