(** Bloom-join [MACK86], added — as section 6 claims is possible —
    through one new LOLEPOP plus one STAR alternative: when the inner
    table is at a different site, ship the outer's join keys there,
    reduce the inner with a Bloom filter, and ship only survivors; the
    hash join above re-verifies, so false positives cost bandwidth,
    never correctness. *)

val install : Starburst.t -> unit

val bloom_alternative : Sb_optimizer.Star.alternative
