(** The [SAMPLE(table, n)] table function (section 2's example of a
    DBC-defined operation on tables): up to [n] rows of its input, by a
    deterministic stride, so query results are stable. *)

val install : Starburst.t -> unit
