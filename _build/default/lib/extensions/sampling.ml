(** The [SAMPLE(table, n)] table function — the paper's example of a
    DBC-defined operation on tables (section 2): takes a table and an
    integer and produces a table of (up to) [n] of its rows.  Sampling
    is deterministic (fixed stride), so query results are stable. *)

open Sb_storage
module Functions = Sb_hydrogen.Functions

let sample_fn : Functions.table_fn =
  {
    Functions.tf_name = "sample";
    tf_type =
      (fun ~arg_tables ~arg_values ->
        match arg_tables, arg_values with
        | [ schema ], [ (Some Datatype.Int | None) ] -> Ok schema
        | [ _ ], _ -> Error "second argument must be an integer"
        | _ -> Error "expected SAMPLE(table, n)");
    tf_eval =
      (fun ~arg_tables ~arg_values ->
        match arg_tables, arg_values with
        | [ (_, rows) ], [ n ] ->
          let n = max 0 (Value.as_int n) in
          if n = 0 then Seq.empty
          else begin
            let all = List.of_seq rows in
            let total = List.length all in
            if total <= n then List.to_seq all
            else begin
              let stride = total / n in
              List.to_seq all
              |> Seq.mapi (fun i row -> (i, row))
              |> Seq.filter_map (fun (i, row) ->
                     if i mod stride = 0 && i / stride < n then Some row else None)
            end
          end
        | _ -> Functions.error "SAMPLE expects (table, n)");
  }

let install (db : Starburst.t) =
  Starburst.Extension.register_table_function db sample_fn
