(** B+-tree over composite value keys, mapping each key to the record
    ids of matching tuples (duplicates allowed).  Leaves are chained for
    range scans; deletion is lazy at the structural level (emptied keys
    leave their nodes unrebalanced). *)

type key = Value.t array
type rid = Storage_manager.rid
type t

val compare_keys : ?registry:Datatype.registry -> key -> key -> int

(** [order] is the maximum keys per node (default 32); [registry]
    resolves external-type key comparisons. *)
val create : ?registry:Datatype.registry -> ?order:int -> unit -> t

(** Total rids stored. *)
val entry_count : t -> int

(** Node touches since the last {!reset_accesses} (cost accounting). *)
val accesses : t -> int

val reset_accesses : t -> unit

val insert : t -> key -> rid -> unit

(** Removes one occurrence of [rid] under [key]; [false] if absent. *)
val delete : t -> key -> rid -> bool

(** All rids under [key] (most recently inserted first). *)
val find : t -> key -> rid list

(** Range scan in key order.  Bounds are [(key, inclusive)];
    omitted bounds are open. *)
val range :
  t -> ?lo:key * bool -> ?hi:key * bool -> unit -> (key * rid) Seq.t

(** Structural invariants (sortedness, separator bounds, uniform leaf
    depth); used by the property tests. *)
val check : t -> bool
