(** R-tree [GUTT84] over 2-D rectangles — the paper's example of a new
    access-method attachment.  Guttman's linear-cost split. *)

type rect = { x0 : float; y0 : float; x1 : float; y1 : float }

(** Normalizing constructor (corners may be given in any order). *)
val rect : x0:float -> y0:float -> x1:float -> y1:float -> rect

val overlaps : rect -> rect -> bool
val contains : rect -> rect -> bool
val union : rect -> rect -> rect
val area : rect -> float
val pp_rect : Format.formatter -> rect -> unit

(** Canonical payload form ["x0,y0,x1,y1"] of the [BOX] external
    datatype; shared with the spatial extension. *)
val rect_of_payload : string -> rect option

val payload_of_rect : rect -> string

type rid = Storage_manager.rid
type t

val create : ?max_entries:int -> unit -> t
val entry_count : t -> int
val accesses : t -> int
val reset_accesses : t -> unit
val insert : t -> rect -> rid -> unit

(** All rids whose rectangle overlaps the query window. *)
val search : t -> rect -> rid list

(** Removes one entry with exactly this rectangle and id. *)
val delete : t -> rect -> rid -> bool
