(** B+-tree over composite value keys, mapping each key to the record ids
    of matching tuples (duplicates allowed).  Leaves are chained for range
    scans.  Deletion is lazy at the structural level: emptied keys are
    removed from their leaf but underfull nodes are not rebalanced — the
    standard trade-off for index workloads dominated by inserts/scans. *)

type key = Value.t array

type rid = Storage_manager.rid

type leaf = {
  mutable lkeys : key array;
  mutable lvals : rid list array;
  mutable lnext : leaf option;
}

type node = Leaf of leaf | Internal of internal

and internal = {
  (* children.(i) holds keys < ikeys.(i); children.(n) holds the rest *)
  mutable ikeys : key array;
  mutable children : node array;
}

type t = {
  order : int;  (** max keys per node *)
  cmp : key -> key -> int;
  mutable root : node;
  mutable entries : int;  (** total rids stored *)
  mutable node_accesses : int;  (** accounting for the cost model *)
}

let compare_keys ?registry (a : key) (b : key) =
  let n = min (Array.length a) (Array.length b) in
  let rec loop i =
    if i >= n then Int.compare (Array.length a) (Array.length b)
    else
      let c = Value.compare ?registry a.(i) b.(i) in
      if c <> 0 then c else loop (i + 1)
  in
  loop 0

let create ?registry ?(order = 32) () =
  {
    order;
    cmp = compare_keys ?registry;
    root = Leaf { lkeys = [||]; lvals = [||]; lnext = None };
    entries = 0;
    node_accesses = 0;
  }

let entry_count t = t.entries

let reset_accesses t = t.node_accesses <- 0
let accesses t = t.node_accesses

(* index of first key >= k, or length if none *)
let lower_bound cmp (keys : key array) k =
  let lo = ref 0 and hi = ref (Array.length keys) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cmp keys.(mid) k < 0 then lo := mid + 1 else hi := mid
  done;
  !lo

let array_insert a i x =
  let n = Array.length a in
  Array.init (n + 1) (fun j -> if j < i then a.(j) else if j = i then x else a.(j - 1))

let array_remove a i =
  let n = Array.length a in
  Array.init (n - 1) (fun j -> if j < i then a.(j) else a.(j + 1))

type split = (key * node) option

let rec insert_node t node key rid : split =
  t.node_accesses <- t.node_accesses + 1;
  match node with
  | Leaf l ->
    let i = lower_bound t.cmp l.lkeys key in
    if i < Array.length l.lkeys && t.cmp l.lkeys.(i) key = 0 then begin
      l.lvals.(i) <- rid :: l.lvals.(i);
      None
    end
    else begin
      l.lkeys <- array_insert l.lkeys i key;
      l.lvals <- array_insert l.lvals i [ rid ];
      if Array.length l.lkeys <= t.order then None
      else begin
        let mid = Array.length l.lkeys / 2 in
        let right =
          {
            lkeys = Array.sub l.lkeys mid (Array.length l.lkeys - mid);
            lvals = Array.sub l.lvals mid (Array.length l.lvals - mid);
            lnext = l.lnext;
          }
        in
        l.lkeys <- Array.sub l.lkeys 0 mid;
        l.lvals <- Array.sub l.lvals 0 mid;
        l.lnext <- Some right;
        Some (right.lkeys.(0), Leaf right)
      end
    end
  | Internal node ->
    let i = lower_bound t.cmp node.ikeys key in
    let i = if i < Array.length node.ikeys && t.cmp node.ikeys.(i) key = 0 then i + 1 else i in
    (match insert_node t node.children.(i) key rid with
    | None -> None
    | Some (sep, right) ->
      node.ikeys <- array_insert node.ikeys i sep;
      node.children <- array_insert node.children (i + 1) right;
      if Array.length node.ikeys <= t.order then None
      else begin
        let mid = Array.length node.ikeys / 2 in
        let sep_up = node.ikeys.(mid) in
        let right_node =
          {
            ikeys = Array.sub node.ikeys (mid + 1) (Array.length node.ikeys - mid - 1);
            children =
              Array.sub node.children (mid + 1) (Array.length node.children - mid - 1);
          }
        in
        node.ikeys <- Array.sub node.ikeys 0 mid;
        node.children <- Array.sub node.children 0 (mid + 1);
        Some (sep_up, Internal right_node)
      end)

let insert t key rid =
  (match insert_node t t.root key rid with
  | None -> ()
  | Some (sep, right) ->
    t.root <- Internal { ikeys = [| sep |]; children = [| t.root; right |] });
  t.entries <- t.entries + 1

let rec find_leaf t node key =
  t.node_accesses <- t.node_accesses + 1;
  match node with
  | Leaf l -> l
  | Internal n ->
    let i = lower_bound t.cmp n.ikeys key in
    let i = if i < Array.length n.ikeys && t.cmp n.ikeys.(i) key = 0 then i + 1 else i in
    find_leaf t n.children.(i) key

(** Removes one occurrence of [rid] under [key]. *)
let delete t key rid =
  let l = find_leaf t t.root key in
  let i = lower_bound t.cmp l.lkeys key in
  if i < Array.length l.lkeys && t.cmp l.lkeys.(i) key = 0 then begin
    let before = List.length l.lvals.(i) in
    let vals = ref [] and removed = ref false in
    List.iter
      (fun r ->
        if (not !removed) && Storage_manager.compare_rid r rid = 0 then removed := true
        else vals := r :: !vals)
      l.lvals.(i);
    if !removed then begin
      t.entries <- t.entries - 1;
      if before = 1 then begin
        l.lkeys <- array_remove l.lkeys i;
        l.lvals <- array_remove l.lvals i
      end
      else l.lvals.(i) <- List.rev !vals
    end;
    !removed
  end
  else false

let find t key =
  let l = find_leaf t t.root key in
  let i = lower_bound t.cmp l.lkeys key in
  if i < Array.length l.lkeys && t.cmp l.lkeys.(i) key = 0 then l.lvals.(i) else []

(** Range scan.  Bounds are [(key, inclusive)]; [None] means unbounded.
    Yields [(key, rid)] in key order. *)
let range t ?lo ?hi () : (key * rid) Seq.t =
  let start_leaf, start_idx =
    match lo with
    | None ->
      let rec leftmost node =
        t.node_accesses <- t.node_accesses + 1;
        match node with
        | Leaf l -> l
        | Internal n -> leftmost n.children.(0)
      in
      (leftmost t.root, 0)
    | Some (k, incl) ->
      let l = find_leaf t t.root k in
      let i = lower_bound t.cmp l.lkeys k in
      let i =
        if (not incl) && i < Array.length l.lkeys && t.cmp l.lkeys.(i) k = 0 then i + 1
        else i
      in
      (l, i)
  in
  let below_hi key =
    match hi with
    | None -> true
    | Some (k, incl) ->
      let c = t.cmp key k in
      if incl then c <= 0 else c < 0
  in
  let rec from_leaf (l : leaf) i () =
    if i >= Array.length l.lkeys then
      match l.lnext with
      | None -> Seq.Nil
      | Some next ->
        t.node_accesses <- t.node_accesses + 1;
        from_leaf next 0 ()
    else if not (below_hi l.lkeys.(i)) then Seq.Nil
    else
      let key = l.lkeys.(i) in
      let rids = List.rev l.lvals.(i) in
      Seq.append
        (Seq.map (fun r -> (key, r)) (List.to_seq rids))
        (from_leaf l (i + 1))
        ()
  in
  from_leaf start_leaf start_idx

(** Structural invariants, used by the test suite. *)
let check t =
  let rec depth node =
    match node with
    | Leaf _ -> 0
    | Internal n -> 1 + depth n.children.(0)
  in
  let d = depth t.root in
  let ok = ref true in
  let rec walk node level lo hi =
    (match node with
    | Leaf l ->
      if level <> d then ok := false;
      Array.iteri
        (fun i k ->
          (match lo with Some b when t.cmp k b < 0 -> ok := false | _ -> ());
          (match hi with Some b when t.cmp k b >= 0 -> ok := false | _ -> ());
          if i > 0 && t.cmp l.lkeys.(i - 1) k >= 0 then ok := false)
        l.lkeys
    | Internal n ->
      if Array.length n.children <> Array.length n.ikeys + 1 then ok := false;
      Array.iteri
        (fun i k ->
          if i > 0 && t.cmp n.ikeys.(i - 1) k >= 0 then ok := false)
        n.ikeys;
      Array.iteri
        (fun i child ->
          let lo' = if i = 0 then lo else Some n.ikeys.(i - 1) in
          let hi' = if i = Array.length n.ikeys then hi else Some n.ikeys.(i) in
          walk child (level + 1) lo' hi')
        n.children);
  in
  walk t.root 0 None None;
  !ok
