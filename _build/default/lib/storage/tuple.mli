(** Tuples are immutable-by-convention arrays of values. *)

type t = Value.t array

val arity : t -> int
val of_list : Value.t list -> t
val to_list : t -> Value.t list
val concat : t -> t -> t

(** Projects the given column positions, in order. *)
val project : t -> int list -> t

(** Lexicographic comparison on the column indices in [keys];
    [descs.(k)] reverses the k-th key. *)
val compare_on :
  ?registry:Datatype.registry -> keys:int list -> ?descs:bool array -> t -> t -> int

(** Full lexicographic comparison (shorter tuples first on ties). *)
val compare : ?registry:Datatype.registry -> t -> t -> int

val equal : ?registry:Datatype.registry -> t -> t -> bool
val hash : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string
