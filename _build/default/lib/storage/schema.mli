(** Table schemas: ordered, named, typed columns. *)

type column = {
  col_name : string;
  col_type : Datatype.t;
  col_nullable : bool;
  col_unique : bool;  (** declared key: at most one row per value *)
}

type t = column array

(** [column name ty] defaults to nullable and non-unique. *)
val column : ?nullable:bool -> ?unique:bool -> string -> Datatype.t -> column

val arity : t -> int
val names : t -> string list

(** Index of column [name] (case-insensitive, as in SQL). *)
val find_index : t -> string -> int option

val find_column : t -> string -> column option

val pp_column : Format.formatter -> column -> unit
val pp : Format.formatter -> t -> unit

(** Checks arity, types of non-null values (ints widen to FLOAT
    columns), and nullability. *)
val validate : schema:t -> Value.t array -> (unit, string) result
