(** The default storage manager: a heap of slotted pages holding
    variable-length records, accessed through the buffer pool. *)

val make : pool:Buffer_pool.t -> schema:Schema.t -> Storage_manager.instance

(** Registered as ["heap"]; supports every schema. *)
val factory : Storage_manager.factory
