(** Tuples are immutable-by-convention arrays of values. *)

type t = Value.t array

let arity (t : t) = Array.length t

let of_list = Array.of_list
let to_list = Array.to_list

let concat (a : t) (b : t) : t = Array.append a b

let project (t : t) (indices : int list) : t =
  Array.of_list (List.map (fun i -> t.(i)) indices)

(** Lexicographic comparison on the given column indices; [descs.(k)]
    reverses the k-th key. *)
let compare_on ?registry ~keys ?descs (a : t) (b : t) =
  let rec loop k = function
    | [] -> 0
    | i :: rest ->
      let c = Value.compare ?registry a.(i) b.(i) in
      let c =
        match descs with
        | Some d when d.(k) -> -c
        | _ -> c
      in
      if c <> 0 then c else loop (k + 1) rest
  in
  loop 0 keys

let compare ?registry (a : t) (b : t) =
  let n = min (Array.length a) (Array.length b) in
  let rec loop i =
    if i >= n then Int.compare (Array.length a) (Array.length b)
    else
      let c = Value.compare ?registry a.(i) b.(i) in
      if c <> 0 then c else loop (i + 1)
  in
  loop 0

let equal ?registry a b = compare ?registry a b = 0

let hash (t : t) =
  Array.fold_left (fun acc v -> (acc * 31) + Value.hash v) 17 t

let pp ppf (t : t) =
  Fmt.pf ppf "(%a)" Fmt.(array ~sep:comma Value.pp) t

let to_string (t : t) = Fmt.str "%a" pp t
