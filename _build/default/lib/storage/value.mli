(** Runtime values.

    SQL three-valued logic lives in the expression evaluator; here
    [Null] is simply a distinguished value that compares lowest, so that
    sorting and B-tree keys have a total order.  [Ext] carries an
    externally-defined (DBC) type's payload; its behaviour comes from
    the {!Datatype.registry}. *)

type t =
  | Null
  | Int of int
  | Float of float
  | Bool of bool
  | String of string
  | Ext of string * string  (** type name, payload *)

exception Type_error of string

(** The datatype of a value; [None] for [Null]. *)
val type_of : t -> Datatype.t option

val is_null : t -> bool

(** Total order.  Ints and floats compare numerically; [registry]
    resolves comparisons of external types (payloads compare as strings
    without it). *)
val compare : ?registry:Datatype.registry -> t -> t -> int

val equal : ?registry:Datatype.registry -> t -> t -> bool

(** Hash consistent with {!equal}: values that compare equal (e.g.
    [Int 3] and [Float 3.0]) hash alike. *)
val hash : t -> int

val to_string : ?registry:Datatype.registry -> t -> string

(** Literal display form: strings are quoted and escaped. *)
val to_literal : t -> string

val pp : Format.formatter -> t -> unit

(** Numeric/boolean/string accessors; raise {!Type_error} on mismatch.
    [as_int] truncates floats; [as_float] widens ints. *)

val as_int : t -> int
val as_float : t -> float
val as_bool : t -> bool
val as_string : t -> string
