lib/storage/tuple.mli: Datatype Format Value
