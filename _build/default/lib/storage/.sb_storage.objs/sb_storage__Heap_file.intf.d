lib/storage/heap_file.mli: Buffer_pool Schema Storage_manager
