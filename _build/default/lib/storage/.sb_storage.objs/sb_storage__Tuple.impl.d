lib/storage/tuple.ml: Array Fmt Int List Value
