lib/storage/stats.mli: Datatype Format Schema Seq Tuple Value
