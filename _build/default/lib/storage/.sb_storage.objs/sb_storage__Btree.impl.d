lib/storage/btree.ml: Array Int List Seq Storage_manager Value
