lib/storage/datatype.mli: Format
