lib/storage/btree.mli: Datatype Seq Storage_manager Value
