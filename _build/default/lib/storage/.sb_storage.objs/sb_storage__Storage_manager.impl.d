lib/storage/storage_manager.ml: Buffer_pool Fmt Hashtbl Int List Schema Seq String Tuple
