lib/storage/fixed_file.ml: Buffer_pool List Page Row_codec Schema Seq Storage_manager String
