lib/storage/access_method.ml: Array Btree Datatype Fmt Hashtbl List Option Rtree Schema Seq Storage_manager String Tuple Value
