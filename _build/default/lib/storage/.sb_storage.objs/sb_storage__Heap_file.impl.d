lib/storage/heap_file.ml: Buffer_pool List Option Page Row_codec Schema Seq Storage_manager String
