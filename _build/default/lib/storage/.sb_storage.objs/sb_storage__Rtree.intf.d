lib/storage/rtree.mli: Format Storage_manager
