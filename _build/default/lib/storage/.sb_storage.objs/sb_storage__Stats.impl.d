lib/storage/stats.ml: Array Fmt List Schema Seq Tuple Value
