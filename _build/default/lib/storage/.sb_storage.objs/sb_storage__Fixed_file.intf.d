lib/storage/fixed_file.mli: Buffer_pool Schema Storage_manager
