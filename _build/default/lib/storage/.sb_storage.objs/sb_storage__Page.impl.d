lib/storage/page.ml: Array Bytes List String
