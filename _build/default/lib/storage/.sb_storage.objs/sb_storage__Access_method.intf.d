lib/storage/access_method.mli: Datatype Format Schema Seq Storage_manager Tuple Value
