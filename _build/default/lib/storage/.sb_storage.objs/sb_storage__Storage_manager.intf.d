lib/storage/storage_manager.mli: Buffer_pool Format Schema Seq Tuple
