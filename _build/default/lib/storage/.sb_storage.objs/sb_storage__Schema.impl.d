lib/storage/schema.ml: Array Datatype Fmt List Option String Value
