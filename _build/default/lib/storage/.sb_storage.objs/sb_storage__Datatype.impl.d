lib/storage/datatype.ml: Fmt Hashtbl String
