lib/storage/rtree.ml: Array Fmt List Storage_manager String
