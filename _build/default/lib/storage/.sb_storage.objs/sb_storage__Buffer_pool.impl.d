lib/storage/buffer_pool.ml: Array Fmt Fun Hashtbl Page
