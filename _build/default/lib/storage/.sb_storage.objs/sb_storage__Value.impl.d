lib/storage/value.ml: Bool Datatype Float Fmt Hashtbl Int Option String
