lib/storage/table_store.ml: Access_method Datatype Fmt List Schema Seq Stats Storage_manager Tuple
