lib/storage/row_codec.ml: Array Buffer Bytes Char Datatype Fmt Int64 Schema String Tuple Value
