lib/storage/row_codec.mli: Schema Tuple
