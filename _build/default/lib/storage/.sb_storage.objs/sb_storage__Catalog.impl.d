lib/storage/catalog.ml: Access_method Array Buffer_pool Datatype Fixed_file Fmt Hashtbl Heap_file List Schema Storage_manager String Table_store
