lib/storage/catalog.mli: Access_method Buffer_pool Datatype Hashtbl Schema Storage_manager Table_store
