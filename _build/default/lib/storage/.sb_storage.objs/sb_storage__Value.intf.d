lib/storage/value.mli: Datatype Format
