lib/storage/table_store.mli: Access_method Datatype Schema Seq Stats Storage_manager Tuple
