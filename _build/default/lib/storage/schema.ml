(** Table schemas: ordered, named, typed columns. *)

type column = {
  col_name : string;
  col_type : Datatype.t;
  col_nullable : bool;
  col_unique : bool;  (** declared key: at most one row per value *)
}

type t = column array

let column ?(nullable = true) ?(unique = false) name ty =
  { col_name = name; col_type = ty; col_nullable = nullable; col_unique = unique }

let arity (s : t) = Array.length s

let names (s : t) = Array.to_list s |> List.map (fun c -> c.col_name)

(** Index of column [name] (case-insensitive, as in SQL). *)
let find_index (s : t) name =
  let lname = String.lowercase_ascii name in
  let rec loop i =
    if i >= Array.length s then None
    else if String.lowercase_ascii s.(i).col_name = lname then Some i
    else loop (i + 1)
  in
  loop 0

let find_column (s : t) name =
  Option.map (fun i -> s.(i)) (find_index s name)

let pp_column ppf c =
  Fmt.pf ppf "%s %a%s" c.col_name Datatype.pp c.col_type
    (if c.col_nullable then "" else " NOT NULL")

let pp ppf (s : t) =
  Fmt.pf ppf "(%a)" Fmt.(array ~sep:comma pp_column) s

(** Checks that [tuple] matches the schema: arity, types of non-null
    values, and nullability.  Returns an error message on mismatch. *)
let validate ~schema (tuple : Value.t array) =
  if Array.length tuple <> Array.length schema then
    Error
      (Fmt.str "arity mismatch: expected %d columns, got %d"
         (Array.length schema) (Array.length tuple))
  else
    let rec loop i =
      if i >= Array.length schema then Ok ()
      else
        let c = schema.(i) and v = tuple.(i) in
        match Value.type_of v with
        | None ->
          if c.col_nullable then loop (i + 1)
          else Error (Fmt.str "column %s is NOT NULL" c.col_name)
        | Some ty ->
          (* ints widen to float columns *)
          let ok =
            Datatype.equal ty c.col_type
            || (Datatype.equal c.col_type Datatype.Float
               && Datatype.equal ty Datatype.Int)
          in
          if ok then loop (i + 1)
          else
            Error
              (Fmt.str "column %s expects %a, got %a" c.col_name Datatype.pp
                 c.col_type Datatype.pp ty)
    in
    loop 0
