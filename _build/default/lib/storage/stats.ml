(** Table and column statistics, the optimizer's cost-model input
    ("starting with statistics on stored tables", section 6). *)

type column_stats = {
  cs_distinct : int;
  cs_nulls : int;
  cs_min : Value.t option;
  cs_max : Value.t option;
  cs_histogram : Value.t array;
      (** equi-depth bucket upper bounds over non-null values *)
}

type t = {
  ts_cardinality : int;
  ts_pages : int;
  ts_columns : column_stats array;
}

let empty_column =
  { cs_distinct = 0; cs_nulls = 0; cs_min = None; cs_max = None; cs_histogram = [||] }

let empty = { ts_cardinality = 0; ts_pages = 0; ts_columns = [||] }

let histogram_buckets = 24

(** Computes statistics from a full scan of [rows]. *)
let analyze ?registry ~(schema : Schema.t) ~pages (rows : Tuple.t Seq.t) : t =
  let ncols = Array.length schema in
  let values = Array.init ncols (fun _ -> ref []) in
  let nulls = Array.make ncols 0 in
  let card = ref 0 in
  Seq.iter
    (fun tuple ->
      incr card;
      for i = 0 to ncols - 1 do
        if Value.is_null tuple.(i) then nulls.(i) <- nulls.(i) + 1
        else values.(i) := tuple.(i) :: !(values.(i))
      done)
    rows;
  let column i =
    let sorted = List.sort (Value.compare ?registry) !(values.(i)) in
    let arr = Array.of_list sorted in
    let n = Array.length arr in
    if n = 0 then { empty_column with cs_nulls = nulls.(i) }
    else begin
      let distinct = ref 1 in
      for j = 1 to n - 1 do
        if not (Value.equal ?registry arr.(j) arr.(j - 1)) then incr distinct
      done;
      let nbuckets = min histogram_buckets n in
      let histogram =
        Array.init nbuckets (fun b ->
            arr.(min (n - 1) (((b + 1) * n / nbuckets) - 1)))
      in
      {
        cs_distinct = !distinct;
        cs_nulls = nulls.(i);
        cs_min = Some arr.(0);
        cs_max = Some arr.(n - 1);
        cs_histogram = histogram;
      }
    end
  in
  {
    ts_cardinality = !card;
    ts_pages = pages;
    ts_columns = Array.init ncols column;
  }

(* --- selectivity estimation --- *)

let default_eq_selectivity = 0.05
let default_range_selectivity = 0.33

(** Fraction of rows whose column [i] equals [v]. *)
let eq_selectivity ?registry (t : t) i v =
  ignore registry;
  ignore v;
  if t.ts_cardinality = 0 || i >= Array.length t.ts_columns then
    default_eq_selectivity
  else
    let c = t.ts_columns.(i) in
    if c.cs_distinct = 0 then default_eq_selectivity
    else 1.0 /. float_of_int c.cs_distinct

(** Fraction of rows with column [i] strictly/inclusively below or above a
    bound; computed from the equi-depth histogram. *)
let range_selectivity ?registry (t : t) i ~op v =
  if t.ts_cardinality = 0 || i >= Array.length t.ts_columns then
    default_range_selectivity
  else
    let c = t.ts_columns.(i) in
    let n = Array.length c.cs_histogram in
    if n = 0 then default_range_selectivity
    else begin
      (* fraction of buckets whose upper bound is below v ~ fraction of
         rows below v *)
      let below = ref 0 in
      Array.iter
        (fun ub -> if Value.compare ?registry ub v < 0 then incr below)
        c.cs_histogram;
      let frac_lt = float_of_int !below /. float_of_int n in
      let frac_eq = eq_selectivity ?registry t i v in
      match op with
      | `Lt -> max 0.0 (min 1.0 frac_lt)
      | `Le -> max 0.0 (min 1.0 (frac_lt +. frac_eq))
      | `Gt -> max 0.0 (min 1.0 (1.0 -. frac_lt -. frac_eq))
      | `Ge -> max 0.0 (min 1.0 (1.0 -. frac_lt))
    end

let distinct_of (t : t) i =
  if i < Array.length t.ts_columns && t.ts_columns.(i).cs_distinct > 0 then
    t.ts_columns.(i).cs_distinct
  else max 1 (t.ts_cardinality / 10)

let pp ppf t =
  Fmt.pf ppf "card=%d pages=%d cols=[%a]" t.ts_cardinality t.ts_pages
    Fmt.(array ~sep:sp (fun ppf c -> Fmt.pf ppf "d=%d" c.cs_distinct))
    t.ts_columns
