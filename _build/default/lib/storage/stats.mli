(** Table and column statistics, the optimizer's cost-model input
    ("starting with statistics on stored tables", section 6). *)

type column_stats = {
  cs_distinct : int;
  cs_nulls : int;
  cs_min : Value.t option;
  cs_max : Value.t option;
  cs_histogram : Value.t array;
      (** equi-depth bucket upper bounds over non-null values *)
}

type t = {
  ts_cardinality : int;
  ts_pages : int;
  ts_columns : column_stats array;
}

val empty_column : column_stats
val empty : t

val histogram_buckets : int

(** Computes statistics from a full scan. *)
val analyze :
  ?registry:Datatype.registry -> schema:Schema.t -> pages:int -> Tuple.t Seq.t -> t

(** Fallbacks used when no statistics are available. *)
val default_eq_selectivity : float

val default_range_selectivity : float

(** Fraction of rows whose column [i] equals the value (1/distinct). *)
val eq_selectivity : ?registry:Datatype.registry -> t -> int -> Value.t -> float

(** Fraction of rows with column [i] related to the bound, from the
    equi-depth histogram. *)
val range_selectivity :
  ?registry:Datatype.registry ->
  t ->
  int ->
  op:[ `Lt | `Le | `Gt | `Ge ] ->
  Value.t ->
  float

(** Distinct count of column [i] (estimated when unknown). *)
val distinct_of : t -> int -> int

val pp : Format.formatter -> t -> unit
