(** QGM consistency checking.

    The paper's rule-system contract is that "every rule changes a
    consistent QGM representation into another consistent QGM
    representation"; the rewrite engine checks this after each rule
    application (in debug mode) and at budget exhaustion. *)

open Qgm

type violation = string

(** Returns all consistency violations of [g] (empty list = consistent). *)
let check (g : t) : violation list =
  let errs = ref [] in
  let err fmt = Fmt.kstr (fun s -> errs := s :: !errs) fmt in
  (if not (Hashtbl.mem g.boxes g.top) then err "top box %d missing" g.top);
  let boxes = try reachable_boxes g with _ -> [] in
  let check_col_ref ~ctx b qid i =
    match Hashtbl.find_opt g.quants qid with
    | None -> err "box %d %s: reference to missing quantifier %d" b.b_id ctx qid
    | Some q ->
      (match Hashtbl.find_opt g.boxes q.q_input with
      | None -> err "quant %s: missing input box %d" q.q_label q.q_input
      | Some input ->
        if i < 0 || i >= arity input then
          err "box %d %s: %s.c%d out of range (arity %d)" b.b_id ctx q.q_label i
            (arity input))
  in
  let check_expr ~ctx ~allow_agg b e =
    ignore
      (fold_expr
         (fun () e ->
           match e with
           | Col (q, i) -> check_col_ref ~ctx b q i
           | Quantified (qid, _) ->
             (match Hashtbl.find_opt g.quants qid with
             | None -> err "box %d %s: Quantified over missing quant %d" b.b_id ctx qid
             | Some q ->
               (match q.q_type with
               | E | A | SP _ -> ()
               | F | S | Ext _ ->
                 err "box %d %s: Quantified over %s quantifier %s" b.b_id ctx
                   (quant_type_name q.q_type) q.q_label))
           | Agg _ when not allow_agg ->
             err "box %d %s: aggregate outside GROUP BY head" b.b_id ctx
           | _ -> ())
         () e)
  in
  List.iter
    (fun b ->
      (* quantifier bookkeeping *)
      List.iter
        (fun q ->
          if q.q_parent <> b.b_id then
            err "quant %s: parent %d but listed in box %d" q.q_label q.q_parent
              b.b_id;
          (match Hashtbl.find_opt g.quants q.q_id with
          | Some q' when q' == q -> ()
          | _ -> err "quant %s: not indexed" q.q_label);
          if not (Hashtbl.mem g.boxes q.q_input) then
            err "quant %s: input box %d missing" q.q_label q.q_input)
        b.b_quants;
      (* kind-specific shape *)
      (match b.b_kind with
      | Base_table _ ->
        if b.b_quants <> [] then err "base table box %d has a body" b.b_id;
        if b.b_preds <> [] then err "base table box %d has predicates" b.b_id
      | Select | Ext_op _ -> ()
      | Group_by keys ->
        (match setformers b with
        | [ _ ] -> ()
        | l -> err "GROUP BY box %d has %d setformers (expected 1)" b.b_id (List.length l));
        List.iter (fun k -> check_expr ~ctx:"group key" ~allow_agg:false b k) keys
      | Set_op _ ->
        let n = List.length (setformers b) in
        if n <> 2 then err "set-op box %d has %d inputs (expected 2)" b.b_id n;
        (match setformers b with
        | [ a; c ] ->
          let aa = arity (box g a.q_input) and ca = arity (box g c.q_input) in
          if aa <> ca then
            err "set-op box %d: input arities %d vs %d" b.b_id aa ca
        | _ -> ())
      | Values_box rows ->
        List.iter
          (fun row ->
            if List.length row <> arity b then
              err "VALUES box %d: row arity %d vs head %d" b.b_id
                (List.length row) (arity b);
            List.iter (fun e -> check_expr ~ctx:"values" ~allow_agg:false b e) row)
          rows
      | Table_fn (_, args) ->
        List.iter (fun e -> check_expr ~ctx:"table-fn arg" ~allow_agg:false b e) args
      | Choose ->
        if List.length b.b_quants < 2 then
          err "CHOOSE box %d has fewer than 2 alternatives" b.b_id);
      (* head *)
      let allow_agg = match b.b_kind with Group_by _ -> true | _ -> false in
      List.iter
        (fun hc ->
          match hc.hc_expr, b.b_kind with
          | None, Base_table _ -> ()
          | None, Values_box _ | None, Table_fn _ | None, Set_op _ | None, Choose -> ()
          | None, (Select | Group_by _ | Ext_op _) ->
            err "box %d: head column %s lacks an expression" b.b_id hc.hc_name
          | Some e, _ -> check_expr ~ctx:(Fmt.str "head %s" hc.hc_name) ~allow_agg b e)
        b.b_head;
      (* predicates *)
      List.iter
        (fun p -> check_expr ~ctx:"pred" ~allow_agg:false b p.p_expr)
        b.b_preds;
      List.iter
        (fun (e, _) -> check_expr ~ctx:"order" ~allow_agg:false b e)
        b.b_order)
    boxes;
  List.rev !errs

let is_consistent g = check g = []

let assert_consistent g =
  match check g with
  | [] -> ()
  | errs -> error "inconsistent QGM: %s" (String.concat "; " errs)
