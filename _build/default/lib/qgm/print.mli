(** Textual and Graphviz rendering of QGM graphs (EXPLAIN QGM). *)

val pp_expr : Qgm.t -> Format.formatter -> Qgm.expr -> unit

val kind_name : Qgm.kind -> string

val pp_box : Qgm.t -> Format.formatter -> Qgm.box -> unit

(** All reachable boxes, top first. *)
val pp : Format.formatter -> Qgm.t -> unit

val to_string : Qgm.t -> string

(** Graphviz dot: boxes as record nodes, range edges dotted, stored
    tables dashed (the paper's Figure 2 conventions). *)
val to_dot : Qgm.t -> string
