(** The Query Graph Model (QGM), section 4 of the paper.

    A query is a graph of {e boxes} (operations on tables), each with a
    {e head} (the output table's columns) and a {e body}: {e quantifiers}
    (iterators ranging over input tables, drawn as vertices with dotted
    range edges) and {e predicates} (qualifier edges).

    Quantifier types:
    - [F]  — ForEach setformer: each element may contribute to the output;
    - [E]  — existential quantifier (subqueries via IN / EXISTS / ANY);
    - [A]  — universal quantifier (ALL, NOT IN);
    - [S]  — scalar-subquery quantifier (at most one row expected);
    - [Ext name] — extension iterator types.  The outer-join extension
      registers ["PF"] (Preserve-ForEach); DBC set-predicate functions
      (e.g. [MAJORITY]) appear as [Ext "majority"] quantifiers.

    E/A/S/Ext quantifiers are {e consumed} inside predicate expressions
    through the {!constructor:Quantified} node, so a subquery under a
    disjunction (the paper's OR-operator case, section 7) is directly
    representable while the common conjunct case stays easy for rewrite
    rules to match. *)

open Sb_storage

type quant_type =
  | F
  | E
  | A
  | S
  | SP of string  (** DBC set-predicate quantifier, e.g. MAJORITY *)
  | Ext of string  (** extension setformer types, e.g. PF *)

let quant_type_name = function
  | F -> "F"
  | E -> "E"
  | A -> "A"
  | S -> "S"
  | SP s -> "SP:" ^ s
  | Ext s -> s

type box_id = int
type quant_id = int

type expr =
  | Lit of Value.t
  | Col of quant_id * int  (** column [i] of the quantifier's input table *)
  | Host of string
  | Bin of Sb_hydrogen.Ast.binop * expr * expr
  | Un of Sb_hydrogen.Ast.unop * expr
  | Fun of string * expr list
  | Agg of string * bool * expr option
      (** aggregate over the group; legal only in GROUP BY box heads *)
  | Case of (expr * expr) list * expr option
  | Is_null of expr
  | Like of expr * string
  | Quantified of quant_id * expr
      (** truth of [expr] over the (E/A/Ext) quantifier's range *)

type kind =
  | Base_table of string  (** stored table; no body *)
  | Select  (** select / project / join *)
  | Group_by of expr list  (** grouping expressions *)
  | Set_op of Sb_hydrogen.Ast.set_op * bool  (** operator, ALL? *)
  | Values_box of expr list list
  | Table_fn of string * expr list  (** DBC table function + value args *)
  | Choose  (** rewrite-generated alternatives; quants are alternatives *)
  | Ext_op of string  (** extension table operation *)

type head_col = {
  hc_name : string;
  mutable hc_type : Datatype.t option;
  mutable hc_expr : expr option;  (** [None] only for base tables *)
}

type pred = {
  mutable p_expr : expr;
  mutable p_marks : string list;
      (** rule bookkeeping, e.g. "pushed" tags preventing re-derivation *)
}

let pred e = { p_expr = e; p_marks = [] }
let pred_marked (p : pred) mark = List.mem mark p.p_marks
let mark_pred (p : pred) mark =
  if not (List.mem mark p.p_marks) then p.p_marks <- mark :: p.p_marks

type quant = {
  q_id : quant_id;
  mutable q_type : quant_type;
  mutable q_input : box_id;
  mutable q_parent : box_id;
  q_label : string;  (** display label, e.g. "Q1" or the table alias *)
}

type box = {
  b_id : box_id;
  mutable b_kind : kind;
  mutable b_head : head_col list;
  mutable b_quants : quant list;
  mutable b_preds : pred list;
  mutable b_distinct : bool;  (** output duplicates eliminated *)
  mutable b_order : (expr * Sb_hydrogen.Ast.order_dir) list;
  mutable b_limit : int option;
  mutable b_label : string;
}

type t = {
  boxes : (box_id, box) Hashtbl.t;
  quants : (quant_id, quant) Hashtbl.t;
  mutable top : box_id;
  mutable next_box : int;
  mutable next_quant : int;
}

exception Qgm_error of string

let error fmt = Fmt.kstr (fun s -> raise (Qgm_error s)) fmt

let create () =
  {
    boxes = Hashtbl.create 16;
    quants = Hashtbl.create 16;
    top = -1;
    next_box = 1;
    next_quant = 1;
  }

let box g id =
  match Hashtbl.find_opt g.boxes id with
  | Some b -> b
  | None -> error "no box %d" id

let quant g id =
  match Hashtbl.find_opt g.quants id with
  | Some q -> q
  | None -> error "no quantifier %d" id

let top_box g = box g g.top

let new_box g ?(label = "") kind : box =
  let id = g.next_box in
  g.next_box <- id + 1;
  let b =
    {
      b_id = id;
      b_kind = kind;
      b_head = [];
      b_quants = [];
      b_preds = [];
      b_distinct = false;
      b_order = [];
      b_limit = None;
      b_label = (if label = "" then Fmt.str "B%d" id else label);
    }
  in
  Hashtbl.replace g.boxes id b;
  b

let new_quant g ?(label = "") ~parent ~input qtype : quant =
  let id = g.next_quant in
  g.next_quant <- id + 1;
  let q =
    {
      q_id = id;
      q_type = qtype;
      q_input = input;
      q_parent = parent;
      q_label = (if label = "" then Fmt.str "Q%d" id else label);
    }
  in
  Hashtbl.replace g.quants id q;
  let b = box g parent in
  b.b_quants <- b.b_quants @ [ q ];
  q

let remove_quant g (q : quant) =
  let b = box g q.q_parent in
  b.b_quants <- List.filter (fun x -> x.q_id <> q.q_id) b.b_quants;
  Hashtbl.remove g.quants q.q_id

let delete_box g id =
  (match Hashtbl.find_opt g.boxes id with
  | Some b -> List.iter (fun q -> Hashtbl.remove g.quants q.q_id) b.b_quants
  | None -> ());
  Hashtbl.remove g.boxes id

(* ------------------------------------------------------------------ *)
(* Expression utilities                                                *)
(* ------------------------------------------------------------------ *)

let rec fold_expr f acc e =
  let acc = f acc e in
  match e with
  | Lit _ | Col _ | Host _ -> acc
  | Bin (_, a, b) -> fold_expr f (fold_expr f acc a) b
  | Un (_, a) | Is_null a | Like (a, _) | Quantified (_, a) -> fold_expr f acc a
  | Fun (_, args) -> List.fold_left (fold_expr f) acc args
  | Agg (_, _, None) -> acc
  | Agg (_, _, Some a) -> fold_expr f acc a
  | Case (arms, els) ->
    let acc =
      List.fold_left (fun acc (c, v) -> fold_expr f (fold_expr f acc c) v) acc arms
    in
    (match els with None -> acc | Some e -> fold_expr f acc e)

(** Rewrites an expression bottom-up. *)
let rec map_expr f e =
  let e' =
    match e with
    | Lit _ | Col _ | Host _ -> e
    | Bin (op, a, b) -> Bin (op, map_expr f a, map_expr f b)
    | Un (op, a) -> Un (op, map_expr f a)
    | Fun (name, args) -> Fun (name, List.map (map_expr f) args)
    | Agg (name, d, arg) -> Agg (name, d, Option.map (map_expr f) arg)
    | Case (arms, els) ->
      Case
        ( List.map (fun (c, v) -> (map_expr f c, map_expr f v)) arms,
          Option.map (map_expr f) els )
    | Is_null a -> Is_null (map_expr f a)
    | Like (a, p) -> Like (map_expr f a, p)
    | Quantified (q, a) -> Quantified (q, map_expr f a)
  in
  f e'

(** Quantifier ids referenced by [e] (including inside [Quantified]). *)
let quant_refs e =
  fold_expr
    (fun acc e ->
      match e with
      | Col (q, _) -> q :: acc
      | Quantified (q, _) -> q :: acc
      | _ -> acc)
    [] e
  |> List.sort_uniq Int.compare

(** Column references [(quant, col)] in [e]. *)
let col_refs e =
  fold_expr
    (fun acc e -> match e with Col (q, i) -> (q, i) :: acc | _ -> acc)
    [] e
  |> List.sort_uniq compare

let contains_agg e =
  fold_expr (fun acc e -> acc || match e with Agg _ -> true | _ -> false) false e

let contains_quantified e =
  fold_expr
    (fun acc e -> acc || match e with Quantified _ -> true | _ -> false)
    false e

let contains_host e =
  fold_expr (fun acc e -> acc || match e with Host _ -> true | _ -> false) false e

(** Replaces every [Col (q, i)] with [subst q i] when it returns a
    replacement, recursively. *)
let subst_cols subst e =
  map_expr
    (fun e ->
      match e with
      | Col (q, i) -> ( match subst q i with Some e' -> e' | None -> e)
      | _ -> e)
    e

(** Structural equality on expressions. *)
let equal_expr (a : expr) (b : expr) = a = b

(* ------------------------------------------------------------------ *)
(* Graph navigation                                                    *)
(* ------------------------------------------------------------------ *)

(** All quantifiers (anywhere in the graph) ranging over box [id]. *)
let users_of_box g id =
  Hashtbl.fold
    (fun _ q acc -> if q.q_input = id then q :: acc else acc)
    g.quants []

(** Boxes reachable from the top box through range edges (cycles safe). *)
let reachable_boxes g : box list =
  let seen = Hashtbl.create 16 in
  let order = ref [] in
  let rec visit id =
    if not (Hashtbl.mem seen id) then begin
      Hashtbl.replace seen id ();
      let b = box g id in
      order := b :: !order;
      List.iter (fun q -> visit q.q_input) b.b_quants
    end
  in
  visit g.top;
  List.rev !order

(** Removes boxes not reachable from the top (rewrite rules leave
    garbage when they merge or bypass boxes). *)
let garbage_collect g =
  let live = Hashtbl.create 16 in
  List.iter (fun b -> Hashtbl.replace live b.b_id ()) (reachable_boxes g);
  let dead =
    Hashtbl.fold
      (fun id _ acc -> if Hashtbl.mem live id then acc else id :: acc)
      g.boxes []
  in
  List.iter (delete_box g) dead

(** Is box [id] part of a range-edge cycle (i.e. recursive)? *)
let is_recursive g id =
  let seen = Hashtbl.create 8 in
  let rec reaches from =
    if from = id then true
    else if Hashtbl.mem seen from then false
    else begin
      Hashtbl.replace seen from ();
      List.exists (fun q -> reaches q.q_input) (box g from).b_quants
    end
  in
  List.exists (fun q -> reaches q.q_input) (box g id).b_quants

(** Head arity of a box. *)
let arity b = List.length b.b_head

let head_col b i =
  try List.nth b.b_head i
  with _ -> error "box %d has no head column %d" b.b_id i

(** The output type of column [i] of the box a quantifier ranges over. *)
let col_type g (q : quant) i = (head_col (box g q.q_input) i).hc_type

(** Setformer quantifiers of a box (F plus extension setformer types). *)
let setformers b =
  List.filter
    (fun q -> match q.q_type with F | Ext _ -> true | E | A | S | SP _ -> false)
    b.b_quants

(** Subquery quantifiers (consumed inside predicates). *)
let subquery_quants b =
  List.filter
    (fun q ->
      match q.q_type with E | A | S | SP _ -> true | F | Ext _ -> false)
    b.b_quants

(** Predicates of [b] that mention quantifier [q]. *)
let preds_on b (q : quant) =
  List.filter (fun p -> List.mem q.q_id (quant_refs p.p_expr)) b.b_preds

(** Splits [e] into top-level conjuncts. *)
let rec conjuncts = function
  | Bin (Sb_hydrogen.Ast.And, a, b) -> conjuncts a @ conjuncts b
  | e -> [ e ]

let conjoin = function
  | [] -> Lit (Value.Bool true)
  | e :: rest -> List.fold_left (fun acc e -> Bin (Sb_hydrogen.Ast.And, acc, e)) e rest

(* ------------------------------------------------------------------ *)
(* Deep copy (used by CHOOSE alternatives and by tests)                *)
(* ------------------------------------------------------------------ *)

(** Copies the subgraph rooted at [root] into [g], returning the new
    root id.  Quantifier references in expressions are remapped.
    Correlated references to quantifiers outside the subgraph are kept
    as-is.  [share] lists box ids to share rather than copy (e.g. base
    tables). *)
let copy_subgraph g ?(share = fun (b : box) -> match b.b_kind with Base_table _ -> true | _ -> false) root =
  let box_map = Hashtbl.create 8 in
  let quant_map = Hashtbl.create 8 in
  let rec copy_box id =
    match Hashtbl.find_opt box_map id with
    | Some nid -> nid
    | None ->
      let b = box g id in
      if share b then begin
        Hashtbl.replace box_map id id;
        id
      end
      else begin
        let nb = new_box g ~label:b.b_label b.b_kind in
        Hashtbl.replace box_map id nb.b_id;
        nb.b_distinct <- b.b_distinct;
        nb.b_limit <- b.b_limit;
        (* copy quantifiers first so references can be remapped *)
        List.iter
          (fun q ->
            let input = copy_box q.q_input in
            let nq =
              new_quant g ~label:q.q_label ~parent:nb.b_id ~input q.q_type
            in
            Hashtbl.replace quant_map q.q_id nq.q_id)
          b.b_quants;
        let remap e =
          map_expr
            (fun e ->
              match e with
              | Col (q, i) ->
                (match Hashtbl.find_opt quant_map q with
                | Some nq -> Col (nq, i)
                | None -> e)
              | Quantified (q, inner) ->
                (match Hashtbl.find_opt quant_map q with
                | Some nq -> Quantified (nq, inner)
                | None -> e)
              | _ -> e)
            e
        in
        nb.b_head <-
          List.map
            (fun hc -> { hc with hc_expr = Option.map remap hc.hc_expr })
            b.b_head;
        nb.b_preds <- List.map (fun p -> { p with p_expr = remap p.p_expr }) b.b_preds;
        nb.b_order <- List.map (fun (e, d) -> (remap e, d)) b.b_order;
        nb.b_kind <-
          (match b.b_kind with
          | Group_by exprs -> Group_by (List.map remap exprs)
          | Values_box rows -> Values_box (List.map (List.map remap) rows)
          | Table_fn (name, args) -> Table_fn (name, List.map remap args)
          | k -> k);
        nb.b_id
      end
  in
  copy_box root
