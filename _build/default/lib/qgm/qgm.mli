(** The Query Graph Model (QGM), section 4 of the paper.

    A query is a graph of {e boxes} (operations on tables), each with a
    {e head} (the output table's columns) and a {e body}: {e quantifiers}
    (iterators ranging over input tables — the vertices with dotted
    range edges of Figure 2) and {e predicates} (qualifier edges).

    E/A/SP quantifiers are {e consumed} inside predicate expressions
    through the {!constructor:Quantified} node, so a subquery under a
    disjunction (the paper's OR-operator case) is directly representable
    while the common conjunct case stays easy for rewrite rules to
    match.  The graph is mutable: rewrite rules transform it in place,
    as in the paper. *)

open Sb_storage

(** Quantifier types: [F] ForEach setformers contribute rows to the
    output; [E]/[A] are existential/universal subquery quantifiers; [S]
    is a scalar subquery; [SP name] a DBC set-predicate function; and
    [Ext name] covers extension setformer types such as the outer-join
    extension's ["PF"] (Preserve-ForEach). *)
type quant_type =
  | F
  | E
  | A
  | S
  | SP of string  (** DBC set-predicate quantifier, e.g. MAJORITY *)
  | Ext of string  (** extension setformer types, e.g. PF *)

val quant_type_name : quant_type -> string

type box_id = int
type quant_id = int

type expr =
  | Lit of Value.t
  | Col of quant_id * int  (** column [i] of the quantifier's input table *)
  | Host of string
  | Bin of Sb_hydrogen.Ast.binop * expr * expr
  | Un of Sb_hydrogen.Ast.unop * expr
  | Fun of string * expr list
  | Agg of string * bool * expr option
      (** aggregate over the group; legal only in GROUP BY box heads *)
  | Case of (expr * expr) list * expr option
  | Is_null of expr
  | Like of expr * string
  | Quantified of quant_id * expr
      (** truth of [expr] over the (E/A/SP) quantifier's range *)

type kind =
  | Base_table of string  (** stored table; no body *)
  | Select  (** select / project / join *)
  | Group_by of expr list  (** grouping expressions *)
  | Set_op of Sb_hydrogen.Ast.set_op * bool  (** operator, ALL? *)
  | Values_box of expr list list
  | Table_fn of string * expr list  (** DBC table function + value args *)
  | Choose  (** rewrite-generated alternatives; quants are alternatives *)
  | Ext_op of string  (** extension table operation *)

type head_col = {
  hc_name : string;
  mutable hc_type : Datatype.t option;
  mutable hc_expr : expr option;  (** [None] only for body-less boxes *)
}

type pred = {
  mutable p_expr : expr;
  mutable p_marks : string list;
      (** rule bookkeeping, e.g. "pushed" tags preventing re-derivation *)
}

val pred : expr -> pred
val pred_marked : pred -> string -> bool
val mark_pred : pred -> string -> unit

type quant = {
  q_id : quant_id;
  mutable q_type : quant_type;
  mutable q_input : box_id;  (** the range edge's target *)
  mutable q_parent : box_id;
  q_label : string;
}

type box = {
  b_id : box_id;
  mutable b_kind : kind;
  mutable b_head : head_col list;
  mutable b_quants : quant list;
  mutable b_preds : pred list;
  mutable b_distinct : bool;  (** output duplicates eliminated *)
  mutable b_order : (expr * Sb_hydrogen.Ast.order_dir) list;
  mutable b_limit : int option;
  mutable b_label : string;
}

type t = {
  boxes : (box_id, box) Hashtbl.t;
  quants : (quant_id, quant) Hashtbl.t;
  mutable top : box_id;
  mutable next_box : int;
  mutable next_quant : int;
}

exception Qgm_error of string

val error : ('a, Format.formatter, unit, 'b) format4 -> 'a

val create : unit -> t

(** @raise Qgm_error on unknown ids. *)
val box : t -> box_id -> box

val quant : t -> quant_id -> quant
val top_box : t -> box

val new_box : t -> ?label:string -> kind -> box

(** Creates a quantifier and appends it to the parent's body. *)
val new_quant : t -> ?label:string -> parent:box_id -> input:box_id -> quant_type -> quant

val remove_quant : t -> quant -> unit
val delete_box : t -> box_id -> unit

(** {1 Expression utilities} *)

val fold_expr : ('a -> expr -> 'a) -> 'a -> expr -> 'a

(** Bottom-up rewriting. *)
val map_expr : (expr -> expr) -> expr -> expr

(** Quantifier ids referenced (including inside [Quantified]). *)
val quant_refs : expr -> quant_id list

(** Column references [(quant, col)]. *)
val col_refs : expr -> (quant_id * int) list

val contains_agg : expr -> bool
val contains_quantified : expr -> bool
val contains_host : expr -> bool

(** Replaces [Col (q, i)] nodes for which the substitution returns a
    replacement. *)
val subst_cols : (quant_id -> int -> expr option) -> expr -> expr

val equal_expr : expr -> expr -> bool

(** {1 Graph navigation} *)

(** All quantifiers (anywhere) ranging over the box. *)
val users_of_box : t -> box_id -> quant list

(** Boxes reachable from the top through range edges (cycle-safe),
    top first. *)
val reachable_boxes : t -> box list

(** Removes boxes unreachable from the top (rewrite-rule garbage). *)
val garbage_collect : t -> unit

(** Is the box part of a range-edge cycle (i.e. recursive)? *)
val is_recursive : t -> box_id -> bool

val arity : box -> int

(** @raise Qgm_error when out of range. *)
val head_col : box -> int -> head_col

(** Output type of column [i] of the box a quantifier ranges over. *)
val col_type : t -> quant -> int -> Datatype.t option

(** Setformer quantifiers ([F] and extension setformer types). *)
val setformers : box -> quant list

(** Subquery quantifiers ([E]/[A]/[S]/[SP]). *)
val subquery_quants : box -> quant list

val preds_on : box -> quant -> pred list

(** Top-level conjuncts of an expression. *)
val conjuncts : expr -> expr list

val conjoin : expr list -> expr

(** Copies the subgraph rooted at [root], remapping quantifier
    references; boxes for which [share] holds (default: base tables) are
    shared rather than copied.  Correlated references to quantifiers
    outside the subgraph are preserved.  Returns the copy's root id. *)
val copy_subgraph : t -> ?share:(box -> bool) -> box_id -> box_id
