lib/qgm/check.mli: Qgm
