lib/qgm/print.ml: Buffer Fmt Format List Option Qgm Sb_hydrogen Sb_storage String
