lib/qgm/print.mli: Format Qgm
