lib/qgm/qgm.ml: Datatype Fmt Hashtbl Int List Option Sb_hydrogen Sb_storage Value
