lib/qgm/check.ml: Fmt Hashtbl List Qgm String
