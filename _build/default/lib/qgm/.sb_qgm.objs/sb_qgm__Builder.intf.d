lib/qgm/builder.mli: Catalog Qgm Sb_hydrogen Sb_storage
