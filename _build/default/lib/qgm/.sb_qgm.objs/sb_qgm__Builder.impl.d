lib/qgm/builder.ml: Array Catalog Check Datatype Fmt Hashtbl Int List Option Printexc Qgm Sb_hydrogen Sb_storage Schema String Table_store Value
