lib/qgm/qgm.mli: Datatype Format Hashtbl Sb_hydrogen Sb_storage Value
