(** QGM consistency checking.

    The rule-system contract is that "every rule changes a consistent
    QGM representation into another consistent QGM representation"; the
    rewrite engine can verify this after each rule application, and the
    builder asserts it on every freshly built graph. *)

type violation = string

(** All consistency violations of the graph (empty = consistent):
    dangling quantifier/box references, out-of-range column indices,
    aggregates outside GROUP BY heads, [Quantified] over setformers,
    kind-specific shape violations (set-op arity, base tables with
    bodies, …). *)
val check : Qgm.t -> violation list

val is_consistent : Qgm.t -> bool

(** @raise Qgm.Qgm_error listing the violations. *)
val assert_consistent : Qgm.t -> unit
