(** Translation of Hydrogen ASTs into QGM, with name resolution and
    semantic analysis ("semantic analysis of the query is also done
    during parsing, so the QGM produced is guaranteed to be valid").

    Subqueries become quantifiers: IN/EXISTS/ANY produce existential [E]
    quantifiers, ALL and NOT IN produce universal [A] quantifiers, scalar
    subqueries produce [S] quantifiers, and DBC set-predicate functions
    produce [Ext name] quantifiers — all consumed in predicates through
    {!Qgm.constructor:Quantified} nodes.  Views and table expressions are
    resolved here; cyclic table-expression references (recursion) become
    cyclic range edges. *)

open Sb_storage
module Ast = Sb_hydrogen.Ast
module Functions = Sb_hydrogen.Functions
module Parser = Sb_hydrogen.Parser

exception Semantic_error of string

let error fmt = Fmt.kstr (fun s -> raise (Semantic_error s)) fmt

type config = {
  catalog : Catalog.t;
  functions : Functions.t;
  mutable enabled_ops : string list;
      (** extension table operations enabled by a DBC, e.g.
          ["left_outer_join"] *)
}

let make_config ~catalog ~functions = { catalog; functions; enabled_ops = [] }

let op_enabled cfg name = List.mem name cfg.enabled_ops

(* ------------------------------------------------------------------ *)
(* Scopes                                                              *)
(* ------------------------------------------------------------------ *)

(** One FROM-item visible to name resolution: an alias plus the mapping
    from column names to positions of the quantifier's input box. *)
type binding = {
  bind_alias : string;
  bind_quant : Qgm.quant;
  bind_cols : (string * int) list;
}

type scope = {
  sc_bindings : binding list;
  sc_extra : (string option * string -> Qgm.expr option) option;
      (** consulted first; used for GROUP BY output scopes *)
  sc_parent : scope option;
}

let empty_scope = { sc_bindings = []; sc_extra = None; sc_parent = None }

let norm = String.lowercase_ascii

let binding_lookup (b : binding) col =
  List.assoc_opt (norm col) b.bind_cols

(** Resolves [qual.col]; searches the scope chain outward (references to
    outer scopes are correlations). *)
let rec resolve_col scope (qual, col) : Qgm.expr =
  let try_extra =
    match scope.sc_extra with Some f -> f (qual, col) | None -> None
  in
  match try_extra with
  | Some e -> e
  | None ->
    let candidates =
      match qual with
      | Some q ->
        List.filter (fun b -> norm b.bind_alias = norm q) scope.sc_bindings
        |> List.filter_map (fun b ->
               Option.map (fun i -> (b, i)) (binding_lookup b col))
      | None ->
        List.filter_map
          (fun b -> Option.map (fun i -> (b, i)) (binding_lookup b col))
          scope.sc_bindings
    in
    (match candidates with
    | [ (b, i) ] -> Qgm.Col (b.bind_quant.Qgm.q_id, i)
    | [] ->
      (match scope.sc_parent with
      | Some parent -> resolve_col parent (qual, col)
      | None ->
        (match qual with
        | Some q -> error "unknown column %s.%s" q col
        | None -> error "unknown column %s" col))
    | _ :: _ :: _ ->
      error "ambiguous column %s%s" (match qual with Some q -> q ^ "." | None -> "") col)

(* ------------------------------------------------------------------ *)
(* Types of QGM expressions                                            *)
(* ------------------------------------------------------------------ *)

let rec type_of cfg (g : Qgm.t) (e : Qgm.expr) : Datatype.t option =
  match e with
  | Qgm.Lit v -> Value.type_of v
  | Qgm.Col (qid, i) ->
    let q = Qgm.quant g qid in
    Qgm.col_type g q i
  | Qgm.Host _ -> None
  | Qgm.Bin (op, a, b) -> (
    let ta = type_of cfg g a and tb = type_of cfg g b in
    match op with
    | Ast.Eq | Ast.Neq | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.And | Ast.Or ->
      Some Datatype.Bool
    | Ast.Concat -> Some Datatype.String
    | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod -> (
      match ta, tb with
      | Some Datatype.Int, Some Datatype.Int ->
        if op = Ast.Div then Some Datatype.Int else Some Datatype.Int
      | Some (Datatype.Int | Datatype.Float), Some (Datatype.Int | Datatype.Float)
        -> Some Datatype.Float
      | None, _ | _, None -> None
      | Some t, _ -> error "arithmetic over %s" (Datatype.to_string t)))
  | Qgm.Un (Ast.Neg, a) -> type_of cfg g a
  | Qgm.Un (Ast.Not, _) -> Some Datatype.Bool
  | Qgm.Fun (name, args) -> (
    match Functions.find_scalar cfg.functions name with
    | None -> error "unknown function %s" name
    | Some f -> (
      (match f.Functions.sf_arity with
      | Some n when n <> List.length args ->
        error "%s expects %d arguments, got %d" name n (List.length args)
      | _ -> ());
      match f.Functions.sf_type (List.map (type_of cfg g) args) with
      | Ok t -> t
      | Error msg -> error "%s: %s" name msg))
  | Qgm.Agg (name, _, arg) -> (
    match Functions.find_aggregate cfg.functions name with
    | None -> error "unknown aggregate %s" name
    | Some f -> (
      match f.Functions.af_type (Option.bind arg (type_of cfg g)) with
      | Ok t -> t
      | Error msg -> error "%s: %s" name msg))
  | Qgm.Case (arms, els) -> (
    List.iter
      (fun (c, _) ->
        match type_of cfg g c with
        | Some Datatype.Bool | None -> ()
        | Some t -> error "CASE condition of type %s" (Datatype.to_string t))
      arms;
    let arm_types =
      List.map (fun (_, v) -> type_of cfg g v) arms
      @ match els with Some e -> [ type_of cfg g e ] | None -> []
    in
    match List.find_opt Option.is_some arm_types with
    | Some t -> t
    | None -> None)
  | Qgm.Is_null _ -> Some Datatype.Bool
  | Qgm.Like _ -> Some Datatype.Bool
  | Qgm.Quantified _ -> Some Datatype.Bool

let check_boolean cfg g ctx e =
  match type_of cfg g e with
  | Some Datatype.Bool | None -> ()
  | Some t -> error "%s must be boolean, found %s" ctx (Datatype.to_string t)

(* ------------------------------------------------------------------ *)
(* Build context                                                       *)
(* ------------------------------------------------------------------ *)

type ctx = {
  cfg : config;
  g : Qgm.t;
  mutable base_boxes : (string * Qgm.box_id) list;  (* one box per table *)
  mutable table_exprs : (string * Qgm.box_id) list;  (* WITH bindings *)
  mutable view_stack : string list;  (* cycle detection for views *)
}

let base_table_box ctx name (tab : Table_store.t) : Qgm.box_id =
  match List.assoc_opt (norm name) ctx.base_boxes with
  | Some id -> id
  | None ->
    let b =
      Qgm.new_box ctx.g ~label:tab.Table_store.name
        (Qgm.Base_table tab.Table_store.name)
    in
    b.Qgm.b_head <-
      Array.to_list tab.Table_store.schema
      |> List.map (fun c ->
             {
               Qgm.hc_name = c.Schema.col_name;
               hc_type = Some c.Schema.col_type;
               hc_expr = None;
             });
    ctx.base_boxes <- (norm name, b.Qgm.b_id) :: ctx.base_boxes;
    b.Qgm.b_id

let head_binding alias (q : Qgm.quant) (head : Qgm.head_col list) : binding =
  {
    bind_alias = alias;
    bind_quant = q;
    bind_cols = List.mapi (fun i hc -> (norm hc.Qgm.hc_name, i)) head;
  }

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

(** Converts an AST expression into a QGM expression.
    [box] is where subquery quantifiers are attached; [scope] resolves
    column names; [pre] (if given) is consulted on every node first —
    the GROUP BY output scope uses it to capture grouping expressions
    and aggregates. *)
let rec convert_expr ctx ~(box : Qgm.box) ~scope ?pre (e : Ast.expr) : Qgm.expr =
  let recur = convert_expr ctx ~box ~scope ?pre in
  match Option.bind pre (fun f -> f e) with
  | Some q -> q
  | None -> (
    match e with
    | Ast.Lit v -> Qgm.Lit v
    | Ast.Col (qual, col) -> resolve_col scope (qual, col)
    | Ast.Host v -> Qgm.Host v
    | Ast.Bin (op, a, b) -> Qgm.Bin (op, recur a, recur b)
    | Ast.Un (Ast.Not, inner) -> convert_negated ctx ~box ~scope ?pre inner
    | Ast.Un (op, a) -> Qgm.Un (op, recur a)
    | Ast.Func (name, args) ->
      (* the parser cannot know which names are aggregates *)
      if Functions.is_aggregate ctx.cfg.functions name then begin
        match args with
        | [ a ] -> recur (Ast.Agg (name, false, Some a))
        | _ -> error "aggregate %s takes one argument" name
      end
      else begin
        if Functions.find_scalar ctx.cfg.functions name = None then
          error "unknown function %s" name;
        Qgm.Fun (name, List.map recur args)
      end
    | Ast.Agg (name, distinct, arg) ->
      if Functions.find_aggregate ctx.cfg.functions name = None then
        error "unknown aggregate %s" name;
      (* reaching here outside a GROUP BY output scope is an error the
         caller detects via Qgm.contains_agg / Check *)
      Qgm.Agg (name, distinct, Option.map recur arg)
    | Ast.Case (arms, els) ->
      Qgm.Case
        ( List.map (fun (c, v) -> (recur c, recur v)) arms,
          Option.map recur els )
    | Ast.Is_null a -> Qgm.Is_null (recur a)
    | Ast.In_list (a, items) ->
      (* x IN (v1 .. vn)  ≡  x = v1 OR ... *)
      let x = recur a in
      let eqs = List.map (fun item -> Qgm.Bin (Ast.Eq, x, recur item)) items in
      (match eqs with
      | [] -> Qgm.Lit (Value.Bool false)
      | e :: rest -> List.fold_left (fun acc e -> Qgm.Bin (Ast.Or, acc, e)) e rest)
    | Ast.In_query (a, q) ->
      let x = recur a in
      let qu = subquery_quant ctx ~box ~scope Qgm.E q in
      Qgm.Quantified (qu.Qgm.q_id, Qgm.Bin (Ast.Eq, x, Qgm.Col (qu.Qgm.q_id, 0)))
    | Ast.Exists q ->
      let qu = subquery_quant ctx ~box ~scope Qgm.E q in
      Qgm.Quantified (qu.Qgm.q_id, Qgm.Lit (Value.Bool true))
    | Ast.Quant_cmp (a, op, kind, q) ->
      let x = recur a in
      let qtype =
        match kind with
        | Ast.Q_all -> Qgm.A
        | Ast.Q_any -> Qgm.E
        | Ast.Q_named name ->
          if Functions.find_set_predicate ctx.cfg.functions name = None then
            error "unknown set predicate %s" name;
          Qgm.SP (norm name)
      in
      let qu = subquery_quant ctx ~box ~scope qtype q in
      Qgm.Quantified (qu.Qgm.q_id, Qgm.Bin (op, x, Qgm.Col (qu.Qgm.q_id, 0)))
    | Ast.Scalar_query q ->
      let qu = subquery_quant ctx ~box ~scope Qgm.S q in
      Qgm.Col (qu.Qgm.q_id, 0)
    | Ast.Between (a, lo, hi) ->
      let x = recur a in
      Qgm.Bin (Ast.And, Qgm.Bin (Ast.Ge, x, recur lo), Qgm.Bin (Ast.Le, x, recur hi))
    | Ast.Like (a, pat) -> Qgm.Like (recur a, pat))

(** NOT pushed over subquery constructs so that anti-joins become
    universal quantifiers: NOT IN / NOT (op ANY) give [A] quantifiers,
    NOT EXISTS gives an [A] quantifier with predicate FALSE, and
    NOT (op ALL) gives an [E] quantifier with the negated comparison. *)
and convert_negated ctx ~box ~scope ?pre (e : Ast.expr) : Qgm.expr =
  let recur = convert_expr ctx ~box ~scope ?pre in
  match e with
  | Ast.In_query (a, q) ->
    let x = recur a in
    let qu = subquery_quant ctx ~box ~scope Qgm.A q in
    Qgm.Quantified
      ( qu.Qgm.q_id,
        Qgm.Un (Ast.Not, Qgm.Bin (Ast.Eq, x, Qgm.Col (qu.Qgm.q_id, 0))) )
  | Ast.Exists q ->
    let qu = subquery_quant ctx ~box ~scope Qgm.A q in
    Qgm.Quantified (qu.Qgm.q_id, Qgm.Lit (Value.Bool false))
  | Ast.Quant_cmp (a, op, Ast.Q_all, q) ->
    let x = recur a in
    let qu = subquery_quant ctx ~box ~scope Qgm.E q in
    Qgm.Quantified
      ( qu.Qgm.q_id,
        Qgm.Un (Ast.Not, Qgm.Bin (op, x, Qgm.Col (qu.Qgm.q_id, 0))) )
  | Ast.Quant_cmp (a, op, Ast.Q_any, q) ->
    let x = recur a in
    let qu = subquery_quant ctx ~box ~scope Qgm.A q in
    Qgm.Quantified
      ( qu.Qgm.q_id,
        Qgm.Un (Ast.Not, Qgm.Bin (op, x, Qgm.Col (qu.Qgm.q_id, 0))) )
  | Ast.Un (Ast.Not, inner) -> recur inner
  | e -> Qgm.Un (Ast.Not, recur e)

(** Builds the subquery's box and attaches a quantifier of [qtype] to
    [box].  The enclosing [scope] becomes the parent scope, so inner
    references to outer quantifiers (correlation) resolve naturally. *)
and subquery_quant ctx ~box ~scope qtype (q : Ast.query) : Qgm.quant =
  let sub = build_query ctx ~scope:(Some scope) q in
  Qgm.new_quant ctx.g ~parent:box.Qgm.b_id ~input:sub qtype

(* ------------------------------------------------------------------ *)
(* FROM items                                                          *)
(* ------------------------------------------------------------------ *)

(** Adds quantifiers for [item] to [box]; returns bindings and appends
    join predicates (from explicit JOIN ... ON) to [box]. *)
and build_from ctx ~(box : Qgm.box) ~scope (item : Ast.from_item) : binding list =
  match item with
  | Ast.From_table (name, alias) ->
    let alias = Option.value ~default:name alias in
    (* resolution order: table expressions, then views, then tables *)
    (match List.assoc_opt (norm name) ctx.table_exprs with
    | Some box_id ->
      let input = Qgm.box ctx.g box_id in
      let q = Qgm.new_quant ctx.g ~label:alias ~parent:box.Qgm.b_id ~input:box_id Qgm.F in
      [ head_binding alias q input.Qgm.b_head ]
    | None -> (
      match Catalog.find_view ctx.cfg.catalog name with
      | Some view -> build_view ctx ~box ~alias view
      | None -> (
        match Catalog.find_table ctx.cfg.catalog name with
        | Some tab ->
          let id = base_table_box ctx name tab in
          let q = Qgm.new_quant ctx.g ~label:alias ~parent:box.Qgm.b_id ~input:id Qgm.F in
          [ head_binding alias q (Qgm.box ctx.g id).Qgm.b_head ]
        | None -> error "unknown table or view %s" name)))
  | Ast.From_query (q, alias, cols) ->
    let sub = build_query ctx ~scope:(Some scope) q in
    let sub_box = Qgm.box ctx.g sub in
    (match cols with
    | Some names ->
      if List.length names <> Qgm.arity sub_box then
        error "derived table %s: %d column names for %d columns" alias
          (List.length names) (Qgm.arity sub_box);
      sub_box.Qgm.b_head <-
        List.map2
          (fun hc name -> { hc with Qgm.hc_name = name })
          sub_box.Qgm.b_head names
    | None -> ());
    let q = Qgm.new_quant ctx.g ~label:alias ~parent:box.Qgm.b_id ~input:sub Qgm.F in
    [ head_binding alias q sub_box.Qgm.b_head ]
  | Ast.From_func (name, args, alias) ->
    build_table_fn ctx ~box ~scope name args alias
  | Ast.From_join (l, Ast.Inner, r, on) ->
    let bl = build_from ctx ~box ~scope l in
    let br = build_from ctx ~box ~scope r in
    let bindings = bl @ br in
    let jscope = { sc_bindings = bindings; sc_extra = None; sc_parent = Some scope } in
    let cond = convert_expr ctx ~box ~scope:jscope on in
    check_boolean ctx.cfg ctx.g "ON condition" cond;
    box.Qgm.b_preds <-
      box.Qgm.b_preds
      @ List.map (fun e -> Qgm.pred e) (Qgm.conjuncts cond);
    bindings
  | Ast.From_join (l, Ast.Left_outer, r, on) ->
    build_outer_join ctx ~box ~scope l r on
  | Ast.From_join (l, Ast.Right_outer, r, on) ->
    build_outer_join ctx ~box ~scope r l on
  | Ast.From_join (_, Ast.Full_outer, _, _) ->
    error "FULL OUTER JOIN is not supported"

(** Left outer join: available once a DBC has enabled the
    ["left_outer_join"] operation (section 4's running example).  A
    dedicated SELECT box is built whose preserved side ranges through a
    [PF] (Preserve-ForEach) setformer; the base system's rewrite rules
    are conservative about [PF], and the extension registers its own. *)
and build_outer_join ctx ~box ~scope outer inner on : binding list =
  if not (op_enabled ctx.cfg "left_outer_join") then
    error
      "LEFT OUTER JOIN requires the outer-join extension (register it via \
       Extension.enable_outer_join)";
  let oj = Qgm.new_box ctx.g ~label:"OJ" Qgm.Select in
  let bl = build_from ctx ~box:oj ~scope outer in
  (* the preserved side's setformers become PF *)
  let preserved =
    List.concat_map
      (fun b ->
        List.filter (fun q -> q.Qgm.q_id = b.bind_quant.Qgm.q_id) oj.Qgm.b_quants)
      bl
  in
  List.iter
    (fun q -> if q.Qgm.q_type = Qgm.F then q.Qgm.q_type <- Qgm.Ext "PF")
    preserved;
  let br = build_from ctx ~box:oj ~scope inner in
  let bindings = bl @ br in
  let jscope = { sc_bindings = bindings; sc_extra = None; sc_parent = Some scope } in
  let cond = convert_expr ctx ~box:oj ~scope:jscope on in
  check_boolean ctx.cfg ctx.g "ON condition" cond;
  oj.Qgm.b_preds <-
    List.map (fun e -> Qgm.pred e) (Qgm.conjuncts cond);
  (* head: every column of every side, in binding order *)
  let head, rebound =
    let cols = ref [] and rebound = ref [] in
    List.iter
      (fun b ->
        let start = List.length !cols in
        let input = Qgm.box ctx.g b.bind_quant.Qgm.q_input in
        List.iteri
          (fun i hc ->
            cols :=
              !cols
              @ [
                  {
                    Qgm.hc_name = Fmt.str "%s_%s" b.bind_alias hc.Qgm.hc_name;
                    hc_type = hc.Qgm.hc_type;
                    hc_expr = Some (Qgm.Col (b.bind_quant.Qgm.q_id, i));
                  };
                ])
          input.Qgm.b_head;
        rebound :=
          !rebound
          @ [
              (b.bind_alias, start,
               List.map (fun hc -> hc.Qgm.hc_name) input.Qgm.b_head);
            ])
      bindings;
    (!cols, !rebound)
  in
  oj.Qgm.b_head <- head;
  (* the parent box ranges over the OJ box with one F quantifier; each
     original alias resolves into slices of that quantifier *)
  let q =
    Qgm.new_quant ctx.g ~label:"OJq" ~parent:box.Qgm.b_id ~input:oj.Qgm.b_id Qgm.F
  in
  List.map
    (fun (alias, start, names) ->
      {
        bind_alias = alias;
        bind_quant = q;
        bind_cols = List.mapi (fun i n -> (norm n, start + i)) names;
      })
    rebound

and build_view ctx ~box ~alias (view : Catalog.view_def) : binding list =
  if List.mem (norm view.Catalog.view_name) ctx.view_stack then
    error "cyclic view reference through %s" view.Catalog.view_name;
  ctx.view_stack <- norm view.Catalog.view_name :: ctx.view_stack;
  let wq =
    try Parser.query_text view.Catalog.view_text
    with e ->
      error "view %s: cannot parse stored definition (%s)" view.Catalog.view_name
        (Printexc.to_string e)
  in
  let sub = build_with_query ctx ~scope:None wq in
  ctx.view_stack <- List.tl ctx.view_stack;
  let sub_box = Qgm.box ctx.g sub in
  (match view.Catalog.view_columns with
  | Some names ->
    if List.length names <> Qgm.arity sub_box then
      error "view %s: %d column names for %d columns" view.Catalog.view_name
        (List.length names) (Qgm.arity sub_box);
    sub_box.Qgm.b_head <-
      List.map2 (fun hc name -> { hc with Qgm.hc_name = name }) sub_box.Qgm.b_head
        names
  | None -> ());
  sub_box.Qgm.b_label <- view.Catalog.view_name;
  let q = Qgm.new_quant ctx.g ~label:alias ~parent:box.Qgm.b_id ~input:sub Qgm.F in
  [ head_binding alias q sub_box.Qgm.b_head ]

and build_table_fn ctx ~box ~scope name args alias : binding list =
  let tf =
    match Functions.find_table_fn ctx.cfg.functions name with
    | Some tf -> tf
    | None -> error "unknown table function %s" name
  in
  let alias = Option.value ~default:name alias in
  let fn_box = Qgm.new_box ctx.g ~label:alias (Qgm.Table_fn (name, [])) in
  let table_args = ref [] and value_args = ref [] in
  List.iter
    (fun arg ->
      match arg with
      | Ast.Targ_table item ->
        let bs = build_from ctx ~box:fn_box ~scope item in
        List.iter
          (fun b ->
            table_args := !table_args @ [ Qgm.box ctx.g b.bind_quant.Qgm.q_input ])
          bs
      | Ast.Targ_expr e ->
        let qe = convert_expr ctx ~box:fn_box ~scope e in
        if Qgm.col_refs qe <> [] then
          error "table function %s: value arguments cannot reference columns" name;
        value_args := !value_args @ [ qe ])
    args;
  fn_box.Qgm.b_kind <- Qgm.Table_fn (name, !value_args);
  let arg_schemas =
    List.map
      (fun (b : Qgm.box) ->
        Array.of_list
          (List.map
             (fun hc ->
               Schema.column hc.Qgm.hc_name
                 (Option.value ~default:Datatype.String hc.Qgm.hc_type))
             b.Qgm.b_head))
      !table_args
  in
  let out_schema =
    match
      tf.Functions.tf_type ~arg_tables:arg_schemas
        ~arg_values:(List.map (fun e -> type_of ctx.cfg ctx.g e) !value_args)
    with
    | Ok s -> s
    | Error msg -> error "table function %s: %s" name msg
  in
  fn_box.Qgm.b_head <-
    Array.to_list out_schema
    |> List.map (fun c ->
           {
             Qgm.hc_name = c.Schema.col_name;
             hc_type = Some c.Schema.col_type;
             hc_expr = None;
           });
  let q = Qgm.new_quant ctx.g ~label:alias ~parent:box.Qgm.b_id ~input:fn_box.Qgm.b_id Qgm.F in
  [ head_binding alias q fn_box.Qgm.b_head ]

(* ------------------------------------------------------------------ *)
(* Queries                                                             *)
(* ------------------------------------------------------------------ *)

(** Builds [q]; returns the id of its result box. *)
and build_query ctx ~scope (q : Ast.query) : Qgm.box_id =
  let parent_scope = scope in
  match q with
  | Ast.Select sel -> build_select ctx ~scope:parent_scope sel
  | Ast.Set_op (op, all, l, r) ->
    let lb = build_query ctx ~scope l in
    let rb = build_query ctx ~scope r in
    let lbox = Qgm.box ctx.g lb and rbox = Qgm.box ctx.g rb in
    if Qgm.arity lbox <> Qgm.arity rbox then
      error "set operation arity mismatch: %d vs %d" (Qgm.arity lbox)
        (Qgm.arity rbox);
    let b = Qgm.new_box ctx.g (Qgm.Set_op (op, all)) in
    ignore (Qgm.new_quant ctx.g ~parent:b.Qgm.b_id ~input:lb Qgm.F);
    ignore (Qgm.new_quant ctx.g ~parent:b.Qgm.b_id ~input:rb Qgm.F);
    b.Qgm.b_head <-
      List.map2
        (fun l r ->
          {
            Qgm.hc_name = l.Qgm.hc_name;
            hc_type = (if l.Qgm.hc_type = None then r.Qgm.hc_type else l.Qgm.hc_type);
            hc_expr = None;
          })
        lbox.Qgm.b_head rbox.Qgm.b_head;
    b.Qgm.b_distinct <- not all;
    b.Qgm.b_id
  | Ast.Values rows ->
    if rows = [] then error "VALUES requires at least one row";
    let b = Qgm.new_box ctx.g (Qgm.Values_box []) in
    let scope0 =
      match parent_scope with Some s -> s | None -> empty_scope
    in
    let arity = List.length (List.hd rows) in
    let qrows =
      List.map
        (fun row ->
          if List.length row <> arity then error "VALUES rows of unequal arity";
          List.map (fun e -> convert_expr ctx ~box:b ~scope:scope0 e) row)
        rows
    in
    b.Qgm.b_kind <- Qgm.Values_box qrows;
    b.Qgm.b_head <-
      List.mapi
        (fun i _ ->
          let ty =
            (* first non-null type in the column *)
            List.fold_left
              (fun acc row ->
                if acc <> None then acc
                else type_of ctx.cfg ctx.g (List.nth row i))
              None qrows
          in
          { Qgm.hc_name = Fmt.str "c%d" (i + 1); hc_type = ty; hc_expr = None })
        (List.hd rows);
    b.Qgm.b_id

and build_select ctx ~scope (sel : Ast.select) : Qgm.box_id =
  let sb = Qgm.new_box ctx.g Qgm.Select in
  (* FROM items are visible left to right, so a derived table or table
     function may be correlated with earlier siblings ("table
     expressions ... may be correlated with other parts of the query",
     section 2); the optimizer plans such references as lateral
     nested-loop applies *)
  let bindings =
    List.fold_left
      (fun acc item ->
        let visible =
          { sc_bindings = acc; sc_extra = None; sc_parent = scope }
        in
        acc @ build_from ctx ~box:sb ~scope:visible item)
      [] sel.Ast.sel_from
  in
  (* duplicate aliases are an error *)
  let () =
    let seen = Hashtbl.create 8 in
    List.iter
      (fun b ->
        let k = norm b.bind_alias in
        if Hashtbl.mem seen k then error "duplicate table alias %s" b.bind_alias;
        Hashtbl.replace seen k ())
      bindings
  in
  let sc = { sc_bindings = bindings; sc_extra = None; sc_parent = scope } in
  (match sel.Ast.sel_where with
  | Some w ->
    let e = convert_expr ctx ~box:sb ~scope:sc w in
    check_boolean ctx.cfg ctx.g "WHERE" e;
    sb.Qgm.b_preds <-
      sb.Qgm.b_preds @ List.map (fun e -> Qgm.pred e) (Qgm.conjuncts e)
  | None -> ());
  (* does the query aggregate? *)
  let rec ast_has_agg (e : Ast.expr) =
    match e with
    | Ast.Agg _ -> true
    | Ast.Func (f, args) ->
      Functions.is_aggregate ctx.cfg.functions f
      || List.exists ast_has_agg args
    | Ast.Bin (_, a, b) -> ast_has_agg a || ast_has_agg b
    | Ast.Un (_, a) | Ast.Is_null a | Ast.Like (a, _) -> ast_has_agg a
    | Ast.Case (arms, els) ->
      List.exists (fun (c, v) -> ast_has_agg c || ast_has_agg v) arms
      || (match els with Some e -> ast_has_agg e | None -> false)
    | Ast.Between (a, lo, hi) -> ast_has_agg a || ast_has_agg lo || ast_has_agg hi
    | Ast.In_list (a, items) -> ast_has_agg a || List.exists ast_has_agg items
    | Ast.Lit _ | Ast.Col _ | Ast.Host _ | Ast.In_query _ | Ast.Exists _
    | Ast.Quant_cmp _ | Ast.Scalar_query _ ->
      false
  in
  let items_have_agg =
    List.exists
      (function Ast.Item (e, _) -> ast_has_agg e | Ast.Star | Ast.Qualified_star _ -> false)
      sel.Ast.sel_items
    || (match sel.Ast.sel_having with Some h -> ast_has_agg h | None -> false)
  in
  let grouped = sel.Ast.sel_group <> [] || items_have_agg in
  if not grouped then begin
    (* plain select/project/join *)
    if sel.Ast.sel_having <> None then error "HAVING requires GROUP BY";
    let head = build_items ctx ~box:sb ~scope:sc bindings sel.Ast.sel_items in
    sb.Qgm.b_head <- head;
    sb.Qgm.b_distinct <- sel.Ast.sel_distinct;
    sb.Qgm.b_order <-
      List.map
        (fun (e, d) -> (convert_order ctx ~box:sb ~scope:sc head e, d))
        sel.Ast.sel_order;
    sb.Qgm.b_limit <- sel.Ast.sel_limit;
    sb.Qgm.b_id
  end
  else build_grouped ctx ~scope ~sb ~sc sel

(** Converts select items into head columns. *)
and build_items ctx ~box ~scope ?pre bindings (items : Ast.sel_item list) :
    Qgm.head_col list =
  let expand_binding (b : binding) =
    List.map
      (fun (name, i) ->
        let e = Qgm.Col (b.bind_quant.Qgm.q_id, i) in
        {
          Qgm.hc_name = name;
          hc_type = type_of ctx.cfg ctx.g e;
          hc_expr = Some e;
        })
      (List.sort (fun (_, i) (_, j) -> Int.compare i j) b.bind_cols)
  in
  List.concat_map
    (fun item ->
      match item with
      | Ast.Star ->
        if bindings = [] then error "SELECT * with no FROM clause";
        List.concat_map expand_binding bindings
      | Ast.Qualified_star t -> (
        match
          List.find_opt (fun b -> norm b.bind_alias = norm t) bindings
        with
        | Some b -> expand_binding b
        | None -> error "unknown table alias %s.*" t)
      | Ast.Item (e, alias) ->
        let qe = convert_expr ctx ~box ~scope ?pre e in
        let name =
          match alias with
          | Some a -> a
          | None -> (
            match e with
            | Ast.Col (_, c) -> c
            | Ast.Agg (f, _, _) -> f
            | Ast.Func (f, _) -> f
            | _ -> Fmt.str "c%d" (List.length items))
        in
        [ { Qgm.hc_name = name; hc_type = type_of ctx.cfg ctx.g qe; hc_expr = Some qe } ])
    items

(** ORDER BY keys: positional integers refer to select items, aliases
    refer to select items, otherwise normal resolution. *)
and convert_order ctx ~box ~scope ?pre (head : Qgm.head_col list) (e : Ast.expr) :
    Qgm.expr =
  match e with
  | Ast.Lit (Value.Int n) ->
    if n < 1 || n > List.length head then
      error "ORDER BY position %d out of range" n;
    (match (List.nth head (n - 1)).Qgm.hc_expr with
    | Some e -> e
    | None -> error "ORDER BY position %d unavailable" n)
  | Ast.Col (None, name)
    when List.exists (fun hc -> norm hc.Qgm.hc_name = norm name) head -> (
    match
      (List.find (fun hc -> norm hc.Qgm.hc_name = norm name) head).Qgm.hc_expr
    with
    | Some e -> e
    | None -> error "cannot ORDER BY column %s" name)
  | e -> convert_expr ctx ~box ~scope ?pre e

(** Grouped select: a lower SELECT box computes grouping keys and
    aggregate arguments, a GROUP BY box forms groups and applies
    aggregates, and an upper SELECT box computes the final items and
    applies HAVING. *)
and build_grouped ctx ~scope ~sb ~sc (sel : Ast.select) : Qgm.box_id =
  (* grouping expressions, converted in the lower scope *)
  let gexprs =
    List.map (fun e -> (e, convert_expr ctx ~box:sb ~scope:sc e)) sel.Ast.sel_group
  in
  List.iter
    (fun (_, qe) ->
      if Qgm.contains_quantified qe then
        error "subqueries in GROUP BY expressions are not supported")
    gexprs;
  (* lower head starts with the group keys *)
  sb.Qgm.b_head <-
    List.mapi
      (fun i (_, qe) ->
        {
          Qgm.hc_name = Fmt.str "g%d" (i + 1);
          hc_type = type_of ctx.cfg ctx.g qe;
          hc_expr = Some qe;
        })
      gexprs;
  let gb = Qgm.new_box ctx.g ~label:"GB" (Qgm.Group_by []) in
  let gq = Qgm.new_quant ctx.g ~label:"Qg" ~parent:gb.Qgm.b_id ~input:sb.Qgm.b_id Qgm.F in
  let k = List.length gexprs in
  gb.Qgm.b_kind <-
    Qgm.Group_by (List.init k (fun i -> Qgm.Col (gq.Qgm.q_id, i)));
  (* GROUP BY head: group keys pass through; aggregates are appended on
     demand as the upper box's expressions are converted *)
  gb.Qgm.b_head <-
    List.mapi
      (fun i (_, _) ->
        let src = List.nth sb.Qgm.b_head i in
        {
          Qgm.hc_name = src.Qgm.hc_name;
          hc_type = src.Qgm.hc_type;
          hc_expr = Some (Qgm.Col (gq.Qgm.q_id, i));
        })
      gexprs;
  let tb = Qgm.new_box ctx.g ~label:"HAV" Qgm.Select in
  let tq = Qgm.new_quant ctx.g ~label:"Qt" ~parent:tb.Qgm.b_id ~input:gb.Qgm.b_id Qgm.F in
  (* appends an aggregate over the lower box to both heads, returning
     the upper-box column that carries it *)
  let add_aggregate name distinct (arg : Ast.expr option) : Qgm.expr =
    let qarg = Option.map (convert_expr ctx ~box:sb ~scope:sc) arg in
    (* column of the lower box carrying the argument *)
    let arg_col =
      Option.map
        (fun qe ->
          let existing =
            List.mapi (fun i hc -> (i, hc)) sb.Qgm.b_head
            |> List.find_opt (fun (_, hc) -> hc.Qgm.hc_expr = Some qe)
          in
          match existing with
          | Some (i, _) -> i
          | None ->
            sb.Qgm.b_head <-
              sb.Qgm.b_head
              @ [
                  {
                    Qgm.hc_name = Fmt.str "a%d" (List.length sb.Qgm.b_head);
                    hc_type = type_of ctx.cfg ctx.g qe;
                    hc_expr = Some qe;
                  };
                ];
            List.length sb.Qgm.b_head - 1)
        qarg
    in
    let agg =
      Qgm.Agg (name, distinct, Option.map (fun i -> Qgm.Col (gq.Qgm.q_id, i)) arg_col)
    in
    (* reuse an existing identical aggregate column *)
    let existing =
      List.mapi (fun i hc -> (i, hc)) gb.Qgm.b_head
      |> List.find_opt (fun (_, hc) -> hc.Qgm.hc_expr = Some agg)
    in
    let idx =
      match existing with
      | Some (i, _) -> i
      | None ->
        gb.Qgm.b_head <-
          gb.Qgm.b_head
          @ [
              {
                Qgm.hc_name = Fmt.str "agg%d" (List.length gb.Qgm.b_head);
                hc_type = type_of ctx.cfg ctx.g agg;
                hc_expr = Some agg;
              };
            ];
        List.length gb.Qgm.b_head - 1
    in
    Qgm.Col (tq.Qgm.q_id, idx)
  in
  (* upper-scope conversion hook: grouping expressions and aggregates
     short-circuit to upper-box columns *)
  let pre (e : Ast.expr) : Qgm.expr option =
    let matches_group =
      List.mapi (fun i (ast, _) -> (i, ast)) gexprs
      |> List.find_opt (fun (_, ast) -> ast = e)
    in
    match matches_group with
    | Some (i, _) -> Some (Qgm.Col (tq.Qgm.q_id, i))
    | None -> (
      match e with
      | Ast.Agg (name, distinct, arg) ->
        if Functions.find_aggregate ctx.cfg.functions name = None then
          error "unknown aggregate %s" name;
        Some (add_aggregate name distinct arg)
      | Ast.Func (name, [ arg ]) when Functions.is_aggregate ctx.cfg.functions name
        ->
        Some (add_aggregate name false (Some arg))
      | _ -> None)
  in
  (* upper scope: group keys by name; unresolved names fall to the outer
     scope (correlation), not to the lower box *)
  let group_col_names =
    List.concat
      (List.mapi
         (fun i (ast, _) ->
           match ast with
           | Ast.Col (qual, name) ->
             [ ((qual, norm name), i); ((None, norm name), i) ]
           | _ -> [])
         gexprs)
  in
  let upper_scope =
    {
      sc_bindings = [];
      sc_extra =
        Some
          (fun (qual, name) ->
            let find key = List.assoc_opt key group_col_names in
            match find (qual, norm name) with
            | Some i -> Some (Qgm.Col (tq.Qgm.q_id, i))
            | None -> (
              match find (None, norm name) with
              | Some i -> Some (Qgm.Col (tq.Qgm.q_id, i))
              | None ->
                (* a qualified name whose qualifier is a lower binding
                   but is not grouped: give a precise error *)
                (match qual with
                | Some q
                  when List.exists
                         (fun b -> norm b.bind_alias = norm q)
                         sc.sc_bindings ->
                  error "column %s.%s must appear in GROUP BY" q name
                | None
                  when List.exists
                         (fun b -> binding_lookup b name <> None)
                         sc.sc_bindings ->
                  error "column %s must appear in GROUP BY" name
                | _ -> None)));
      sc_parent = scope;
    }
  in
  let head = build_items ctx ~box:tb ~scope:upper_scope ~pre [] sel.Ast.sel_items in
  (* SELECT * is meaningless under GROUP BY *)
  List.iter
    (function
      | Ast.Star | Ast.Qualified_star _ ->
        error "SELECT * cannot be used with GROUP BY or aggregates"
      | Ast.Item _ -> ())
    sel.Ast.sel_items;
  tb.Qgm.b_head <- head;
  (match sel.Ast.sel_having with
  | Some h ->
    let e = convert_expr ctx ~box:tb ~scope:upper_scope ~pre h in
    check_boolean ctx.cfg ctx.g "HAVING" e;
    tb.Qgm.b_preds <- List.map (fun e -> Qgm.pred e) (Qgm.conjuncts e)
  | None -> ());
  tb.Qgm.b_distinct <- sel.Ast.sel_distinct;
  tb.Qgm.b_order <-
    List.map
      (fun (e, d) ->
        (convert_order ctx ~box:tb ~scope:upper_scope ~pre head e, d))
      sel.Ast.sel_order;
  tb.Qgm.b_limit <- sel.Ast.sel_limit;
  tb.Qgm.b_id

(* ------------------------------------------------------------------ *)
(* WITH (table expressions, possibly recursive)                        *)
(* ------------------------------------------------------------------ *)

and build_with_query ctx ~scope (wq : Ast.with_query) : Qgm.box_id =
  let saved = ctx.table_exprs in
  if wq.Ast.with_recursive then begin
    (* pre-create a pass-through box per definition so that references
       (including self-references) resolve; cycles become cyclic range
       edges, detected by the executor as fixpoints *)
    let placeholders =
      List.map
        (fun (name, cols, _) ->
          let cols =
            match cols with
            | Some cols -> cols
            | None ->
              error
                "recursive table expression %s requires an explicit column list"
                name
          in
          let p = Qgm.new_box ctx.g ~label:name Qgm.Select in
          p.Qgm.b_head <-
            List.map
              (fun c -> { Qgm.hc_name = c; hc_type = None; hc_expr = None })
              cols;
          ctx.table_exprs <- (norm name, p.Qgm.b_id) :: ctx.table_exprs;
          (name, p))
        wq.Ast.with_defs
    in
    List.iter2
      (fun (name, _, q) (_, (p : Qgm.box)) ->
        let body = build_query ctx ~scope q in
        let body_box = Qgm.box ctx.g body in
        if Qgm.arity body_box <> Qgm.arity p then
          error "table expression %s: %d columns declared, body has %d" name
            (Qgm.arity p) (Qgm.arity body_box);
        let q = Qgm.new_quant ctx.g ~label:name ~parent:p.Qgm.b_id ~input:body Qgm.F in
        p.Qgm.b_head <-
          List.mapi
            (fun i hc ->
              {
                hc with
                Qgm.hc_type = (List.nth body_box.Qgm.b_head i).Qgm.hc_type;
                hc_expr = Some (Qgm.Col (q.Qgm.q_id, i));
              })
            p.Qgm.b_head)
      wq.Ast.with_defs placeholders
  end
  else
    List.iter
      (fun (name, cols, q) ->
        let id = build_query ctx ~scope q in
        let b = Qgm.box ctx.g id in
        (match cols with
        | Some names ->
          if List.length names <> Qgm.arity b then
            error "table expression %s: %d column names for %d columns" name
              (List.length names) (Qgm.arity b);
          b.Qgm.b_head <-
            List.map2 (fun hc n -> { hc with Qgm.hc_name = n }) b.Qgm.b_head names
        | None -> ());
        b.Qgm.b_label <- name;
        ctx.table_exprs <- (norm name, id) :: ctx.table_exprs)
      wq.Ast.with_defs;
  let body = build_query ctx ~scope wq.Ast.with_body in
  ctx.table_exprs <- saved;
  body

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

(** Builds a full QGM for [wq]; the result box becomes the top box. *)
let build (cfg : config) (wq : Ast.with_query) : Qgm.t =
  let g = Qgm.create () in
  let ctx = { cfg; g; base_boxes = []; table_exprs = []; view_stack = [] } in
  let top = build_with_query ctx ~scope:None wq in
  g.Qgm.top <- top;
  Check.assert_consistent g;
  g

(** Builds a QGM for a query given as text. *)
let build_text (cfg : config) (text : string) : Qgm.t =
  build cfg (Parser.query_text text)
