(** Translation of Hydrogen ASTs into QGM, with name resolution and
    semantic analysis ("semantic analysis of the query is also done
    during parsing, so the QGM produced is guaranteed to be valid").

    Subqueries become quantifiers: IN/EXISTS/ANY produce existential [E]
    quantifiers, ALL and NOT IN produce universal [A] quantifiers,
    scalar subqueries produce [S] quantifiers, DBC set predicates
    produce [SP] quantifiers — all consumed in predicates through
    {!Qgm.constructor:Quantified} nodes.  Views and table expressions
    are resolved here; cyclic table-expression references (recursion)
    become cyclic range edges; FROM items are visible left to right, so
    derived tables may be correlated with earlier siblings. *)

open Sb_storage
module Ast = Sb_hydrogen.Ast
module Functions = Sb_hydrogen.Functions

exception Semantic_error of string

type config = {
  catalog : Catalog.t;
  functions : Functions.t;
  mutable enabled_ops : string list;
      (** extension table operations a DBC has enabled, e.g.
          ["left_outer_join"]; the corresponding syntax is rejected
          until then *)
}

val make_config : catalog:Catalog.t -> functions:Functions.t -> config

val op_enabled : config -> string -> bool

(** Builds a consistent QGM whose top box is the query's result.
    @raise Semantic_error on unresolvable names, type errors, arity
    mismatches, unsupported constructs, and cyclic views. *)
val build : config -> Ast.with_query -> Qgm.t

(** Parses then builds. *)
val build_text : config -> string -> Qgm.t
