(** Hand-written lexer for Hydrogen. *)

type token =
  | IDENT of string
  | INT of int
  | FLOAT of float
  | STRING of string
  | HOSTVAR of string  (** [:name] *)
  | SYM of string  (** punctuation and operators *)
  | EOF

type lexed = { tok : token; pos : int (** byte offset, for errors *) }

exception Lex_error of string * int

(** Tokenizes [src] in full.  Comments: [--] to end of line and
    [/* ... */].  String literals quote with [''] doubling.
    @raise Lex_error on malformed input. *)
val tokenize : string -> lexed list

(** Uppercased form, for keyword comparison. *)
val keyword : string -> string

val token_to_string : token -> string
