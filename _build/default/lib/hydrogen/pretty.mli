(** Pretty-printer for Hydrogen ASTs.

    Printing then re-parsing yields a structurally equal AST (a property
    the test suite checks). *)

val pp_expr : Format.formatter -> Ast.expr -> unit
val pp_query : Format.formatter -> Ast.query -> unit
val pp_select : Format.formatter -> Ast.select -> unit
val pp_item : Format.formatter -> Ast.sel_item -> unit
val pp_from : Format.formatter -> Ast.from_item -> unit
val pp_with_query : Format.formatter -> Ast.with_query -> unit
val pp_statement : Format.formatter -> Ast.statement -> unit

val expr_to_string : Ast.expr -> string
val query_to_string : Ast.query -> string
val with_query_to_string : Ast.with_query -> string
val statement_to_string : Ast.statement -> string
