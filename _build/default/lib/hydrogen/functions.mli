(** The function registry: the language-extension surface of Hydrogen.

    A DBC can register four kinds of functions (section 2): {e scalar}
    functions over column values, {e aggregate} functions ranging over a
    table, {e set-predicate} functions generalizing [ALL]/[ANY] (e.g.
    [MAJORITY]), and {e table} functions producing tables.  Built-ins
    are registered through the same interface. *)

open Sb_storage

exception Function_error of string

(** Formats and raises {!Function_error}. *)
val error : ('a, Format.formatter, unit, 'b) format4 -> 'a

type scalar_fn = {
  sf_name : string;
  sf_arity : int option;  (** [None] = variadic *)
  sf_type : Datatype.t option list -> (Datatype.t option, string) result;
      (** result type given argument types ([None] = untyped/null) *)
  sf_eval : Value.t list -> Value.t;
}

(** A fresh accumulator per group; [agg_step] sees non-null argument
    values (SQL semantics: aggregates skip nulls; counting all rows is
    handled by the executor). *)
type agg_instance = {
  agg_step : Value.t -> unit;
  agg_result : unit -> Value.t;
}

type aggregate_fn = {
  af_name : string;
  af_type : Datatype.t option -> (Datatype.t option, string) result;
  af_make : unit -> agg_instance;
}

(** Decides a comparison's truth over a whole set: [spf_combine] folds
    the three-valued truth of the comparison for each element
    ([None] = unknown). *)
type set_predicate_fn = {
  spf_name : string;
  spf_combine : bool option Seq.t -> bool option;
}

type table_fn = {
  tf_name : string;
  tf_type :
    arg_tables:Schema.t list ->
    arg_values:Datatype.t option list ->
    (Schema.t, string) result;
  tf_eval :
    arg_tables:(Schema.t * Tuple.t Seq.t) list ->
    arg_values:Value.t list ->
    Tuple.t Seq.t;
}

type t

(** Registration replaces any previous function of the same name
    (case-insensitive). *)

val register_scalar : t -> scalar_fn -> unit
val register_aggregate : t -> aggregate_fn -> unit
val register_set_predicate : t -> set_predicate_fn -> unit
val register_table_fn : t -> table_fn -> unit

val find_scalar : t -> string -> scalar_fn option
val find_aggregate : t -> string -> aggregate_fn option
val find_set_predicate : t -> string -> set_predicate_fn option
val find_table_fn : t -> string -> table_fn option

val is_aggregate : t -> string -> bool
val is_table_fn : t -> string -> bool

(** A registry pre-loaded with the built-ins: scalars (abs, mod, upper,
    lower, length, substr, coalesce, sqrt, power, round, floor, ceil,
    sign, trim, replace, greatest, least, nullif) and aggregates (count,
    sum, avg, min, max). *)
val create : unit -> t
