lib/hydrogen/pretty.mli: Ast Format
