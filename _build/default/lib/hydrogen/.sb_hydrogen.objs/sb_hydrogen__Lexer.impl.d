lib/hydrogen/lexer.ml: Buffer List Printf String
