lib/hydrogen/parser.mli: Ast
