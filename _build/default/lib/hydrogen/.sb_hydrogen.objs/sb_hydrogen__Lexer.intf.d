lib/hydrogen/lexer.mli:
