lib/hydrogen/ast.ml: Sb_storage Value
