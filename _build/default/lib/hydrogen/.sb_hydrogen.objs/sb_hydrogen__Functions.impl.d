lib/hydrogen/functions.ml: Buffer Datatype Float Fmt Hashtbl List Option Sb_storage Schema Seq String Tuple Value
