lib/hydrogen/functions.mli: Datatype Format Sb_storage Schema Seq Tuple Value
