lib/hydrogen/parser.ml: Ast Lexer List Printf Sb_storage String
