lib/hydrogen/pretty.ml: Ast Fmt Option Sb_storage
