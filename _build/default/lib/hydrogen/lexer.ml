(** Hand-written lexer for Hydrogen. *)

type token =
  | IDENT of string
  | INT of int
  | FLOAT of float
  | STRING of string
  | HOSTVAR of string  (** [:name] *)
  | SYM of string  (** punctuation and operators *)
  | EOF

type lexed = { tok : token; pos : int (* byte offset, for errors *) }

exception Lex_error of string * int

let error msg pos = raise (Lex_error (msg, pos))

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

(** Tokenizes [src] in full.  Comments: [-- to end of line] and
    [/* ... */]. *)
let tokenize (src : string) : lexed list =
  let n = String.length src in
  let toks = ref [] in
  let emit tok pos = toks := { tok; pos } :: !toks in
  let i = ref 0 in
  while !i < n do
    let c = src.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '-' && !i + 1 < n && src.[!i + 1] = '-' then begin
      while !i < n && src.[!i] <> '\n' do incr i done
    end
    else if c = '/' && !i + 1 < n && src.[!i + 1] = '*' then begin
      let start = !i in
      i := !i + 2;
      let rec skip () =
        if !i + 1 >= n then error "unterminated comment" start
        else if src.[!i] = '*' && src.[!i + 1] = '/' then i := !i + 2
        else begin incr i; skip () end
      in
      skip ()
    end
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char src.[!i] do incr i done;
      emit (IDENT (String.sub src start (!i - start))) start
    end
    else if is_digit c then begin
      let start = !i in
      while !i < n && is_digit src.[!i] do incr i done;
      let is_float =
        (!i < n && src.[!i] = '.' && !i + 1 < n && is_digit src.[!i + 1])
        || (!i < n && (src.[!i] = 'e' || src.[!i] = 'E'))
      in
      if is_float then begin
        if !i < n && src.[!i] = '.' then begin
          incr i;
          while !i < n && is_digit src.[!i] do incr i done
        end;
        if !i < n && (src.[!i] = 'e' || src.[!i] = 'E') then begin
          incr i;
          if !i < n && (src.[!i] = '+' || src.[!i] = '-') then incr i;
          while !i < n && is_digit src.[!i] do incr i done
        end;
        emit (FLOAT (float_of_string (String.sub src start (!i - start)))) start
      end
      else emit (INT (int_of_string (String.sub src start (!i - start)))) start
    end
    else if c = '\'' then begin
      let start = !i in
      incr i;
      let buf = Buffer.create 16 in
      let rec scan () =
        if !i >= n then error "unterminated string literal" start
        else if src.[!i] = '\'' then
          if !i + 1 < n && src.[!i + 1] = '\'' then begin
            Buffer.add_char buf '\'';
            i := !i + 2;
            scan ()
          end
          else incr i
        else begin
          Buffer.add_char buf src.[!i];
          incr i;
          scan ()
        end
      in
      scan ();
      emit (STRING (Buffer.contents buf)) start
    end
    else if c = ':' && !i + 1 < n && is_ident_start src.[!i + 1] then begin
      let start = !i in
      incr i;
      let id_start = !i in
      while !i < n && is_ident_char src.[!i] do incr i done;
      emit (HOSTVAR (String.sub src id_start (!i - id_start))) start
    end
    else begin
      let start = !i in
      let two = if !i + 1 < n then String.sub src !i 2 else "" in
      match two with
      | "<=" | ">=" | "<>" | "!=" | "||" ->
        i := !i + 2;
        emit (SYM (if two = "!=" then "<>" else two)) start
      | _ ->
        (match c with
        | '(' | ')' | ',' | '.' | '*' | '+' | '-' | '/' | '%' | '=' | '<' | '>'
        | ';' ->
          incr i;
          emit (SYM (String.make 1 c)) start
        | _ -> error (Printf.sprintf "unexpected character %C" c) start)
    end
  done;
  emit EOF n;
  List.rev !toks

let keyword (s : string) = String.uppercase_ascii s

let token_to_string = function
  | IDENT s -> s
  | INT x -> string_of_int x
  | FLOAT x -> string_of_float x
  | STRING s -> Printf.sprintf "'%s'" s
  | HOSTVAR s -> ":" ^ s
  | SYM s -> s
  | EOF -> "<eof>"
