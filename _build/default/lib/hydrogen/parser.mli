(** Recursive-descent parser for Hydrogen.

    The grammar is small and orthogonal (section 2): any table-producing
    construct — base table, view, derived table, table function, set
    operation — may appear wherever a table may.  Set predicates after a
    comparison operator accept any identifier, so DBC set-predicate
    functions (e.g. [MAJORITY]) parse without grammar changes. *)

exception Parse_error of string * int

(** Parses one statement; a trailing [;] is allowed.
    @raise Parse_error or {!Lexer.Lex_error} on malformed input. *)
val statement : string -> Ast.statement

(** Parses a [;]-separated script. *)
val script : string -> Ast.statement list

(** Parses a query (with an optional WITH prefix); used for view
    expansion and the programmatic API. *)
val query_text : string -> Ast.with_query
