(** The function registry: the language-extension surface of Hydrogen.

    A DBC can register four kinds of functions (section 2):
    - {e scalar} functions over column values (e.g. [Area(w, l)]);
    - {e aggregate} functions ranging over a table (e.g. [StdDev(x)]);
    - {e set-predicate} functions generalizing [ALL]/[ANY]
      (e.g. [MAJORITY]);
    - {e table} functions producing tables from tables and parameters
      (e.g. [SAMPLE(t, n)]).

    Built-ins are registered through the same interface. *)

open Sb_storage

exception Function_error of string

let error fmt = Fmt.kstr (fun s -> raise (Function_error s)) fmt

(* --- scalar functions --- *)

type scalar_fn = {
  sf_name : string;
  sf_arity : int option;  (** [None] = variadic *)
  sf_type : Datatype.t option list -> (Datatype.t option, string) result;
      (** result type given argument types ([None] = untyped/null) *)
  sf_eval : Value.t list -> Value.t;
}

(* --- aggregate functions --- *)

(** A fresh accumulator per group; [agg_step] sees non-null argument
    values (SQL semantics: aggregates skip nulls; [count( * )] is handled
    by the executor). *)
type agg_instance = {
  agg_step : Value.t -> unit;
  agg_result : unit -> Value.t;
}

type aggregate_fn = {
  af_name : string;
  af_type : Datatype.t option -> (Datatype.t option, string) result;
  af_make : unit -> agg_instance;
}

(* --- set-predicate functions --- *)

(** Decides the predicate's truth over the whole set.  [truths] is the
    three-valued truth of the comparison for each element of the set
    ([None] = unknown).  ALL and ANY are expressible in this interface
    and are built in to the executor; extension functions such as
    MAJORITY register here. *)
type set_predicate_fn = {
  spf_name : string;
  spf_combine : bool option Seq.t -> bool option;
}

(* --- table functions --- *)

type table_fn = {
  tf_name : string;
  tf_type :
    arg_tables:Schema.t list ->
    arg_values:Datatype.t option list ->
    (Schema.t, string) result;
  tf_eval :
    arg_tables:(Schema.t * Tuple.t Seq.t) list ->
    arg_values:Value.t list ->
    Tuple.t Seq.t;
}

type t = {
  scalars : (string, scalar_fn) Hashtbl.t;
  aggregates : (string, aggregate_fn) Hashtbl.t;
  set_predicates : (string, set_predicate_fn) Hashtbl.t;
  table_fns : (string, table_fn) Hashtbl.t;
}

let norm = String.lowercase_ascii

let register_scalar t (f : scalar_fn) =
  Hashtbl.replace t.scalars (norm f.sf_name) f

let register_aggregate t (f : aggregate_fn) =
  Hashtbl.replace t.aggregates (norm f.af_name) f

let register_set_predicate t (f : set_predicate_fn) =
  Hashtbl.replace t.set_predicates (norm f.spf_name) f

let register_table_fn t (f : table_fn) =
  Hashtbl.replace t.table_fns (norm f.tf_name) f

let find_scalar t name = Hashtbl.find_opt t.scalars (norm name)
let find_aggregate t name = Hashtbl.find_opt t.aggregates (norm name)
let find_set_predicate t name = Hashtbl.find_opt t.set_predicates (norm name)
let find_table_fn t name = Hashtbl.find_opt t.table_fns (norm name)

let is_aggregate t name = Hashtbl.mem t.aggregates (norm name)
let is_table_fn t name = Hashtbl.mem t.table_fns (norm name)

(* ------------------------------------------------------------------ *)
(* Built-ins                                                           *)
(* ------------------------------------------------------------------ *)

let numeric_result = function
  | [ Some Datatype.Int; Some Datatype.Int ] -> Ok (Some Datatype.Int)
  | [ Some (Datatype.Int | Datatype.Float); Some (Datatype.Int | Datatype.Float) ]
    -> Ok (Some Datatype.Float)
  | [ None; _ ] | [ _; None ] -> Ok None
  | _ -> Error "expected numeric arguments"

let null_safe1 f = function
  | [ Value.Null ] -> Value.Null
  | [ v ] -> f v
  | args -> error "expected 1 argument, got %d" (List.length args)

let null_safe2 f = function
  | [ Value.Null; _ ] | [ _; Value.Null ] -> Value.Null
  | [ a; b ] -> f a b
  | args -> error "expected 2 arguments, got %d" (List.length args)

let builtin_scalars =
  [
    {
      sf_name = "abs";
      sf_arity = Some 1;
      sf_type =
        (function
        | [ Some Datatype.Int ] -> Ok (Some Datatype.Int)
        | [ Some Datatype.Float ] -> Ok (Some Datatype.Float)
        | [ None ] -> Ok None
        | _ -> Error "abs expects one numeric argument");
      sf_eval =
        null_safe1 (function
          | Value.Int x -> Value.Int (abs x)
          | Value.Float x -> Value.Float (Float.abs x)
          | v -> error "abs: non-numeric %s" (Value.to_string v));
    };
    {
      sf_name = "mod";
      sf_arity = Some 2;
      sf_type =
        (function
        | [ Some Datatype.Int; Some Datatype.Int ] -> Ok (Some Datatype.Int)
        | [ None; _ ] | [ _; None ] -> Ok None
        | _ -> Error "mod expects two integers");
      sf_eval =
        null_safe2 (fun a b ->
            let d = Value.as_int b in
            if d = 0 then Value.Null else Value.Int (Value.as_int a mod d));
    };
    {
      sf_name = "upper";
      sf_arity = Some 1;
      sf_type =
        (function
        | [ Some Datatype.String ] | [ None ] -> Ok (Some Datatype.String)
        | _ -> Error "upper expects a string");
      sf_eval =
        null_safe1 (fun v -> Value.String (String.uppercase_ascii (Value.as_string v)));
    };
    {
      sf_name = "lower";
      sf_arity = Some 1;
      sf_type =
        (function
        | [ Some Datatype.String ] | [ None ] -> Ok (Some Datatype.String)
        | _ -> Error "lower expects a string");
      sf_eval =
        null_safe1 (fun v -> Value.String (String.lowercase_ascii (Value.as_string v)));
    };
    {
      sf_name = "length";
      sf_arity = Some 1;
      sf_type =
        (function
        | [ Some Datatype.String ] | [ None ] -> Ok (Some Datatype.Int)
        | _ -> Error "length expects a string");
      sf_eval = null_safe1 (fun v -> Value.Int (String.length (Value.as_string v)));
    };
    {
      sf_name = "substr";
      sf_arity = Some 3;
      sf_type =
        (function
        | [ s; Some Datatype.Int; Some Datatype.Int ]
          when s = Some Datatype.String || s = None ->
          Ok (Some Datatype.String)
        | _ -> Error "substr expects (string, int, int)");
      sf_eval =
        (function
        | [ Value.Null; _; _ ] -> Value.Null
        | [ s; from; len ] ->
          let s = Value.as_string s in
          let from = max 1 (Value.as_int from) - 1 in
          let len = max 0 (min (Value.as_int len) (String.length s - from)) in
          if from >= String.length s then Value.String ""
          else Value.String (String.sub s from len)
        | args -> error "substr expects 3 arguments, got %d" (List.length args));
    };
    {
      sf_name = "coalesce";
      sf_arity = None;
      sf_type =
        (fun tys ->
          Ok (List.fold_left (fun acc t -> if acc = None then t else acc) None tys));
      sf_eval =
        (fun args ->
          match List.find_opt (fun v -> not (Value.is_null v)) args with
          | Some v -> v
          | None -> Value.Null);
    };
    {
      sf_name = "sqrt";
      sf_arity = Some 1;
      sf_type =
        (function
        | [ Some (Datatype.Int | Datatype.Float) ] | [ None ] ->
          Ok (Some Datatype.Float)
        | _ -> Error "sqrt expects a number");
      sf_eval = null_safe1 (fun v -> Value.Float (sqrt (Value.as_float v)));
    };
    {
      sf_name = "round";
      sf_arity = Some 1;
      sf_type =
        (function
        | [ Some (Datatype.Int | Datatype.Float) ] | [ None ] ->
          Ok (Some Datatype.Int)
        | _ -> Error "round expects a number");
      sf_eval =
        null_safe1 (fun v -> Value.Int (int_of_float (Float.round (Value.as_float v))));
    };
    {
      sf_name = "floor";
      sf_arity = Some 1;
      sf_type =
        (function
        | [ Some (Datatype.Int | Datatype.Float) ] | [ None ] ->
          Ok (Some Datatype.Int)
        | _ -> Error "floor expects a number");
      sf_eval =
        null_safe1 (fun v -> Value.Int (int_of_float (Float.floor (Value.as_float v))));
    };
    {
      sf_name = "ceil";
      sf_arity = Some 1;
      sf_type =
        (function
        | [ Some (Datatype.Int | Datatype.Float) ] | [ None ] ->
          Ok (Some Datatype.Int)
        | _ -> Error "ceil expects a number");
      sf_eval =
        null_safe1 (fun v -> Value.Int (int_of_float (Float.ceil (Value.as_float v))));
    };
    {
      sf_name = "sign";
      sf_arity = Some 1;
      sf_type =
        (function
        | [ Some (Datatype.Int | Datatype.Float) ] | [ None ] ->
          Ok (Some Datatype.Int)
        | _ -> Error "sign expects a number");
      sf_eval =
        null_safe1 (fun v ->
            Value.Int (compare (Value.as_float v) 0.0));
    };
    {
      sf_name = "trim";
      sf_arity = Some 1;
      sf_type =
        (function
        | [ Some Datatype.String ] | [ None ] -> Ok (Some Datatype.String)
        | _ -> Error "trim expects a string");
      sf_eval = null_safe1 (fun v -> Value.String (String.trim (Value.as_string v)));
    };
    {
      sf_name = "replace";
      sf_arity = Some 3;
      sf_type =
        (function
        | [ (Some Datatype.String | None); (Some Datatype.String | None);
            (Some Datatype.String | None) ] ->
          Ok (Some Datatype.String)
        | _ -> Error "replace expects three strings");
      sf_eval =
        (function
        | [ Value.Null; _; _ ] -> Value.Null
        | [ src; pat; repl ] ->
          let src = Value.as_string src
          and pat = Value.as_string pat
          and repl = Value.as_string repl in
          if pat = "" then Value.String src
          else begin
            let buf = Buffer.create (String.length src) in
            let plen = String.length pat in
            let rec go i =
              if i > String.length src - plen then
                Buffer.add_string buf (String.sub src i (String.length src - i))
              else if String.sub src i plen = pat then begin
                Buffer.add_string buf repl;
                go (i + plen)
              end
              else begin
                Buffer.add_char buf src.[i];
                go (i + 1)
              end
            in
            go 0;
            Value.String (Buffer.contents buf)
          end
        | args -> error "replace expects 3 arguments, got %d" (List.length args));
    };
    {
      sf_name = "greatest";
      sf_arity = None;
      sf_type = (fun tys -> Ok (List.find_opt Option.is_some tys |> Option.join));
      sf_eval =
        (fun args ->
          match List.filter (fun v -> not (Value.is_null v)) args with
          | [] -> Value.Null
          | v :: rest ->
            List.fold_left (fun a b -> if Value.compare b a > 0 then b else a) v rest);
    };
    {
      sf_name = "least";
      sf_arity = None;
      sf_type = (fun tys -> Ok (List.find_opt Option.is_some tys |> Option.join));
      sf_eval =
        (fun args ->
          match List.filter (fun v -> not (Value.is_null v)) args with
          | [] -> Value.Null
          | v :: rest ->
            List.fold_left (fun a b -> if Value.compare b a < 0 then b else a) v rest);
    };
    {
      sf_name = "nullif";
      sf_arity = Some 2;
      sf_type = (fun tys -> Ok (List.find_opt Option.is_some tys |> Option.join));
      sf_eval =
        (function
        | [ a; b ] -> if Value.compare a b = 0 then Value.Null else a
        | args -> error "nullif expects 2 arguments, got %d" (List.length args));
    };
    {
      sf_name = "power";
      sf_arity = Some 2;
      sf_type = (fun tys -> numeric_result tys);
      sf_eval =
        null_safe2 (fun a b ->
            Value.Float (Float.pow (Value.as_float a) (Value.as_float b)));
    };
  ]

let make_sum () =
  let acc = ref None in
  {
    agg_step =
      (fun v ->
        acc :=
          Some
            (match !acc with
            | None -> v
            | Some (Value.Int a) ->
              (match v with
              | Value.Int b -> Value.Int (a + b)
              | v -> Value.Float (float_of_int a +. Value.as_float v))
            | Some a -> Value.Float (Value.as_float a +. Value.as_float v)));
    agg_result = (fun () -> Option.value ~default:Value.Null !acc);
  }

let make_extreme better =
  let acc = ref Value.Null in
  {
    agg_step =
      (fun v ->
        if Value.is_null !acc || better (Value.compare v !acc) then acc := v);
    agg_result = (fun () -> !acc);
  }

let numeric_agg_type = function
  | Some Datatype.Int -> Ok (Some Datatype.Int)
  | Some Datatype.Float -> Ok (Some Datatype.Float)
  | None -> Ok None
  | Some t -> Error (Fmt.str "numeric aggregate over %a" Datatype.pp t)

let builtin_aggregates =
  [
    {
      af_name = "count";
      af_type = (fun _ -> Ok (Some Datatype.Int));
      af_make =
        (fun () ->
          let n = ref 0 in
          {
            agg_step = (fun _ -> incr n);
            agg_result = (fun () -> Value.Int !n);
          });
    };
    { af_name = "sum"; af_type = numeric_agg_type; af_make = make_sum };
    {
      af_name = "avg";
      af_type =
        (function
        | Some (Datatype.Int | Datatype.Float) | None -> Ok (Some Datatype.Float)
        | Some t -> Error (Fmt.str "avg over %a" Datatype.pp t));
      af_make =
        (fun () ->
          let n = ref 0 and s = ref 0.0 in
          {
            agg_step =
              (fun v ->
                incr n;
                s := !s +. Value.as_float v);
            agg_result =
              (fun () ->
                if !n = 0 then Value.Null else Value.Float (!s /. float_of_int !n));
          });
    };
    {
      af_name = "min";
      af_type = (fun t -> Ok t);
      af_make = (fun () -> make_extreme (fun c -> c < 0));
    };
    {
      af_name = "max";
      af_type = (fun t -> Ok t);
      af_make = (fun () -> make_extreme (fun c -> c > 0));
    };
  ]

(** Creates a registry pre-loaded with the built-in functions. *)
let create () : t =
  let t =
    {
      scalars = Hashtbl.create 16;
      aggregates = Hashtbl.create 8;
      set_predicates = Hashtbl.create 4;
      table_fns = Hashtbl.create 4;
    }
  in
  List.iter (register_scalar t) builtin_scalars;
  List.iter (register_aggregate t) builtin_aggregates;
  t
