lib/qes/exec.ml: Access_method Array Bytes Catalog Char Datatype Float Fmt Hashtbl List Obj Option Sb_hydrogen Sb_optimizer Sb_storage Schema Seq Storage_manager String Table_store Tuple Value
