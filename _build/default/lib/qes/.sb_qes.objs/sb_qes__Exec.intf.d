lib/qes/exec.mli: Catalog Hashtbl Sb_hydrogen Sb_optimizer Sb_storage Seq Tuple Value
