lib/core/extension.ml: Access_method Catalog Corona Datatype List Sb_hydrogen Sb_optimizer Sb_qes Sb_qgm Sb_rewrite Sb_storage Storage_manager
