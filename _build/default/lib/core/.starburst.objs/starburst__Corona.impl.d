lib/core/corona.ml: Array Buffer Catalog Datatype Fmt Fun Hashtbl List Option Sb_hydrogen Sb_optimizer Sb_qes Sb_qgm Sb_rewrite Sb_storage Schema Seq String Table_store Tuple Value
