lib/core/corona.mli: Catalog Datatype Hashtbl Sb_hydrogen Sb_optimizer Sb_qes Sb_qgm Sb_rewrite Sb_storage Tuple Value
