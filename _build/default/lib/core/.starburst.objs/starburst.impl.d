lib/core/starburst.ml: Corona Extension
