lib/core/extension.mli: Access_method Corona Datatype Sb_hydrogen Sb_optimizer Sb_qes Sb_qgm Sb_rewrite Sb_storage Storage_manager
