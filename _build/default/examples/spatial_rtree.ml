(** The data-management extension example: a BOX datatype, spatial
    functions, and an R-tree access-method attachment [GUTT84].  The
    optimizer recognizes when the R-tree answers an [overlaps] predicate
    ("Corona must recognize when this access method is useful") once the
    extension registers its probe matcher. *)

let section title = Printf.printf "\n=== %s ===\n" title

let () =
  let db = Starburst.create () in
  Sb_extensions.Spatial.install db;
  let registry = db.Starburst.Corona.catalog.Sb_storage.Catalog.datatypes in
  let run s = print_endline (Starburst.render_result ~registry (Starburst.run db s)) in

  section "A table with a BOX column";
  run "CREATE TABLE landmarks (name STRING, footprint BOX)";
  (* a grid of landmarks *)
  let rows =
    List.init 400 (fun i ->
        let x = float_of_int (i mod 20) *. 10.0 in
        let y = float_of_int (i / 20) *. 10.0 in
        Printf.sprintf "('lm%d', make_box(%g, %g, %g, %g))" i x y (x +. 4.0)
          (y +. 4.0))
    |> String.concat ","
  in
  run ("INSERT INTO landmarks VALUES " ^ rows);
  run "ANALYZE";

  section "Spatial predicate without an index: table scan";
  let q =
    "SELECT name FROM landmarks WHERE overlaps(footprint, make_box(11, 11, \
     23, 23))"
  in
  run ("EXPLAIN PLAN " ^ q);
  run q;

  section "Attach an R-tree; the optimizer now picks an index probe";
  run "CREATE INDEX landmarks_fp ON landmarks (footprint) USING rtree";
  run ("EXPLAIN PLAN " ^ q);
  run q;

  section "Spatial functions compose with ordinary SQL";
  run
    "SELECT count(*) AS n, sum(area(footprint)) AS covered FROM landmarks \
     WHERE overlaps(footprint, make_box(0, 0, 50, 50))"
