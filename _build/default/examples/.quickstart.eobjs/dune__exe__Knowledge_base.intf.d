examples/knowledge_base.mli:
