examples/outer_join_extension.mli:
