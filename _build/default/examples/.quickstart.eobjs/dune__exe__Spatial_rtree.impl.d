examples/spatial_rtree.ml: List Printf Sb_extensions Sb_storage Starburst String
