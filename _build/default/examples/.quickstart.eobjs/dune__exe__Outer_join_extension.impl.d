examples/outer_join_extension.ml: Printf Sb_extensions Sb_qgm Starburst
