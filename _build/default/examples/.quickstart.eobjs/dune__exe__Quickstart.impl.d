examples/quickstart.ml: Printf Sb_qes Sb_storage Starburst
