examples/quickstart.mli:
