examples/recursive_paths.ml: List Printf Sb_qes Starburst String Unix
