examples/parts_supply.ml: Printf Sb_extensions Starburst
