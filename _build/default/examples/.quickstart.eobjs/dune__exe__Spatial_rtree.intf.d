examples/spatial_rtree.mli:
