examples/recursive_paths.mli:
