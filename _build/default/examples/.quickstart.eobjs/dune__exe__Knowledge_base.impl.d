examples/knowledge_base.ml: Printf Starburst
