examples/parts_supply.mli:
