(** Knowledge-based systems on Starburst — the application area section
    8 names first ("we are currently exploring knowledge-based systems
    ... how to represent and support frames and rules in the database").

    Facts are rows; Datalog-style rules are table expressions; recursive
    rules are cyclic table expressions ("Hydrogen can be used for logic
    programming by mapping rules to table expressions", section 2).  The
    classic same-generation program and an ancestor taxonomy run below,
    with the scope of optimization covering both the rules and the
    queries — the paper's "globally optimized execution plan". *)

let section title = Printf.printf "\n=== %s ===\n" title

let () =
  let db = Starburst.create () in
  let run s = print_endline (Starburst.render_result (Starburst.run db s)) in

  section "Facts: a small family/taxonomy knowledge base";
  run "CREATE TABLE parent (child STRING, par STRING)";
  run
    "INSERT INTO parent VALUES ('bob','alice'), ('carol','alice'), \
     ('dave','bob'), ('erin','bob'), ('frank','carol'), ('gail','dave'), \
     ('henry','erin'), ('iris','frank')";
  run "CREATE TABLE isa (sub STRING, super STRING)";
  run
    "INSERT INTO isa VALUES ('penguin','bird'), ('bird','animal'), \
     ('sparrow','bird'), ('dog','mammal'), ('mammal','animal')";
  run "ANALYZE";

  section "Rule: ancestor(X,Y) <- parent(X,Y) | ancestor(X,Z), parent(Z,Y)";
  (* right-linear form: the bound first argument is propagated unchanged
     by the recursive arm, which is what the magic rule looks for *)
  let ancestor =
    "WITH RECURSIVE ancestor (child, anc) AS (SELECT child, par FROM parent \
     UNION SELECT a.child, p.par FROM ancestor a, parent p WHERE a.anc = \
     p.child) "
  in
  run (ancestor ^ "SELECT anc FROM ancestor WHERE child = 'gail' ORDER BY anc");

  section "Rule with a bound argument: the magic rewrite seeds only 'iris'";
  run ("EXPLAIN REWRITE " ^ ancestor ^ "SELECT anc FROM ancestor WHERE child = 'iris'");

  section "Same generation: sg(X,Y) <- X=Y | parent(X,Xp), sg(Xp,Yp), parent(Y,Yp)";
  (* the textbook non-linear program, expressed with the seed as the
     sibling relation (same parent) and extension upwards *)
  run
    "WITH RECURSIVE sg (x, y) AS (SELECT a.child, b.child FROM parent a, \
     parent b WHERE a.par = b.par UNION SELECT c.child, d.child FROM parent \
     c, sg s, parent d WHERE c.par = s.x AND d.par = s.y) SELECT y FROM sg \
     WHERE x = 'gail' AND y <> 'gail' ORDER BY y";

  section "Taxonomy closure with depth (path algebra over isa)";
  run
    "WITH RECURSIVE kind_of (sub, super, depth) AS (SELECT sub, super, 1 \
     FROM isa UNION SELECT i.sub, k.super, k.depth + 1 FROM isa i, kind_of k \
     WHERE i.super = k.sub) SELECT super, depth FROM kind_of WHERE sub = \
     'penguin' ORDER BY depth";

  section "Rules and ordinary SQL compose: aggregate over an inferred relation";
  run
    (ancestor
    ^ "SELECT anc, count(*) AS descendants FROM ancestor GROUP BY anc ORDER \
       BY descendants DESC, anc LIMIT 3")
