(** An engineering parts-supply workload exercising Hydrogen's
    orthogonality (section 2): views used like tables, aggregation over
    views joined to other tables (illegal in SQL'89, legal in Hydrogen),
    set operations inside FROM, table expressions factoring out common
    subexpressions, and DBC aggregates. *)

let section title = Printf.printf "\n=== %s ===\n" title

let () =
  let db = Starburst.create () in
  Sb_extensions.Stats_fns.install db;
  Sb_extensions.Sampling.install db;
  let run s = print_endline (Starburst.render_result (Starburst.run db s)) in

  section "Schema";
  run "CREATE TABLE parts (partno INT NOT NULL UNIQUE, pname STRING, weight FLOAT)";
  run "CREATE TABLE suppliers (sid INT NOT NULL UNIQUE, sname STRING, region STRING)";
  run "CREATE TABLE supply (sid INT, partno INT, qty INT, cost FLOAT)";
  run "CREATE INDEX supply_part ON supply (partno)";

  section "Data";
  run
    "INSERT INTO parts VALUES (1,'bolt',0.1),(2,'nut',0.05),(3,'gear',2.5),\
     (4,'axle',7.0),(5,'frame',22.0)";
  run
    "INSERT INTO suppliers VALUES (10,'acme','west'),(11,'globex','east'),\
     (12,'initech','west')";
  run
    "INSERT INTO supply VALUES (10,1,1000,0.02),(10,2,800,0.01),(10,3,50,3.1),\
     (11,1,200,0.03),(11,4,20,8.5),(12,5,5,30.0),(12,3,60,2.9),(11,3,10,3.5)";
  run "ANALYZE";

  section "A view with aggregation";
  run
    "CREATE VIEW part_totals AS SELECT partno, sum(qty) AS total_qty, \
     avg(cost) AS avg_cost FROM supply GROUP BY partno";

  section "Joining an aggregating view to a base table (beyond SQL'89)";
  run
    "SELECT p.pname, t.total_qty, t.avg_cost FROM part_totals t, parts p \
     WHERE p.partno = t.partno AND t.total_qty > 50 ORDER BY t.total_qty DESC";

  section "Set operations anywhere a table may appear";
  run
    "SELECT pname FROM parts WHERE partno IN ((SELECT partno FROM supply \
     WHERE qty > 500) UNION (SELECT partno FROM supply WHERE cost > 10))";

  section "Table expressions (WITH) factoring a common subexpression";
  run
    "WITH west_supply (partno, qty) AS (SELECT s.partno, s.qty FROM supply s, \
     suppliers u WHERE s.sid = u.sid AND u.region = 'west') SELECT p.pname, \
     w.qty FROM west_supply w, parts p WHERE p.partno = w.partno AND w.qty > \
     40 ORDER BY w.qty DESC";

  section "DBC aggregates over groups";
  run
    "SELECT region, count(*) AS lines, stddev(cost) AS sd FROM supply s, \
     suppliers u WHERE s.sid = u.sid GROUP BY region ORDER BY region";

  section "Quantified comparisons";
  run
    "SELECT pname FROM parts WHERE weight >= ALL (SELECT weight FROM parts)";
  run
    "SELECT sname FROM suppliers u WHERE NOT EXISTS (SELECT * FROM supply s \
     WHERE s.sid = u.sid AND s.cost > 5)";

  section "Sampling through a table function";
  run "SELECT partno, qty FROM sample(supply, 3) s ORDER BY partno"
