(** Logic programming in Hydrogen (section 2): recursion through cyclic
    table expressions — transitive closure and generation counting on a
    graph — and the effect of the magic-sets-style rewrite that pushes a
    selective binding into the recursion's seed (section 5, [BANC86]). *)

let section title = Printf.printf "\n=== %s ===\n" title

let () =
  let db = Starburst.create () in
  let run s = print_endline (Starburst.render_result (Starburst.run db s)) in

  section "A graph: chain 1->...->60 plus a fan-out hub";
  run "CREATE TABLE edges (src INT, dst INT)";
  let values =
    (* a chain and a second component *)
    List.init 59 (fun i -> Printf.sprintf "(%d,%d)" (i + 1) (i + 2))
    @ List.init 20 (fun i -> Printf.sprintf "(%d,%d)" 100 (101 + i))
    |> String.concat ","
  in
  run ("INSERT INTO edges VALUES " ^ values);
  run "ANALYZE";

  section "Transitive closure reachable from node 1";
  let tc where =
    "WITH RECURSIVE paths (src, dst) AS (SELECT src, dst FROM edges UNION \
     SELECT p.src, e.dst FROM paths p, edges e WHERE p.dst = e.src) SELECT \
     count(*) FROM paths" ^ where
  in
  run (tc " WHERE src = 1");

  section "With rewrite ON, the binding src = 1 is pushed into the seed";
  run ("EXPLAIN REWRITE " ^ tc " WHERE src = 1");

  let measure label f =
    let t0 = Unix.gettimeofday () in
    f ();
    let c = Starburst.counters db in
    Printf.printf "%-28s %8.2f ms   fixpoint rounds: %d, tuples scanned: %d\n"
      label
      ((Unix.gettimeofday () -. t0) *. 1000.0)
      c.Sb_qes.Exec.c_fixpoint_rounds c.Sb_qes.Exec.c_scanned
  in
  section "Naive vs magic (rewrite off / on)";
  ignore (Starburst.run db "SET rewrite = off");
  measure "no magic (rewrite off)" (fun () -> ignore (Starburst.query db (tc " WHERE src = 1")));
  ignore (Starburst.run db "SET rewrite = on");
  measure "magic (rewrite on)" (fun () -> ignore (Starburst.query db (tc " WHERE src = 1")));

  section "Path-algebra flavour: hop counts via repeated self-extension";
  run
    "WITH RECURSIVE hops (src, dst, n) AS (SELECT src, dst, 1 FROM edges \
     UNION SELECT h.src, e.dst, h.n + 1 FROM hops h, edges e WHERE h.dst = \
     e.src AND h.n < 5) SELECT n, count(*) AS paths FROM hops WHERE src = 1 \
     GROUP BY n ORDER BY n"
