(** The concurrent-client server sweep ([bench --server]).

    Measures the multi-session front end (lib/server): N client domains,
    each with its own session, hammer a shared parts/supply database
    with a fixed mix of read queries, with the shared plan cache on and
    off.  Reports per-point throughput, the cache hit rate, and
    admission-controller activity, writes [BENCH_server.json], and
    checks the two headline claims — with ≥ 8 clients the shared cache
    hit rate exceeds 90%, and concurrent throughput beats the
    single-session baseline (one client submitting through the same
    server). *)

module Server = Sb_server
module Err = Sb_resil.Err

(* the read mix: distinct enough to exercise several cache shards,
   repeated enough that a shared cache pays off *)
let queries =
  [|
    "SELECT q.partno, q.price FROM quotations q WHERE q.partno IN (SELECT \
     partno FROM inventory WHERE type = 'CPU') AND q.price < 50";
    "SELECT partno FROM inventory WHERE type = 'CPU' OR onhand_qty > 80";
    "SELECT i.type, count(*), min(q.price) FROM quotations q, inventory i \
     WHERE q.partno = i.partno GROUP BY i.type";
    "SELECT DISTINCT supplier FROM quotations WHERE order_qty > 10";
    "SELECT partno FROM inventory UNION SELECT partno FROM quotations";
    "SELECT count(*) FROM quotations WHERE price < 25";
    "SELECT partno, onhand_qty FROM inventory WHERE onhand_qty > 500 ORDER BY \
     partno";
    "SELECT q.supplier FROM quotations q WHERE EXISTS (SELECT partno FROM \
     inventory i WHERE i.partno = q.partno AND i.onhand_qty < q.order_qty)";
    (* join-heavy entries: expensive to plan, cheap to run on the small
       tables — the repeated prepared workload a plan cache is for *)
    "SELECT i.partno, q.supplier, r.supplier FROM inventory i, quotations q, \
     quotations r WHERE i.partno = q.partno AND q.partno = r.partno AND \
     q.supplier <> r.supplier AND i.type = 'CPU' AND q.price < r.price";
    "SELECT i.type, count(*) FROM inventory i, quotations q, quotations r, \
     inventory j WHERE i.partno = q.partno AND q.partno = r.partno AND \
     r.partno = j.partno AND q.price <= r.price AND j.onhand_qty > 100 GROUP \
     BY i.type";
  |]

let load_workload db =
  ignore
    (Starburst.run db
       "CREATE TABLE inventory (partno INT NOT NULL UNIQUE, onhand_qty INT, type STRING)");
  ignore
    (Starburst.run db
       "CREATE TABLE quotations (partno INT NOT NULL, price FLOAT, order_qty INT, supplier STRING)");
  (* small tables: the sweep measures the front end (compilation
     amortization, admission, locking), not scan throughput *)
  let n_parts = 60 and fanout = 2 in
  let rng = Random.State.make [| 42 |] in
  Bench_util.insert_batch db "inventory"
    (List.init n_parts (fun k ->
         Printf.sprintf "(%d, %d, '%s')" k
           (Random.State.int rng 1000)
           (if k mod 3 = 0 then "CPU" else if k mod 3 = 1 then "DISK" else "RAM")));
  Bench_util.insert_batch db "quotations"
    (List.init (n_parts * fanout) (fun k ->
         Printf.sprintf "(%d, %.2f, %d, 's%d')" (k mod n_parts)
           (Random.State.float rng 100.0)
           (Random.State.int rng 200)
           (k mod 17)));
  ignore (Starburst.run db "ANALYZE")

let fresh_server ~workers ~cache =
  let config =
    {
      (Server.default_config ()) with
      Server.workers;
      max_inflight = 64;
      degrade_inflight = 48;
      session_inflight = 8;
    }
  in
  let server = Server.create ~config () in
  Server.set_cache_enabled server cache;
  (* load through a bootstrap session so DDL takes the normal path *)
  let boot = Server.session server in
  load_workload (Server.session_db boot);
  Server.close_session server boot;
  (* the loading misses stay out of the measured counters *)
  Server.clear_cache server;
  server

(* one client: its own session, [stmts] statements round-robin through
   the mix (offset per client so clients collide on hot entries) *)
let client server ~stmts ~offset () =
  let session = Server.session server in
  let errors = ref 0 in
  for k = 0 to stmts - 1 do
    let q = queries.((k + offset) mod Array.length queries) in
    let rec go attempts =
      match Server.submit server session q with
      | Ok _ -> ()
      | Error e when e.Err.err_retryable && attempts < 5 -> go (attempts + 1)
      | Error _ -> incr errors
    in
    go 0
  done;
  Server.close_session server session;
  !errors

type point = {
  pt_clients : int;
  pt_cache : bool;
  pt_ms : float;
  pt_throughput : float;  (** statements / second *)
  pt_hit_rate : float;
  pt_hits : int;
  pt_misses : int;
  pt_shed : int;
  pt_rejected : int;
  pt_errors : int;
}

(* clients are systhreads, like the TCP front end's per-connection
   threads: they spend their lives blocked in [submit], and execution
   parallelism comes from the server's pool plus help-first callers *)
let run_point ~workers ~clients ~cache ~stmts =
  let server = fresh_server ~workers ~cache in
  let t0 = Unix.gettimeofday () in
  let results = Array.make clients 0 in
  let threads =
    Array.init clients (fun i ->
        Thread.create
          (fun () -> results.(i) <- client server ~stmts ~offset:i ())
          ())
  in
  Array.iter Thread.join threads;
  let errors = Array.fold_left ( + ) 0 results in
  let ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
  let st = Server.stats server in
  let c = st.Server.st_cache in
  Server.shutdown server;
  let total = clients * stmts in
  let lookups = c.Starburst.Plan_cache.hits + c.Starburst.Plan_cache.misses in
  {
    pt_clients = clients;
    pt_cache = cache;
    pt_ms = ms;
    pt_throughput = float_of_int total /. (ms /. 1000.0);
    pt_hit_rate =
      (if lookups = 0 then 0.0
       else float_of_int c.Starburst.Plan_cache.hits /. float_of_int lookups);
    pt_hits = c.Starburst.Plan_cache.hits;
    pt_misses = c.Starburst.Plan_cache.misses;
    pt_shed = st.Server.st_shed;
    pt_rejected = st.Server.st_rejected;
    pt_errors = errors;
  }

let json_of_point p =
  Printf.sprintf
    "    {\"clients\": %d, \"cache\": %b, \"ms\": %.1f, \
     \"throughput_stmts_per_s\": %.1f, \"hit_rate\": %.4f, \"hits\": %d, \
     \"misses\": %d, \"shed\": %d, \"rejected\": %d, \"errors\": %d}"
    p.pt_clients p.pt_cache p.pt_ms p.pt_throughput p.pt_hit_rate p.pt_hits
    p.pt_misses p.pt_shed p.pt_rejected p.pt_errors

(* the single-caller reference: one plain Corona handle, no server, no
   domains — [query] compiles every call, [cached_query] is the
   single-session face of the plan cache *)
let single_caller_reference ~stmts =
  let db = Starburst.create () in
  load_workload db;
  let loop f =
    let t0 = Unix.gettimeofday () in
    for k = 0 to stmts - 1 do
      ignore (f db queries.(k mod Array.length queries))
    done;
    let ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
    float_of_int stmts /. (ms /. 1000.0)
  in
  (* untimed warmup: grows the heap and touches every code path so the
     first timed loop isn't charged for process start-up *)
  for k = 0 to (2 * Array.length queries) - 1 do
    ignore (Starburst.query db queries.(k mod Array.length queries))
  done;
  let uncached = loop Starburst.query in
  let cached = loop Starburst.cached_query in
  (uncached, cached)

let run ?(out = "BENCH_server.json") ?(stmts = 250) ?workers () =
  let workers =
    match workers with
    | Some w -> w
    | None -> (Server.default_config ()).Server.workers
  in
  Bench_util.header
    (Printf.sprintf
       "Server sweep: clients x shared-plan-cache, %d worker domain(s), %d \
        statements/client"
       workers stmts);
  (* single-session baseline first: it doubles as process warmup, so no
     sweep point is charged for heap growth *)
  let ref_uncached, ref_cached = single_caller_reference ~stmts in
  Printf.printf
    "  single caller: %.0f stmts/s compile-every-time, %.0f stmts/s cached\n"
    ref_uncached ref_cached;
  let sweep_clients = [ 1; 2; 4; 8 ] in
  let points =
    List.concat_map
      (fun cache ->
        List.map
          (fun clients -> run_point ~workers ~clients ~cache ~stmts)
          sweep_clients)
      [ true; false ]
  in
  Bench_util.table
    ~cols:
      [ "clients"; "cache"; "ms"; "stmts/s"; "hit rate"; "shed"; "rejected"; "errors" ]
    (List.map
       (fun p ->
         [
           string_of_int p.pt_clients;
           (if p.pt_cache then "on" else "off");
           Printf.sprintf "%.0f" p.pt_ms;
           Printf.sprintf "%.0f" p.pt_throughput;
           (if p.pt_cache then Printf.sprintf "%.1f%%" (100.0 *. p.pt_hit_rate)
            else "-");
           string_of_int p.pt_shed;
           string_of_int p.pt_rejected;
           string_of_int p.pt_errors;
         ])
       points);
  let find clients cache =
    List.find (fun p -> p.pt_clients = clients && p.pt_cache = cache) points
  in
  let concurrent = find 8 true in
  let hit_rate_ok = concurrent.pt_hit_rate > 0.90 in
  (* the single-session baseline is one caller compiling every statement
     (the pre-server story: no shared cache, no sessions) *)
  let throughput_ok = concurrent.pt_throughput > ref_uncached in
  let no_errors = List.for_all (fun p -> p.pt_errors = 0) points in
  Bench_util.check
    (Printf.sprintf "8-client shared-cache hit rate %.1f%% > 90%%"
       (100.0 *. concurrent.pt_hit_rate))
    hit_rate_ok;
  Bench_util.check
    (Printf.sprintf
       "8-client throughput %.0f stmts/s > single-session baseline %.0f"
       concurrent.pt_throughput ref_uncached)
    throughput_ok;
  Bench_util.check "no statement errors across the sweep" no_errors;
  let oc = open_out out in
  Printf.fprintf oc
    "{\n\
    \  \"bench\": \"server\",\n\
    \  \"workers\": %d,\n\
    \  \"statements_per_client\": %d,\n\
    \  \"queries_in_mix\": %d,\n\
    \  \"single_caller\": {\"compile_every_time_stmts_per_s\": %.1f, \
     \"cached_stmts_per_s\": %.1f},\n\
    \  \"sweep\": [\n%s\n  ],\n\
    \  \"acceptance\": {\n\
    \    \"hit_rate_8_clients\": %.4f,\n\
    \    \"hit_rate_ok\": %b,\n\
    \    \"speedup_8_clients_vs_baseline\": %.2f,\n\
    \    \"throughput_ok\": %b,\n\
    \    \"no_errors\": %b\n\
    \  }\n\
     }\n"
    workers stmts (Array.length queries) ref_uncached ref_cached
    (String.concat ",\n" (List.map json_of_point points))
    concurrent.pt_hit_rate hit_rate_ok
    (concurrent.pt_throughput /. ref_uncached)
    throughput_ok no_errors;
  close_out oc;
  Printf.printf "wrote %s\n" out;
  if not (hit_rate_ok && no_errors) then exit 1
