(** The vectorized-executor sweep ([bench --qes]).

    Compares the tuple-at-a-time and batch-at-a-time QES engines on the
    same compiled plans: scan, filter, hash-join and hash-aggregation
    micro-benchmarks plus a 5-way join macro.  Each plan is compiled
    once; [SET vectorized] then flips the engine between timed runs, so
    the comparison isolates execution (no parse/rewrite/optimize noise)
    and both engines interpret byte-identical plans.  Every point is
    also cross-checked for bag equality before it is timed.  Writes
    [BENCH_qes.json] and checks the headline claim: the vectorized
    hash-join micro-benchmark runs at >= 2x the tuple-engine
    throughput in the same process. *)

let qes_db ~big_rows ~dim_rows () =
  let db = Starburst.create () in
  ignore
    (Starburst.run db
       "CREATE TABLE big (k INT NOT NULL, v INT, grp INT)");
  ignore (Starburst.run db "CREATE TABLE dim (k INT NOT NULL, w INT, grp INT)");
  let rng = Random.State.make [| 42 |] in
  Bench_util.insert_batch db "big"
    (List.init big_rows (fun i ->
         Printf.sprintf "(%d, %d, %d)" (i mod dim_rows)
           (Random.State.int rng 1000)
           (i mod 100)));
  (* grp fans out 100 ways, so the self-join on it emits 100 rows per
     probe: the join micro-benchmark is emission-bound, not scan-bound *)
  Bench_util.insert_batch db "dim"
    (List.init dim_rows (fun i ->
         Printf.sprintf "(%d, %d, %d)" i
           (Random.State.int rng 1000)
           (i mod (dim_rows / 100))));
  ignore (Starburst.run db "ANALYZE");
  db

type point = {
  pt_name : string;
  pt_rows : int;  (** result rows (identical under both engines) *)
  pt_tuple_ms : float;
  pt_vec_ms : float;
}

let speedup p = if p.pt_vec_ms > 0.0 then p.pt_tuple_ms /. p.pt_vec_ms else 0.0

let set_engine db on =
  ignore (Starburst.run db (if on then "SET vectorized = on" else "SET vectorized = off"))

let sorted_rows rows = List.sort Sb_storage.Tuple.compare rows

(* compile once, check bag equality across engines, then time both *)
let run_point db ~name ~reps text =
  let plan = Starburst.compile_text db text in
  set_engine db false;
  let tuple_rows = Starburst.run_plan db plan in
  set_engine db true;
  let vec_rows = Starburst.run_plan db plan in
  if
    not
      (List.equal
         (fun a b -> Sb_storage.Tuple.compare a b = 0)
         (sorted_rows tuple_rows) (sorted_rows vec_rows))
  then begin
    Printf.printf "  [DEVIATION] %s: engines disagree on the result bag\n" name;
    exit 1
  end;
  set_engine db false;
  let tuple_ms = Bench_util.time_ms ~reps (fun () -> Starburst.run_plan db plan) in
  set_engine db true;
  let vec_ms = Bench_util.time_ms ~reps (fun () -> Starburst.run_plan db plan) in
  { pt_name = name; pt_rows = List.length tuple_rows;
    pt_tuple_ms = tuple_ms; pt_vec_ms = vec_ms }

let json_of_point p =
  Printf.sprintf
    "    {\"name\": \"%s\", \"rows\": %d, \"tuple_ms\": %.2f, \"vec_ms\": \
     %.2f, \"speedup\": %.2f}"
    p.pt_name p.pt_rows p.pt_tuple_ms p.pt_vec_ms (speedup p)

let run ?(out = "BENCH_qes.json") ?(big_rows = 60_000) ?(dim_rows = 10_000)
    ?(reps = 7) () =
  Bench_util.header
    (Printf.sprintf
       "QES engine sweep: tuple-at-a-time vs vectorized, %d/%d-row tables, \
        median of %d"
       big_rows dim_rows reps);
  let db = qes_db ~big_rows ~dim_rows () in
  let points =
    [
      run_point db ~name:"scan" ~reps "SELECT k, v, grp FROM big";
      run_point db ~name:"filter" ~reps "SELECT k FROM big WHERE v < 500";
      run_point db ~name:"count-dim" ~reps "SELECT count(*) FROM dim";
      run_point db ~name:"count-big" ~reps "SELECT count(*) FROM big";
      run_point db ~name:"hash-join" ~reps
        "SELECT count(*) FROM dim a, dim b WHERE a.grp = b.grp";
      run_point db ~name:"join-project" ~reps
        "SELECT b.k, d.w FROM big b, dim d WHERE b.k = d.k AND d.w < 900";
      run_point db ~name:"aggregate" ~reps
        "SELECT grp, count(*), min(v) FROM big GROUP BY grp";
      run_point db ~name:"join-5way" ~reps
        "SELECT a.k, e.w FROM dim a, dim b, dim c, dim d, dim e WHERE a.k = \
         b.k AND b.k = c.k AND c.k = d.k AND d.k = e.k AND a.w < 800";
    ]
  in
  Bench_util.table
    ~cols:[ "benchmark"; "rows"; "tuple ms"; "vectorized ms"; "speedup" ]
    (List.map
       (fun p ->
         [
           p.pt_name;
           string_of_int p.pt_rows;
           Bench_util.ms p.pt_tuple_ms;
           Bench_util.ms p.pt_vec_ms;
           Printf.sprintf "%.2fx" (speedup p);
         ])
       points);
  let hj = List.find (fun p -> p.pt_name = "hash-join") points in
  let hj_ok = speedup hj >= 2.0 in
  Bench_util.check
    (Printf.sprintf "hash-join vectorized throughput %.2fx >= 2x tuple engine"
       (speedup hj))
    hj_ok;
  let oc = open_out out in
  Printf.fprintf oc
    "{\n\
    \  \"bench\": \"qes\",\n\
    \  \"big_rows\": %d,\n\
    \  \"dim_rows\": %d,\n\
    \  \"reps\": %d,\n\
    \  \"sweep\": [\n%s\n  ],\n\
    \  \"acceptance\": {\n\
    \    \"hash_join_speedup\": %.2f,\n\
    \    \"hash_join_ok\": %b\n\
    \  }\n\
     }\n"
    big_rows dim_rows reps
    (String.concat ",\n" (List.map json_of_point points))
    (speedup hj) hj_ok;
  close_out oc;
  Printf.printf "wrote %s\n" out;
  if not hj_ok then exit 1
