(** The experiment harness: regenerates every figure and measurable
    claim of the paper (see DESIGN.md section 5 and EXPERIMENTS.md).

    {v
    dune exec bench/main.exe            # all experiments
    dune exec bench/main.exe -- e6 e8   # a subset
    dune exec bench/main.exe -- micro   # Bechamel micro-benchmarks only
    dune exec bench/main.exe -- --analyze  # property-inference timing sweep
    v} *)

let experiments =
  [
    ("f1", "phases of query processing (Figure 1)", Experiments_rewrite.f1);
    ("f2", "the Figure 2 rewrite trace", Experiments_rewrite.f2);
    ("e1", "rewrite benefit on the paper query", Experiments_rewrite.e1);
    ("e2", "predicate push-down", Experiments_rewrite.e2);
    ("e3", "view merging", Experiments_rewrite.e3);
    ("e4", "rule-engine strategies and budget", Experiments_rewrite.e4);
    ("e5", "magic-sets rule for recursion", Experiments_rewrite.e5);
    ("e6", "join enumerator search space", Experiments_optimizer.e6);
    ("e7", "STAR inventory", Experiments_optimizer.e7);
    ("e8", "join methods", Experiments_optimizer.e8);
    ("e9", "evaluate-on-demand subqueries", Experiments_exec.e9);
    ("e10", "the OR operator", Experiments_exec.e10);
    ("e11", "access-method attachments", Experiments_exec.e11);
    ("e12", "storage managers", Experiments_exec.e12);
    ("e13", "cost of the outer-join extension", Experiments_exec.e13);
    ("e14", "distributed Bloom-join", Experiments_exec.e14);
    ("e15", "rule-class ablation", Experiments_rewrite.e15);
  ]

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: compiler-side throughput                 *)
(* ------------------------------------------------------------------ *)

let micro () =
  let open Bechamel in
  let open Toolkit in
  Bench_util.header "Micro-benchmarks (Bechamel): compiler phases, ns/run";
  let db = Bench_util.parts_db ~n_parts:300 ~fanout:3 () in
  let text =
    "SELECT q.partno, q.price FROM quotations q WHERE q.partno IN (SELECT \
     partno FROM inventory WHERE type = 'CPU') AND q.price < 50"
  in
  let ast = Sb_hydrogen.Parser.query_text text in
  let tests =
    Test.make_grouped ~name:"corona"
      [
        Test.make ~name:"parse"
          (Staged.stage (fun () -> Sb_hydrogen.Parser.query_text text));
        Test.make ~name:"build-qgm"
          (Staged.stage (fun () -> Starburst.build_qgm db ast));
        Test.make ~name:"rewrite"
          (Staged.stage (fun () ->
               let g = Starburst.build_qgm db ast in
               Starburst.rewrite db g));
        Test.make ~name:"optimize"
          (Staged.stage (fun () ->
               let g = Starburst.build_qgm db ast in
               ignore (Starburst.rewrite db g);
               Sb_optimizer.Generator.optimize db.Starburst.Corona.optimizer g));
        Test.make ~name:"execute"
          (Staged.stage
             (let plan = Starburst.compile_text db text in
              fun () -> Starburst.run_plan db plan));
      ]
  in
  let benchmark () =
    let instances = Instance.[ monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.25) ~kde:None () in
    Benchmark.all cfg instances tests
  in
  let analyze raw =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
    in
    Analyze.all ols Instance.monotonic_clock raw
  in
  let results = analyze (benchmark ()) in
  Hashtbl.fold (fun name result acc -> (name, result) :: acc) results []
  |> List.sort compare
  |> List.iter (fun (name, result) ->
         match Analyze.OLS.estimates result with
         | Some [ est ] -> Printf.printf "  %-24s %12.0f ns/run\n" name est
         | _ -> Printf.printf "  %-24s (no estimate)\n" name)

(* ------------------------------------------------------------------ *)
(* Verification sweep (--verify)                                       *)
(* ------------------------------------------------------------------ *)

(** Runs a corpus of representative queries with paranoid mode on:
    every rule firing is audited for QGM consistency, the optimizer's
    plan is validated against the catalog, and the rewritten compilation
    is differentially executed against the un-rewritten one.  Exits
    non-zero on the first unsoundness, so CI can gate on it. *)
(* shared by the verification (--verify) and inference (--analyze) sweeps *)
let sweep_corpus =
  [
    "SELECT q.partno, q.price FROM quotations q WHERE q.partno IN (SELECT \
     partno FROM inventory WHERE type = 'CPU') AND q.price < 50";
    "SELECT partno FROM inventory WHERE type = 'CPU' OR onhand_qty > 80";
    "SELECT i.type, count(*), min(q.price) FROM quotations q, inventory i \
     WHERE q.partno = i.partno GROUP BY i.type";
    "SELECT partno FROM quotations WHERE price > (SELECT min(price) FROM \
     quotations) ORDER BY partno";
    "SELECT DISTINCT supplier FROM quotations WHERE order_qty > 10";
    "SELECT partno FROM inventory UNION SELECT partno FROM quotations";
    "SELECT q.supplier FROM quotations q WHERE EXISTS (SELECT partno FROM \
     inventory i WHERE i.partno = q.partno AND i.onhand_qty < q.order_qty)";
  ]

let verify () =
  Bench_util.header
    "Verification sweep: rule audit + plan check + differential execution";
  let db = Bench_util.parts_db ~n_parts:300 ~fanout:3 () in
  db.Starburst.Corona.paranoid <- true;
  let corpus = sweep_corpus in
  let abbrev s = if String.length s <= 70 then s else String.sub s 0 67 ^ "..." in
  let failures = ref 0 in
  List.iter
    (fun text ->
      match Starburst.query db text with
      | rows -> Printf.printf "  ok       %-70s (%d rows)\n" (abbrev text) (List.length rows)
      | exception Sb_verify.Rule_audit.Unsound msg ->
        incr failures;
        Printf.printf "  UNSOUND  %-70s\n           %s\n" (abbrev text) msg
      | exception Sb_verify.Plan_check.Invalid_plan msg ->
        incr failures;
        Printf.printf "  INVALID  %-70s\n           %s\n" (abbrev text) msg)
    corpus;
  db.Starburst.Corona.paranoid <- false;
  if !failures > 0 then begin
    Printf.printf "%d verification failure(s)\n" !failures;
    exit 1
  end
  else Printf.printf "all %d queries verified\n" (List.length corpus)

(* ------------------------------------------------------------------ *)
(* Inference timing sweep (--analyze)                                  *)
(* ------------------------------------------------------------------ *)

(** Times property inference ([Sb_analysis.Infer.analyze]) on the
    rewritten QGM of each corpus query, reporting wall time and the
    number of inferred facts, so inference-cost regressions surface in
    CI logs next to the numbers they would inflate. *)
let analyze_sweep () =
  Bench_util.header "Inference sweep: per-query property inference cost";
  let db = Bench_util.parts_db ~n_parts:300 ~fanout:3 () in
  let catalog = db.Starburst.Corona.catalog in
  let abbrev s = if String.length s <= 64 then s else String.sub s 0 61 ^ "..." in
  let total = ref 0.0 in
  List.iter
    (fun text ->
      let g = Starburst.build_qgm db (Sb_hydrogen.Parser.query_text text) in
      let t0 = Unix.gettimeofday () in
      let inf = Sb_analysis.Infer.analyze ~trust_stats:true ~catalog g in
      let dt = Unix.gettimeofday () -. t0 in
      total := !total +. dt;
      Printf.printf "  %8.1fus  %3d fact(s)  %s\n" (dt *. 1e6)
        (Sb_analysis.Infer.fact_count inf)
        (abbrev text))
    sweep_corpus;
  Printf.printf "total inference time: %.1fus over %d queries\n"
    (!total *. 1e6)
    (List.length sweep_corpus)

(* ------------------------------------------------------------------ *)
(* Chaos sweep (--chaos SEED)                                          *)
(* ------------------------------------------------------------------ *)

(** Runs the verification corpus with a seeded 5% storage fault
    probability: every query must complete, degrade, or fail with a
    structured error — never crash.  Reports ok / degraded / failed
    counts plus injection and retry totals. *)
let chaos seed =
  Bench_util.header
    (Printf.sprintf
       "Chaos sweep: seed %d, 5%% storage fault probability, capped retries"
       seed);
  let db = Bench_util.parts_db ~n_parts:300 ~fanout:3 () in
  let faults = Starburst.Faults.create ~seed () in
  Starburst.Faults.fail_prob faults 0.05;
  Starburst.Corona.set_faults db faults;
  let corpus =
    [
      "SELECT q.partno, q.price FROM quotations q WHERE q.partno IN (SELECT \
       partno FROM inventory WHERE type = 'CPU') AND q.price < 50";
      "SELECT partno FROM inventory WHERE type = 'CPU' OR onhand_qty > 80";
      "SELECT i.type, count(*), min(q.price) FROM quotations q, inventory i \
       WHERE q.partno = i.partno GROUP BY i.type";
      "SELECT partno FROM quotations WHERE price > (SELECT min(price) FROM \
       quotations) ORDER BY partno";
      "SELECT DISTINCT supplier FROM quotations WHERE order_qty > 10";
      "SELECT partno FROM inventory UNION SELECT partno FROM quotations";
      "SELECT q.supplier FROM quotations q WHERE EXISTS (SELECT partno FROM \
       inventory i WHERE i.partno = q.partno AND i.onhand_qty < q.order_qty)";
    ]
  in
  let abbrev s = if String.length s <= 66 then s else String.sub s 0 63 ^ "..." in
  let ok = ref 0 and degraded = ref 0 and failed = ref 0 in
  List.iter
    (fun text ->
      match Starburst.run db text with
      | _ ->
        (match Starburst.Corona.last_degraded db with
        | Some reason ->
          incr degraded;
          Printf.printf "  degraded %-66s\n           %s\n" (abbrev text) reason
        | None ->
          incr ok;
          Printf.printf "  ok       %-66s\n" (abbrev text))
      | exception Starburst.Error e ->
        incr failed;
        Printf.printf "  failed   %-66s\n           %s\n" (abbrev text)
          (Starburst.Err.to_string e))
    corpus;
  Starburst.Corona.set_faults db Starburst.Faults.none;
  Printf.printf
    "chaos: %d ok, %d degraded, %d failed (structured); %d faults injected, \
     %d retried\n"
    !ok !degraded !failed
    (Starburst.Faults.injected faults)
    (Starburst.Faults.retried faults)

(* ------------------------------------------------------------------ *)
(* Stage-level trace export (--trace-json FILE)                        *)
(* ------------------------------------------------------------------ *)

(** Runs the standard pipeline query with tracing enabled and writes the
    span buffer as JSON, so BENCH_*.json runs carry stage-level timings
    (parse, build, rewrite with per-rule firings, optimize with STAR
    expansion counts, refine, execute). *)
let trace_json path =
  let db = Bench_util.parts_db ~n_parts:300 ~fanout:3 () in
  let tracer = Sb_obs.Trace.create () in
  Starburst.set_tracer db tracer;
  let text =
    "SELECT q.partno, q.price FROM quotations q WHERE q.partno IN (SELECT \
     partno FROM inventory WHERE type = 'CPU') AND q.price < 50"
  in
  ignore (Starburst.query db text);
  match open_out path with
  | oc ->
    output_string oc (Sb_obs.Trace.to_json tracer);
    output_char oc '\n';
    close_out oc;
    Printf.printf "wrote %d spans to %s\n"
      (List.length (Sb_obs.Trace.spans tracer))
      path
  | exception Sys_error msg ->
    Printf.eprintf "error: cannot write trace file: %s\n" msg;
    exit 1

(** [--fuzz N --seed S]: N deterministic differential fuzz cases (see
    lib/fuzz); prints the harness report plus its metrics and exits
    non-zero on any discrepancy, so CI can gate on the sweep. *)
let fuzz ~cases ~seed =
  Bench_util.header
    (Printf.sprintf "Fuzz sweep: %d cases, seed %d, differential + \
                     metamorphic oracles" cases seed);
  let metrics = Sb_obs.Metrics.create () in
  let stats =
    Sb_fuzz.Harness.run ~metrics ~out_dir:"_fuzz_failures"
      ~log:print_endline ~seed ~n:cases ()
  in
  print_string (Sb_fuzz.Harness.report stats);
  print_string (Sb_obs.Metrics.dump metrics);
  if stats.Sb_fuzz.Harness.st_failures <> [] then
    exit (min 125 (List.length stats.Sb_fuzz.Harness.st_failures))

(* ------------------------------------------------------------------ *)
(* Crash-recovery bench (--crash)                                      *)
(* ------------------------------------------------------------------ *)

(** [--crash]: redo time as the committed log grows.  Recovery replays
    every record since the last checkpoint, so with checkpointing off
    the time scales with transaction count, while [SET wal_checkpoint]
    keeps it flat — the experiment shows both columns side by side. *)
let crash_bench () =
  Bench_util.header
    "Crash recovery: redo time vs committed transactions (WAL replay)";
  let case ~txns ~checkpoint =
    let db = Starburst.create () in
    let run s = ignore (Starburst.run db s) in
    run "CREATE TABLE account (k INT UNIQUE, balance INT)";
    if checkpoint > 0 then
      run (Printf.sprintf "SET wal_checkpoint = %d" checkpoint);
    for i = 1 to txns do
      run (Printf.sprintf "INSERT INTO account VALUES (%d, %d)" i (i mod 97))
    done;
    let catalog = db.Starburst.Corona.catalog in
    let stable = (Sb_storage.Wal.stats catalog.Sb_storage.Catalog.wal).Sb_storage.Wal.s_stable in
    (* one untimed run for the redo counters, then median-of-3 timing *)
    Sb_storage.Recovery.crash ~catalog;
    let st = Starburst.Corona.recover db in
    let ms =
      Bench_util.time_ms ~reps:3 (fun () ->
          Sb_storage.Recovery.crash ~catalog;
          Starburst.Corona.recover db)
    in
    (match Starburst.run db "SELECT count(*) FROM account" with
    | Starburst.Rows { rows = [ [| Sb_storage.Value.Int n |] ]; _ } when n = txns -> ()
    | _ -> Printf.printf "  [DEVIATION] %d txns: wrong row count after recovery\n" txns);
    (stable, st.Sb_storage.Recovery.r_redone, ms)
  in
  let rows =
    List.map
      (fun txns ->
        let stable, redone, ms = case ~txns ~checkpoint:0 in
        let _, redone_ck, ms_ck = case ~txns ~checkpoint:256 in
        [ Bench_util.itos txns; Bench_util.itos stable;
          Bench_util.itos redone; Bench_util.ms ms;
          Bench_util.itos redone_ck; Bench_util.ms ms_ck ])
      [ 200; 800; 3200 ]
  in
  Bench_util.table
    ~cols:[ "txns"; "log records"; "redone"; "recover ms";
            "redone (ckpt)"; "recover ms (ckpt)" ]
    rows;
  print_endline
    "  (checkpoint every 256 commits bounds redo to the tail of the log)"

let () =
  (* --server [--server-stmts N]: the concurrent multi-session sweep;
     independent of the experiment list, so it dispatches first *)
  (let argv = Array.to_list Sys.argv |> List.tl in
   if List.mem "--server" argv then begin
     let rec intflag_of name = function
       | flag :: n :: _ when flag = name -> int_of_string_opt n
       | _ :: rest -> intflag_of name rest
       | [] -> None
     in
     print_endline
       "Starburst experiment harness (paper: SIGMOD 1989, pp. 377-388)";
     Bench_server.run
       ?stmts:(intflag_of "--server-stmts" argv)
       ?workers:(intflag_of "--server-workers" argv)
       ();
     exit 0
   end);
  (* --crash: the recovery-time experiment, likewise standalone *)
  (let argv = Array.to_list Sys.argv |> List.tl in
   if List.mem "--crash" argv then begin
     print_endline
       "Starburst experiment harness (paper: SIGMOD 1989, pp. 377-388)";
     crash_bench ();
     exit 0
   end);
  (* --qes: the tuple-vs-vectorized engine sweep, likewise standalone *)
  (let argv = Array.to_list Sys.argv |> List.tl in
   if List.mem "--qes" argv then begin
     print_endline
       "Starburst experiment harness (paper: SIGMOD 1989, pp. 377-388)";
     Bench_qes.run ();
     exit 0
   end);
  let rec split_flags acc trace verify_only analyze_only chaos_seed fz sd =
    function
    | [] -> (List.rev acc, trace, verify_only, analyze_only, chaos_seed, fz, sd)
    | "--trace-json" :: path :: rest ->
      split_flags acc (Some path) verify_only analyze_only chaos_seed fz sd rest
    | "--verify" :: rest ->
      split_flags acc trace true analyze_only chaos_seed fz sd rest
    | "--analyze" :: rest ->
      split_flags acc trace verify_only true chaos_seed fz sd rest
    | "--chaos" :: seed :: rest -> (
      match int_of_string_opt seed with
      | Some s ->
        split_flags acc trace verify_only analyze_only (Some s) fz sd rest
      | None ->
        Printf.eprintf "error: --chaos expects an integer seed, got %s\n" seed;
        exit 2)
    | "--fuzz" :: n :: rest -> (
      match int_of_string_opt n with
      | Some n when n > 0 ->
        split_flags acc trace verify_only analyze_only chaos_seed (Some n) sd rest
      | _ ->
        Printf.eprintf "error: --fuzz expects a positive case count, got %s\n" n;
        exit 2)
    | "--seed" :: s :: rest -> (
      match int_of_string_opt s with
      | Some s ->
        split_flags acc trace verify_only analyze_only chaos_seed fz s rest
      | None ->
        Printf.eprintf "error: --seed expects an integer, got %s\n" s;
        exit 2)
    | a :: rest ->
      split_flags (a :: acc) trace verify_only analyze_only chaos_seed fz sd rest
  in
  let args, trace_path, verify_only, analyze_only, chaos_seed, fuzz_cases, seed =
    split_flags [] None false false None None 42
      (Array.to_list Sys.argv |> List.tl)
  in
  Option.iter (fun cases -> fuzz ~cases ~seed; exit 0) fuzz_cases;
  let args = List.map String.lowercase_ascii args in
  let wanted name = args = [] || List.mem name args in
  print_endline "Starburst experiment harness (paper: SIGMOD 1989, pp. 377-388)";
  if (verify_only || analyze_only || chaos_seed <> None) && args = [] then begin
    if verify_only then verify ();
    if analyze_only then analyze_sweep ();
    Option.iter chaos chaos_seed
  end
  else begin
    List.iter
      (fun (name, _descr, f) -> if wanted name then f ())
      experiments;
    if args = [] || List.mem "micro" args then micro ();
    if verify_only then verify ();
    if analyze_only then analyze_sweep ();
    Option.iter chaos chaos_seed
  end;
  Option.iter trace_json trace_path
