(** A named, leveled mutex.

    [Lock.t] is the only sanctioned way to own a [Mutex.t] outside
    [lib/conc] (the CI lint enforces this).  Disarmed it costs one
    atomic read per operation over the bare mutex; armed, every
    acquisition and release flows through {!Discipline}, which checks
    level ordering, re-entrancy and unlock-without-lock, and records
    the acquisition edge for cycle analysis.

    The discipline check runs {e before} [Mutex.lock]: a re-entrant
    acquisition in strict mode raises {!Discipline.Violation} instead
    of self-deadlocking on OCaml's non-reentrant mutex. *)

type t = {
  l_id : int;
  l_name : string;
  l_level : int;
  l_mutex : Mutex.t;
}

let next_id = Atomic.make 0

let create ~name ~level =
  {
    l_id = Atomic.fetch_and_add next_id 1;
    l_name = name;
    l_level = level;
    l_mutex = Mutex.create ();
  }

let name t = t.l_name
let level t = t.l_level

let lock t =
  if Discipline.armed () then
    Discipline.acquiring ~id:t.l_id ~name:t.l_name ~level:t.l_level;
  Mutex.lock t.l_mutex

(* [Discipline.released] runs first: unlocking an unheld [Mutex.t]
   raises [Sys_error] before we could diagnose it. *)
let unlock t =
  if Discipline.armed () then Discipline.released ~id:t.l_id ~name:t.l_name;
  Mutex.unlock t.l_mutex

let with_lock t f =
  lock t;
  Fun.protect ~finally:(fun () -> unlock t) f

(** Condition variables bound to a {!Lock.t}.  [wait] tells the
    discipline checker the lock is released for the duration of the
    wait and re-acquired on wakeup, mirroring what [Condition.wait]
    does to the underlying mutex. *)
module Cond = struct
  type cond = Condition.t

  let create () = Condition.create ()

  let wait c t =
    if Discipline.armed () then Discipline.released ~id:t.l_id ~name:t.l_name;
    Condition.wait c t.l_mutex;
    if Discipline.armed () then
      Discipline.acquiring ~id:t.l_id ~name:t.l_name ~level:t.l_level

  let signal = Condition.signal
  let broadcast = Condition.broadcast
end
