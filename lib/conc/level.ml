(** The system-wide lock hierarchy.

    Every {!Lock.t} and {!Rwlock.t} carries a {e level}; the discipline
    checker ({!Discipline}) enforces that a domain only ever acquires a
    lock whose level is strictly greater than the level of every lock
    it already holds.  Acquisition order therefore always runs downward
    through this table, which makes deadlock between leveled locks
    impossible by construction — and makes any violation a one-line
    diagnosis naming both locks.

    The table is the single source of truth for the hierarchy (DESIGN
    §6.8 renders it with the guards-what column).  Outermost locks have
    the lowest levels:

    {v
    10  server.admission    admission counters, session table
    15  server.pool         the worker pool's job queue
    20  server.statements   the statement rwlock (readers | one writer)
    30  server.session      one session's statement ordering
    40  storage.catalog     table/view maps, the epoch counter
    50  storage.buffer_pool frame cache, file table, I/O accounting
    60  storage.wal         the log's stable/volatile regions
    70  core.plan_cache     one shard's hash table + LRU list
    80  obs.trace           a tracer's ring buffer and span stack
    85  resil.faults        a fault plan's ordinals and PRNG
    90  obs.metrics         the global metrics registry
    v}

    Leaving gaps keeps room for locks a future subsystem slots in
    between existing layers without renumbering. *)

let server_admission = 10
let server_pool = 15
let server_statements = 20
let server_session = 30
let catalog = 40
let buffer_pool = 50
let wal = 60
let plan_cache = 70
let trace = 80
let faults = 85
let metrics = 90
