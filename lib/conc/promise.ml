(** A single-assignment cell with blocking [await], extracted from
    [sb_server.ml] so the server and its tests share one
    implementation.

    The internal mutex is a strict leaf — no code runs under it beyond
    reading/writing the cell — so it is deliberately {e not} registered
    with the discipline checker: promises are resolved from arbitrary
    lock contexts (worker domains finishing a job while the submitter
    holds session locks), and a leaf that never nests cannot invert. *)

type 'a t = {
  p_lock : Mutex.t;
  p_cond : Condition.t;
  mutable p_value : 'a option;
}

let create () =
  { p_lock = Mutex.create (); p_cond = Condition.create (); p_value = None }

(** [resolve p v] fulfils the promise; subsequent resolves are ignored
    (first writer wins). *)
let resolve p v =
  Mutex.lock p.p_lock;
  (match p.p_value with
  | None ->
    p.p_value <- Some v;
    Condition.broadcast p.p_cond
  | Some _ -> ());
  Mutex.unlock p.p_lock

let resolved v =
  {
    p_lock = Mutex.create ();
    p_cond = Condition.create ();
    p_value = Some v;
  }

(** Non-blocking read: [Some v] once resolved. *)
let peek p =
  Mutex.lock p.p_lock;
  let v = p.p_value in
  Mutex.unlock p.p_lock;
  v

(** Blocks until the promise is resolved and returns its value. *)
let await p =
  Mutex.lock p.p_lock;
  let rec loop () =
    match p.p_value with
    | Some v ->
      Mutex.unlock p.p_lock;
      v
    | None ->
      Condition.wait p.p_cond p.p_lock;
      loop ()
  in
  loop ()
