(** A named, leveled writer-preferring readers/writer lock, extracted
    from [sb_server.ml].

    Writers are preferred so a DDL stream cannot be starved by a
    steady read load: arriving readers queue behind any waiting
    writer.

    Discipline integration treats the rwlock as one leveled lock for
    ordering purposes — holding it in either mode pins its level on
    the domain's held stack, and both modes record acquisition edges.
    Concurrent readers are fine: held stacks are per domain, so many
    domains holding the read side simultaneously never trips the
    re-entrancy check (one domain read-locking twice does, as it
    can deadlock against a waiting writer sandwiched between the two
    acquisitions). *)

type t = {
  r_id : int;
  r_name : string;
  r_level : int;
  m : Mutex.t;
  c : Condition.t;
  mutable readers : int;
  mutable writer : bool;
  mutable waiting_writers : int;
}

let next_id = Atomic.make 0

let create ~name ~level =
  {
    r_id = Atomic.fetch_and_add next_id 1;
    r_name = name;
    r_level = level;
    m = Mutex.create ();
    c = Condition.create ();
    readers = 0;
    writer = false;
    waiting_writers = 0;
  }

let name t = t.r_name
let level t = t.r_level

(** [(readers, writer, waiting_writers)] — a racy snapshot for tests
    and diagnostics. *)
let stats t =
  Mutex.lock t.m;
  let s = (t.readers, t.writer, t.waiting_writers) in
  Mutex.unlock t.m;
  s

let rd_lock t =
  if Discipline.armed () then
    Discipline.acquiring ~id:t.r_id ~name:t.r_name ~level:t.r_level;
  Mutex.lock t.m;
  while t.writer || t.waiting_writers > 0 do
    Condition.wait t.c t.m
  done;
  t.readers <- t.readers + 1;
  Mutex.unlock t.m

let rd_unlock t =
  if Discipline.armed () then Discipline.released ~id:t.r_id ~name:t.r_name;
  Mutex.lock t.m;
  t.readers <- t.readers - 1;
  if t.readers = 0 then Condition.broadcast t.c;
  Mutex.unlock t.m

let wr_lock t =
  if Discipline.armed () then
    Discipline.acquiring ~id:t.r_id ~name:t.r_name ~level:t.r_level;
  Mutex.lock t.m;
  t.waiting_writers <- t.waiting_writers + 1;
  while t.writer || t.readers > 0 do
    Condition.wait t.c t.m
  done;
  t.waiting_writers <- t.waiting_writers - 1;
  t.writer <- true;
  Mutex.unlock t.m

let wr_unlock t =
  if Discipline.armed () then Discipline.released ~id:t.r_id ~name:t.r_name;
  Mutex.lock t.m;
  t.writer <- false;
  Condition.broadcast t.c;
  Mutex.unlock t.m

let with_read t f =
  rd_lock t;
  Fun.protect ~finally:(fun () -> rd_unlock t) f

let with_write t f =
  wr_lock t;
  Fun.protect ~finally:(fun () -> wr_unlock t) f
