(** Lock-discipline checking: leveled-lock ordering, per-domain held
    stacks, Eraser-style lockset race detection, and deadlock-cycle
    analysis over the observed lock-acquisition graph.

    The checker is a zero-cost no-op by default, like [Sb_obs.Trace]:
    every instrumented operation ({!Lock.lock}, {!Rwlock.with_read},
    {!access}) pays one branch on the {!armed} flag and nothing else.
    Armed (tests, [fuzz_main --races], [STARBURST_LOCKCHECK=1]) it
    maintains, per domain, the stack of locks currently held and
    enforces:

    - {b level ordering} — acquiring a lock whose {!Level} is not
      strictly greater than every currently-held lock's level is a
      diagnosed inversion naming both locks;
    - {b re-entrancy} — acquiring a lock this domain already holds
      (which would self-deadlock on OCaml's non-reentrant [Mutex]) is
      diagnosed {e before} the blocking call, so strict mode surfaces
      an exception instead of a hang;
    - {b unlock-without-lock} — releasing a lock the domain does not
      hold.

    Independently it refines, per instrumented shared field, a
    {e candidate lockset} — the intersection of the locks held at every
    access once a second domain has touched the field (the Eraser
    algorithm, Savage et al. 1997).  A field whose candidate set
    empties while writes are involved is reported with both access
    sites and the domains involved.

    Finally, every armed acquisition records an edge
    [held-lock → acquired-lock] in a global acquisition graph;
    {!cycles} runs cycle detection over it, reporting potential
    deadlocks that never fired.

    Caveats: held stacks are {e per domain} ([Domain.DLS]), so the
    checker understands domains, not sys-threads — the TCP front end's
    thread-per-connection loop must run with the checker disarmed.
    Arm and disarm only from quiescent points (no instrumented lock
    held anywhere), or the stacks start out wrong. *)

type kind = Order | Reentry | Unlock | Race

let kind_name = function
  | Order -> "lock-order inversion"
  | Reentry -> "re-entrant acquisition"
  | Unlock -> "unlock without lock"
  | Race -> "lockset race"

type diag = {
  d_kind : kind;
  d_subject : string;  (** the lock or field the diagnosis is about *)
  d_msg : string;
}

exception Violation of diag

(* ------------------------------------------------------------------ *)
(* State                                                               *)
(* ------------------------------------------------------------------ *)

(* one entry of a domain's held-lock stack *)
type held = { h_id : int; h_name : string; h_level : int }

let dls : held list ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref [])
let armed_flag = Atomic.make false
let strict_flag = Atomic.make false
let armed () = Atomic.get armed_flag

(* Global detector state, guarded by [mu] — the one raw mutex of the
   system that cannot check itself.  It is a strict leaf: no code path
   acquires anything while holding it, so it can be taken while holding
   any instrumented lock without risking deadlock. *)
let mu = Mutex.create ()

let with_mu f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

let diag_seen : (string, unit) Hashtbl.t = Hashtbl.create 16
let diag_list : diag list ref = ref [] (* newest first, deduplicated *)

(* lock name -> declared level, as observed at first armed acquisition *)
let registry : (string, int) Hashtbl.t = Hashtbl.create 16

(* acquisition graph: (held lock name, acquired lock name) *)
let edge_tbl : (string * string, unit) Hashtbl.t = Hashtbl.create 64

(* Eraser per-field state.  [fs_cand = None] means "all locks" — the
   candidate set is only materialized once the field leaves its
   initial exclusive (single-domain) state, so single-threaded
   initialization without locks never poisons the refinement. *)
type fstate = {
  mutable fs_excl : int option;  (** owning domain while exclusive *)
  mutable fs_cand : (int * string) list option;  (** candidate lockset *)
  mutable fs_domains : int list;  (** sorted distinct accessor domains *)
  mutable fs_written : bool;
  mutable fs_last_site : string;
  mutable fs_last_domain : int;
  mutable fs_reported : bool;
}

let fields : (string, fstate) Hashtbl.t = Hashtbl.create 32

(* monotone event counters, exported as sb_lock_* / sb_race_* metrics *)
let n_acquisitions = ref 0
let n_order = ref 0
let n_reentry = ref 0
let n_unlock = ref 0
let n_accesses = ref 0
let n_races = ref 0

(* ------------------------------------------------------------------ *)
(* Arming                                                              *)
(* ------------------------------------------------------------------ *)

let arm ?(strict = false) () =
  Atomic.set strict_flag strict;
  Atomic.set armed_flag true

let disarm () = Atomic.set armed_flag false

(** Arms the checker when [STARBURST_LOCKCHECK] is set ([1]/[on]/[true];
    [strict] additionally raises {!Violation} at the violation site). *)
let arm_from_env () =
  match Sys.getenv_opt "STARBURST_LOCKCHECK" with
  | Some ("1" | "on" | "true" | "yes") -> arm ()
  | Some "strict" -> arm ~strict:true ()
  | _ -> ()

(** Clears every report, the graph, the field table and the counters —
    plus the calling domain's own held stack.  Call from a quiescent
    point only. *)
let reset () =
  Domain.DLS.get dls := [];
  with_mu (fun () ->
      Hashtbl.reset diag_seen;
      diag_list := [];
      Hashtbl.reset registry;
      Hashtbl.reset edge_tbl;
      Hashtbl.reset fields;
      n_acquisitions := 0;
      n_order := 0;
      n_reentry := 0;
      n_unlock := 0;
      n_accesses := 0;
      n_races := 0)

let diags () = List.rev !diag_list

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)
(* ------------------------------------------------------------------ *)

let counter_of = function
  | Order -> n_order
  | Reentry -> n_reentry
  | Unlock -> n_unlock
  | Race -> n_races

let report kind subject msg =
  let d = { d_kind = kind; d_subject = subject; d_msg = msg } in
  with_mu (fun () ->
      incr (counter_of kind);
      if not (Hashtbl.mem diag_seen msg) then begin
        Hashtbl.replace diag_seen msg ();
        diag_list := d :: !diag_list
      end);
  if Atomic.get strict_flag then raise (Violation d)

(* ------------------------------------------------------------------ *)
(* Lock instrumentation (called by Lock / Rwlock when armed)           *)
(* ------------------------------------------------------------------ *)

(** Called {e before} the blocking acquisition, so strict mode can
    refuse a self-deadlocking re-entrant lock instead of hanging. *)
let acquiring ~id ~name ~level =
  let st = Domain.DLS.get dls in
  let held = !st in
  with_mu (fun () ->
      incr n_acquisitions;
      if not (Hashtbl.mem registry name) then Hashtbl.replace registry name level;
      List.iter
        (fun h ->
          if h.h_name <> name then Hashtbl.replace edge_tbl (h.h_name, name) ())
        held);
  (if List.exists (fun h -> h.h_id = id) held then
     report Reentry name
       (Fmt.str
          "re-entrant acquisition of %s (level %d): this domain already \
           holds it"
          name level)
   else
     match held with
     | [] -> ()
     | h0 :: _ ->
       let worst =
         List.fold_left
           (fun a h -> if h.h_level >= a.h_level then h else a)
           h0 held
       in
       if level <= worst.h_level then
         report Order name
           (Fmt.str
              "lock-order inversion: acquiring %s (level %d) while holding \
               %s (level %d)"
              name level worst.h_name worst.h_level));
  st := { h_id = id; h_name = name; h_level = level } :: !st

let released ~id ~name =
  let st = Domain.DLS.get dls in
  if List.exists (fun h -> h.h_id = id) !st then begin
    let rec drop = function
      | [] -> []
      | h :: rest -> if h.h_id = id then rest else h :: drop rest
    in
    st := drop !st
  end
  else
    report Unlock name
      (Fmt.str "unlock of %s by a domain that does not hold it" name)

(** The calling domain's held stack, innermost first (diagnostics,
    tests). *)
let held_locks () = List.map (fun h -> h.h_name) !(Domain.DLS.get dls)

(* ------------------------------------------------------------------ *)
(* Eraser lockset refinement                                           *)
(* ------------------------------------------------------------------ *)

let intersect cand now =
  List.filter (fun (id, _) -> List.exists (fun (id', _) -> id' = id) now) cand

(** Records one access to the instrumented shared [field] from source
    location [site].  No-op unless {!armed}. *)
let access ~field ~site ~write =
  if armed () then begin
    let now =
      List.map (fun h -> (h.h_id, h.h_name)) !(Domain.DLS.get dls)
    in
    let dom = (Domain.self () :> int) in
    let race =
      with_mu (fun () ->
          incr n_accesses;
          match Hashtbl.find_opt fields field with
          | None ->
            Hashtbl.replace fields field
              {
                fs_excl = Some dom;
                fs_cand = None;
                fs_domains = [ dom ];
                fs_written = write;
                fs_last_site = site;
                fs_last_domain = dom;
                fs_reported = false;
              };
            None
          | Some fs ->
            let prev_site = fs.fs_last_site
            and prev_dom = fs.fs_last_domain in
            fs.fs_written <- fs.fs_written || write;
            fs.fs_last_site <- site;
            fs.fs_last_domain <- dom;
            if not (List.mem dom fs.fs_domains) then
              fs.fs_domains <- List.sort compare (dom :: fs.fs_domains);
            (match fs.fs_excl with
            | Some d when d = dom -> None (* exclusive: no refinement *)
            | _ ->
              fs.fs_excl <- None;
              fs.fs_cand <-
                Some
                  (match fs.fs_cand with
                  | None -> now
                  | Some cand -> intersect cand now);
              if fs.fs_cand = Some [] && fs.fs_written && not fs.fs_reported
              then begin
                fs.fs_reported <- true;
                Some (prev_site, prev_dom, fs.fs_domains)
              end
              else None))
    in
    match race with
    | None -> ()
    | Some (prev_site, prev_dom, doms) ->
      report Race field
        (Fmt.str
           "lockset race on %s: candidate lockset empty after %s at %s \
            (domain %d) vs access at %s (domain %d); domains involved: %s"
           field
           (if write then "write" else "read")
           site dom prev_site prev_dom
           (String.concat ", " (List.map string_of_int doms)))
  end

(* ------------------------------------------------------------------ *)
(* Graph queries                                                       *)
(* ------------------------------------------------------------------ *)

(** Observed acquisition edges [(held, acquired)], sorted. *)
let edges () =
  with_mu (fun () -> Hashtbl.fold (fun e () acc -> e :: acc) edge_tbl [])
  |> List.sort compare

(** Cycles in the acquisition graph — potential deadlocks that never
    fired.  Each cycle is its node list rotated so the least name comes
    first; the result is sorted and duplicate rotations are removed. *)
let cycles () =
  let es = edges () in
  let nodes =
    List.concat_map (fun (a, b) -> [ a; b ]) es |> List.sort_uniq compare
  in
  let succ n = List.filter_map (fun (a, b) -> if a = n then Some b else None) es in
  let seen = Hashtbl.create 8 in
  let out = ref [] in
  (* [path] is the current DFS stack, innermost first *)
  let rec dfs path node =
    if List.mem node path then begin
      let rec take acc = function
        | [] -> acc
        | x :: _ when x = node -> x :: acc
        | x :: rest -> take (x :: acc) rest
      in
      let cyc = take [] path in
      let least = List.fold_left min (List.hd cyc) cyc in
      let rec rotate c =
        if List.hd c = least then c else rotate (List.tl c @ [ List.hd c ])
      in
      let cyc = rotate cyc in
      let key = String.concat ">" cyc in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.replace seen key ();
        out := cyc :: !out
      end
    end
    else List.iter (dfs (node :: path)) (succ node)
  in
  List.iter (dfs []) nodes;
  List.sort compare !out

(** The acquisition graph in Graphviz DOT form (sorted, suitable as a
    CI artifact). *)
let graph_dot () =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "digraph lock_acquisition {\n";
  Buffer.add_string buf "  rankdir=TB;\n";
  let levels =
    with_mu (fun () -> Hashtbl.fold (fun n l acc -> (n, l) :: acc) registry [])
    |> List.sort compare
  in
  List.iter
    (fun (name, level) ->
      Buffer.add_string buf
        (Printf.sprintf "  \"%s\" [label=\"%s\\nlevel %d\"];\n" name name level))
    levels;
  List.iter
    (fun (a, b) ->
      Buffer.add_string buf (Printf.sprintf "  \"%s\" -> \"%s\";\n" a b))
    (edges ());
  Buffer.add_string buf "}\n";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Reports and counters                                                *)
(* ------------------------------------------------------------------ *)

(** Counter snapshot in metric form ([sb_lock_*] / [sb_race_*]). *)
let metric_counters () =
  with_mu (fun () ->
      [
        ("sb_lock_acquisitions_total", !n_acquisitions);
        ("sb_lock_order_violations_total", !n_order);
        ("sb_lock_reentrant_total", !n_reentry);
        ("sb_lock_unlock_unheld_total", !n_unlock);
        ("sb_lock_names_total", Hashtbl.length registry);
        ("sb_lock_edges_total", Hashtbl.length edge_tbl);
        ("sb_race_accesses_total", !n_accesses);
        ("sb_race_fields_total", Hashtbl.length fields);
        ("sb_race_reports_total", !n_races);
      ])

(** The deterministic discipline report: observed hierarchy, the sorted
    acquisition graph, cycle count, instrumented fields, and every
    (deduplicated, sorted) diagnosis.  Contains no event counts or
    timings, so two runs over the same workload render byte-identical
    reports — CI diffs it. *)
let report_text () =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "lock-discipline report\n";
  add "  armed: %s\n" (if armed () then "yes" else "no");
  let hierarchy =
    with_mu (fun () -> Hashtbl.fold (fun n l acc -> (l, n) :: acc) registry [])
    |> List.sort compare
  in
  add "  hierarchy (level  lock):\n";
  List.iter (fun (l, n) -> add "    %3d  %s\n" l n) hierarchy;
  add "  acquisition-order edges (held -> acquired):\n";
  List.iter (fun (a, b) -> add "    %s -> %s\n" a b) (edges ());
  let cys = cycles () in
  add "  potential deadlock cycles: %d\n" (List.length cys);
  List.iter (fun c -> add "    %s -> %s\n" (String.concat " -> " c) (List.hd c)) cys;
  let fnames =
    with_mu (fun () -> Hashtbl.fold (fun f _ acc -> f :: acc) fields [])
    |> List.sort compare
  in
  add "  instrumented fields: %d\n" (List.length fnames);
  List.iter (fun f -> add "    %s\n" f) fnames;
  let ds = diags () in
  let by_kind k = List.filter (fun d -> d.d_kind = k) ds in
  let dump_kind k =
    let sorted =
      List.sort compare (List.map (fun d -> d.d_msg) (by_kind k))
    in
    add "  %s reports: %d\n" (kind_name k) (List.length sorted);
    List.iter (fun m -> add "    %s\n" m) sorted
  in
  dump_kind Race;
  dump_kind Order;
  dump_kind Reentry;
  dump_kind Unlock;
  Buffer.contents buf
