(** Catalog / statement linter.

    Unlike {!Check} (hard consistency) and {!Plan_check} (plan
    validity), lints flag things that are {e legal but suspicious}:
    dead quantifiers, predicates that constant-fold to FALSE, shadowed
    output columns, statistics the optimizer will silently fall back
    from.  Diagnostics carry a severity and a QGM box (or table)
    location so the shell's [\check] can render them actionably. *)

open Sb_storage
module Ast = Sb_hydrogen.Ast
open Sb_qgm

type severity = Info | Warning

type location = Box of Qgm.box_id | Table of string

type diag = {
  d_severity : severity;
  d_loc : location;
  d_code : string;
  d_msg : string;
}

let severity_name = function Info -> "info" | Warning -> "warning"

let diag_to_string d =
  Fmt.str "%s[%s] %s: %s"
    (severity_name d.d_severity)
    d.d_code
    (match d.d_loc with
    | Box id -> Fmt.str "box %d" id
    | Table t -> Fmt.str "table %s" t)
    d.d_msg

(* Constant truth value of an expression, if decidable without a row.
   Deliberately shallow: literals, comparisons of literals, and
   AND/OR/NOT over those — the lint should never guess. *)
let rec const_truth (e : Qgm.expr) : bool option =
  let const_value = function Qgm.Lit v -> Some v | _ -> None in
  match e with
  | Qgm.Lit (Value.Bool b) -> Some b
  | Qgm.Lit Value.Null -> Some false (* NULL is not TRUE as a predicate *)
  | Qgm.Bin (Ast.And, a, b) ->
    (match const_truth a, const_truth b with
    | Some false, _ | _, Some false -> Some false
    | Some true, Some true -> Some true
    | _ -> None)
  | Qgm.Bin (Ast.Or, a, b) ->
    (match const_truth a, const_truth b with
    | Some true, _ | _, Some true -> Some true
    | Some false, Some false -> Some false
    | _ -> None)
  | Qgm.Un (Ast.Not, a) -> Option.map not (const_truth a)
  | Qgm.Bin (((Ast.Eq | Ast.Neq | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge) as op), a, b)
    -> (
    match const_value a, const_value b with
    | Some va, Some vb when not (Value.is_null va || Value.is_null vb) ->
      let c = Value.compare va vb in
      Some
        (match op with
        | Ast.Eq -> c = 0
        | Ast.Neq -> c <> 0
        | Ast.Lt -> c < 0
        | Ast.Le -> c <= 0
        | Ast.Gt -> c > 0
        | Ast.Ge -> c >= 0
        | _ -> assert false)
    | _ -> None)
  | _ -> None

let lint_qgm (g : Qgm.t) : diag list =
  let diags = ref [] in
  let add d_severity d_loc d_code fmt =
    Fmt.kstr (fun d_msg -> diags := { d_severity; d_loc; d_code; d_msg } :: !diags) fmt
  in
  let boxes = Qgm.reachable_boxes g in
  (* quantifier ids referenced anywhere in the graph (heads, preds,
     group keys, order, values) — correlation makes this global *)
  let all_refs = Hashtbl.create 32 in
  let note e = List.iter (fun q -> Hashtbl.replace all_refs q ()) (Qgm.quant_refs e) in
  List.iter
    (fun (b : Qgm.box) ->
      List.iter (fun hc -> Option.iter note hc.Qgm.hc_expr) b.b_head;
      List.iter (fun (p : Qgm.pred) -> note p.p_expr) b.b_preds;
      List.iter (fun (e, _) -> note e) b.b_order;
      match b.b_kind with
      | Qgm.Group_by keys -> List.iter note keys
      | Qgm.Values_box rows -> List.iter (List.iter note) rows
      | Qgm.Table_fn (_, args) -> List.iter note args
      | _ -> ())
    boxes;
  List.iter
    (fun (b : Qgm.box) ->
      (* dead setformers: a SELECT-box iterator no expression ever
         reads multiplies rows (or is a leftover of a rewrite) *)
      (match b.b_kind with
      | Qgm.Select ->
        List.iter
          (fun (q : Qgm.quant) ->
            match q.q_type with
            | Qgm.F | Qgm.Ext _ ->
              if
                (not (Hashtbl.mem all_refs q.q_id))
                && List.length (Qgm.setformers b) > 1
              then
                add Warning (Box b.b_id) "unused-quant"
                  "setformer %s is never referenced (pure row multiplier)"
                  q.q_label
            | Qgm.E | Qgm.A | Qgm.S | Qgm.SP _ -> ())
          b.b_quants
      | _ -> ());
      (* constant predicates *)
      List.iter
        (fun (p : Qgm.pred) ->
          match const_truth p.p_expr with
          | Some false ->
            add Warning (Box b.b_id) "always-false"
              "predicate is always false: the box produces no rows"
          | Some true ->
            add Info (Box b.b_id) "always-true" "predicate is always true"
          | None -> ())
        b.b_preds;
      (* shadowed output columns *)
      let rec dup seen = function
        | [] -> ()
        | (hc : Qgm.head_col) :: rest ->
          let n = String.lowercase_ascii hc.hc_name in
          if List.mem n seen then
            add Warning (Box b.b_id) "shadowed-column"
              "output column %s shadows an earlier column of the same name"
              hc.hc_name;
          dup (n :: seen) rest
      in
      dup [] b.b_head;
      (* degenerate CHOOSE *)
      (match b.b_kind with
      | Qgm.Choose when List.length b.b_quants = 1 ->
        add Info (Box b.b_id) "single-choose"
          "CHOOSE with a single alternative (refinement will collapse it)"
      | _ -> ());
      (* LIMIT without ORDER BY: result is implementation-defined *)
      match b.b_limit, b.b_order with
      | Some n, [] ->
        add Info (Box b.b_id) "unordered-limit"
          "LIMIT %d without ORDER BY picks implementation-defined rows" n
      | _ -> ())
    boxes;
  List.rev !diags

let lint_catalog (cat : Catalog.t) : diag list =
  let diags = ref [] in
  let add d_severity d_loc d_code fmt =
    Fmt.kstr (fun d_msg -> diags := { d_severity; d_loc; d_code; d_msg } :: !diags) fmt
  in
  List.iter
    (fun name ->
      match Catalog.find_table cat name with
      | None -> ()
      | Some tab ->
        let rows = Table_store.tuple_count tab in
        let card = tab.Table_store.stats.Stats.ts_cardinality in
        if rows > 0 && card = 0 then
          add Info (Table name) "no-stats"
            "%d row(s) but no statistics: the optimizer uses default selectivities"
            rows
        else if rows > 0 && abs (rows - card) * 2 > rows then
          add Info (Table name) "stale-stats"
            "statistics say %d row(s) but the table has %d: re-run ANALYZE" card
            rows)
    (List.sort compare (Catalog.table_names cat));
  List.rev !diags
