(** Catalog / statement linter.

    Unlike {!Check} (hard consistency) and {!Plan_check} (plan
    validity), lints flag things that are {e legal but suspicious}:
    dead quantifiers, predicates that constant-fold to FALSE, shadowed
    output columns, statistics the optimizer will silently fall back
    from.  Diagnostics carry a severity and a QGM box (or table)
    location so the shell's [\check] can render them actionably. *)

open Sb_storage
module Ast = Sb_hydrogen.Ast
open Sb_qgm

type severity = Info | Warning

type location = Box of Qgm.box_id | Table of string | Rule of string

type diag = {
  d_severity : severity;
  d_loc : location;
  d_code : string;
  d_msg : string;
}

let severity_name = function Info -> "info" | Warning -> "warning"

let diag_to_string d =
  Fmt.str "%s[%s] %s: %s"
    (severity_name d.d_severity)
    d.d_code
    (match d.d_loc with
    | Box id -> Fmt.str "box %d" id
    | Table t -> Fmt.str "table %s" t
    | Rule r -> Fmt.str "rule %s" r)
    d.d_msg

(* Constant truth value of an expression, if decidable without a row.
   A shim over the prover's three-valued evaluator: the old literal
   fold treated NULL comparisons as booleans, so [NOT NULL] folded to
   TRUE and [x = NULL] escaped the always-false lint entirely.
   [Some false] now means "never passes a WHERE clause" (constant FALSE
   or constant NULL alike). *)
let const_truth (e : Qgm.expr) : bool option = Sb_analysis.Prover.const_truth e

(* A conjunct the prover can reason about without guessing (no
   subqueries, host variables, or aggregates inside). *)
let provable e =
  not (Qgm.contains_quantified e || Qgm.contains_host e || Qgm.contains_agg e)

let lint_qgm ?catalog (g : Qgm.t) : diag list =
  let diags = ref [] in
  let add d_severity d_loc d_code fmt =
    Fmt.kstr (fun d_msg -> diags := { d_severity; d_loc; d_code; d_msg } :: !diags) fmt
  in
  (* semantic facts back the deeper lints when the catalog is at hand;
     without it columns are simply unknown and those lints stay quiet *)
  let inf =
    Option.map
      (fun cat -> Sb_analysis.Infer.analyze ~trust_stats:false ~catalog:cat g)
      catalog
  in
  let prop_of qid i =
    match inf with
    | Some inf -> Sb_analysis.Infer.quant_col_prop inf g qid i
    | None -> Sb_analysis.Props.top_col
  in
  let show e = Fmt.str "%a" (Print.pp_expr g) e in
  let boxes = Qgm.reachable_boxes g in
  (* quantifier ids referenced anywhere in the graph (heads, preds,
     group keys, order, values) — correlation makes this global *)
  let all_refs = Hashtbl.create 32 in
  let note e = List.iter (fun q -> Hashtbl.replace all_refs q ()) (Qgm.quant_refs e) in
  List.iter
    (fun (b : Qgm.box) ->
      List.iter (fun hc -> Option.iter note hc.Qgm.hc_expr) b.b_head;
      List.iter (fun (p : Qgm.pred) -> note p.p_expr) b.b_preds;
      List.iter (fun (e, _) -> note e) b.b_order;
      match b.b_kind with
      | Qgm.Group_by keys -> List.iter note keys
      | Qgm.Values_box rows -> List.iter (List.iter note) rows
      | Qgm.Table_fn (_, args) -> List.iter note args
      | _ -> ())
    boxes;
  List.iter
    (fun (b : Qgm.box) ->
      (* dead setformers: a SELECT-box iterator no expression ever
         reads multiplies rows (or is a leftover of a rewrite) *)
      (match b.b_kind with
      | Qgm.Select ->
        List.iter
          (fun (q : Qgm.quant) ->
            match q.q_type with
            | Qgm.F | Qgm.Ext _ ->
              if
                (not (Hashtbl.mem all_refs q.q_id))
                && List.length (Qgm.setformers b) > 1
              then
                add Warning (Box b.b_id) "unused-quant"
                  "setformer %s is never referenced (pure row multiplier)"
                  q.q_label
            | Qgm.E | Qgm.A | Qgm.S | Qgm.SP _ -> ())
          b.b_quants
      | _ -> ());
      (* constant predicates *)
      List.iter
        (fun (p : Qgm.pred) ->
          match const_truth p.p_expr with
          | Some false ->
            add Warning (Box b.b_id) "always-false"
              "predicate is always false: the box produces no rows"
          | Some true ->
            add Info (Box b.b_id) "always-true" "predicate is always true"
          | None -> ())
        b.b_preds;
      (* prover-backed predicate lints over the box's conjunction *)
      let conjs =
        List.concat_map (fun (p : Qgm.pred) -> Qgm.conjuncts p.p_expr) b.b_preds
        |> List.filter provable
      in
      let module Prover = Sb_analysis.Prover in
      (* contradictory-pred: the conjunction as a whole is unsatisfiable
         even though no single conjunct is constant-false *)
      if
        conjs <> []
        && (not (List.exists (fun c -> const_truth c = Some false) conjs))
        && Prover.satisfiable ~prop_of conjs = Prover.Unsatisfiable
      then
        add Warning (Box b.b_id) "contradictory-pred"
          "predicates are contradictory: the box provably produces no rows"
      else begin
        (* implied-pred: dropping the conjunct changes nothing *)
        List.iteri
          (fun idx c ->
            let others = List.filteri (fun j _ -> j <> idx) conjs in
            if
              others <> []
              && const_truth c <> Some true (* already always-true *)
              && Prover.implies ~prop_of others c = Prover.Proved
            then
              add Info (Box b.b_id) "implied-pred"
                "conjunct %s is implied by the other predicates (redundant)"
                (show c))
          conjs;
        (* null-join-key: an equi-join key that can be NULL silently
           drops rows; worth an IS NOT NULL or a schema fix *)
        if inf <> None then
          List.iter
            (fun c ->
              match c with
              | Qgm.Bin (Ast.Eq, Qgm.Col (q1, i1), Qgm.Col (q2, i2))
                when q1 <> q2 ->
                let setf = List.map (fun q -> q.Qgm.q_id) (Qgm.setformers b) in
                if List.mem q1 setf && List.mem q2 setf then
                  List.iter
                    (fun (q, i) ->
                      let guarded =
                        List.exists
                          (fun c' ->
                            c' = Qgm.Un (Ast.Not, Qgm.Is_null (Qgm.Col (q, i))))
                          conjs
                      in
                      if
                        (prop_of q i).Sb_analysis.Props.cp_nullable
                        && not guarded
                      then
                        add Info (Box b.b_id) "null-join-key"
                          "join key %s can be NULL and is not guarded by IS \
                           NOT NULL (NULL keys never match)"
                          (show (Qgm.Col (q, i))))
                    [ (q1, i1); (q2, i2) ]
              | _ -> ())
            conjs
      end;
      (* shadowed output columns *)
      let rec dup seen = function
        | [] -> ()
        | (hc : Qgm.head_col) :: rest ->
          let n = String.lowercase_ascii hc.hc_name in
          if List.mem n seen then
            add Warning (Box b.b_id) "shadowed-column"
              "output column %s shadows an earlier column of the same name"
              hc.hc_name;
          dup (n :: seen) rest
      in
      dup [] b.b_head;
      (* degenerate CHOOSE *)
      (match b.b_kind with
      | Qgm.Choose when List.length b.b_quants = 1 ->
        add Info (Box b.b_id) "single-choose"
          "CHOOSE with a single alternative (refinement will collapse it)"
      | _ -> ());
      (* LIMIT without ORDER BY: result is implementation-defined *)
      match b.b_limit, b.b_order with
      | Some n, [] ->
        add Info (Box b.b_id) "unordered-limit"
          "LIMIT %d without ORDER BY picks implementation-defined rows" n
      | _ -> ())
    boxes;
  List.rev !diags

let lint_catalog (cat : Catalog.t) : diag list =
  let diags = ref [] in
  let add d_severity d_loc d_code fmt =
    Fmt.kstr (fun d_msg -> diags := { d_severity; d_loc; d_code; d_msg } :: !diags) fmt
  in
  List.iter
    (fun name ->
      match Catalog.find_table cat name with
      | None -> ()
      | Some tab ->
        let rows = Table_store.tuple_count tab in
        let card = tab.Table_store.stats.Stats.ts_cardinality in
        if rows > 0 && card = 0 then
          add Info (Table name) "no-stats"
            "%d row(s) but no statistics: the optimizer uses default selectivities"
            rows
        else if rows > 0 && abs (rows - card) * 2 > rows then
          add Info (Table name) "stale-stats"
            "statistics say %d row(s) but the table has %d: re-run ANALYZE" card
            rows)
    (List.sort compare (Catalog.table_names cat));
  List.rev !diags

(* Per-rule fire/attempt accounting (accumulated by Corona across the
   session) turned into lints.  A rule whose condition has been
   evaluated many times without ever firing is either dead in this
   workload or — the interesting case — guarded by a condition that can
   never hold; either way the DBC should look at it. *)
let dead_rule_threshold = 50

let lint_rules (stats : (string * (int * int)) list) : diag list =
  List.filter_map
    (fun (name, (fires, attempts)) ->
      if fires = 0 && attempts >= dead_rule_threshold then
        Some
          {
            d_severity = Warning;
            d_loc = Rule name;
            d_code = "dead-rule";
            d_msg =
              Fmt.str
                "condition evaluated %d time(s) without ever firing: dead \
                 in this workload, or unsatisfiable"
                attempts;
          }
      else None)
    stats
