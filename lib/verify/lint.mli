(** Catalog / statement linter: legal-but-suspicious constructs as
    structured diagnostics with severity and QGM box locations. *)

open Sb_storage

type severity = Info | Warning

type location = Box of Sb_qgm.Qgm.box_id | Table of string | Rule of string

type diag = {
  d_severity : severity;
  d_loc : location;
  d_code : string;
      (** ["unused-quant"], ["always-false"], ["always-true"],
          ["contradictory-pred"], ["implied-pred"], ["null-join-key"],
          ["shadowed-column"], ["single-choose"], ["unordered-limit"],
          ["no-stats"], ["stale-stats"], ["dead-rule"] *)
  d_msg : string;
}

val severity_name : severity -> string
val diag_to_string : diag -> string

(** Constant truth value of an expression, if decidable without a row.
    Three-valued: [Some false] means the predicate never passes a WHERE
    clause — constant FALSE and constant NULL alike.  (A shim over
    {!Sb_analysis.Prover.const_truth}.) *)
val const_truth : Sb_qgm.Qgm.expr -> bool option

(** Statement lints: unused setformers, constant predicates, shadowed
    output columns, single-alternative CHOOSE, LIMIT without ORDER BY —
    plus, with [catalog] (enabling property inference), contradictory
    and implied predicate conjunctions and nullable unguarded join
    keys. *)
val lint_qgm : ?catalog:Catalog.t -> Sb_qgm.Qgm.t -> diag list

(** Catalog lints: populated tables with missing or stale statistics. *)
val lint_catalog : Catalog.t -> diag list

(** Attempts a dead rule must accumulate (with zero fires) before
    {!lint_rules} reports it. *)
val dead_rule_threshold : int

(** Rule lints over cumulative per-rule [(fires, attempts)] stats:
    a rule whose condition has been evaluated at least
    {!dead_rule_threshold} times without ever firing is flagged
    [dead-rule] — dead in this workload, or unsatisfiable. *)
val lint_rules : (string * (int * int)) list -> diag list
