(** Structural validation of optimizer plans (the verifier's plan leg).

    Re-checks, after the fact, the claims a finished LOLEPOP plan makes:
    slot and parameter references resolve in their binding spaces,
    operational properties hold (a SORT establishes the order it claims,
    merge-join and streamed-GROUP inputs carry the order their method
    requires — i.e. the glue STARs were inserted — SHIP/site properties
    are consistent), and cost/cardinality estimates are finite and
    non-negative. *)

open Sb_storage

type violation = {
  v_path : string;
      (** operator path from the root, e.g. ["SORT>JOIN[MERGE,regular]"] *)
  v_code : string;
      (** stable machine-matchable code: ["cost"], ["card"], ["inputs"],
          ["width"], ["slot-ref"], ["param"], ["order-slot"],
          ["order-claim"], ["merge-order"], ["equi-slot"], ["site"],
          ["limit"], ["values-arity"], ["setop-width"], ["table"],
          ["column"], ["index"], ["rec-delta"], ["scalar-width"],
          ["choose"] *)
  v_msg : string;
}

val violation_to_string : violation -> string

exception Invalid_plan of string

(** All violations, outermost-first.  With [?catalog], base-table
    accesses are additionally checked against the schema: table and
    index existence, base-column ranges of kept columns and of
    SCAN/IXSCAN predicates (which the QES evaluates over the full base
    row before projection). *)
val check : ?catalog:Catalog.t -> Sb_optimizer.Plan.plan -> violation list

val is_valid : ?catalog:Catalog.t -> Sb_optimizer.Plan.plan -> bool

(** @raise Invalid_plan listing every violation. *)
val assert_valid : ?catalog:Catalog.t -> Sb_optimizer.Plan.plan -> unit
