(** Rewrite-rule soundness harness.

    Two sanitizer-style oracles for the paper's rule contract ("every
    rule changes a consistent QGM representation into another consistent
    QGM representation", and rewrites preserve semantics):

    - {!instrument} wraps a rule set so that QGM consistency is asserted
      before and after {e every individual firing}, attributing the
      breakage to the rule that caused it;
    - {!compare_results} differentially compares query results executed
      before vs. after rewriting (bag semantics unless the query is
      ordered).

    Both are driven by paranoid mode ([STARBURST_PARANOID=1]), wired
    through [Corona]. *)

open Sb_storage
module Check = Sb_qgm.Check
module Rule = Sb_rewrite.Rule

exception Unsound of string

let unsound fmt = Fmt.kstr (fun s -> raise (Unsound s)) fmt

(** Is paranoid mode requested by the environment?  Truthy values: "1",
    "true", "yes", "on" (case-insensitive). *)
let paranoid_env () =
  match Sys.getenv_opt "STARBURST_PARANOID" with
  | None -> false
  | Some v ->
    (match String.lowercase_ascii (String.trim v) with
    | "1" | "true" | "yes" | "on" -> true
    | _ -> false)

let consistent_or ~moment ~rule g =
  match Check.check g with
  | [] -> ()
  | errs ->
    unsound "rule %s: inconsistent QGM %s firing: %s" rule moment
      (String.concat "; " errs)

(** Wraps every rule so its action asserts QGM consistency before and
    after the firing.  A pre-firing violation is attributed to the rule
    as "before" (some earlier mutation broke the graph and this rule is
    first to observe it); a post-firing violation names the rule that
    just ran.
    @raise Unsound on the first broken contract. *)
let instrument (rules : Rule.t list) : Rule.t list =
  List.map
    (fun (r : Rule.t) ->
      (* [dsl]-tagged names attribute breakage to the compiled rule *)
      let tagged = r.Rule.rule_name ^ Rule.origin_tag r in
      {
        r with
        Rule.action =
          (fun (ctx : Rule.context) ->
            consistent_or ~moment:"before" ~rule:tagged ctx.Rule.graph;
            r.Rule.action ctx;
            consistent_or ~moment:"after" ~rule:tagged ctx.Rule.graph);
      })
    rules

(** Wraps every rule so inferred semantic properties of the top box
    (NOT NULL columns, derived keys, row bounds, provable emptiness)
    are computed before and after each firing and compared; facts the
    firing {e lost} are reported through [on_regression] as
    ["rule-name: description"].

    A lost fact is not by itself unsoundness — a rewrite may trade
    derivable precision for a better shape (so this logs and counts
    rather than raising) — but a sudden regression pinpoints the firing
    that weakened later analyses.  Inference here never trusts
    statistics, so the comparison is stable under ANALYZE. *)
let instrument_inference ~catalog
    ?(on_regression = fun msg -> Logs.warn (fun m -> m "analysis: %s" msg))
    (rules : Rule.t list) : Rule.t list =
  let summarize g =
    let inf = Sb_analysis.Infer.analyze ~trust_stats:false ~catalog g in
    Sb_analysis.Infer.box_props inf g.Sb_qgm.Qgm.top
  in
  List.map
    (fun (r : Rule.t) ->
      {
        r with
        Rule.action =
          (fun (ctx : Rule.context) ->
            let before = summarize ctx.Rule.graph in
            r.Rule.action ctx;
            let after = summarize ctx.Rule.graph in
            List.iter
              (fun what ->
                on_regression
                  (Fmt.str "%s%s: %s" r.Rule.rule_name (Rule.origin_tag r) what))
              (Sb_analysis.Infer.regressions ~before ~after));
      })
    rules

(* Rows rendered for a divergence report: at most [cap], one per line. *)
let pp_rows rows =
  let cap = 5 in
  let shown = List.filteri (fun i _ -> i < cap) rows in
  String.concat "; " (List.map Tuple.to_string shown)
  ^ if List.length rows > cap then Fmt.str "; … (%d more)" (List.length rows - cap) else ""

(* Bag (multiset) comparison with a lost/gained report. *)
let compare_results_bag ?registry (before : Tuple.t list)
    (after : Tuple.t list) : (unit, string) result =
  let cmp = Tuple.compare ?registry in
  let sb = List.sort cmp before and sa = List.sort cmp after in
  if List.compare_lengths sb sa <> 0
     || not (List.equal (fun a b -> cmp a b = 0) sb sa)
  then begin
    (* multiset difference, for the report *)
    let diff xs ys =
      List.fold_left
        (fun (missing, ys) x ->
          let rec drop acc = function
            | [] -> None
            | y :: rest when cmp x y = 0 -> Some (List.rev_append acc rest)
            | y :: rest -> drop (y :: acc) rest
          in
          match drop [] ys with
          | Some ys' -> (missing, ys')
          | None -> (x :: missing, ys))
        ([], ys) xs
      |> fst |> List.rev
    in
    let lost = diff sb sa and gained = diff sa sb in
    Error
      (Fmt.str "results diverge (%d rows before, %d after)%s%s"
         (List.length before) (List.length after)
         (if lost <> [] then Fmt.str "; lost: %s" (pp_rows lost) else "")
         (if gained <> [] then Fmt.str "; gained: %s" (pp_rows gained) else ""))
  end
  else Ok ()

(** Differentially compares two result sets.  [ordered] compares as
    sequences (the query had a top-level ORDER BY); otherwise as bags.
    With [sort_keys], ordered comparison is bag equality plus positional
    equality of the key projections — ORDER BY does not pin the relative
    order of rows tied on every key.  [Error msg] describes the
    divergence: cardinality mismatch, rows only on one side, or
    (ordered) the first differing position. *)
let compare_results ?registry ?(ordered = false) ?sort_keys
    (before : Tuple.t list) (after : Tuple.t list) : (unit, string) result =
  let cmp = Tuple.compare ?registry in
  if ordered && sort_keys <> None then begin
    let ks = Option.get sort_keys in
    let keys rows = List.map (fun r -> Tuple.project r ks) rows in
    match compare_results_bag ?registry before after with
    | Error _ as e -> e
    | Ok () ->
      let rec go i xs ys =
        match (xs, ys) with
        | [], [] | _ :: _, [] | [], _ :: _ -> Ok () (* lengths equal: bag-checked *)
        | x :: xs, y :: ys ->
          if cmp x y = 0 then go (i + 1) xs ys
          else
            Error
              (Fmt.str "sort key at row %d differs: %s before vs %s after" i
                 (Tuple.to_string x) (Tuple.to_string y))
      in
      go 0 (keys before) (keys after)
  end
  else if ordered then begin
    let rec go i xs ys =
      match xs, ys with
      | [], [] -> Ok ()
      | x :: xs, y :: ys when cmp x y = 0 -> go (i + 1) xs ys
      | x :: _, y :: _ ->
        Error
          (Fmt.str "row %d differs: %s before vs %s after" i (Tuple.to_string x)
             (Tuple.to_string y))
      | rest, [] ->
        Error (Fmt.str "after is missing %d trailing row(s): %s" (List.length rest) (pp_rows rest))
      | [], rest ->
        Error (Fmt.str "after has %d extra trailing row(s): %s" (List.length rest) (pp_rows rest))
    in
    go 0 before after
  end
  else compare_results_bag ?registry before after

(** [assert_equivalent ~what ~ordered before after] raises {!Unsound}
    naming [what] (e.g. the rewrite phase) on divergence. *)
let assert_equivalent ?registry ?ordered ?sort_keys ~what before after =
  match compare_results ?registry ?ordered ?sort_keys before after with
  | Ok () -> ()
  | Error msg -> unsound "%s changed query results: %s" what msg
