(** Structural validation of optimizer plans.

    The paper's plan properties (relational / operational / estimated)
    are maintained by per-LOLEPOP property functions ({!Sb_optimizer.Cost}).
    This checker mechanically re-verifies the claims a finished plan
    makes — every slot reference resolves, operational properties
    (orders, sites) claimed by a node are actually established by its
    inputs (i.e. the glue STARs were inserted), and cost/cardinality
    estimates are finite and non-negative — so an optimizer or
    refinement bug surfaces as a structured violation instead of a
    wrong answer. *)

open Sb_storage
open Sb_optimizer.Plan

type violation = {
  v_path : string;  (** operator path from the root, e.g. "SORT>JOIN[MERGE,regular]>SCAN(parts)" *)
  v_code : string;  (** stable machine-matchable code, e.g. "merge-order" *)
  v_msg : string;
}

let violation_to_string v = Fmt.str "%s: [%s] %s" v.v_path v.v_code v.v_msg

exception Invalid_plan of string

(** Does [have] establish the required [want] as a prefix?  (Same
    criterion as the glue STARs' {!Sb_optimizer.Star.order_satisfies}.) *)
let order_satisfies ~(have : (int * Ast.order_dir) list) ~want =
  let rec go have want =
    match have, want with
    | _, [] -> true
    | [], _ :: _ -> false
    | h :: hs, w :: ws -> h = w && go hs ws
  in
  go have want

let pp_order keys =
  String.concat ","
    (List.map
       (fun (i, d) ->
         Fmt.str "$%d%s" i (match d with Ast.Asc -> "" | Ast.Desc -> " DESC"))
       keys)

(* Expected input count per operator; [None] = variable. *)
let expected_inputs = function
  | Scan _ | Idx_access _ | Idx_and _ | Values_scan _ | Rec_delta _ -> Some 0
  | Filter _ | Or_filter _ | Project _ | Sort _ | Group _ | Distinct_op | Temp
  | Ship _ | Limit_op _ ->
    Some 1
  | Join _ | Union_all | Intersect_op _ | Except_op _ | Bloom_filter _
  | Fixpoint _ ->
    Some 2
  | Table_fn_scan _ | Choose_op -> None

let check ?catalog (root : plan) : violation list =
  let errs = ref [] in
  let err ~path ~code fmt =
    Fmt.kstr (fun s -> errs := { v_path = path; v_code = code; v_msg = s } :: !errs) fmt
  in
  (* Checks a runtime expression in the current slot/parameter space:
     [w] slots, [nparams] correlation parameters.  Subplans open their
     own spaces ([RSub]'s plan is bound to its [sub_params], a bound
     join's inner to its [j_corr]), which is exactly how the QES binds
     them at run time. *)
  let rec check_rexpr ~path ~ctx ~w ~nparams (e : rexpr) : unit =
    let recur = check_rexpr ~path ~ctx ~w ~nparams in
    match e with
    | RLit _ | RHost _ -> ()
    | RCol i ->
      if i < 0 || i >= w then
        err ~path ~code:"slot-ref" "%s: $%d out of range (input width %d)" ctx i w
    | RParam i ->
      if i < 0 || i >= nparams then
        err ~path ~code:"param" "%s: ?%d out of range (%d parameter(s) bound)"
          ctx i nparams
    | RBin (_, a, b) ->
      recur a;
      recur b
    | RUn (_, a) | RIs_null a | RLike (a, _) -> recur a
    | RFun (_, args) -> List.iter recur args
    | RCase (arms, els) ->
      List.iter
        (fun (c, v) ->
          recur c;
          recur v)
        arms;
      Option.iter recur els
    | RSub s ->
      List.iter recur s.sub_params;
      let spath = path ^ ">[sub]" in
      walk ~path:spath ~nparams:(List.length s.sub_params) ~in_fix:false s.sub_plan;
      (* the per-inner-row predicate sees the inner's slots and the
         subquery's own parameters *)
      check_rexpr ~path:spath ~ctx:"subquery predicate" ~w:(width s.sub_plan)
        ~nparams:(List.length s.sub_params) s.sub_pred
    | RScalar_sub s ->
      List.iter recur s.ssub_params;
      let spath = path ^ ">[scalar-sub]" in
      if width s.ssub_plan < 1 then
        err ~path:spath ~code:"scalar-width"
          "scalar subquery plan produces no columns";
      walk ~path:spath ~nparams:(List.length s.ssub_params) ~in_fix:false
        s.ssub_plan
  and check_probe ~path ~ctx ~nparams = function
    | Pr_eq es ->
      List.iter (check_rexpr ~path ~ctx ~w:0 ~nparams) es
      (* w = 0: probe expressions are constants over params/hosts, never
         over the (not-yet-fetched) row *)
    | Pr_range (lo, hi) ->
      Option.iter (fun (e, _) -> check_rexpr ~path ~ctx ~w:0 ~nparams e) lo;
      Option.iter (fun (e, _) -> check_rexpr ~path ~ctx ~w:0 ~nparams e) hi
    | Pr_custom (_, es) -> List.iter (check_rexpr ~path ~ctx ~w:0 ~nparams) es
  and check_base_access ~path ~nparams ~table ~cols ~preds ~what =
    List.iter
      (fun c ->
        if c < 0 then err ~path ~code:"column" "%s: negative base column %d" what c)
      cols;
    match Option.bind catalog (fun cat -> Catalog.find_table cat table) with
    | None ->
      (match catalog with
      | Some cat when not (Catalog.table_exists cat table) ->
        err ~path ~code:"table" "%s reads unknown table %s" what table
      | _ -> ())
    | Some tab ->
      let arity = Array.length tab.Table_store.schema in
      List.iter
        (fun c ->
          if c >= arity then
            err ~path ~code:"column" "%s: base column %d out of range (%s has %d)"
              what c table arity)
        cols;
      List.iter
        (check_rexpr ~path ~ctx:(what ^ " predicate") ~w:arity ~nparams)
        preds
  and walk ~path ~nparams ~in_fix (p : plan) : unit =
    let w = width p in
    let pr = p.props in
    (* estimated properties: finite, non-negative *)
    if not (Float.is_finite pr.p_cost) || pr.p_cost < 0.0 then
      err ~path ~code:"cost" "cost %f is not finite and non-negative" pr.p_cost;
    if not (Float.is_finite pr.p_card) || pr.p_card < 0.0 then
      err ~path ~code:"card" "cardinality %f is not finite and non-negative"
        pr.p_card;
    (* claimed output order refers to real output slots *)
    List.iter
      (fun (s, _) ->
        if s < 0 || s >= w then
          err ~path ~code:"order-slot" "claimed order slot $%d out of range (width %d)"
            s w)
      pr.p_order;
    (* input count *)
    let n_inputs = List.length p.inputs in
    (match expected_inputs p.op with
    | Some n when n <> n_inputs ->
      err ~path ~code:"inputs" "%s has %d input(s), expected %d" (op_name p.op)
        n_inputs n
    | _ -> ());
    let input_ok n = n_inputs = n in
    let iw i = width (List.nth p.inputs i) in
    let in0 () = List.nth p.inputs 0 in
    let preserves_width ~what =
      if input_ok 1 && w <> iw 0 then
        err ~path ~code:"width" "%s claims width %d but its input has %d" what w
          (iw 0)
    in
    let order_established ~what =
      if input_ok 1 && not (order_satisfies ~have:(in0 ()).props.p_order ~want:pr.p_order)
      then
        err ~path ~code:"order-claim"
          "%s claims order [%s] its input does not establish (input order [%s])"
          what (pp_order pr.p_order)
          (pp_order (in0 ()).props.p_order)
    in
    let site_preserved ~what =
      if input_ok 1 && pr.p_site <> (in0 ()).props.p_site then
        err ~path ~code:"site" "%s claims site %s but its input is at %s" what
          pr.p_site (in0 ()).props.p_site
    in
    (match p.op with
    | Scan { sc_table; sc_cols; sc_preds } ->
      if w <> List.length sc_cols then
        err ~path ~code:"width" "SCAN keeps %d column(s) but claims width %d"
          (List.length sc_cols) w;
      check_base_access ~path ~nparams ~table:sc_table ~cols:sc_cols
        ~preds:sc_preds ~what:"SCAN"
    | Idx_access { ix_table; ix_index; ix_probe; ix_cols; ix_preds } ->
      if w <> List.length ix_cols then
        err ~path ~code:"width" "IXSCAN keeps %d column(s) but claims width %d"
          (List.length ix_cols) w;
      check_probe ~path ~ctx:"index probe" ~nparams ix_probe;
      check_base_access ~path ~nparams ~table:ix_table ~cols:ix_cols
        ~preds:ix_preds ~what:"IXSCAN";
      (match Option.bind catalog (fun cat -> Catalog.find_table cat ix_table) with
      | Some tab when Table_store.find_attachment tab ix_index = None ->
        err ~path ~code:"index" "no index %s on %s" ix_index ix_table
      | _ -> ())
    | Idx_and { ia_table; ia_probes; ia_cols; ia_preds } ->
      if w <> List.length ia_cols then
        err ~path ~code:"width" "IXAND keeps %d column(s) but claims width %d"
          (List.length ia_cols) w;
      List.iter
        (fun (_, probe) -> check_probe ~path ~ctx:"index probe" ~nparams probe)
        ia_probes;
      check_base_access ~path ~nparams ~table:ia_table ~cols:ia_cols
        ~preds:ia_preds ~what:"IXAND"
    | Filter preds ->
      preserves_width ~what:"FILTER";
      order_established ~what:"FILTER";
      site_preserved ~what:"FILTER";
      if input_ok 1 then
        List.iter
          (check_rexpr ~path ~ctx:"filter predicate" ~w:(iw 0) ~nparams)
          preds
    | Or_filter disjuncts ->
      preserves_width ~what:"OR";
      order_established ~what:"OR";
      site_preserved ~what:"OR";
      if input_ok 1 then
        List.iter
          (check_rexpr ~path ~ctx:"OR disjunct" ~w:(iw 0) ~nparams)
          disjuncts
    | Project exprs ->
      if w <> List.length exprs then
        err ~path ~code:"width" "PROJECT emits %d expression(s) but claims width %d"
          (List.length exprs) w;
      site_preserved ~what:"PROJECT";
      if input_ok 1 then
        List.iter
          (check_rexpr ~path ~ctx:"projection" ~w:(iw 0) ~nparams)
          exprs
    | Sort keys ->
      preserves_width ~what:"SORT";
      site_preserved ~what:"SORT";
      List.iter
        (fun (s, _) ->
          if s < 0 || s >= w then
            err ~path ~code:"slot-ref" "sort key $%d out of range (width %d)" s w)
        keys;
      (* the whole point of SORT is establishing its keys *)
      if not (order_satisfies ~have:pr.p_order ~want:keys) then
        err ~path ~code:"order-claim"
          "SORT on [%s] does not claim the order it establishes (claims [%s])"
          (pp_order keys) (pp_order pr.p_order)
    | Join j ->
      if input_ok 2 then begin
        let outer = List.nth p.inputs 0 and inner = List.nth p.inputs 1 in
        let wo = width outer and wi = width inner in
        let expected_w =
          match j.j_kind with
          | J_regular | J_ext _ -> wo + wi
          | J_exists | J_all | J_set_pred _ -> wo
          | J_scalar -> wo + 1
        in
        if w <> expected_w then
          err ~path ~code:"width"
            "JOIN kind %s over widths %d+%d claims width %d (expected %d)"
            (join_kind_name j.j_kind) wo wi w expected_w;
        List.iter
          (fun (o, i) ->
            if o < 0 || o >= wo then
              err ~path ~code:"equi-slot" "equi outer slot $%d out of range (width %d)"
                o wo;
            if i < 0 || i >= wi then
              err ~path ~code:"equi-slot" "equi inner slot $%d out of range (width %d)"
                i wi)
          j.j_equi;
        Option.iter
          (check_rexpr ~path ~ctx:"join predicate" ~w:(wo + wi) ~nparams)
          j.j_pred;
        Option.iter
          (check_rexpr ~path ~ctx:"join kind predicate" ~w:(wo + wi) ~nparams)
          j.j_kind_pred;
        List.iter
          (check_rexpr ~path ~ctx:"correlation source" ~w:wo ~nparams)
          j.j_corr;
        (* operational: a merge join's claimed order is only real if the
           glue STARs actually sorted both inputs on the equi keys *)
        (match j.j_method with
        | Sort_merge ->
          let okeys = List.map (fun (o, _) -> (o, Ast.Asc)) j.j_equi in
          let ikeys = List.map (fun (_, i) -> (i, Ast.Asc)) j.j_equi in
          if not (order_satisfies ~have:outer.props.p_order ~want:okeys) then
            err ~path ~code:"merge-order"
              "merge join requires outer ordered on [%s] but it has [%s]"
              (pp_order okeys)
              (pp_order outer.props.p_order);
          if not (order_satisfies ~have:inner.props.p_order ~want:ikeys) then
            err ~path ~code:"merge-order"
              "merge join requires inner ordered on [%s] but it has [%s]"
              (pp_order ikeys)
              (pp_order inner.props.p_order)
        | Nested_loop ->
          if not (order_satisfies ~have:outer.props.p_order ~want:pr.p_order) then
            err ~path ~code:"order-claim"
              "NL join claims order [%s] its outer does not establish"
              (pp_order pr.p_order)
        | Hash_join ->
          if pr.p_order <> [] then
            err ~path ~code:"order-claim" "hash join claims order [%s]"
              (pp_order pr.p_order));
        (* sites: the glue CoSite STAR must have co-located the inputs *)
        if outer.props.p_site <> inner.props.p_site then
          err ~path ~code:"site" "join inputs at different sites (%s vs %s)"
            outer.props.p_site inner.props.p_site;
        if pr.p_site <> outer.props.p_site then
          err ~path ~code:"site" "join claims site %s but its outer is at %s"
            pr.p_site outer.props.p_site
      end
    | Group { g_keys; g_aggs; g_sorted } ->
      if input_ok 1 then begin
        let wi0 = iw 0 in
        List.iter
          (fun k ->
            if k < 0 || k >= wi0 then
              err ~path ~code:"slot-ref" "group key $%d out of range (width %d)" k
                wi0)
          g_keys;
        List.iter
          (fun (_, _, arg) ->
            Option.iter
              (fun a ->
                if a < 0 || a >= wi0 then
                  err ~path ~code:"slot-ref"
                    "aggregate argument $%d out of range (width %d)" a wi0)
              arg)
          g_aggs;
        if w <> List.length g_keys + List.length g_aggs then
          err ~path ~code:"width"
            "GROUP emits %d key(s) + %d aggregate(s) but claims width %d"
            (List.length g_keys) (List.length g_aggs) w;
        if g_sorted && g_keys <> [] then begin
          let want = List.map (fun k -> (k, Ast.Asc)) g_keys in
          if not (order_satisfies ~have:(in0 ()).props.p_order ~want) then
            err ~path ~code:"merge-order"
              "streamed GROUP requires input ordered on [%s] but it has [%s]"
              (pp_order want)
              (pp_order (in0 ()).props.p_order)
        end
      end
    | Distinct_op ->
      preserves_width ~what:"DISTINCT";
      order_established ~what:"DISTINCT";
      site_preserved ~what:"DISTINCT"
    | Union_all | Intersect_op _ | Except_op _ ->
      if input_ok 2 && iw 0 <> iw 1 then
        err ~path ~code:"setop-width" "%s inputs have widths %d vs %d"
          (op_name p.op) (iw 0) (iw 1);
      if input_ok 2 && w <> iw 0 then
        err ~path ~code:"width" "%s claims width %d but its inputs have %d"
          (op_name p.op) w (iw 0)
    | Temp ->
      preserves_width ~what:"TEMP";
      order_established ~what:"TEMP";
      site_preserved ~what:"TEMP"
    | Ship site ->
      preserves_width ~what:"SHIP";
      if pr.p_site <> site then
        err ~path ~code:"site" "SHIP to %s claims site %s" site pr.p_site
    | Limit_op n ->
      preserves_width ~what:"LIMIT";
      order_established ~what:"LIMIT";
      site_preserved ~what:"LIMIT";
      if n < 0 then err ~path ~code:"limit" "negative LIMIT %d" n
    | Values_scan rows ->
      List.iteri
        (fun i row ->
          if List.length row <> w then
            err ~path ~code:"values-arity" "VALUES row %d has arity %d, claims %d"
              i (List.length row) w;
          List.iter (check_rexpr ~path ~ctx:"VALUES cell" ~w:0 ~nparams) row)
        rows
    | Table_fn_scan { tf_args; _ } ->
      List.iter
        (check_rexpr ~path ~ctx:"table-fn argument" ~w:0 ~nparams)
        tf_args
    | Bloom_filter { bl_subject_key; bl_source_key; bl_bits } ->
      if input_ok 2 then begin
        preserves_width ~what:"BLOOM";
        if bl_subject_key < 0 || bl_subject_key >= iw 0 then
          err ~path ~code:"slot-ref" "Bloom subject key $%d out of range (width %d)"
            bl_subject_key (iw 0);
        if bl_source_key < 0 || bl_source_key >= iw 1 then
          err ~path ~code:"slot-ref" "Bloom source key $%d out of range (width %d)"
            bl_source_key (iw 1);
        if bl_bits <= 0 then
          err ~path ~code:"limit" "Bloom filter with %d bits" bl_bits
      end
    | Fixpoint _ ->
      if input_ok 2 then begin
        if iw 0 <> w || iw 1 <> w then
          err ~path ~code:"width" "FIXPOINT seed/step widths %d/%d, claims %d"
            (iw 0) (iw 1) w
      end
    | Rec_delta { rd_width } ->
      if rd_width <> w then
        err ~path ~code:"width" "REC-DELTA declares width %d but claims %d" rd_width
          w;
      if not in_fix then
        err ~path ~code:"rec-delta" "REC-DELTA leaf outside a FIXPOINT step"
    | Choose_op ->
      if n_inputs = 0 then
        err ~path ~code:"choose" "CHOOSE with no alternatives"
      else
        List.iteri
          (fun i c ->
            if width c <> w then
              err ~path ~code:"width" "CHOOSE alternative %d has width %d, claims %d"
                i (width c) w)
          p.inputs);
    (* recurse — the step side of a FIXPOINT may contain REC-DELTA, and
       a bound join's inner owns its own parameter space (the QES binds
       its RParams positionally from j_corr) *)
    List.iteri
      (fun i c ->
        let in_fix =
          match p.op with
          | Fixpoint _ -> i = 1 || in_fix
          | _ -> in_fix
        in
        let nparams =
          match p.op with
          | Join { j_bound = true; j_corr; _ } when i = 1 -> List.length j_corr
          | _ -> nparams
        in
        walk ~path:(path ^ ">" ^ op_name c.op) ~nparams ~in_fix c)
      p.inputs
  in
  walk ~path:(op_name root.op) ~nparams:0 ~in_fix:false root;
  List.rev !errs

let is_valid ?catalog p = check ?catalog p = []

(** @raise Invalid_plan listing every violation. *)
let assert_valid ?catalog p =
  match check ?catalog p with
  | [] -> ()
  | errs ->
    raise
      (Invalid_plan
         (Fmt.str "invalid plan: %s"
            (String.concat "; " (List.map violation_to_string errs))))
