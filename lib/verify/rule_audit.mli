(** Rewrite-rule soundness harness: per-firing QGM consistency
    assertions and differential result comparison, driven by paranoid
    mode ([STARBURST_PARANOID=1]). *)

open Sb_storage
module Rule = Sb_rewrite.Rule

exception Unsound of string

(** Is paranoid mode requested by the environment ([STARBURST_PARANOID]
    set to 1/true/yes/on)? *)
val paranoid_env : unit -> bool

(** Wraps every rule so its action asserts QGM consistency before and
    after the firing, attributing a broken contract to the rule by name.
    @raise Unsound on the first violation. *)
val instrument : Rule.t list -> Rule.t list

(** Wraps every rule so the top box's inferred properties (NOT NULL,
    keys, row bounds, emptiness — {!Sb_analysis.Infer}) are compared
    before and after each firing; lost facts are reported through
    [on_regression] as ["rule-name: description"].  Never raises: a
    regression flags a firing that weakened later analyses, not
    unsoundness.  Default [on_regression] logs a warning. *)
val instrument_inference :
  catalog:Catalog.t ->
  ?on_regression:(string -> unit) ->
  Rule.t list ->
  Rule.t list

(** Differentially compares two result sets — as sequences when
    [ordered] (top-level ORDER BY), as bags otherwise.  [Error msg]
    describes the divergence (lost/gained rows, first differing
    position).

    When [ordered] and [sort_keys] (the output-column positions of the
    ORDER BY keys) is given, rows tied on every key may permute freely:
    the sets are compared as bags plus positional equality of the key
    projections.  An ORDER BY constrains only its keys, so a strict
    sequence comparison would misreport legitimate tie reorderings. *)
val compare_results :
  ?registry:Datatype.registry ->
  ?ordered:bool ->
  ?sort_keys:int list ->
  Tuple.t list ->
  Tuple.t list ->
  (unit, string) result

(** @raise Unsound naming [what] on divergence. *)
val assert_equivalent :
  ?registry:Datatype.registry ->
  ?ordered:bool ->
  ?sort_keys:int list ->
  what:string ->
  Tuple.t list ->
  Tuple.t list ->
  unit
