(** Pretty-printer for Hydrogen ASTs.

    Printing then re-parsing yields a structurally equal AST (a property
    the test suite checks); used by EXPLAIN and by the catalog when
    normalizing view definitions. *)

open Ast

let rec pp_expr ppf (e : expr) =
  match e with
  | Lit v -> Fmt.string ppf (Sb_storage.Value.to_literal v)
  | Col (None, c) -> Fmt.string ppf c
  | Col (Some q, c) -> Fmt.pf ppf "%s.%s" q c
  | Host v -> Fmt.pf ppf ":%s" v
  | Bin (op, a, b) -> Fmt.pf ppf "(%a %s %a)" pp_expr a (binop_name op) pp_expr b
  | Un (Neg, (Lit (Sb_storage.Value.Int _ | Sb_storage.Value.Float _) as l)) ->
    (* keep the literal parenthesized: the parser folds a bare
       [- <number>] into a negative literal *)
    Fmt.pf ppf "(- (%a))" pp_expr l
  | Un (Neg, a) -> Fmt.pf ppf "(- %a)" pp_expr a
  | Un (Not, a) -> Fmt.pf ppf "(NOT %a)" pp_expr a
  | Func (f, args) -> Fmt.pf ppf "%s(%a)" f Fmt.(list ~sep:(Fmt.any ", ") pp_expr) args
  | Agg (f, _, None) -> Fmt.pf ppf "%s(*)" f
  | Agg (f, true, Some e) -> Fmt.pf ppf "%s(DISTINCT %a)" f pp_expr e
  | Agg (f, false, Some e) -> Fmt.pf ppf "%s(%a)" f pp_expr e
  | Case (arms, els) ->
    Fmt.pf ppf "CASE%a%a END"
      Fmt.(
        list ~sep:nop (fun ppf (c, v) ->
            Fmt.pf ppf " WHEN %a THEN %a" pp_expr c pp_expr v))
      arms
      Fmt.(option (fun ppf e -> Fmt.pf ppf " ELSE %a" pp_expr e))
      els
  | Is_null e -> Fmt.pf ppf "(%a IS NULL)" pp_expr e
  | In_list (e, es) ->
    Fmt.pf ppf "(%a IN (%a))" pp_expr e Fmt.(list ~sep:(Fmt.any ", ") pp_expr) es
  | In_query (e, q) -> Fmt.pf ppf "(%a IN (%a))" pp_expr e pp_query q
  | Exists q -> Fmt.pf ppf "EXISTS (%a)" pp_query q
  | Quant_cmp (e, op, k, q) ->
    let kname =
      match k with Q_all -> "ALL" | Q_any -> "ANY" | Q_named n -> n
    in
    Fmt.pf ppf "(%a %s %s (%a))" pp_expr e (binop_name op) kname pp_query q
  | Scalar_query q -> Fmt.pf ppf "(%a)" pp_query q
  | Between (e, lo, hi) ->
    Fmt.pf ppf "(%a BETWEEN %a AND %a)" pp_expr e pp_expr lo pp_expr hi
  | Like (e, pat) ->
    (* quote-double the pattern like any string literal *)
    Fmt.pf ppf "(%a LIKE %s)" pp_expr e
      (Sb_storage.Value.to_literal (Sb_storage.Value.String pat))

and pp_query ppf = function
  | Select s -> pp_select ppf s
  | Set_op (op, all, a, b) ->
    let name =
      match op with Union -> "UNION" | Intersect -> "INTERSECT" | Except -> "EXCEPT"
    in
    Fmt.pf ppf "(%a) %s%s (%a)" pp_query a name
      (if all then " ALL" else "")
      pp_query b
  | Values rows ->
    Fmt.pf ppf "VALUES %a"
      Fmt.(
        list ~sep:(Fmt.any ", ") (fun ppf row ->
            Fmt.pf ppf "(%a)" Fmt.(list ~sep:(Fmt.any ", ") pp_expr) row))
      rows

and pp_select ppf (s : select) =
  Fmt.pf ppf "SELECT %s%a"
    (if s.sel_distinct then "DISTINCT " else "")
    Fmt.(list ~sep:(Fmt.any ", ") pp_item)
    s.sel_items;
  if s.sel_from <> [] then
    Fmt.pf ppf " FROM %a" Fmt.(list ~sep:(Fmt.any ", ") pp_from) s.sel_from;
  Option.iter (fun w -> Fmt.pf ppf " WHERE %a" pp_expr w) s.sel_where;
  if s.sel_group <> [] then
    Fmt.pf ppf " GROUP BY %a" Fmt.(list ~sep:(Fmt.any ", ") pp_expr) s.sel_group;
  Option.iter (fun h -> Fmt.pf ppf " HAVING %a" pp_expr h) s.sel_having;
  if s.sel_order <> [] then
    Fmt.pf ppf " ORDER BY %a"
      Fmt.(
        list ~sep:(Fmt.any ", ") (fun ppf (e, d) ->
            Fmt.pf ppf "%a%s" pp_expr e (match d with Asc -> "" | Desc -> " DESC")))
      s.sel_order;
  Option.iter (fun n -> Fmt.pf ppf " LIMIT %d" n) s.sel_limit

and pp_item ppf = function
  | Star -> Fmt.string ppf "*"
  | Qualified_star t -> Fmt.pf ppf "%s.*" t
  | Item (e, None) -> pp_expr ppf e
  | Item (e, Some a) -> Fmt.pf ppf "%a AS %s" pp_expr e a

and pp_from ppf = function
  | From_table (t, None) -> Fmt.string ppf t
  | From_table (t, Some a) -> Fmt.pf ppf "%s %s" t a
  | From_query (q, a, cols) ->
    Fmt.pf ppf "(%a) AS %s%a" pp_query q a
      Fmt.(option (fun ppf cs -> Fmt.pf ppf " (%a)" (list ~sep:(Fmt.any ", ") string) cs))
      cols
  | From_func (f, args, alias) ->
    Fmt.pf ppf "%s(%a)%a" f
      Fmt.(list ~sep:(Fmt.any ", ") pp_targ)
      args
      Fmt.(option (fun ppf a -> Fmt.pf ppf " AS %s" a))
      alias
  | From_join (l, jt, r, on) ->
    let name =
      match jt with
      | Inner -> "JOIN"
      | Left_outer -> "LEFT OUTER JOIN"
      | Right_outer -> "RIGHT OUTER JOIN"
      | Full_outer -> "FULL OUTER JOIN"
    in
    Fmt.pf ppf "%a %s %a ON %a" pp_from l name pp_from r pp_expr on

and pp_targ ppf = function
  | Targ_table f -> pp_from ppf f
  | Targ_expr e -> pp_expr ppf e

let pp_with_query ppf (wq : with_query) =
  if wq.with_defs <> [] then begin
    Fmt.pf ppf "WITH %s"
      (if wq.with_recursive then "RECURSIVE " else "");
    Fmt.(
      list ~sep:(Fmt.any ", ") (fun ppf (name, cols, q) ->
          Fmt.pf ppf "%s%a AS (%a)" name
            (option (fun ppf cs -> Fmt.pf ppf " (%a)" (list ~sep:(Fmt.any ", ") string) cs))
            cols pp_query q))
      ppf wq.with_defs;
    Fmt.sp ppf ()
  end;
  pp_query ppf wq.with_body

let expr_to_string e = Fmt.str "%a" pp_expr e
let query_to_string q = Fmt.str "%a" pp_query q
let with_query_to_string q = Fmt.str "%a" pp_with_query q

let rec pp_statement ppf = function
  | Stmt_query wq -> pp_with_query ppf wq
  | Stmt_insert { ins_table; ins_columns; ins_source = Ins_query q } ->
    Fmt.pf ppf "INSERT INTO %s%a %a" ins_table
      Fmt.(option (fun ppf cs -> Fmt.pf ppf " (%a)" (list ~sep:(Fmt.any ", ") string) cs))
      ins_columns pp_with_query q
  | Stmt_update { upd_table; upd_alias; upd_sets; upd_where } ->
    Fmt.pf ppf "UPDATE %s%a SET %a%a" upd_table
      Fmt.(option (fun ppf a -> Fmt.pf ppf " %s" a))
      upd_alias
      Fmt.(
        list ~sep:(Fmt.any ", ") (fun ppf (c, e) -> Fmt.pf ppf "%s = %a" c pp_expr e))
      upd_sets
      Fmt.(option (fun ppf w -> Fmt.pf ppf " WHERE %a" pp_expr w))
      upd_where
  | Stmt_delete { del_table; del_alias; del_where } ->
    Fmt.pf ppf "DELETE FROM %s%a%a" del_table
      Fmt.(option (fun ppf a -> Fmt.pf ppf " %s" a))
      del_alias
      Fmt.(option (fun ppf w -> Fmt.pf ppf " WHERE %a" pp_expr w))
      del_where
  | Stmt_create_table { ct_name; ct_source = Some q; _ } ->
    Fmt.pf ppf "CREATE TABLE %s AS %a" ct_name pp_with_query q
  | Stmt_create_table { ct_name; ct_columns; ct_storage; ct_source = None } ->
    Fmt.pf ppf "CREATE TABLE %s (%a)%a" ct_name
      Fmt.(
        list ~sep:(Fmt.any ", ") (fun ppf (n, t, nullable, unique) ->
            Fmt.pf ppf "%s %s%s%s" n t
              (if nullable then "" else " NOT NULL")
              (if unique then " UNIQUE" else "")))
      ct_columns
      Fmt.(option (fun ppf s -> Fmt.pf ppf " USING %s" s))
      ct_storage
  | Stmt_create_index { ci_name; ci_table; ci_kind; ci_columns } ->
    Fmt.pf ppf "CREATE INDEX %s ON %s (%a)%a" ci_name ci_table
      Fmt.(list ~sep:(Fmt.any ", ") string)
      ci_columns
      Fmt.(option (fun ppf k -> Fmt.pf ppf " USING %s" k))
      ci_kind
  | Stmt_create_view { cv_name; cv_columns; cv_text } ->
    Fmt.pf ppf "CREATE VIEW %s%a AS %s" cv_name
      Fmt.(option (fun ppf cs -> Fmt.pf ppf " (%a)" (list ~sep:(Fmt.any ", ") string) cs))
      cv_columns cv_text
  | Stmt_drop_table t -> Fmt.pf ppf "DROP TABLE %s" t
  | Stmt_drop_view v -> Fmt.pf ppf "DROP VIEW %s" v
  | Stmt_drop_index { di_table; di_name } ->
    Fmt.pf ppf "DROP INDEX %s ON %s" di_name di_table
  | Stmt_analyze None -> Fmt.string ppf "ANALYZE"
  | Stmt_analyze (Some t) -> Fmt.pf ppf "ANALYZE %s" t
  | Stmt_explain (Explain_rules, _) -> Fmt.string ppf "EXPLAIN RULES"
  | Stmt_explain (mode, s) ->
    let m =
      match mode with
      | Explain_qgm -> " QGM"
      | Explain_rewrite -> " REWRITE"
      | Explain_plan -> " PLAN"
      | Explain_dot -> " DOT"
      | Explain_all -> ""
      | Explain_analyze -> " ANALYZE"
      | Explain_analysis -> " ANALYSIS"
      | Explain_verify -> " VERIFY"
      | Explain_rules -> " RULES" (* handled above; kept for exhaustiveness *)
    in
    Fmt.pf ppf "EXPLAIN%s %a" m pp_statement s
  | Stmt_set (k, v) -> Fmt.pf ppf "SET %s = %s" k v

let statement_to_string s = Fmt.str "%a" pp_statement s
