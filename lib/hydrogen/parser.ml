(** Recursive-descent parser for Hydrogen.

    The grammar is deliberately small and orthogonal (section 2): any
    table-producing construct — base table, view, derived table, table
    function, set operation — may appear wherever a table may.  Set
    predicates after a comparison operator accept any identifier, so that
    DBC-registered set-predicate functions (e.g. [MAJORITY]) parse without
    grammar changes. *)

open Ast

exception Parse_error of string * int

type state = {
  src : string;
  mutable toks : Lexer.lexed list;
}

let fail st msg =
  let pos = match st.toks with { pos; _ } :: _ -> pos | [] -> 0 in
  let excerpt =
    let stop = min (String.length st.src) (pos + 20) in
    String.sub st.src pos (stop - pos)
  in
  raise (Parse_error (Printf.sprintf "%s (at %S)" msg excerpt, pos))

let peek st =
  match st.toks with { tok; _ } :: _ -> tok | [] -> Lexer.EOF

let peek2 st =
  match st.toks with _ :: { tok; _ } :: _ -> tok | _ -> Lexer.EOF

let pos st = match st.toks with { pos; _ } :: _ -> pos | [] -> String.length st.src

let advance st =
  match st.toks with _ :: rest -> st.toks <- rest | [] -> ()

let next st =
  let t = peek st in
  advance st;
  t

(* keyword tests are case-insensitive *)
let is_kw st kw =
  match peek st with
  | Lexer.IDENT s -> String.uppercase_ascii s = kw
  | _ -> false

let is_kw2 st kw =
  match peek2 st with
  | Lexer.IDENT s -> String.uppercase_ascii s = kw
  | _ -> false

let accept_kw st kw =
  if is_kw st kw then begin advance st; true end else false

let expect_kw st kw =
  if not (accept_kw st kw) then fail st (Printf.sprintf "expected %s" kw)

let is_sym st s = match peek st with Lexer.SYM x -> x = s | _ -> false

let accept_sym st s =
  if is_sym st s then begin advance st; true end else false

let expect_sym st s =
  if not (accept_sym st s) then fail st (Printf.sprintf "expected %S" s)

let reserved =
  [ "SELECT"; "FROM"; "WHERE"; "GROUP"; "HAVING"; "ORDER"; "LIMIT"; "UNION";
    "INTERSECT"; "EXCEPT"; "ON"; "JOIN"; "INNER"; "LEFT"; "RIGHT"; "FULL";
    "OUTER"; "AS"; "AND"; "OR"; "NOT"; "IN"; "EXISTS"; "BETWEEN"; "LIKE";
    "IS"; "NULL"; "TRUE"; "FALSE"; "CASE"; "WHEN"; "THEN"; "ELSE"; "END";
    "DISTINCT"; "ALL"; "ANY"; "SOME"; "VALUES"; "WITH"; "RECURSIVE"; "BY";
    "INSERT"; "INTO"; "UPDATE"; "SET"; "DELETE"; "CREATE"; "DROP"; "TABLE";
    "VIEW"; "INDEX"; "USING"; "ASC"; "DESC"; "EXPLAIN"; "ANALYZE"; "UNIQUE" ]

let is_reserved s = List.mem (String.uppercase_ascii s) reserved

let ident st =
  match peek st with
  | Lexer.IDENT s when not (is_reserved s) ->
    advance st;
    s
  | _ -> fail st "expected identifier"

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

(* does the upcoming input (skipping open parens) begin a query? *)
let starts_query st =
  let rec scan = function
    | { Lexer.tok = Lexer.SYM "("; _ } :: rest -> scan rest
    | { Lexer.tok = Lexer.IDENT s; _ } :: _ ->
      let u = String.uppercase_ascii s in
      u = "SELECT" || u = "VALUES" || u = "WITH"
    | _ -> false
  in
  scan st.toks

let rec parse_expr st = parse_or st

and parse_or st =
  let lhs = parse_and st in
  if accept_kw st "OR" then Bin (Or, lhs, parse_or st) else lhs

and parse_and st =
  let lhs = parse_not st in
  if accept_kw st "AND" then Bin (And, lhs, parse_and st) else lhs

and parse_not st =
  if accept_kw st "NOT" then Un (Not, parse_not st) else parse_predicate st

(* comparison layer: also IN / BETWEEN / LIKE / IS NULL / quantified *)
and parse_predicate st =
  if is_kw st "EXISTS" && is_kw2 st "" = false && (peek2 st = Lexer.SYM "(") then begin
    expect_kw st "EXISTS";
    expect_sym st "(";
    let q = parse_query st in
    expect_sym st ")";
    Exists q
  end
  else begin
    let lhs = parse_additive st in
    parse_predicate_tail st lhs
  end

and parse_predicate_tail st lhs =
  match peek st with
  | Lexer.SYM ("=" | "<>" | "<" | "<=" | ">" | ">=") ->
    let op =
      match next st with
      | Lexer.SYM "=" -> Eq
      | Lexer.SYM "<>" -> Neq
      | Lexer.SYM "<" -> Lt
      | Lexer.SYM "<=" -> Le
      | Lexer.SYM ">" -> Gt
      | Lexer.SYM ">=" -> Ge
      | _ -> assert false
    in
    (* quantified comparison: op (ALL | ANY | SOME | <set-pred name>) (query) *)
    let quant =
      match peek st, peek2 st with
      | Lexer.IDENT name, Lexer.SYM "(" when (is_kw2 st "" || true) ->
        let upper = String.uppercase_ascii name in
        (match upper with
        | "ALL" -> Some Q_all
        | "ANY" | "SOME" -> Some Q_any
        | _ -> None)
      | _ -> None
    in
    (match quant with
    | Some k ->
      advance st;
      expect_sym st "(";
      let q = parse_query st in
      expect_sym st ")";
      Quant_cmp (lhs, op, k, q)
    | None ->
      (* DBC set predicates: op <name> (SELECT ...) with a query inside *)
      (match peek st, peek2 st with
      | Lexer.IDENT name, Lexer.SYM "("
        when (not (is_reserved name))
             && (match st.toks with
                | _ :: _ :: { tok = Lexer.IDENT s; _ } :: _ ->
                  String.uppercase_ascii s = "SELECT"
                | _ -> false) ->
        advance st;
        expect_sym st "(";
        let q = parse_query st in
        expect_sym st ")";
        Quant_cmp (lhs, op, Q_named (String.lowercase_ascii name), q)
      | _ ->
        let rhs = parse_additive st in
        Bin (op, lhs, rhs)))
  | Lexer.IDENT kw ->
    (match String.uppercase_ascii kw with
    | "IN" ->
      advance st;
      expect_sym st "(";
      if starts_query st then begin
        let q = parse_query st in
        expect_sym st ")";
        In_query (lhs, q)
      end
      else begin
        let rec items acc =
          let e = parse_expr st in
          if accept_sym st "," then items (e :: acc) else List.rev (e :: acc)
        in
        let es = items [] in
        expect_sym st ")";
        In_list (lhs, es)
      end
    | "NOT" when is_kw2 st "IN" || is_kw2 st "BETWEEN" || is_kw2 st "LIKE" ->
      advance st;
      Un (Not, parse_predicate_tail st lhs)
    | "BETWEEN" ->
      advance st;
      let lo = parse_additive st in
      expect_kw st "AND";
      let hi = parse_additive st in
      Between (lhs, lo, hi)
    | "LIKE" ->
      advance st;
      (match next st with
      | Lexer.STRING pat -> Like (lhs, pat)
      | _ -> fail st "expected string literal after LIKE")
    | "IS" ->
      advance st;
      let negated = accept_kw st "NOT" in
      expect_kw st "NULL";
      if negated then Un (Not, Is_null lhs) else Is_null lhs
    | _ -> lhs)
  | _ -> lhs

and parse_additive st =
  let lhs = parse_multiplicative st in
  let rec loop lhs =
    match peek st with
    | Lexer.SYM "+" ->
      advance st;
      loop (Bin (Add, lhs, parse_multiplicative st))
    | Lexer.SYM "-" ->
      advance st;
      loop (Bin (Sub, lhs, parse_multiplicative st))
    | Lexer.SYM "||" ->
      advance st;
      loop (Bin (Concat, lhs, parse_multiplicative st))
    | _ -> lhs
  in
  loop lhs

and parse_multiplicative st =
  let lhs = parse_unary st in
  let rec loop lhs =
    match peek st with
    | Lexer.SYM "*" ->
      advance st;
      loop (Bin (Mul, lhs, parse_unary st))
    | Lexer.SYM "/" ->
      advance st;
      loop (Bin (Div, lhs, parse_unary st))
    | Lexer.SYM "%" ->
      advance st;
      loop (Bin (Mod, lhs, parse_unary st))
    | _ -> lhs
  in
  loop lhs

and parse_unary st =
  if accept_sym st "-" then
    (* fold [- <numeric literal>] into a negative literal so printed
       negative constants round-trip structurally *)
    match peek st with
    | Lexer.INT x ->
      advance st;
      Lit (Sb_storage.Value.Int (-x))
    | Lexer.FLOAT x ->
      advance st;
      Lit (Sb_storage.Value.Float (-.x))
    | _ -> Un (Neg, parse_unary st)
  else parse_primary st

and parse_primary st =
  match peek st with
  | Lexer.INT x ->
    advance st;
    Lit (Sb_storage.Value.Int x)
  | Lexer.FLOAT x ->
    advance st;
    Lit (Sb_storage.Value.Float x)
  | Lexer.STRING s ->
    advance st;
    Lit (Sb_storage.Value.String s)
  | Lexer.HOSTVAR v ->
    advance st;
    Host v
  | Lexer.SYM "(" ->
    advance st;
    if is_kw st "SELECT" || is_kw st "VALUES" then begin
      let q = parse_query st in
      expect_sym st ")";
      Scalar_query q
    end
    else begin
      let e = parse_expr st in
      expect_sym st ")";
      e
    end
  | Lexer.IDENT s ->
    (match String.uppercase_ascii s with
    | "NULL" ->
      advance st;
      Lit Sb_storage.Value.Null
    | "TRUE" ->
      advance st;
      Lit (Sb_storage.Value.Bool true)
    | "FALSE" ->
      advance st;
      Lit (Sb_storage.Value.Bool false)
    | "CASE" ->
      advance st;
      parse_case st
    | "NOT" | "EXISTS" -> fail st "unexpected keyword in expression"
    | _ ->
      let name = ident st in
      if accept_sym st "(" then parse_call st name
      else if accept_sym st "." then begin
        let col = ident st in
        Col (Some name, col)
      end
      else Col (None, name))
  | _ -> fail st "expected expression"

and parse_case st =
  let rec arms acc =
    if accept_kw st "WHEN" then begin
      let c = parse_expr st in
      expect_kw st "THEN";
      let v = parse_expr st in
      arms ((c, v) :: acc)
    end
    else List.rev acc
  in
  let arms = arms [] in
  if arms = [] then fail st "CASE requires at least one WHEN";
  let els = if accept_kw st "ELSE" then Some (parse_expr st) else None in
  expect_kw st "END";
  Case (arms, els)

and parse_call st name =
  let lname = String.lowercase_ascii name in
  if accept_sym st "*" then begin
    expect_sym st ")";
    (* COUNT of all rows, and friends *)
    Agg (lname, false, None)
  end
  else if accept_kw st "DISTINCT" then begin
    let e = parse_expr st in
    expect_sym st ")";
    Agg (lname, true, Some e)
  end
  else if accept_sym st ")" then Func (lname, [])
  else begin
    let rec args acc =
      let e = parse_expr st in
      if accept_sym st "," then args (e :: acc) else List.rev (e :: acc)
    in
    let args = args [] in
    expect_sym st ")";
    Func (lname, args)
  end

(* ------------------------------------------------------------------ *)
(* Queries                                                             *)
(* ------------------------------------------------------------------ *)

and parse_query st : query =
  let lhs = parse_query_term st in
  let rec loop lhs =
    let op =
      if is_kw st "UNION" then Some Union
      else if is_kw st "INTERSECT" then Some Intersect
      else if is_kw st "EXCEPT" then Some Except
      else None
    in
    match op with
    | None -> lhs
    | Some op ->
      advance st;
      let all = accept_kw st "ALL" in
      let rhs = parse_query_term st in
      loop (Set_op (op, all, lhs, rhs))
  in
  let q = loop lhs in
  (* trailing ORDER BY / LIMIT over a set operation: wrap in a select *)
  if (is_kw st "ORDER" || is_kw st "LIMIT")
     && match q with Select _ -> false | Set_op _ | Values _ -> true
  then begin
    let order = parse_order_opt st in
    let limit = parse_limit_opt st in
    Select
      {
        sel_distinct = false;
        sel_items = [ Star ];
        sel_from = [ From_query (q, "__setop", None) ];
        sel_where = None;
        sel_group = [];
        sel_having = None;
        sel_order = order;
        sel_limit = limit;
      }
  end
  else q

and parse_query_term st : query =
  if accept_sym st "(" then begin
    let q = parse_query st in
    expect_sym st ")";
    q
  end
  else if is_kw st "SELECT" then parse_select st
  else if is_kw st "VALUES" then begin
    expect_kw st "VALUES";
    let row () =
      expect_sym st "(";
      let rec items acc =
        let e = parse_expr st in
        if accept_sym st "," then items (e :: acc) else List.rev (e :: acc)
      in
      let es = items [] in
      expect_sym st ")";
      es
    in
    let rec rows acc =
      let r = row () in
      if accept_sym st "," then rows (r :: acc) else List.rev (r :: acc)
    in
    Values (rows [])
  end
  else fail st "expected SELECT, VALUES or parenthesized query"

and parse_order_opt st =
  if accept_kw st "ORDER" then begin
    expect_kw st "BY";
    let rec keys acc =
      let e = parse_expr st in
      let dir =
        if accept_kw st "DESC" then Desc
        else begin
          ignore (accept_kw st "ASC");
          Asc
        end
      in
      if accept_sym st "," then keys ((e, dir) :: acc)
      else List.rev ((e, dir) :: acc)
    in
    keys []
  end
  else []

and parse_limit_opt st =
  if accept_kw st "LIMIT" then
    match next st with
    | Lexer.INT n -> Some n
    | _ -> fail st "expected integer after LIMIT"
  else None

and parse_select st : query =
  expect_kw st "SELECT";
  let distinct =
    if accept_kw st "DISTINCT" then true
    else begin
      ignore (accept_kw st "ALL");
      false
    end
  in
  let rec items acc =
    let item =
      if accept_sym st "*" then Star
      else
        match peek st, peek2 st with
        | Lexer.IDENT t, Lexer.SYM "."
          when (not (is_reserved t))
               && (match st.toks with
                  | _ :: _ :: { tok = Lexer.SYM "*"; _ } :: _ -> true
                  | _ -> false) ->
          advance st;
          advance st;
          advance st;
          Qualified_star t
        | _ ->
          let e = parse_expr st in
          let alias =
            if accept_kw st "AS" then Some (ident st)
            else
              match peek st with
              | Lexer.IDENT a when not (is_reserved a) ->
                advance st;
                Some a
              | _ -> None
          in
          Item (e, alias)
    in
    if accept_sym st "," then items (item :: acc) else List.rev (item :: acc)
  in
  let items = items [] in
  let from =
    if accept_kw st "FROM" then begin
      let rec froms acc =
        let f = parse_from_item st in
        if accept_sym st "," then froms (f :: acc) else List.rev (f :: acc)
      in
      froms []
    end
    else []
  in
  let where = if accept_kw st "WHERE" then Some (parse_expr st) else None in
  let group =
    if accept_kw st "GROUP" then begin
      expect_kw st "BY";
      let rec keys acc =
        let e = parse_expr st in
        if accept_sym st "," then keys (e :: acc) else List.rev (e :: acc)
      in
      keys []
    end
    else []
  in
  let having = if accept_kw st "HAVING" then Some (parse_expr st) else None in
  let order = parse_order_opt st in
  let limit = parse_limit_opt st in
  Select
    {
      sel_distinct = distinct;
      sel_items = items;
      sel_from = from;
      sel_where = where;
      sel_group = group;
      sel_having = having;
      sel_order = order;
      sel_limit = limit;
    }

and parse_from_item st : from_item =
  let lhs = parse_from_primary st in
  let rec joins lhs =
    let jt =
      if is_kw st "JOIN" then Some Inner
      else if is_kw st "INNER" && is_kw2 st "JOIN" then begin
        advance st;
        Some Inner
      end
      else if is_kw st "LEFT" then begin
        advance st;
        ignore (accept_kw st "OUTER");
        Some Left_outer
      end
      else if is_kw st "RIGHT" then begin
        advance st;
        ignore (accept_kw st "OUTER");
        Some Right_outer
      end
      else if is_kw st "FULL" then begin
        advance st;
        ignore (accept_kw st "OUTER");
        Some Full_outer
      end
      else None
    in
    match jt with
    | None -> lhs
    | Some jt ->
      expect_kw st "JOIN";
      let rhs = parse_from_primary st in
      expect_kw st "ON";
      let cond = parse_expr st in
      joins (From_join (lhs, jt, rhs, cond))
  in
  joins lhs

and parse_from_primary st : from_item =
  if is_sym st "(" && starts_query st then begin
    advance st;
    let q = parse_query st in
    expect_sym st ")";
    let alias =
      if accept_kw st "AS" then ident st
      else
        match peek st with
        | Lexer.IDENT a when not (is_reserved a) ->
          advance st;
          a
        | _ -> fail st "derived table requires an alias"
    in
    let cols = parse_column_list_opt st in
    From_query (q, alias, cols)
  end
  else if accept_sym st "(" then begin
    let f = parse_from_item st in
    expect_sym st ")";
    f
  end
  else begin
    let name = ident st in
    if is_sym st "(" then begin
      (* table function: name(targ, targ, ...) *)
      advance st;
      let parse_targ () =
        if starts_query st then begin
          let q =
            if is_sym st "(" then begin
              advance st;
              let q = parse_query st in
              expect_sym st ")";
              q
            end
            else parse_query st
          in
          let alias = if accept_kw st "AS" then ident st else "__tfarg" in
          Targ_table (From_query (q, alias, None))
        end
        else
          match peek st, peek2 st with
          | Lexer.IDENT t, (Lexer.SYM ("," | ")"))
            when not (is_reserved t) ->
            advance st;
            Targ_table (From_table (t, None))
          | _ -> Targ_expr (parse_expr st)
      in
      let args =
        if accept_sym st ")" then []
        else begin
          let rec loop acc =
            let a = parse_targ () in
            if accept_sym st "," then loop (a :: acc) else List.rev (a :: acc)
          in
          let args = loop [] in
          expect_sym st ")";
          args
        end
      in
      let alias =
        if accept_kw st "AS" then Some (ident st)
        else
          match peek st with
          | Lexer.IDENT a when not (is_reserved a) ->
            advance st;
            Some a
          | _ -> None
      in
      From_func (String.lowercase_ascii name, args, alias)
    end
    else begin
      let alias =
        if accept_kw st "AS" then Some (ident st)
        else
          match peek st with
          | Lexer.IDENT a when not (is_reserved a) ->
            advance st;
            Some a
          | _ -> None
      in
      From_table (name, alias)
    end
  end

and parse_column_list_opt st =
  if accept_sym st "(" then begin
    let rec cols acc =
      let c = ident st in
      if accept_sym st "," then cols (c :: acc) else List.rev (c :: acc)
    in
    let cols = cols [] in
    expect_sym st ")";
    Some cols
  end
  else None

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let parse_with_query st : with_query =
  if accept_kw st "WITH" then begin
    let recursive = accept_kw st "RECURSIVE" in
    let rec defs acc =
      let name = ident st in
      let cols = parse_column_list_opt st in
      expect_kw st "AS";
      expect_sym st "(";
      let q = parse_query st in
      expect_sym st ")";
      let acc = (name, cols, q) :: acc in
      if accept_sym st "," then defs acc else List.rev acc
    in
    let defs = defs [] in
    let body = parse_query st in
    { with_recursive = recursive; with_defs = defs; with_body = body }
  end
  else plain_query (parse_query st)

let rec parse_statement st : statement =
  if is_kw st "EXPLAIN" then begin
    advance st;
    (* EXPLAIN RULES is a complete statement — it reports on the rule
       set, not on a query, so no inner statement follows *)
    if accept_kw st "RULES" then
      Stmt_explain (Explain_rules, Stmt_analyze None)
    else
    let mode =
      if accept_kw st "QGM" then Explain_qgm
      else if accept_kw st "REWRITE" then Explain_rewrite
      else if accept_kw st "PLAN" then Explain_plan
      else if accept_kw st "DOT" then Explain_dot
      else if accept_kw st "ANALYZE" then Explain_analyze
      else if accept_kw st "ANALYSIS" then Explain_analysis
      else if accept_kw st "VERIFY" then Explain_verify
      else Explain_all
    in
    Stmt_explain (mode, parse_statement st)
  end
  else if is_kw st "SELECT" || is_kw st "WITH" || is_kw st "VALUES"
          || is_sym st "(" then Stmt_query (parse_with_query st)
  else if accept_kw st "INSERT" then begin
    expect_kw st "INTO";
    let table = ident st in
    let columns = parse_column_list_opt st in
    let q = parse_with_query st in
    Stmt_insert { ins_table = table; ins_columns = columns; ins_source = Ins_query q }
  end
  else if accept_kw st "UPDATE" then begin
    let table = ident st in
    let alias =
      match peek st with
      | Lexer.IDENT a when not (is_reserved a) ->
        advance st;
        Some a
      | _ -> None
    in
    expect_kw st "SET";
    let rec sets acc =
      let col = ident st in
      expect_sym st "=";
      let e = parse_expr st in
      if accept_sym st "," then sets ((col, e) :: acc)
      else List.rev ((col, e) :: acc)
    in
    let sets = sets [] in
    let where = if accept_kw st "WHERE" then Some (parse_expr st) else None in
    Stmt_update { upd_table = table; upd_alias = alias; upd_sets = sets; upd_where = where }
  end
  else if accept_kw st "DELETE" then begin
    expect_kw st "FROM";
    let table = ident st in
    let alias =
      match peek st with
      | Lexer.IDENT a when not (is_reserved a) ->
        advance st;
        Some a
      | _ -> None
    in
    let where = if accept_kw st "WHERE" then Some (parse_expr st) else None in
    Stmt_delete { del_table = table; del_alias = alias; del_where = where }
  end
  else if accept_kw st "CREATE" then begin
    if accept_kw st "TABLE" then begin
      let name = ident st in
      if accept_kw st "AS" then begin
        let q = parse_with_query st in
        Stmt_create_table
          { ct_name = name; ct_columns = []; ct_storage = None; ct_source = Some q }
      end
      else begin
      expect_sym st "(";
      let rec cols acc =
        let cname = ident st in
        let ctype =
          match next st with
          | Lexer.IDENT t -> t
          | _ -> fail st "expected column type"
        in
        let nullable =
          if accept_kw st "NOT" then begin
            expect_kw st "NULL";
            false
          end
          else true
        in
        let unique = accept_kw st "UNIQUE" in
        if accept_sym st "," then cols ((cname, ctype, nullable, unique) :: acc)
        else List.rev ((cname, ctype, nullable, unique) :: acc)
      in
      let cols = cols [] in
      expect_sym st ")";
      let storage = if accept_kw st "USING" then Some (ident st) else None in
      Stmt_create_table
        { ct_name = name; ct_columns = cols; ct_storage = storage; ct_source = None }
      end
    end
    else if accept_kw st "INDEX" then begin
      let name = ident st in
      expect_kw st "ON";
      let table = ident st in
      expect_sym st "(";
      let rec cols acc =
        let c = ident st in
        if accept_sym st "," then cols (c :: acc) else List.rev (c :: acc)
      in
      let cols = cols [] in
      expect_sym st ")";
      let kind = if accept_kw st "USING" then Some (ident st) else None in
      Stmt_create_index { ci_name = name; ci_table = table; ci_kind = kind; ci_columns = cols }
    end
    else if accept_kw st "VIEW" then begin
      let name = ident st in
      let columns = parse_column_list_opt st in
      expect_kw st "AS";
      (* record the defining query's original text for the catalog *)
      let start = pos st in
      let _q = parse_with_query st in
      let stop = pos st in
      let text = String.trim (String.sub st.src start (stop - start)) in
      Stmt_create_view { cv_name = name; cv_columns = columns; cv_text = text }
    end
    else fail st "expected TABLE, INDEX or VIEW after CREATE"
  end
  else if accept_kw st "DROP" then begin
    if accept_kw st "TABLE" then Stmt_drop_table (ident st)
    else if accept_kw st "VIEW" then Stmt_drop_view (ident st)
    else if accept_kw st "INDEX" then begin
      let name = ident st in
      expect_kw st "ON";
      let table = ident st in
      Stmt_drop_index { di_table = table; di_name = name }
    end
    else fail st "expected TABLE, INDEX or VIEW after DROP"
  end
  else if accept_kw st "ANALYZE" then begin
    match peek st with
    | Lexer.IDENT t when not (is_reserved t) ->
      advance st;
      Stmt_analyze (Some t)
    | _ -> Stmt_analyze None
  end
  else if accept_kw st "SET" then begin
    let key = ident st in
    expect_sym st "=";
    let v =
      match next st with
      | Lexer.IDENT v -> v
      | Lexer.INT n -> string_of_int n
      | Lexer.STRING s -> s
      | _ -> fail st "expected value after SET key ="
    in
    Stmt_set (String.lowercase_ascii key, String.lowercase_ascii v)
  end
  else fail st "expected a statement"

(** Parses one statement; trailing [;] allowed. *)
let statement (src : string) : statement =
  let st = { src; toks = Lexer.tokenize src } in
  let s = parse_statement st in
  ignore (accept_sym st ";");
  (match peek st with
  | Lexer.EOF -> ()
  | _ -> fail st "trailing input after statement");
  s

(** Parses a [;]-separated script. *)
let script (src : string) : statement list =
  let st = { src; toks = Lexer.tokenize src } in
  let rec loop acc =
    match peek st with
    | Lexer.EOF -> List.rev acc
    | _ ->
      let s = parse_statement st in
      let _ = accept_sym st ";" in
      loop (s :: acc)
  in
  loop []

(** Parses a query (with optional WITH prefix), for view expansion. *)
let query_text (src : string) : with_query =
  let st = { src; toks = Lexer.tokenize src } in
  let q = parse_with_query st in
  ignore (accept_sym st ";");
  (match peek st with
  | Lexer.EOF -> ()
  | _ -> fail st "trailing input after query");
  q
