(** Abstract syntax of Hydrogen, Starburst's SQL-derived query language.

    Hydrogen generalizes SQL (section 2): views and queries with set
    operations may appear anywhere a table may; table expressions
    (WITH [RECURSIVE]) factor out and name subqueries, and may be cyclic
    to express recursion; DBC-defined scalar / aggregate / set-predicate /
    table functions extend the language without grammar changes. *)

open Sb_storage

type binop =
  | Add | Sub | Mul | Div | Mod
  | Concat
  | Eq | Neq | Lt | Le | Gt | Ge
  | And | Or

type unop = Neg | Not

type order_dir = Asc | Desc

(** Quantified-comparison kind: [ALL], [ANY]/[SOME], or a DBC-registered
    set-predicate function such as [MAJORITY]. *)
type quant_kind = Q_all | Q_any | Q_named of string

type expr =
  | Lit of Value.t
  | Col of string option * string  (** [qualifier.]column *)
  | Host of string  (** host-language variable [:name] *)
  | Bin of binop * expr * expr
  | Un of unop * expr
  | Func of string * expr list  (** scalar function (built-in or DBC) *)
  | Agg of string * bool * expr option
      (** aggregate: name, DISTINCT?, argument (None means COUNT of all rows) *)
  | Case of (expr * expr) list * expr option
  | Is_null of expr
  | In_list of expr * expr list
  | In_query of expr * query
  | Exists of query
  | Quant_cmp of expr * binop * quant_kind * query
      (** e.g. [x > ALL (SELECT ...)], [x = MAJORITY (SELECT ...)] *)
  | Scalar_query of query  (** subquery in scalar position *)
  | Between of expr * expr * expr
  | Like of expr * string

and query =
  | Select of select
  | Set_op of set_op * bool * query * query  (** op, ALL?, lhs, rhs *)
  | Values of expr list list

and set_op = Union | Intersect | Except

and select = {
  sel_distinct : bool;
  sel_items : sel_item list;
  sel_from : from_item list;
  sel_where : expr option;
  sel_group : expr list;
  sel_having : expr option;
  sel_order : (expr * order_dir) list;
  sel_limit : int option;
}

and sel_item =
  | Star
  | Qualified_star of string
  | Item of expr * string option  (** expression [AS alias] *)

and from_item =
  | From_table of string * string option  (** table or view, [alias] *)
  | From_query of query * string * string list option
      (** derived table: subquery AS alias [(columns)] *)
  | From_func of string * table_arg list * string option
      (** table function, e.g. [SAMPLE(quotations, 10) AS s] *)
  | From_join of from_item * join_type * from_item * expr
      (** explicit join syntax; outer joins are extension operations *)

and join_type = Inner | Left_outer | Right_outer | Full_outer

and table_arg = Targ_table of from_item | Targ_expr of expr

(** A query optionally prefixed by table-expression definitions.
    Cyclic references among [WITH RECURSIVE] definitions express
    recursion ("Hydrogen can be used for logic programming"). *)
type with_query = {
  with_recursive : bool;
  with_defs : (string * string list option * query) list;
  with_body : query;
}

let plain_query q = { with_recursive = false; with_defs = []; with_body = q }

type insert_source = Ins_query of with_query

type statement =
  | Stmt_query of with_query
  | Stmt_insert of {
      ins_table : string;
      ins_columns : string list option;
      ins_source : insert_source;
    }
  | Stmt_update of {
      upd_table : string;
      upd_alias : string option;
      upd_sets : (string * expr) list;
      upd_where : expr option;
    }
  | Stmt_delete of {
      del_table : string;
      del_alias : string option;
      del_where : expr option;
    }
  | Stmt_create_table of {
      ct_name : string;
      ct_columns : (string * string * bool * bool) list;
          (** name, type, nullable, unique *)
      ct_storage : string option;  (** USING <storage manager> *)
      ct_source : with_query option;  (** CREATE TABLE ... AS <query> *)
    }
  | Stmt_create_index of {
      ci_name : string;
      ci_table : string;
      ci_kind : string option;  (** USING <access-method kind> *)
      ci_columns : string list;
    }
  | Stmt_create_view of {
      cv_name : string;
      cv_columns : string list option;
      cv_text : string;  (** original text of the defining query *)
    }
  | Stmt_drop_table of string
  | Stmt_drop_view of string
  | Stmt_drop_index of { di_table : string; di_name : string }
  | Stmt_analyze of string option
  | Stmt_explain of explain_mode * statement
  | Stmt_set of string * string

and explain_mode =
  | Explain_qgm
  | Explain_rewrite
  | Explain_plan
  | Explain_dot  (** Graphviz rendering of the rewritten QGM *)
  | Explain_all
  | Explain_analyze
      (** execute the statement and report per-operator estimated
          vs. actual rows alongside per-stage timings *)
  | Explain_analysis
      (** dump the semantic analysis of the rewritten QGM: inferred
          per-box column properties (nullability, ranges), derived
          keys, row bounds, and prover-backed lint findings *)
  | Explain_verify
      (** run the static verifier: QGM consistency before/after rewrite,
          lints, plan validation, and differential execution *)
  | Explain_rules
      (** list the registered rewrite rules with origin, verification
          status and cumulative fire/attempt counts; takes no statement
          (the parser supplies a dummy inner statement) *)

(* --- small helpers used across the pipeline --- *)

let is_comparison = function
  | Eq | Neq | Lt | Le | Gt | Ge -> true
  | Add | Sub | Mul | Div | Mod | Concat | And | Or -> false

let flip_comparison = function
  | Eq -> Eq
  | Neq -> Neq
  | Lt -> Gt
  | Le -> Ge
  | Gt -> Lt
  | Ge -> Le
  | op -> op

let binop_name = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "%"
  | Concat -> "||"
  | Eq -> "=" | Neq -> "<>" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="
  | And -> "AND" | Or -> "OR"

(** Splits an expression into its top-level conjuncts. *)
let rec conjuncts = function
  | Bin (And, a, b) -> conjuncts a @ conjuncts b
  | e -> [ e ]
