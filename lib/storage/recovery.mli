(** Crash recovery: rebuilds a database instance from its write-ahead
    log.

    Analysis reads the stable log (truncating at the first torn
    record), finds the last checkpoint, and computes the {e winners} —
    transactions whose [Commit] reached the stable prefix.  Redo then
    replays forward from the checkpoint: DDL through the caller's
    callback, winner [Update] records through {!Table_store} (so
    indexes and constraints rebuild themselves).  Losers and aborted
    transactions are skipped entirely — runtime rollback does not log
    compensation records, so their effects simply never reappear. *)

type stats = {
  r_records : int;  (** readable stable records *)
  r_truncated : int;  (** torn records dropped from the tail *)
  r_winners : int;  (** committed transactions restored *)
  r_losers : int;  (** in-flight or aborted transactions discarded *)
  r_redone : int;  (** update records replayed *)
  r_ddl : int;  (** DDL statements replayed *)
  r_from_checkpoint : bool;
}

(** Simulated process death: tables, views, buffered pages and the
    WAL's volatile tail vanish; only the stable log survives. *)
val crash : catalog:Catalog.t -> unit

(** Rebuilds the instance from the stable log; fault injection is
    suspended for the duration.  [replay_ddl] executes one DDL
    statement (Hydrogen text) with logging suppressed.
    @raise Sb_resil.Err.Error (stage [Storage]) when the WAL is
    disabled. *)
val run :
  ?metrics:Sb_obs.Metrics.t ->
  catalog:Catalog.t ->
  replay_ddl:(string -> unit) ->
  unit ->
  stats
