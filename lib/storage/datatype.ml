(** Column datatypes, including externally-defined (user) types.

    The paper (end of section 2, and [WILM88]) lets a database customizer
    (DBC) define "almost any type" for columns.  An external type is known
    to the rest of the system only through the operations registered here:
    how to validate/normalize a literal, how to compare two payloads, and
    how to print them.  Payloads are stored as strings so that the storage
    layer needs no knowledge of the type. *)

type t =
  | Int
  | Float
  | Bool
  | String
  | Ext of string  (** externally-defined type, identified by name *)

let equal a b =
  match a, b with
  | Int, Int | Float, Float | Bool, Bool | String, String -> true
  | Ext n1, Ext n2 -> String.equal n1 n2
  | (Int | Float | Bool | String | Ext _), _ -> false

let to_string = function
  | Int -> "INT"
  | Float -> "FLOAT"
  | Bool -> "BOOL"
  | String -> "STRING"
  | Ext name -> name

let pp ppf t = Fmt.string ppf (to_string t)

(** Operations a DBC must supply for an external type. *)
type ext_ops = {
  ext_name : string;
  ext_parse : string -> (string, string) result;
      (** validate / normalize a literal; [Error msg] rejects it *)
  ext_compare : string -> string -> int;  (** total order on payloads *)
  ext_print : string -> string;  (** display form of a payload *)
}

(** A registry of external types.  One registry belongs to each database
    instance (see {!Catalog}), so tests and independent databases do not
    interfere. *)
type registry = (string, ext_ops) Hashtbl.t

let create_registry () : registry = Hashtbl.create 8

let register (reg : registry) (ops : ext_ops) =
  if Hashtbl.mem reg ops.ext_name then
    Sb_resil.Err.fail Sb_resil.Err.Storage
      "Datatype.register: duplicate external type %s" ops.ext_name;
  Hashtbl.add reg ops.ext_name ops

let find (reg : registry) name = Hashtbl.find_opt reg name

let of_string (reg : registry) s =
  match String.uppercase_ascii s with
  | "INT" | "INTEGER" -> Some Int
  | "FLOAT" | "REAL" | "DOUBLE" -> Some Float
  | "BOOL" | "BOOLEAN" -> Some Bool
  | "STRING" | "VARCHAR" | "CHAR" | "TEXT" -> Some String
  | _ -> if Hashtbl.mem reg s then Some (Ext s) else None
