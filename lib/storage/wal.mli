(** The write-ahead log: an append-only, LSN-stamped, CRC-checked log of
    value-based records with a volatile tail and a stable (crash-
    surviving) prefix.

    {!append} queues a record in the volatile tail; {!flush} forces the
    whole tail to the stable region in one step (group commit: a commit
    that forces the log also forces every record queued before it by
    any session sharing the log).  {!crash} simulates process death —
    the volatile tail vanishes — after which {!Recovery.run} rebuilds
    exactly the committed prefix from {!stable_records}.

    Crash injection sites (via the {!Sb_resil.Faults} plan installed
    with {!set_faults}): [wal.append] (the in-flight record is lost),
    [wal.flush] (a {e torn write} — the oldest pending record reaches
    stable storage with a corrupted CRC), and [checkpoint] (consulted
    before anything durable happens). *)

type record =
  | Begin of int  (** transaction id *)
  | Commit of int
  | Abort of int
  | Update of {
      u_txn : int;
      u_table : string;
      u_before : Tuple.t option;  (** [None] for an insert *)
      u_after : Tuple.t option;  (** [None] for a delete *)
    }
  | Ddl of string  (** an auto-committed DDL statement, as Hydrogen text *)
  | Checkpoint of {
      ck_ddl : string list;  (** full DDL history, in execution order *)
      ck_tables : (string * Tuple.t list) list;  (** table snapshots *)
    }

type t

(** A fresh, enabled, empty log. *)
val create : unit -> t

val set_faults : t -> Sb_resil.Faults.t -> unit

(** Counters land as [sb_wal_appends_total], [sb_wal_flushes_total],
    [sb_wal_records_flushed_total], [sb_wal_checkpoints_total],
    [sb_wal_commits_total], [sb_wal_aborts_total]. *)
val set_metrics : t -> Sb_obs.Metrics.t -> unit

(** Persistence hook, called after every successful flush or checkpoint
    (outside the log's lock); the TCP server points it at
    {!save_file}. *)
val set_sink : t -> (unit -> unit) option -> unit

(** [SET wal = off] disables logging: appends and flushes become no-ops
    and recovery refuses to run (a structured [Storage] error). *)
val enabled : t -> bool

val set_enabled : t -> bool -> unit

(** True between a {!crash} (or a {!load_file} that read records) and a
    successful recovery; the language processor refuses statements while
    set. *)
val needs_recovery : t -> bool

val set_needs_recovery : t -> bool -> unit

(** Highest LSN assigned so far (page LSN stamping reads this). *)
val current_lsn : t -> int

(** Highest LSN in the stable region ([max_int] when disabled) — the
    buffer pool's WAL-rule bound. *)
val stable_lsn : t -> int

(** Appends one record, returning its LSN (0 when disabled).
    Consults site [wal.append]. *)
val append : t -> record -> int

(** A fresh transaction id; its [Begin] record is appended. *)
val begin_txn : t -> int

(** Forces the volatile tail to the stable region.  Consults site
    [wal.flush]; a crash there leaves a torn (CRC-corrupt) record. *)
val flush : t -> unit

(** Simulated process death: discards the volatile tail and flags
    recovery as required. *)
val crash : t -> unit

(** The stable region, oldest first, truncated at the first CRC
    mismatch; also returns how many records were truncated. *)
val stable_records : t -> (int * record) list * int

(** Transactions whose [Commit] reached the readable stable prefix. *)
val committed_txns : t -> int list

(** Takes a checkpoint (DDL history + the caller's table snapshots),
    forces the log, then compacts the stable region down to the
    checkpoint record.  Consults site [checkpoint] first. *)
val checkpoint : t -> tables:(string * Tuple.t list) list -> unit

type stats = {
  s_enabled : bool;
  s_lsn : int;  (** highest LSN assigned *)
  s_stable : int;  (** records in the stable region *)
  s_pending : int;  (** records in the volatile tail *)
  s_appends : int;
  s_flushes : int;
  s_flushed_records : int;
  s_checkpoints : int;
  s_commits : int;
  s_aborts : int;
  s_needs_recovery : bool;
  s_next_txn : int;
}

val stats : t -> stats

(** Writes the stable region to [path] (atomic rename), so a restarted
    process can {!load_file} it and recover. *)
val save_file : t -> string -> unit

(** Replaces the stable region with a previously saved log; returns the
    number of records read and flags recovery as required when
    non-zero. *)
val load_file : t -> string -> int
