(** Column datatypes, including externally-defined (user) types.

    The paper (end of section 2, and [WILM88]) lets a database
    customizer define "almost any type" for columns.  An external type
    is known to the rest of the system only through the operations
    registered here; payloads are stored as strings so that the storage
    layer needs no knowledge of the type. *)

type t =
  | Int
  | Float
  | Bool
  | String
  | Ext of string  (** externally-defined type, identified by name *)

val equal : t -> t -> bool
val to_string : t -> string
val pp : Format.formatter -> t -> unit

(** Operations a DBC must supply for an external type. *)
type ext_ops = {
  ext_name : string;
  ext_parse : string -> (string, string) result;
      (** validate / normalize a literal; [Error msg] rejects it *)
  ext_compare : string -> string -> int;  (** total order on payloads *)
  ext_print : string -> string;  (** display form of a payload *)
}

(** A registry of external types; one belongs to each database instance
    (see {!Catalog.t}), so independent databases do not interfere. *)
type registry

val create_registry : unit -> registry

(** @raise Sb_resil.Err.Error (stage [Storage]) on duplicate type names. *)
val register : registry -> ext_ops -> unit

val find : registry -> string -> ext_ops option

(** Parses a type name (case-insensitive for built-ins; external types
    match their registered name exactly). *)
val of_string : registry -> string -> t option
