(** The default storage manager: a heap of slotted pages holding
    variable-length records, accessed through the buffer pool. *)

open Storage_manager

let make ~(pool : Buffer_pool.t) ~(schema : Schema.t) : instance =
  ignore schema;
  let file = Buffer_pool.create_file pool in
  let tuples = ref 0 in
  (* page with most-recent free room, to avoid rescanning all pages *)
  let last_free = ref (-1) in
  let alloc_for record_len =
    let fits page_no =
      Buffer_pool.with_page pool file page_no (fun p -> Page.has_room p record_len)
    in
    if !last_free >= 0 && fits !last_free then !last_free
    else begin
      let n = Buffer_pool.page_count pool file in
      let rec hunt i =
        if i >= n then Buffer_pool.alloc_page pool file
        else if fits i then i
        else hunt (i + 1)
      in
      let page_no = hunt (max 0 (n - 1)) in
      last_free := page_no;
      page_no
    end
  in
  let insert tuple =
    let record = Row_codec.encode tuple in
    if String.length record > Page.default_size - 64 then
      Sb_resil.Err.fail Sb_resil.Err.Storage
        "heap: record of %d bytes exceeds page capacity (%d)"
        (String.length record)
        (Page.default_size - 64);
    let page_no = alloc_for (String.length record) in
    let slot =
      Buffer_pool.with_page pool file page_no (fun p -> Page.insert p record)
    in
    incr tuples;
    { rid_page = page_no; rid_slot = slot }
  in
  let fetch rid =
    if rid.rid_page < 0 || rid.rid_page >= Buffer_pool.page_count pool file then None
    else
      Buffer_pool.with_page pool file rid.rid_page (fun p ->
          Option.map Row_codec.decode (Page.get p rid.rid_slot))
  in
  let delete rid =
    if rid.rid_page < 0 || rid.rid_page >= Buffer_pool.page_count pool file then false
    else
      Buffer_pool.with_page pool file rid.rid_page (fun p ->
          match Page.get p rid.rid_slot with
          | None -> false
          | Some _ ->
            Page.delete p rid.rid_slot;
            decr tuples;
            true)
  in
  let update rid tuple =
    let record = Row_codec.encode tuple in
    if rid.rid_page < 0 || rid.rid_page >= Buffer_pool.page_count pool file then false
    else
      Buffer_pool.with_page pool file rid.rid_page (fun p ->
          if Page.update p rid.rid_slot record then true
          else
            match Page.get p rid.rid_slot with
            | None -> false
            | Some _ ->
              (* won't fit in place: compact the page and retry, else fail
                 back to the caller who will delete + reinsert *)
              Page.compact p;
              Page.update p rid.rid_slot record)
  in
  let scan () =
    let npages = Buffer_pool.page_count pool file in
    let rec page_seq page_no () =
      if page_no >= npages then Seq.Nil
      else begin
        let rows = ref [] in
        Sb_resil.Faults.guard (Buffer_pool.faults pool) ~site:"heap.page"
          (fun () ->
            rows := [];
            Buffer_pool.with_page pool file page_no (fun p ->
                Page.iter p (fun slot record ->
                    rows :=
                      ({ rid_page = page_no; rid_slot = slot },
                       Row_codec.decode record)
                      :: !rows)));
        let rows = List.rev !rows in
        Seq.append (List.to_seq rows) (page_seq (page_no + 1)) ()
      end
    in
    page_seq 0
  in
  let truncate () =
    let npages = Buffer_pool.page_count pool file in
    for i = 0 to npages - 1 do
      Buffer_pool.with_page pool file i (fun p ->
          Page.iter p (fun slot _ -> Page.delete p slot);
          Page.compact p)
    done;
    tuples := 0;
    last_free := -1
  in
  {
    sm_kind = "heap";
    insert;
    delete;
    update;
    fetch;
    scan;
    tuple_count = (fun () -> !tuples);
    page_count = (fun () -> Buffer_pool.page_count pool file);
    truncate;
  }

let factory : factory =
  { factory_name = "heap"; supports = (fun _ -> true); create = make }
