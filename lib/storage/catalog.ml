(** The catalog: tables, views, attachments, and the extension
    registries of one database instance.

    Views are stored as their Hydrogen text plus optional column renames;
    the language processor (which owns the parser) expands them.  Keeping
    the definition textual here keeps Core independent of Corona, matching
    the paper's layering.

    Concurrency contract: lookups and DDL both run under the catalog
    lock — a leveled {!Sb_conc.Lock} at {!Sb_conc.Level.catalog}, which
    the discipline checker enforces: the buffer pool ({!Sb_conc.Level.buffer_pool})
    and the WAL ({!Sb_conc.Level.wal}) may be acquired {e under} it
    (DDL touches storage while holding the catalog), never the other
    way around.  Every definition change (and every statistics refresh)
    bumps the {e epoch} counter; the plan cache compares a cached plan's
    compile-time epoch against the current one, so DDL invalidates
    shared plans without the catalog knowing the cache exists.  The
    epoch and the definition maps are instrumented shared fields
    ([catalog.epoch] / [catalog.defs]) for lockset race detection. *)

type view_def = {
  view_name : string;
  view_text : string;  (** the defining query, Hydrogen text *)
  view_columns : string list option;  (** optional column renames *)
}

type t = {
  pool : Buffer_pool.t;
  lock : Sb_conc.Lock.t;  (** guards tables/views maps and the epoch *)
  datatypes : Datatype.registry;
  storage_managers : Storage_manager.registry;
  access_methods : Access_method.registry;
  tables : (string, Table_store.t) Hashtbl.t;
  views : (string, view_def) Hashtbl.t;
  mutable epoch : int;
      (** bumped by every DDL statement and statistics refresh *)
  mutable site_of : string -> string;
      (** simulated-distribution hook: site where a table lives *)
  mutable faults : Sb_resil.Faults.t;
  wal : Wal.t;
      (** the instance's write-ahead log; sessions sharing a catalog
          share the log, which is what makes group commit work *)
}

let norm = String.lowercase_ascii

let create ?(pool_capacity = 256) () =
  let t =
    {
      pool = Buffer_pool.create ~capacity:pool_capacity ();
      lock = Sb_conc.Lock.create ~name:"storage.catalog" ~level:Sb_conc.Level.catalog;
      datatypes = Datatype.create_registry ();
      storage_managers = Storage_manager.create_registry ();
      access_methods = Access_method.create_registry ();
      tables = Hashtbl.create 16;
      views = Hashtbl.create 16;
      epoch = 0;
      site_of = (fun _ -> "local");
      faults = Sb_resil.Faults.none;
      wal = Wal.create ();
    }
  in
  Storage_manager.register t.storage_managers Heap_file.factory;
  Storage_manager.register t.storage_managers Fixed_file.factory;
  Access_method.register t.access_methods Access_method.btree_kind;
  Access_method.register t.access_methods Access_method.unique_constraint_kind;
  (* page-LSN honesty: dirty pages are stamped with the current log LSN
     at unpin, and a flush never writes a page ahead of the stable log *)
  Buffer_pool.set_lsn_source t.pool (fun () ->
      if Wal.enabled t.wal then Wal.current_lsn t.wal else 0);
  Buffer_pool.set_stable_lsn t.pool (fun () -> Wal.stable_lsn t.wal);
  t

let locked t f = Sb_conc.Lock.with_lock t.lock f

(* the two instrumented shared fields of the catalog *)
let watch_epoch ~site ~write =
  Sb_conc.Discipline.access ~field:"catalog.epoch" ~site ~write

let watch_defs ~site ~write =
  Sb_conc.Discipline.access ~field:"catalog.defs" ~site ~write

let epoch t =
  locked t (fun () ->
      watch_epoch ~site:"Catalog.epoch" ~write:false;
      t.epoch)

let bump_epoch t =
  locked t (fun () ->
      watch_epoch ~site:"Catalog.bump_epoch" ~write:true;
      t.epoch <- t.epoch + 1)

let set_faults t f =
  locked t (fun () -> t.faults <- f);
  Buffer_pool.set_faults t.pool f;
  Wal.set_faults t.wal f

let faults t = locked t (fun () -> t.faults)

(* unlocked internals, shared by the locked public operations *)
let find_table_u t name = Hashtbl.find_opt t.tables (norm name)
let find_view_u t name = Hashtbl.find_opt t.views (norm name)
let table_exists_u t name = Hashtbl.mem t.tables (norm name)
let view_exists_u t name = Hashtbl.mem t.views (norm name)

let find_table t name =
  Sb_resil.Faults.guard t.faults ~site:"catalog.lookup" (fun () ->
      locked t (fun () ->
          watch_defs ~site:"Catalog.find_table" ~write:false;
          find_table_u t name))

let find_view t name =
  locked t (fun () ->
      watch_defs ~site:"Catalog.find_view" ~write:false;
      find_view_u t name)

let table_exists t name =
  locked t (fun () ->
      watch_defs ~site:"Catalog.table_exists" ~write:false;
      table_exists_u t name)

let view_exists t name =
  locked t (fun () ->
      watch_defs ~site:"Catalog.view_exists" ~write:false;
      view_exists_u t name)

let table_names t =
  locked t (fun () ->
      watch_defs ~site:"Catalog.table_names" ~write:false;
      Hashtbl.fold (fun _ tab acc -> tab.Table_store.name :: acc) t.tables [])
  |> List.sort String.compare

let view_names t =
  locked t (fun () ->
      watch_defs ~site:"Catalog.view_names" ~write:false;
      Hashtbl.fold (fun _ v acc -> v.view_name :: acc) t.views [])
  |> List.sort String.compare

exception Catalog_error of string

let error fmt = Fmt.kstr (fun s -> raise (Catalog_error s)) fmt

(** Creates a table.  [storage] names a registered storage manager
    (default ["heap"]). *)
let create_table t ?(storage = "heap") ~name ~(schema : Schema.t) () =
  locked t @@ fun () ->
  watch_defs ~site:"Catalog.create_table" ~write:true;
  watch_epoch ~site:"Catalog.create_table" ~write:true;
  if table_exists_u t name || view_exists_u t name then
    error "table or view %s already exists" name;
  let factory =
    match Storage_manager.find t.storage_managers storage with
    | Some f -> f
    | None -> error "unknown storage manager %s" storage
  in
  if not (factory.Storage_manager.supports schema) then
    error "storage manager %s cannot store schema of %s" storage name;
  let instance = factory.Storage_manager.create ~pool:t.pool ~schema in
  let table =
    Table_store.create ~name ~schema ~storage:instance ~storage_kind:storage
      ~registry:t.datatypes
  in
  (* declared UNIQUE columns are enforced by constraint attachments —
     constraints are attachments in Core's architecture [LIND87] *)
  Array.iteri
    (fun i col ->
      if col.Schema.col_unique then begin
        let am =
          Access_method.unique_constraint_kind.Access_method.kind_create
            ~name:(Fmt.str "%s_%s_unique" name col.Schema.col_name)
            ~schema ~columns:[ i ] ~registry:t.datatypes
        in
        Table_store.attach table am
      end)
    schema;
  Hashtbl.replace t.tables (norm name) table;
  t.epoch <- t.epoch + 1;
  table

let drop_table t name =
  locked t @@ fun () ->
  watch_defs ~site:"Catalog.drop_table" ~write:true;
  watch_epoch ~site:"Catalog.drop_table" ~write:true;
  match find_table_u t name with
  | None -> error "no such table %s" name
  | Some _ ->
    Hashtbl.remove t.tables (norm name);
    t.epoch <- t.epoch + 1

let create_view t ~name ~text ?columns () =
  locked t @@ fun () ->
  watch_defs ~site:"Catalog.create_view" ~write:true;
  watch_epoch ~site:"Catalog.create_view" ~write:true;
  if table_exists_u t name || view_exists_u t name then
    error "table or view %s already exists" name;
  Hashtbl.replace t.views (norm name)
    { view_name = name; view_text = text; view_columns = columns };
  t.epoch <- t.epoch + 1

let drop_view t name =
  locked t @@ fun () ->
  watch_defs ~site:"Catalog.drop_view" ~write:true;
  watch_epoch ~site:"Catalog.drop_view" ~write:true;
  if not (view_exists_u t name) then error "no such view %s" name;
  Hashtbl.remove t.views (norm name);
  t.epoch <- t.epoch + 1

(** Creates an index (attachment) of a registered [kind] on [table]. *)
let create_index t ~name ~table ~kind ~columns =
  locked t @@ fun () ->
  watch_defs ~site:"Catalog.create_index" ~write:true;
  watch_epoch ~site:"Catalog.create_index" ~write:true;
  let tab =
    match find_table_u t table with
    | Some tab -> tab
    | None -> error "no such table %s" table
  in
  let k =
    match Access_method.find t.access_methods kind with
    | Some k -> k
    | None -> error "unknown access method kind %s" kind
  in
  let positions =
    List.map
      (fun col ->
        match Schema.find_index tab.Table_store.schema col with
        | Some i -> i
        | None -> error "no column %s in %s" col table)
      columns
  in
  let am =
    k.Access_method.kind_create ~name ~schema:tab.Table_store.schema
      ~columns:positions ~registry:t.datatypes
  in
  (* fault site "<kind>.search" (e.g. "btree.search"): the plan is read
     at probe time, so faults installed after CREATE INDEX still apply *)
  let am =
    {
      am with
      Access_method.am_search =
        (fun probe ->
          Sb_resil.Faults.guard t.faults ~site:(kind ^ ".search") (fun () ->
              am.Access_method.am_search probe));
    }
  in
  Table_store.attach tab am;
  t.epoch <- t.epoch + 1;
  am

let drop_index t ~table ~name =
  locked t @@ fun () ->
  watch_defs ~site:"Catalog.drop_index" ~write:true;
  watch_epoch ~site:"Catalog.drop_index" ~write:true;
  match find_table_u t table with
  | None -> error "no such table %s" table
  | Some tab ->
    Table_store.detach tab name;
    t.epoch <- t.epoch + 1

let analyze_all t =
  locked t (fun () ->
      watch_defs ~site:"Catalog.analyze_all" ~write:false;
      watch_epoch ~site:"Catalog.analyze_all" ~write:true;
      Hashtbl.iter (fun _ tab -> ignore (Table_store.analyze tab)) t.tables;
      t.epoch <- t.epoch + 1)

(** A consistent snapshot of every table's contents (sorted by name),
    the payload of a fuzzy checkpoint. *)
let snapshot_tables t : (string * Tuple.t list) list =
  locked t (fun () ->
      watch_defs ~site:"Catalog.snapshot_tables" ~write:false;
      Hashtbl.fold
        (fun _ tab acc ->
          let rows = Table_store.scan tab |> Seq.map snd |> List.of_seq in
          (tab.Table_store.name, rows) :: acc)
        t.tables [])
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(** Simulated process death: every table, view and buffered page
    vanishes.  The WAL's stable region is all that survives; recovery
    rebuilds the instance from it. *)
let reset_storage t =
  locked t @@ fun () ->
  watch_defs ~site:"Catalog.reset_storage" ~write:true;
  watch_epoch ~site:"Catalog.reset_storage" ~write:true;
  Hashtbl.reset t.tables;
  Hashtbl.reset t.views;
  Buffer_pool.discard_all t.pool;
  t.epoch <- t.epoch + 1
