(** The catalog: tables, views, attachments, and the extension
    registries of one database instance.

    Views are stored as their Hydrogen text plus optional column
    renames; the language processor (which owns the parser) expands
    them, keeping Core independent of Corona as in the paper's
    layering. *)

type view_def = {
  view_name : string;
  view_text : string;  (** the defining query, Hydrogen text *)
  view_columns : string list option;  (** optional column renames *)
}

type t = {
  pool : Buffer_pool.t;
  lock : Sb_conc.Lock.t;  (** guards the table/view maps and the epoch *)
  datatypes : Datatype.registry;
  storage_managers : Storage_manager.registry;
  access_methods : Access_method.registry;
  tables : (string, Table_store.t) Hashtbl.t;
  views : (string, view_def) Hashtbl.t;
  mutable epoch : int;
      (** bumped by every DDL statement and statistics refresh; the
          plan cache invalidates on mismatch (read via {!epoch}) *)
  mutable site_of : string -> string;
      (** simulated-distribution hook: the site a table lives at
          (default: every table is ["local"]) *)
  mutable faults : Sb_resil.Faults.t;
      (** fault-injection plan; {!set_faults} also installs it on the
          buffer pool and the WAL *)
  wal : Wal.t;
      (** the instance's write-ahead log; sessions sharing a catalog
          share the log (group commit) *)
}

exception Catalog_error of string

(** A fresh database instance with the built-in storage managers (heap,
    fixed) and access-method kinds (btree) registered. *)
val create : ?pool_capacity:int -> unit -> t

(** The catalog/statistics epoch: changes whenever a definition or its
    statistics may have changed, so a plan compiled at epoch [e] is
    trustworthy iff [epoch t = e] still holds. *)
val epoch : t -> int

(** Advances the epoch without a definition change — used by callers
    that refresh statistics outside the catalog (single-table ANALYZE). *)
val bump_epoch : t -> unit

(** Installs a fault plan on the catalog (site ["catalog.lookup"]),
    its buffer pool (["buffer.pin"]) and — via probe-time consult — all
    index searches (["<kind>.search"]). *)
val set_faults : t -> Sb_resil.Faults.t -> unit

val faults : t -> Sb_resil.Faults.t
val find_table : t -> string -> Table_store.t option
val find_view : t -> string -> view_def option
val table_exists : t -> string -> bool
val view_exists : t -> string -> bool
val table_names : t -> string list
val view_names : t -> string list

(** [storage] names a registered storage manager (default ["heap"]).
    @raise Catalog_error on duplicates or unknown/unsupported managers. *)
val create_table :
  t -> ?storage:string -> name:string -> schema:Schema.t -> unit -> Table_store.t

val drop_table : t -> string -> unit

val create_view :
  t -> name:string -> text:string -> ?columns:string list -> unit -> unit

val drop_view : t -> string -> unit

(** Creates an index (attachment) of a registered [kind] on [table] and
    back-fills it. *)
val create_index :
  t ->
  name:string ->
  table:string ->
  kind:string ->
  columns:string list ->
  Access_method.instance

val drop_index : t -> table:string -> name:string -> unit

val analyze_all : t -> unit

(** A consistent snapshot of every table's contents (sorted by name),
    the payload of a fuzzy checkpoint. *)
val snapshot_tables : t -> (string * Tuple.t list) list

(** Simulated process death: every table, view and buffered page
    vanishes; only the WAL's stable region survives. *)
val reset_storage : t -> unit
