(** The write-ahead log.

    An append-only log of value-based (logical) records — begin / update
    / commit / abort / ddl / checkpoint — each stamped with a
    monotonically increasing LSN and a CRC-32 over its serialized
    payload.  The log has two regions: a {e volatile tail} (records
    appended but not yet forced) and a {e stable prefix} (records that
    survive a crash).  {!flush} moves the whole tail to the stable
    region in one step, so a commit that forces the log also forces
    every record queued before it — group commit for free when several
    sessions share one log.

    Crash simulation is driven by {!Sb_resil.Faults}: {!append} consults
    site [wal.append] (a crash there loses the in-flight record
    entirely), {!flush} consults [wal.flush] (a crash there simulates a
    {e torn write} — the oldest pending record reaches stable storage
    with a corrupted CRC, which recovery must detect and truncate), and
    {!checkpoint} consults [checkpoint] before anything durable happens.

    The "disk" is in-memory, like the rest of Core's storage, but the
    stable region round-trips through {!save_file}/{!load_file} so a
    real process can persist its log and recover after [kill -9]. *)

module Faults = Sb_resil.Faults
module Err = Sb_resil.Err
module Metrics = Sb_obs.Metrics

type record =
  | Begin of int
  | Commit of int
  | Abort of int
  | Update of {
      u_txn : int;
      u_table : string;
      u_before : Tuple.t option;  (** [None] for an insert *)
      u_after : Tuple.t option;  (** [None] for a delete *)
    }
  | Ddl of string  (** an auto-committed DDL statement, as Hydrogen text *)
  | Checkpoint of {
      ck_ddl : string list;  (** full DDL history, in execution order *)
      ck_tables : (string * Tuple.t list) list;  (** table snapshots *)
    }

(* one stable-or-volatile log entry: the payload is serialized at append
   time so the CRC covers exactly the bytes a real log would write *)
type logged = { l_lsn : int; l_crc : int32; l_bytes : string }

(* --- CRC-32 (IEEE 802.3 polynomial, table-driven) --- *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let crc32 (s : string) : int32 =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFFl in
  String.iter
    (fun ch ->
      let i =
        Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code ch))) 0xFFl)
      in
      c := Int32.logxor table.(i) (Int32.shift_right_logical !c 8))
    s;
  Int32.logxor !c 0xFFFFFFFFl

let encode (r : record) : string = Marshal.to_string r []
let decode (bytes : string) : record = Marshal.from_string bytes 0

type t = {
  lock : Sb_conc.Lock.t;
      (** level {!Sb_conc.Level.wal}: taken from under the buffer pool's
          lock (the WAL-rule bound in {!Buffer_pool.unpin}) and never
          the other way around; only the metrics lock nests inside *)
  mutable enabled : bool;
  mutable next_lsn : int;
  mutable next_txn : int;
  mutable stable : logged list;  (** newest first *)
  mutable volatile : logged list;  (** newest first *)
  mutable needs_recovery : bool;
  mutable ddl_history : string list;  (** newest first *)
  mutable faults : Faults.t;
  mutable metrics : Metrics.t option;
  mutable sink : (unit -> unit) option;
      (** called after every successful flush/checkpoint, outside the
          log's lock — the server's file-persistence hook *)
  mutable n_appends : int;
  mutable n_flushes : int;
  mutable n_flushed_records : int;
  mutable n_checkpoints : int;
  mutable n_commits : int;
  mutable n_aborts : int;
}

let create () =
  {
    lock = Sb_conc.Lock.create ~name:"storage.wal" ~level:Sb_conc.Level.wal;
    enabled = true;
    next_lsn = 1;
    next_txn = 1;
    stable = [];
    volatile = [];
    needs_recovery = false;
    ddl_history = [];
    faults = Faults.none;
    metrics = None;
    sink = None;
    n_appends = 0;
    n_flushes = 0;
    n_flushed_records = 0;
    n_checkpoints = 0;
    n_commits = 0;
    n_aborts = 0;
  }

let locked t f = Sb_conc.Lock.with_lock t.lock f

(* The race detector watches the log state as one instrumented field:
   every read or write of the LSN counters / regions records the locks
   held at the access site. *)
let watch ~site ~write = Sb_conc.Discipline.access ~field:"wal.log" ~site ~write
let set_faults t f = locked t (fun () -> t.faults <- f)
let set_metrics t m = locked t (fun () -> t.metrics <- Some m)
let set_sink t sink = locked t (fun () -> t.sink <- sink)

let enabled t =
  locked t (fun () ->
      watch ~site:"Wal.enabled" ~write:false;
      t.enabled)

let set_enabled t on =
  locked t (fun () ->
      watch ~site:"Wal.set_enabled" ~write:true;
      t.enabled <- on)

let needs_recovery t =
  locked t (fun () ->
      watch ~site:"Wal.needs_recovery" ~write:false;
      t.needs_recovery)

let set_needs_recovery t v =
  locked t (fun () ->
      watch ~site:"Wal.set_needs_recovery" ~write:true;
      t.needs_recovery <- v)

let current_lsn t =
  locked t (fun () ->
      watch ~site:"Wal.current_lsn" ~write:false;
      t.next_lsn - 1)

(** Highest LSN in the stable region — the buffer pool's WAL-rule bound
    (a page may only be written once its covering record is stable).
    [max_int] when the log is disabled: no rule to honor. *)
let stable_lsn t =
  locked t @@ fun () ->
  watch ~site:"Wal.stable_lsn" ~write:false;
  if not t.enabled then max_int
  else List.fold_left (fun m l -> max m l.l_lsn) 0 t.stable

let bump t name =
  match t.metrics with
  | None -> ()
  | Some m -> Metrics.incr (Metrics.counter m name)

let bump_by t name n =
  match t.metrics with
  | None -> ()
  | Some m -> if n > 0 then Metrics.incr ~by:n (Metrics.counter m name)

(** Appends one record to the volatile tail and returns its LSN (0 when
    the log is disabled).  Site [wal.append]: a crash here loses the
    record — it was never serialized. *)
let append t (r : record) : int =
  locked t @@ fun () ->
  watch ~site:"Wal.append" ~write:true;
  if not t.enabled then 0
  else begin
    Faults.guard t.faults ~site:"wal.append" (fun () -> ());
    let bytes = encode r in
    let lsn = t.next_lsn in
    t.next_lsn <- lsn + 1;
    t.volatile <- { l_lsn = lsn; l_crc = crc32 bytes; l_bytes = bytes } :: t.volatile;
    t.n_appends <- t.n_appends + 1;
    bump t "sb_wal_appends_total";
    (match r with
    | Commit _ ->
      t.n_commits <- t.n_commits + 1;
      bump t "sb_wal_commits_total"
    | Abort _ ->
      t.n_aborts <- t.n_aborts + 1;
      bump t "sb_wal_aborts_total"
    | Ddl text -> t.ddl_history <- text :: t.ddl_history
    | Checkpoint { ck_ddl; _ } -> t.ddl_history <- List.rev ck_ddl
    | Begin _ | Update _ -> ());
    lsn
  end

(** A fresh transaction id (its [Begin] record is appended). *)
let begin_txn t : int =
  let txn =
    locked t (fun () ->
        watch ~site:"Wal.begin_txn" ~write:true;
        let txn = t.next_txn in
        t.next_txn <- txn + 1;
        txn)
  in
  ignore (append t (Begin txn));
  txn

(* corrupt a CRC so the torn record is detected, never misread *)
let torn l = { l with l_crc = Int32.lognot l.l_crc }

(** Forces the volatile tail to the stable region (one consult of site
    [wal.flush] covers every pending record — group commit).  A crash
    here simulates a torn write: the oldest pending record lands in the
    stable region with a corrupted CRC and everything behind it is
    lost. *)
let flush t : unit =
  let sink =
    locked t @@ fun () ->
    watch ~site:"Wal.flush" ~write:true;
    if (not t.enabled) || t.volatile = [] then None
    else begin
      (match Faults.guard t.faults ~site:"wal.flush" (fun () -> ()) with
      | () -> ()
      | exception Faults.Crashed site ->
        (match List.rev t.volatile with
        | oldest :: _ -> t.stable <- torn oldest :: t.stable
        | [] -> ());
        raise (Faults.Crashed site));
      let n = List.length t.volatile in
      t.stable <- t.volatile @ t.stable;
      t.volatile <- [];
      t.n_flushes <- t.n_flushes + 1;
      t.n_flushed_records <- t.n_flushed_records + n;
      bump t "sb_wal_flushes_total";
      bump_by t "sb_wal_records_flushed_total" n;
      t.sink
    end
  in
  (* the persistence sink runs outside the log's lock *)
  Option.iter (fun sink -> sink ()) sink

(** The crash itself: the volatile tail vanishes; the stable region is
    all that survives.  Recovery is required before further use. *)
let crash t : unit =
  locked t @@ fun () ->
  watch ~site:"Wal.crash" ~write:true;
  t.volatile <- [];
  t.needs_recovery <- true

(** The stable region, oldest first, truncated at the first record whose
    CRC does not match its bytes (a torn write).  Returns the readable
    records and the number of truncated entries. *)
let stable_records t : (int * record) list * int =
  locked t @@ fun () ->
  watch ~site:"Wal.stable_records" ~write:false;
  let all = List.rev t.stable in
  let rec go acc = function
    | [] -> (List.rev acc, 0)
    | l :: rest ->
      if crc32 l.l_bytes = l.l_crc then go ((l.l_lsn, decode l.l_bytes) :: acc) rest
      else (List.rev acc, 1 + List.length rest)
  in
  go [] all

(** Transactions whose [Commit] record made it to the readable stable
    prefix — the set recovery must restore exactly. *)
let committed_txns t : int list =
  let records, _ = stable_records t in
  List.filter_map (function _, Commit txn -> Some txn | _ -> None) records

(** Takes a checkpoint: the full DDL history plus the caller's table
    snapshots become one record, the log is forced, and on success the
    stable region is compacted down to just the checkpoint (records
    before it are no longer needed).  Site [checkpoint] is consulted
    before anything durable happens, so a crash there leaves the old
    log fully intact. *)
let checkpoint t ~(tables : (string * Tuple.t list) list) : unit =
  if not (enabled t) then ()
  else begin
    locked t (fun () -> Faults.guard t.faults ~site:"checkpoint" (fun () -> ()));
    let ck_ddl = locked t (fun () -> List.rev t.ddl_history) in
    let lsn = append t (Checkpoint { ck_ddl; ck_tables = tables }) in
    flush t;
    let sink =
      locked t (fun () ->
          watch ~site:"Wal.checkpoint" ~write:true;
          t.stable <- List.filter (fun l -> l.l_lsn >= lsn) t.stable;
          t.n_checkpoints <- t.n_checkpoints + 1;
          bump t "sb_wal_checkpoints_total";
          t.sink)
    in
    Option.iter (fun sink -> sink ()) sink
  end

(* --- introspection (the shell's \wal, tests, metrics) --- *)

type stats = {
  s_enabled : bool;
  s_lsn : int;  (** highest LSN assigned *)
  s_stable : int;  (** records in the stable region *)
  s_pending : int;  (** records in the volatile tail *)
  s_appends : int;
  s_flushes : int;
  s_flushed_records : int;
  s_checkpoints : int;
  s_commits : int;
  s_aborts : int;
  s_needs_recovery : bool;
  s_next_txn : int;
}

let stats t : stats =
  locked t @@ fun () ->
  watch ~site:"Wal.stats" ~write:false;
  {
    s_enabled = t.enabled;
    s_lsn = t.next_lsn - 1;
    s_stable = List.length t.stable;
    s_pending = List.length t.volatile;
    s_appends = t.n_appends;
    s_flushes = t.n_flushes;
    s_flushed_records = t.n_flushed_records;
    s_checkpoints = t.n_checkpoints;
    s_commits = t.n_commits;
    s_aborts = t.n_aborts;
    s_needs_recovery = t.needs_recovery;
    s_next_txn = t.next_txn;
  }

(* --- file persistence (the TCP server's --wal-file) --- *)

let to_hex (s : string) : string =
  let buf = Buffer.create (2 * String.length s) in
  String.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c))) s;
  Buffer.contents buf

let of_hex (s : string) : string option =
  if String.length s mod 2 <> 0 then None
  else
    try
      Some
        (String.init
           (String.length s / 2)
           (fun i -> Char.chr (int_of_string ("0x" ^ String.sub s (2 * i) 2))))
    with _ -> None

(** Writes the stable region to [path] (atomically, via a rename), so a
    restarted process can {!load_file} and recover. *)
let save_file t (path : string) : unit =
  let header, lines =
    locked t (fun () ->
        ( Printf.sprintf "SBWAL1 %d %d" t.next_lsn t.next_txn,
          List.rev_map
            (fun l -> Printf.sprintf "%d %ld %s" l.l_lsn l.l_crc (to_hex l.l_bytes))
            t.stable ))
  in
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  output_string oc (header ^ "\n");
  List.iter
    (fun line ->
      output_string oc line;
      output_char oc '\n')
    lines;
  close_out oc;
  Sys.rename tmp path

(** Loads a previously saved log into [t]'s stable region (replacing
    it) and flags recovery as required when any records were read.
    Unreadable lines end the load — everything after a torn line is
    gone, exactly as with an in-memory torn write. *)
let load_file t (path : string) : int =
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  let lines = List.rev !lines in
  let next_lsn, next_txn, body =
    match lines with
    | header :: body -> (
      match String.split_on_char ' ' header with
      | [ "SBWAL1"; lsn; txn ] ->
        ( Option.value ~default:1 (int_of_string_opt lsn),
          Option.value ~default:1 (int_of_string_opt txn),
          body )
      | _ -> (1, 1, []))
    | [] -> (1, 1, [])
  in
  let parse line =
    match String.split_on_char ' ' line with
    | [ lsn; crc; hex ] -> (
      match (int_of_string_opt lsn, Int32.of_string_opt crc, of_hex hex) with
      | Some lsn, Some crc, Some bytes -> Some { l_lsn = lsn; l_crc = crc; l_bytes = bytes }
      | _ -> None)
    | _ -> None
  in
  let rec take acc = function
    | [] -> List.rev acc
    | line :: rest -> (
      match parse line with
      | Some l -> take (l :: acc) rest
      | None -> List.rev acc)
  in
  let records = take [] body in
  locked t (fun () ->
      t.stable <- List.rev records;
      t.volatile <- [];
      t.next_lsn <- max next_lsn (1 + List.fold_left (fun m l -> max m l.l_lsn) 0 records);
      t.next_txn <- max next_txn t.next_txn;
      (* rebuild the DDL history from the readable prefix *)
      t.ddl_history <- [];
      List.iter
        (fun l ->
          if crc32 l.l_bytes = l.l_crc then
            match decode l.l_bytes with
            | Ddl text -> t.ddl_history <- text :: t.ddl_history
            | Checkpoint { ck_ddl; _ } -> t.ddl_history <- List.rev ck_ddl
            | _ -> ())
        (List.rev t.stable);
      t.needs_recovery <- t.stable <> [];
      List.length records)
