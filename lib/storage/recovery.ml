(** Crash recovery: rebuilds a database instance from its write-ahead
    log.

    The scheme is ARIES-shaped but adapted to this storage engine's
    simplifications.  Statements run as serial, single-statement
    transactions, updates are logged as value-based before/after tuple
    images, and runtime rollback compensates through {!Table_store}
    without logging CLRs.  That makes recovery a two-pass affair:

    - {e analysis}: read the stable log (truncating at the first torn
      record), find the last checkpoint, and compute the {e winners} —
      transactions whose [Commit] record reached the stable prefix.
    - {e redo}: replay the log forward from the checkpoint.  DDL records
      replay through a caller-supplied callback (the language processor
      owns the parser); [Update] records replay through {!Table_store}
      — but only for winners.  Losers (in-flight at the crash) and
      explicitly aborted transactions are skipped entirely, which is
      exactly the no-CLR undo: their effects simply never reappear.

    Replaying through {!Table_store} (rather than pages) means indexes,
    unique constraints and statistics rebuild themselves: attachments
    are re-created by the DDL replay and maintained by every replayed
    mutation, and a final {!Catalog.analyze_all} refreshes statistics
    and bumps the catalog epoch so cached plans cannot survive a
    crash. *)

module Faults = Sb_resil.Faults
module Err = Sb_resil.Err
module Metrics = Sb_obs.Metrics

type stats = {
  r_records : int;  (** readable stable records *)
  r_truncated : int;  (** torn records dropped from the tail *)
  r_winners : int;  (** committed transactions restored *)
  r_losers : int;  (** in-flight or aborted transactions discarded *)
  r_redone : int;  (** update records replayed *)
  r_ddl : int;  (** DDL statements replayed *)
  r_from_checkpoint : bool;
}

(** Simulated process death: tables, views and buffered pages vanish;
    the WAL's volatile tail vanishes; only the stable log survives.
    After this, {!run} is the only way back to a usable instance. *)
let crash ~(catalog : Catalog.t) : unit =
  Catalog.reset_storage catalog;
  Wal.crash catalog.Catalog.wal

let find_rid tab (row : Tuple.t) =
  Seq.find_map
    (fun (rid, t) ->
      if Tuple.equal ~registry:tab.Table_store.registry t row then Some rid
      else None)
    (Table_store.scan tab)

let redo_update ~catalog ~table ~before ~after =
  let tab =
    match Catalog.find_table catalog table with
    | Some tab -> tab
    | None ->
      Err.fail Err.Storage "recovery: update record for unknown table %s" table
  in
  match (before, after) with
  | None, Some row -> ignore (Table_store.insert tab row)
  | Some row, None -> (
    match find_rid tab row with
    | Some rid -> ignore (Table_store.delete tab rid)
    | None ->
      Err.fail Err.Storage "recovery: delete image not found in %s" table)
  | Some b, Some a -> (
    match find_rid tab b with
    | Some rid -> ignore (Table_store.update tab rid a)
    | None ->
      Err.fail Err.Storage "recovery: update image not found in %s" table)
  | None, None ->
    Err.fail Err.Storage "recovery: empty update record for %s" table

(** Rebuilds the instance from the stable log.  [replay_ddl] executes
    one DDL statement (Hydrogen text) against the catalog — the
    language processor passes its own statement runner, with logging
    suppressed.  Fault injection is suspended for the duration: a
    recovering process does not inject its own faults.
    @raise Sb_resil.Err.Error (stage [Storage]) when the WAL is
    disabled — recovery without a log is impossible, and saying so
    beats silently serving an empty database. *)
let run ?metrics ~(catalog : Catalog.t) ~(replay_ddl : string -> unit) () :
    stats =
  let wal = catalog.Catalog.wal in
  if not (Wal.enabled wal) then
    Err.fail Err.Storage
      "recovery requires the WAL, which is disabled (SET wal = on)";
  let saved_faults = Catalog.faults catalog in
  Catalog.set_faults catalog Faults.none;
  Fun.protect ~finally:(fun () -> Catalog.set_faults catalog saved_faults)
  @@ fun () ->
  (* analysis: readable prefix, winners, last checkpoint *)
  let records, truncated = Wal.stable_records wal in
  let winners =
    List.filter_map
      (function _, Wal.Commit txn -> Some txn | _ -> None)
      records
  in
  let losers =
    List.filter_map
      (function
        | _, Wal.Begin txn when not (List.mem txn winners) -> Some txn
        | _ -> None)
      records
  in
  let after_checkpoint =
    (* replay from the LAST readable checkpoint; everything before it
       is already folded into its snapshots *)
    List.fold_left
      (fun acc (lsn, r) ->
        match r with Wal.Checkpoint _ -> [ (lsn, r) ] | _ -> (lsn, r) :: acc)
      [] records
    |> List.rev
  in
  let from_checkpoint =
    match after_checkpoint with
    | (_, Wal.Checkpoint _) :: _ -> true
    | _ -> false
  in
  (* redo: start from an empty instance, replay forward *)
  Catalog.reset_storage catalog;
  let redone = ref 0 and ddl = ref 0 in
  List.iter
    (fun (_lsn, r) ->
      match r with
      | Wal.Checkpoint { ck_ddl; ck_tables } ->
        List.iter
          (fun text ->
            replay_ddl text;
            incr ddl)
          ck_ddl;
        List.iter
          (fun (name, rows) ->
            match Catalog.find_table catalog name with
            | Some tab ->
              List.iter (fun row -> ignore (Table_store.insert tab row)) rows
            | None ->
              Err.fail Err.Storage
                "recovery: checkpoint snapshot for unknown table %s" name)
          ck_tables
      | Wal.Ddl text ->
        replay_ddl text;
        incr ddl
      | Wal.Update { u_txn; u_table; u_before; u_after }
        when List.mem u_txn winners ->
        redo_update ~catalog ~table:u_table ~before:u_before ~after:u_after;
        incr redone
      | Wal.Update _ | Wal.Begin _ | Wal.Commit _ | Wal.Abort _ -> ())
    after_checkpoint;
  (* statistics are not logged: rebuild them (this also bumps the
     epoch, invalidating any plan cached before the crash) *)
  Catalog.analyze_all catalog;
  Wal.set_needs_recovery wal false;
  let stats =
    {
      r_records = List.length records;
      r_truncated = truncated;
      r_winners = List.length winners;
      r_losers = List.length losers;
      r_redone = !redone;
      r_ddl = !ddl;
      r_from_checkpoint = from_checkpoint;
    }
  in
  (match metrics with
  | None -> ()
  | Some m ->
    Metrics.incr (Metrics.counter m "sb_recovery_runs_total");
    Metrics.incr ~by:stats.r_records
      (Metrics.counter m "sb_recovery_records_scanned_total");
    Metrics.incr ~by:stats.r_redone
      (Metrics.counter m "sb_recovery_records_redone_total");
    if stats.r_truncated > 0 then
      Metrics.incr ~by:stats.r_truncated
        (Metrics.counter m "sb_recovery_torn_records_total"));
  stats
