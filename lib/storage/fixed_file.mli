(** A storage manager for fixed-length records only (the paper's example
    of a Core storage-manager extension): records packed densely into
    cells whose position follows from the slot number, so fetch is O(1)
    arithmetic. *)

(** @raise Sb_resil.Err.Error (stage [Storage]) on schemas with variable-length columns. *)
val make : pool:Buffer_pool.t -> schema:Schema.t -> Storage_manager.instance

(** Registered as ["fixed"]; supports INT/FLOAT/BOOL schemas. *)
val factory : Storage_manager.factory
