(** Serialization of tuples to byte records and back.

    Records stored in pages are byte strings; storage managers need not
    know anything about values.  Two codecs are provided:

    - the {e variable-length} codec, a tagged encoding handling any value;
    - the {e fixed-length} codec, used by the fixed-length storage-manager
      extension (section 1 of the paper: "a new storage manager which
      handles fixed-length records only -- but extremely efficiently").
      It supports INT / FLOAT / BOOL columns and nulls via a bitmap, and
      yields records of a width computable from the schema alone. *)

let buf_add_int64 buf (x : int64) =
  for i = 0 to 7 do
    Buffer.add_char buf (Char.chr (Int64.to_int (Int64.shift_right_logical x (i * 8)) land 0xff))
  done

let get_int64 (s : string) off =
  let r = ref 0L in
  for i = 7 downto 0 do
    r := Int64.logor (Int64.shift_left !r 8) (Int64.of_int (Char.code s.[off + i]))
  done;
  !r

let buf_add_varint buf (x : int) =
  (* LEB128-ish, for non-negative lengths *)
  let rec go x =
    if x < 0x80 then Buffer.add_char buf (Char.chr x)
    else (
      Buffer.add_char buf (Char.chr (0x80 lor (x land 0x7f)));
      go (x lsr 7))
  in
  go x

let get_varint (s : string) off =
  let rec go off shift acc =
    let b = Char.code s.[off] in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 = 0 then (acc, off + 1) else go (off + 1) (shift + 7) acc
  in
  go off 0 0

(* --- variable-length codec --- *)

let encode (t : Tuple.t) : string =
  let buf = Buffer.create 64 in
  buf_add_varint buf (Array.length t);
  Array.iter
    (fun v ->
      match (v : Value.t) with
      | Null -> Buffer.add_char buf '\000'
      | Int x ->
        Buffer.add_char buf '\001';
        buf_add_int64 buf (Int64.of_int x)
      | Float x ->
        Buffer.add_char buf '\002';
        buf_add_int64 buf (Int64.bits_of_float x)
      | Bool b -> Buffer.add_char buf (if b then '\004' else '\003')
      | String s ->
        Buffer.add_char buf '\005';
        buf_add_varint buf (String.length s);
        Buffer.add_string buf s
      | Ext (n, p) ->
        Buffer.add_char buf '\006';
        buf_add_varint buf (String.length n);
        Buffer.add_string buf n;
        buf_add_varint buf (String.length p);
        Buffer.add_string buf p)
    t;
  Buffer.contents buf

let decode (s : string) : Tuple.t =
  let n, off = get_varint s 0 in
  let off = ref off in
  let read_string () =
    let len, o = get_varint s !off in
    off := o;
    let str = String.sub s !off len in
    off := !off + len;
    str
  in
  Array.init n (fun _ ->
      let tag = s.[!off] in
      incr off;
      match tag with
      | '\000' -> Value.Null
      | '\001' ->
        let x = get_int64 s !off in
        off := !off + 8;
        Value.Int (Int64.to_int x)
      | '\002' ->
        let x = get_int64 s !off in
        off := !off + 8;
        Value.Float (Int64.float_of_bits x)
      | '\003' -> Value.Bool false
      | '\004' -> Value.Bool true
      | '\005' -> Value.String (read_string ())
      | '\006' ->
        let n = read_string () in
        let p = read_string () in
        Value.Ext (n, p)
      | c ->
        (* an unknown tag means the record bytes are corrupt: a
           structured, non-retryable storage error rather than a bare
           [Failure], so the run boundary classifies it *)
        Sb_resil.Err.fail Sb_resil.Err.Storage
          "Row_codec.decode: bad tag %C (corrupt record)" c)

(* --- fixed-length codec --- *)

(** Width in bytes of a fixed-length record for [schema], or [None] if the
    schema contains variable-length columns. *)
let fixed_width (schema : Schema.t) : int option =
  let bitmap = (Array.length schema + 7) / 8 in
  let rec loop i acc =
    if i >= Array.length schema then Some acc
    else
      match schema.(i).Schema.col_type with
      | Datatype.Int | Datatype.Float -> loop (i + 1) (acc + 8)
      | Datatype.Bool -> loop (i + 1) (acc + 1)
      | Datatype.String | Datatype.Ext _ -> None
  in
  loop 0 bitmap

let encode_fixed ~(schema : Schema.t) (t : Tuple.t) : string =
  let n = Array.length schema in
  let bitmap_len = (n + 7) / 8 in
  let buf = Buffer.create 32 in
  let bitmap = Bytes.make bitmap_len '\000' in
  Array.iteri
    (fun i v ->
      if Value.is_null v then
        Bytes.set bitmap (i / 8)
          (Char.chr (Char.code (Bytes.get bitmap (i / 8)) lor (1 lsl (i mod 8)))))
    t;
  Buffer.add_bytes buf bitmap;
  Array.iteri
    (fun i c ->
      let v = t.(i) in
      match c.Schema.col_type with
      | Datatype.Int ->
        buf_add_int64 buf (if Value.is_null v then 0L else Int64.of_int (Value.as_int v))
      | Datatype.Float ->
        buf_add_int64 buf
          (if Value.is_null v then 0L else Int64.bits_of_float (Value.as_float v))
      | Datatype.Bool ->
        Buffer.add_char buf
          (if (not (Value.is_null v)) && Value.as_bool v then '\001' else '\000')
      | Datatype.String | Datatype.Ext _ ->
        Sb_resil.Err.fail Sb_resil.Err.Storage
          "Row_codec.encode_fixed: variable-length column")
    schema;
  Buffer.contents buf

let decode_fixed ~(schema : Schema.t) (s : string) : Tuple.t =
  let n = Array.length schema in
  let bitmap_len = (n + 7) / 8 in
  let off = ref bitmap_len in
  Array.init n (fun i ->
      let null = Char.code s.[i / 8] land (1 lsl (i mod 8)) <> 0 in
      match schema.(i).Schema.col_type with
      | Datatype.Int ->
        let x = get_int64 s !off in
        off := !off + 8;
        if null then Value.Null else Value.Int (Int64.to_int x)
      | Datatype.Float ->
        let x = get_int64 s !off in
        off := !off + 8;
        if null then Value.Null else Value.Float (Int64.float_of_bits x)
      | Datatype.Bool ->
        let c = s.[!off] in
        incr off;
        if null then Value.Null else Value.Bool (c = '\001')
      | Datatype.String | Datatype.Ext _ ->
        Sb_resil.Err.fail Sb_resil.Err.Storage
          "Row_codec.decode_fixed: variable-length column")
