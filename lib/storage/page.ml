(** Slotted pages.

    A page holds variable-length byte records addressed by slot number.
    Record bytes grow from the end of the page towards the slot directory,
    which grows from the front; deleting a record leaves a dead slot so
    that record ids (page, slot) remain stable. *)

let default_size = 4096

type slot = { mutable off : int; mutable len : int; mutable live : bool }

type t = {
  page_id : int;
  size : int;
  mutable slots : slot array;
  mutable nslots : int;
  mutable free_low : int;  (** lowest byte offset used by record data *)
  mutable data : Bytes.t;
  mutable dirty : bool;
  mutable lsn : int;
      (** LSN of the last WAL record covering a change to this page;
          the buffer pool stamps it at unpin and honors the WAL rule
          (never write a page ahead of the stable log) when flushing *)
}

let create ?(size = default_size) page_id =
  {
    page_id;
    size;
    slots = [||];
    nslots = 0;
    free_low = size;
    data = Bytes.create size;
    dirty = false;
    lsn = 0;
  }

(* Each slot costs a fixed overhead when estimating free space; the
   in-memory directory is an array so the constant is nominal. *)
let slot_overhead = 8

let free_space t =
  t.free_low - (t.nslots * slot_overhead) - slot_overhead

let has_room t record_len = free_space t >= record_len

let live_count t =
  let n = ref 0 in
  for i = 0 to t.nslots - 1 do
    if t.slots.(i).live then incr n
  done;
  !n

let ensure_slot_capacity t =
  if t.nslots >= Array.length t.slots then begin
    let cap = max 8 (2 * Array.length t.slots) in
    let slots = Array.init cap (fun i ->
        if i < t.nslots then t.slots.(i)
        else { off = 0; len = 0; live = false })
    in
    t.slots <- slots
  end

(** Inserts [record]; returns the slot number.
    @raise Sb_resil.Err.Error (stage [Storage], non-retryable) if the
    page lacks room — a broken caller invariant (callers check
    {!has_room}), not a transient condition. *)
let insert t (record : string) =
  let len = String.length record in
  if not (has_room t len) then
    Sb_resil.Err.fail Sb_resil.Err.Storage
      "Page.insert: page full (%d bytes requested, %d free)" len
      (free_space t);
  let off = t.free_low - len in
  Bytes.blit_string record 0 t.data off len;
  t.free_low <- off;
  ensure_slot_capacity t;
  let slot_no = t.nslots in
  t.slots.(slot_no) <- { off; len; live = true };
  t.nslots <- t.nslots + 1;
  t.dirty <- true;
  slot_no

let get t slot_no : string option =
  if slot_no < 0 || slot_no >= t.nslots then None
  else
    let s = t.slots.(slot_no) in
    if s.live then Some (Bytes.sub_string t.data s.off s.len) else None

let delete t slot_no =
  if slot_no >= 0 && slot_no < t.nslots then begin
    let s = t.slots.(slot_no) in
    if s.live then begin
      s.live <- false;
      t.dirty <- true
    end
  end

(** In-place update when the new record fits in the old record's bytes;
    otherwise returns [false] and the caller must delete + reinsert. *)
let update t slot_no (record : string) =
  if slot_no < 0 || slot_no >= t.nslots then false
  else
    let s = t.slots.(slot_no) in
    if not s.live then false
    else
      let len = String.length record in
      if len <= s.len then begin
        Bytes.blit_string record 0 t.data s.off len;
        s.len <- len;
        t.dirty <- true;
        true
      end
      else false

(** Reads [len] bytes at offset [pos] inside a live record without
    copying the rest of the page. *)
let read_sub t slot_no ~pos ~len : string option =
  if slot_no < 0 || slot_no >= t.nslots then None
  else
    let s = t.slots.(slot_no) in
    if s.live && pos >= 0 && pos + len <= s.len then
      Some (Bytes.sub_string t.data (s.off + pos) len)
    else None

(** Overwrites bytes at offset [pos] inside a live record in place. *)
let write_sub t slot_no ~pos (src : string) : bool =
  if slot_no < 0 || slot_no >= t.nslots then false
  else
    let s = t.slots.(slot_no) in
    if s.live && pos >= 0 && pos + String.length src <= s.len then begin
      Bytes.blit_string src 0 t.data (s.off + pos) (String.length src);
      t.dirty <- true;
      true
    end
    else false

(** Iterates live records as [(slot, record)]. *)
let iter t f =
  for i = 0 to t.nslots - 1 do
    let s = t.slots.(i) in
    if s.live then f i (Bytes.sub_string t.data s.off s.len)
  done

(** Rewrites the page with only its live records, reclaiming dead space.
    Slot numbers are preserved (dead slots stay dead). *)
let compact t =
  let live = ref [] in
  iter t (fun i r -> live := (i, r) :: !live);
  let data = Bytes.create t.size in
  let free = ref t.size in
  List.iter
    (fun (i, r) ->
      let len = String.length r in
      free := !free - len;
      Bytes.blit_string r 0 data !free len;
      t.slots.(i).off <- !free;
      t.slots.(i).len <- len)
    !live;
  t.data <- data;
  t.free_low <- !free;
  t.dirty <- true
