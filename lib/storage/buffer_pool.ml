(** Buffer manager.

    Core's buffer manager mediates all page access.  Here the "disk" is an
    in-memory store of pages per file; what matters for reproducing the
    paper's cost behaviour is the {e accounting}: a page access that misses
    the (bounded, LRU) cache counts as a physical read, and evicting a
    dirty page counts as a physical write.  The optimizer's cost model and
    the experiment harness read these counters.

    Concurrency contract (the multi-session server relies on it): every
    operation that touches the frame cache, the file table or the stats
    runs under the pool lock — a leveled {!Sb_conc.Lock} at
    {!Sb_conc.Level.buffer_pool}, checked by the discipline layer: it
    may be taken under the catalog lock (DDL), and the WAL lock may be
    taken under it ({!unpin} consults the log's LSN), never the
    reverse.  The frame cache and the stats are instrumented shared
    fields ([buffer_pool.frames] / [buffer_pool.stats]) for lockset
    race detection.  Page {e contents} are not protected here — writers
    must be serialized above (the server takes its writer lock around
    DML/DDL statements). *)

type file_id = int

type stats = {
  mutable logical_reads : int;
  mutable physical_reads : int;
  mutable physical_writes : int;
  mutable evictions : int;
}

type frame = {
  page : Page.t;
  f_file : file_id;
  mutable pins : int;
  mutable last_used : int;
}

type file = {
  mutable pages : Page.t array;  (** the backing "disk" *)
  mutable npages : int;
  page_size : int;
}

type t = {
  capacity : int;
  lock : Sb_conc.Lock.t;  (** guards files, cache, tick and stats *)
  files : (file_id, file) Hashtbl.t;
  cache : (file_id * int, frame) Hashtbl.t;
  mutable next_file : file_id;
  mutable tick : int;
  stats : stats;
  mutable faults : Sb_resil.Faults.t;
  mutable lsn_source : unit -> int;
      (** current WAL LSN; stamped onto dirty pages at unpin time *)
  mutable stable_lsn : unit -> int;
      (** highest LSN known stable; {!flush_all} honors the WAL rule
          (never write a page whose LSN is ahead of the stable log) *)
  mutable force_policy : bool;
      (** force-on-commit: when set, the language processor flushes all
          dirty pages at each commit; the default is no-force (pages
          are written back at eviction and at checkpoints) *)
}

let create ?(capacity = 256) () =
  {
    capacity;
    lock =
      Sb_conc.Lock.create ~name:"storage.buffer_pool"
        ~level:Sb_conc.Level.buffer_pool;
    files = Hashtbl.create 16;
    cache = Hashtbl.create (2 * capacity);
    next_file = 0;
    tick = 0;
    stats = { logical_reads = 0; physical_reads = 0; physical_writes = 0; evictions = 0 };
    faults = Sb_resil.Faults.none;
    lsn_source = (fun () -> 0);
    stable_lsn = (fun () -> max_int);
    force_policy = false;
  }

let locked t f = Sb_conc.Lock.with_lock t.lock f

(* the pool's instrumented shared fields *)
let watch_frames ~site ~write =
  Sb_conc.Discipline.access ~field:"buffer_pool.frames" ~site ~write

let watch_stats ~site ~write =
  Sb_conc.Discipline.access ~field:"buffer_pool.stats" ~site ~write

let set_faults t f = locked t (fun () -> t.faults <- f)
let faults t = locked t (fun () -> t.faults)
let set_lsn_source t f = locked t (fun () -> t.lsn_source <- f)
let set_stable_lsn t f = locked t (fun () -> t.stable_lsn <- f)
let force_policy t = locked t (fun () -> t.force_policy)
let set_force_policy t b = locked t (fun () -> t.force_policy <- b)

let stats t = t.stats

let reset_stats t =
  locked t @@ fun () ->
  watch_stats ~site:"Buffer_pool.reset_stats" ~write:true;
  t.stats.logical_reads <- 0;
  t.stats.physical_reads <- 0;
  t.stats.physical_writes <- 0;
  t.stats.evictions <- 0

let create_file ?(page_size = Page.default_size) t =
  locked t @@ fun () ->
  watch_frames ~site:"Buffer_pool.create_file" ~write:true;
  let id = t.next_file in
  t.next_file <- id + 1;
  Hashtbl.replace t.files id { pages = [||]; npages = 0; page_size };
  id

let drop_file t id =
  locked t @@ fun () ->
  watch_frames ~site:"Buffer_pool.drop_file" ~write:true;
  Hashtbl.remove t.files id;
  Hashtbl.iter
    (fun key frame -> if frame.f_file = id then Hashtbl.remove t.cache key)
    (Hashtbl.copy t.cache)

(* callers hold the lock *)
let get_file t id =
  match Hashtbl.find_opt t.files id with
  | Some f -> f
  | None ->
    Sb_resil.Err.fail Sb_resil.Err.Storage "Buffer_pool: unknown file %d" id

let page_count t id =
  locked t (fun () ->
      watch_frames ~site:"Buffer_pool.page_count" ~write:false;
      (get_file t id).npages)

(* Evict the least-recently-used unpinned frame, if the pool is over
   capacity.  Dirty pages are "written back" (they already live in the
   file array; we just count the write and clear the flag).  Runs under
   the lock. *)
let maybe_evict t =
  while Hashtbl.length t.cache > t.capacity do
    let victim = ref None in
    Hashtbl.iter
      (fun key frame ->
        if frame.pins = 0 then
          match !victim with
          | Some (_, best) when best.last_used <= frame.last_used -> ()
          | _ -> victim := Some (key, frame))
      t.cache;
    match !victim with
    | None -> raise Exit (* everything pinned: give up silently *)
    | Some (key, frame) ->
      if frame.page.Page.dirty then begin
        t.stats.physical_writes <- t.stats.physical_writes + 1;
        frame.page.Page.dirty <- false
      end;
      t.stats.evictions <- t.stats.evictions + 1;
      Hashtbl.remove t.cache key
  done

let maybe_evict t = try maybe_evict t with Exit -> ()

let pin_raw t file_id page_no =
  locked t @@ fun () ->
  watch_frames ~site:"Buffer_pool.pin" ~write:true;
  watch_stats ~site:"Buffer_pool.pin" ~write:true;
  t.tick <- t.tick + 1;
  t.stats.logical_reads <- t.stats.logical_reads + 1;
  match Hashtbl.find_opt t.cache (file_id, page_no) with
  | Some frame ->
    frame.pins <- frame.pins + 1;
    frame.last_used <- t.tick;
    frame.page
  | None ->
    let f = get_file t file_id in
    if page_no < 0 || page_no >= f.npages then
      Sb_resil.Err.fail Sb_resil.Err.Storage
        "Buffer_pool.pin: page %d/%d out of range" file_id page_no;
    t.stats.physical_reads <- t.stats.physical_reads + 1;
    let frame =
      { page = f.pages.(page_no); f_file = file_id; pins = 1; last_used = t.tick }
    in
    Hashtbl.replace t.cache (file_id, page_no) frame;
    maybe_evict t;
    frame.page

let pin t file_id page_no =
  Sb_resil.Faults.guard t.faults ~site:"buffer.pin" (fun () ->
      pin_raw t file_id page_no)

let unpin t file_id page_no =
  locked t @@ fun () ->
  watch_frames ~site:"Buffer_pool.unpin" ~write:true;
  match Hashtbl.find_opt t.cache (file_id, page_no) with
  | Some frame when frame.pins > 0 ->
    frame.pins <- frame.pins - 1;
    (* WAL honesty: a page released dirty carries the LSN of the log
       record covering its latest change, so a flush can refuse to
       write it ahead of the stable log. *)
    if frame.page.Page.dirty then frame.page.Page.lsn <- t.lsn_source ()
  | _ -> ()

let with_page t file_id page_no f =
  let page = pin t file_id page_no in
  Fun.protect ~finally:(fun () -> unpin t file_id page_no) (fun () -> f page)

(** Writes back every dirty page whose LSN does not run ahead of the
    stable log (the WAL rule); returns how many pages were written.
    Consults fault site [buffer.flush] once, before any write, so a
    crash there loses the entire write-back. *)
let flush_all t =
  Sb_resil.Faults.guard t.faults ~site:"buffer.flush" (fun () -> ());
  locked t @@ fun () ->
  watch_frames ~site:"Buffer_pool.flush_all" ~write:true;
  watch_stats ~site:"Buffer_pool.flush_all" ~write:true;
  let stable = t.stable_lsn () in
  let written = ref 0 in
  Hashtbl.iter
    (fun _ f ->
      for i = 0 to f.npages - 1 do
        let page = f.pages.(i) in
        if page.Page.dirty && page.Page.lsn <= stable then begin
          t.stats.physical_writes <- t.stats.physical_writes + 1;
          page.Page.dirty <- false;
          incr written
        end
      done)
    t.files;
  !written

let dirty_pages t =
  locked t @@ fun () ->
  watch_frames ~site:"Buffer_pool.dirty_pages" ~write:false;
  let n = ref 0 in
  Hashtbl.iter
    (fun _ f ->
      for i = 0 to f.npages - 1 do
        if f.pages.(i).Page.dirty then incr n
      done)
    t.files;
  !n

(** Simulated process death: every file and cached frame vanishes (the
    "disk" here is volatile memory — durability comes from the WAL).
    File ids stay monotonic so stale handles can never alias a new
    file. *)
let discard_all t =
  locked t @@ fun () ->
  watch_frames ~site:"Buffer_pool.discard_all" ~write:true;
  Hashtbl.reset t.files;
  Hashtbl.reset t.cache;
  t.tick <- 0

(** Appends a fresh page to [file_id] and returns its page number. *)
let alloc_page t file_id =
  locked t @@ fun () ->
  watch_frames ~site:"Buffer_pool.alloc_page" ~write:true;
  let f = get_file t file_id in
  let page_no = f.npages in
  let page = Page.create ~size:f.page_size page_no in
  if f.npages >= Array.length f.pages then begin
    let cap = max 8 (2 * Array.length f.pages) in
    let pages =
      Array.init cap (fun i -> if i < f.npages then f.pages.(i) else page)
    in
    f.pages <- pages
  end;
  f.pages.(page_no) <- page;
  f.npages <- f.npages + 1;
  t.tick <- t.tick + 1;
  let frame = { page; f_file = file_id; pins = 0; last_used = t.tick } in
  Hashtbl.replace t.cache (file_id, page_no) frame;
  maybe_evict t;
  page_no
