(** Pluggable storage managers.

    Core's data management extension architecture [LIND87] lets a DBC
    add new storage methods for tables.  A storage manager owns one
    table's bytes; the rest of the system addresses records only through
    record ids and the operations below.  Managers register a {!factory}
    by name; [CREATE TABLE ... USING <name>] selects one. *)

(** Record identifier: stable address of a record within its table. *)
type rid = { rid_page : int; rid_slot : int }

val compare_rid : rid -> rid -> int
val pp_rid : Format.formatter -> rid -> unit

(** One storage-manager instance holds one table's records. *)
type instance = {
  sm_kind : string;
  insert : Tuple.t -> rid;
  delete : rid -> bool;
  update : rid -> Tuple.t -> bool;
      (** [false] when the record could not be updated in place (the
          caller deletes and reinserts) or does not exist *)
  fetch : rid -> Tuple.t option;
  scan : unit -> (rid * Tuple.t) Seq.t;
  tuple_count : unit -> int;
  page_count : unit -> int;
  truncate : unit -> unit;
}

type factory = {
  factory_name : string;
  supports : Schema.t -> bool;
      (** can this manager store tables of the given schema? *)
  create : pool:Buffer_pool.t -> schema:Schema.t -> instance;
}

type registry

val create_registry : unit -> registry

(** @raise Sb_resil.Err.Error (stage [Storage]) on duplicate factory names. *)
val register : registry -> factory -> unit

val find : registry -> string -> factory option
val names : registry -> string list
