(** Pluggable storage managers.

    Core's data management extension architecture [LIND87] lets a DBC add
    new storage methods for tables.  A storage manager is an object that
    owns the bytes of one table; the rest of the system addresses records
    only through record ids and the operations below.  Managers register a
    {!factory} by name; `CREATE TABLE ... USING <name>` selects one. *)

(** Record identifier: stable address of a record within its table. *)
type rid = { rid_page : int; rid_slot : int }

let compare_rid a b =
  match Int.compare a.rid_page b.rid_page with
  | 0 -> Int.compare a.rid_slot b.rid_slot
  | c -> c

let pp_rid ppf r = Fmt.pf ppf "(%d,%d)" r.rid_page r.rid_slot

(** One storage-manager instance holds one table's records. *)
type instance = {
  sm_kind : string;
  insert : Tuple.t -> rid;
  delete : rid -> bool;
  update : rid -> Tuple.t -> bool;
  fetch : rid -> Tuple.t option;
  scan : unit -> (rid * Tuple.t) Seq.t;
  tuple_count : unit -> int;
  page_count : unit -> int;
  truncate : unit -> unit;
}

type factory = {
  factory_name : string;
  supports : Schema.t -> bool;
      (** can this manager store tables of the given schema? *)
  create : pool:Buffer_pool.t -> schema:Schema.t -> instance;
}

type registry = (string, factory) Hashtbl.t

let create_registry () : registry = Hashtbl.create 4

let register (reg : registry) (f : factory) =
  if Hashtbl.mem reg f.factory_name then
    Sb_resil.Err.fail Sb_resil.Err.Storage
      "Storage_manager.register: duplicate %s" f.factory_name;
  Hashtbl.add reg f.factory_name f

let find (reg : registry) name = Hashtbl.find_opt reg name

let names (reg : registry) =
  Hashtbl.fold (fun k _ acc -> k :: acc) reg [] |> List.sort String.compare
