(** R-tree [GUTT84] over 2-D rectangles — the paper's example of a new
    access-method attachment that "Corona must recognize when ... useful
    for a query".  Guttman's linear-cost split is used. *)

type rect = { x0 : float; y0 : float; x1 : float; y1 : float }

let rect ~x0 ~y0 ~x1 ~y1 =
  { x0 = min x0 x1; y0 = min y0 y1; x1 = max x0 x1; y1 = max y0 y1 }

let overlaps a b = a.x0 <= b.x1 && b.x0 <= a.x1 && a.y0 <= b.y1 && b.y0 <= a.y1

let contains a b = a.x0 <= b.x0 && a.y0 <= b.y0 && a.x1 >= b.x1 && a.y1 >= b.y1

let union a b =
  { x0 = min a.x0 b.x0; y0 = min a.y0 b.y0; x1 = max a.x1 b.x1; y1 = max a.y1 b.y1 }

let area r = (r.x1 -. r.x0) *. (r.y1 -. r.y0)

let enlargement r extra = area (union r extra) -. area r

let pp_rect ppf r = Fmt.pf ppf "[%g,%g;%g,%g]" r.x0 r.y0 r.x1 r.y1

(** Parses the canonical payload form "x0,y0,x1,y1" of the [box] external
    datatype; shared with the spatial extension. *)
let rect_of_payload s =
  match String.split_on_char ',' s |> List.map float_of_string_opt with
  | [ Some x0; Some y0; Some x1; Some y1 ] -> Some (rect ~x0 ~y0 ~x1 ~y1)
  | _ | (exception _) -> None

let payload_of_rect r = Fmt.str "%g,%g,%g,%g" r.x0 r.y0 r.x1 r.y1

type rid = Storage_manager.rid

type entry = { mbr : rect; child : child }
and child = Node of node | Record of rid
and node = { mutable entries : entry list; leaf : bool }

type t = {
  max_entries : int;
  mutable root : node;
  mutable count : int;
  mutable node_accesses : int;
}

let create ?(max_entries = 8) () =
  {
    max_entries;
    root = { entries = []; leaf = true };
    count = 0;
    node_accesses = 0;
  }

let entry_count t = t.count
let accesses t = t.node_accesses
let reset_accesses t = t.node_accesses <- 0

let node_mbr node =
  match node.entries with
  | [] -> { x0 = 0.; y0 = 0.; x1 = 0.; y1 = 0. }
  | e :: rest -> List.fold_left (fun acc e -> union acc e.mbr) e.mbr rest

(* Guttman linear split: pick the two seeds with greatest normalized
   separation, then assign remaining entries to the group whose MBR grows
   least. *)
let linear_split t (entries : entry list) =
  let arr = Array.of_list entries in
  let n = Array.length arr in
  let best_pair = ref (0, 1) and best_sep = ref neg_infinity in
  let dim lo hi =
    let lo_max = ref neg_infinity and hi_min = ref infinity in
    let lo_i = ref 0 and hi_i = ref 0 in
    let span_lo = ref infinity and span_hi = ref neg_infinity in
    Array.iteri
      (fun i e ->
        let l = lo e.mbr and h = hi e.mbr in
        if l > !lo_max then begin lo_max := l; lo_i := i end;
        if h < !hi_min then begin hi_min := h; hi_i := i end;
        span_lo := min !span_lo l;
        span_hi := max !span_hi h)
      arr;
    let width = max (!span_hi -. !span_lo) 1e-9 in
    let sep = (!lo_max -. !hi_min) /. width in
    if sep > !best_sep && !lo_i <> !hi_i then begin
      best_sep := sep;
      best_pair := (!lo_i, !hi_i)
    end
  in
  dim (fun r -> r.x0) (fun r -> r.x1);
  dim (fun r -> r.y0) (fun r -> r.y1);
  let i, j = !best_pair in
  let g1 = ref [ arr.(i) ] and g2 = ref [ arr.(j) ] in
  let m1 = ref arr.(i).mbr and m2 = ref arr.(j).mbr in
  let min_fill = max 1 (t.max_entries / 3) in
  Array.iteri
    (fun k e ->
      if k <> i && k <> j then begin
        let remaining = n - k in
        if List.length !g1 + remaining <= min_fill then begin
          g1 := e :: !g1;
          m1 := union !m1 e.mbr
        end
        else if List.length !g2 + remaining <= min_fill then begin
          g2 := e :: !g2;
          m2 := union !m2 e.mbr
        end
        else begin
          let d1 = enlargement !m1 e.mbr and d2 = enlargement !m2 e.mbr in
          if d1 < d2 || (d1 = d2 && area !m1 <= area !m2) then begin
            g1 := e :: !g1;
            m1 := union !m1 e.mbr
          end
          else begin
            g2 := e :: !g2;
            m2 := union !m2 e.mbr
          end
        end
      end)
    arr;
  (!g1, !g2)

(* insert into [node]; on overflow returns the two halves' entries *)
let rec insert_node t node (e : entry) : (entry * entry) option =
  t.node_accesses <- t.node_accesses + 1;
  if node.leaf then begin
    node.entries <- e :: node.entries;
    if List.length node.entries <= t.max_entries then None
    else
      let g1, g2 = linear_split t node.entries in
      let right = { entries = g2; leaf = true } in
      node.entries <- g1;
      Some
        ( { mbr = node_mbr node; child = Node node },
          { mbr = node_mbr right; child = Node right } )
  end
  else begin
    (* choose subtree needing least enlargement *)
    let best = ref None in
    List.iter
      (fun sub ->
        let enl = enlargement sub.mbr e.mbr in
        match !best with
        | Some (b_enl, b_area, _) when (enl, area sub.mbr) >= (b_enl, b_area) -> ()
        | _ -> best := Some (enl, area sub.mbr, sub))
      node.entries;
    match !best with
    | None ->
      node.entries <- [ e ];
      None
    | Some (_, _, chosen) ->
      let chosen_node =
        match chosen.child with
        | Node n -> n
        | Record _ ->
          Sb_resil.Err.fail Sb_resil.Err.Storage
            "Rtree.insert: interior entry holds a record"
      in
      (match insert_node t chosen_node e with
      | None ->
        node.entries <-
          List.map
            (fun s -> if s == chosen then { s with mbr = union s.mbr e.mbr } else s)
            node.entries;
        None
      | Some (left, right) ->
        node.entries <-
          left :: right :: List.filter (fun s -> s != chosen) node.entries;
        if List.length node.entries <= t.max_entries then None
        else
          let g1, g2 = linear_split t node.entries in
          let right_node = { entries = g2; leaf = false } in
          node.entries <- g1;
          Some
            ( { mbr = node_mbr node; child = Node node },
              { mbr = node_mbr right_node; child = Node right_node } ))
  end

let insert t (r : rect) (rid : rid) =
  (match insert_node t t.root { mbr = r; child = Record rid } with
  | None -> ()
  | Some (left, right) ->
    t.root <- { entries = [ left; right ]; leaf = false });
  t.count <- t.count + 1

(** All rids whose rectangle overlaps [query]. *)
let search t (query : rect) : rid list =
  let acc = ref [] in
  let rec walk node =
    t.node_accesses <- t.node_accesses + 1;
    List.iter
      (fun e ->
        if overlaps e.mbr query then
          match e.child with
          | Record rid -> acc := rid :: !acc
          | Node n -> walk n)
      node.entries
  in
  walk t.root;
  !acc

(** Removes one entry with exactly rectangle [r] and id [rid].  Underfull
    nodes are not condensed (lazy deletion, as in {!Btree}). *)
let delete t (r : rect) (rid : rid) =
  let removed = ref false in
  let rec walk node =
    if node.leaf then
      node.entries <-
        List.filter
          (fun e ->
            match e.child with
            | Record rr
              when (not !removed)
                   && Storage_manager.compare_rid rr rid = 0
                   && e.mbr = r ->
              removed := true;
              false
            | Record _ | Node _ -> true)
          node.entries
    else
      List.iter
        (fun e ->
          if (not !removed) && contains e.mbr r then
            match e.child with Node n -> walk n | Record _ -> ())
        node.entries
  in
  walk t.root;
  if !removed then t.count <- t.count - 1;
  !removed
