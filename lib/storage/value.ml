(** Runtime values.

    SQL three-valued logic lives in the expression evaluator; here [Null]
    is simply a distinguished value that compares lowest, so that sorting
    and B-tree keys have a total order. *)

type t =
  | Null
  | Int of int
  | Float of float
  | Bool of bool
  | String of string
  | Ext of string * string  (** type name, payload *)

let type_of = function
  | Null -> None
  | Int _ -> Some Datatype.Int
  | Float _ -> Some Datatype.Float
  | Bool _ -> Some Datatype.Bool
  | String _ -> Some Datatype.String
  | Ext (name, _) -> Some (Datatype.Ext name)

let is_null = function Null -> true | _ -> false

(** Rank used to order values of distinct types (only relevant for the
    heterogeneous corner cases that a well-typed query never produces). *)
let rank = function
  | Null -> 0
  | Bool _ -> 1
  | Int _ -> 2
  | Float _ -> 2 (* ints and floats compare numerically *)
  | String _ -> 3
  | Ext _ -> 4

exception Type_error of string

let type_error fmt = Fmt.kstr (fun s -> raise (Type_error s)) fmt

(** Total order.  [registry] resolves comparisons of external types; when
    it is omitted, external payloads compare as strings. *)
let compare ?registry a b =
  match a, b with
  | Null, Null -> 0
  | Int x, Int y -> Int.compare x y
  | Float x, Float y -> Float.compare x y
  | Int x, Float y -> Float.compare (float_of_int x) y
  | Float x, Int y -> Float.compare x (float_of_int y)
  | Bool x, Bool y -> Bool.compare x y
  | String x, String y -> String.compare x y
  | Ext (n1, p1), Ext (n2, p2) ->
    if not (String.equal n1 n2) then String.compare n1 n2
    else (
      match Option.bind registry (fun reg -> Datatype.find reg n1) with
      | Some ops -> ops.Datatype.ext_compare p1 p2
      | None -> String.compare p1 p2)
  | (Null | Int _ | Float _ | Bool _ | String _ | Ext _), _ ->
    Int.compare (rank a) (rank b)

let equal ?registry a b = compare ?registry a b = 0

let hash = function
  | Null -> 0
  | Int x -> Hashtbl.hash (float_of_int x)
  (* ints and floats that are [equal] must hash alike *)
  | Float x -> Hashtbl.hash x
  | Bool b -> Hashtbl.hash b
  | String s -> Hashtbl.hash s
  | Ext (n, p) -> Hashtbl.hash (n, p)

let to_string ?registry = function
  | Null -> "NULL"
  | Int x -> string_of_int x
  | Float x -> Fmt.str "%g" x
  | Bool b -> if b then "TRUE" else "FALSE"
  | String s -> s
  | Ext (n, p) ->
    (match Option.bind registry (fun reg -> Datatype.find reg n) with
    | Some ops -> ops.Datatype.ext_print p
    | None -> Fmt.str "%s(%s)" n p)

let pp ppf v = Fmt.string ppf (to_string v)

(** Literal display form, quoting strings (used by pretty-printers).
    Unlike {!to_string} this must round-trip through the Hydrogen
    lexer: floats keep a ['.'] or exponent so an integral float does
    not reparse as an INT, and shortest-exact rendering keeps the value
    bit-identical. *)
let float_literal x =
  let s = Fmt.str "%.15g" x in
  let s = if float_of_string s = x then s else Fmt.str "%.17g" x in
  if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s
  else s ^ ".0"

let to_literal = function
  | String s -> Fmt.str "'%s'" (String.concat "''" (String.split_on_char '\'' s))
  | Float x -> float_literal x
  | v -> to_string v

(* Numeric accessors used by the expression evaluator. *)

let as_int = function
  | Int x -> x
  | Float x -> int_of_float x
  | v -> type_error "expected INT, got %s" (to_string v)

let as_float = function
  | Int x -> float_of_int x
  | Float x -> x
  | v -> type_error "expected FLOAT, got %s" (to_string v)

let as_bool = function
  | Bool b -> b
  | v -> type_error "expected BOOL, got %s" (to_string v)

let as_string = function
  | String s -> s
  | v -> type_error "expected STRING, got %s" (to_string v)
