(** A stored table: schema + storage-manager instance + attachments.

    All mutations go through here so that attachments (indexes, and in
    principle integrity constraints) are kept consistent with the base
    records — the contract Corona relies on when it picks an access path. *)

type t = {
  name : string;
  schema : Schema.t;
  storage : Storage_manager.instance;
  storage_kind : string;
  mutable attachments : Access_method.instance list;
  mutable stats : Stats.t;
  registry : Datatype.registry;
}

let create ~name ~schema ~storage ~storage_kind ~registry =
  { name; schema; storage; storage_kind; attachments = []; stats = Stats.empty; registry }

exception Constraint_violation of string

let run_checks t tuple ~exclude =
  List.iter
    (fun am ->
      match am.Access_method.am_check tuple ~exclude with
      | Ok () -> ()
      | Error msg -> raise (Constraint_violation (Fmt.str "%s: %s" t.name msg)))
    t.attachments

let insert t (tuple : Tuple.t) =
  (match Schema.validate ~schema:t.schema tuple with
  | Ok () -> ()
  | Error msg -> Sb_resil.Err.fail Sb_resil.Err.Storage "%s: %s" t.name msg);
  run_checks t tuple ~exclude:None;
  let rid = t.storage.Storage_manager.insert tuple in
  List.iter (fun am -> am.Access_method.am_insert tuple rid) t.attachments;
  rid

let delete t rid =
  match t.storage.Storage_manager.fetch rid with
  | None -> false
  | Some tuple ->
    let ok = t.storage.Storage_manager.delete rid in
    if ok then
      List.iter (fun am -> am.Access_method.am_delete tuple rid) t.attachments;
    ok

let update t rid (tuple : Tuple.t) =
  (match Schema.validate ~schema:t.schema tuple with
  | Ok () -> ()
  | Error msg -> Sb_resil.Err.fail Sb_resil.Err.Storage "%s: %s" t.name msg);
  run_checks t tuple ~exclude:(Some rid);
  match t.storage.Storage_manager.fetch rid with
  | None -> false
  | Some old_tuple ->
    if t.storage.Storage_manager.update rid tuple then begin
      List.iter
        (fun am ->
          am.Access_method.am_delete old_tuple rid;
          am.Access_method.am_insert tuple rid)
        t.attachments;
      true
    end
    else begin
      (* record moved: delete + reinsert *)
      ignore (delete t rid);
      ignore (insert t tuple);
      true
    end

let fetch t rid = t.storage.Storage_manager.fetch rid

let scan t = t.storage.Storage_manager.scan ()

let tuple_count t = t.storage.Storage_manager.tuple_count ()
let page_count t = t.storage.Storage_manager.page_count ()

let truncate t =
  (* purge attachments of every live entry before dropping the base
     records, else stale index entries would point at reused rids *)
  Seq.iter
    (fun (rid, tuple) ->
      List.iter (fun am -> am.Access_method.am_delete tuple rid) t.attachments)
    (scan t);
  t.storage.Storage_manager.truncate ()

(** Attaches an access method and back-fills it from existing records. *)
let attach t (am : Access_method.instance) =
  if List.exists (fun a -> a.Access_method.am_name = am.Access_method.am_name) t.attachments
  then
    Sb_resil.Err.fail Sb_resil.Err.Storage "attachment %s already exists on %s"
      am.Access_method.am_name t.name;
  Seq.iter (fun (rid, tuple) -> am.Access_method.am_insert tuple rid) (scan t);
  t.attachments <- am :: t.attachments

let detach t name =
  t.attachments <-
    List.filter (fun a -> a.Access_method.am_name <> name) t.attachments

let find_attachment t name =
  List.find_opt (fun a -> a.Access_method.am_name = name) t.attachments

let analyze t =
  t.stats <-
    Stats.analyze ~registry:t.registry ~schema:t.schema ~pages:(page_count t)
      (Seq.map snd (scan t));
  t.stats
