(** Buffer manager.

    Core's buffer manager mediates all page access.  The "disk" is an
    in-memory store of pages per file; what matters for reproducing the
    paper's cost behaviour is the accounting: a page access that misses
    the bounded LRU cache counts as a physical read, and evicting a
    dirty page counts as a physical write.  The optimizer's cost model
    and the experiment harness read these counters. *)

type file_id = int

type stats = {
  mutable logical_reads : int;
  mutable physical_reads : int;
  mutable physical_writes : int;
  mutable evictions : int;
}

type t

(** [capacity] is the cache size in pages (default 256). *)
val create : ?capacity:int -> unit -> t

val stats : t -> stats
val reset_stats : t -> unit

(** Fault-injection plan consulted on every {!pin} (site
    ["buffer.pin"]); defaults to {!Sb_resil.Faults.none}. *)
val set_faults : t -> Sb_resil.Faults.t -> unit

val faults : t -> Sb_resil.Faults.t

val create_file : ?page_size:int -> t -> file_id
val drop_file : t -> file_id -> unit
val page_count : t -> file_id -> int

(** Pins a page into the cache (fetching it if absent) and returns it;
    must be balanced by {!unpin} — prefer {!with_page}. *)
val pin : t -> file_id -> int -> Page.t

val unpin : t -> file_id -> int -> unit

(** Pin, use, unpin (exception-safe). *)
val with_page : t -> file_id -> int -> (Page.t -> 'a) -> 'a

(** Appends a fresh page to the file and returns its page number. *)
val alloc_page : t -> file_id -> int

(** Source of the current WAL LSN, stamped onto dirty pages when they
    are unpinned; defaults to [fun () -> 0] (no WAL). *)
val set_lsn_source : t -> (unit -> int) -> unit

(** Highest LSN known stable, consulted by {!flush_all} to honor the
    WAL rule (never write a page ahead of the stable log); defaults to
    [fun () -> max_int]. *)
val set_stable_lsn : t -> (unit -> int) -> unit

(** Force-on-commit flush policy ([SET wal_force_pages]); read by the
    language processor at commit time.  Default [false] (no-force). *)
val force_policy : t -> bool

val set_force_policy : t -> bool -> unit

(** Writes back every dirty page whose LSN does not run ahead of the
    stable log; returns how many pages were written.  Consults fault
    site ["buffer.flush"] once, before any write. *)
val flush_all : t -> int

val dirty_pages : t -> int

(** Simulated process death: every file and cached frame vanishes. *)
val discard_all : t -> unit
