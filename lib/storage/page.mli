(** Slotted pages.

    A page holds variable-length byte records addressed by slot number.
    Record bytes grow from the end of the page towards the slot
    directory; deleting a record leaves a dead slot so that record ids
    (page, slot) remain stable. *)

type t = {
  page_id : int;
  size : int;
  mutable slots : slot array;
  mutable nslots : int;
  mutable free_low : int;
  mutable data : Bytes.t;
  mutable dirty : bool;
  mutable lsn : int;
      (** LSN of the last WAL record covering a change to this page;
          stamped by the buffer pool at unpin time *)
}

and slot = { mutable off : int; mutable len : int; mutable live : bool }

val default_size : int

val create : ?size:int -> int -> t

(** Usable bytes remaining (accounting for slot overhead). *)
val free_space : t -> int

val has_room : t -> int -> bool
val live_count : t -> int

(** Inserts a record, returning its slot.
    @raise Failure when the page lacks room (check {!has_room}). *)
val insert : t -> string -> int

(** [None] for out-of-range or dead slots. *)
val get : t -> int -> string option

val delete : t -> int -> unit

(** In-place update when the new record fits in the old record's bytes;
    [false] means the caller must delete and reinsert. *)
val update : t -> int -> string -> bool

(** Reads [len] bytes at offset [pos] inside a live record without
    copying the rest of the record. *)
val read_sub : t -> int -> pos:int -> len:int -> string option

(** Overwrites bytes at offset [pos] inside a live record in place. *)
val write_sub : t -> int -> pos:int -> string -> bool

(** Iterates live records as [(slot, record)]. *)
val iter : t -> (int -> string -> unit) -> unit

(** Rewrites the page with only its live records, reclaiming dead
    space; slot numbers are preserved. *)
val compact : t -> unit
