(** Access-method attachments.

    Core's attachment architecture [LIND87]: indexes attach to a table
    and are maintained on every insert, delete and update.  New
    attachment {e kinds} register here; the optimizer asks an attachment
    which {!probe}s it supports. *)

type rid = Storage_manager.rid

(** What an index lookup asks for.  [Custom] probes carry an
    extension-defined operator name and arguments — e.g. the spatial
    extension's ["overlaps"] probe. *)
type probe =
  | Full_scan
  | Key_eq of Value.t array
  | Key_range of {
      lo : (Value.t array * bool) option;  (** bound, inclusive? *)
      hi : (Value.t array * bool) option;
    }
  | Custom of string * Value.t list

val pp_probe : Format.formatter -> probe -> unit

(** One attachment instance on one table.  Attachments cover both
    access methods and integrity constraints [LIND87]: a constraint is
    an attachment whose [am_check] can reject a tuple before it is
    stored. *)
type instance = {
  am_name : string;
  am_kind : string;
  am_columns : int list;  (** key column positions in the table schema *)
  am_check : Tuple.t -> exclude:rid option -> (unit, string) result;
      (** consulted before insert/update; [exclude] is the rid being
          replaced on update *)
  am_insert : Tuple.t -> rid -> unit;
  am_delete : Tuple.t -> rid -> unit;
  am_supports : probe -> bool;
  am_search : probe -> rid Seq.t;
  am_entry_count : unit -> int;
  am_ordered : bool;
      (** does [am_search] yield rids in key order? (the optimizer
          derives an order property from it) *)
  am_accesses : unit -> int;
  am_reset_accesses : unit -> unit;
}

(** An attachment kind a DBC registers (e.g. "btree", "rtree"). *)
type kind = {
  kind_name : string;
  kind_create :
    name:string ->
    schema:Schema.t ->
    columns:int list ->
    registry:Datatype.registry ->
    instance;
}

type registry

val create_registry : unit -> registry

(** @raise Sb_resil.Err.Error (stage [Storage]) on duplicate kind names. *)
val register : registry -> kind -> unit

val find : registry -> string -> kind option

(** Built-in B-tree kind (composite keys, equality and range probes,
    ordered output). *)
val btree_kind : kind

(** R-tree kind over a single [BOX]-typed column, answering the custom
    ["overlaps"] probe.  Registered by the spatial extension. *)
val rtree_kind : kind

(** Uniqueness integrity constraint as an attachment: rejects tuples
    whose (non-null) key already exists on another record.  The catalog
    auto-attaches one per declared UNIQUE column. *)
val unique_constraint_kind : kind
