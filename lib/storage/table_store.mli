(** A stored table: schema + storage-manager instance + attachments.

    All mutations go through here so that attachments stay consistent
    with the base records — the contract Corona relies on when it picks
    an access path. *)

type t = {
  name : string;
  schema : Schema.t;
  storage : Storage_manager.instance;
  storage_kind : string;
  mutable attachments : Access_method.instance list;
  mutable stats : Stats.t;
  registry : Datatype.registry;
}

val create :
  name:string ->
  schema:Schema.t ->
  storage:Storage_manager.instance ->
  storage_kind:string ->
  registry:Datatype.registry ->
  t

exception Constraint_violation of string

(** @raise Sb_resil.Err.Error (stage [Storage]) on schema violations.
    @raise Constraint_violation when an attachment's check rejects the
    tuple (e.g. a UNIQUE constraint). *)
val insert : t -> Tuple.t -> Storage_manager.rid

val delete : t -> Storage_manager.rid -> bool

(** Updates in place when possible, else deletes and reinserts;
    attachments are maintained either way. *)
val update : t -> Storage_manager.rid -> Tuple.t -> bool

val fetch : t -> Storage_manager.rid -> Tuple.t option
val scan : t -> (Storage_manager.rid * Tuple.t) Seq.t
val tuple_count : t -> int
val page_count : t -> int
val truncate : t -> unit

(** Attaches an access method and back-fills it from existing records.
    @raise Sb_resil.Err.Error (stage [Storage]) on duplicate attachment
    names. *)
val attach : t -> Access_method.instance -> unit

val detach : t -> string -> unit
val find_attachment : t -> string -> Access_method.instance option

(** Recomputes and stores the table's statistics from a full scan. *)
val analyze : t -> Stats.t
