(** A storage manager for fixed-length records only — "but extremely
    efficiently" (the paper's example of a Core storage-manager extension).

    Records of a schema-determined width are packed densely into pages
    with no per-record slot directory: the record's position inside the
    page follows from its slot number, and a one-byte liveness mark
    precedes each record.  Fetch is O(1) arithmetic. *)

open Storage_manager

let make ~(pool : Buffer_pool.t) ~(schema : Schema.t) : instance =
  let width =
    match Row_codec.fixed_width schema with
    | Some w -> w
    | None ->
      Sb_resil.Err.fail Sb_resil.Err.Storage
        "fixed: schema has variable-length columns"
  in
  let cell = width + 1 (* liveness byte *) in
  let per_page = (Page.default_size - 64) / cell in
  if per_page < 1 then
    Sb_resil.Err.fail Sb_resil.Err.Storage "fixed: record wider than a page";
  let file = Buffer_pool.create_file pool in
  let tuples = ref 0 in
  (* Within each Page.t we store exactly one record (the whole cell
     array) at slot 0, and manage cell liveness ourselves. *)
  let blank = String.make (per_page * cell) '\000' in
  let ensure_page page_no =
    while Buffer_pool.page_count pool file <= page_no do
      let p = Buffer_pool.alloc_page pool file in
      Buffer_pool.with_page pool file p (fun page ->
          ignore (Page.insert page blank))
    done
  in
  let next_free = ref 0 (* global cell cursor; freed cells are reused *) in
  let free_list = ref [] in
  let read_cell page cell_no =
    Buffer_pool.with_page pool file page (fun p ->
        let off = cell_no * cell in
        match Page.read_sub p 0 ~pos:off ~len:cell with
        | Some bytes when bytes.[0] = '\001' ->
          Some (Row_codec.decode_fixed ~schema (String.sub bytes 1 width))
        | Some _ | None -> None)
  in
  let cell_live page cell_no =
    Buffer_pool.with_page pool file page (fun p ->
        Page.read_sub p 0 ~pos:(cell_no * cell) ~len:1 = Some "\001")
  in
  let write_cell page cell_no ~live record =
    Buffer_pool.with_page pool file page (fun p ->
        let off = cell_no * cell in
        let payload =
          if live then "\001" ^ record else String.make cell '\000'
        in
        Page.write_sub p 0 ~pos:off payload)
  in
  let insert tuple =
    let record = Row_codec.encode_fixed ~schema tuple in
    let idx =
      match !free_list with
      | i :: rest ->
        free_list := rest;
        i
      | [] ->
        let i = !next_free in
        next_free := i + 1;
        i
    in
    let page = idx / per_page and cell_no = idx mod per_page in
    ensure_page page;
    ignore (write_cell page cell_no ~live:true record);
    incr tuples;
    { rid_page = page; rid_slot = cell_no }
  in
  let valid rid =
    rid.rid_page >= 0 && rid.rid_slot >= 0 && rid.rid_slot < per_page
    && rid.rid_page < Buffer_pool.page_count pool file
  in
  let fetch rid = if valid rid then read_cell rid.rid_page rid.rid_slot else None in
  let delete rid =
    if valid rid && cell_live rid.rid_page rid.rid_slot then begin
      ignore (write_cell rid.rid_page rid.rid_slot ~live:false "");
      free_list := ((rid.rid_page * per_page) + rid.rid_slot) :: !free_list;
      decr tuples;
      true
    end
    else false
  in
  let update rid tuple =
    if valid rid && cell_live rid.rid_page rid.rid_slot then
      write_cell rid.rid_page rid.rid_slot ~live:true
        (Row_codec.encode_fixed ~schema tuple)
    else false
  in
  let scan () =
    (* page-at-a-time: one page read amortized over all its cells *)
    let total = !next_free in
    let rec page_seq page () =
      let base = page * per_page in
      if base >= total then Seq.Nil
      else begin
        let rows = ref [] in
        Buffer_pool.with_page pool file page (fun p ->
            match Page.get p 0 with
            | None -> ()
            | Some bytes ->
              let cells = min per_page (total - base) in
              for cell_no = cells - 1 downto 0 do
                let off = cell_no * cell in
                if bytes.[off] = '\001' then
                  rows :=
                    ( { rid_page = page; rid_slot = cell_no },
                      Row_codec.decode_fixed ~schema
                        (String.sub bytes (off + 1) width) )
                    :: !rows
              done);
        Seq.append (List.to_seq !rows) (page_seq (page + 1)) ()
      end
    in
    page_seq 0
  in
  let truncate () =
    next_free := 0;
    free_list := [];
    tuples := 0;
    for i = 0 to Buffer_pool.page_count pool file - 1 do
      Buffer_pool.with_page pool file i (fun p -> ignore (Page.update p 0 blank))
    done
  in
  {
    sm_kind = "fixed";
    insert;
    delete;
    update;
    fetch;
    scan;
    tuple_count = (fun () -> !tuples);
    page_count = (fun () -> Buffer_pool.page_count pool file);
    truncate;
  }

let factory : factory =
  {
    factory_name = "fixed";
    supports = (fun schema -> Row_codec.fixed_width schema <> None);
    create = make;
  }
