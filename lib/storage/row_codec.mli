(** Serialization of tuples to byte records and back.

    Two codecs: the {e variable-length} codec (a tagged encoding
    handling any value) and the {e fixed-length} codec used by the
    fixed-length storage manager (INT / FLOAT / BOOL columns plus a null
    bitmap, with a width computable from the schema alone). *)

(** Variable-length encoding of any tuple. *)
val encode : Tuple.t -> string

val decode : string -> Tuple.t

(** Width in bytes of a fixed-length record for [schema], or [None] if
    the schema contains variable-length columns. *)
val fixed_width : Schema.t -> int option

(** @raise Sb_resil.Err.Error (stage [Storage]) on variable-length columns. *)
val encode_fixed : schema:Schema.t -> Tuple.t -> string

val decode_fixed : schema:Schema.t -> string -> Tuple.t
