(** Access-method attachments.

    Core's attachment architecture [LIND87]: indexes (and integrity
    constraints) attach to a table and are maintained on every insert,
    delete and update.  New attachment {e kinds} register here; the
    optimizer asks an attachment which {!probe}s it supports and charges
    its estimated cost. *)

type rid = Storage_manager.rid

(** What an index lookup asks for.  [Custom] probes carry an
    extension-defined operator name and arguments — e.g. the spatial
    extension's ["overlaps"] probe with a box payload. *)
type probe =
  | Full_scan
  | Key_eq of Value.t array
  | Key_range of {
      lo : (Value.t array * bool) option;  (** bound, inclusive? *)
      hi : (Value.t array * bool) option;
    }
  | Custom of string * Value.t list

let pp_probe ppf = function
  | Full_scan -> Fmt.string ppf "full"
  | Key_eq k -> Fmt.pf ppf "eq %a" Fmt.(array ~sep:comma Value.pp) k
  | Key_range _ -> Fmt.string ppf "range"
  | Custom (op, args) ->
    Fmt.pf ppf "%s(%a)" op Fmt.(list ~sep:comma Value.pp) args

(** One attachment instance on one table.  Attachments cover both
    access methods and integrity constraints [LIND87]: a constraint is
    an attachment whose [am_check] can reject a tuple before it is
    stored. *)
type instance = {
  am_name : string;  (** e.g. the index name *)
  am_kind : string;  (** e.g. "btree" *)
  am_columns : int list;  (** key column positions in the table schema *)
  am_check : Tuple.t -> exclude:rid option -> (unit, string) result;
      (** consulted before insert/update; [exclude] is the rid being
          replaced on update *)
  am_insert : Tuple.t -> rid -> unit;
  am_delete : Tuple.t -> rid -> unit;
  am_supports : probe -> bool;
  am_search : probe -> rid Seq.t;
  am_entry_count : unit -> int;
  am_ordered : bool;
      (** does [am_search] yield rids in key order? (B-trees do; the
          optimizer derives an order property from it) *)
  am_accesses : unit -> int;  (** node touches since last reset *)
  am_reset_accesses : unit -> unit;
}

(** An attachment kind a DBC registers (e.g. "btree", "rtree"). *)
type kind = {
  kind_name : string;
  kind_create :
    name:string ->
    schema:Schema.t ->
    columns:int list ->
    registry:Datatype.registry ->
    instance;
}

type registry = (string, kind) Hashtbl.t

let create_registry () : registry = Hashtbl.create 4

let register (reg : registry) (k : kind) =
  if Hashtbl.mem reg k.kind_name then
    Sb_resil.Err.fail Sb_resil.Err.Storage
      "Access_method.register: duplicate kind %s" k.kind_name;
  Hashtbl.add reg k.kind_name k

let find (reg : registry) name = Hashtbl.find_opt reg name

(* ------------------------------------------------------------------ *)
(* Built-in kind: B-tree                                               *)
(* ------------------------------------------------------------------ *)

let btree_kind : kind =
  let kind_create ~name ~schema ~columns ~registry =
    ignore schema;
    let tree = Btree.create ~registry () in
    let key_of tuple = Array.of_list (List.map (fun i -> tuple.(i)) columns) in
    let search = function
      | Full_scan -> Seq.map snd (Btree.range tree ())
      | Key_eq k -> List.to_seq (List.rev (Btree.find tree k))
      | Key_range { lo; hi } -> Seq.map snd (Btree.range tree ?lo ?hi ())
      | Custom _ -> Seq.empty
    in
    {
      am_name = name;
      am_kind = "btree";
      am_columns = columns;
      am_check = (fun _ ~exclude:_ -> Ok ());
      am_insert = (fun tuple rid -> Btree.insert tree (key_of tuple) rid);
      am_delete = (fun tuple rid -> ignore (Btree.delete tree (key_of tuple) rid));
      am_supports =
        (function
        | Full_scan | Key_eq _ | Key_range _ -> true
        | Custom _ -> false);
      am_search = search;
      am_entry_count = (fun () -> Btree.entry_count tree);
      am_ordered = true;
      am_accesses = (fun () -> Btree.accesses tree);
      am_reset_accesses = (fun () -> Btree.reset_accesses tree);
    }
  in
  { kind_name = "btree"; kind_create }

(* ------------------------------------------------------------------ *)
(* Built-in kind: UNIQUE integrity constraint                          *)
(* ------------------------------------------------------------------ *)

(** A uniqueness constraint as an attachment: a B-tree over the key
    columns whose [am_check] rejects tuples whose (non-null) key is
    already present on another record. *)
let unique_constraint_kind : kind =
  let kind_create ~name ~schema ~columns ~registry =
    ignore schema;
    let tree = Btree.create ~registry () in
    let key_of tuple = Array.of_list (List.map (fun i -> tuple.(i)) columns) in
    {
      am_name = name;
      am_kind = "unique";
      am_columns = columns;
      am_check =
        (fun tuple ~exclude ->
          let key = key_of tuple in
          if Array.exists Value.is_null key then Ok () (* nulls never conflict *)
          else
            let clash =
              List.exists
                (fun rid ->
                  match exclude with
                  | Some ex -> Storage_manager.compare_rid rid ex <> 0
                  | None -> true)
                (Btree.find tree key)
            in
            if clash then
              Error
                (Fmt.str "unique constraint %s violated by key (%s)" name
                   (String.concat ", "
                      (List.map Value.to_string (Array.to_list key))))
            else Ok ())
      ;
      am_insert = (fun tuple rid -> Btree.insert tree (key_of tuple) rid);
      am_delete = (fun tuple rid -> ignore (Btree.delete tree (key_of tuple) rid));
      am_supports = (fun _ -> false);
      am_search = (fun _ -> Seq.empty);
      am_entry_count = (fun () -> Btree.entry_count tree);
      am_ordered = false;
      am_accesses = (fun () -> Btree.accesses tree);
      am_reset_accesses = (fun () -> Btree.reset_accesses tree);
    }
  in
  { kind_name = "unique"; kind_create }

(* ------------------------------------------------------------------ *)
(* Built-in kind: R-tree (spatial)                                     *)
(* ------------------------------------------------------------------ *)

(** R-tree attachment over a single column of external type ["BOX"]
    (payload "x0,y0,x1,y1").  Supports the custom ["overlaps"] probe. *)
let rtree_kind : kind =
  let kind_create ~name ~schema ~columns ~registry =
    ignore schema;
    ignore registry;
    let col =
      match columns with
      | [ c ] -> c
      | _ ->
        Sb_resil.Err.fail Sb_resil.Err.Storage
          "rtree attachment: exactly one key column required"
    in
    let tree = Rtree.create () in
    let rect_of tuple =
      match tuple.(col) with
      | Value.Ext (_, payload) -> Rtree.rect_of_payload payload
      | Value.String payload -> Rtree.rect_of_payload payload
      | _ -> None
    in
    let search = function
      | Custom ("overlaps", [ arg ]) ->
        let payload =
          match arg with
          | Value.Ext (_, p) | Value.String p -> Some p
          | _ -> None
        in
        (match Option.bind payload Rtree.rect_of_payload with
        | Some q -> List.to_seq (Rtree.search tree q)
        | None -> Seq.empty)
      | Full_scan | Key_eq _ | Key_range _ | Custom _ -> Seq.empty
    in
    {
      am_name = name;
      am_kind = "rtree";
      am_columns = columns;
      am_check = (fun _ ~exclude:_ -> Ok ());
      am_insert =
        (fun tuple rid ->
          match rect_of tuple with
          | Some r -> Rtree.insert tree r rid
          | None -> ());
      am_delete =
        (fun tuple rid ->
          match rect_of tuple with
          | Some r -> ignore (Rtree.delete tree r rid)
          | None -> ());
      am_supports =
        (function Custom ("overlaps", [ _ ]) -> true | _ -> false);
      am_search = search;
      am_entry_count = (fun () -> Rtree.entry_count tree);
      am_ordered = false;
      am_accesses = (fun () -> Rtree.accesses tree);
      am_reset_accesses = (fun () -> Rtree.reset_accesses tree);
    }
  in
  { kind_name = "rtree"; kind_create }
