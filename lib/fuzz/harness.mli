(** The fuzzing driver: generate → check → shrink → persist.

    A run is a pure function of [(seed, n)] (plus the optional broken-
    rule [inject], used by the acceptance tests): the report text, the
    shrunk repros, and their file contents are byte-for-byte identical
    across invocations.  Nothing here reads the clock or an ambient
    PRNG. *)

module Metrics = Sb_obs.Metrics

type stats = {
  st_seed : int;
  st_cases : int;
  st_passed : int;  (** every oracle configuration agreed *)
  st_rejected : int;
      (** the reference refused the query (generator imperfection) *)
  st_failures : Repro.t list;  (** shrunk discrepancies, in case order *)
  st_shrink_steps : int;  (** committed reductions across all failures *)
}

(** [run ~seed ~n ()] fuzzes [n] cases from [seed].  Each case draws a
    fresh catalog, a query over it, and a chaos fault seed from split
    streams, so case [i] is unaffected by how much randomness case
    [i-1] consumed.  Every generated query is additionally round-trip
    checked ([Parser.query_text (Pretty...) = q]) before it reaches the
    oracle.  Failures are shrunk and, when [out_dir] is given, written
    there as [.sbf] repros.  Counters land in [metrics] as
    [sb_fuzz_cases_total], [sb_fuzz_rejected_total],
    [sb_fuzz_discrepancies_total] and [sb_fuzz_shrink_steps_total].
    [log] receives one line per failure as it is found.  [rules]
    selects the rewrite-rule implementation under test
    ({!Oracle.rules_mode}; default native); [qes] narrows the oracle
    matrix to the vectorized-engine differential ([fuzz_main --qes]). *)
val run :
  ?inject:(Starburst.t -> unit) ->
  ?rules:Oracle.rules_mode ->
  ?qes:bool ->
  ?metrics:Metrics.t ->
  ?out_dir:string ->
  ?log:(string -> unit) ->
  seed:int ->
  n:int ->
  unit ->
  stats

(** Deterministic multi-line summary (no timestamps, no durations). *)
val report : stats -> string

(** Reads and replays one [.sbf] file. *)
val replay_file : string -> Oracle.verdict

(** Replays every [.sbf] under [dir] in sorted filename order. *)
val replay_dir : string -> (string * Oracle.verdict) list
