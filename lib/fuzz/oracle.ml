(** Differential and metamorphic oracle.  See oracle.mli. *)

open Sb_storage
module Ast = Sb_hydrogen.Ast
module Qgm = Sb_qgm.Qgm
module Prover = Sb_analysis.Prover
module Generator = Sb_optimizer.Generator
module Star = Sb_optimizer.Star
module Err = Sb_resil.Err
module Faults = Sb_resil.Faults
module Rule_audit = Sb_verify.Rule_audit

type config =
  | Reference
  | Rewritten
  | Greedy
  | Paranoid
  | Chaos of int
  | Vectorized

let config_name = function
  | Reference -> "reference"
  | Rewritten -> "rewritten"
  | Greedy -> "greedy"
  | Paranoid -> "paranoid"
  | Chaos seed -> Printf.sprintf "chaos[%d]" seed
  | Vectorized -> "vectorized"

let configs ~chaos_seed =
  [ Reference; Rewritten; Greedy; Paranoid; Chaos chaos_seed; Vectorized ]

type outcome = Rows of Tuple.t list | Failed of Err.t

(** Which rewrite-rule implementation the databases under test run:
    the native closures, their DSL-compiled ports, or both — native
    everywhere plus an extra DSL-vs-native differential (result bags
    and the rewritten QGM, byte for byte). *)
type rules_mode = Native_rules | Dsl_rules | Both_rules

let rules_mode_name = function
  | Native_rules -> "native"
  | Dsl_rules -> "dsl"
  | Both_rules -> "both"

let fresh_db ?inject ?(dsl = false) ~(ddl : string list) (config : config) :
    Starburst.t =
  let db = Starburst.create () in
  Sb_extensions.Outer_join.install db;
  if dsl then Starburst.use_dsl_builtins db;
  ignore (Starburst.run_script db (String.concat ";\n" ddl));
  (match config with
  | Reference ->
    (* budget 0 *and* the tuple-at-a-time engine: neither rewrite bugs
       nor vectorization bugs can reach the reference answer *)
    db.Starburst.rewrite_budget <- Some 0;
    db.Starburst.exec_db.Starburst.Exec.x_vectorized <- false
  | Vectorized ->
    (* same budget-0 plan as the reference; the only moving part is the
       batch-at-a-time engine, so a divergence is an engine bug *)
    db.Starburst.rewrite_budget <- Some 0;
    db.Starburst.exec_db.Starburst.Exec.x_vectorized <- true
  | Rewritten -> ()
  | Greedy ->
    db.Starburst.optimizer.Generator.sctx.Star.strategy <-
      Star.greedy_strategy
  | Paranoid -> db.Starburst.paranoid <- true
  | Chaos seed ->
    let faults = Faults.create ~seed () in
    Faults.fail_prob faults 0.05;
    Starburst.set_faults db faults);
  (match (inject, config) with
  | Some f, (Rewritten | Greedy | Paranoid | Chaos _) -> f db
  | _ -> ());
  db

let run_outcome (db : Starburst.t) (text : string) : outcome =
  match Starburst.run db text with
  | Starburst.Rows { rows; _ } -> Rows rows
  | Starburst.Affected _ | Starburst.Message _ ->
    Failed (Err.make Err.Internal "fuzz query produced a non-row result")
  | exception Starburst.Error e -> Failed e
  | exception Err.Error e -> Failed e
  | exception exn ->
    (* Corona classifies everything it sees; anything raw that still
       escapes is exactly the kind of bug the fuzzer exists to catch *)
    Failed
      (Err.make Err.Internal
         (Printf.sprintf "uncaught exception: %s" (Printexc.to_string exn)))

(* ------------------------------------------------------------------ *)
(* Result comparison                                                   *)
(* ------------------------------------------------------------------ *)

let bag_equal a b =
  match Rule_audit.compare_results ~ordered:false a b with
  | Ok () -> Ok ()
  | Error msg -> Error msg

(* multiset containment: every row of [small] present in [big] at least
   as many times *)
let bag_sub small big =
  let remaining = ref big in
  let missing =
    List.find_opt
      (fun row ->
        let rec remove = function
          | [] -> None
          | r :: rest when Tuple.equal r row -> Some rest
          | r :: rest -> (
            match remove rest with
            | Some rest' -> Some (r :: rest')
            | None -> None)
        in
        match remove !remaining with
        | Some rest -> remaining := rest; false
        | None -> true)
      small
  in
  match missing with
  | None -> Ok ()
  | Some _ -> Error "limited output contains a row absent from the unlimited output"

(* ------------------------------------------------------------------ *)
(* Metamorphic material                                                *)
(* ------------------------------------------------------------------ *)

(* literal-only candidate tautologies, restricted to the constructors
   shared by Ast.expr and Qgm.expr so the prover can vet them *)
let taut_templates : Ast.expr list =
  let i n = Ast.Lit (Value.Int n) in
  [
    Ast.Bin (Ast.Or, Ast.Bin (Ast.Lt, i 1, i 2), Ast.Bin (Ast.Ge, i 1, i 2));
    Ast.Bin (Ast.Le, i 3, i 7);
    Ast.Un (Ast.Not, Ast.Is_null (i 5));
    Ast.Bin
      ( Ast.Or,
        Ast.Is_null (Ast.Lit Value.Null),
        Ast.Bin (Ast.Eq, i 1, i 2) );
    Ast.Bin
      ( Ast.And,
        Ast.Bin (Ast.Neq, Ast.Lit (Value.String "a"), Ast.Lit (Value.String "b")),
        Ast.Bin (Ast.Gt, i 0, i (-1)) );
  ]

(* the trivial embedding: the templates above use only constructors the
   two expression types share *)
let rec qgm_of_lit_expr (e : Ast.expr) : Qgm.expr option =
  match e with
  | Ast.Lit v -> Some (Qgm.Lit v)
  | Ast.Bin (op, a, b) -> (
    match (qgm_of_lit_expr a, qgm_of_lit_expr b) with
    | Some a, Some b -> Some (Qgm.Bin (op, a, b))
    | _ -> None)
  | Ast.Un (op, a) ->
    Option.map (fun a -> Qgm.Un (op, a)) (qgm_of_lit_expr a)
  | Ast.Is_null a -> Option.map (fun a -> Qgm.Is_null a) (qgm_of_lit_expr a)
  | _ -> None

let proved_tautology (e : Ast.expr) =
  match qgm_of_lit_expr e with
  | None -> false
  | Some q -> Prover.const_truth q = Some true

(* conjoin [taut] onto the WHERE clause of the top-level select *)
let with_tautology (wq : Ast.with_query) (taut : Ast.expr) :
    Ast.with_query option =
  match wq.Ast.with_body with
  | Ast.Select s ->
    let where =
      match s.Ast.sel_where with
      | None -> taut
      | Some w -> Ast.Bin (Ast.And, w, taut)
    in
    Some
      { wq with Ast.with_body = Ast.Select { s with Ast.sel_where = Some where } }
  | Ast.Set_op _ | Ast.Values _ -> None

let strip_limit (wq : Ast.with_query) : Ast.with_query * int option =
  match wq.Ast.with_body with
  | Ast.Select ({ Ast.sel_limit = Some n; _ } as s) ->
    ( { wq with Ast.with_body = Ast.Select { s with Ast.sel_limit = None } },
      Some n )
  | _ -> (wq, None)

(* ------------------------------------------------------------------ *)
(* The oracle proper                                                   *)
(* ------------------------------------------------------------------ *)

type verdict =
  | Pass
  | Rejected of string
  | Fail of { config : string; detail : string }

let lenient_vs_rows (config : config) (e : Err.t) =
  match (config, e.Err.err_stage) with
  (* chaos may exhaust its retries; a structured retryable error is the
     documented contract *)
  | Chaos _, _ when e.Err.err_retryable -> true
  (* different plans consume different resources *)
  | _, Err.Resource -> true
  | _ -> false

let check_case ?inject ?(rules = Native_rules) ?(qes = false)
    ~(ddl : string list) ~chaos_seed (query : Ast.with_query) : verdict =
  (* --qes: a focused engine differential — only the vectorized leg
     (and the metamorphic checks, re-run on it) against the tuple
     reference, both at rewrite budget 0, so every divergence is an
     executor bug rather than a rewrite or planning one *)
  let matrix =
    if qes then [ Vectorized ]
    else [ Rewritten; Greedy; Paranoid; Chaos chaos_seed; Vectorized ]
  in
  let meta_config = if qes then Vectorized else Rewritten in
  let core, limit = strip_limit query in
  let core_text = Gen.query_text core in
  (* Dsl_rules runs the whole matrix on DSL-compiled rule sets (the
     reference, at rewrite budget 0, never fires a rule either way) *)
  let dsl = rules = Dsl_rules in
  let run config text =
    run_outcome (fresh_db ?inject ~dsl ~ddl config) text
  in
  (* Both_rules: one extra differential leg — native vs DSL rule sets
     must agree on the result bag, the rewritten QGM rendering (byte
     for byte) and the per-rule firing counts *)
  let dsl_check () =
    if rules <> Both_rules then None
    else begin
      let rewritten_qgm db =
        match
          let wq = Starburst.parse db core_text in
          let g = Starburst.build_qgm db wq in
          let stats = Starburst.rewrite db g in
          ( Sb_qgm.Print.to_string g,
            List.sort compare stats.Sb_rewrite.Engine.firings )
        with
        | v -> Some v
        | exception _ -> None
      in
      let ndb = fresh_db ?inject ~ddl Rewritten in
      let ddb = fresh_db ?inject ~dsl:true ~ddl Rewritten in
      let fail detail = Some (Fail { config = "dsl-differential"; detail }) in
      match (run_outcome ndb core_text, run_outcome ddb core_text) with
      | Rows a, Rows b -> (
        match bag_equal a b with
        | Error msg -> fail ("DSL rules changed the result: " ^ msg)
        | Ok () -> (
          match (rewritten_qgm ndb, rewritten_qgm ddb) with
          | Some (ga, fa), Some (gb, fb) ->
            if ga <> gb then
              fail "rewritten QGM differs between native and DSL rules"
            else if fa <> fb then
              fail "per-rule firings differ between native and DSL rules"
            else None
          | _ -> None))
      | Failed _, Failed _ -> None
      | Failed e, Rows _ ->
        fail
          (Printf.sprintf "native rules failed (%s) but DSL rules answered"
             (Err.to_string e))
      | Rows _, Failed e ->
        fail
          (Printf.sprintf "native rules answered but DSL rules failed: %s"
             (Err.to_string e))
    end
  in
  match run Reference core_text with
  | Failed { Err.err_stage = Err.Parse | Err.Semantic; err_msg; _ } ->
    Rejected err_msg
  | reference -> (
    let fail config detail = Fail { config = config_name config; detail } in
    let check_config config =
      match (reference, run config core_text) with
      | Rows a, Rows b -> (
        match bag_equal a b with
        | Ok () -> None
        | Error msg -> Some (fail config msg))
      | Failed _, Failed _ -> None
      | Failed { Err.err_stage = Err.Exec | Err.Storage | Err.Resource; _ },
        Rows _ ->
        (* the reference plan reached a runtime error another plan
           legitimately avoided (or ran out of resources) *)
        None
      | Failed e, Rows _ ->
        Some
          (fail config
             (Printf.sprintf
                "reference failed (%s) but %s answered" (Err.to_string e)
                (config_name config)))
      | Rows _, Failed e ->
        if lenient_vs_rows config e then None
        else
          Some
            (fail config
               (Printf.sprintf "reference answered but %s failed: %s"
                  (config_name config) (Err.to_string e)))
    in
    let rec first_failure = function
      | [] -> None
      | c :: rest -> (
        match check_config c with Some f -> Some f | None -> first_failure rest)
    in
    match first_failure matrix with
    | Some f -> f
    | None -> (
      match dsl_check () with
      | Some f -> f
      | None -> (
      (* metamorphic 1: LIMIT n output is a sub-bag of the unlimited
         output and respects the bound *)
      let limit_check =
        match (limit, reference) with
        | Some n, Rows unlimited -> (
          match run meta_config (Gen.query_text query) with
          | Failed e ->
            if lenient_vs_rows meta_config e then None
            else
              Some
                (Fail
                   {
                     config = "limit";
                     detail =
                       Printf.sprintf "limited query failed: %s"
                         (Err.to_string e);
                   })
          | Rows limited ->
            if List.length limited > n then
              Some
                (Fail
                   {
                     config = "limit";
                     detail =
                       Printf.sprintf "LIMIT %d returned %d rows" n
                         (List.length limited);
                   })
            else (
              match bag_sub limited unlimited with
              | Ok () -> None
              | Error msg -> Some (Fail { config = "limit"; detail = msg })))
        | _ -> None
      in
      match limit_check with
      | Some f -> f
      | None -> (
        (* metamorphic 2: a proved tautology conjoined onto WHERE must
           not change the result bag *)
        let taut =
          List.nth taut_templates (abs chaos_seed mod List.length taut_templates)
        in
        match (reference, with_tautology core taut) with
        | Rows expected, Some mutated when proved_tautology taut -> (
          match run meta_config (Gen.query_text mutated) with
          | Failed e ->
            if lenient_vs_rows meta_config e then Pass
            else
              Fail
                {
                  config = "tautology";
                  detail =
                    Printf.sprintf "tautology-augmented query failed: %s"
                      (Err.to_string e);
                }
          | Rows got -> (
            match bag_equal expected got with
            | Ok () -> Pass
            | Error msg ->
              Fail
                {
                  config = "tautology";
                  detail = "tautology changed the result: " ^ msg;
                }))
        | _ -> Pass))))
