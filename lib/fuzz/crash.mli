(** Crash-point differential fuzzing for the durability path.

    Each round draws a catalog, materializes it, and generates a DML
    workload (one implicit transaction per statement).  An oracle run
    with no faults snapshots every table after each statement prefix.
    A scout run with an armed-but-ruleless fault plan counts how many
    times each crash site ([wal.append], [wal.flush], [buffer.flush],
    [checkpoint]) is consulted — enumerating every reachable crash
    ordinal.  Then, for each (site, ordinal) pair, a fresh database
    runs the same workload with a {!Sb_resil.Faults.Crash} armed at
    exactly that consult, loses its volatile state, recovers from the
    stable log, and is compared against the oracle:

    - if the in-flight statement's Commit record reached the stable
      log before the crash, the recovered state must equal the oracle
      state {e with} that statement;
    - otherwise the client never saw success, so either prefix state
      (with or without it) is acceptable — anything else is a
      durability bug.

    Everything is a pure function of [seed]: reports are byte-for-byte
    reproducible.  A final leg checks that recovery with the WAL
    disabled is a structured [Storage] error, not a wrong answer. *)

val sites : string list

type mismatch = {
  m_round : int;
  m_site : string;
  m_ordinal : int;
  m_stmt : string;  (** the statement in flight when the crash fired *)
  m_committed : bool;  (** its Commit record was already stable *)
  m_detail : string;
  m_script : string list;  (** DDL + knobs + workload: a full repro *)
}

type stats = {
  cs_seed : int;
  cs_rounds : int;
  cs_cases : int;
  cs_unfired : int;
      (** armed ordinals never reached (always 0 unless the scout and
          the victim diverge — itself a determinism bug) *)
  cs_committed : int;
      (** cases whose in-flight statement had already committed, i.e.
          where the strict must-equal-with check applied *)
  cs_by_site : (string * int) list;
  cs_mismatches : mismatch list;
  cs_wal_off_ok : bool;
}

(** [run ~seed ~n ()] executes [n] crash cases (rounds of 12-statement
    workloads, every reachable ordinal of every site).  [log] receives
    one line per mismatch as found.  Counters land in [metrics] as
    [sb_crash_cases_total] and [sb_crash_mismatches_total]. *)
val run :
  ?metrics:Sb_obs.Metrics.t ->
  ?log:(string -> unit) ->
  seed:int ->
  n:int ->
  unit ->
  stats

(** Deterministic multi-line summary (no timestamps, no durations). *)
val report : stats -> string

(** Writes one mismatch as a runnable [.sql] repro under [dir];
    returns the path. *)
val save_repro : dir:string -> seed:int -> int -> mismatch -> string
