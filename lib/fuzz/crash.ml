(** Crash-point differential fuzzing.  See crash.mli. *)

open Sb_storage
module Err = Sb_resil.Err
module Faults = Sb_resil.Faults
module Rule_audit = Sb_verify.Rule_audit
module Metrics = Sb_obs.Metrics

let sites = [ "wal.append"; "wal.flush"; "buffer.flush"; "checkpoint" ]

(* knobs every database under test runs with: force dirty pages at
   commit and checkpoint every few transactions, so the buffer.flush
   and checkpoint crash sites are actually reachable *)
let knobs = [ "SET wal_force_pages = on"; "SET wal_checkpoint = 4" ]

type mismatch = {
  m_round : int;
  m_site : string;
  m_ordinal : int;
  m_stmt : string;  (** the statement in flight when the crash fired *)
  m_committed : bool;  (** its Commit record was already stable *)
  m_detail : string;
  m_script : string list;  (** DDL + knobs + workload: a full repro *)
}

type stats = {
  cs_seed : int;
  cs_rounds : int;
  cs_cases : int;
  cs_unfired : int;
  cs_committed : int;
  cs_by_site : (string * int) list;
  cs_mismatches : mismatch list;
  cs_wal_off_ok : bool;
}

(* ------------------------------------------------------------------ *)
(* Databases under test                                                *)
(* ------------------------------------------------------------------ *)

let fresh_db ~(ddl : string list) : Starburst.t =
  let db = Starburst.create () in
  Sb_extensions.Outer_join.install db;
  ignore (Starburst.run_script db (String.concat ";\n" (ddl @ knobs)));
  db

let snapshot (db : Starburst.t) =
  Catalog.snapshot_tables db.Starburst.Corona.catalog

let wal_of (db : Starburst.t) = db.Starburst.Corona.catalog.Catalog.wal

(* attempt one statement; [Ok ()] means it ran — and, for DML, that
   its implicit transaction committed (even when 0 rows changed) *)
let attempt db text =
  match Starburst.run db text with
  | Starburst.Affected _ | Starburst.Rows _ | Starburst.Message _ -> Ok ()
  | exception Starburst.Error e -> Error e
  | exception Err.Error e -> Error e

(* ------------------------------------------------------------------ *)
(* State comparison                                                    *)
(* ------------------------------------------------------------------ *)

(* both snapshots are sorted by table name *)
let state_diff (expected : (string * Tuple.t list) list)
    (got : (string * Tuple.t list) list) : string option =
  if List.length expected <> List.length got then
    Some
      (Printf.sprintf "table count: expected %d, got %d"
         (List.length expected) (List.length got))
  else
    List.fold_left2
      (fun acc (ne, re) (ng, rg) ->
        match acc with
        | Some _ -> acc
        | None ->
          if ne <> ng then Some (Printf.sprintf "table %s vs %s" ne ng)
          else (
            match Rule_audit.compare_results ~ordered:false re rg with
            | Ok () -> None
            | Error msg -> Some (Printf.sprintf "table %s: %s" ne msg)))
      None expected got

(* ------------------------------------------------------------------ *)
(* One crash case                                                      *)
(* ------------------------------------------------------------------ *)

type case_result =
  | Consistent of { committed : bool }
  | Unfired  (** the armed ordinal was never reached — a scout bug *)
  | Mismatch of mismatch

let run_case ~round ~seed ~(ddl : string list) ~(dml : string list)
    ~(oracle : (string * Tuple.t list) list array) ~site ~ordinal : case_result
    =
  let db = fresh_db ~ddl in
  let wal = wal_of db in
  let base_commits = List.length (Wal.committed_txns wal) in
  let faults = Faults.create ~seed () in
  Faults.fail_nth faults ~outcome:Faults.Crash ~site [ ordinal ];
  Starburst.set_faults db faults;
  (* run the workload until the crash fires *)
  let crashed_at = ref (-1) in
  let prefix_commits = ref 0 in
  List.iteri
    (fun i text ->
      if !crashed_at < 0 then begin
        (match attempt db text with
        | Ok () -> incr prefix_commits
        | Error _ -> ());
        if Wal.needs_recovery wal then crashed_at := i
      end)
    dml;
  if !crashed_at < 0 then Unfired
  else begin
    let i = !crashed_at in
    (* everything stable before recovery: did the in-flight statement's
       Commit record make it to the stable log? *)
    let stable_commits = List.length (Wal.committed_txns wal) in
    let committed = stable_commits > base_commits + !prefix_commits in
    Starburst.set_faults db Faults.none;
    match Starburst.Corona.recover db with
    | exception (Starburst.Error e | Err.Error e) ->
      Mismatch
        {
          m_round = round;
          m_site = site;
          m_ordinal = ordinal;
          m_stmt = List.nth dml i;
          m_committed = committed;
          m_detail = "recovery failed: " ^ Err.to_string e;
          m_script = ddl @ knobs @ dml;
        }
    | _ ->
      let got = snapshot db in
      let without = oracle.(i) and with_ = oracle.(i + 1) in
      (* the client never saw the in-flight statement succeed, so the
         recovered state may equal the oracle either without it or with
         it — but once its Commit is stable, only "with" is honest *)
      let verdict =
        if committed then state_diff with_ got
        else
          match state_diff without got with
          | None -> None
          | Some _ -> state_diff with_ got
      in
      (match verdict with
      | None -> Consistent { committed }
      | Some detail ->
        Mismatch
          {
            m_round = round;
            m_site = site;
            m_ordinal = ordinal;
            m_stmt = List.nth dml i;
            m_committed = committed;
            m_detail =
              (if committed then "committed statement lost: " ^ detail
               else "neither prefix state matches: " ^ detail);
            m_script = ddl @ knobs @ dml;
          })
  end

(* ------------------------------------------------------------------ *)
(* Rounds                                                              *)
(* ------------------------------------------------------------------ *)

(* oracle pass: snapshots after each statement prefix, no faults *)
let oracle_states ~ddl ~dml =
  let db = fresh_db ~ddl in
  let n = List.length dml in
  let states = Array.make (n + 1) (snapshot db) in
  List.iteri
    (fun i text ->
      ignore (attempt db text);
      states.(i + 1) <- snapshot db)
    dml;
  states

(* scout pass: an armed-but-ruleless plan counts consults per site,
   which enumerates every reachable crash ordinal *)
let scout ~seed ~ddl ~dml =
  let db = fresh_db ~ddl in
  let faults = Faults.create ~seed () in
  Starburst.set_faults db faults;
  List.iter (fun text -> ignore (attempt db text)) dml;
  List.filter_map
    (fun site ->
      match Faults.calls faults site with
      | 0 -> None
      | n -> Some (site, n))
    sites

(* recovery with the WAL off must be a structured Storage error *)
let wal_off_check () =
  let db = fresh_db ~ddl:[ "CREATE TABLE woff (a INT)" ] in
  ignore (Starburst.run db "SET wal = off");
  match Starburst.Corona.recover db with
  | _ -> false
  | exception Starburst.Error e | exception Err.Error e ->
    e.Err.err_stage = Err.Storage

let run ?metrics ?(log = fun _ -> ()) ~seed ~n () : stats =
  let master = Sprng.create seed in
  let rounds = ref 0 in
  let cases = ref 0 in
  let unfired = ref 0 in
  let committed = ref 0 in
  let by_site = Hashtbl.create 8 in
  let mismatches = ref [] in
  while !cases < n do
    let round = !rounds in
    incr rounds;
    let rng = Sprng.split master in
    let cat = Gen.gen_catalog rng in
    let ddl = Gen.ddl_of_catalog cat in
    let dml = Gen.gen_dml_workload rng cat ~n:12 in
    let oracle = oracle_states ~ddl ~dml in
    let reachable = scout ~seed ~ddl ~dml in
    List.iter
      (fun (site, total) ->
        for ordinal = 1 to total do
          if !cases < n then begin
            incr cases;
            Hashtbl.replace by_site site
              (1 + Option.value ~default:0 (Hashtbl.find_opt by_site site));
            match run_case ~round ~seed ~ddl ~dml ~oracle ~site ~ordinal with
            | Consistent { committed = c } -> if c then incr committed
            | Unfired -> incr unfired
            | Mismatch m ->
              log
                (Printf.sprintf "MISMATCH round %d %s#%d: %s" m.m_round
                   m.m_site m.m_ordinal m.m_detail);
              mismatches := m :: !mismatches
          end
        done)
      reachable
  done;
  let wal_off_ok = wal_off_check () in
  let stats =
    {
      cs_seed = seed;
      cs_rounds = !rounds;
      cs_cases = !cases;
      cs_unfired = !unfired;
      cs_committed = !committed;
      cs_by_site =
        List.filter_map
          (fun s ->
            Option.map (fun n -> (s, n)) (Hashtbl.find_opt by_site s))
          sites;
      cs_mismatches = List.rev !mismatches;
      cs_wal_off_ok = wal_off_ok;
    }
  in
  (match metrics with
  | None -> ()
  | Some m ->
    Metrics.incr ~by:stats.cs_cases (Metrics.counter m "sb_crash_cases_total");
    Metrics.incr
      ~by:(List.length stats.cs_mismatches)
      (Metrics.counter m "sb_crash_mismatches_total"));
  stats

let report (s : stats) : string =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "crash fuzz: seed=%d cases=%d rounds=%d\n" s.cs_seed
       s.cs_cases s.cs_rounds);
  List.iter
    (fun (site, n) ->
      Buffer.add_string b (Printf.sprintf "  %-12s %d cases\n" site n))
    s.cs_by_site;
  Buffer.add_string b
    (Printf.sprintf "  committed-at-crash %d, unfired %d\n" s.cs_committed
       s.cs_unfired);
  Buffer.add_string b
    (Printf.sprintf "  wal-off recovery: %s\n"
       (if s.cs_wal_off_ok then "structured error (ok)"
        else "NOT a structured error"));
  (match s.cs_mismatches with
  | [] -> Buffer.add_string b "  mismatches: 0\n"
  | ms ->
    Buffer.add_string b (Printf.sprintf "  mismatches: %d\n" (List.length ms));
    List.iter
      (fun m ->
        Buffer.add_string b
          (Printf.sprintf "  round %d %s#%d (%s) stmt [%s]: %s\n" m.m_round
             m.m_site m.m_ordinal
             (if m.m_committed then "committed" else "in-flight")
             m.m_stmt m.m_detail))
      ms);
  Buffer.contents b

let save_repro ~dir ~seed (i : int) (m : mismatch) : string =
  let path =
    Filename.concat dir (Printf.sprintf "crash_seed%d_%d.sql" seed i)
  in
  let oc = open_out path in
  Printf.fprintf oc "-- crash repro: seed %d, round %d, %s ordinal %d\n" seed
    m.m_round m.m_site m.m_ordinal;
  Printf.fprintf oc "-- in-flight: %s\n-- %s\n" m.m_stmt m.m_detail;
  List.iter (fun s -> Printf.fprintf oc "%s;\n" s) m.m_script;
  close_out oc;
  path
