(** Replayable failure files.  See repro.mli. *)

module Parser = Sb_hydrogen.Parser

type t = {
  r_seed : int;
  r_case : int;
  r_chaos_seed : int;
  r_config : string;
  r_detail : string;
  r_ddl : string list;
  r_query : string;
}

let one_line s =
  String.map (function '\n' | '\r' -> ' ' | c -> c) s

let to_string r =
  let b = Buffer.create 1024 in
  Buffer.add_string b "-- sb_fuzz repro\n";
  Printf.bprintf b "-- seed: %d\n" r.r_seed;
  Printf.bprintf b "-- case: %d\n" r.r_case;
  Printf.bprintf b "-- chaos-seed: %d\n" r.r_chaos_seed;
  Printf.bprintf b "-- config: %s\n" (one_line r.r_config);
  Printf.bprintf b "-- detail: %s\n" (one_line r.r_detail);
  List.iter (fun stmt -> Printf.bprintf b "%s;\n" stmt) r.r_ddl;
  Buffer.add_string b "-- query\n";
  Printf.bprintf b "%s\n" r.r_query;
  Buffer.contents b

let of_string text =
  let lines = String.split_on_char '\n' text in
  let meta = Hashtbl.create 8 in
  let ddl_buf = Buffer.create 512 in
  let query_buf = Buffer.create 256 in
  let in_query = ref false in
  List.iter
    (fun line ->
      let trimmed = String.trim line in
      if trimmed = "-- query" then in_query := true
      else if String.length trimmed >= 2 && String.sub trimmed 0 2 = "--" then begin
        (* header comment: "-- key: value" *)
        let body = String.trim (String.sub trimmed 2 (String.length trimmed - 2)) in
        match String.index_opt body ':' with
        | Some i ->
          let key = String.trim (String.sub body 0 i) in
          let value =
            String.trim (String.sub body (i + 1) (String.length body - i - 1))
          in
          Hashtbl.replace meta key value
        | None -> ()
      end
      else if !in_query then begin
        Buffer.add_string query_buf line;
        Buffer.add_char query_buf '\n'
      end
      else begin
        Buffer.add_string ddl_buf line;
        Buffer.add_char ddl_buf '\n'
      end)
    lines;
  if not !in_query then failwith "repro file has no '-- query' marker";
  let int_meta key default =
    match Hashtbl.find_opt meta key with
    | Some v -> (try int_of_string v with _ -> default)
    | None -> default
  in
  let str_meta key default =
    Option.value (Hashtbl.find_opt meta key) ~default
  in
  let ddl =
    String.split_on_char ';' (Buffer.contents ddl_buf)
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  {
    r_seed = int_meta "seed" 0;
    r_case = int_meta "case" 0;
    r_chaos_seed = int_meta "chaos-seed" 1;
    r_config = str_meta "config" "unknown";
    r_detail = str_meta "detail" "";
    r_ddl = ddl;
    r_query = String.trim (Buffer.contents query_buf);
  }

let save ~dir r =
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  let path = Filename.concat dir (Printf.sprintf "seed%d_case%d.sbf" r.r_seed r.r_case) in
  let oc = open_out path in
  output_string oc (to_string r);
  close_out oc;
  path

let replay r =
  let query = Parser.query_text r.r_query in
  Oracle.check_case ~ddl:r.r_ddl ~chaos_seed:r.r_chaos_seed query
