(** The fuzzing driver.  See harness.mli. *)

module Ast = Sb_hydrogen.Ast
module Parser = Sb_hydrogen.Parser
module Metrics = Sb_obs.Metrics

type stats = {
  st_seed : int;
  st_cases : int;
  st_passed : int;
  st_rejected : int;
  st_failures : Repro.t list;
  st_shrink_steps : int;
}

(* round-trip first, then the full oracle matrix: this one predicate is
   both the case check and the shrinker's [still_fails] *)
let full_verdict ?inject ?rules ?qes ~chaos_seed (cat : Gen.catalog)
    (q : Ast.with_query) : Oracle.verdict =
  let text = Gen.query_text q in
  match Parser.query_text text with
  | exception exn ->
    Oracle.Fail
      {
        config = "roundtrip";
        detail =
          Printf.sprintf "printed query failed to reparse: %s"
            (Printexc.to_string exn);
      }
  | reparsed when reparsed <> q ->
    Oracle.Fail
      {
        config = "roundtrip";
        detail = "pretty-printed query reparsed to a different AST";
      }
  | _ ->
    Oracle.check_case ?inject ?rules ?qes ~ddl:(Gen.ddl_of_catalog cat)
      ~chaos_seed q

let run ?inject ?rules ?qes ?metrics ?out_dir ?(log = fun _ -> ()) ~seed ~n ()
    =
  let counter name =
    match metrics with
    | None -> None
    | Some m -> Some (Metrics.counter m name)
  in
  let bump ?(by = 1) c = Option.iter (fun c -> Metrics.incr ~by c) c in
  let c_cases = counter "sb_fuzz_cases_total" in
  let c_rejected = counter "sb_fuzz_rejected_total" in
  let c_discrepancies = counter "sb_fuzz_discrepancies_total" in
  let c_shrink = counter "sb_fuzz_shrink_steps_total" in
  let root = Sprng.create seed in
  let passed = ref 0 in
  let rejected = ref 0 in
  let failures = ref [] in
  let shrink_steps = ref 0 in
  for case = 1 to n do
    let case_rng = Sprng.split root in
    let cat_rng = Sprng.split case_rng in
    let q_rng = Sprng.split case_rng in
    let chaos_seed = 1 + Sprng.int case_rng 999_983 in
    let cat = Gen.gen_catalog cat_rng in
    let query = Gen.gen_query q_rng cat in
    bump c_cases;
    match full_verdict ?inject ?rules ?qes ~chaos_seed cat query with
    | Oracle.Pass -> incr passed
    | Oracle.Rejected _ ->
      incr rejected;
      bump c_rejected
    | Oracle.Fail { config; detail } ->
      bump c_discrepancies;
      log
        (Printf.sprintf "case %d: %s diverged (%s); shrinking..." case config
           detail);
      let still_fails c q =
        match full_verdict ?inject ?rules ?qes ~chaos_seed c q with
        | Oracle.Fail _ -> true
        | Oracle.Pass | Oracle.Rejected _ -> false
      in
      let cat', query', steps = Shrink.shrink ~still_fails cat query in
      shrink_steps := !shrink_steps + steps;
      bump ~by:steps c_shrink;
      (* the shrunk case may surface under a different configuration
         name; record what it fails as now *)
      let config, detail =
        match full_verdict ?inject ?rules ?qes ~chaos_seed cat' query' with
        | Oracle.Fail { config; detail } -> (config, detail)
        | Oracle.Pass | Oracle.Rejected _ -> (config, detail)
      in
      let repro =
        {
          Repro.r_seed = seed;
          r_case = case;
          r_chaos_seed = chaos_seed;
          r_config = config;
          r_detail = detail;
          r_ddl = Gen.ddl_of_catalog cat';
          r_query = Gen.query_text query';
        }
      in
      (match out_dir with
      | Some dir ->
        let path = Repro.save ~dir repro in
        log (Printf.sprintf "case %d: repro saved to %s" case path)
      | None -> ());
      failures := repro :: !failures
  done;
  {
    st_seed = seed;
    st_cases = n;
    st_passed = !passed;
    st_rejected = !rejected;
    st_failures = List.rev !failures;
    st_shrink_steps = !shrink_steps;
  }

let report st =
  let b = Buffer.create 256 in
  Printf.bprintf b "fuzz: seed=%d cases=%d passed=%d rejected=%d failures=%d shrink-steps=%d\n"
    st.st_seed st.st_cases st.st_passed st.st_rejected
    (List.length st.st_failures) st.st_shrink_steps;
  List.iter
    (fun (r : Repro.t) ->
      Printf.bprintf b "  case %d [%s]: %s\n    %s\n" r.Repro.r_case
        r.Repro.r_config r.Repro.r_detail r.Repro.r_query)
    st.st_failures;
  Buffer.contents b

let replay_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  Repro.replay (Repro.of_string text)

let replay_dir dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".sbf")
  |> List.sort compare
  |> List.map (fun f ->
         let path = Filename.concat dir f in
         (path, replay_file path))
