(** Replayable failure files ([.sbf]).

    A repro is a plain Hydrogen script: header comments carrying the
    metadata (root seed, case number, chaos seed, failing configuration,
    discrepancy detail), the catalog DDL/DML, then a [-- query] marker
    followed by the query text.  Since [--] starts a Hydrogen comment,
    the whole file is also pasteable into the shell as-is.

    Fresh failures land in [_fuzz_failures/]; curated ones are promoted
    to [test/fuzz_corpus/] where the test suite and the CI fuzz job
    replay them forever. *)

type t = {
  r_seed : int;  (** root seed of the run that found it *)
  r_case : int;  (** case index within that run *)
  r_chaos_seed : int;  (** fault seed the oracle used for this case *)
  r_config : string;  (** the configuration that diverged *)
  r_detail : string;  (** first line of the discrepancy description *)
  r_ddl : string list;
  r_query : string;
}

val to_string : t -> string

(** Inverse of {!to_string}; tolerates extra comments and blank lines.
    @raise Failure on a file without a [-- query] marker. *)
val of_string : string -> t

(** [save dir repro] writes [dir/seed<S>_case<N>.sbf] (creating [dir])
    and returns the path. *)
val save : dir:string -> t -> string

(** Replays one repro through the oracle matrix. *)
val replay : t -> Oracle.verdict
