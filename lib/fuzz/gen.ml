(** Random catalogs and queries.  See gen.mli for the contracts. *)

open Sb_storage
module Ast = Sb_hydrogen.Ast
module Pretty = Sb_hydrogen.Pretty

type col = {
  c_name : string;
  c_type : Datatype.t;
  c_nullable : bool;
  c_unique : bool;
}

type table = {
  t_name : string;
  t_cols : col list;
  t_rows : Value.t list list;
  t_index : string option;
}

type catalog = table list

(* ------------------------------------------------------------------ *)
(* Catalogs and data                                                   *)
(* ------------------------------------------------------------------ *)

let string_pool =
  [ "a"; "b"; "c"; "ab"; "ba"; "x"; "zz"; "o'k"; "m m"; "" ]

let gen_value rng (c : col) ~row_idx ~base =
  if c.c_unique then Value.Int (base + row_idx)
  else if c.c_nullable && Sprng.chance rng 0.25 then Value.Null
  else
    match c.c_type with
    | Datatype.Int -> Value.Int (Sprng.skewed rng 16 - 3)
    | Datatype.Float -> Value.Float (float_of_int (Sprng.range rng (-8) 40) *. 0.5)
    | Datatype.Bool -> Value.Bool (Sprng.bool rng)
    | Datatype.String -> Value.String (List.nth string_pool (Sprng.skewed rng 10))
    | Datatype.Ext _ -> Value.Null

let gen_table rng i =
  let name = Printf.sprintf "f%d" (i + 1) in
  let key =
    {
      c_name = "k";
      c_type = Datatype.Int;
      c_nullable = false;
      c_unique = Sprng.chance rng 0.5;
    }
  in
  let n_extra = Sprng.range rng 2 4 in
  let extras =
    List.init n_extra (fun j ->
        let ty =
          Sprng.weighted rng
            [ (4, Datatype.Int); (2, Datatype.Float); (3, Datatype.String);
              (1, Datatype.Bool) ]
        in
        {
          c_name = Printf.sprintf "c%d" (j + 1);
          c_type = ty;
          c_nullable = Sprng.chance rng 0.8;
          c_unique = false;
        })
  in
  let cols = key :: extras in
  let n_rows = Sprng.skewed rng 29 in
  let base = Sprng.int rng 5 in
  let rows =
    List.init n_rows (fun r ->
        List.map (fun c -> gen_value rng c ~row_idx:r ~base) cols)
  in
  let index =
    if Sprng.chance rng 0.4 then
      let int_cols =
        List.filter (fun c -> c.c_type = Datatype.Int) cols
      in
      Some (Sprng.choose rng int_cols).c_name
    else None
  in
  { t_name = name; t_cols = cols; t_rows = rows; t_index = index }

let gen_catalog rng =
  let n = Sprng.range rng 2 4 in
  List.init n (gen_table rng)

let ddl_of_catalog (cat : catalog) : string list =
  let create t =
    Printf.sprintf "CREATE TABLE %s (%s)" t.t_name
      (String.concat ", "
         (List.map
            (fun c ->
              Printf.sprintf "%s %s%s%s" c.c_name
                (Datatype.to_string c.c_type)
                (if c.c_nullable then "" else " NOT NULL")
                (if c.c_unique then " UNIQUE" else ""))
            t.t_cols))
  in
  let inserts t =
    if t.t_rows = [] then []
    else
      (* chunked so statements stay readable in repro files *)
      let rec chunks acc rows =
        match rows with
        | [] -> List.rev acc
        | _ ->
          let take = List.filteri (fun i _ -> i < 50) rows in
          let rest = List.filteri (fun i _ -> i >= 50) rows in
          chunks (take :: acc) rest
      in
      List.map
        (fun chunk ->
          Printf.sprintf "INSERT INTO %s VALUES %s" t.t_name
            (String.concat ", "
               (List.map
                  (fun row ->
                    Printf.sprintf "(%s)"
                      (String.concat ", " (List.map Value.to_literal row)))
                  chunk)))
        (chunks [] t.t_rows)
  in
  let indexes t =
    match t.t_index with
    | Some c ->
      [ Printf.sprintf "CREATE INDEX ix_%s_%s ON %s (%s) USING btree"
          t.t_name c t.t_name c ]
    | None -> []
  in
  List.concat_map (fun t -> (create t :: inserts t) @ indexes t) cat
  @ [ "ANALYZE" ]

(* ------------------------------------------------------------------ *)
(* Query generation                                                    *)
(* ------------------------------------------------------------------ *)

type binding = { b_alias : string; b_cols : (string * Datatype.t) list }

type st = {
  rng : Sprng.t;
  cat : catalog;
  mutable fresh : int;  (** case-global alias counter *)
  mutable with_tables : (string * (string * Datatype.t) list) list;
}

let fresh_alias st prefix =
  st.fresh <- st.fresh + 1;
  Printf.sprintf "%s%d" prefix st.fresh

let cols_of_table (t : table) = List.map (fun c -> (c.c_name, c.c_type)) t.t_cols

let avail_tables st =
  List.map (fun t -> (t.t_name, cols_of_table t)) st.cat @ st.with_tables

(* every column reference is alias-qualified, so shared column names
   across tables never create ambiguity *)
let cols_of_type bindings ty =
  List.concat_map
    (fun b ->
      List.filter_map
        (fun (n, t) -> if Datatype.equal t ty then Some (b.b_alias, n) else None)
        b.b_cols)
    bindings

let col_expr (alias, name) = Ast.Col (Some alias, name)

let lit_int st = Ast.Lit (Value.Int (Sprng.range st.rng (-5) 15))
let lit_float st = Ast.Lit (Value.Float (float_of_int (Sprng.range st.rng (-8) 40) *. 0.5))
let lit_string st = Ast.Lit (Value.String (List.nth string_pool (Sprng.skewed st.rng 10)))
let lit_bool st = Ast.Lit (Value.Bool (Sprng.bool st.rng))

let lit_of_type st = function
  | Datatype.Int -> lit_int st
  | Datatype.Float -> lit_float st
  | Datatype.Bool -> lit_bool st
  | Datatype.String | Datatype.Ext _ -> lit_string st

let cmp_ops = [ Ast.Eq; Ast.Neq; Ast.Lt; Ast.Le; Ast.Gt; Ast.Ge ]

(* a typed scalar expression over [bindings]; columns dominate *)
let rec gen_expr st bindings ty ~depth =
  let cols = cols_of_type bindings ty in
  let col_w = if cols = [] then 0 else 8 in
  let arith_w = if depth > 0 && ty = Datatype.Int then 3 else 0 in
  let case_w = if depth > 0 then 1 else 0 in
  match
    Sprng.weighted st.rng
      [ (col_w, `Col); (3, `Lit); (arith_w, `Arith); (case_w, `Case) ]
  with
  | `Col -> col_expr (Sprng.choose st.rng cols)
  | `Lit -> lit_of_type st ty
  | `Arith ->
    let op = Sprng.weighted st.rng
        [ (3, Ast.Add); (3, Ast.Sub); (2, Ast.Mul); (1, Ast.Div); (1, Ast.Mod) ]
    in
    let lhs = gen_expr st bindings Datatype.Int ~depth:(depth - 1) in
    let rhs =
      match op with
      | Ast.Div | Ast.Mod ->
        (* non-zero literal divisor: a divide-by-zero that one plan
           reaches and another filters away is not a rewrite bug *)
        Ast.Lit (Value.Int (1 + Sprng.int st.rng 7))
      | _ -> gen_expr st bindings Datatype.Int ~depth:(depth - 1)
    in
    Ast.Bin (op, lhs, rhs)
  | `Case ->
    let cond = gen_pred st bindings ~outer:[] ~depth:0 in
    let a = gen_expr st bindings ty ~depth:0 in
    let b = gen_expr st bindings ty ~depth:0 in
    Ast.Case ([ (cond, a) ], if Sprng.bool st.rng then Some b else None)

(* a boolean predicate; [outer] bindings enable correlation *)
and gen_pred st bindings ~outer ~depth =
  let all = bindings @ outer in
  let pick_typed () =
    let tys =
      List.filter
        (fun ty -> cols_of_type all ty <> [])
        [ Datatype.Int; Datatype.Float; Datatype.String; Datatype.Bool ]
    in
    match tys with [] -> Datatype.Int | tys -> Sprng.choose st.rng tys
  in
  let sub_w = if depth > 0 then 3 else 0 in
  let bool_w = if depth > 0 then 4 else 0 in
  match
    Sprng.weighted st.rng
      [
        (10, `Cmp); (4, `Null_test); (2, `Between); (2, `In_list); (2, `Like);
        (sub_w, `Exists); (sub_w, `In_query); (2 * sub_w / 3, `Quant);
        (2 * sub_w / 3, `Scalar); (bool_w, `Connective);
      ]
  with
  | `Cmp ->
    let ty = pick_typed () in
    let ops = match ty with Datatype.Bool -> [ Ast.Eq; Ast.Neq ] | _ -> cmp_ops in
    let lhs = gen_expr st all ty ~depth:1 in
    let rhs =
      if Sprng.chance st.rng 0.5 then gen_expr st all ty ~depth:0
      else lit_of_type st ty
    in
    Ast.Bin (Sprng.choose st.rng ops, lhs, rhs)
  | `Null_test -> (
    let ty = pick_typed () in
    match cols_of_type all ty with
    | [] -> Ast.Bin (Ast.Eq, lit_int st, lit_int st)
    | cols ->
      let e = Ast.Is_null (col_expr (Sprng.choose st.rng cols)) in
      if Sprng.bool st.rng then Ast.Un (Ast.Not, e) else e)
  | `Between -> (
    match cols_of_type all Datatype.Int with
    | [] -> Ast.Bin (Ast.Le, lit_int st, lit_int st)
    | cols ->
      Ast.Between (col_expr (Sprng.choose st.rng cols), lit_int st, lit_int st))
  | `In_list -> (
    let ty = if Sprng.bool st.rng then Datatype.Int else Datatype.String in
    match cols_of_type all ty with
    | [] -> Ast.In_list (lit_int st, [ lit_int st; lit_int st ])
    | cols ->
      let n = Sprng.range st.rng 2 4 in
      Ast.In_list
        (col_expr (Sprng.choose st.rng cols),
         List.init n (fun _ -> lit_of_type st ty)))
  | `Like -> (
    match cols_of_type all Datatype.String with
    | [] -> Ast.Bin (Ast.Eq, lit_int st, lit_int st)
    | cols ->
      let pat =
        Sprng.choose st.rng [ "a%"; "%b"; "%a%"; "_"; "%"; "ab%"; "%z%"; "m%m" ]
      in
      Ast.Like (col_expr (Sprng.choose st.rng cols), pat))
  | `Exists ->
    let q = gen_subselect st ~outer:all ~want:None in
    let e = Ast.Exists q in
    if Sprng.chance st.rng 0.4 then Ast.Un (Ast.Not, e) else e
  | `In_query ->
    let ty = pick_typed () in
    let lhs = gen_expr st all ty ~depth:0 in
    let q = gen_subselect st ~outer:all ~want:(Some ty) in
    let e = Ast.In_query (lhs, q) in
    (* NOT IN: universal semantics, NULL-sensitive — prime oracle bait *)
    if Sprng.chance st.rng 0.35 then Ast.Un (Ast.Not, e) else e
  | `Quant ->
    let ty = if Sprng.bool st.rng then Datatype.Int else Datatype.Float in
    let lhs = gen_expr st all ty ~depth:0 in
    let kind = if Sprng.bool st.rng then Ast.Q_all else Ast.Q_any in
    let q = gen_subselect st ~outer:all ~want:(Some ty) in
    Ast.Quant_cmp (lhs, Sprng.choose st.rng cmp_ops, kind, q)
  | `Scalar ->
    let ty = if Sprng.bool st.rng then Datatype.Int else Datatype.Float in
    let lhs = gen_expr st all ty ~depth:0 in
    let q = gen_agg_subselect st ~outer:all ty in
    Ast.Bin (Sprng.choose st.rng cmp_ops, lhs, Ast.Scalar_query q)
  | `Connective -> (
    let a = gen_pred st bindings ~outer ~depth:(depth - 1) in
    match Sprng.weighted st.rng [ (3, `And); (3, `Or); (2, `Not) ] with
    | `Not -> Ast.Un (Ast.Not, a)
    | c ->
      let b = gen_pred st bindings ~outer ~depth:(depth - 1) in
      Ast.Bin ((if c = `And then Ast.And else Ast.Or), a, b))

(* single-column subselect for IN / quantified comparisons / EXISTS.
   [want]: the output column's type ([None] for EXISTS — any column). *)
and gen_subselect st ~outer ~want : Ast.query =
  let tname, tcols = Sprng.choose st.rng (avail_tables st) in
  let alias = fresh_alias st "s" in
  let b = { b_alias = alias; b_cols = tcols } in
  let item =
    match want with
    | None -> col_expr (Sprng.choose st.rng (List.map (fun (n, _) -> (alias, n)) tcols))
    | Some ty -> (
      match cols_of_type [ b ] ty with
      | [] -> lit_of_type st ty
      | cols -> col_expr (Sprng.choose st.rng cols))
  in
  let where =
    if Sprng.chance st.rng 0.75 then
      let outer' = if Sprng.chance st.rng 0.6 then outer else [] in
      Some (gen_pred st [ b ] ~outer:outer' ~depth:1)
    else None
  in
  Ast.Select
    {
      sel_distinct = Sprng.chance st.rng 0.15;
      sel_items = [ Ast.Item (item, Some (fresh_alias st "o")) ];
      sel_from = [ Ast.From_table (tname, Some alias) ];
      sel_where = where;
      sel_group = [];
      sel_having = None;
      sel_order = [];
      sel_limit = None;
    }

(* aggregate subselect: always exactly one row, so it is safe in scalar
   position under every plan *)
and gen_agg_subselect st ~outer ty : Ast.query =
  let tname, tcols = Sprng.choose st.rng (avail_tables st) in
  let alias = fresh_alias st "s" in
  let b = { b_alias = alias; b_cols = tcols } in
  (* non-DISTINCT aggregate calls are written [Func]: that is the
     parser's canonical form — [Agg] is reserved for count-star and
     DISTINCT forms; the builder resolves aggregates by name *)
  let agg =
    match cols_of_type [ b ] ty with
    | [] -> Ast.Agg ("count", false, None)
    | cols ->
      let f = Sprng.choose st.rng [ "min"; "max" ] in
      Ast.Func (f, [ col_expr (Sprng.choose st.rng cols) ])
  in
  let where =
    if Sprng.chance st.rng 0.5 then
      let outer' = if Sprng.chance st.rng 0.5 then outer else [] in
      Some (gen_pred st [ b ] ~outer:outer' ~depth:0)
    else None
  in
  Ast.Select
    {
      sel_distinct = false;
      sel_items = [ Ast.Item (agg, Some (fresh_alias st "o")) ];
      sel_from = [ Ast.From_table (tname, Some alias) ];
      sel_where = where;
      sel_group = [];
      sel_having = None;
      sel_order = [];
      sel_limit = None;
    }

(* ------------------------------------------------------------------ *)
(* FROM clauses                                                        *)
(* ------------------------------------------------------------------ *)

and gen_from_primary st ~depth : Ast.from_item * binding =
  if depth > 0 && Sprng.chance st.rng 0.18 then begin
    (* derived table with explicit output names *)
    let sel, out_cols = gen_plain_select st ~outer:[] ~depth:(depth - 1) in
    let alias = fresh_alias st "d" in
    let binding = { b_alias = alias; b_cols = out_cols } in
    (Ast.From_query (Ast.Select sel, alias, None), binding)
  end
  else begin
    let tname, tcols = Sprng.choose st.rng (avail_tables st) in
    let alias = fresh_alias st "q" in
    (Ast.From_table (tname, Some alias), { b_alias = alias; b_cols = tcols })
  end

(* equi-join condition between two binding groups, TRUE if no types line up *)
and join_cond st (lhs : binding list) (rhs : binding list) : Ast.expr =
  let pairs =
    List.concat_map
      (fun ty ->
        match (cols_of_type lhs ty, cols_of_type rhs ty) with
        | [], _ | _, [] -> []
        | ls, rs -> List.concat_map (fun l -> List.map (fun r -> (l, r)) rs) ls)
      [ Datatype.Int; Datatype.Float; Datatype.String ]
  in
  match pairs with
  | [] -> Ast.Lit (Value.Bool true)
  | _ ->
    let l, r = Sprng.choose st.rng pairs in
    Ast.Bin (Ast.Eq, col_expr l, col_expr r)

and gen_from st ~depth : Ast.from_item list * binding list =
  let n = Sprng.weighted st.rng [ (4, 1); (4, 2); (2, 3) ] in
  if n >= 2 && Sprng.chance st.rng 0.35 then begin
    (* explicit join syntax, left-nested; outer joins build PF setformers *)
    let f1, b1 = gen_from_primary st ~depth in
    let f2, b2 = gen_from_primary st ~depth in
    let jt =
      Sprng.weighted st.rng
        [ (3, Ast.Inner); (3, Ast.Left_outer); (1, Ast.Right_outer) ]
    in
    let on = join_cond st [ b1 ] [ b2 ] in
    let join = Ast.From_join (f1, jt, f2, on) in
    if n = 3 && Sprng.chance st.rng 0.5 then begin
      let f3, b3 = gen_from_primary st ~depth in
      let on2 = join_cond st [ b1; b2 ] [ b3 ] in
      let jt2 = if Sprng.chance st.rng 0.3 then Ast.Left_outer else Ast.Inner in
      ([ Ast.From_join (join, jt2, f3, on2) ], [ b1; b2; b3 ])
    end
    else ([ join ], [ b1; b2 ])
  end
  else begin
    let items = List.init n (fun _ -> gen_from_primary st ~depth) in
    (List.map fst items, List.map snd items)
  end

(* ------------------------------------------------------------------ *)
(* SELECT bodies                                                       *)
(* ------------------------------------------------------------------ *)

(* a non-grouped select; returns its output naming for derived tables *)
and gen_plain_select st ~outer ~depth : Ast.select * (string * Datatype.t) list
    =
  let from, bindings = gen_from st ~depth in
  let n_items = Sprng.range st.rng 1 3 in
  let items =
    List.init n_items (fun _ ->
        let ty =
          Sprng.weighted st.rng
            [ (4, Datatype.Int); (2, Datatype.Float); (2, Datatype.String);
              (1, Datatype.Bool) ]
        in
        let ty = if cols_of_type bindings ty = [] then Datatype.Int else ty in
        (gen_expr st bindings ty ~depth:1, ty))
  in
  let named =
    List.map (fun (e, ty) -> (e, fresh_alias st "o", ty)) items
  in
  let where =
    if Sprng.chance st.rng 0.8 then
      Some (gen_pred st bindings ~outer ~depth:(min depth 2))
    else None
  in
  ( {
      Ast.sel_distinct = Sprng.chance st.rng 0.15;
      sel_items = List.map (fun (e, a, _) -> Ast.Item (e, Some a)) named;
      sel_from = from;
      sel_where = where;
      sel_group = [];
      sel_having = None;
      sel_order = [];
      sel_limit = None;
    },
    List.map (fun (_, a, ty) -> (a, ty)) named )

(* a grouped select: keys + aggregates, optional HAVING *)
and gen_grouped_select st ~depth : Ast.select =
  let from, bindings = gen_from st ~depth in
  let all_cols =
    List.concat_map
      (fun b -> List.map (fun (n, ty) -> ((b.b_alias, n), ty)) b.b_cols)
      bindings
  in
  let n_keys = Sprng.range st.rng 1 2 in
  let keys =
    List.init n_keys (fun _ -> Sprng.choose st.rng all_cols)
  in
  let key_exprs = List.map (fun (c, _) -> col_expr c) keys in
  let n_aggs = Sprng.range st.rng 1 2 in
  let aggs =
    List.init n_aggs (fun _ ->
        let int_cols = cols_of_type bindings Datatype.Int in
        match
          Sprng.weighted st.rng
            [ (3, `Count_star); (2, `Count_col); (2, `Sum); (2, `Min); (2, `Max) ]
        with
        | `Count_star -> Ast.Agg ("count", false, None)
        | `Count_col -> (
          match all_cols with
          | [] -> Ast.Agg ("count", false, None)
          | _ ->
            let (c, _) = Sprng.choose st.rng all_cols in
            (* canonical forms: DISTINCT stays [Agg], plain stays [Func] *)
            if Sprng.chance st.rng 0.25 then
              Ast.Agg ("count", true, Some (col_expr c))
            else Ast.Func ("count", [ col_expr c ]))
        | `Sum -> (
          match int_cols with
          | [] -> Ast.Agg ("count", false, None)
          | _ -> Ast.Func ("sum", [ col_expr (Sprng.choose st.rng int_cols) ]))
        | `Min | `Max -> (
          let f = if Sprng.bool st.rng then "min" else "max" in
          match all_cols with
          | [] -> Ast.Agg ("count", false, None)
          | _ ->
            let (c, _) = Sprng.choose st.rng all_cols in
            Ast.Func (f, [ col_expr c ])))
  in
  let items =
    List.map (fun e -> Ast.Item (e, Some (fresh_alias st "o"))) (key_exprs @ aggs)
  in
  let where =
    if Sprng.chance st.rng 0.6 then
      Some (gen_pred st bindings ~outer:[] ~depth:1)
    else None
  in
  let having =
    if Sprng.chance st.rng 0.4 then
      Some
        (Ast.Bin
           ( Sprng.choose st.rng cmp_ops,
             Ast.Agg ("count", false, None),
             Ast.Lit (Value.Int (Sprng.int st.rng 4)) ))
    else None
  in
  {
    Ast.sel_distinct = false;
    sel_items = items;
    sel_from = from;
    sel_where = where;
    sel_group = key_exprs;
    sel_having = having;
    sel_order = [];
    sel_limit = None;
  }

(* ------------------------------------------------------------------ *)
(* Top level                                                           *)
(* ------------------------------------------------------------------ *)

(* a select whose output is exactly [want]-typed (set-operation arms) *)
let gen_typed_select st (want : Datatype.t list) : Ast.select =
  let tname, tcols = Sprng.choose st.rng (avail_tables st) in
  let alias = fresh_alias st "q" in
  let b = { b_alias = alias; b_cols = tcols } in
  let items =
    List.map
      (fun ty ->
        let e =
          match cols_of_type [ b ] ty with
          | [] -> lit_of_type st ty
          | cols -> col_expr (Sprng.choose st.rng cols)
        in
        Ast.Item (e, Some (fresh_alias st "o")))
      want
  in
  let where =
    if Sprng.chance st.rng 0.6 then Some (gen_pred st [ b ] ~outer:[] ~depth:1)
    else None
  in
  {
    Ast.sel_distinct = Sprng.chance st.rng 0.2;
    sel_items = items;
    sel_from = [ Ast.From_table (tname, Some alias) ];
    sel_where = where;
    sel_group = [];
    sel_having = None;
    sel_order = [];
    sel_limit = None;
  }

let gen_body st : Ast.query =
  match
    Sprng.weighted st.rng [ (11, `Plain); (5, `Grouped); (3, `Setop) ]
  with
  | `Plain ->
    let sel, _ = gen_plain_select st ~outer:[] ~depth:2 in
    (* optional ORDER BY position / LIMIT on the top select only *)
    let n_items = List.length sel.Ast.sel_items in
    let order =
      if Sprng.chance st.rng 0.3 then
        [ ( Ast.Lit (Value.Int (1 + Sprng.int st.rng n_items)),
            if Sprng.bool st.rng then Ast.Desc else Ast.Asc ) ]
      else []
    in
    let limit = if Sprng.chance st.rng 0.25 then Some (Sprng.int st.rng 8) else None in
    Ast.Select { sel with Ast.sel_order = order; sel_limit = limit }
  | `Grouped -> Ast.Select (gen_grouped_select st ~depth:1)
  | `Setop ->
    let n_cols = Sprng.range st.rng 1 2 in
    let want =
      List.init n_cols (fun _ ->
          Sprng.weighted st.rng
            [ (4, Datatype.Int); (2, Datatype.Float); (2, Datatype.String) ])
    in
    let l = gen_typed_select st want in
    let r = gen_typed_select st want in
    let op =
      Sprng.weighted st.rng
        [ (4, Ast.Union); (2, Ast.Intersect); (2, Ast.Except) ]
    in
    let all = op = Ast.Union && Sprng.chance st.rng 0.5 in
    Ast.Set_op (op, all, Ast.Select l, Ast.Select r)

let gen_query rng (cat : catalog) : Ast.with_query =
  let st = { rng; cat; fresh = 0; with_tables = [] } in
  let defs =
    if Sprng.chance st.rng 0.12 then begin
      let sel, out_cols = gen_plain_select st ~outer:[] ~depth:1 in
      let name = fresh_alias st "w" in
      st.with_tables <- [ (name, out_cols) ];
      [ (name, None, Ast.Select sel) ]
    end
    else []
  in
  let body = gen_body st in
  { Ast.with_recursive = false; with_defs = defs; with_body = body }

let query_text = Pretty.with_query_to_string

(* ------------------------------------------------------------------ *)
(* Size measure                                                        *)
(* ------------------------------------------------------------------ *)

let rec expr_quants (e : Ast.expr) =
  match e with
  | Ast.Lit _ | Ast.Col _ | Ast.Host _ -> 0
  | Ast.Bin (_, a, b) -> expr_quants a + expr_quants b
  | Ast.Un (_, a) | Ast.Is_null a -> expr_quants a
  | Ast.Func (_, args) -> List.fold_left (fun n a -> n + expr_quants a) 0 args
  | Ast.Agg (_, _, a) -> (match a with Some a -> expr_quants a | None -> 0)
  | Ast.Case (arms, els) ->
    List.fold_left (fun n (c, v) -> n + expr_quants c + expr_quants v) 0 arms
    + (match els with Some e -> expr_quants e | None -> 0)
  | Ast.In_list (a, es) ->
    List.fold_left (fun n e -> n + expr_quants e) (expr_quants a) es
  | Ast.In_query (a, q) -> expr_quants a + 1 + query_quants q
  | Ast.Exists q -> 1 + query_quants q
  | Ast.Quant_cmp (a, _, _, q) -> expr_quants a + 1 + query_quants q
  | Ast.Scalar_query q -> 1 + query_quants q
  | Ast.Between (a, lo, hi) -> expr_quants a + expr_quants lo + expr_quants hi
  | Ast.Like (a, _) -> expr_quants a

and from_quants (f : Ast.from_item) =
  match f with
  | Ast.From_table _ -> 1
  | Ast.From_query (q, _, _) -> query_quants q
  | Ast.From_func _ -> 1
  | Ast.From_join (l, _, r, on) -> from_quants l + from_quants r + expr_quants on

and query_quants (q : Ast.query) =
  match q with
  | Ast.Select s ->
    List.fold_left (fun n f -> n + from_quants f) 0 s.Ast.sel_from
    + List.fold_left
        (fun n i ->
          n + match i with Ast.Item (e, _) -> expr_quants e | _ -> 0)
        0 s.Ast.sel_items
    + (match s.Ast.sel_where with Some w -> expr_quants w | None -> 0)
    + List.fold_left (fun n e -> n + expr_quants e) 0 s.Ast.sel_group
    + (match s.Ast.sel_having with Some h -> expr_quants h | None -> 0)
  | Ast.Set_op (_, _, a, b) -> query_quants a + query_quants b
  | Ast.Values _ -> 0

let quantifier_count (wq : Ast.with_query) =
  List.fold_left (fun n (_, _, q) -> n + query_quants q) 0 wq.Ast.with_defs
  + query_quants wq.Ast.with_body

(* ------------------------------------------------------------------ *)
(* DML workloads (crash fuzzing)                                       *)
(* ------------------------------------------------------------------ *)

let gen_dml_workload rng (cat : catalog) ~n : string list =
  (* unique keys from a monotone counter well above the seed rows
     (which use small base+row values), so inserts rarely collide *)
  let next_key = ref 1000 in
  let fresh_key () =
    incr next_key;
    !next_key
  in
  let literal (c : col) =
    if c.c_unique then Value.Int (fresh_key ())
    else if c.c_nullable && Sprng.chance rng 0.2 then Value.Null
    else
      match c.c_type with
      | Datatype.Int -> Value.Int (Sprng.skewed rng 16 - 3)
      | Datatype.Float ->
        Value.Float (float_of_int (Sprng.range rng (-8) 40) *. 0.5)
      | Datatype.Bool -> Value.Bool (Sprng.bool rng)
      | Datatype.String ->
        Value.String (List.nth string_pool (Sprng.skewed rng 10))
      | Datatype.Ext _ -> Value.Null
  in
  let key_pred t =
    let k = (List.hd t.t_cols).c_name in
    let v = Sprng.range rng (-3) 34 in
    match Sprng.weighted rng [ (3, `Lt); (3, `Eq); (2, `Ge) ] with
    | `Lt -> Printf.sprintf "%s < %d" k v
    | `Eq -> Printf.sprintf "%s = %d" k v
    | `Ge -> Printf.sprintf "%s >= %d" k v
  in
  let gen_stmt () =
    let t = Sprng.choose rng cat in
    match Sprng.weighted rng [ (5, `Insert); (3, `Update); (2, `Delete) ] with
    | `Insert ->
      let n_rows = Sprng.range rng 1 3 in
      let rows =
        List.init n_rows (fun _ ->
            Printf.sprintf "(%s)"
              (String.concat ", "
                 (List.map (fun c -> Value.to_literal (literal c)) t.t_cols)))
      in
      Printf.sprintf "INSERT INTO %s VALUES %s" t.t_name
        (String.concat ", " rows)
    | `Update -> (
      (* never SET a unique column: assigning one constant to several
         rows would fail for reasons unrelated to durability *)
      match List.filter (fun c -> not c.c_unique) t.t_cols with
      | [] ->
        Printf.sprintf "DELETE FROM %s WHERE %s" t.t_name (key_pred t)
      | cols ->
        let c = Sprng.choose rng cols in
        Printf.sprintf "UPDATE %s SET %s = %s WHERE %s" t.t_name c.c_name
          (Value.to_literal (literal c)) (key_pred t))
    | `Delete ->
      Printf.sprintf "DELETE FROM %s WHERE %s" t.t_name (key_pred t)
  in
  List.init n (fun _ -> gen_stmt ())
