(** Greedy structural minimization.  See shrink.mli. *)

open Sb_storage
module Ast = Sb_hydrogen.Ast

(* [variants] functions return strictly "smaller" replacements for a
   node, outermost reductions first; unsound candidates are filtered by
   the caller's predicate, not here. *)

let truth = Ast.Lit (Value.Bool true)

let rec expr_variants (e : Ast.expr) : Ast.expr list =
  let inside rebuild child = List.map rebuild (expr_variants child) in
  match e with
  | Ast.Bin (((Ast.And | Ast.Or) as op), a, b) ->
    [ a; b ]
    @ inside (fun a' -> Ast.Bin (op, a', b)) a
    @ inside (fun b' -> Ast.Bin (op, a, b')) b
  | Ast.Un (Ast.Not, a) -> (a :: inside (fun a' -> Ast.Un (Ast.Not, a')) a)
  (* whole-predicate eliminations: each removes at least one quantifier
     or one atom from the boolean skeleton *)
  | Ast.Exists _ | Ast.In_query _ | Ast.Quant_cmp _ -> [ truth ]
  | Ast.Between _ | Ast.Like _ | Ast.In_list _ | Ast.Is_null _ -> [ truth ]
  | Ast.Bin (op, a, b) when Ast.is_comparison op ->
    truth
    :: inside (fun a' -> Ast.Bin (op, a', b)) a
    @ inside (fun b' -> Ast.Bin (op, a, b')) b
  | Ast.Bin (op, a, b) ->
    (* arithmetic / concat: try collapsing to either operand *)
    [ a; b ]
    @ inside (fun a' -> Ast.Bin (op, a', b)) a
    @ inside (fun b' -> Ast.Bin (op, a, b')) b
  | Ast.Case (_, Some els) -> [ els ]
  | Ast.Case ((_, v) :: _, None) -> [ v ]
  | Ast.Lit (Value.Int n) when n <> 0 -> [ Ast.Lit (Value.Int 0) ]
  | Ast.Lit (Value.Float f) when f <> 0.0 -> [ Ast.Lit (Value.Float 0.0) ]
  | Ast.Lit (Value.String s) when s <> "" -> [ Ast.Lit (Value.String "") ]
  | Ast.Scalar_query _ -> [ Ast.Lit (Value.Int 0) ]
  | Ast.Agg (_, _, _) | Ast.Func _ | Ast.Col _ | Ast.Host _ | Ast.Lit _
  | Ast.Case ([], None) | Ast.Un (Ast.Neg, _) ->
    []

let drop_each (l : 'a list) : 'a list list =
  List.mapi (fun i _ -> List.filteri (fun j _ -> j <> i) l) l

let rec from_variants (f : Ast.from_item) : Ast.from_item list =
  match f with
  | Ast.From_join (l, jt, r, on) ->
    [ l; r ]
    @ List.map (fun l' -> Ast.From_join (l', jt, r, on)) (from_variants l)
    @ List.map (fun r' -> Ast.From_join (l, jt, r', on)) (from_variants r)
    @ List.map (fun on' -> Ast.From_join (l, jt, r, on')) (expr_variants on)
  | Ast.From_query (q, a, cols) ->
    List.map (fun q' -> Ast.From_query (q', a, cols)) (query_variants q)
  | Ast.From_table _ | Ast.From_func _ -> []

and select_variants (s : Ast.select) : Ast.select list =
  let v = ref [] in
  let add s' = v := s' :: !v in
  (match s.Ast.sel_limit with
  | Some _ -> add { s with Ast.sel_limit = None }
  | None -> ());
  if s.Ast.sel_order <> [] then add { s with Ast.sel_order = [] };
  (match s.Ast.sel_having with
  | Some _ -> add { s with Ast.sel_having = None }
  | None -> ());
  if s.Ast.sel_distinct then add { s with Ast.sel_distinct = false };
  (match s.Ast.sel_where with
  | Some w ->
    add { s with Ast.sel_where = None };
    List.iter
      (fun w' -> add { s with Ast.sel_where = Some w' })
      (expr_variants w)
  | None -> ());
  if List.length s.Ast.sel_group > 1 then
    List.iter (fun g -> add { s with Ast.sel_group = g }) (drop_each s.Ast.sel_group);
  if List.length s.Ast.sel_items > 1 then
    List.iter (fun items -> add { s with Ast.sel_items = items })
      (drop_each s.Ast.sel_items);
  if List.length s.Ast.sel_from > 1 then
    List.iter (fun from -> add { s with Ast.sel_from = from })
      (drop_each s.Ast.sel_from);
  List.iteri
    (fun i f ->
      List.iter
        (fun f' ->
          add
            {
              s with
              Ast.sel_from =
                List.mapi (fun j g -> if i = j then f' else g) s.Ast.sel_from;
            })
        (from_variants f))
    s.Ast.sel_from;
  List.rev !v

and query_variants (q : Ast.query) : Ast.query list =
  match q with
  | Ast.Set_op (op, all, a, b) ->
    [ a; b ]
    @ List.map (fun a' -> Ast.Set_op (op, all, a', b)) (query_variants a)
    @ List.map (fun b' -> Ast.Set_op (op, all, a, b')) (query_variants b)
  | Ast.Select s -> List.map (fun s' -> Ast.Select s') (select_variants s)
  | Ast.Values _ -> []

let query_reductions (wq : Ast.with_query) : Ast.with_query list =
  (if wq.Ast.with_defs <> [] then [ { wq with Ast.with_defs = [] } ] else [])
  @ List.map
      (fun b -> { wq with Ast.with_body = b })
      (query_variants wq.Ast.with_body)

(* ------------------------------------------------------------------ *)
(* Catalog reductions                                                  *)
(* ------------------------------------------------------------------ *)

let table_row_variants (t : Gen.table) : Gen.table list =
  let n = List.length t.Gen.t_rows in
  if n = 0 then []
  else
    let keep p = { t with Gen.t_rows = List.filteri p t.Gen.t_rows } in
    let halves =
      if n >= 2 then [ keep (fun i _ -> i < n / 2); keep (fun i _ -> i >= n / 2) ]
      else []
    in
    let singles =
      if n <= 8 then List.init n (fun i -> keep (fun j _ -> j <> i)) else []
    in
    halves @ singles

let catalog_reductions (cat : Gen.catalog) : Gen.catalog list =
  let replace i t' = List.mapi (fun j t -> if i = j then t' else t) cat in
  let dropped_tables =
    if List.length cat > 1 then
      List.mapi (fun i _ -> List.filteri (fun j _ -> j <> i) cat) cat
    else []
  in
  let per_table =
    List.concat
      (List.mapi
         (fun i (t : Gen.table) ->
           let no_index =
             match t.Gen.t_index with
             | Some _ -> [ replace i { t with Gen.t_index = None } ]
             | None -> []
           in
           let fewer_rows = List.map (replace i) (table_row_variants t) in
           let fewer_cols =
             (* drop one non-key column (index 0 is the key) and the
                matching position in every row *)
             if List.length t.Gen.t_cols > 1 then
               List.init
                 (List.length t.Gen.t_cols - 1)
                 (fun k ->
                   let idx = k + 1 in
                   replace i
                     {
                       t with
                       Gen.t_cols =
                         List.filteri (fun j _ -> j <> idx) t.Gen.t_cols;
                       t_rows =
                         List.map
                           (List.filteri (fun j _ -> j <> idx))
                           t.Gen.t_rows;
                     })
             else []
           in
           no_index @ fewer_rows @ fewer_cols)
         cat)
  in
  dropped_tables @ per_table

(* ------------------------------------------------------------------ *)
(* The fixpoint                                                        *)
(* ------------------------------------------------------------------ *)

let shrink ?(max_attempts = 300) ~still_fails cat query =
  let attempts = ref 0 in
  let steps = ref 0 in
  let cur_cat = ref cat in
  let cur_q = ref query in
  let try_candidates () =
    let candidates =
      List.map (fun q -> (!cur_cat, q)) (query_reductions !cur_q)
      @ List.map (fun c -> (c, !cur_q)) (catalog_reductions !cur_cat)
    in
    let rec go = function
      | [] -> false
      | (c, q) :: rest ->
        if !attempts >= max_attempts then false
        else begin
          incr attempts;
          if still_fails c q then begin
            cur_cat := c;
            cur_q := q;
            incr steps;
            true
          end
          else go rest
        end
    in
    go candidates
  in
  while try_candidates () do
    ()
  done;
  (!cur_cat, !cur_q, !steps)
