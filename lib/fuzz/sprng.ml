(** SplitMix64 (Steele, Lea & Flood, "Fast splittable pseudorandom
    number generators", OOPSLA 2014): a tiny splittable generator whose
    streams are pure functions of the root seed.  Chosen over
    [Stdlib.Random] because fuzz cases must be independent (case [i]
    must not shift when case [i-1] changes how much randomness it
    consumes) and reproducible across OCaml versions. *)

type t = { mutable state : int64; gamma : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

(* gammas must be odd; weak gammas (too few bit transitions) are nudged *)
let mix_gamma z =
  let z = Int64.logor (mix64 z) 1L in
  let transitions =
    let x = Int64.(logxor z (shift_right_logical z 1)) in
    let rec popcount acc x =
      if x = 0L then acc
      else popcount (acc + 1) Int64.(logand x (sub x 1L))
    in
    popcount 0 x
  in
  if transitions < 24 then Int64.logxor z 0xAAAAAAAAAAAAAAAAL else z

let create seed =
  let s = mix64 (Int64.of_int seed) in
  { state = s; gamma = golden_gamma }

let next64 t =
  t.state <- Int64.add t.state t.gamma;
  mix64 t.state

let split t =
  let state = next64 t in
  let gamma = mix_gamma (next64 t) in
  { state; gamma }

let bits t = Int64.to_int (Int64.shift_right_logical (next64 t) 2)

let int t n =
  if n <= 0 then invalid_arg "Sprng.int: bound must be positive";
  (* modulo bias is negligible against 62 bits for fuzz-sized bounds *)
  bits t mod n

let range t lo hi =
  if hi < lo then invalid_arg "Sprng.range: empty range";
  lo + int t (hi - lo + 1)

let float t = Int64.to_float (Int64.shift_right_logical (next64 t) 11)
              *. (1.0 /. 9007199254740992.0)

let bool t = Int64.logand (next64 t) 1L = 1L
let chance t p = float t < p
let skewed t n = min (int t n) (int t n)

let choose t = function
  | [] -> invalid_arg "Sprng.choose: empty list"
  | l -> List.nth l (int t (List.length l))

let weighted t choices =
  let total = List.fold_left (fun acc (w, _) -> acc + max 0 w) 0 choices in
  if total <= 0 then invalid_arg "Sprng.weighted: no positive weights";
  let k = int t total in
  let rec pick k = function
    | [] -> invalid_arg "Sprng.weighted: no positive weights"
    | (w, x) :: rest -> if k < max 0 w then x else pick (k - max 0 w) rest
  in
  pick k choices
