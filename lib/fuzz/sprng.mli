(** A splittable, fully deterministic PRNG (SplitMix64).

    Every random decision in the fuzzing subsystem — catalog shapes,
    data skew, query grammar choices, chaos fault seeds — is drawn from
    one of these streams, and every stream descends from a single root
    seed, so an entire fuzz run (and the chaos table in the resilience
    suite) replays byte-for-byte from one [--seed] flag.  [split]
    derives an independent child stream: consuming the child never
    perturbs the parent, which keeps case [i] identical no matter how
    much randomness case [i-1] consumed.

    [Stdlib.Random] (and in particular [Random.self_init]) is
    deliberately not used anywhere in [Sb_fuzz]. *)

type t

(** A fresh root stream.  Equal seeds yield equal streams forever. *)
val create : int -> t

(** An independent child stream derived from (and advancing) [t]. *)
val split : t -> t

(** The next raw 64-bit draw. *)
val next64 : t -> int64

(** A non-negative int drawn uniformly (62 usable bits). *)
val bits : t -> int

(** [int t n] is uniform in [\[0, n)].  @raise Invalid_argument if [n <= 0]. *)
val int : t -> int -> int

(** [range t lo hi] is uniform in [\[lo, hi\]] (inclusive). *)
val range : t -> int -> int -> int

(** Uniform in [\[0, 1)]. *)
val float : t -> float

val bool : t -> bool

(** [chance t p] is true with probability [p]. *)
val chance : t -> float -> bool

(** [skewed t n]: a value in [\[0, n)] biased toward small values
    (min of two uniform draws) — the generator's cheap Zipf stand-in
    for skewed data and join keys. *)
val skewed : t -> int -> int

(** Uniform choice.  @raise Invalid_argument on the empty list. *)
val choose : t -> 'a list -> 'a

(** Weighted choice; weights are relative positive ints. *)
val weighted : t -> (int * 'a) list -> 'a
