(** Random workload generation: catalogs, data, and Hydrogen queries.

    Everything is drawn from a {!Sprng} stream, so a catalog or query is
    a pure function of its seed.  Generated queries are {e typed}
    (arithmetic only over numeric columns, comparisons between
    same-typed operands, aggregate arguments matched to their
    signatures) so that semantic failures stay rare and every
    discrepancy the oracle reports is interesting.  Two more contracts
    the test suite enforces for every generated query:

    - round-trip: [Parser.query_text (Pretty.with_query_to_string q)]
      is structurally equal to [q];
    - buildability: {!Sb_qgm.Builder.build} accepts it (given the
      generated catalog and the outer-join extension) and the resulting
      QGM passes {!Sb_qgm.Check.check}.

    Error-prone constructs are deliberately avoided — scalar subqueries
    always aggregate (cardinality 1), literal divisors are non-zero —
    because a runtime error that one plan reaches and another does not
    would drown the oracle in false positives. *)

open Sb_storage
module Ast = Sb_hydrogen.Ast

type col = {
  c_name : string;
  c_type : Datatype.t;
  c_nullable : bool;
  c_unique : bool;
}

type table = {
  t_name : string;
  t_cols : col list;
  t_rows : Value.t list list;
  t_index : string option;  (** a btree-indexed column, when present *)
}

type catalog = table list

(** 2–4 small tables (0–28 rows each) with skewed, NULL-heavy data:
    an INT NOT NULL key (sometimes UNIQUE, sometimes indexed) plus a
    random mix of INT / FLOAT / STRING / BOOL columns. *)
val gen_catalog : Sprng.t -> catalog

(** The DDL + DML script materializing a catalog: CREATE TABLE,
    chunked INSERTs, CREATE INDEX, and a final ANALYZE. *)
val ddl_of_catalog : catalog -> string list

(** A random query over the catalog: joins (inner and outer/PF),
    subqueries (EXISTS / IN / quantified comparisons / scalar
    aggregates, optionally correlated), GROUP BY / HAVING, set
    operations, WITH prefixes, DISTINCT, ORDER BY, LIMIT, and NULL-rich
    predicates. *)
val gen_query : Sprng.t -> catalog -> Ast.with_query

(** [Pretty.with_query_to_string], re-exported for callers that store
    query text next to the AST. *)
val query_text : Ast.with_query -> string

(** Number of quantifiers a query contributes: FROM items plus
    subquery predicates, counted recursively (the shrinker's size
    measure, and the acceptance bound for shrunk repros). *)
val quantifier_count : Ast.with_query -> int

(** [n] mostly-valid INSERT / UPDATE / DELETE statements over the
    catalog's tables.  Unique key columns draw fresh monotone values so
    inserts rarely collide with the seed rows; UPDATE never SETs a
    unique column.  The crash fuzzer runs each statement as one
    implicit transaction. *)
val gen_dml_workload : Sprng.t -> catalog -> n:int -> string list
