(** The differential and metamorphic oracle.

    One fuzz case runs a single generated query through a matrix of
    independently configured databases (each a fresh {!Starburst.create}
    with the generated catalog replayed) and cross-checks the results:

    - {e reference}: rewrite budget 0 — the canonical QGM goes straight
      to the optimizer, so rewrite bugs cannot reach it;
    - {e rewritten}: the full rule set and default cost-based search;
    - {e greedy}: full rewrite but the degraded greedy STAR strategy the
      pipeline falls back to under optimizer failures;
    - {e paranoid}: sanitizer mode — per-firing rule audits, plan
      validation, and Corona's own internal differential must all stay
      silent;
    - {e chaos}: a seeded fault-injection plan on storage; the run must
      either match the reference or fail with a structured, retryable
      {!Sb_resil.Err.t} — never a wrong answer, never a raw exception;
    - {e vectorized}: rewrite budget 0 with the batch-at-a-time engine,
      against the reference's budget-0 {e tuple-at-a-time} engine — the
      same plan on both sides, so a divergence (row bags, NULL
      semantics, the LIMIT sub-bag oracle) is an executor bug.  The
      [qes] flag of {!check_case} narrows the matrix to this leg (plus
      the metamorphic checks, re-run on it) for a fast engine-focused
      sweep ([fuzz_main --qes]).

    Results are compared as bags ({!Sb_verify.Rule_audit.compare_results}),
    so plan-dependent row order is never a false positive.  Queries with
    a top-level LIMIT are compared on their LIMIT-stripped core (a LIMIT
    without a total order may legitimately pick different rows per
    plan); the limited output is then checked metamorphically: it must
    be a sub-bag of the unlimited output and respect the bound.  A
    second metamorphic check conjoins a literal-only tautology (proved
    TRUE by {!Sb_analysis.Prover.const_truth}) onto the WHERE clause and
    requires the result bag to be unchanged. *)

module Ast = Sb_hydrogen.Ast

type config =
  | Reference  (** rewrite budget 0 *)
  | Rewritten  (** full rewrite, cost-based search *)
  | Greedy  (** full rewrite, forced degraded greedy strategy *)
  | Paranoid  (** sanitizer mode: audits + plan checks + differential *)
  | Chaos of int  (** fault injection at the given seed *)
  | Vectorized  (** rewrite budget 0, batch-at-a-time engine *)

val config_name : config -> string

(** The standard matrix, reference first. *)
val configs : chaos_seed:int -> config list

type outcome =
  | Rows of Sb_storage.Tuple.t list
  | Failed of Sb_resil.Err.t

(** Which rewrite-rule implementation the databases under test run:
    [Native_rules] (the hand-written closures), [Dsl_rules] (the whole
    matrix on {!Starburst.use_dsl_builtins}), or [Both_rules] — native
    everywhere, plus an extra [dsl-differential] leg requiring the two
    rule sets to agree on the result bag, the rewritten QGM rendering
    (byte for byte), and the per-rule firing counts. *)
type rules_mode = Native_rules | Dsl_rules | Both_rules

val rules_mode_name : rules_mode -> string

(** A fresh database loaded with the DDL script (one statement per list
    element — {!Gen.ddl_of_catalog} for generated cases, the replayed
    script for corpus cases) and configured as [config]; [inject] (used
    by the rule-soundness acceptance test to plant a deliberately broken
    rewrite rule) is applied to every configuration {e except}
    [Reference] and [Vectorized], whose budgets of 0 keep them sound.  [dsl] swaps the
    predicate/redundant rule families for their DSL-compiled ports
    before the DDL replays. *)
val fresh_db :
  ?inject:(Starburst.t -> unit) ->
  ?dsl:bool ->
  ddl:string list ->
  config ->
  Starburst.t

(** Runs one query text, classifying every failure as {!Failed} — an
    exception escaping here is itself a bug the oracle reports. *)
val run_outcome : Starburst.t -> string -> outcome

type verdict =
  | Pass
  | Rejected of string
      (** the reference itself refused the query (parse/semantic): a
          generator imperfection, counted but not a discrepancy *)
  | Fail of { config : string; detail : string }

(** Runs the full matrix plus the metamorphic checks for one case.
    [qes] narrows the matrix to the vectorized engine differential.
    Pure in its arguments — the shrinker re-invokes it verbatim. *)
val check_case :
  ?inject:(Starburst.t -> unit) ->
  ?rules:rules_mode ->
  ?qes:bool ->
  ddl:string list ->
  chaos_seed:int ->
  Ast.with_query ->
  verdict
