(** Failing-case minimization.

    Greedy fixpoint over structural reductions: drop WITH definitions,
    set-operation arms, select items, FROM entries and join sides,
    conjuncts and subquery predicates (replaced by TRUE), ORDER BY /
    LIMIT / DISTINCT / HAVING clauses; shrink literals toward zero and
    the empty string; drop catalog tables, columns, indexes, and rows
    (halving, then row-by-row).  Each candidate is re-validated with
    the caller's [still_fails] predicate — typically "the {!Oracle}
    verdict is still [Fail]" — so type- or scope-breaking reductions
    are skipped naturally (they make the reference reject the query
    rather than fail the oracle).

    Everything is deterministic: candidates are tried in a fixed order
    and the first that preserves the failure is committed. *)

module Ast = Sb_hydrogen.Ast

(** [shrink ~still_fails cat q] minimizes [(cat, q)] while
    [still_fails] holds, returning the fixpoint and the number of
    committed reduction steps (exported as [sb_fuzz_shrink_steps_total]).
    [max_attempts] bounds the total number of predicate evaluations
    (default 300). *)
val shrink :
  ?max_attempts:int ->
  still_fails:(Gen.catalog -> Ast.with_query -> bool) ->
  Gen.catalog ->
  Ast.with_query ->
  Gen.catalog * Ast.with_query * int
