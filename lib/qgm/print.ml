(** Textual and Graphviz rendering of QGM graphs (EXPLAIN QGM). *)

open Qgm

let rec pp_expr g ppf (e : expr) =
  match e with
  | Lit v -> Fmt.string ppf (Sb_storage.Value.to_literal v)
  | Col (qid, i) ->
    let q = try Some (quant g qid) with _ -> None in
    (match q with
    | Some q -> Fmt.pf ppf "%s.c%d" q.q_label i
    | None -> Fmt.pf ppf "?%d.c%d" qid i)
  | Host v -> Fmt.pf ppf ":%s" v
  | Bin (op, a, b) ->
    Fmt.pf ppf "(%a %s %a)" (pp_expr g) a (Sb_hydrogen.Ast.binop_name op)
      (pp_expr g) b
  | Un (Sb_hydrogen.Ast.Neg, a) -> Fmt.pf ppf "(- %a)" (pp_expr g) a
  | Un (Sb_hydrogen.Ast.Not, a) -> Fmt.pf ppf "(NOT %a)" (pp_expr g) a
  | Fun (f, args) -> Fmt.pf ppf "%s(%a)" f Fmt.(list ~sep:(Fmt.any ", ") (pp_expr g)) args
  | Agg (f, _, None) -> Fmt.pf ppf "%s(*)" f
  | Agg (f, d, Some a) ->
    Fmt.pf ppf "%s(%s%a)" f (if d then "DISTINCT " else "") (pp_expr g) a
  | Case (arms, els) ->
    Fmt.pf ppf "CASE%a%a END"
      Fmt.(
        list ~sep:nop (fun ppf (c, v) ->
            Fmt.pf ppf " WHEN %a THEN %a" (pp_expr g) c (pp_expr g) v))
      arms
      Fmt.(option (fun ppf e -> Fmt.pf ppf " ELSE %a" (pp_expr g) e))
      els
  | Is_null a -> Fmt.pf ppf "(%a IS NULL)" (pp_expr g) a
  | Like (a, p) -> Fmt.pf ppf "(%a LIKE '%s')" (pp_expr g) a p
  | Quantified (qid, a) ->
    let q = try Some (quant g qid) with _ -> None in
    (match q with
    | Some q ->
      Fmt.pf ppf "%s<%s>(%a)" (quant_type_name q.q_type) q.q_label (pp_expr g) a
    | None -> Fmt.pf ppf "?<%d>(%a)" qid (pp_expr g) a)

let kind_name = function
  | Base_table t -> Fmt.str "TABLE %s" t
  | Select -> "SELECT"
  | Group_by _ -> "GROUP BY"
  | Set_op (Sb_hydrogen.Ast.Union, all) -> if all then "UNION ALL" else "UNION"
  | Set_op (Sb_hydrogen.Ast.Intersect, all) ->
    if all then "INTERSECT ALL" else "INTERSECT"
  | Set_op (Sb_hydrogen.Ast.Except, all) -> if all then "EXCEPT ALL" else "EXCEPT"
  | Values_box _ -> "VALUES"
  | Table_fn (f, _) -> Fmt.str "TABLE FN %s" f
  | Choose -> "CHOOSE"
  | Ext_op name -> Fmt.str "EXT %s" (String.uppercase_ascii name)

let pp_box g ppf (b : box) =
  Fmt.pf ppf "Box %d [%s] %s%s%s@." b.b_id b.b_label (kind_name b.b_kind)
    (if b.b_distinct then " DISTINCT" else "")
    (if b.b_id = g.top then " (top)" else "");
  if b.b_head <> [] then begin
    let pp_hc ppf hc =
      match hc.hc_expr with
      | Some e -> Fmt.pf ppf "%s=%a" hc.hc_name (pp_expr g) e
      | None -> Fmt.string ppf hc.hc_name
    in
    Fmt.pf ppf "  head: %a@." Fmt.(list ~sep:(Fmt.any ", ") pp_hc) b.b_head
  end;
  (match b.b_kind with
  | Group_by keys when keys <> [] ->
    Fmt.pf ppf "  group: %a@." Fmt.(list ~sep:(Fmt.any ", ") (pp_expr g)) keys
  | _ -> ());
  List.iter
    (fun q ->
      let input = try (box g q.q_input).b_label with _ -> "?" in
      Fmt.pf ppf "  quant %s:%s over Box %d [%s]@." q.q_label
        (quant_type_name q.q_type) q.q_input input)
    b.b_quants;
  List.iter (fun p -> Fmt.pf ppf "  pred: %a@." (pp_expr g) p.p_expr) b.b_preds;
  if b.b_order <> [] then
    Fmt.pf ppf "  order: %a@."
      Fmt.(
        list ~sep:(Fmt.any ", ") (fun ppf (e, d) ->
            Fmt.pf ppf "%a%s" (pp_expr g) e
              (match d with Sb_hydrogen.Ast.Asc -> "" | Sb_hydrogen.Ast.Desc -> " DESC")))
      b.b_order;
  Option.iter (fun n -> Fmt.pf ppf "  limit: %d@." n) b.b_limit

let pp ppf g =
  List.iter (fun b -> pp_box g ppf b) (reachable_boxes g)

let to_string g =
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  Format.pp_set_geometry ppf ~max_indent:9_998 ~margin:10_000;
  pp ppf g;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

(** Graphviz dot rendering: boxes as record nodes, range edges dotted. *)
let to_dot g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph qgm {\n  node [shape=record fontsize=10];\n";
  List.iter
    (fun b ->
      let head =
        String.concat ", " (List.map (fun hc -> hc.hc_name) b.b_head)
      in
      let preds =
        String.concat "\\n"
          (List.map (fun p -> Fmt.str "%a" (pp_expr g) p.p_expr) b.b_preds)
      in
      let style =
        match b.b_kind with Base_table _ -> " style=dashed" | _ -> ""
      in
      Buffer.add_string buf
        (Fmt.str "  b%d [label=\"{%d: %s %s|%s|%s}\"%s];\n" b.b_id b.b_id
           (kind_name b.b_kind) b.b_label head preds style);
      List.iter
        (fun q ->
          Buffer.add_string buf
            (Fmt.str "  b%d -> b%d [style=dotted label=\"%s:%s\"];\n" b.b_id
               q.q_input q.q_label (quant_type_name q.q_type)))
        b.b_quants)
    (reachable_boxes g);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
