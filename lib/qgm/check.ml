(** QGM consistency checking.

    The paper's rule-system contract is that "every rule changes a
    consistent QGM representation into another consistent QGM
    representation"; the rewrite engine checks this after each rule
    application (in debug mode) and at budget exhaustion. *)

open Qgm

type violation = string

(** Returns all consistency violations of [g] (empty list = consistent). *)
let check (g : t) : violation list =
  let errs = ref [] in
  let err fmt = Fmt.kstr (fun s -> errs := s :: !errs) fmt in
  (* every message names the offending box: "box <id> (<kind>): ..." *)
  let berr b fmt =
    Fmt.kstr (fun s -> err "box %d (%s): %s" b.b_id (Print.kind_name b.b_kind) s) fmt
  in
  (if not (Hashtbl.mem g.boxes g.top) then err "top box %d missing" g.top);
  let boxes = try reachable_boxes g with _ -> [] in
  (* Boxes reachable from [b] through range edges (cycle-safe), so we
     can tell whether a referenced quantifier belongs to this box or to
     an ancestor (a correlated reference) — anything else is a qualifier
     edge into an unrelated part of the graph. *)
  let descendants b0 =
    let seen = Hashtbl.create 8 in
    let rec go id =
      if not (Hashtbl.mem seen id) then begin
        Hashtbl.replace seen id ();
        match Hashtbl.find_opt g.boxes id with
        | None -> ()
        | Some b -> List.iter (fun q -> go q.q_input) b.b_quants
      end
    in
    go b0;
    seen
  in
  let ancestors = Hashtbl.create 16 in
  List.iter
    (fun a ->
      Hashtbl.iter
        (fun d () ->
          let prev = Option.value ~default:[] (Hashtbl.find_opt ancestors d) in
          Hashtbl.replace ancestors d (a.b_id :: prev))
        (descendants a.b_id))
    boxes;
  let in_scope b qid =
    match Hashtbl.find_opt g.quants qid with
    | None -> true (* the dangling case is reported separately *)
    | Some q ->
      q.q_parent = b.b_id
      || List.mem q.q_parent
           (Option.value ~default:[] (Hashtbl.find_opt ancestors b.b_id))
  in
  let check_col_ref ~ctx b qid i =
    match Hashtbl.find_opt g.quants qid with
    | None -> berr b "%s: reference to missing quantifier %d" ctx qid
    | Some q ->
      (match Hashtbl.find_opt g.boxes q.q_input with
      | None -> berr b "quant %s: missing input box %d" q.q_label q.q_input
      | Some input ->
        if i < 0 || i >= arity input then
          berr b "%s: %s.c%d out of range (arity %d)" ctx q.q_label i
            (arity input))
  in
  let check_expr ~ctx ~allow_agg b e =
    ignore
      (fold_expr
         (fun () e ->
           match e with
           | Col (q, i) -> check_col_ref ~ctx b q i
           | Quantified (qid, _) ->
             (match Hashtbl.find_opt g.quants qid with
             | None -> berr b "%s: Quantified over missing quant %d" ctx qid
             | Some q ->
               (match q.q_type with
               | E | A | SP _ -> ()
               | F | S | Ext _ ->
                 berr b "%s: Quantified over %s quantifier %s" ctx
                   (quant_type_name q.q_type) q.q_label))
           | Agg _ when not allow_agg ->
             berr b "%s: aggregate outside GROUP BY head" ctx
           | _ -> ())
         () e);
    (* qualifier edges must stay within scope: the box itself or an
       ancestor (correlation); a reference to a quantifier of an
       unrelated box is a structural error even though the column index
       may resolve *)
    List.iter
      (fun qid ->
        if not (in_scope b qid) then
          let q = Hashtbl.find_opt g.quants qid in
          berr b "%s: reference to quantifier %s of unrelated box %d" ctx
            (match q with Some q -> q.q_label | None -> string_of_int qid)
            (match q with Some q -> q.q_parent | None -> -1))
      (quant_refs e)
  in
  List.iter
    (fun b ->
      (* quantifier bookkeeping *)
      List.iter
        (fun q ->
          if q.q_parent <> b.b_id then
            berr b "quant %s: parent %d but listed here" q.q_label q.q_parent;
          (match Hashtbl.find_opt g.quants q.q_id with
          | Some q' when q' == q -> ()
          | _ -> berr b "quant %s: not indexed" q.q_label);
          if not (Hashtbl.mem g.boxes q.q_input) then
            berr b "quant %s: input box %d missing" q.q_label q.q_input)
        b.b_quants;
      (* duplicate quantifier ids within one body *)
      let rec dup_ids seen = function
        | [] -> ()
        | q :: rest ->
          if List.mem q.q_id seen then
            berr b "duplicate quantifier id %d (%s)" q.q_id q.q_label;
          dup_ids (q.q_id :: seen) rest
      in
      dup_ids [] b.b_quants;
      (* setformer boxes must produce columns *)
      (match b.b_kind with
      | Base_table _ | Values_box _ | Table_fn _ -> ()
      | Select | Group_by _ | Set_op _ | Choose | Ext_op _ ->
        (* a zero-column head is only meaningful when every consumer
           merely counts rows, i.e. the box feeds GROUP BY boxes
           (a bare COUNT needs no columns); anywhere else — including the
           query output — it is a structural error *)
        let bad_setformer_use =
          List.exists
            (fun q ->
              match q.q_type with
              | E | A | S | SP _ -> false
              | F | Ext _ ->
                (match Hashtbl.find_opt g.boxes q.q_parent with
                | Some parent ->
                  (match parent.b_kind with Group_by _ -> false | _ -> true)
                | None -> false))
            (users_of_box g b.b_id)
        in
        if b.b_head = [] && (bad_setformer_use || b.b_id = g.top) then
          berr b "empty head in a setformer box");
      (* kind-specific shape *)
      (match b.b_kind with
      | Base_table _ ->
        if b.b_quants <> [] then berr b "base table has a body";
        if b.b_preds <> [] then berr b "base table has predicates"
      | Select | Ext_op _ -> ()
      | Group_by keys ->
        (match setformers b with
        | [ _ ] -> ()
        | l -> berr b "GROUP BY has %d setformers (expected 1)" (List.length l));
        List.iter (fun k -> check_expr ~ctx:"group key" ~allow_agg:false b k) keys
      | Set_op _ ->
        let n = List.length (setformers b) in
        if n <> 2 then berr b "set-op has %d inputs (expected 2)" n;
        (match setformers b with
        | [ a; c ] ->
          (match Hashtbl.find_opt g.boxes a.q_input, Hashtbl.find_opt g.boxes c.q_input with
          | Some ab, Some cb ->
            let aa = arity ab and ca = arity cb in
            if aa <> ca then berr b "set-op input arities %d vs %d" aa ca
          | _ -> () (* the missing input is reported above *))
        | _ -> ())
      | Values_box rows ->
        List.iter
          (fun row ->
            if List.length row <> arity b then
              berr b "VALUES row arity %d vs head %d" (List.length row) (arity b);
            List.iter (fun e -> check_expr ~ctx:"values" ~allow_agg:false b e) row)
          rows
      | Table_fn (_, args) ->
        List.iter (fun e -> check_expr ~ctx:"table-fn arg" ~allow_agg:false b e) args
      | Choose ->
        if List.length b.b_quants < 2 then
          berr b "CHOOSE has fewer than 2 alternatives");
      (* head *)
      let allow_agg = match b.b_kind with Group_by _ -> true | _ -> false in
      List.iter
        (fun hc ->
          match hc.hc_expr, b.b_kind with
          | None, Base_table _ -> ()
          | None, Values_box _ | None, Table_fn _ | None, Set_op _ | None, Choose -> ()
          | None, (Select | Group_by _ | Ext_op _) ->
            berr b "head column %s lacks an expression" hc.hc_name
          | Some e, _ -> check_expr ~ctx:(Fmt.str "head %s" hc.hc_name) ~allow_agg b e)
        b.b_head;
      (* predicates *)
      List.iter
        (fun p -> check_expr ~ctx:"pred" ~allow_agg:false b p.p_expr)
        b.b_preds;
      List.iter
        (fun (e, _) -> check_expr ~ctx:"order" ~allow_agg:false b e)
        b.b_order)
    boxes;
  List.rev !errs

let is_consistent g = check g = []

let assert_consistent g =
  match check g with
  | [] -> ()
  | errs -> error "inconsistent QGM: %s" (String.concat "; " errs)
