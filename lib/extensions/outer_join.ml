(** The left outer join extension — the paper's running example
    (sections 4–7), implemented end-to-end through the public extension
    API, touching every layer exactly as the paper prescribes:

    - {e language / QGM}: enables the [LEFT OUTER JOIN] syntax; the
      builder represents it as a SELECT box whose preserved side ranges
      through a new quantifier type [PF] (Preserve-ForEach);
    - {e query rewrite}: the base push-down rules are conservative about
      [PF]; this extension registers its own "receive" rule, pushing
      predicates on preserved-side columns {e through} the outer join,
      plus the classic outer-to-inner-join reduction for null-intolerant
      predicates [ROSE84];
    - {e optimizer}: a plan handler for PF SELECT boxes that reuses the
      base TableAccess and JoinRoot STARs with the new join kind, plus a
      new JoinRoot alternative (hash left-outer join);
    - {e QES}: the ["left_outer"] join {e kind}, reusing the existing
      join {e methods}. *)

open Sb_storage
module Ast = Sb_hydrogen.Ast
module Qgm = Sb_qgm.Qgm
module Rule = Sb_rewrite.Rule
module Ru = Sb_rewrite.Rules_util
module Plan = Sb_optimizer.Plan
module Star = Sb_optimizer.Star
module Cost = Sb_optimizer.Cost
module Generator = Sb_optimizer.Generator
module Exec = Sb_qes.Exec

let pf = Qgm.Ext "PF"

(* ------------------------------------------------------------------ *)
(* QES: the join kind                                                  *)
(* ------------------------------------------------------------------ *)

let left_outer_kind : Exec.kind_impl =
 fun ~outer ~inners ~pred ~inner_width ->
  let matches =
    List.filter_map
      (fun i ->
        let row = Array.append outer i in
        if pred row = Some true then Some row else None)
      inners
  in
  match matches with
  | [] -> [ Array.append outer (Array.make inner_width Value.Null) ]
  | rows -> rows

(* ------------------------------------------------------------------ *)
(* Rewrite rules                                                       *)
(* ------------------------------------------------------------------ *)

(** Is [b] an outer-join box: a SELECT with at least one PF setformer? *)
let is_oj_box (b : Qgm.box) =
  b.Qgm.b_kind = Qgm.Select
  && List.exists (fun q -> q.Qgm.q_type = pf) b.Qgm.b_quants

(** Classifies a column of an OJ box's head: preserved side, null-
    producing side, or neither. *)
let head_side g (oj : Qgm.box) i =
  match (Qgm.head_col oj i).Qgm.hc_expr with
  | Some (Qgm.Col (qid, _)) -> (
    match (Qgm.quant g qid).Qgm.q_type with
    | t when t = pf -> `Preserved
    | Qgm.F -> `Null_producing
    | _ -> `Other)
  | _ -> `Other

(** "Left outer join does not keep predicates, but can receive them if
    they refer only to columns of the PF setformer, in which case they
    are pushed through the outer join operation to the operation ranged
    over by the PF setformer." *)
let push_through_pf : Rule.t =
  let candidate g (b : Qgm.box) =
    if not (b.Qgm.b_kind = Qgm.Select || (match b.Qgm.b_kind with Qgm.Group_by _ -> true | _ -> false))
    then None
    else
      List.find_map
        (fun (p : Qgm.pred) ->
          if Qgm.contains_quantified p.Qgm.p_expr || Qgm.contains_agg p.Qgm.p_expr
          then None
          else
            match Qgm.quant_refs p.Qgm.p_expr with
            | [ qid ] -> (
              let q = Qgm.quant g qid in
              (* the quantifier must range in THIS box: a correlated
                 predicate inside a subquery also has a single outer
                 quant_ref, but hoisting it out changes semantics
                 whenever the subquery's emptiness matters (ALL, NOT
                 IN, scalar aggregates) *)
              if q.Qgm.q_type <> Qgm.F || q.Qgm.q_parent <> b.Qgm.b_id then None
              else
                let oj = Qgm.box g q.Qgm.q_input in
                if not (is_oj_box oj && Ru.has_single_user g oj.Qgm.b_id) then None
                else
                  let refs = Qgm.col_refs p.Qgm.p_expr in
                  if
                    List.for_all (fun (_, i) -> head_side g oj i = `Preserved) refs
                  then
                    (* translate through the OJ head onto the PF quant *)
                    Option.bind (Ru.inline_through g q p.Qgm.p_expr) (fun e ->
                        match Qgm.quant_refs e with
                        | [ pf_qid ] -> Some (p, Qgm.quant g pf_qid, e)
                        | _ -> None)
                  else None)
            | _ -> None)
        b.Qgm.b_preds
  in
  Rule.make ~priority:42 ~name:"oj_push_through_pf" ~rule_class:"outer_join"
    ~condition:(fun ctx -> candidate ctx.Rule.graph ctx.Rule.box <> None)
    ~action:(fun ctx ->
      let g = ctx.Rule.graph in
      match candidate g ctx.Rule.box with
      | Some (p, pf_quant, e) ->
        Ru.remove_pred ctx.Rule.box p;
        (* push through to the operation ranged over by the PF
           setformer, giving the predicate a box to live in *)
        let s = Ru.interpose_select g pf_quant in
        let head = Array.of_list s.Qgm.b_head in
        let e' =
          Qgm.subst_cols
            (fun qid i ->
              if qid = pf_quant.Qgm.q_id then head.(i).Qgm.hc_expr else None)
            e
        in
        s.Qgm.b_preds <- [ Qgm.pred e' ]
      | None -> ())
    ()

(** Outer-join reduction: a null-intolerant predicate above the join on
    a null-producing column rejects every preserved-but-unmatched row,
    so the outer join degenerates to a regular join (PF becomes F),
    opening it to the base merge and join-order machinery. *)
let reduce_to_inner : Rule.t =
  (* Column references in NULL-strict positions: a NULL there forces
     the whole comparison to NULL.  CASE arms, IS NULL operands and
     opaque functions shield their inputs, so columns inside them do
     not qualify — [CASE WHEN TRUE THEN 'b' ELSE x END <> ''] is TRUE
     even when [x] is NULL and must not trigger the reduction. *)
  let rec strict_cols (e : Qgm.expr) =
    match e with
    | Qgm.Col (q, i) -> [ (q, i) ]
    | Qgm.Bin
        ( ( Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod | Ast.Concat
          | Ast.Eq | Ast.Neq | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge ),
          a,
          b ) ->
      strict_cols a @ strict_cols b
    | Qgm.Un (Ast.Neg, a) | Qgm.Like (a, _) -> strict_cols a
    | Qgm.Lit _ | Qgm.Host _ | Qgm.Bin ((Ast.And | Ast.Or), _, _)
    | Qgm.Un (Ast.Not, _) | Qgm.Fun _ | Qgm.Agg _ | Qgm.Case _
    | Qgm.Is_null _ | Qgm.Quantified _ ->
      []
  in
  let null_intolerant = function
    | Qgm.Bin ((Ast.Eq | Ast.Neq | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge), _, _)
    | Qgm.Like _ ->
      true
    | _ -> false
  in
  let candidate g (b : Qgm.box) =
    if b.Qgm.b_kind <> Qgm.Select then None
    else
      List.find_map
        (fun (p : Qgm.pred) ->
          if not (null_intolerant p.Qgm.p_expr) then None
          else
            match Qgm.quant_refs p.Qgm.p_expr with
            | [ qid ] -> (
              let q = Qgm.quant g qid in
              (* as in push_through_pf: only a predicate of THIS box
                 filters the outer join's rows; one inside a subquery
                 does not justify the reduction *)
              if q.Qgm.q_type <> Qgm.F || q.Qgm.q_parent <> b.Qgm.b_id then None
              else
                let oj = Qgm.box g q.Qgm.q_input in
                if not (is_oj_box oj && Ru.has_single_user g oj.Qgm.b_id) then None
                else if
                  List.exists
                    (fun (_, i) -> head_side g oj i = `Null_producing)
                    (strict_cols p.Qgm.p_expr)
                then Some oj
                else None)
            | _ -> None)
        b.Qgm.b_preds
  in
  Rule.make ~priority:58 ~name:"oj_reduce_to_inner" ~rule_class:"outer_join"
    ~condition:(fun ctx -> candidate ctx.Rule.graph ctx.Rule.box <> None)
    ~action:(fun ctx ->
      match candidate ctx.Rule.graph ctx.Rule.box with
      | Some oj ->
        List.iter
          (fun q -> if q.Qgm.q_type = pf then q.Qgm.q_type <- Qgm.F)
          oj.Qgm.b_quants
      | None -> ())
    ()

(* ------------------------------------------------------------------ *)
(* Optimizer: plan handler for PF SELECT boxes                         *)
(* ------------------------------------------------------------------ *)

let plan_handler (t : Generator.t) env (g : Qgm.t) (b : Qgm.box) :
    Plan.plan option =
  if not (is_oj_box b) then None
  else
    let pfs = List.filter (fun q -> q.Qgm.q_type = pf) b.Qgm.b_quants in
    let fs = List.filter (fun q -> q.Qgm.q_type = Qgm.F) b.Qgm.b_quants in
    match pfs, fs with
    | [ p ], [ f ] ->
      (* every predicate of an OJ box is part of the join condition;
         inner-side-only conjuncts may nevertheless be pushed into the
         inner access (they filter candidates, not preserved rows) *)
      let inner_preds, join_preds =
        List.partition
          (fun (pr : Qgm.pred) ->
            Qgm.quant_refs pr.Qgm.p_expr = [ f.Qgm.q_id ]
            && (not (Qgm.contains_quantified pr.Qgm.p_expr))
            && not (Qgm.contains_agg pr.Qgm.p_expr))
          b.Qgm.b_preds
      in
      let outer_plan =
        match Generator.access_plans t ~g ~env p [] with
        | pl :: _ -> pl
        | [] -> raise (Generator.Unsupported "no outer access plan")
      in
      let inner_plan =
        match
          Generator.access_plans t ~g ~env f
            (List.map (fun (pr : Qgm.pred) -> pr.Qgm.p_expr) inner_preds)
        with
        | pl :: _ -> pl
        | [] -> raise (Generator.Unsupported "no inner access plan")
      in
      let ow = Array.length outer_plan.Plan.props.Plan.p_slots in
      (* equi conjuncts (preserved col = inner col) enable hash/merge *)
      let equi = ref [] and rest = ref [] in
      List.iter
        (fun (pr : Qgm.pred) ->
          match pr.Qgm.p_expr with
          | Qgm.Bin (Ast.Eq, Qgm.Col (q1, c1), Qgm.Col (q2, c2))
            when q1 = p.Qgm.q_id && q2 = f.Qgm.q_id -> (
            match
              ( Plan.slot_of outer_plan (q1, c1),
                Plan.slot_of inner_plan (q2, c2) )
            with
            | Some o, Some i -> equi := (o, i) :: !equi
            | _ -> rest := pr.Qgm.p_expr :: !rest)
          | Qgm.Bin (Ast.Eq, Qgm.Col (q2, c2), Qgm.Col (q1, c1))
            when q1 = p.Qgm.q_id && q2 = f.Qgm.q_id -> (
            match
              ( Plan.slot_of outer_plan (q1, c1),
                Plan.slot_of inner_plan (q2, c2) )
            with
            | Some o, Some i -> equi := (o, i) :: !equi
            | _ -> rest := pr.Qgm.p_expr :: !rest)
          | e -> rest := e :: !rest)
        join_preds;
      let slotmap (qid, c) =
        if qid = p.Qgm.q_id then Plan.slot_of outer_plan (qid, c)
        else
          Option.map (fun s -> ow + s) (Plan.slot_of inner_plan (qid, c))
      in
      let kind_pred =
        match
          List.map (Generator.compile_expr t ~g ~env ~slotmap) !rest
        with
        | [] -> None
        | e :: tl ->
          Some (List.fold_left (fun a b -> Plan.RBin (Ast.And, a, b)) e tl)
      in
      let payload =
        Star.make_payload ~outer:outer_plan ~inner:inner_plan
          ~kind:(Plan.J_ext "left_outer") ~equi:!equi ?kind_pred
          ~info:(Generator.plan_info t g outer_plan) ()
      in
      (match Star.invoke t.Generator.sctx "JoinRoot" payload with
      | pl :: _ -> Some pl
      | [] -> None)
    | _ ->
      raise
        (Generator.Unsupported
           "outer-join plans currently require exactly one preserved and one \
            null-producing iterator")

(* ------------------------------------------------------------------ *)
(* Optimizer: a new JoinRoot alternative (hash left outer)             *)
(* ------------------------------------------------------------------ *)

let hash_left_outer : Star.alternative =
  {
    Star.alt_name = "hash-left-outer";
    alt_rank = 1;
    alt_cond =
      (fun _ pl ->
        pl.Star.pl_kind = Plan.J_ext "left_outer"
        && pl.Star.pl_equi <> [] && pl.Star.pl_corr = []);
    alt_produce =
      (fun _ pl ->
        let outer = Option.get pl.Star.pl_outer
        and inner = Option.get pl.Star.pl_inner in
        [
          Cost.mk_join ~method_:Plan.Hash_join ~kind:pl.Star.pl_kind
            ~equi:pl.Star.pl_equi ~pred:pl.Star.pl_pred
            ~kind_pred:pl.Star.pl_kind_pred ~corr:[]
            ~sel:
              (Cost.join_selectivity ~outer_info:pl.Star.pl_info
                 ~inner_info:Cost.no_info ~equi:pl.Star.pl_equi
                 ~pred:pl.Star.pl_pred ~info_joined:pl.Star.pl_info)
            outer inner;
        ]);
  }

(* ------------------------------------------------------------------ *)
(* Installation                                                        *)
(* ------------------------------------------------------------------ *)

(** Registers the whole extension on a database.  After this call,
    [LEFT OUTER JOIN] parses, builds PF quantifiers in QGM, rewrites
    with outer-join-aware rules, optimizes through the base STARs plus a
    hash variant, and executes through the ["left_outer"] join kind. *)
let install (db : Starburst.t) =
  Starburst.Extension.enable_operation db "left_outer_join";
  Starburst.Extension.register_join_kind db "left_outer" left_outer_kind;
  Starburst.Extension.register_rewrite_rule db push_through_pf;
  Starburst.Extension.register_rewrite_rule db reduce_to_inner;
  Starburst.Extension.register_select_handler db plan_handler;
  Starburst.Extension.register_star db "JoinRoot" [ hash_left_outer ]
