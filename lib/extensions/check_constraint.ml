(** DBC check constraints as attachments — the other half of Core's
    attachment architecture ("new kinds of attachments (access methods
    and integrity constraints)", section 1 / [LIND87]).

    A check constraint is an attachment with no search capability whose
    [am_check] evaluates a predicate over the candidate tuple.  It is
    attached programmatically (there is no DDL syntax for it, as in the
    early Starburst prototype). *)

open Sb_storage

(** Attaches a named predicate constraint to [table]; every subsequent
    INSERT and UPDATE must satisfy [pred].
    @raise Starburst.Error when the table does not exist. *)
let attach (db : Starburst.t) ~table ~name (pred : Tuple.t -> bool) =
  match Catalog.find_table db.Starburst.Corona.catalog table with
  | None ->
    raise
      (Starburst.Error
         (Starburst.Err.make Starburst.Err.Semantic
            (Fmt.str "no such table %s" table)))
  | Some tab ->
    let instance =
      {
        Access_method.am_name = name;
        am_kind = "check";
        am_columns = [];
        am_check =
          (fun tuple ~exclude:_ ->
            if pred tuple then Ok ()
            else Error (Fmt.str "check constraint %s violated" name));
        am_insert = (fun _ _ -> ());
        am_delete = (fun _ _ -> ());
        am_supports = (fun _ -> false);
        am_search = (fun _ -> Seq.empty);
        am_entry_count = (fun () -> 0);
        am_ordered = false;
        am_accesses = (fun () -> 0);
        am_reset_accesses = (fun () -> ());
      }
    in
    (* existing rows must already satisfy the constraint *)
    Seq.iter
      (fun (_, tuple) ->
        if not (pred tuple) then
          raise
            (Starburst.Error
               (Starburst.Err.make Starburst.Err.Semantic
                  (Fmt.str "existing rows of %s violate check constraint %s"
                     table name))))
      (Table_store.scan tab);
    Table_store.attach tab instance

let detach (db : Starburst.t) ~table ~name =
  match Catalog.find_table db.Starburst.Corona.catalog table with
  | None -> ()
  | Some tab -> Table_store.detach tab name
