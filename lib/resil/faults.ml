type outcome = Transient | Permanent | Crash

exception Crashed of string

type site = {
  mutable s_calls : int;
  mutable s_fail_on : (int * outcome) list;
  mutable s_prob : float;
  mutable s_outcome : outcome;
}

type t = {
  f_on : bool;
  f_seed : int;
  f_lock : Sb_conc.Lock.t;
      (** one fault plan may be consulted from several domains at once
          (the plan is installed on a shared catalog); the lock keeps
          per-site ordinals and the PRNG coherent.  Level
          {!Sb_conc.Level.faults}: consulted from inside the WAL and
          buffer-pool locks, holds nothing further itself *)
  f_rng : Random.State.t;
  f_sites : (string, site) Hashtbl.t;
  mutable f_prob : float;
  mutable f_outcome : outcome;
  mutable f_metrics : Sb_obs.Metrics.t option;
  mutable f_vclock_ns : int64;
  mutable f_injected : int;
  mutable f_retried : int;
  f_max_retries : int;
  f_backoff_base_ns : int64;
  f_backoff_cap_ns : int64;
}

let make ~on ~seed ~max_retries ~base ~cap =
  {
    f_on = on;
    f_seed = seed;
    f_lock = Sb_conc.Lock.create ~name:"resil.faults" ~level:Sb_conc.Level.faults;
    f_rng = Random.State.make [| seed |];
    f_sites = Hashtbl.create 16;
    f_prob = 0.;
    f_outcome = Transient;
    f_metrics = None;
    f_vclock_ns = 0L;
    f_injected = 0;
    f_retried = 0;
    f_max_retries = max_retries;
    f_backoff_base_ns = base;
    f_backoff_cap_ns = cap;
  }

let none = make ~on:false ~seed:0 ~max_retries:0 ~base:0L ~cap:0L

let create ?(seed = 42) ?(max_retries = 5) ?(backoff_base_ns = 1_000_000L)
    ?(backoff_cap_ns = 100_000_000L) () =
  make ~on:true ~seed ~max_retries ~base:backoff_base_ns ~cap:backoff_cap_ns

let enabled t = t.f_on
let seed t = t.f_seed

(* consults observed so far at [site] (the crash fuzzer's scout pass
   reads these to enumerate every reachable crash ordinal) *)
let calls t site =
  Sb_conc.Lock.with_lock t.f_lock @@ fun () ->
  match Hashtbl.find_opt t.f_sites site with
  | Some s -> s.s_calls
  | None -> 0
let injected t = t.f_injected
let retried t = t.f_retried
let vclock_ns t = t.f_vclock_ns

let site_of t name =
  match Hashtbl.find_opt t.f_sites name with
  | Some s -> s
  | None ->
      let s =
        { s_calls = 0; s_fail_on = []; s_prob = 0.; s_outcome = Transient }
      in
      Hashtbl.add t.f_sites name s;
      s

let fail_nth t ?(outcome = Transient) ~site ordinals =
  let s = site_of t site in
  s.s_fail_on <- s.s_fail_on @ List.map (fun n -> (n, outcome)) ordinals

let fail_prob t ?(outcome = Transient) ?site p =
  match site with
  | None ->
      t.f_prob <- p;
      t.f_outcome <- outcome
  | Some name ->
      let s = site_of t name in
      s.s_prob <- p;
      s.s_outcome <- outcome

let set_metrics t m = t.f_metrics <- Some m

let bump t name site =
  match t.f_metrics with
  | None -> ()
  | Some m -> Sb_obs.Metrics.incr (Sb_obs.Metrics.counter ~label:("site", site) m name)

(* Each consult advances the per-site ordinal, so a retried call is a
   fresh consult: a probability plan can fail the retry again, and an
   ordinal plan trips once. *)
let should_fail t name =
  Sb_conc.Lock.with_lock t.f_lock @@ fun () ->
  let s = site_of t name in
  s.s_calls <- s.s_calls + 1;
  match List.assoc_opt s.s_calls s.s_fail_on with
  | Some o -> Some o
  | None ->
      let p, o =
        if s.s_prob > 0. then (s.s_prob, s.s_outcome) else (t.f_prob, t.f_outcome)
      in
      if p > 0. && Random.State.float t.f_rng 1.0 < p then Some o else None

let backoff_ns t attempt =
  let d = Int64.shift_left t.f_backoff_base_ns (min attempt 20) in
  if Int64.compare d t.f_backoff_cap_ns > 0 then t.f_backoff_cap_ns else d

let guard t ~site f =
  if not t.f_on then f ()
  else
    let counted g = Sb_conc.Lock.with_lock t.f_lock g in
    let rec attempt n =
      match should_fail t site with
      | None -> f ()
      | Some o -> (
          counted (fun () -> t.f_injected <- t.f_injected + 1);
          bump t "sb_faults_injected_total" site;
          match o with
          | Crash ->
              (* a simulated process death: the caller must atomically
                 discard all volatile state before surfacing an error *)
              bump t "sb_faults_crashes_total" site;
              raise (Crashed site)
          | Permanent ->
              Err.fail Storage "injected permanent fault at %s" site
          | Transient ->
              if n >= t.f_max_retries then (
                bump t "sb_fault_retries_exhausted_total" site;
                Err.fail ~retryable:true Storage
                  "transient fault at %s persisted after %d retries" site
                  t.f_max_retries)
              else (
                counted (fun () ->
                    t.f_retried <- t.f_retried + 1;
                    t.f_vclock_ns <- Int64.add t.f_vclock_ns (backoff_ns t n));
                bump t "sb_fault_retries_total" site;
                attempt (n + 1)))
    in
    attempt 0
