(** Structured error taxonomy for the whole pipeline.

    Every failure that escapes a pipeline stage is classified by the
    stage that produced it, carries the query text when known, and a
    retryable flag (true only for transient faults, e.g. injected
    storage hiccups whose retries were exhausted).  This replaces the
    stringly [Corona.Error] at the language-processor boundary. *)

type stage =
  | Parse  (** lexing / parsing *)
  | Semantic  (** name resolution, typing, catalog lookups *)
  | Rewrite  (** QGM rewrite engine *)
  | Optimize  (** STAR generator / plan refinement *)
  | Exec  (** QES runtime *)
  | Storage  (** buffer pool, heap, access methods *)
  | Resource  (** a governor limit was exceeded *)
  | Concurrency  (** a lock-discipline or lockset-race diagnosis *)
  | Internal  (** invariant violation; a bug, not a user error *)

type t = {
  err_stage : stage;
  err_msg : string;
  err_query : string option;  (** statement text, when known *)
  err_retryable : bool;
}

exception Error of t

val stage_name : stage -> string
val make : ?query:string -> ?retryable:bool -> stage -> string -> t

(** [fail stage fmt ...] raises {!Error} with a formatted message. *)
val fail :
  ?query:string ->
  ?retryable:bool ->
  stage ->
  ('a, Format.formatter, unit, 'b) format4 ->
  'a

(** Fills in [err_query] if the error does not already carry one. *)
val with_query : string -> t -> t

(** ["exec: division by zero"], with [" (retryable)"] appended when
    the flag is set.  Query text is not included. *)
val to_string : t -> string

(** A lock-discipline diagnosis as a (non-retryable) {!Concurrency}
    error carrying the lock or field name and the full message. *)
val of_lock_diag : Sb_conc.Discipline.diag -> t
