(** Per-query resource limits and the governor that enforces them.

    The paper's rewrite engine carries a firing budget so that rule
    application "always stops in a consistent QGM state"; the governor
    extends that discipline to the rest of the pipeline.  Limits are
    checked cooperatively — QES charges a unit per intermediate row and
    per operator instantiation, the STAR generator charges per plan
    node — so a breach surfaces as a structured {!Err.Resource} error
    naming the limit, never as a wedged process.

    A limit of [0] means unlimited.  [max_intermediate_rows]
    deliberately defaults to a finite value so a nested-loop blowup
    with missing stats cannot run away silently. *)

type t = {
  mutable max_output_rows : int;
  mutable max_intermediate_rows : int;  (** default 10_000_000 *)
  mutable max_operator_calls : int;
  mutable deadline_ms : int;  (** wall-clock budget per statement *)
  mutable max_plan_nodes : int;  (** optimizer plan-node budget *)
}

val default : unit -> t
val unlimited : unit -> t
val copy : t -> t

(** [set t name v] sets a limit by name ([output_rows],
    [intermediate_rows], [operator_calls], [deadline_ms],
    [plan_nodes]; a [limit_] or [max_] prefix is accepted).  Returns
    [Error msg] for an unknown name or negative value. *)
val set : t -> string -> int -> (unit, string) result

(** Applies [STARBURST_LIMITS] (e.g.
    ["intermediate_rows=200000,deadline_ms=5000"]) on top of [t].
    Malformed entries are ignored. *)
val apply_env : t -> t

(** [(name, value)] pairs; value rendered as ["unlimited"] when 0. *)
val describe : t -> (string * string) list

(** {1 Governor} — one per statement. *)

type gov

(** [now] defaults to the monotonic clock; tests substitute a fake. *)
val start : ?now:(unit -> int64) -> t -> gov

val limits : gov -> t

(** Charge one intermediate row produced by an operator.  The deadline
    is re-checked every 64 rows to amortise clock reads. *)
val charge_row : gov -> unit

(** [charge_rows g n] charges [n] intermediate rows at once (one batch
    of the vectorized QES): same totals and the same ceiling as [n]
    calls to {!charge_row}, but the breach — and the amortised deadline
    re-check — surface at batch granularity. *)
val charge_rows : gov -> int -> unit

(** Charge one row delivered to the client. *)
val charge_output : gov -> unit

(** Charge one operator instantiation; also checks the deadline. *)
val charge_op : gov -> unit

(** Charge [n] freshly generated optimizer plan nodes. *)
val charge_plan_nodes : gov -> int -> unit

val check_deadline : gov -> unit

(** Per-query consumption, for [\limits]: [(counter, used, limit)]
    with [limit = 0] meaning unlimited. *)
val consumption : gov -> (string * int * int) list

val elapsed_ns : gov -> int64
