(** Deterministic, seedable fault injection.

    Storage and QES consult a fault plan at named sites
    ([buffer.pin], [heap.page], [catalog.lookup], [btree.search],
    [qes.probe], ...) before doing the real work.  A plan can script
    exact ordinals ("fail the 3rd page read") or a probability ("fail
    10% of probes at seed 42"); both are driven by one seeded PRNG so
    a chaos run is reproducible.

    Transient faults are retried with capped exponential backoff on a
    {e virtual} clock — [vclock_ns] advances, nothing sleeps — and are
    counted in {!Sb_obs.Metrics} when a registry is attached.  A
    transient fault that persists past [max_retries], or any permanent
    fault, raises a structured {!Err.Storage} error. *)

type outcome = Transient | Permanent | Crash
type t

(** A [Crash] outcome simulates process death at the consulted site: the
    guard raises this instead of a structured error, and the caller must
    atomically discard all volatile state (tables, buffer pool, the
    unflushed WAL tail) before surfacing anything — recovery then
    rebuilds exactly the committed prefix from the stable log. *)
exception Crashed of string

(** The disabled plan: {!guard} is a direct call. *)
val none : t

val create :
  ?seed:int ->
  ?max_retries:int ->
  ?backoff_base_ns:int64 ->
  ?backoff_cap_ns:int64 ->
  unit ->
  t

val enabled : t -> bool
val seed : t -> int

(** [fail_nth t ~site [3; 7]] fails the 3rd and 7th consults at
    [site] (1-based, counted per site). *)
val fail_nth : t -> ?outcome:outcome -> site:string -> int list -> unit

(** [fail_prob t p] makes every consult fail with probability [p];
    with [~site] the probability applies to that site only (and
    overrides the global probability there). *)
val fail_prob : t -> ?outcome:outcome -> ?site:string -> float -> unit

(** Counters land in [registry] as [sb_faults_injected_total{site=...}]
    and [sb_fault_retries_total{site=...}]. *)
val set_metrics : t -> Sb_obs.Metrics.t -> unit

(** [guard t ~site f] runs [f], injecting faults per the plan.
    Transient faults retry [f] after advancing the virtual clock. *)
val guard : t -> site:string -> (unit -> 'a) -> 'a

val injected : t -> int
val retried : t -> int
val vclock_ns : t -> int64

(** Consults observed so far at [site] (0 for an unknown site).  The
    crash fuzzer's scout pass reads these after a fault-free replay to
    enumerate every reachable ordinal of every crash site. *)
val calls : t -> string -> int
