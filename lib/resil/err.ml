type stage =
  | Parse
  | Semantic
  | Rewrite
  | Optimize
  | Exec
  | Storage
  | Resource
  | Internal

type t = {
  err_stage : stage;
  err_msg : string;
  err_query : string option;
  err_retryable : bool;
}

exception Error of t

let stage_name = function
  | Parse -> "parse"
  | Semantic -> "semantic"
  | Rewrite -> "rewrite"
  | Optimize -> "optimize"
  | Exec -> "exec"
  | Storage -> "storage"
  | Resource -> "resource"
  | Internal -> "internal"

let make ?query ?(retryable = false) stage msg =
  { err_stage = stage; err_msg = msg; err_query = query; err_retryable = retryable }

let fail ?query ?retryable stage fmt =
  Fmt.kstr (fun s -> raise (Error (make ?query ?retryable stage s))) fmt

let with_query q e =
  match e.err_query with Some _ -> e | None -> { e with err_query = Some q }

let to_string e =
  Fmt.str "%s: %s%s" (stage_name e.err_stage) e.err_msg
    (if e.err_retryable then " (retryable)" else "")
