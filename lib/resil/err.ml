type stage =
  | Parse
  | Semantic
  | Rewrite
  | Optimize
  | Exec
  | Storage
  | Resource
  | Concurrency
  | Internal

type t = {
  err_stage : stage;
  err_msg : string;
  err_query : string option;
  err_retryable : bool;
}

exception Error of t

let stage_name = function
  | Parse -> "parse"
  | Semantic -> "semantic"
  | Rewrite -> "rewrite"
  | Optimize -> "optimize"
  | Exec -> "exec"
  | Storage -> "storage"
  | Resource -> "resource"
  | Concurrency -> "concurrency"
  | Internal -> "internal"

let make ?query ?(retryable = false) stage msg =
  { err_stage = stage; err_msg = msg; err_query = query; err_retryable = retryable }

let fail ?query ?retryable stage fmt =
  Fmt.kstr (fun s -> raise (Error (make ?query ?retryable stage s))) fmt

let with_query q e =
  match e.err_query with Some _ -> e | None -> { e with err_query = Some q }

let to_string e =
  Fmt.str "%s: %s%s" (stage_name e.err_stage) e.err_msg
    (if e.err_retryable then " (retryable)" else "")

(** A lock-discipline diagnosis ({!Sb_conc.Discipline.diag}) as a
    structured error.  Never retryable: an ordering inversion or a
    lockset race is a bug in the engine, not a transient condition. *)
let of_lock_diag (d : Sb_conc.Discipline.diag) =
  make Concurrency
    (Fmt.str "%s [%s]: %s"
       (Sb_conc.Discipline.kind_name d.d_kind)
       d.d_subject d.d_msg)
