type t = {
  mutable max_output_rows : int;
  mutable max_intermediate_rows : int;
  mutable max_operator_calls : int;
  mutable deadline_ms : int;
  mutable max_plan_nodes : int;
}

let default () =
  {
    max_output_rows = 0;
    max_intermediate_rows = 10_000_000;
    max_operator_calls = 0;
    deadline_ms = 0;
    max_plan_nodes = 0;
  }

let unlimited () =
  {
    max_output_rows = 0;
    max_intermediate_rows = 0;
    max_operator_calls = 0;
    deadline_ms = 0;
    max_plan_nodes = 0;
  }

let copy t = { t with max_output_rows = t.max_output_rows }

let strip_prefix p s =
  if String.length s > String.length p && String.sub s 0 (String.length p) = p
  then String.sub s (String.length p) (String.length s - String.length p)
  else s

let canonical name =
  let n = String.lowercase_ascii (String.trim name) in
  strip_prefix "max_" (strip_prefix "limit_" n)

let set t name v =
  if v < 0 then Error (Fmt.str "limit %s: negative value %d" name v)
  else
    match canonical name with
    | "output_rows" -> Ok (t.max_output_rows <- v)
    | "intermediate_rows" -> Ok (t.max_intermediate_rows <- v)
    | "operator_calls" -> Ok (t.max_operator_calls <- v)
    | "deadline_ms" -> Ok (t.deadline_ms <- v)
    | "plan_nodes" -> Ok (t.max_plan_nodes <- v)
    | other -> Error (Fmt.str "unknown limit %S" other)

let apply_env t =
  (match Sys.getenv_opt "STARBURST_LIMITS" with
  | None -> ()
  | Some spec ->
      String.split_on_char ',' spec
      |> List.iter (fun entry ->
             match String.index_opt entry '=' with
             | None -> ()
             | Some i ->
                 let k = String.sub entry 0 i in
                 let v =
                   String.sub entry (i + 1) (String.length entry - i - 1)
                 in
                 (match int_of_string_opt (String.trim v) with
                 | Some n -> ignore (set t k n)
                 | None -> ())));
  t

let describe t =
  let show v = if v = 0 then "unlimited" else string_of_int v in
  [
    ("output_rows", show t.max_output_rows);
    ("intermediate_rows", show t.max_intermediate_rows);
    ("operator_calls", show t.max_operator_calls);
    ("deadline_ms", show t.deadline_ms);
    ("plan_nodes", show t.max_plan_nodes);
  ]

(* Governor *)

type gov = {
  g_limits : t;
  g_now : unit -> int64;
  g_start_ns : int64;
  mutable g_output_rows : int;
  mutable g_intermediate_rows : int;
  mutable g_operator_calls : int;
  mutable g_plan_nodes : int;
}

let start ?(now = Sb_obs.Trace.now_ns) limits =
  {
    g_limits = limits;
    g_now = now;
    g_start_ns = now ();
    g_output_rows = 0;
    g_intermediate_rows = 0;
    g_operator_calls = 0;
    g_plan_nodes = 0;
  }

let limits g = g.g_limits

let exceeded name limit =
  raise
    (Err.Error
       (Err.make Err.Resource (Fmt.str "limit max_%s exceeded (%d)" name limit)))

let elapsed_ns g = Int64.sub (g.g_now ()) g.g_start_ns

let check_deadline g =
  let ms = g.g_limits.deadline_ms in
  if ms > 0 then
    let budget = Int64.mul (Int64.of_int ms) 1_000_000L in
    if Int64.compare (elapsed_ns g) budget > 0 then
      raise
        (Err.Error
           (Err.make Err.Resource (Fmt.str "limit deadline_ms exceeded (%d)" ms)))

let charge_row g =
  let n = g.g_intermediate_rows + 1 in
  g.g_intermediate_rows <- n;
  let lim = g.g_limits.max_intermediate_rows in
  if lim > 0 && n > lim then exceeded "intermediate_rows" lim;
  if n land 63 = 0 then check_deadline g

(* batch-granularity charging: same totals and ceiling as [n] calls to
   [charge_row], with one deadline re-check whenever the running count
   crosses a 64-row boundary *)
let charge_rows g n =
  if n > 0 then begin
    let before = g.g_intermediate_rows in
    let total = before + n in
    g.g_intermediate_rows <- total;
    let lim = g.g_limits.max_intermediate_rows in
    if lim > 0 && total > lim then exceeded "intermediate_rows" lim;
    if total lsr 6 <> before lsr 6 then check_deadline g
  end

let charge_output g =
  let n = g.g_output_rows + 1 in
  g.g_output_rows <- n;
  let lim = g.g_limits.max_output_rows in
  if lim > 0 && n > lim then exceeded "output_rows" lim

let charge_op g =
  let n = g.g_operator_calls + 1 in
  g.g_operator_calls <- n;
  let lim = g.g_limits.max_operator_calls in
  if lim > 0 && n > lim then exceeded "operator_calls" lim;
  check_deadline g

let charge_plan_nodes g n =
  let total = g.g_plan_nodes + n in
  g.g_plan_nodes <- total;
  let lim = g.g_limits.max_plan_nodes in
  if lim > 0 && total > lim then exceeded "plan_nodes" lim

let consumption g =
  [
    ("output_rows", g.g_output_rows, g.g_limits.max_output_rows);
    ("intermediate_rows", g.g_intermediate_rows, g.g_limits.max_intermediate_rows);
    ("operator_calls", g.g_operator_calls, g.g_limits.max_operator_calls);
    ("plan_nodes", g.g_plan_nodes, g.g_limits.max_plan_nodes);
  ]
