(** The metrics registry: named counters and log-scale latency
    histograms with a Prometheus-style text dump.

    Counters and histograms are created on demand (get-or-create by
    name and optional label), so independent subsystems share one
    registry and one output path. *)

type counter
type histogram
type t

val create : ?n_buckets:int -> unit -> t

(** Get-or-create a counter.  [label] renders as
    [name{key="value"}]. *)
val counter : ?label:string * string -> t -> string -> counter

val incr : ?by:int -> counter -> unit

(** Sets a counter to an absolute value — for mirroring an externally
    maintained monotone count (e.g. the lock-discipline counters). *)
val set : counter -> int -> unit

val counter_value : counter -> int

(** Get-or-create a log-scale (base 2) histogram. *)
val histogram : ?label:string * string -> t -> string -> histogram

(** Records one observation ([observe_ns] for span durations). *)
val observe : histogram -> float -> unit

val observe_ns : histogram -> int64 -> unit
val histogram_count : histogram -> int
val histogram_sum : histogram -> float

(** Counts per bucket, paired with each bucket's inclusive upper bound
    (the last is [infinity]). *)
val histogram_buckets : histogram -> (float * int) list

(** Bucket index an observation falls into (exposed for tests). *)
val bucket_index : histogram -> float -> int

(** Resets all values; registered metrics remain. *)
val clear : t -> unit

(** Prometheus text exposition: counters as plain samples, histograms
    as cumulative [_bucket{le=...}] series plus [_sum]/[_count]. *)
val dump : t -> string
