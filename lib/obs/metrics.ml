(** The metrics registry: named counters and log-scale latency
    histograms with a Prometheus-style text dump.

    Counters and histograms are created on demand ({!counter} /
    {!histogram} get-or-create by name) so independent subsystems —
    the rewrite engine, the plan optimizer, the query evaluation
    system — share one registry and one output path.  Metric names
    follow Prometheus conventions ([a-z_] with a unit suffix);
    an optional label renders as [name{label="value"}]. *)

type counter = { c_name : string; c_label : (string * string) option; mutable c_value : int }

(** Log-scale histogram: bucket [i] counts observations in
    [(base^i-1, base^i]] with a fixed bucket count; the last bucket is
    +Inf.  Base 2 over nanoseconds spans 1ns .. ~1.2s in 31 buckets. *)
type histogram = {
  h_name : string;
  h_label : (string * string) option;
  h_buckets : int array;
  mutable h_count : int;
  mutable h_sum : float;
}

type t = {
  mutable counters : counter list;
  mutable histograms : histogram list;
  n_buckets : int;
}

(* One registry is shared by every pipeline layer and, under the
   multi-session server, by statements running on several domains at
   once.  Mutation volume is a handful of updates per statement, so a
   single module-level lock keeps every registry domain-safe without
   per-metric overhead.  Level {!Sb_conc.Level.metrics} is the top of
   the hierarchy: any subsystem may bump a counter while holding its
   own lock, and nothing nests inside this one. *)
let lock = Sb_conc.Lock.create ~name:"obs.metrics" ~level:Sb_conc.Level.metrics
let locked f = Sb_conc.Lock.with_lock lock f

let create ?(n_buckets = 32) () =
  if n_buckets < 2 then invalid_arg "Metrics.create: need at least 2 buckets";
  { counters = []; histograms = []; n_buckets }

let same_key name label (n, l) = String.equal name n && label = l

let counter ?label t name : counter =
  locked @@ fun () ->
  match
    List.find_opt (fun c -> same_key name label (c.c_name, c.c_label)) t.counters
  with
  | Some c -> c
  | None ->
    let c = { c_name = name; c_label = label; c_value = 0 } in
    t.counters <- c :: t.counters;
    c

let incr ?(by = 1) c = locked (fun () -> c.c_value <- c.c_value + by)

(** Sets a counter to an absolute value — for mirroring an externally
    maintained monotone count (e.g. the lock-discipline counters). *)
let set c v = locked (fun () -> c.c_value <- v)

let counter_value c = c.c_value

let histogram ?label t name : histogram =
  locked @@ fun () ->
  match
    List.find_opt
      (fun h -> same_key name label (h.h_name, h.h_label))
      t.histograms
  with
  | Some h -> h
  | None ->
    let h =
      {
        h_name = name;
        h_label = label;
        h_buckets = Array.make t.n_buckets 0;
        h_count = 0;
        h_sum = 0.0;
      }
    in
    t.histograms <- h :: t.histograms;
    h

(** Bucket index for [v]: log2-scaled, clamped to the bucket range.
    Bucket [i] has upper bound [2^i] (the last bucket is +Inf). *)
let bucket_index h (v : float) =
  if v <= 1.0 then 0
  else
    let i = int_of_float (ceil (Float.log2 v)) in
    min i (Array.length h.h_buckets - 1)

let observe h v =
  locked @@ fun () ->
  let i = bucket_index h v in
  h.h_buckets.(i) <- h.h_buckets.(i) + 1;
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum +. v

(** Observes a span duration in nanoseconds. *)
let observe_ns h (ns : int64) = observe h (Int64.to_float ns)

let histogram_count h = h.h_count
let histogram_sum h = h.h_sum

(** Counts in bucket order, paired with each bucket's inclusive upper
    bound (the last is [infinity]). *)
let histogram_buckets h =
  Array.to_list
    (Array.mapi
       (fun i n ->
         let ub =
           if i = Array.length h.h_buckets - 1 then infinity
           else Float.pow 2.0 (float_of_int i)
         in
         (ub, n))
       h.h_buckets)

let clear t =
  locked @@ fun () ->
  List.iter (fun c -> c.c_value <- 0) t.counters;
  List.iter
    (fun h ->
      Array.fill h.h_buckets 0 (Array.length h.h_buckets) 0;
      h.h_count <- 0;
      h.h_sum <- 0.0)
    t.histograms

(* ------------------------------------------------------------------ *)
(* Prometheus-style text dump                                          *)
(* ------------------------------------------------------------------ *)

let render_label = function
  | None -> ""
  | Some (k, v) -> Printf.sprintf "{%s=\"%s\"}" k v

let render_label_with extra = function
  | None -> Printf.sprintf "{%s}" extra
  | Some (k, v) -> Printf.sprintf "{%s=\"%s\",%s}" k v extra

let float_bound ub =
  if ub = infinity then "+Inf"
  else if Float.is_integer ub && Float.abs ub < 1e15 then
    Printf.sprintf "%.0f" ub
  else Printf.sprintf "%g" ub

(** Prometheus text exposition: counters as [# TYPE name counter]
    samples, histograms as cumulative [_bucket{le=...}] series plus
    [_sum] and [_count]. *)
let dump t =
  locked @@ fun () ->
  let buf = Buffer.create 1024 in
  let by_name proj xs =
    List.sort (fun a b -> compare (proj a) (proj b)) xs
  in
  let seen_type = Hashtbl.create 8 in
  let type_line name kind =
    if not (Hashtbl.mem seen_type name) then begin
      Hashtbl.replace seen_type name ();
      Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name kind)
    end
  in
  List.iter
    (fun c ->
      type_line c.c_name "counter";
      Buffer.add_string buf
        (Printf.sprintf "%s%s %d\n" c.c_name (render_label c.c_label) c.c_value))
    (by_name (fun c -> (c.c_name, c.c_label)) t.counters);
  List.iter
    (fun h ->
      type_line h.h_name "histogram";
      let cumulative = ref 0 in
      List.iter
        (fun (ub, n) ->
          cumulative := !cumulative + n;
          Buffer.add_string buf
            (Printf.sprintf "%s_bucket%s %d\n" h.h_name
               (render_label_with
                  (Printf.sprintf "le=\"%s\"" (float_bound ub))
                  h.h_label)
               !cumulative))
        (histogram_buckets h);
      Buffer.add_string buf
        (Printf.sprintf "%s_sum%s %g\n" h.h_name (render_label h.h_label) h.h_sum);
      Buffer.add_string buf
        (Printf.sprintf "%s_count%s %d\n" h.h_name (render_label h.h_label)
           h.h_count))
    (by_name (fun h -> (h.h_name, h.h_label)) t.histograms);
  Buffer.contents buf
