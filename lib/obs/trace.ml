(** Span-based pipeline tracing.

    A span covers one timed region of the pipeline — a compile stage, a
    rewrite-rule firing, a STAR expansion — with a name, key/value
    attributes, monotonic start/duration, and a parent link giving the
    nesting.  Finished spans land in a bounded ring buffer, exportable
    as JSON (one object per span) or as an indented text tree.

    The disabled tracer is a no-op: {!with_span} costs one branch and
    calls the thunk directly, so instrumented code pays nothing when
    tracing is off (the default). *)

type span = {
  sp_id : int;
  sp_parent : int;  (** -1 for roots *)
  sp_name : string;
  sp_attrs : (string * string) list;
  sp_start_ns : int64;  (** monotonic clock *)
  sp_dur_ns : int64;
}

(* one open (unfinished) span on the stack *)
type open_span = {
  os_id : int;
  os_parent : int;
  os_name : string;
  mutable os_attrs : (string * string) list;
  os_start_ns : int64;
}

type t = {
  enabled : bool;
  capacity : int;
  ring : span option array;  (** ring buffer of finished spans *)
  lock : Sb_conc.Lock.t;
      (** guards ring/stack/id mutation — a tracer shared across domains
          stays memory-safe (span parentage is only meaningful within
          one domain; give each session its own tracer for clean trees).
          Level {!Sb_conc.Level.trace}: tracing may run under any
          engine lock, so only the metrics registry may nest inside. *)
  mutable next_slot : int;
  mutable finished : int;  (** total spans ever finished *)
  mutable next_id : int;
  mutable stack : open_span list;  (** innermost open span first *)
}

let noop =
  {
    enabled = false;
    capacity = 0;
    ring = [||];
    lock = Sb_conc.Lock.create ~name:"obs.trace" ~level:Sb_conc.Level.trace;
    next_slot = 0;
    finished = 0;
    next_id = 0;
    stack = [];
  }

let create ?(capacity = 4096) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  {
    enabled = true;
    capacity;
    ring = Array.make capacity None;
    lock = Sb_conc.Lock.create ~name:"obs.trace" ~level:Sb_conc.Level.trace;
    next_slot = 0;
    finished = 0;
    next_id = 0;
    stack = [];
  }

let enabled t = t.enabled
let now_ns () : int64 = Monotonic_clock.now ()

let locked t f = Sb_conc.Lock.with_lock t.lock f

let push_finished t sp =
  t.ring.(t.next_slot) <- Some sp;
  t.next_slot <- (t.next_slot + 1) mod t.capacity;
  t.finished <- t.finished + 1

let with_span t name ?(attrs = []) f =
  if not t.enabled then f ()
  else begin
    let os =
      locked t (fun () ->
          let parent = match t.stack with [] -> -1 | os :: _ -> os.os_id in
          let os =
            {
              os_id = t.next_id;
              os_parent = parent;
              os_name = name;
              os_attrs = attrs;
              os_start_ns = now_ns ();
            }
          in
          t.next_id <- t.next_id + 1;
          t.stack <- os :: t.stack;
          os)
    in
    let finish () =
      locked t @@ fun () ->
      (* pop through any spans left open by an exception below us *)
      let rec pop = function
        | [] -> []
        | o :: rest ->
          push_finished t
            {
              sp_id = o.os_id;
              sp_parent = o.os_parent;
              sp_name = o.os_name;
              sp_attrs = List.rev o.os_attrs;
              sp_start_ns = o.os_start_ns;
              sp_dur_ns = Int64.sub (now_ns ()) o.os_start_ns;
            };
          if o == os then rest else pop rest
      in
      t.stack <- pop t.stack
    in
    match f () with
    | v ->
      finish ();
      v
    | exception e ->
      finish ();
      raise e
  end

let add_attr t key value =
  if t.enabled then
    locked t (fun () ->
        match t.stack with
        | [] -> ()
        | os :: _ -> os.os_attrs <- (key, value) :: os.os_attrs)

let clear t =
  if t.enabled then
    locked t (fun () ->
        Array.fill t.ring 0 t.capacity None;
        t.next_slot <- 0;
        t.finished <- 0;
        t.next_id <- 0;
        t.stack <- [])

let dropped t = max 0 (t.finished - t.capacity)

(** Finished spans, oldest first (at most [capacity] retained). *)
let spans t =
  if not t.enabled then []
  else begin
    locked t @@ fun () ->
    let acc = ref [] in
    for i = 0 to t.capacity - 1 do
      let slot = (t.next_slot + i) mod t.capacity in
      match t.ring.(slot) with
      | Some sp -> acc := sp :: !acc
      | None -> ()
    done;
    List.sort (fun a b -> Int.compare a.sp_id b.sp_id) (List.rev !acc)
  end

(* ------------------------------------------------------------------ *)
(* Export                                                              *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let span_to_json sp =
  let attrs =
    sp.sp_attrs
    |> List.map (fun (k, v) ->
           Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v))
    |> String.concat ","
  in
  Printf.sprintf
    "{\"id\":%d,\"parent\":%d,\"name\":\"%s\",\"start_ns\":%Ld,\"dur_ns\":%Ld,\"attrs\":{%s}}"
    sp.sp_id sp.sp_parent (json_escape sp.sp_name) sp.sp_start_ns sp.sp_dur_ns
    attrs

(** All retained spans as a JSON array (oldest first). *)
let to_json t =
  "[" ^ String.concat ",\n " (List.map span_to_json (spans t)) ^ "]"

let pp_dur ppf ns =
  let f = Int64.to_float ns in
  if f < 1e3 then Format.fprintf ppf "%.0fns" f
  else if f < 1e6 then Format.fprintf ppf "%.1fus" (f /. 1e3)
  else if f < 1e9 then Format.fprintf ppf "%.2fms" (f /. 1e6)
  else Format.fprintf ppf "%.3fs" (f /. 1e9)

let dur_string ns = Format.asprintf "%a" pp_dur ns

(** Indented text rendering of the span forest, in start order. *)
let to_tree t =
  let all = spans t in
  let buf = Buffer.create 512 in
  let children id =
    List.filter (fun sp -> sp.sp_parent = id) all
  in
  let rec render depth sp =
    Buffer.add_string buf (String.make (2 * depth) ' ');
    Buffer.add_string buf sp.sp_name;
    Buffer.add_string buf (Printf.sprintf "  [%s]" (dur_string sp.sp_dur_ns));
    List.iter
      (fun (k, v) -> Buffer.add_string buf (Printf.sprintf " %s=%s" k v))
      sp.sp_attrs;
    Buffer.add_char buf '\n';
    List.iter (render (depth + 1)) (children sp.sp_id)
  in
  let retained = List.map (fun sp -> sp.sp_id) all in
  let is_root sp =
    sp.sp_parent = -1 || not (List.mem sp.sp_parent retained)
  in
  List.iter (fun sp -> if is_root sp then render 0 sp) all;
  Buffer.contents buf
