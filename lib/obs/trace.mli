(** Span-based pipeline tracing.

    A span covers one timed region of the pipeline — a compile stage, a
    rewrite-rule firing, a STAR expansion — with a name, key/value
    attributes, monotonic start/duration, and a parent link giving the
    nesting.  Finished spans land in a bounded ring buffer, exportable
    as JSON or as an indented text tree.

    The disabled tracer ({!noop}, the default everywhere) is free:
    {!with_span} costs one branch and calls the thunk directly. *)

type span = {
  sp_id : int;  (** creation order; unique per tracer *)
  sp_parent : int;  (** parent span id, [-1] for roots *)
  sp_name : string;
  sp_attrs : (string * string) list;
  sp_start_ns : int64;  (** monotonic clock *)
  sp_dur_ns : int64;
}

type t

(** The disabled tracer: every operation is a no-op. *)
val noop : t

(** An enabled tracer retaining the last [capacity] finished spans
    (default 4096). *)
val create : ?capacity:int -> unit -> t

val enabled : t -> bool

(** Current monotonic time (exposed for tests and ad-hoc timing). *)
val now_ns : unit -> int64

(** [with_span t name f] times [f ()] as a span nested under the
    innermost open span.  The span is recorded even if [f] raises. *)
val with_span : t -> string -> ?attrs:(string * string) list -> (unit -> 'a) -> 'a

(** Attaches an attribute to the innermost open span (no-op when none
    is open or the tracer is disabled). *)
val add_attr : t -> string -> string -> unit

(** Finished spans, oldest first (at most [capacity] retained). *)
val spans : t -> span list

(** Spans evicted from the ring so far. *)
val dropped : t -> int

val clear : t -> unit

(** {1 Export} *)

(** All retained spans as a JSON array of objects
    [{id, parent, name, start_ns, dur_ns, attrs}]. *)
val to_json : t -> string

(** Indented text rendering of the span forest. *)
val to_tree : t -> string

(** Human-friendly duration ("1.2us", "3.45ms", ...). *)
val dur_string : int64 -> string
