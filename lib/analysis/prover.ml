(** A predicate satisfiability / implication prover over conjunctions.

    The engine is deliberately small: equality classes (a union-find
    over column references and constants), interval narrowing for
    comparisons against constants and between columns, and Kleene
    three-valued logic so NULL behaves as SQL's unknown.  Everything it
    cannot model (LIKE, functions, subqueries, host variables,
    arithmetic beyond +/-) evaluates to "any truth value possible",
    which keeps every verdict sound: [Proved] / [Unsat] are only
    returned when they hold in all models.  See DESIGN section 6.3 for
    scope and known incompletenesses. *)

open Sb_storage
module Ast = Sb_hydrogen.Ast
module Qgm = Sb_qgm.Qgm

(* ------------------------------------------------------------------ *)
(* Three-valued truth as a can-set                                     *)
(* ------------------------------------------------------------------ *)

(** Which of TRUE / FALSE / NULL the expression can evaluate to. *)
type tri = { t : bool; f : bool; n : bool }

let any_tri = { t = true; f = true; n = true }
let must_true = { t = true; f = false; n = false }
let must_false = { t = false; f = true; n = false }
let must_null = { t = false; f = false; n = true }

let tri_not x = { x with t = x.f; f = x.t }

(* Kleene conjunction/disjunction over can-sets: the result can be [v]
   iff some pair of operand outcomes combines to [v]. *)
let tri_and a b =
  {
    t = a.t && b.t;
    f = a.f || b.f;
    n = (a.n && (b.t || b.n)) || (b.n && (a.t || a.n));
  }

let tri_or a b =
  {
    t = a.t || b.t;
    f = a.f && b.f;
    n = (a.n && (b.f || b.n)) || (b.n && (a.f || a.n));
  }

(** The conjunct passes a WHERE clause only when TRUE. *)
let can_pass x = x.t
let must_pass x = x.t && (not x.f) && not x.n

(* ------------------------------------------------------------------ *)
(* Abstract values                                                     *)
(* ------------------------------------------------------------------ *)

(** [av_iv = None]: the expression cannot produce a non-null value. *)
type aval = { av_null : bool; av_iv : Props.interval option }

let top_aval = { av_null = true; av_iv = Some Props.top_iv }
let aval_of_col (c : Props.col_prop) =
  { av_null = c.Props.cp_nullable; av_iv = c.Props.cp_interval }
let col_of_aval a =
  { Props.cp_nullable = a.av_null; cp_interval = a.av_iv }

(* ------------------------------------------------------------------ *)
(* Environment: union-find over columns and constants                  *)
(* ------------------------------------------------------------------ *)

type node = N_col of Qgm.quant_id * int | N_const of Value.t

type env = {
  prop_of : Qgm.quant_id -> int -> Props.col_prop;
      (** baseline facts for a column (from inference or schema);
          consulted lazily the first time a column is touched *)
  parent : (node, node) Hashtbl.t;
  cls : (node, Props.col_prop) Hashtbl.t;  (** root -> refined prop *)
  mutable diseqs : (node * node) list;
      (** assumed disequalities, compared by class root at query time *)
  mutable contradiction : bool;
}

let make_env ?(prop_of = fun _ _ -> Props.top_col) () =
  {
    prop_of;
    parent = Hashtbl.create 16;
    cls = Hashtbl.create 16;
    diseqs = [];
    contradiction = false;
  }

let base_prop env = function
  | N_col (q, i) -> env.prop_of q i
  | N_const v ->
    if Value.is_null v then { Props.cp_nullable = true; cp_interval = None }
    else { Props.cp_nullable = false; cp_interval = Some (Props.point v) }

let rec find env n =
  match Hashtbl.find_opt env.parent n with
  | None -> n
  | Some p ->
    let r = find env p in
    if r <> p then Hashtbl.replace env.parent n r;
    r

let class_prop env n =
  let r = find env n in
  match Hashtbl.find_opt env.cls r with
  | Some p -> p
  | None ->
    let p = base_prop env r in
    Hashtbl.replace env.cls r p;
    p

let set_class_prop env n p =
  let r = find env n in
  Hashtbl.replace env.cls r p;
  if Props.impossible_col p then env.contradiction <- true

(** Refine node [n] by meeting its class property with [p]. *)
let refine env n p =
  set_class_prop env n (Props.meet_col (class_prop env n) p)

let not_null = { Props.cp_nullable = false; cp_interval = Some Props.top_iv }

let same_class env a b = find env a = find env b

(** Have [a] and [b] been assumed distinct (by class)? *)
let diseq_class env a b =
  let ra = find env a and rb = find env b in
  List.exists
    (fun (x, y) ->
      let rx = find env x and ry = find env y in
      (rx = ra && ry = rb) || (rx = rb && ry = ra))
    env.diseqs

let union env a b =
  let ra = find env a and rb = find env b in
  if ra <> rb then begin
    let p = Props.meet_col (class_prop env ra) (class_prop env rb) in
    (* keep constants as roots so a class's constant survives as root *)
    let root, child =
      match ra, rb with N_const _, _ -> ra, rb | _, _ -> rb, ra
    in
    Hashtbl.remove env.cls child;
    Hashtbl.replace env.parent child root;
    set_class_prop env root p;
    (* merging two classes held apart by a disequality is impossible *)
    if
      List.exists
        (fun (x, y) -> same_class env x y)
        env.diseqs
    then env.contradiction <- true
  end

(* ------------------------------------------------------------------ *)
(* Abstract evaluation of value expressions                            *)
(* ------------------------------------------------------------------ *)

let iv_add a b =
  match a, b with
  | { Props.lo; hi }, { Props.lo = lo'; hi = hi' } ->
    let add x y =
      match x, y with
      | Some (Value.Int a), Some (Value.Int b) -> Some (Value.Int (a + b))
      | _ -> None
    in
    { Props.lo = add lo lo'; hi = add hi hi' }

let iv_neg i =
  let neg = function Some (Value.Int x) -> Some (Value.Int (-x)) | _ -> None in
  { Props.lo = neg i.Props.hi; hi = neg i.Props.lo }

let rec aval env (e : Qgm.expr) : aval =
  match e with
  | Qgm.Lit v ->
    if Value.is_null v then { av_null = true; av_iv = None }
    else { av_null = false; av_iv = Some (Props.point v) }
  | Qgm.Col (q, i) -> aval_of_col (class_prop env (N_col (q, i)))
  | Qgm.Bin ((Ast.Add | Ast.Sub) as op, a, b) ->
    let va = aval env a and vb = aval env b in
    let iv =
      match va.av_iv, vb.av_iv with
      | None, _ | _, None -> None
      | Some x, Some y ->
        Some (iv_add x (if op = Ast.Add then y else iv_neg y))
    in
    { av_null = va.av_null || vb.av_null; av_iv = iv }
  | Qgm.Bin ((Ast.Mul | Ast.Div | Ast.Mod | Ast.Concat), a, b) ->
    let va = aval env a and vb = aval env b in
    let iv =
      match va.av_iv, vb.av_iv with
      | None, _ | _, None -> None  (* a null operand nulls the result *)
      | Some _, Some _ -> Some Props.top_iv
    in
    { av_null = va.av_null || vb.av_null; av_iv = iv }
  | Qgm.Un (Ast.Neg, a) ->
    let va = aval env a in
    { va with av_iv = Option.map iv_neg va.av_iv }
  | Qgm.Case (arms, els) ->
    let branches =
      List.map (fun (_, v) -> aval env v) arms
      @ [ (match els with Some e -> aval env e | None -> { av_null = true; av_iv = None }) ]
    in
    let hull a b = aval_of_col (Props.hull_col (col_of_aval a) (col_of_aval b)) in
    (match branches with [] -> top_aval | b :: rest -> List.fold_left hull b rest)
  | Qgm.Agg ("count", _, _) ->
    { av_null = false; av_iv = Some { Props.lo = Some (Value.Int 0); hi = None } }
  | Qgm.Agg (("min" | "max"), _, Some a) ->
    (* groups are non-empty, so MIN/MAX are NULL only when the argument
       can be (an all-NULL group) *)
    let va = aval env a in
    { av_null = va.av_null; av_iv = va.av_iv }
  | Qgm.Un (Ast.Not, _) | Qgm.Bin _ | Qgm.Is_null _ | Qgm.Like _ ->
    (* boolean-valued: BOOL can also be NULL, interval not tracked *)
    top_aval
  | Qgm.Host _ | Qgm.Fun _ | Qgm.Agg _ | Qgm.Quantified _ -> top_aval

(* ------------------------------------------------------------------ *)
(* Three-valued evaluation of predicates                               *)
(* ------------------------------------------------------------------ *)

(* Can [cmp] come out true (resp. false) for some pair of non-null
   values drawn from intervals [a] and [b]? *)
let cmp_possible op (a : Props.interval) (b : Props.interval) =
  let lt x y =
    (* exists va in x, vb in y with va < vb  <=>  x.lo < y.hi *)
    match x.Props.lo, y.Props.hi with
    | None, _ | _, None -> true
    | Some l, Some h -> Props.cmp l h < 0
  in
  let le x y =
    match x.Props.lo, y.Props.hi with
    | None, _ | _, None -> true
    | Some l, Some h -> Props.cmp l h <= 0
  in
  let overlap = Props.meet_iv a b <> None in
  let both_same_point = Props.is_point a && Props.is_point b && overlap in
  match op with
  | Ast.Eq -> (overlap, not both_same_point)
  | Ast.Neq -> (not both_same_point, overlap)
  | Ast.Lt -> (lt a b, le b a)
  | Ast.Le -> (le a b, lt b a)
  | Ast.Gt -> (lt b a, le a b)
  | Ast.Ge -> (le b a, lt a b)
  | _ -> (true, true)

let is_cmp = function
  | Ast.Eq | Ast.Neq | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge -> true
  | _ -> false

let node_of = function Qgm.Col (q, i) -> Some (N_col (q, i)) | Qgm.Lit v when not (Value.is_null v) -> Some (N_const v) | _ -> None

let rec eval env (e : Qgm.expr) : tri =
  match e with
  | Qgm.Lit (Value.Bool b) -> if b then must_true else must_false
  | Qgm.Lit Value.Null -> must_null
  | Qgm.Lit _ -> any_tri
  | Qgm.Bin (Ast.And, a, b) -> tri_and (eval env a) (eval env b)
  | Qgm.Bin (Ast.Or, a, b) -> tri_or (eval env a) (eval env b)
  | Qgm.Un (Ast.Not, a) -> tri_not (eval env a)
  | Qgm.Is_null a ->
    let v = aval env a in
    { t = v.av_null; f = v.av_iv <> None; n = false }
  | Qgm.Bin (op, a, b) when is_cmp op ->
    let va = aval env a and vb = aval env b in
    let n = va.av_null || vb.av_null in
    let t, f =
      match va.av_iv, vb.av_iv with
      | None, _ | _, None -> (false, false)  (* a null side: always NULL *)
      | Some ia, Some ib ->
        let t, f = cmp_possible op ia ib in
        (* congruence: both sides in one equality class compare equal;
           an assumed disequality decides Eq/Neq the other way *)
        (match node_of a, node_of b with
        | Some na, Some nb when same_class env na nb -> (
          match op with
          | Ast.Eq | Ast.Le | Ast.Ge -> (t, false)
          | Ast.Neq | Ast.Lt | Ast.Gt -> (false, f)
          | _ -> (t, f))
        | Some na, Some nb when diseq_class env na nb -> (
          match op with
          | Ast.Eq -> (false, f)
          | Ast.Neq -> (t, false)
          | _ -> (t, f))
        | _ -> (t, f))
    in
    { t; f; n }
  | Qgm.Bin _ | Qgm.Un (Ast.Neg, _) -> any_tri
  | Qgm.Case _ | Qgm.Fun _ | Qgm.Agg _ | Qgm.Host _ | Qgm.Col _
  | Qgm.Like _ | Qgm.Quantified _ -> any_tri

(* ------------------------------------------------------------------ *)
(* Assuming a conjunct true                                            *)
(* ------------------------------------------------------------------ *)

let iv_for_cmp op v =
  (* interval implied for x by "x op v" (v non-null) *)
  let pred_int f = match v with Value.Int x -> Some (Value.Int (f x)) | _ -> None in
  match op with
  | Ast.Eq -> Some (Props.point v)
  | Ast.Le -> Some { Props.lo = None; hi = Some v }
  | Ast.Ge -> Some { Props.lo = Some v; hi = None }
  | Ast.Lt ->
    Some
      (match pred_int (fun x -> x - 1) with
      | Some b -> { Props.lo = None; hi = Some b }
      | None -> { Props.lo = None; hi = Some v })
      (* non-integer strict bounds kept closed: a sound over-approximation *)
  | Ast.Gt ->
    Some
      (match pred_int (fun x -> x + 1) with
      | Some b -> { Props.lo = Some b; hi = None }
      | None -> { Props.lo = Some v; hi = None })
  | _ -> None

let flip = function
  | Ast.Lt -> Ast.Gt
  | Ast.Le -> Ast.Ge
  | Ast.Gt -> Ast.Lt
  | Ast.Ge -> Ast.Le
  | op -> op

(** Refine [env] under the assumption that [e] evaluates to TRUE.
    Unknown shapes refine nothing — but a conjunct that {e cannot} be
    true flags a contradiction. *)
let rec assume env (e : Qgm.expr) =
  if not env.contradiction then
    match e with
    | Qgm.Bin (Ast.And, a, b) ->
      assume env a;
      assume env b
    | Qgm.Bin (Ast.Eq, a, b) -> (
      match node_of a, node_of b with
      | Some na, Some nb ->
        refine env na not_null;
        refine env nb not_null;
        union env na nb
      | _ -> check env e)
    | Qgm.Bin (op, a, b) when is_cmp op -> (
      let constrain col_e op other_e =
        match node_of col_e with
        | Some nc -> (
          refine env nc not_null;
          (match node_of other_e with
          | Some no -> refine env no not_null
          | None -> ());
          (* narrow by the other side's current bounds *)
          let vo = aval env other_e in
          match vo.av_iv with
          | Some { Props.lo; hi } ->
            let bound =
              match op with
              | Ast.Lt | Ast.Le -> Option.bind hi (iv_for_cmp op)
              | Ast.Gt | Ast.Ge -> Option.bind lo (iv_for_cmp op)
              | Ast.Neq -> None
              | _ -> None
            in
            (match bound with
            | Some iv ->
              refine env nc { Props.cp_nullable = false; cp_interval = Some iv }
            | None -> ())
          | None -> env.contradiction <- true (* other side always NULL *))
        | None -> ()
      in
      constrain a op b;
      constrain b (flip op) a;
      (match op, node_of a, node_of b with
      | Ast.Neq, Some na, Some nb ->
        if same_class env na nb then env.contradiction <- true
        else env.diseqs <- (na, nb) :: env.diseqs
      | _ -> ());
      check env e)
    | Qgm.Un (Ast.Not, Qgm.Is_null inner) -> (
      match node_of inner with
      | Some n -> refine env n not_null
      | None -> check env e)
    | Qgm.Is_null inner -> (
      match node_of inner with
      | Some n ->
        refine env n { Props.cp_nullable = true; cp_interval = None }
      | None -> check env e)
    | Qgm.Un (Ast.Not, Qgm.Un (Ast.Not, inner)) -> assume env inner
    | _ -> check env e

(* generic fallback: no refinement, but detect impossibility *)
and check env e = if not (can_pass (eval env e)) then env.contradiction <- true

(* ------------------------------------------------------------------ *)
(* Verdicts                                                            *)
(* ------------------------------------------------------------------ *)

type sat = Satisfiable | Unsatisfiable | Sat_unknown
type verdict = Proved | Disproved | Unknown

let sat_to_string = function
  | Satisfiable -> "satisfiable"
  | Unsatisfiable -> "unsatisfiable"
  | Sat_unknown -> "unknown"

let verdict_to_string = function
  | Proved -> "proved"
  | Disproved -> "disproved"
  | Unknown -> "unknown"

(** Load the conjunction into a fresh child of [env]'s baseline.  Two
    rounds, because a later conjunct can tighten a class an earlier
    conjunct already constrained. *)
let assume_all env conjuncts =
  assume env (Qgm.conjoin conjuncts);
  if not env.contradiction then assume env (Qgm.conjoin conjuncts);
  (* re-check every conjunct against the final refinement *)
  if not env.contradiction then
    List.iter (fun c -> check env c) conjuncts

(** Satisfiability of a conjunction.  [Unsatisfiable] is a proof (no
    row can pass); [Satisfiable] is claimed only when every conjunct is
    forced TRUE by the refined environment — for the interval +
    equality fragment the refined classes then exhibit a witness. *)
let satisfiable ?prop_of conjuncts =
  let env = make_env ?prop_of () in
  assume_all env conjuncts;
  if env.contradiction then Unsatisfiable
  else if List.for_all (fun c -> must_pass (eval env c)) conjuncts then
    Satisfiable
  else Sat_unknown

(** Does the conjunction of [hyps] imply that [concl] is TRUE?  A
    contradiction in the hypotheses proves the implication vacuously. *)
let implies ?prop_of hyps concl =
  let env = make_env ?prop_of () in
  assume_all env hyps;
  if env.contradiction then Proved
  else
    let v = eval env concl in
    if must_pass v then Proved
    else if not (can_pass v) then Disproved
    else Unknown

(** Truth of a constant predicate under no hypotheses: [Some true] when
    it must pass a WHERE clause, [Some false] when it never can (FALSE
    or NULL both filter the row).  The NULL-aware replacement for the
    old [Lint.const_truth] literal fold. *)
let const_truth ?prop_of (e : Qgm.expr) : bool option =
  let env = make_env ?prop_of () in
  let v = eval env e in
  if must_pass v then Some true
  else if not (can_pass v) then Some false
  else None

(* ------------------------------------------------------------------ *)
(* Strictness (null intolerance)                                       *)
(* ------------------------------------------------------------------ *)

type strictness = Strict | Non_strict | Strict_unknown

let strictness_to_string = function
  | Strict -> "strict"
  | Non_strict -> "non-strict"
  | Strict_unknown -> "unknown"

(** Is [e] {e strict} (null-intolerant) in [cols]: can it never pass a
    WHERE clause when one of those columns is NULL?  Strict predicates
    are the ones safe to push below NULL-padding operations — a padded
    row cannot survive them, so filtering early loses nothing.  [Strict]
    and [Non_strict] are proofs (the latter exhibits a column whose
    NULLing forces the predicate TRUE, e.g. [IS NULL]); anything the
    abstraction cannot decide is [Strict_unknown]. *)
let strictness ?(prop_of = fun _ _ -> Props.top_col) ~cols (e : Qgm.expr) =
  let under_null (q, i) =
    let forced q' i' =
      if q' = q && i' = i then { Props.cp_nullable = true; cp_interval = None }
      else prop_of q' i'
    in
    eval (make_env ~prop_of:forced ()) e
  in
  let verdicts = List.map under_null cols in
  if List.exists must_pass verdicts then Non_strict
  else if List.for_all (fun v -> not (can_pass v)) verdicts then Strict
  else Strict_unknown

(** Strictness of [e] in every column it references. *)
let strict_in_refs ?prop_of (e : Qgm.expr) =
  match Qgm.col_refs e with
  | [] -> Strict_unknown  (* no columns: nothing to be strict in *)
  | cols -> strictness ?prop_of ~cols e
