(** Property inference over QGM: a fixpoint dataflow pass that derives,
    per box and per head column, the facts in {!Props} — nullability,
    value intervals, keys, row-count bounds, provable emptiness.

    Boxes are visited bottom-up through the range edges; a back edge in
    a recursive graph is cut with top (sound: top over-approximates any
    fixpoint), then a bounded number of improvement sweeps re-applies
    the transfer functions from that over-approximation downward.

    [trust_stats] controls whether catalog statistics (min/max, row
    counts) feed the result.  The optimizer wants them (estimates may
    be stale); rewrite-rule safety proofs and lints must not (only
    declared schema facts and the predicates themselves). *)

open Sb_storage
module Ast = Sb_hydrogen.Ast
module Qgm = Sb_qgm.Qgm

type t = {
  props : (Qgm.box_id, Props.box_props) Hashtbl.t;
  trust_stats : bool;
}

(* cap on key combinations tried when several inputs expose several
   candidate keys; past this the derivation just drops candidates *)
let max_key_combos = 8

let box_props t id =
  match Hashtbl.find_opt t.props id with
  | Some p -> p
  | None -> Props.top_box 0

(* ------------------------------------------------------------------ *)
(* Transfer functions                                                  *)
(* ------------------------------------------------------------------ *)

let base_table_props ~trust_stats ~catalog name arity =
  match Catalog.find_table catalog name with
  | None -> Props.top_box arity
  | Some tab ->
    let schema = tab.Table_store.schema in
    let stats = tab.Table_store.stats in
    let analyzed = Array.length stats.Stats.ts_columns > 0 in
    let col i =
      if i >= Array.length schema then Props.top_col
      else
        let c = schema.(i) in
        let iv =
          if trust_stats && analyzed && i < Array.length stats.Stats.ts_columns
          then
            let cs = stats.Stats.ts_columns.(i) in
            match cs.Stats.cs_min, cs.Stats.cs_max with
            | Some lo, Some hi -> Some { Props.lo = Some lo; hi = Some hi }
            | _ -> Some Props.top_iv
          else Some Props.top_iv
        in
        { Props.cp_nullable = c.Schema.col_nullable; cp_interval = iv }
    in
    let keys =
      List.concat
        (List.init (Array.length schema) (fun i ->
             if schema.(i).Schema.col_unique then [ [ i ] ] else []))
    in
    let p =
      {
        Props.bp_cols = Array.init arity col;
        bp_keys = Props.normalize_keys keys;
        bp_max_rows =
          (if trust_stats && analyzed then Some stats.Stats.ts_cardinality
           else None);
        bp_empty = false;
      }
    in
    if p.Props.bp_max_rows = Some 1 || p.Props.bp_max_rows = Some 0 then
      (* stats are estimates: take the row bound but never "proved empty" *)
      { (Props.clamp_rows p 1) with bp_empty = false }
    else p

(* column prop seen *through* a quantifier: extension setformers (the
   outer join's PF) may NULL-pad their columns, so the input's NOT NULL
   must not survive the crossing *)
let through_quant (q : Qgm.quant) (c : Props.col_prop) =
  match q.Qgm.q_type with
  | Qgm.Ext _ | Qgm.SP _ -> { c with Props.cp_nullable = true }
  | Qgm.F | Qgm.E | Qgm.A | Qgm.S -> c

(* conjuncts a prover env can safely consume: anything free of
   subquery/aggregate/host references (those evaluate as unknown
   anyway, so dropping them loses nothing and keeps envs small) *)
let provable_conjuncts (b : Qgm.box) =
  List.concat_map (fun p -> Qgm.conjuncts p.Qgm.p_expr) b.Qgm.b_preds
  |> List.filter (fun e ->
         not (Qgm.contains_quantified e || Qgm.contains_host e))

(* candidate keys of an input, as seen from quantifier [q]: key columns
   re-addressed as (q, i) pairs.  An Ext/SP quantifier can replicate or
   pad rows, so its input keys are not keys of the crossing. *)
let quant_keys inp (q : Qgm.quant) =
  match q.Qgm.q_type with
  | Qgm.F ->
    let keys =
      if Props.single_row inp then [ [] ]
      else inp.Props.bp_keys
    in
    List.map (List.map (fun i -> (q.Qgm.q_id, i))) keys
  | _ -> []

(* [combos] builds up to [max_key_combos] choices of one key per
   quantifier (cartesian, capped) *)
let combos per_quant =
  List.fold_left
    (fun acc ks ->
      let next =
        List.concat_map (fun chosen -> List.map (fun k -> k @ chosen) ks) acc
      in
      if List.length next > max_key_combos then
        match next with [] -> [] | x :: _ -> [ x ]
      else next)
    [ [] ] per_quant

(* Derived keys of a select box.  A quantifier is "determined" when one
   of its input keys is pinned column-by-column — each key column's
   equality class contains a constant or a column of another, still
   undetermined quantifier.  Undetermined quantifiers contribute their
   key columns to the box key; if every quantifier is determined the
   box yields at most one row (per binding of any correlated outer). *)
let select_keys g env (b : Qgm.box) inputs =
  let setformers = Qgm.setformers b in
  let setformer_ids = List.map (fun q -> q.Qgm.q_id) setformers in
  let pinned remaining (qid, i) =
    let module P = Prover in
    let n = P.N_col (qid, i) in
    let root = P.find env n in
    match root with
    | P.N_const _ -> true
    | P.N_col _ ->
      (* the class is forced to a single non-null value... *)
      let cp = P.class_prop env n in
      (match cp.Props.cp_interval with
      | Some iv when Props.is_point iv && not cp.Props.cp_nullable -> true
      | _ ->
        (* ...or holds a column of another remaining quantifier or of a
           correlated outer quantifier (pinning per outer binding) *)
        let pins_via qid' =
          qid' <> qid
          && (List.exists (fun q -> q.Qgm.q_id = qid') remaining
             || not (List.mem qid' setformer_ids))
        in
        let classmate tbl =
          Hashtbl.fold
            (fun node _ acc ->
              acc
              ||
              match node with
              | P.N_col (qid', _) ->
                pins_via qid' && P.find env node = root
              | P.N_const _ -> false)
            tbl false
        in
        classmate env.P.parent || classmate env.P.cls)
  in
  let keys_of q =
    match List.assoc_opt q.Qgm.q_id inputs with
    | Some inp -> quant_keys inp q
    | None -> []
  in
  (* peel determined quantifiers *)
  let rec peel remaining =
    let others q = List.filter (fun q' -> q'.Qgm.q_id <> q.Qgm.q_id) remaining in
    match
      List.find_opt
        (fun q ->
          List.exists
            (fun key -> key <> [] && List.for_all (pinned (others q)) key)
            (keys_of q)
          || List.mem [] (keys_of q))
        remaining
    with
    | Some q -> peel (others q)
    | None -> remaining
  in
  let remaining = peel setformers in
  (* head position of a pass-through body column *)
  let head_pos (qid, i) =
    let rec loop j = function
      | [] -> None
      | hc :: rest ->
        if hc.Qgm.hc_expr = Some (Qgm.Col (qid, i)) then Some j
        else loop (j + 1) rest
    in
    loop 0 b.Qgm.b_head
  in
  let body_keys = combos (List.map keys_of remaining) in
  let head_keys =
    List.filter_map
      (fun key ->
        let pos = List.map head_pos key in
        if List.for_all Option.is_some pos then
          Some (List.filter_map Fun.id pos)
        else None)
      body_keys
  in
  let single = remaining = [] && setformers <> [] in
  ignore g;
  (head_keys, single)

let rec transfer visit g ~catalog ~trust_stats (b : Qgm.box) : Props.box_props =
  let arity = Qgm.arity b in
  match b.Qgm.b_kind with
  | Qgm.Base_table name -> base_table_props ~trust_stats ~catalog name arity
  | Qgm.Select -> select_props visit g ~catalog ~trust_stats b
  | Qgm.Group_by keys -> group_props visit g b keys
  | Qgm.Set_op (op, all) -> setop_props visit g b op all
  | Qgm.Values_box rows -> values_props b rows
  | Qgm.Choose -> choose_props visit g b
  | Qgm.Table_fn _ | Qgm.Ext_op _ -> Props.top_box arity

and select_props visit g ~catalog ~trust_stats b =
  ignore catalog;
  ignore trust_stats;
  let inputs =
    List.map (fun q -> (q.Qgm.q_id, visit q.Qgm.q_input)) b.Qgm.b_quants
  in
  let quant_of =
    let tbl = Hashtbl.create 8 in
    List.iter (fun q -> Hashtbl.replace tbl q.Qgm.q_id q) b.Qgm.b_quants;
    Hashtbl.find_opt tbl
  in
  let prop_of qid i =
    match quant_of qid with
    | Some q -> (
      match List.assoc_opt qid inputs with
      | Some inp when i < Array.length inp.Props.bp_cols ->
        through_quant q inp.Props.bp_cols.(i)
      | _ -> Props.top_col)
    | None -> Props.top_col (* correlated outer reference: unknown here *)
  in
  let conjuncts = provable_conjuncts b in
  let env = Prover.make_env ~prop_of () in
  Prover.assume_all env conjuncts;
  let contradiction = env.Prover.contradiction in
  (* an empty ForEach input empties the box (extension setformers like
     the outer join's PF preserve rows, so they don't) *)
  let empty_input =
    List.exists
      (fun q ->
        q.Qgm.q_type = Qgm.F
        && match List.assoc_opt q.Qgm.q_id inputs with
           | Some inp -> inp.Props.bp_empty
           | None -> false)
      b.Qgm.b_quants
  in
  let empty = contradiction || empty_input in
  let head_prop hc =
    match hc.Qgm.hc_expr with
    | Some e -> Prover.col_of_aval (Prover.aval env e)
    | None -> Props.top_col
  in
  let cols = Array.of_list (List.map head_prop b.Qgm.b_head) in
  let head_keys, single = select_keys g env b inputs in
  let keys = if b.Qgm.b_distinct then
      List.init (Array.length cols) Fun.id :: head_keys
    else head_keys
  in
  let p =
    {
      Props.bp_cols = cols;
      bp_keys = Props.normalize_keys keys;
      bp_max_rows = None;
      bp_empty = empty;
    }
  in
  let p = if single then Props.clamp_rows p 1 else p in
  (* product of input row bounds.  Only valid when every setformer is a
     plain ForEach: extension setformers (outer-join PF) preserve
     unmatched rows, so their output can exceed the product. *)
  let p =
    let setf = Qgm.setformers b in
    if setf = [] || List.exists (fun q -> q.Qgm.q_type <> Qgm.F) setf then p
    else
      let bound =
        List.fold_left
          (fun acc q ->
            match acc with
            | None -> None
            | Some n -> (
              match List.assoc_opt q.Qgm.q_id inputs with
              | Some { Props.bp_max_rows = Some m; _ }
                when n * m < 1_000_000_000 ->
                Some (n * m)
              | _ -> None))
          (Some 1) setf
      in
      match bound with Some n -> Props.clamp_rows p n | None -> p
  in
  let p = match b.Qgm.b_limit with Some n -> Props.clamp_rows p n | None -> p in
  if empty then Props.clamp_rows p 0 else p

and group_props visit _g b keys =
  match Qgm.setformers b with
  | [ q ] ->
    let inp = visit q.Qgm.q_input in
    let prop_of qid i =
      if qid = q.Qgm.q_id && i < Array.length inp.Props.bp_cols then
        through_quant q inp.Props.bp_cols.(i)
      else Props.top_col
    in
    let env = Prover.make_env ~prop_of () in
    let head_prop hc =
      match hc.Qgm.hc_expr with
      | Some e -> Prover.col_of_aval (Prover.aval env e)
      | None -> Props.top_col
    in
    let cols = Array.of_list (List.map head_prop b.Qgm.b_head) in
    (* head positions holding the grouping expressions form a key *)
    let head_pos e =
      let rec loop j = function
        | [] -> None
        | hc :: rest ->
          if hc.Qgm.hc_expr = Some e then Some j else loop (j + 1) rest
      in
      loop 0 b.Qgm.b_head
    in
    let key_pos = List.map head_pos keys in
    let keyed = List.for_all Option.is_some key_pos in
    let p =
      {
        Props.bp_cols = cols;
        bp_keys =
          (if keyed && keys <> [] then
             Props.normalize_keys [ List.filter_map Fun.id key_pos ]
           else []);
        bp_max_rows = None;
        bp_empty = (keys <> [] && inp.Props.bp_empty);
      }
    in
    (* a global aggregate always yields exactly one row *)
    let p = if keys = [] then Props.clamp_rows p 1 else p in
    (* group count bounds: input rows, and the product of the integer
       interval widths of the grouping columns *)
    let p =
      match inp.Props.bp_max_rows with
      | Some n when keys <> [] -> Props.clamp_rows p n
      | _ -> p
    in
    let p =
      if keys = [] then p
      else
        let widths =
          List.map
            (fun e ->
              match (Prover.aval env e).Prover.av_iv with
              | Some iv -> Props.int_width iv
              | None -> Some 1)
            keys
        in
        if List.for_all Option.is_some widths then
          let w =
            List.fold_left
              (fun acc o -> acc * Option.value o ~default:1)
              1 widths
          in
          if w < 1_000_000_000 then Props.clamp_rows p (max 1 w) else p
        else p
    in
    if p.Props.bp_empty then Props.clamp_rows p 0 else p
  | _ -> Props.top_box (Qgm.arity b)

and setop_props visit g b op all =
  let inputs = List.map (fun q -> visit q.Qgm.q_input) (Qgm.setformers b) in
  ignore g;
  let arity = Qgm.arity b in
  match inputs with
  | [] -> Props.top_box arity
  | first :: rest ->
    let col_at inp i =
      if i < Array.length inp.Props.bp_cols then inp.Props.bp_cols.(i)
      else Props.top_col
    in
    let combine f =
      Array.init arity (fun i ->
          List.fold_left (fun acc inp -> f acc (col_at inp i)) (col_at first i) rest)
    in
    let sum_rows () =
      List.fold_left
        (fun acc inp ->
          match acc, inp.Props.bp_max_rows with
          | Some a, Some b -> Some (a + b)
          | _ -> None)
        (Some 0) inputs
    in
    (match op with
    | Ast.Union ->
      let p =
        {
          Props.bp_cols = combine Props.hull_col;
          bp_keys =
            (if (not all) && arity > 0 then [ List.init arity Fun.id ] else []);
          bp_max_rows = None;
          bp_empty = List.for_all (fun i -> i.Props.bp_empty) inputs;
        }
      in
      let p =
        match sum_rows () with Some n -> Props.clamp_rows p n | None -> p
      in
      if p.Props.bp_empty then Props.clamp_rows p 0 else p
    | Ast.Intersect ->
      let p =
        {
          Props.bp_cols = combine Props.meet_col;
          bp_keys =
            (if (not all) && arity > 0 then [ List.init arity Fun.id ]
             else first.Props.bp_keys);
          bp_max_rows =
            List.fold_left
              (fun acc i -> Props.min_rows_opt acc i.Props.bp_max_rows)
              None inputs;
          bp_empty = List.exists (fun i -> i.Props.bp_empty) inputs;
        }
      in
      if p.Props.bp_empty then Props.clamp_rows p 0 else p
    | Ast.Except ->
      let p =
        {
          first with
          Props.bp_keys =
            (if (not all) && arity > 0 then [ List.init arity Fun.id ]
             else first.Props.bp_keys);
          bp_empty = first.Props.bp_empty;
        }
      in
      if p.Props.bp_empty then Props.clamp_rows p 0 else p)

and values_props b rows =
  let arity = Qgm.arity b in
  let env = Prover.make_env () in
  let col i =
    List.fold_left
      (fun acc row ->
        let e = try List.nth row i with _ -> Qgm.Lit Value.Null in
        Props.hull_col acc (Prover.col_of_aval (Prover.aval env e)))
      Props.bot_col rows
  in
  let p =
    {
      Props.bp_cols =
        (if rows = [] then Array.make arity Props.top_col
         else Array.init arity col);
      bp_keys = [];
      bp_max_rows = None;
      bp_empty = rows = [];
    }
  in
  Props.clamp_rows p (List.length rows)

and choose_props visit g b =
  ignore g;
  let arity = Qgm.arity b in
  let inputs = List.map (fun q -> visit q.Qgm.q_input) b.Qgm.b_quants in
  match inputs with
  | [] -> Props.top_box arity
  | first :: rest ->
    let col_at inp i =
      if i < Array.length inp.Props.bp_cols then inp.Props.bp_cols.(i)
      else Props.top_col
    in
    {
      Props.bp_cols =
        Array.init arity (fun i ->
            List.fold_left
              (fun acc inp -> Props.hull_col acc (col_at inp i))
              (col_at first i) rest);
      (* only keys every alternative guarantees survive *)
      bp_keys =
        Props.normalize_keys
          (List.filter
             (fun k -> List.for_all (fun inp -> Props.covers_key inp k) inputs)
             first.Props.bp_keys);
      bp_max_rows =
        List.fold_left
          (fun acc inp ->
            match acc, inp.Props.bp_max_rows with
            | Some a, Some b -> Some (max a b)
            | _ -> None)
          first.Props.bp_max_rows rest;
      bp_empty = List.for_all (fun i -> i.Props.bp_empty) inputs;
    }

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let improvement_sweeps = 2

let analyze ?(trust_stats = false) ~catalog (g : Qgm.t) : t =
  let t = { props = Hashtbl.create 16; trust_stats } in
  let in_progress = Hashtbl.create 8 in
  let rec visit id : Props.box_props =
    match Hashtbl.find_opt t.props id with
    | Some p -> p
    | None ->
      if Hashtbl.mem in_progress id then
        (* back edge of a recursive query: cut with top *)
        Props.top_box (Qgm.arity (Qgm.box g id))
      else begin
        Hashtbl.replace in_progress id ();
        let p = transfer visit g ~catalog ~trust_stats (Qgm.box g id) in
        Hashtbl.remove in_progress id;
        Hashtbl.replace t.props id p;
        p
      end
  in
  if g.Qgm.top >= 0 && Hashtbl.mem g.Qgm.boxes g.Qgm.top then begin
    ignore (visit g.Qgm.top);
    (* re-apply the transfers bottom-up a bounded number of times to
       tighten whatever the back-edge cut left at top *)
    let order = List.rev (Qgm.reachable_boxes g) in
    if List.exists (fun b -> Qgm.is_recursive g b.Qgm.b_id) order then
      for _ = 1 to improvement_sweeps do
        List.iter
          (fun b ->
            let p =
              transfer
                (fun id -> box_props t id)
                g ~catalog ~trust_stats b
            in
            Hashtbl.replace t.props b.Qgm.b_id p)
          order
      done
  end;
  t

(* ------------------------------------------------------------------ *)
(* Queries                                                             *)
(* ------------------------------------------------------------------ *)

(** Facts about column [i] seen through quantifier [qid] (an extension
    setformer such as the outer join's PF hides its input's NOT NULL). *)
let quant_col_prop t g qid i =
  let q = Qgm.quant g qid in
  let p = box_props t q.Qgm.q_input in
  if i < Array.length p.Props.bp_cols then
    through_quant q p.Props.bp_cols.(i)
  else Props.top_col

let col_not_null t g qid i =
  not (quant_col_prop t g qid i).Props.cp_nullable

(** Is column [i] alone a key of the box quantifier [qid] ranges over? *)
let col_unique t g qid i =
  let q = Qgm.quant g qid in
  let p = box_props t q.Qgm.q_input in
  Props.covers_key p [ i ]

let single_row t id = Props.single_row (box_props t id)

(** Does [cols] cover a key of the box [qid] ranges over? *)
let quant_has_key t g qid cols =
  let q = Qgm.quant g qid in
  Props.covers_key (box_props t q.Qgm.q_input) cols

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)
(* ------------------------------------------------------------------ *)

let kind_name = function
  | Qgm.Base_table n -> "BASE " ^ n
  | Qgm.Select -> "SELECT"
  | Qgm.Group_by _ -> "GROUP BY"
  | Qgm.Set_op _ -> "SET OP"
  | Qgm.Values_box _ -> "VALUES"
  | Qgm.Table_fn (n, _) -> "TABLE FN " ^ n
  | Qgm.Choose -> "CHOOSE"
  | Qgm.Ext_op n -> "EXT " ^ n

(** Count of non-trivial derived facts, for the bench report. *)
let fact_count t =
  Hashtbl.fold
    (fun _ p acc ->
      let cols =
        Array.fold_left
          (fun n c ->
            n
            + (if not c.Props.cp_nullable then 1 else 0)
            +
            match c.Props.cp_interval with
            | Some iv when not (Props.is_top_iv iv) -> 1
            | None -> 1
            | _ -> 0)
          0 p.Props.bp_cols
      in
      acc + cols + List.length p.Props.bp_keys
      + (if p.Props.bp_max_rows <> None then 1 else 0)
      + if p.Props.bp_empty then 1 else 0)
    t.props 0

let pp_box t _g ppf (b : Qgm.box) =
  let p = box_props t b.Qgm.b_id in
  Fmt.pf ppf "%s [%s]%s:@," b.Qgm.b_label (kind_name b.Qgm.b_kind)
    (if p.Props.bp_empty then "  PROVABLY EMPTY" else "");
  List.iteri
    (fun i hc ->
      let c =
        if i < Array.length p.Props.bp_cols then p.Props.bp_cols.(i)
        else Props.top_col
      in
      Fmt.pf ppf "  %-16s %a@," hc.Qgm.hc_name Props.pp_col c)
    b.Qgm.b_head;
  if p.Props.bp_keys <> [] then begin
    let col_name i =
      try (Qgm.head_col b i).Qgm.hc_name with _ -> string_of_int i
    in
    let key_str = function
      | [] -> "<single row>"
      | k -> "(" ^ String.concat ", " (List.map col_name k) ^ ")"
    in
    Fmt.pf ppf "  keys: %s@,"
      (String.concat "; " (List.map key_str p.Props.bp_keys))
  end;
  match p.Props.bp_max_rows with
  | Some n -> Fmt.pf ppf "  max rows: %d@," n
  | None -> ()

let to_string t g =
  Fmt.str "%a"
    (fun ppf () ->
      Fmt.pf ppf "@[<v>";
      List.iter (fun b -> pp_box t g ppf b) (Qgm.reachable_boxes g);
      Fmt.pf ppf "@]")
    ()

(* ------------------------------------------------------------------ *)
(* Summaries for the paranoid regression audit                         *)
(* ------------------------------------------------------------------ *)

(** Compare the top box's derived facts before and after a rewrite
    firing; returns human-readable descriptions of facts that were
    {e lost} (the rewrite moved up the lattice).  Arity changes are
    reported as a single incomparability note. *)
let regressions ~(before : Props.box_props) ~(after : Props.box_props) =
  let b = before and a = after in
  if Array.length b.Props.bp_cols <> Array.length a.Props.bp_cols then []
    (* head changed shape: incomparable, not a regression *)
  else begin
    let out = ref [] in
    let note fmt = Fmt.kstr (fun s -> out := s :: !out) fmt in
    Array.iteri
      (fun i cb ->
        let ca = a.Props.bp_cols.(i) in
        if (not cb.Props.cp_nullable) && ca.Props.cp_nullable then
          note "column %d lost NOT NULL" i)
      b.Props.bp_cols;
    List.iter
      (fun k ->
        if not (Props.covers_key a k) then note "lost key %a" Props.pp_key k)
      b.Props.bp_keys;
    (match b.Props.bp_max_rows, a.Props.bp_max_rows with
    | Some nb, Some na when na > nb -> note "row bound loosened %d -> %d" nb na
    | Some nb, None -> note "lost row bound %d" nb
    | _ -> ());
    if b.Props.bp_empty && not a.Props.bp_empty then
      note "lost provable emptiness";
    List.rev !out
  end
