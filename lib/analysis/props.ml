(** The property lattice of the semantic-analysis pass (DESIGN section 6.3).

    Properties describe the {e set} of rows a box can produce: every
    element is an over-approximation, so weakening (towards top) is
    always sound and the fixpoint iteration only ever moves downward
    from top.

    Per column we track whether NULL can appear and an interval
    enclosing all non-null values; per box we track derived keys, a row
    count bound, and provable emptiness. *)

open Sb_storage

(* ------------------------------------------------------------------ *)
(* Intervals over non-null values                                      *)
(* ------------------------------------------------------------------ *)

(** Closed interval; [None] bounds are infinite.  Bounds are [Value.t]
    and compare with {!Value.compare}, which is only meaningful within
    one SQL type — well-typed queries never mix types in a column. *)
type interval = { lo : Value.t option; hi : Value.t option }

let top_iv = { lo = None; hi = None }
let is_top_iv i = i.lo = None && i.hi = None
let point v = { lo = Some v; hi = Some v }

let cmp = Value.compare ?registry:None

(** [None] when the intersection is empty. *)
let meet_iv a b : interval option =
  let lo =
    match a.lo, b.lo with
    | None, x | x, None -> x
    | Some x, Some y -> Some (if cmp x y >= 0 then x else y)
  in
  let hi =
    match a.hi, b.hi with
    | None, x | x, None -> x
    | Some x, Some y -> Some (if cmp x y <= 0 then x else y)
  in
  match lo, hi with
  | Some l, Some h when cmp l h > 0 -> None
  | _ -> Some { lo; hi }

(** Convex hull (over-approximate union). *)
let hull_iv a b =
  let lo =
    match a.lo, b.lo with
    | None, _ | _, None -> None
    | Some x, Some y -> Some (if cmp x y <= 0 then x else y)
  in
  let hi =
    match a.hi, b.hi with
    | None, _ | _, None -> None
    | Some x, Some y -> Some (if cmp x y >= 0 then x else y)
  in
  { lo; hi }

(** Is [a] contained in [b]? *)
let leq_iv a b =
  (match b.lo with
  | None -> true
  | Some bl -> ( match a.lo with None -> false | Some al -> cmp al bl >= 0))
  && match b.hi with
     | None -> true
     | Some bh -> ( match a.hi with None -> false | Some ah -> cmp ah bh <= 0)

let mem_iv v i =
  (match i.lo with None -> true | Some l -> cmp l v <= 0)
  && match i.hi with None -> true | Some h -> cmp v h <= 0

(** Number of integer values in the interval, when both bounds are
    integers (the cardinality bound used for GROUP BY estimates). *)
let int_width i =
  match i.lo, i.hi with
  | Some (Value.Int a), Some (Value.Int b) when b >= a -> Some (b - a + 1)
  | _ -> None

let is_point i =
  match i.lo, i.hi with Some a, Some b -> cmp a b = 0 | _ -> false

let pp_bound ppf = function
  | None -> Fmt.string ppf "*"
  | Some v -> Fmt.string ppf (Value.to_literal v)

let pp_iv ppf i =
  if is_top_iv i then Fmt.string ppf "(-inf,+inf)"
  else Fmt.pf ppf "[%a,%a]" pp_bound i.lo pp_bound i.hi

(* ------------------------------------------------------------------ *)
(* Column properties                                                   *)
(* ------------------------------------------------------------------ *)

(** [cp_interval = None] means the column cannot hold a non-null value
    (it is always NULL, or the box is empty).  [cp_nullable = false]
    means NULL cannot appear. *)
type col_prop = { cp_nullable : bool; cp_interval : interval option }

let top_col = { cp_nullable = true; cp_interval = Some top_iv }

(** A column with no possible value at all: the box is provably empty. *)
let bot_col = { cp_nullable = false; cp_interval = None }

let impossible_col c = (not c.cp_nullable) && c.cp_interval = None

let meet_col a b =
  {
    cp_nullable = a.cp_nullable && b.cp_nullable;
    cp_interval =
      (match a.cp_interval, b.cp_interval with
      | None, _ | _, None -> None
      | Some x, Some y -> meet_iv x y);
  }

let hull_col a b =
  {
    cp_nullable = a.cp_nullable || b.cp_nullable;
    cp_interval =
      (match a.cp_interval, b.cp_interval with
      | None, x | x, None -> x
      | Some x, Some y -> Some (hull_iv x y));
  }

(** Is [a] at least as precise as [b] (a's value set contained in b's)? *)
let leq_col a b =
  ((not a.cp_nullable) || b.cp_nullable)
  && match a.cp_interval, b.cp_interval with
     | None, _ -> true
     | Some _, None -> false
     | Some x, Some y -> leq_iv x y

let pp_col ppf c =
  (match c.cp_interval with
  | None -> Fmt.string ppf (if c.cp_nullable then "NULL" else "(empty)")
  | Some i -> if not (is_top_iv i) then pp_iv ppf i else Fmt.string ppf "any");
  if (not c.cp_nullable) && c.cp_interval <> None then
    Fmt.string ppf " NOT NULL"

(* ------------------------------------------------------------------ *)
(* Box properties                                                      *)
(* ------------------------------------------------------------------ *)

(** A key is a set of head-column indices whose values identify a row;
    the empty key [[]] means "at most one row".  [bp_keys] is kept
    minimal (no key is a superset of another) and each key is sorted. *)
type box_props = {
  bp_cols : col_prop array;
  bp_keys : int list list;
  bp_max_rows : int option;
  bp_empty : bool;
}

let top_box arity =
  {
    bp_cols = Array.make arity top_col;
    bp_keys = [];
    bp_max_rows = None;
    bp_empty = false;
  }

let subset a b = List.for_all (fun x -> List.mem x b) a

(** Sort each key, drop duplicates and supersets of other keys. *)
let normalize_keys keys =
  let keys = List.map (List.sort_uniq Int.compare) keys in
  let keys = List.sort_uniq compare keys in
  List.filter
    (fun k ->
      not (List.exists (fun k' -> k' <> k && subset k' k) keys))
    keys

let add_key p k = { p with bp_keys = normalize_keys (k :: p.bp_keys) }

let min_rows_opt a b =
  match a, b with
  | None, x | x, None -> x
  | Some x, Some y -> Some (min x y)

(** Fold a row-count bound into [p], deriving the empty flag and the
    empty key when the bound is tight enough. *)
let clamp_rows p n =
  let p = { p with bp_max_rows = min_rows_opt p.bp_max_rows (Some n) } in
  let p = if n <= 1 then add_key p [] else p in
  if n <= 0 then { p with bp_empty = true } else p

let single_row p =
  p.bp_empty
  || (match p.bp_max_rows with Some n -> n <= 1 | None -> false)
  || List.mem [] p.bp_keys

(** Does the column set [cols] cover some key of [p]? *)
let covers_key p cols =
  single_row p || List.exists (fun k -> subset k cols) p.bp_keys

(** Is [a] at least as precise as [b] in every tracked dimension?  Used
    by the paranoid-mode regression audit: a rewrite firing that moves
    the top box's properties strictly {e up} the lattice has lost
    derived facts.  Arity mismatch (a rule changed the head) compares
    as incomparable, i.e. [false]. *)
let leq_box a b =
  Array.length a.bp_cols = Array.length b.bp_cols
  && (b.bp_empty = false || a.bp_empty)
  && (match b.bp_max_rows with
     | None -> true
     | Some nb -> ( match a.bp_max_rows with Some na -> na <= nb | None -> false))
  && Array.for_all2 leq_col a.bp_cols b.bp_cols
  && List.for_all (fun kb -> covers_key a kb) b.bp_keys

let pp_key ppf = function
  | [] -> Fmt.string ppf "<single row>"
  | k -> Fmt.pf ppf "(%a)" Fmt.(list ~sep:comma int) k
