(** Multi-session concurrent front end over one Starburst database.

    Each {!session} is an isolated {!Starburst.Corona.t} handle — its own
    SET options, host-variable bindings and resource limits — while all
    sessions of a server share one catalog and one compiled-plan cache.
    Statements run on a pool of OCaml domains behind an admission
    controller: under load, compilation degrades to greedy plans before
    anything queues without bound, and past the high-water mark
    statements are rejected with a structured, retryable [Resource]
    error.

    Within a session, statements execute in submission order.  Across
    sessions, SELECT / EXPLAIN run concurrently; statements that may
    mutate shared state (DML, DDL, ANALYZE) are serialized behind a
    writer lock.  DDL bumps the catalog epoch, lazily invalidating
    stale entries of the shared plan cache. *)

type t
type session

(** A blocking future; {!submit_async} returns one per statement. *)
type 'a promise

val await : 'a promise -> 'a

type config = {
  workers : int;  (** domains in the worker pool *)
  max_inflight : int;
      (** admission high-water mark: statements arriving while this many
          are in flight are rejected (retryable) *)
  degrade_inflight : int;
      (** load-shedding threshold: statements admitted past this point
          compile greedily (rewrite off, greedy STAR strategy) *)
  session_inflight : int;  (** per-session concurrent-statement cap *)
  cache_shards : int;
  cache_capacity : int;
}

(** Sized from [Domain.recommended_domain_count]: [workers] pool
    domains, shedding past [2*workers] in flight, rejecting past
    [4*workers]. *)
val default_config : unit -> config

(** A fresh server (own catalog, shared plan cache, worker pool).
    [limits] is the template copied into each new session's governor.
    [install] runs once per new session — the place to register
    extensions (datatypes, functions, rules) on every session handle. *)
val create :
  ?config:config ->
  ?limits:Sb_resil.Limits.t ->
  ?install:(Starburst.Corona.t -> unit) ->
  unit ->
  t

(** Opens a session.  Fails if the server is shut down. *)
val session : t -> session

val session_id : session -> int

(** The session's database handle, for direct host-variable binding or
    inspection.  Statement execution should go through {!submit} so the
    admission controller and locking discipline apply. *)
val session_db : session -> Starburst.Corona.t

val close_session : t -> session -> unit

(** [(session id, statements in flight)] for every open session. *)
val list_sessions : t -> (int * int) list

(** Submits one statement and blocks for its outcome.  [Error e] carries
    the same structured classification as {!Starburst.Corona.run};
    admission rejections are [Resource] errors with [retryable = true]. *)
val submit :
  t -> session -> string -> (Starburst.Corona.result, Sb_resil.Err.t) result

(** Like {!submit} but returns immediately; rejections resolve the
    promise without touching the worker pool. *)
val submit_async :
  t ->
  session ->
  string ->
  (Starburst.Corona.result, Sb_resil.Err.t) result promise

type stats = {
  st_sessions : int;
  st_inflight : int;
  st_admitted : int;
  st_shed : int;
  st_rejected : int;
  st_epoch : int;  (** current catalog/statistics epoch *)
  st_cache : Starburst.Plan_cache.stats;
}

val stats : t -> stats
val cache_stats : t -> Starburst.Plan_cache.stats
val clear_cache : t -> unit

(** When off, queries compile per call and the shared cache is neither
    read nor written (the bench's cache-off arm). *)
val set_cache_enabled : t -> bool -> unit

val metrics : t -> Sb_obs.Metrics.t
val catalog : t -> Sb_storage.Catalog.t

(** Stops accepting work and joins the worker domains. *)
val shutdown : t -> unit

(** {1 Durability}

    All sessions share the catalog's write-ahead log, so a commit that
    forces the log makes every earlier queued record durable with it
    (group commit). *)

(** The shared write-ahead log. *)
val wal : t -> Sb_storage.Wal.t

val wal_stats : t -> Sb_storage.Wal.stats

(** Forces the shared log (one group commit); called on graceful
    shutdown so no acknowledged work is lost. *)
val flush_wal : t -> unit

(** Runs crash recovery under the writer lock — no session observes the
    half-rebuilt database.
    @raise Starburst.Corona.Error (stage [Storage]) when the WAL is
    disabled. *)
val recover : t -> Sb_storage.Recovery.stats

(** {1 Lock discipline}

    Every lock of the server and its shared storage is a named,
    leveled {!Sb_conc.Lock}/{!Sb_conc.Rwlock}; when the discipline
    checker is armed ([STARBURST_LOCKCHECK=1], tests, [fuzz_main
    --races]) it enforces level ordering, flags re-entrancy and
    unlock-without-lock, runs Eraser-style lockset race detection over
    the instrumented shared fields, and reports cycles in the observed
    lock-acquisition graph. *)

(** Mirrors the checker's [sb_lock_*]/[sb_race_*] counters into this
    server's metrics registry. *)
val sync_lock_metrics : t -> unit

(** Every diagnosis recorded so far, as structured [Concurrency]
    errors. *)
val lock_diags : unit -> Sb_resil.Err.t list

(** The deterministic discipline report (the shell's [\locks]); also
    syncs the checker's counters into the metrics registry. *)
val lock_report : t -> string
