(** The multi-session concurrent front end.

    Starburst's pipeline lives in a {e session}: a per-client
    {!Starburst.Corona.t} handle carrying SET options, host-variable
    bindings and resource limits.  Every session of one server shares a
    single {!Sb_storage.Catalog} (tables, views, extension registries)
    and a single {!Starburst.Plan_cache} — the paper's point that "the
    result of the compilation stage can be stored for future use" pays
    off across clients, not just across calls.

    Statements run on a pool of OCaml domains.  An admission controller
    in front of the pool keeps the server deterministic under overload:
    up to [degrade_inflight] concurrent statements compile at full
    optimization; past that, new statements are {e shed} — compiled with
    the greedy STAR strategy, rewrite off (a cheap plan always exists) —
    and past [max_inflight] they are rejected with a structured,
    retryable [Resource] error rather than queued without bound.

    Consistency model: within a session, statements execute in
    submission order.  Across sessions, reads (SELECT / EXPLAIN) run
    concurrently; any statement that may mutate shared state (DML, DDL,
    ANALYZE) takes the server's writer lock, so readers never observe a
    half-applied write.  DDL bumps the catalog epoch, which lazily
    invalidates every stale entry of the shared plan cache. *)

module Corona = Starburst.Corona
module Plan_cache = Starburst.Plan_cache
module Generator = Starburst.Generator
module Star = Starburst.Star
module Catalog = Sb_storage.Catalog
module Err = Sb_resil.Err
module Limits = Sb_resil.Limits
module Metrics = Sb_obs.Metrics

(* ------------------------------------------------------------------ *)
(* Promises and the statement rwlock (now in lib/conc)                 *)
(* ------------------------------------------------------------------ *)

module Promise = Sb_conc.Promise
module Rwlock = Sb_conc.Rwlock
module Lock = Sb_conc.Lock

type 'a promise = 'a Promise.t

let promise = Promise.create
let resolve = Promise.resolve
let resolved = Promise.resolved
let await = Promise.await

(* the race detector's view of the admission counters + session table *)
let watch_state ~site ~write =
  Sb_conc.Discipline.access ~field:"server.state" ~site ~write

(* ------------------------------------------------------------------ *)
(* Worker pool                                                         *)
(* ------------------------------------------------------------------ *)

type pool = {
  q_lock : Lock.t;
  q_cond : Lock.Cond.cond;
  jobs : (unit -> unit) Queue.t;
  mutable q_stop : bool;
  mutable domains : unit Domain.t array;
}

let worker_loop pool () =
  let rec next () =
    Lock.lock pool.q_lock;
    while Queue.is_empty pool.jobs && not pool.q_stop do
      Lock.Cond.wait pool.q_cond pool.q_lock
    done;
    if Queue.is_empty pool.jobs then (
      (* stopping, queue drained *)
      Lock.unlock pool.q_lock)
    else begin
      let job = Queue.pop pool.jobs in
      Lock.unlock pool.q_lock;
      (try job () with _ -> () (* jobs resolve their own promises *));
      next ()
    end
  in
  next ()

let pool_create n =
  let pool =
    {
      q_lock =
        Lock.create ~name:"server.pool" ~level:Sb_conc.Level.server_pool;
      q_cond = Lock.Cond.create ();
      jobs = Queue.create ();
      q_stop = false;
      domains = [||];
    }
  in
  pool.domains <- Array.init n (fun _ -> Domain.spawn (worker_loop pool));
  pool

(* [quiet] skips waking a worker: only safe when the pusher is about to
   help-drain the queue itself (see [await_helping] — helpers never
   sleep while jobs are queued, so quiet jobs cannot be stranded). *)
let pool_push ?(quiet = false) pool job =
  if (not quiet) && Array.length pool.domains = 0 then
    (* empty pool (single-core box): the async path degenerates to
       running the statement on the submitting domain *)
    try job () with _ -> () (* jobs resolve their own promises *)
  else begin
    Lock.lock pool.q_lock;
    Queue.push job pool.jobs;
    if not quiet then Lock.Cond.signal pool.q_cond;
    Lock.unlock pool.q_lock
  end

let pool_try_pop pool =
  Lock.lock pool.q_lock;
  let job =
    if Queue.is_empty pool.jobs then None else Some (Queue.pop pool.jobs)
  in
  Lock.unlock pool.q_lock;
  job

(* Help-first await: while the promise is unresolved, the blocking
   caller pops queued jobs and runs them on its own domain instead of
   sleeping.  Jobs never block on other promises, so helping cannot
   deadlock.  On a small machine this turns the client/worker handoff
   into a plain call; on a big one it adds the caller's core to the
   pool for exactly as long as it would otherwise idle. *)
let await_helping pool p =
  let rec loop () =
    match Promise.peek p with
    | Some v -> v
    | None -> (
      match pool_try_pop pool with
      | Some job ->
        (try job () with _ -> () (* jobs resolve their own promises *));
        loop ()
      | None -> await p)
  in
  loop ()

let pool_shutdown pool =
  Lock.lock pool.q_lock;
  pool.q_stop <- true;
  Lock.Cond.broadcast pool.q_cond;
  Lock.unlock pool.q_lock;
  Array.iter Domain.join pool.domains;
  pool.domains <- [||]

(* ------------------------------------------------------------------ *)
(* Server                                                              *)
(* ------------------------------------------------------------------ *)

type config = {
  workers : int;  (** domains in the worker pool *)
  max_inflight : int;
      (** admission high-water mark: statements admitted while this many
          are already in flight are rejected with a retryable error *)
  degrade_inflight : int;
      (** load-shedding threshold: statements admitted past this point
          compile greedily (rewrite off, greedy STAR strategy) *)
  session_inflight : int;  (** per-session concurrent-statement cap *)
  cache_shards : int;
  cache_capacity : int;
}

(* Sized to the hardware: every extra domain makes the stop-the-world
   minor-GC barrier wider, so on a single-core box the pool is empty
   and help-first callers do all the driving. *)
let default_config () =
  let workers = max 0 (min 8 (Domain.recommended_domain_count () - 1)) in
  {
    workers;
    (* floors keep an empty pool admitting: help-first callers still
       execute, so capacity never drops to zero *)
    max_inflight = max 8 (4 * workers);
    degrade_inflight = max 6 (2 * workers);
    session_inflight = 4;
    cache_shards = 8;
    cache_capacity = 1024;
  }

type session = {
  s_id : int;
  s_db : Corona.t;
  s_lock : Lock.t;  (** statements of one session run in order *)
  mutable s_inflight : int;
  mutable s_closed : bool;
}

type t = {
  catalog : Catalog.t;
  cache : Corona.prepared Plan_cache.t;
  metrics : Metrics.t;
  config : config;
  limits_template : Limits.t;  (** copied into each new session *)
  install : (Corona.t -> unit) option;
      (** per-session extension installer (runs on every new session) *)
  lock : Lock.t;  (** guards sessions, counters, admission decisions *)
  sessions : (int, session) Hashtbl.t;
  mutable next_session : int;
  mutable inflight : int;
  mutable admitted : int;
  mutable shed : int;
  mutable rejected : int;
  mutable cache_enabled : bool;
  mutable closed : bool;
  rw : Rwlock.t;
  pool : pool;
}

type stats = {
  st_sessions : int;
  st_inflight : int;
  st_admitted : int;
  st_shed : int;
  st_rejected : int;
  st_epoch : int;
  st_cache : Plan_cache.stats;
}

let locked t f = Lock.with_lock t.lock f

let create ?config ?limits ?install () =
  let config = match config with Some c -> c | None -> default_config () in
  let limits_template =
    match limits with Some l -> l | None -> Limits.apply_env (Limits.default ())
  in
  let metrics = Metrics.create () in
  {
    catalog = Catalog.create ();
    cache =
      Plan_cache.create ~shards:config.cache_shards
        ~capacity:config.cache_capacity ~metrics ();
    metrics;
    config;
    limits_template;
    install;
    lock =
      Lock.create ~name:"server.admission"
        ~level:Sb_conc.Level.server_admission;
    sessions = Hashtbl.create 16;
    next_session = 0;
    inflight = 0;
    admitted = 0;
    shed = 0;
    rejected = 0;
    cache_enabled = true;
    closed = false;
    rw =
      Rwlock.create ~name:"server.statements"
        ~level:Sb_conc.Level.server_statements;
    pool = pool_create config.workers;
  }

let metrics t = t.metrics
let catalog t = t.catalog
let set_cache_enabled t on =
  locked t (fun () ->
      watch_state ~site:"Sb_server.set_cache_enabled" ~write:true;
      t.cache_enabled <- on)
let cache_stats t = Plan_cache.stats t.cache
let clear_cache t = Plan_cache.clear t.cache

let session t =
  let db =
    Corona.create ~catalog:t.catalog ~plan_cache:t.cache
      ~limits:(Limits.copy t.limits_template) ()
  in
  Option.iter (fun f -> f db) t.install;
  locked t (fun () ->
      watch_state ~site:"Sb_server.session" ~write:true;
      if t.closed then failwith "Sb_server.session: server is shut down";
      let id = t.next_session in
      t.next_session <- id + 1;
      let s =
        {
          s_id = id;
          s_db = db;
          s_lock =
            Lock.create ~name:"server.session"
              ~level:Sb_conc.Level.server_session;
          s_inflight = 0;
          s_closed = false;
        }
      in
      Hashtbl.replace t.sessions id s;
      s)

let session_id s = s.s_id
let session_db s = s.s_db

let close_session t s =
  locked t (fun () ->
      watch_state ~site:"Sb_server.close_session" ~write:true;
      s.s_closed <- true;
      Hashtbl.remove t.sessions s.s_id)

let list_sessions t =
  locked t (fun () ->
      watch_state ~site:"Sb_server.list_sessions" ~write:false;
      Hashtbl.fold (fun id s acc -> (id, s.s_inflight) :: acc) t.sessions [])
  |> List.sort compare

let stats t =
  let sessions, inflight, admitted, shed, rejected =
    locked t (fun () ->
        watch_state ~site:"Sb_server.stats" ~write:false;
        (Hashtbl.length t.sessions, t.inflight, t.admitted, t.shed, t.rejected))
  in
  {
    st_sessions = sessions;
    st_inflight = inflight;
    st_admitted = admitted;
    st_shed = shed;
    st_rejected = rejected;
    st_epoch = Catalog.epoch t.catalog;
    st_cache = cache_stats t;
  }

(* ------------------------------------------------------------------ *)
(* Statement classification                                            *)
(* ------------------------------------------------------------------ *)

let first_word text =
  let n = String.length text in
  let is_sep c = c = ' ' || c = '\t' || c = '\n' || c = '\r' || c = '(' in
  let i = ref 0 in
  while !i < n && is_sep text.[!i] do incr i done;
  let start = !i in
  while !i < n && not (is_sep text.[!i]) do incr i done;
  String.lowercase_ascii (String.sub text start (!i - start))

(* [`Query] goes through the shared plan cache; [`Read] runs without
   caching but still under the reader lock; [`Write] may mutate shared
   state (DML, DDL, ANALYZE) and takes the writer lock.  SET only
   mutates the session handle, so it reads. *)
let classify text =
  match first_word text with
  | "select" | "with" -> `Query
  | "explain" | "set" -> `Read
  | _ -> `Write

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)
(* ------------------------------------------------------------------ *)

let classify_error text exn : Err.t =
  match Corona.classify_exn text exn with
  | Some (Corona.Error e) -> e
  | _ -> (
    match exn with
    | Corona.Error e | Err.Error e -> e
    | Sb_conc.Discipline.Violation d ->
      Err.with_query text (Err.of_lock_diag d)
    | exn -> Err.make ~query:text Err.Internal (Printexc.to_string exn))

(* the cached fast path: like [Corona.cached_query], but returning a
   full [Corona.result] (the prepared plan carries its column names) *)
let run_query_cached db text : Corona.result =
  let key = Corona.plan_cache_key db text in
  let epoch = Catalog.epoch db.Corona.catalog in
  let p =
    match Plan_cache.find db.Corona.plan_cache ~epoch key with
    | Some p -> p
    | None ->
      let p = Corona.prepare db text in
      if Corona.last_degraded db = None then
        Plan_cache.add db.Corona.plan_cache ~epoch key p;
      p
  in
  Corona.Rows
    {
      columns = p.Corona.prep_columns;
      rows = Corona.execute_prepared db p;
    }

(* runs [f] with the session's compiler flipped to its cheapest
   settings; the settings fingerprint keys shed plans separately, so a
   shed compilation never masquerades as a fully optimized one *)
let with_shed db f =
  let sctx = db.Corona.optimizer.Generator.sctx in
  let saved_strategy = sctx.Star.strategy in
  let saved_rewrite = db.Corona.rewrite_enabled in
  sctx.Star.strategy <- Star.greedy_strategy;
  db.Corona.rewrite_enabled <- false;
  Fun.protect
    ~finally:(fun () ->
      sctx.Star.strategy <- saved_strategy;
      db.Corona.rewrite_enabled <- saved_rewrite)
    f

let bump t name = Metrics.incr (Metrics.counter t.metrics name)

let execute t s ~shed ~use_cache text : (Corona.result, Err.t) result =
  let kind = classify text in
  let run () =
    Lock.with_lock s.s_lock (fun () ->
        let go () =
          match kind with
          | `Query when use_cache -> run_query_cached s.s_db text
          | _ -> Corona.run s.s_db text
        in
        if shed then with_shed s.s_db go else go ())
  in
  match
    match kind with
    | `Query | `Read -> Rwlock.with_read t.rw run
    | `Write -> Rwlock.with_write t.rw run
  with
  | result -> Ok result
  | exception ((Stack_overflow | Out_of_memory) as exn) -> raise exn
  | exception exn -> Error (classify_error text exn)

(* ------------------------------------------------------------------ *)
(* Admission + submission                                              *)
(* ------------------------------------------------------------------ *)

let reject t ~msg text =
  locked t (fun () ->
      watch_state ~site:"Sb_server.reject" ~write:true;
      t.rejected <- t.rejected + 1);
  bump t "sb_server_rejected_total";
  Error (Err.make ~query:text ~retryable:true Err.Resource msg)

(* The admission decision and the counters move together under the
   server lock; the statement itself runs on a pool domain. *)
let submit_with ~quiet t s (text : string) :
    (Corona.result, Err.t) result promise =
  let decision =
    locked t (fun () ->
        watch_state ~site:"Sb_server.submit" ~write:true;
        if t.closed then `Closed
        else if s.s_closed then `Session_closed
        else if t.inflight >= t.config.max_inflight then `Reject
        else if s.s_inflight >= t.config.session_inflight then `Session_cap
        else begin
          t.inflight <- t.inflight + 1;
          s.s_inflight <- s.s_inflight + 1;
          t.admitted <- t.admitted + 1;
          (* the cache flag is sampled here, under the lock, not in the
             job closure — a concurrent [set_cache_enabled] must not
             race the statement's own read of it *)
          let use_cache = t.cache_enabled in
          if t.inflight > t.config.degrade_inflight then begin
            t.shed <- t.shed + 1;
            `Admit (true, use_cache)
          end
          else `Admit (false, use_cache)
        end)
  in
  match decision with
  | `Closed ->
    resolved (Error (Err.make ~query:text Err.Resource "server is shut down"))
  | `Session_closed ->
    resolved (Error (Err.make ~query:text Err.Resource "session is closed"))
  | `Reject ->
    resolved
      (reject t text
         ~msg:
           (Fmt.str "server over capacity (%d statements in flight); retry"
              t.config.max_inflight))
  | `Session_cap ->
    resolved
      (reject t text
         ~msg:
           (Fmt.str "session over its concurrency limit (%d); retry"
              t.config.session_inflight))
  | `Admit (shed, use_cache) ->
    bump t "sb_server_admitted_total";
    if shed then bump t "sb_server_shed_total";
    let p = promise () in
    pool_push ~quiet t.pool (fun () ->
        let outcome =
          try execute t s ~shed ~use_cache text
          with exn -> Error (classify_error text exn)
        in
        locked t (fun () ->
            watch_state ~site:"Sb_server.statement_done" ~write:true;
            t.inflight <- t.inflight - 1;
            s.s_inflight <- s.s_inflight - 1);
        resolve p outcome);
    p

let submit_async t s text = submit_with ~quiet:false t s text

(* the blocking path pushes quietly and helps drain the queue itself:
   on a loaded box the statement usually runs as a plain call on the
   caller's domain, with the pool as overflow *)
let submit t s text = await_helping t.pool (submit_with ~quiet:true t s text)

let shutdown t =
  locked t (fun () ->
      watch_state ~site:"Sb_server.shutdown" ~write:true;
      t.closed <- true);
  pool_shutdown t.pool

(* ------------------------------------------------------------------ *)
(* Durability                                                          *)
(* ------------------------------------------------------------------ *)

let wal t = t.catalog.Catalog.wal
let wal_stats t = Sb_storage.Wal.stats (wal t)

(** Forces the shared log: everything any session has queued becomes
    durable (one group commit).  Called by the TCP server on graceful
    shutdown so no acknowledged work is lost. *)
let flush_wal t = Sb_storage.Wal.flush (wal t)

(** Runs crash recovery under the writer lock — no session can observe
    the half-rebuilt database.  A scratch session replays the logged
    DDL, so extensions installed by [install] are available to it.
    @raise Corona.Error (stage [Storage]) when the WAL is disabled. *)
let recover t : Sb_storage.Recovery.stats =
  Rwlock.with_write t.rw @@ fun () ->
  let db =
    Corona.create ~catalog:t.catalog ~plan_cache:t.cache
      ~limits:(Limits.copy t.limits_template) ()
  in
  Option.iter (fun f -> f db) t.install;
  Corona.recover db

(* ------------------------------------------------------------------ *)
(* Lock discipline                                                     *)
(* ------------------------------------------------------------------ *)

(** Mirrors the discipline checker's counters ([sb_lock_*] /
    [sb_race_*]) into this server's metrics registry, so [\metrics]
    and the Prometheus dump include them. *)
let sync_lock_metrics t =
  List.iter
    (fun (name, v) -> Metrics.set (Metrics.counter t.metrics name) v)
    (Sb_conc.Discipline.metric_counters ())

(** Every diagnosis the checker has recorded, as structured errors. *)
let lock_diags () =
  List.map Err.of_lock_diag (Sb_conc.Discipline.diags ())

(** The deterministic lock-discipline report (hierarchy, acquisition
    graph, cycles, instrumented fields, diagnoses) — the shell's
    [\locks].  Also syncs the checker's counters into the metrics
    registry. *)
let lock_report t =
  sync_lock_metrics t;
  Sb_conc.Discipline.report_text ()
