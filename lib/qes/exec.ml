(** The Query Evaluation System (section 7).

    Plans are interpreted against the database through an algebraic,
    stream-based interface.  The hot operators — base scans, filters,
    projections, sorts, hash aggregation, set operations and hash/merge
    joins — execute {e batch-at-a-time}: they exchange columnar row
    batches of up to {!Batch.capacity} rows with per-batch selection
    vectors (see {!Batch}), charged to the governor and accounted at
    batch granularity.  Operators without a vectorized body — and the
    plan root — keep the original lazy [Tuple.t Seq.t] interface;
    {!Batch.of_seq} / {!Batch.to_seq} adapt at every boundary, chosen
    node by node via {!Sb_optimizer.Plan.batch_capable}, so the two
    engines compose freely within one plan and the tuple-at-a-time
    engine survives as a differential oracle ([SET vectorized = off]).

    Join {e methods} (nested-loop, sort-merge, hash) are control
    structures; join {e kinds} (regular, exists, op-ALL, scalar,
    DBC set-predicates, and extension kinds such as left-outer) are the
    functions performed during the join — a single operator handles many
    kinds, and new kinds register in {!register_join_kind}.  Extension
    kinds see materialized [Tuple.t]s under both engines, so existing
    registrations run unchanged.

    Subqueries — correlated or not — run through a single uniform
    {e evaluate-on-demand} mechanism: an inner plan is (re)evaluated
    only when its correlation parameters change, with a cache keyed on
    the parameter values.

    Runtime failures raise structured {!Sb_resil.Err} values with stage
    [Exec]. *)

open Sb_storage
module Ast = Sb_hydrogen.Ast
module Functions = Sb_hydrogen.Functions
module Err = Sb_resil.Err
open Sb_optimizer.Plan

let error fmt = Fmt.kstr (fun s -> raise (Err.Error (Err.make Err.Exec s))) fmt

(* ------------------------------------------------------------------ *)
(* Execution context                                                   *)
(* ------------------------------------------------------------------ *)

type counters = {
  mutable c_scanned : int;  (** tuples read from base tables *)
  mutable c_index_probes : int;
  mutable c_shipped : int;
  mutable c_sorted : int;
  mutable c_sub_evals : int;  (** subquery (re)materializations *)
  mutable c_sub_cache_hits : int;
  mutable c_or_branch_evals : int;
  mutable c_fixpoint_rounds : int;
  mutable c_batches : int;  (** batches emitted by vectorized operators *)
  mutable c_output : int;
}

let fresh_counters () =
  {
    c_scanned = 0;
    c_index_probes = 0;
    c_shipped = 0;
    c_sorted = 0;
    c_sub_evals = 0;
    c_sub_cache_hits = 0;
    c_or_branch_evals = 0;
    c_fixpoint_rounds = 0;
    c_batches = 0;
    c_output = 0;
  }

(** An extension join kind: given the outer tuple, the (filtered by
    equi-columns, if hash/merge) inner tuples, and the kind predicate
    over the concatenated row, produce output rows. *)
type kind_impl =
  outer:Tuple.t ->
  inners:Tuple.t list ->
  pred:(Tuple.t -> bool option) ->
  inner_width:int ->
  Tuple.t list

type db = {
  x_cat : Catalog.t;
  x_fns : Functions.t;
  x_kinds : (string, kind_impl) Hashtbl.t;  (** extension join kinds *)
  mutable x_demand_cache : bool;
      (** evaluate-on-demand correlation caching (on by default; the
          bench harness turns it off to measure its effect) *)
  mutable x_vectorized : bool;
      (** batch-at-a-time execution of capable operators (on by
          default; [SET vectorized = off] selects the tuple-at-a-time
          engine, the differential-testing oracle) *)
}

let make_db ~catalog ~functions =
  { x_cat = catalog; x_fns = functions; x_kinds = Hashtbl.create 4;
    x_demand_cache = true; x_vectorized = true }

let register_join_kind db name impl = Hashtbl.replace db.x_kinds name impl

(* physical-identity keyed caches for subquery / TEMP materializations *)
type cache_entry = {
  ce_key : Obj.t;
  ce_table : (Value.t list, Obj.t) Hashtbl.t;
}

(** Per-operator runtime accounting for EXPLAIN ANALYZE: rows produced
    (across all re-evaluations, e.g. of a join's inner), batches
    emitted (0 for tuple-at-a-time operators), and inclusive elapsed
    time.  Row counts are exact under both engines. *)
type op_stats = {
  mutable os_rows : int;
  mutable os_batches : int;
  mutable os_ns : int64;
}

(* op_stats per plan node, keyed by physical identity; allocated on
   demand so subplans embedded in expressions are covered too *)
type analysis = (Sb_optimizer.Plan.plan * op_stats) list ref

(* The build side of a vectorized hash/merge join: every inner row in
   build order, its key prehashed into a flat int array, and bucket
   chains threaded through a power-of-two partition directory.  Two
   passes, a fixed number of allocations, no per-key boxing. *)
type hash_side = {
  hs_rows : Tuple.t array;  (* inner rows, build order *)
  hs_hashes : int array;  (* prehashed keys; -1 = NULL key, never matches *)
  hs_next : int array;  (* bucket chain links (reverse build order) *)
  hs_heads : int array;  (* partition directory *)
  hs_mask : int;
}

(* combined hash of one row's key columns; -1 when any column is NULL
   (SQL: NULL never joins).  Equal ints and floats hash alike, matching
   [Value.compare] equality on the probe. *)
let join_key_hash (row : Tuple.t) (slots : int array) =
  let acc = ref 0x331 and ok = ref true in
  for k = 0 to Array.length slots - 1 do
    let v = row.(slots.(k)) in
    if Value.is_null v then ok := false
    else
      (* FNV-style mix: no tuple allocation per combine step *)
      acc := (!acc * 0x01000193) lxor Value.hash v
  done;
  if !ok then !acc land max_int else -1

type ectx = {
  db : db;
  hosts : (string * Value.t) list;
  counters : counters;
  gov : Sb_resil.Limits.gov;  (** per-query resource governor *)
  mutable caches : cache_entry list;
  mutable deltas : Tuple.t list list;  (** fixpoint delta stack *)
  instr : analysis option;  (** per-operator accounting when analyzing *)
}

let stats_for (tbl : analysis) p =
  match List.find_opt (fun (q, _) -> q == p) !tbl with
  | Some (_, st) -> st
  | None ->
    let st = { os_rows = 0; os_batches = 0; os_ns = 0L } in
    tbl := (p, st) :: !tbl;
    st

let cache_for ectx (key : Obj.t) : (Value.t list, Obj.t) Hashtbl.t =
  match List.find_opt (fun ce -> ce.ce_key == key) ectx.caches with
  | Some ce -> ce.ce_table
  | None ->
    let ce = { ce_key = key; ce_table = Hashtbl.create 8 } in
    ectx.caches <- ce :: ectx.caches;
    ce.ce_table

(* ------------------------------------------------------------------ *)
(* Three-valued logic helpers                                          *)
(* ------------------------------------------------------------------ *)

let registry ectx = ectx.db.x_cat.Catalog.datatypes

let bool3 = function
  | Value.Null -> None
  | Value.Bool b -> Some b
  | v -> error "boolean expected, got %s" (Value.to_string v)

let of_bool3 = function None -> Value.Null | Some b -> Value.Bool b

let and3 a b =
  match a, b with
  | Some false, _ | _, Some false -> Some false
  | Some true, x | x, Some true -> x
  | None, None -> None

let or3 a b =
  match a, b with
  | Some true, _ | _, Some true -> Some true
  | Some false, x | x, Some false -> x
  | None, None -> None

let not3 = Option.map not

(* SQL LIKE with % and _ *)
let like_match ~pattern s =
  let np = String.length pattern and ns = String.length s in
  let rec go p i =
    if p >= np then i >= ns
    else
      match pattern.[p] with
      | '%' ->
        let rec try_from j = j <= ns && (go (p + 1) j || try_from (j + 1)) in
        try_from i
      | '_' -> i < ns && go (p + 1) (i + 1)
      | c -> i < ns && s.[i] = c && go (p + 1) (i + 1)
  in
  go 0 0

(* ------------------------------------------------------------------ *)
(* Expression evaluation                                               *)
(* ------------------------------------------------------------------ *)

let rec eval ectx ~(row : Value.t array) ~(params : Value.t array) (e : rexpr) :
    Value.t =
  match e with
  | RLit v -> v
  | RCol i ->
    if i < Array.length row then row.(i)
    else error "slot %d out of range (width %d)" i (Array.length row)
  | RParam i ->
    if i < Array.length params then params.(i)
    else error "parameter %d unbound" i
  | RHost name -> (
    match List.assoc_opt name ectx.hosts with
    | Some v -> v
    | None -> error "host variable :%s is not bound" name)
  | RBin (op, a, b) -> eval_bin ectx ~row ~params op a b
  | RUn (Ast.Neg, a) -> (
    match eval ectx ~row ~params a with
    | Value.Null -> Value.Null
    | Value.Int x -> Value.Int (-x)
    | Value.Float x -> Value.Float (-.x)
    | v -> error "cannot negate %s" (Value.to_string v))
  | RUn (Ast.Not, a) -> of_bool3 (not3 (bool3 (eval ectx ~row ~params a)))
  | RFun (name, args) -> (
    match Functions.find_scalar ectx.db.x_fns name with
    | Some f -> f.Functions.sf_eval (List.map (eval ectx ~row ~params) args)
    | None -> error "unknown function %s" name)
  | RCase (arms, els) -> (
    let rec go = function
      | [] -> ( match els with Some e -> eval ectx ~row ~params e | None -> Value.Null)
      | (c, v) :: rest ->
        if bool3 (eval ectx ~row ~params c) = Some true then
          eval ectx ~row ~params v
        else go rest
    in
    go arms)
  | RIs_null a -> Value.Bool (Value.is_null (eval ectx ~row ~params a))
  | RLike (a, pattern) -> (
    match eval ectx ~row ~params a with
    | Value.Null -> Value.Null
    | v -> Value.Bool (like_match ~pattern (Value.as_string v)))
  | RSub spec -> eval_sub ectx ~row ~params spec
  | RScalar_sub spec -> eval_scalar_sub ectx ~row ~params spec

and eval_bin ectx ~row ~params op a b =
  match op with
  | Ast.And ->
    of_bool3
      (and3
         (bool3 (eval ectx ~row ~params a))
         (bool3 (eval ectx ~row ~params b)))
  | Ast.Or ->
    of_bool3
      (or3 (bool3 (eval ectx ~row ~params a)) (bool3 (eval ectx ~row ~params b)))
  | _ -> (
    let va = eval ectx ~row ~params a in
    let vb = eval ectx ~row ~params b in
    if Value.is_null va || Value.is_null vb then Value.Null
    else
      match op with
      | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod -> arith op va vb
      | Ast.Concat -> Value.String (Value.to_string va ^ Value.to_string vb)
      | Ast.Eq | Ast.Neq | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge ->
        let c = Value.compare ~registry:(registry ectx) va vb in
        Value.Bool
          (match op with
          | Ast.Eq -> c = 0
          | Ast.Neq -> c <> 0
          | Ast.Lt -> c < 0
          | Ast.Le -> c <= 0
          | Ast.Gt -> c > 0
          | Ast.Ge -> c >= 0
          | _ -> assert false)
      | Ast.And | Ast.Or -> assert false)

and arith op va vb =
  match va, vb with
  | Value.Int x, Value.Int y -> (
    match op with
    | Ast.Add -> Value.Int (x + y)
    | Ast.Sub -> Value.Int (x - y)
    | Ast.Mul -> Value.Int (x * y)
    | Ast.Div -> if y = 0 then Value.Null else Value.Int (x / y)
    | Ast.Mod -> if y = 0 then Value.Null else Value.Int (x mod y)
    | _ -> assert false)
  | (Value.Int _ | Value.Float _), (Value.Int _ | Value.Float _) -> (
    let x = Value.as_float va and y = Value.as_float vb in
    match op with
    | Ast.Add -> Value.Float (x +. y)
    | Ast.Sub -> Value.Float (x -. y)
    | Ast.Mul -> Value.Float (x *. y)
    | Ast.Div -> if y = 0.0 then Value.Null else Value.Float (x /. y)
    | Ast.Mod -> Value.Float (Float.rem x y)
    | _ -> assert false)
  | _ ->
    error "arithmetic over %s and %s" (Value.to_string va) (Value.to_string vb)

(** Evaluate-on-demand for an embedded quantified subquery: the inner
    rows are materialized once per distinct parameter binding. *)
and eval_sub ectx ~row ~params (spec : sub_spec) : Value.t =
  let bound =
    List.map (fun p -> eval ectx ~row ~params p) spec.sub_params
  in
  let rows = demand_rows ectx (Obj.repr spec) spec.sub_plan bound in
  let inner_params = Array.of_list bound in
  let truth inner =
    bool3 (eval ectx ~row:inner ~params:inner_params spec.sub_pred)
  in
  let result =
    match spec.sub_kind with
    | Sk_exists ->
      let rec go = function
        | [] -> Some false
        | r :: rest -> (
          match truth r with
          | Some true -> Some true
          | Some false -> go rest
          | None -> ( match go rest with Some true -> Some true | _ -> None))
      in
      go rows
    | Sk_all ->
      let rec go = function
        | [] -> Some true
        | r :: rest -> (
          match truth r with
          | Some false -> Some false
          | Some true -> go rest
          | None -> ( match go rest with Some false -> Some false | _ -> None))
      in
      go rows
    | Sk_set_pred name -> (
      match Functions.find_set_predicate ectx.db.x_fns name with
      | Some f -> f.Functions.spf_combine (Seq.map truth (List.to_seq rows))
      | None -> error "unknown set predicate %s" name)
  in
  of_bool3 result

and eval_scalar_sub ectx ~row ~params (spec : scalar_sub_spec) : Value.t =
  let bound = List.map (fun p -> eval ectx ~row ~params p) spec.ssub_params in
  let rows = demand_rows ectx (Obj.repr spec) spec.ssub_plan bound in
  match rows with
  | [] -> Value.Null
  | [ r ] -> r.(0)
  | _ :: _ :: _ -> error "scalar subquery returned more than one row"

(** The uniform demand-driven materialization with correlation caching. *)
and demand_rows ectx (key : Obj.t) (plan : plan) (bound : Value.t list) :
    Tuple.t list =
  if not ectx.db.x_demand_cache then begin
    ectx.counters.c_sub_evals <- ectx.counters.c_sub_evals + 1;
    collect ectx ~params:(Array.of_list bound) plan
  end
  else
  let table = cache_for ectx key in
  match Hashtbl.find_opt table bound with
  | Some rows ->
    ectx.counters.c_sub_cache_hits <- ectx.counters.c_sub_cache_hits + 1;
    (Obj.obj rows : Tuple.t list)
  | None ->
    ectx.counters.c_sub_evals <- ectx.counters.c_sub_evals + 1;
    let rows = collect ectx ~params:(Array.of_list bound) plan in
    Hashtbl.replace table bound (Obj.repr rows);
    rows

(* ------------------------------------------------------------------ *)
(* Operators                                                           *)
(* ------------------------------------------------------------------ *)

(** Runs [plan] to a list (materializes the stream). *)
and collect ectx ~params (plan : plan) : Tuple.t list =
  List.of_seq (stream ectx ~params plan)

(** Interprets [plan] as a lazy tuple sequence — the engine boundary.
    Batch-capable nodes route through the vectorized engine (their
    whole capable subtree runs batched; this adapter unchunks at the
    top); the rest take the tuple-at-a-time path, whose {e inputs}
    recurse through here and so vectorize again where they can.  When
    analyzing, every operator is wrapped to count rows (and batches)
    and accumulate inclusive elapsed time. *)
and stream ectx ~params (p : plan) : Tuple.t Seq.t =
  if ectx.db.x_vectorized && Sb_optimizer.Plan.batch_capable p then
    Batch.to_seq (batches ectx ~params p)
  else begin
    (* cooperative governor checks: one operator-invocation charge per
       stream instantiation, one intermediate-row charge per tuple any
       operator produces *)
    Sb_resil.Limits.charge_op ectx.gov;
    let s = instr_stream ectx ~params p in
    Seq.map
      (fun row ->
        Sb_resil.Limits.charge_row ectx.gov;
        row)
      s
  end

(** The batch-granularity face of {!stream}: one operator-invocation
    charge per instantiation, one bulk intermediate-row charge per
    batch. *)
and batches ectx ~params (p : plan) : Batch.t Seq.t =
  Sb_resil.Limits.charge_op ectx.gov;
  Seq.map
    (fun b ->
      ectx.counters.c_batches <- ectx.counters.c_batches + 1;
      Sb_resil.Limits.charge_rows ectx.gov (Batch.count b);
      b)
    (instr_batches ectx ~params p)

and instr_batches ectx ~params (p : plan) : Batch.t Seq.t =
  match ectx.instr with
  | None -> op_batches ectx ~params p
  | Some tbl ->
    let st = stats_for tbl p in
    let t0 = Sb_obs.Trace.now_ns () in
    let s = op_batches ectx ~params p in
    st.os_ns <- Int64.add st.os_ns (Int64.sub (Sb_obs.Trace.now_ns ()) t0);
    let rec timed s () =
      let t0 = Sb_obs.Trace.now_ns () in
      let node = s () in
      st.os_ns <- Int64.add st.os_ns (Int64.sub (Sb_obs.Trace.now_ns ()) t0);
      match node with
      | Seq.Nil -> Seq.Nil
      | Seq.Cons (b, rest) ->
        st.os_rows <- st.os_rows + Batch.count b;
        st.os_batches <- st.os_batches + 1;
        Seq.Cons (b, timed rest)
    in
    timed s

and instr_stream ectx ~params (p : plan) : Tuple.t Seq.t =
  match ectx.instr with
  | None -> op_stream ectx ~params p
  | Some tbl ->
    let st = stats_for tbl p in
    let t0 = Sb_obs.Trace.now_ns () in
    let s = op_stream ectx ~params p in
    st.os_ns <- Int64.add st.os_ns (Int64.sub (Sb_obs.Trace.now_ns ()) t0);
    let rec timed s () =
      let t0 = Sb_obs.Trace.now_ns () in
      let node = s () in
      st.os_ns <- Int64.add st.os_ns (Int64.sub (Sb_obs.Trace.now_ns ()) t0);
      match node with
      | Seq.Nil -> Seq.Nil
      | Seq.Cons (x, rest) ->
        st.os_rows <- st.os_rows + 1;
        Seq.Cons (x, timed rest)
    in
    timed s

and op_stream ectx ~params (p : plan) : Tuple.t Seq.t =
  match p.op with
  | Scan { sc_table; sc_cols; sc_preds } ->
    let tab = find_table ectx sc_table in
    Seq.filter_map
      (fun (_, row) ->
        ectx.counters.c_scanned <- ectx.counters.c_scanned + 1;
        if conj ectx ~row ~params sc_preds then
          Some (Array.of_list (List.map (fun c -> row.(c)) sc_cols))
        else None)
      (Table_store.scan tab)
  | Idx_access { ix_table; ix_index; ix_probe; ix_cols; ix_preds } ->
    let tab = find_table ectx ix_table in
    let am =
      match Table_store.find_attachment tab ix_index with
      | Some am -> am
      | None -> error "index %s on %s disappeared" ix_index ix_table
    in
    let v e = eval ectx ~row:[||] ~params e in
    let probe =
      match ix_probe with
      | Pr_eq es -> Access_method.Key_eq (Array.of_list (List.map v es))
      | Pr_range (lo, hi) ->
        Access_method.Key_range
          {
            lo = Option.map (fun (e, incl) -> ([| v e |], incl)) lo;
            hi = Option.map (fun (e, incl) -> ([| v e |], incl)) hi;
          }
      | Pr_custom (name, es) -> Access_method.Custom (name, List.map v es)
    in
    ectx.counters.c_index_probes <- ectx.counters.c_index_probes + 1;
    let rids = probe_search ectx am probe in
    Seq.filter_map
      (fun rid ->
        match Table_store.fetch tab rid with
        | None -> None
        | Some row ->
          ectx.counters.c_scanned <- ectx.counters.c_scanned + 1;
          if conj ectx ~row ~params ix_preds then
            Some (Array.of_list (List.map (fun c -> row.(c)) ix_cols))
          else None)
      rids
  | Idx_and { ia_table; ia_probes; ia_cols; ia_preds } ->
    let tab = find_table ectx ia_table in
    let v e = eval ectx ~row:[||] ~params e in
    let probe_of = function
      | Pr_eq es -> Access_method.Key_eq (Array.of_list (List.map v es))
      | Pr_range (lo, hi) ->
        Access_method.Key_range
          {
            lo = Option.map (fun (e, incl) -> ([| v e |], incl)) lo;
            hi = Option.map (fun (e, incl) -> ([| v e |], incl)) hi;
          }
      | Pr_custom (name, es) -> Access_method.Custom (name, List.map v es)
    in
    let rid_sets =
      List.map
        (fun (index, probe) ->
          let am =
            match Table_store.find_attachment tab index with
            | Some am -> am
            | None -> error "index %s on %s disappeared" index ia_table
          in
          ectx.counters.c_index_probes <- ectx.counters.c_index_probes + 1;
          List.of_seq (probe_search ectx am (probe_of probe)))
        ia_probes
    in
    let intersection =
      match List.sort (fun a b -> compare (List.length a) (List.length b)) rid_sets with
      | [] -> []
      | smallest :: rest ->
        let member set rid =
          List.exists (fun r -> Storage_manager.compare_rid r rid = 0) set
        in
        List.filter (fun rid -> List.for_all (fun set -> member set rid) rest) smallest
    in
    Seq.filter_map
      (fun rid ->
        match Table_store.fetch tab rid with
        | None -> None
        | Some row ->
          ectx.counters.c_scanned <- ectx.counters.c_scanned + 1;
          if conj ectx ~row ~params ia_preds then
            Some (Array.of_list (List.map (fun c -> row.(c)) ia_cols))
          else None)
      (List.to_seq intersection)
  | Filter preds ->
    Seq.filter (fun row -> conj ectx ~row ~params preds) (input_stream ectx ~params p 0)
  | Or_filter disjuncts ->
    Seq.filter
      (fun row ->
        (* disjuncts are tried left to right; a tuple rejected by one
           branch is handed to the next (the paper's OR operator) *)
        let rec go = function
          | [] -> false
          | d :: rest ->
            ectx.counters.c_or_branch_evals <- ectx.counters.c_or_branch_evals + 1;
            (match bool3 (eval ectx ~row ~params d) with
            | Some true -> true
            | _ -> go rest)
        in
        go disjuncts)
      (input_stream ectx ~params p 0)
  | Project exprs ->
    Seq.map
      (fun row ->
        Array.of_list (List.map (fun e -> eval ectx ~row ~params e) exprs))
      (input_stream ectx ~params p 0)
  | Sort keys ->
    let rows = collect ectx ~params (List.nth p.inputs 0) in
    ectx.counters.c_sorted <- ectx.counters.c_sorted + List.length rows;
    let cmp a b =
      let rec go = function
        | [] -> 0
        | (i, dir) :: rest ->
          let c = Value.compare ~registry:(registry ectx) a.(i) b.(i) in
          let c = match dir with Ast.Asc -> c | Ast.Desc -> -c in
          if c <> 0 then c else go rest
      in
      go keys
    in
    List.to_seq (List.stable_sort cmp rows)
  | Join _ -> join_stream ectx ~params p
  | Group _ -> group_stream ectx ~params p
  | Distinct_op ->
    let seen = Hashtbl.create 64 in
    Seq.filter
      (fun row ->
        let key = Array.to_list row in
        if Hashtbl.mem seen key then false
        else begin
          Hashtbl.replace seen key ();
          true
        end)
      (input_stream ectx ~params p 0)
  | Union_all ->
    Seq.append (input_stream ectx ~params p 0) (input_stream ectx ~params p 1)
  | Intersect_op all -> setop_stream ectx ~params p ~all ~intersect:true
  | Except_op all -> setop_stream ectx ~params p ~all ~intersect:false
  | Temp ->
    let rows =
      demand_rows ectx (Obj.repr p) (List.nth p.inputs 0) (Array.to_list params)
    in
    List.to_seq rows
  | Ship _ ->
    Seq.map
      (fun row ->
        ectx.counters.c_shipped <- ectx.counters.c_shipped + 1;
        row)
      (input_stream ectx ~params p 0)
  | Limit_op n ->
    Seq.take n (input_stream ectx ~params p 0)
  | Values_scan rows ->
    List.to_seq rows
    |> Seq.map (fun row ->
           Array.of_list (List.map (fun e -> eval ectx ~row:[||] ~params e) row))
  | Table_fn_scan { tf_name; tf_args } -> (
    match Functions.find_table_fn ectx.db.x_fns tf_name with
    | None -> error "unknown table function %s" tf_name
    | Some tf ->
      let arg_tables =
        List.map
          (fun child ->
            let w = Array.length child.props.p_slots in
            let schema =
              Array.init w (fun i ->
                  Schema.column (Fmt.str "c%d" i) Datatype.String)
            in
            (schema, stream ectx ~params child))
          p.inputs
      in
      let arg_values =
        List.map (fun e -> eval ectx ~row:[||] ~params e) tf_args
      in
      tf.Functions.tf_eval ~arg_tables ~arg_values)
  | Bloom_filter { bl_subject_key; bl_source_key; bl_bits } ->
    let bits = Bytes.make (bl_bits / 8) '\000' in
    let set h =
      let h = h land (bl_bits - 1) in
      Bytes.set bits (h / 8)
        (Char.chr (Char.code (Bytes.get bits (h / 8)) lor (1 lsl (h mod 8))))
    in
    let test h =
      let h = h land (bl_bits - 1) in
      Char.code (Bytes.get bits (h / 8)) land (1 lsl (h mod 8)) <> 0
    in
    let h1 v = Value.hash v and h2 v = Hashtbl.hash (Value.hash v, 0x9e3779b9) in
    List.iter
      (fun row ->
        let v = row.(bl_source_key) in
        if not (Value.is_null v) then begin
          set (h1 v);
          set (h2 v)
        end)
      (collect ectx ~params (List.nth p.inputs 1));
    Seq.filter
      (fun row ->
        let v = row.(bl_subject_key) in
        (not (Value.is_null v)) && test (h1 v) && test (h2 v))
      (input_stream ectx ~params p 0)
  | Fixpoint { fx_distinct } -> fixpoint_stream ectx ~params p ~distinct:fx_distinct
  | Rec_delta _ -> (
    match ectx.deltas with
    | delta :: _ -> List.to_seq delta
    | [] -> error "recursive reference outside a fixpoint")
  | Choose_op -> input_stream ectx ~params p 0

and input_stream ectx ~params p i = stream ectx ~params (List.nth p.inputs i)

and conj ectx ~row ~params preds =
  List.for_all (fun e -> bool3 (eval ectx ~row ~params e) = Some true) preds

and find_table ectx name =
  match Catalog.find_table ectx.db.x_cat name with
  | Some tab -> tab
  | None -> error "no such table %s" name

(* fault site "qes.probe": an index search as seen from the executor
   (distinct from the access method's own "<kind>.search" site) *)
and probe_search ectx am probe =
  Sb_resil.Faults.guard (Catalog.faults ectx.db.x_cat) ~site:"qes.probe"
    (fun () -> am.Access_method.am_search probe)

(* ------------------------------------------------------------------ *)
(* Vectorized operator bodies                                          *)
(* ------------------------------------------------------------------ *)

and input_batches ectx ~params p i = batches ectx ~params (List.nth p.inputs i)

(* drops batches that selection refinement emptied *)
and nonempty (s : Batch.t Seq.t) : Batch.t Seq.t =
  Seq.filter (fun b -> Batch.count b > 0) s

and op_batches ectx ~params (p : plan) : Batch.t Seq.t =
  if not (Sb_optimizer.Plan.batch_capable p) then
    (* tuple-at-a-time operator body behind the batch interface; its
       inputs recurse through {!stream} and vectorize where capable *)
    Batch.of_seq ~width:(width p) (op_stream ectx ~params p)
  else
    match p.op with
    | Scan { sc_table; sc_cols; sc_preds } ->
      let tab = find_table ectx sc_table in
      let cols = Array.of_list sc_cols in
      let src = Seq.to_dispenser (Table_store.scan tab) in
      let finished = ref false in
      Seq.of_dispenser (fun () ->
          if !finished then None
          else begin
            let out = Batch.create (Array.length cols) in
            let rec fill () =
              if not (Batch.full out) then
                match src () with
                | None -> finished := true
                | Some (_, row) ->
                  ectx.counters.c_scanned <- ectx.counters.c_scanned + 1;
                  if conj ectx ~row ~params sc_preds then
                    Batch.append_cols out row cols;
                  fill ()
            in
            fill ();
            if Batch.count out > 0 then Some out else None
          end)
    | Filter preds ->
      let scratch = Array.make (width p) Value.Null in
      (* predicates typically read a few slots of a wide row: copy only
         those before evaluating *)
      let used =
        Array.of_list
          (List.sort_uniq compare (List.concat_map slots_used preds))
      in
      nonempty
        (Seq.map
           (fun b ->
             Batch.keep b (fun i ->
                 Batch.blit_slots b i scratch used;
                 conj ectx ~row:scratch ~params preds);
             b)
           (input_batches ectx ~params p 0))
    | Or_filter disjuncts ->
      let scratch = Array.make (width p) Value.Null in
      nonempty
        (Seq.map
           (fun b ->
             Batch.keep b (fun i ->
                 Batch.blit_row b i scratch;
                 (* disjuncts are tried left to right; a row rejected by
                    one branch is handed to the next *)
                 let rec go = function
                   | [] -> false
                   | d :: rest ->
                     ectx.counters.c_or_branch_evals <-
                       ectx.counters.c_or_branch_evals + 1;
                     (match bool3 (eval ectx ~row:scratch ~params d) with
                     | Some true -> true
                     | _ -> go rest)
                 in
                 go disjuncts);
             b)
           (input_batches ectx ~params p 0))
    | Project exprs ->
      let exprs = Array.of_list exprs in
      let cols_only =
        (* a pure column selection (every expression an [RCol]) moves
           values batch to batch without a scratch row *)
        let rec go k acc =
          if k < 0 then Some (Array.of_list acc)
          else
            match exprs.(k) with
            | RCol c -> go (k - 1) (c :: acc)
            | _ -> None
        in
        go (Array.length exprs - 1) []
      in
      (match cols_only with
      | Some [||] ->
        (* width-0 projection (e.g. under a bare count): only the row count
           survives *)
        Seq.map
          (fun b ->
            let out = Batch.create 0 in
            Batch.pad out (Batch.count b);
            out)
          (input_batches ectx ~params p 0)
      | Some cols ->
        Seq.map
          (fun b ->
            let out = Batch.create (Array.length cols) in
            for i = 0 to Batch.count b - 1 do
              Batch.append_select out b i cols
            done;
            out)
          (input_batches ectx ~params p 0)
      | None ->
        let scratch = Array.make (width (List.nth p.inputs 0)) Value.Null in
        Seq.map
          (fun b ->
            let out = Batch.create (Array.length exprs) in
            for i = 0 to Batch.count b - 1 do
              Batch.blit_row b i scratch;
              Batch.append_init out (fun k ->
                  eval ectx ~row:scratch ~params exprs.(k))
            done;
            out)
          (input_batches ectx ~params p 0))
    | Sort keys ->
      let rows = collect ectx ~params (List.nth p.inputs 0) in
      ectx.counters.c_sorted <- ectx.counters.c_sorted + List.length rows;
      let cmp a b =
        let rec go = function
          | [] -> 0
          | (i, dir) :: rest ->
            let c = Value.compare ~registry:(registry ectx) a.(i) b.(i) in
            let c = match dir with Ast.Asc -> c | Ast.Desc -> -c in
            if c <> 0 then c else go rest
        in
        go keys
      in
      Batch.of_rows ~width:(width p) (List.stable_sort cmp rows)
    | Join _ -> join_batches ectx ~params p
    | Group _ -> group_batches ectx ~params p
    | Distinct_op ->
      let seen = Hashtbl.create 64 in
      nonempty
        (Seq.map
           (fun b ->
             Batch.keep b (fun i ->
                 let key = Batch.row_list b i in
                 if Hashtbl.mem seen key then false
                 else begin
                   Hashtbl.replace seen key ();
                   true
                 end);
             b)
           (input_batches ectx ~params p 0))
    | Union_all ->
      Seq.append (input_batches ectx ~params p 0) (input_batches ectx ~params p 1)
    | Intersect_op all -> setop_batches ectx ~params p ~all ~intersect:true
    | Except_op all -> setop_batches ectx ~params p ~all ~intersect:false
    | Temp ->
      let rows =
        demand_rows ectx (Obj.repr p) (List.nth p.inputs 0)
          (Array.to_list params)
      in
      Batch.of_rows ~width:(width p) rows
    | Ship _ ->
      Seq.map
        (fun b ->
          ectx.counters.c_shipped <- ectx.counters.c_shipped + Batch.count b;
          b)
        (input_batches ectx ~params p 0)
    | Limit_op n ->
      let src = Seq.to_dispenser (input_batches ectx ~params p 0) in
      let remaining = ref n in
      Seq.of_dispenser (fun () ->
          if !remaining <= 0 then None
          else
            match src () with
            | None -> None
            | Some b ->
              let c = Batch.count b in
              if c <= !remaining then remaining := !remaining - c
              else begin
                Batch.truncate b !remaining;
                remaining := 0
              end;
              Some b)
    | Values_scan rows ->
      Batch.of_seq ~width:(width p)
        (Seq.map
           (fun row ->
             Array.of_list
               (List.map (fun e -> eval ectx ~row:[||] ~params e) row))
           (List.to_seq rows))
    | Choose_op -> input_batches ectx ~params p 0
    | Idx_access _ | Idx_and _ | Table_fn_scan _ | Bloom_filter _ | Fixpoint _
    | Rec_delta _ ->
      (* never batch_capable; kept for exhaustiveness *)
      Batch.of_seq ~width:(width p) (op_stream ectx ~params p)

and setop_batches ectx ~params (p : plan) ~all ~intersect : Batch.t Seq.t =
  let left = input_batches ectx ~params p 0 in
  let decide = setop_decider ectx ~params p ~all ~intersect in
  nonempty
    (Seq.map
       (fun b ->
         Batch.keep b (fun i -> decide (Batch.row_list b i));
         b)
       left)

and group_batches ectx ~params (p : plan) : Batch.t Seq.t =
  let g_keys, g_aggs =
    match p.op with
    | Group { g_keys; g_aggs; _ } -> (g_keys, g_aggs)
    | _ -> assert false
  in
  let scratch = Array.make (width (List.nth p.inputs 0)) Value.Null in
  if g_keys = [] then begin
    (* keyless aggregation: one bank, no per-row group lookup; skip the
       row copy too when no aggregate reads a slot (count of rows) *)
    let need_row = List.exists (fun (_, _, slot) -> slot <> None) g_aggs in
    let bank = lazy (make_agg_bank ectx g_aggs) in
    Seq.iter
      (fun b ->
        match Lazy.force bank with
        | [ (step, _) ] when not need_row ->
          (* single row-blind aggregate, e.g. a bare count: tightest loop *)
          for _ = 1 to Batch.count b do
            step scratch
          done
        | aggs ->
          for i = 0 to Batch.count b - 1 do
            if need_row then Batch.blit_row b i scratch;
            List.iter (fun (step, _) -> step scratch) aggs
          done)
      (input_batches ectx ~params p 0);
    (* aggregating an empty input still yields one row *)
    Batch.of_rows ~width:(width p) [ agg_result_row [] (Lazy.force bank) ]
  end
  else begin
    let groups : (Value.t list, _) Hashtbl.t = Hashtbl.create 64 in
    let order = ref [] in
    Seq.iter
      (fun b ->
        for i = 0 to Batch.count b - 1 do
          Batch.blit_row b i scratch;
          let key = List.map (fun s -> scratch.(s)) g_keys in
          let aggs =
            match Hashtbl.find_opt groups key with
            | Some aggs -> aggs
            | None ->
              let aggs = make_agg_bank ectx g_aggs in
              Hashtbl.replace groups key aggs;
              order := key :: !order;
              aggs
          in
          List.iter (fun (step, _) -> step scratch) aggs
        done)
      (input_batches ectx ~params p 0);
    Batch.of_rows ~width:(width p)
      (List.map
         (fun key -> agg_result_row key (Hashtbl.find groups key))
         (List.rev !order))
  end

(* --- vectorized hash/merge join --- *)

and join_build ectx ~params inner (islots : int array) : hash_side =
  let rows = Array.of_list (collect ectx ~params inner) in
  let n = Array.length rows in
  let nbuckets =
    let rec grow b = if b >= n || b >= 1 lsl 22 then b else grow (b * 2) in
    grow 16
  in
  let hashes = Array.make (max n 1) (-1) in
  let next = Array.make (max n 1) (-1) in
  let heads = Array.make nbuckets (-1) in
  let mask = nbuckets - 1 in
  for idx = 0 to n - 1 do
    let h = join_key_hash rows.(idx) islots in
    hashes.(idx) <- h;
    if h >= 0 then begin
      let b = h land mask in
      next.(idx) <- heads.(b);
      heads.(b) <- idx
    end
  done;
  {
    hs_rows = rows;
    hs_hashes = hashes;
    hs_next = next;
    hs_heads = heads;
    hs_mask = mask;
  }

(* Batch-at-a-time probe.  The sort-merge method shares this body: the
   tuple engine, too, executes it as a keyed lookup over the grouped
   inner, so both methods agree on semantics and differ only in the
   optimizer's cost model. *)
and join_batches ectx ~params (p : plan) : Batch.t Seq.t =
  let j_kind, j_equi, j_pred, j_kind_pred =
    match p.op with
    | Join { j_kind; j_equi; j_pred; j_kind_pred; _ } ->
      (j_kind, j_equi, j_pred, j_kind_pred)
    | _ -> assert false
  in
  let inner = List.nth p.inputs 1 in
  let inner_width = Array.length inner.props.p_slots in
  let out_width = width p in
  let oslots = Array.of_list (List.map fst j_equi) in
  let islots = Array.of_list (List.map snd j_equi) in
  let reg = registry ectx in
  (* built on the first outer batch, like the tuple engine builds on
     the first outer tuple: an empty outer never evaluates the inner *)
  let side = ref None in
  let force_side () =
    match !side with
    | Some s -> s
    | None ->
      let s = join_build ectx ~params inner islots in
      side := Some s;
      s
  in
  (* partial application shares one [Some reg] across all probes *)
  let cmp = Value.compare ~registry:reg in
  let equal_keys =
    match oslots, islots with
    | [| os |], [| is |] ->
      (* single-key equi-join fast path *)
      fun (o : Tuple.t) (irow : Tuple.t) -> cmp o.(os) irow.(is) = 0
    | _ ->
      fun (o : Tuple.t) (irow : Tuple.t) ->
        let rec go k =
          k >= Array.length oslots
          || (cmp o.(oslots.(k)) irow.(islots.(k)) = 0 && go (k + 1))
        in
        go 0
  in
  (* per-probe match buffer, reused across rows; holds build indices in
     chain (reverse build) order *)
  let mbuf = ref (Array.make 64 0) in
  let collect_matches s (o : Tuple.t) =
    let h = join_key_hash o oslots in
    if h < 0 then 0
    else begin
      let cnt = ref 0 in
      let idx = ref s.hs_heads.(h land s.hs_mask) in
      while !idx >= 0 do
        let i = !idx in
        if s.hs_hashes.(i) = h && equal_keys o s.hs_rows.(i) then begin
          if !cnt >= Array.length !mbuf then begin
            let bigger = Array.make (2 * Array.length !mbuf) 0 in
            Array.blit !mbuf 0 bigger 0 !cnt;
            mbuf := bigger
          end;
          (!mbuf).(!cnt) <- i;
          incr cnt
        end;
        idx := s.hs_next.(i)
      done;
      !cnt
    end
  in
  let pred_true row =
    match j_pred with
    | None -> true
    | Some e -> bool3 (eval ectx ~row ~params e) = Some true
  in
  let kind_truth row =
    match j_kind_pred with
    | None -> Some true
    | Some e -> bool3 (eval ectx ~row ~params e)
  in
  let ready = Queue.create () in
  let out = ref (Batch.create out_width) in
  let roll () =
    if Batch.full !out then begin
      Queue.push !out ready;
      out := Batch.create out_width
    end
  in
  let push row =
    Batch.append !out row;
    roll ()
  in
  (* reused per-probe outer row: every consumer below copies its values
     out before the next probe overwrites it *)
  let outer_w = width (List.nth p.inputs 0) in
  let scratch = Array.make outer_w Value.Null in
  let no_preds = j_pred = None && j_kind_pred = None in
  let probe_batch b =
    let s = force_side () in
    for i = 0 to Batch.count b - 1 do
      Batch.blit_row b i scratch;
      let m = collect_matches s scratch in
      match j_kind with
      (* chain order is reverse build order: emit backwards to
         reproduce the tuple engine's build-order inner emission *)
      | J_regular when no_preds ->
        (* the hot path: no residual predicate, so the concatenated row
           goes straight into the output columns *)
        for k = m - 1 downto 0 do
          Batch.append_concat !out scratch s.hs_rows.((!mbuf).(k));
          roll ()
        done
      | J_regular ->
        for k = m - 1 downto 0 do
          let row = Array.append scratch s.hs_rows.((!mbuf).(k)) in
          if pred_true row && kind_truth row = Some true then push row
        done
      | _ ->
        (* quantified/extension kinds may emit the outer tuple itself:
           hand them a tuple they can own *)
        let o = Batch.get b i in
        let inners = ref [] in
        for k = 0 to m - 1 do
          inners := s.hs_rows.((!mbuf).(k)) :: !inners
        done;
        List.iter push
          (join_emit ectx ~params ~j_kind:j_kind ~j_pred:j_pred
             ~j_kind_pred:j_kind_pred ~inner_width o !inners)
    done
  in
  let src = Seq.to_dispenser (input_batches ectx ~params p 0) in
  let finished = ref false in
  Seq.of_dispenser (fun () ->
      let rec loop () =
        if not (Queue.is_empty ready) then Some (Queue.pop ready)
        else if !finished then None
        else
          match src () with
          | None ->
            finished := true;
            let b = !out in
            out := Batch.create out_width;
            if Batch.count b > 0 then Some b else None
          | Some b ->
            probe_batch b;
            loop ()
      in
      loop ())

(* --- joins --- *)

and join_stream ectx ~params (p : plan) : Tuple.t Seq.t =
  let j_method, j_kind, j_equi, j_pred, j_corr, j_bound, j_kind_pred =
    match p.op with
    | Join { j_method; j_kind; j_equi; j_pred; j_corr; j_bound; j_kind_pred } ->
      (j_method, j_kind, j_equi, j_pred, j_corr, j_bound, j_kind_pred)
    | _ -> assert false
  in
  let outer = List.nth p.inputs 0 and inner = List.nth p.inputs 1 in
  let inner_width = Array.length inner.props.p_slots in
  (* fetch matching inner rows for one outer tuple *)
  let inner_rows_for =
    match j_method with
    | Nested_loop ->
      fun o ->
        (* a parameter-bound inner owns its parameter space: bind its
           params positionally from the correlation sources; an unbound
           inner shares the enclosing parameter space *)
        let bound =
          if j_bound then List.map (fun e -> eval ectx ~row:o ~params e) j_corr
          else Array.to_list params
        in
        demand_rows ectx (Obj.repr p) inner bound
    | Hash_join ->
      let table = Hashtbl.create 256 in
      let built = ref false in
      fun o ->
        if not !built then begin
          built := true;
          List.iter
            (fun i ->
              let key =
                List.map (fun (_, islot) -> i.(islot)) j_equi
              in
              Hashtbl.add table key i)
            (collect ectx ~params inner)
        end;
        let key = List.map (fun (oslot, _) -> o.(oslot)) j_equi in
        if List.exists Value.is_null key then []
        else List.rev (Hashtbl.find_all table key)
    | Sort_merge ->
      (* both inputs are sorted on the equi keys; group the inner by key
         once, then look up groups (a merge with random access stands in
         for cursor regression on duplicate outer keys) *)
      let groups = Hashtbl.create 256 in
      let built = ref false in
      fun o ->
        if not !built then begin
          built := true;
          List.iter
            (fun i ->
              let key = List.map (fun (_, islot) -> i.(islot)) j_equi in
              Hashtbl.add groups key i)
            (collect ectx ~params inner)
        end;
        let key = List.map (fun (oslot, _) -> o.(oslot)) j_equi in
        if List.exists Value.is_null key then []
        else List.rev (Hashtbl.find_all groups key)
  in
  let equi_match o i =
    match j_method with
    | Nested_loop ->
      List.for_all
        (fun (oslot, islot) ->
          (not (Value.is_null o.(oslot)))
          && (not (Value.is_null i.(islot)))
          && Value.compare ~registry:(registry ectx) o.(oslot) i.(islot) = 0)
        j_equi
    | Hash_join | Sort_merge -> true (* established by the lookup *)
  in
  let outer_seq = stream ectx ~params outer in
  let emit_for o : Tuple.t list =
    let inners = List.filter (equi_match o) (inner_rows_for o) in
    join_emit ectx ~params ~j_kind ~j_pred ~j_kind_pred ~inner_width o inners
  in
  Seq.concat_map (fun o -> List.to_seq (emit_for o)) outer_seq

(** The join-kind dispatch, shared by both engines: given one outer
    tuple and its (equi-matched) inner tuples, produce the output rows.
    Kinds always see materialized tuples, so extension kinds are
    engine-agnostic. *)
and join_emit ectx ~params ~j_kind ~j_pred ~j_kind_pred ~inner_width
    (o : Tuple.t) (inners : Tuple.t list) : Tuple.t list =
  let combined i = Array.append o i in
  let pred_true row =
    match j_pred with
    | None -> true
    | Some e -> bool3 (eval ectx ~row ~params e) = Some true
  in
  let kind_truth row =
    match j_kind_pred with
    | None -> Some true
    | Some e -> bool3 (eval ectx ~row ~params e)
  in
  match j_kind with
  | J_regular ->
    List.filter_map
      (fun i ->
        let row = combined i in
        if pred_true row && kind_truth row = Some true then Some row else None)
      inners
  | J_exists ->
    let rec go = function
      | [] -> []
      | i :: rest ->
        let row = combined i in
        if pred_true row && kind_truth row = Some true then [ o ] else go rest
    in
    go inners
  | J_all ->
    (* SQL semantics: the outer qualifies only if the predicate is
       true for every inner row *)
    let ok =
      List.for_all (fun i -> kind_truth (combined i) = Some true) inners
    in
    if ok then [ o ] else []
  | J_scalar -> (
    match inners with
    | [] -> [ Array.append o [| Value.Null |] ]
    | [ i ] -> [ Array.append o [| i.(0) |] ]
    | _ -> error "scalar subquery returned more than one row")
  | J_set_pred name -> (
    match Functions.find_set_predicate ectx.db.x_fns name with
    | None -> error "unknown set predicate %s" name
    | Some f ->
      let truths =
        Seq.map (fun i -> kind_truth (combined i)) (List.to_seq inners)
      in
      if f.Functions.spf_combine truths = Some true then [ o ] else [])
  | J_ext name -> (
    match Hashtbl.find_opt ectx.db.x_kinds name with
    | None -> error "join kind %s is not registered" name
    | Some impl ->
      impl ~outer:o ~inners
        ~pred:(fun row -> if pred_true row then kind_truth row else Some false)
        ~inner_width)

(* --- grouping --- *)

(* a fresh bank of aggregate instances: (step, result) per aggregate.
   [step] reads its argument slot immediately, so scratch rows are safe *)
and make_agg_bank ectx g_aggs =
  List.map
    (fun (name, distinct, slot) ->
      match Functions.find_aggregate ectx.db.x_fns name with
      | None -> error "unknown aggregate %s" name
      | Some f ->
        let inst = f.Functions.af_make () in
        let seen = if distinct then Some (Hashtbl.create 16) else None in
        let step (row : Tuple.t) =
          match slot with
          | None -> inst.Functions.agg_step Value.Null |> ignore
          | Some s ->
            let v = row.(s) in
            if not (Value.is_null v) then begin
              match seen with
              | Some table ->
                if not (Hashtbl.mem table v) then begin
                  Hashtbl.replace table v ();
                  inst.Functions.agg_step v
                end
              | None -> inst.Functions.agg_step v
            end
        in
        (step, inst.Functions.agg_result))
    g_aggs

and agg_result_row key aggs =
  Array.append (Array.of_list key)
    (Array.of_list (List.map (fun (_, result) -> result ()) aggs))

and group_stream ectx ~params (p : plan) : Tuple.t Seq.t =
  let g_keys, g_aggs, g_sorted =
    match p.op with
    | Group { g_keys; g_aggs; g_sorted } -> (g_keys, g_aggs, g_sorted)
    | _ -> assert false
  in
  let input = List.nth p.inputs 0 in
  let make_aggs () = make_agg_bank ectx g_aggs in
  let result_row = agg_result_row in
  if g_sorted && g_keys <> [] then
    (* streaming aggregation over key-ordered input *)
    Seq.of_dispenser
      (let src = Seq.to_dispenser (stream ectx ~params input) in
       let current = ref None in
       let finished = ref false in
       fun () ->
         if !finished then None
         else
           let rec loop () =
             match src () with
             | None ->
               finished := true;
               (match !current with
               | Some (key, aggs) -> Some (result_row key aggs)
               | None -> None)
             | Some row -> (
               let key = List.map (fun s -> row.(s)) g_keys in
               match !current with
               | Some (k, aggs)
                 when List.for_all2
                        (fun a b -> Value.compare ~registry:(registry ectx) a b = 0)
                        k key ->
                 List.iter (fun (step, _) -> step row) aggs;
                 loop ()
               | Some (k, aggs) ->
                 let aggs' = make_aggs () in
                 List.iter (fun (step, _) -> step row) aggs';
                 current := Some (key, aggs');
                 Some (result_row k aggs)
               | None ->
                 let aggs = make_aggs () in
                 List.iter (fun (step, _) -> step row) aggs;
                 current := Some (key, aggs);
                 loop ())
           in
           loop ())
  else begin
    (* hash aggregation *)
    let groups : (Value.t list, _) Hashtbl.t = Hashtbl.create 64 in
    let order = ref [] in
    Seq.iter
      (fun row ->
        let key = List.map (fun s -> row.(s)) g_keys in
        let aggs =
          match Hashtbl.find_opt groups key with
          | Some aggs -> aggs
          | None ->
            let aggs = make_aggs () in
            Hashtbl.replace groups key aggs;
            order := key :: !order;
            aggs
        in
        List.iter (fun (step, _) -> step row) aggs)
      (stream ectx ~params input);
    if g_keys = [] && Hashtbl.length groups = 0 then
      (* aggregate over an empty input still yields one row *)
      Seq.return (result_row [] (make_aggs ()))
    else
      List.to_seq (List.rev !order)
      |> Seq.map (fun key -> result_row key (Hashtbl.find groups key))
  end

(* --- set operations --- *)

(* counts the right input into a multiset and returns the left-row
   admission test, shared by both engines (stateful: ALL variants
   consume right counts, non-ALL variants dedup what they emit) *)
and setop_decider ectx ~params (p : plan) ~all ~intersect :
    Value.t list -> bool =
  let right_counts = Hashtbl.create 64 in
  List.iter
    (fun row ->
      let key = Array.to_list row in
      Hashtbl.replace right_counts key
        (1 + Option.value ~default:0 (Hashtbl.find_opt right_counts key)))
    (collect ectx ~params (List.nth p.inputs 1));
  let emitted = Hashtbl.create 64 in
  fun key ->
    let rc = Option.value ~default:0 (Hashtbl.find_opt right_counts key) in
    if intersect then
      if all then
        if rc > 0 then begin
          Hashtbl.replace right_counts key (rc - 1);
          true
        end
        else false
      else if rc > 0 && not (Hashtbl.mem emitted key) then begin
        Hashtbl.replace emitted key ();
        true
      end
      else false
    else if all then
      if rc > 0 then begin
        Hashtbl.replace right_counts key (rc - 1);
        false
      end
      else true
    else if rc = 0 && not (Hashtbl.mem emitted key) then begin
      Hashtbl.replace emitted key ();
      true
    end
    else false

and setop_stream ectx ~params (p : plan) ~all ~intersect : Tuple.t Seq.t =
  let left = input_stream ectx ~params p 0 in
  let decide = setop_decider ectx ~params p ~all ~intersect in
  Seq.filter (fun row -> decide (Array.to_list row)) left

(* --- recursion --- *)

and fixpoint_stream ectx ~params (p : plan) ~distinct : Tuple.t Seq.t =
  ignore distinct;
  let seed = List.nth p.inputs 0 and step = List.nth p.inputs 1 in
  let seen = Hashtbl.create 256 in
  let acc = ref [] in
  let add rows =
    List.filter
      (fun row ->
        let key = Array.to_list row in
        if Hashtbl.mem seen key then false
        else begin
          Hashtbl.replace seen key ();
          acc := row :: !acc;
          true
        end)
      rows
  in
  let max_rounds = 100_000 in
  let delta = ref (add (collect ectx ~params seed)) in
  let rounds = ref 0 in
  while !delta <> [] do
    incr rounds;
    if !rounds > max_rounds then error "recursion exceeded %d rounds" max_rounds;
    ectx.counters.c_fixpoint_rounds <- ectx.counters.c_fixpoint_rounds + 1;
    ectx.deltas <- !delta :: ectx.deltas;
    let produced = collect ectx ~params step in
    ectx.deltas <- List.tl ectx.deltas;
    (* the step's demand caches are invalid across rounds because the
       delta changed: clear caches scoped under the step *)
    ectx.caches <- [];
    delta := add produced
  done;
  List.to_seq (List.rev !acc)

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

(* Standalone executions get a fresh governor over the default limits,
   so the finite intermediate-row ceiling holds even outside Corona. *)
let default_gov () = Sb_resil.Limits.start (Sb_resil.Limits.default ())

(** Runs a plan to completion, returning the result rows. *)
let run ?(hosts = []) ?(counters = fresh_counters ()) ?gov (db : db)
    (plan : plan) : Tuple.t list =
  let gov = match gov with Some g -> g | None -> default_gov () in
  let ectx =
    { db; hosts; counters; gov; caches = []; deltas = []; instr = None }
  in
  let rows = collect ectx ~params:[||] plan in
  List.iter (fun _ -> Sb_resil.Limits.charge_output gov) rows;
  counters.c_output <- counters.c_output + List.length rows;
  rows

(** Streams a plan's results (lazy, single pass). *)
let run_seq ?(hosts = []) ?(counters = fresh_counters ()) ?gov (db : db)
    (plan : plan) : Tuple.t Seq.t =
  let gov = match gov with Some g -> g | None -> default_gov () in
  let ectx =
    { db; hosts; counters; gov; caches = []; deltas = []; instr = None }
  in
  Seq.map
    (fun row ->
      Sb_resil.Limits.charge_output gov;
      row)
    (stream ectx ~params:[||] plan)

(** Like {!run}, but with per-operator accounting: also returns a lookup
    from plan node (by physical identity, including subplans embedded in
    expressions) to its rows-produced and inclusive elapsed time. *)
let run_analyzed ?(hosts = []) ?(counters = fresh_counters ()) ?gov (db : db)
    (plan : plan) : Tuple.t list * (plan -> op_stats option) =
  let gov = match gov with Some g -> g | None -> default_gov () in
  let tbl : analysis = ref [] in
  let ectx =
    { db; hosts; counters; gov; caches = []; deltas = []; instr = Some tbl }
  in
  let rows = collect ectx ~params:[||] plan in
  List.iter (fun _ -> Sb_resil.Limits.charge_output gov) rows;
  counters.c_output <- counters.c_output + List.length rows;
  (rows, fun p -> Option.map snd (List.find_opt (fun (q, _) -> q == p) !tbl))

(** Evaluates a standalone runtime expression over one row (used by the
    facade for UPDATE/DELETE predicates and SET expressions). *)
let eval_row ?(hosts = []) (db : db) ~(row : Tuple.t) (e : rexpr) : Value.t =
  let ectx =
    { db; hosts; counters = fresh_counters (); gov = default_gov ();
      caches = []; deltas = []; instr = None }
  in
  eval ectx ~row ~params:[||] e
