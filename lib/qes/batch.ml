open Sb_storage

type t = {
  b_width : int;
  b_cols : Value.t array array;  (* b_width column chunks of length cap *)
  b_sel : int array;  (* selection vector: physical indices of live rows *)
  mutable b_len : int;  (* physical rows appended *)
  mutable b_live : int;  (* live rows (used prefix of b_sel) *)
}

let capacity = 1024

let create ?(cap = capacity) w =
  {
    b_width = w;
    b_cols = Array.init w (fun _ -> Array.make cap Value.Null);
    b_sel = Array.make cap 0;
    b_len = 0;
    b_live = 0;
  }

let width b = b.b_width
let count b = b.b_live
let full b = b.b_len >= Array.length b.b_sel

let append b (row : Tuple.t) =
  let phys = b.b_len in
  for k = 0 to b.b_width - 1 do
    b.b_cols.(k).(phys) <- row.(k)
  done;
  b.b_sel.(b.b_live) <- phys;
  b.b_len <- phys + 1;
  b.b_live <- b.b_live + 1

let append_init b f =
  let phys = b.b_len in
  for k = 0 to b.b_width - 1 do
    b.b_cols.(k).(phys) <- f k
  done;
  b.b_sel.(b.b_live) <- phys;
  b.b_len <- phys + 1;
  b.b_live <- b.b_live + 1

(* the scan fast path: append the projection [row.(cols.(k))] without a
   per-row closure *)
let append_cols b (row : Tuple.t) (cols : int array) =
  let phys = b.b_len in
  for k = 0 to b.b_width - 1 do
    b.b_cols.(k).(phys) <- row.(cols.(k))
  done;
  b.b_sel.(b.b_live) <- phys;
  b.b_len <- phys + 1;
  b.b_live <- b.b_live + 1

(* the column-only-projection fast path: append the [cols.(k)] columns
   of [src]'s [i]th live row, batch to batch *)
let append_select b (src : t) i (cols : int array) =
  let phys = b.b_len in
  let sphys = src.b_sel.(i) in
  for k = 0 to b.b_width - 1 do
    b.b_cols.(k).(phys) <- src.b_cols.(cols.(k)).(sphys)
  done;
  b.b_sel.(b.b_live) <- phys;
  b.b_len <- phys + 1;
  b.b_live <- b.b_live + 1

(* appends [n] blank rows — the degenerate width-0 projection, where
   only the row count carries information *)
let pad b n =
  for j = 0 to n - 1 do
    b.b_sel.(b.b_live + j) <- b.b_len + j
  done;
  b.b_len <- b.b_len + n;
  b.b_live <- b.b_live + n

(* the join emission fast path: append [a @ c] without materializing
   the concatenated row *)
let append_concat b (a : Tuple.t) (c : Tuple.t) =
  let phys = b.b_len in
  let wa = Array.length a in
  for k = 0 to wa - 1 do
    b.b_cols.(k).(phys) <- a.(k)
  done;
  for k = wa to b.b_width - 1 do
    b.b_cols.(k).(phys) <- c.(k - wa)
  done;
  b.b_sel.(b.b_live) <- phys;
  b.b_len <- phys + 1;
  b.b_live <- b.b_live + 1

let value b ~col i = b.b_cols.(col).(b.b_sel.(i))
let get b i = Array.init b.b_width (fun k -> b.b_cols.(k).(b.b_sel.(i)))

let blit_row b i dst =
  let phys = b.b_sel.(i) in
  for k = 0 to b.b_width - 1 do
    dst.(k) <- b.b_cols.(k).(phys)
  done

(* partial blit for expression evaluation that reads few slots of a
   wide row *)
let blit_slots b i dst (slots : int array) =
  let phys = b.b_sel.(i) in
  for k = 0 to Array.length slots - 1 do
    let s = slots.(k) in
    dst.(s) <- b.b_cols.(s).(phys)
  done

let row_list b i = List.init b.b_width (fun k -> b.b_cols.(k).(b.b_sel.(i)))

(* compaction writes only at positions <= the index being tested, so
   [pred] always sees the pre-refinement selection entry *)
let keep b pred =
  let j = ref 0 in
  for i = 0 to b.b_live - 1 do
    if pred i then begin
      b.b_sel.(!j) <- b.b_sel.(i);
      incr j
    end
  done;
  b.b_live <- !j

let truncate b n = if n < b.b_live then b.b_live <- max n 0

let of_seq ~width (s : Tuple.t Seq.t) : t Seq.t =
  let src = Seq.to_dispenser s in
  let finished = ref false in
  Seq.of_dispenser (fun () ->
      if !finished then None
      else begin
        let b = create width in
        let rec fill () =
          if not (full b) then
            match src () with
            | None -> finished := true
            | Some row ->
              append b row;
              fill ()
        in
        fill ();
        if count b > 0 then Some b else None
      end)

let of_rows ~width rows = of_seq ~width (List.to_seq rows)

let to_seq (bs : t Seq.t) : Tuple.t Seq.t =
  Seq.concat_map (fun b -> Seq.init (count b) (fun i -> get b i)) bs
