(** The Query Evaluation System (section 7).

    Plans are interpreted against the database through an algebraic,
    stream-based interface.  Hot operators (scans, filters,
    projections, sorts, hash aggregation, set operations, hash/merge
    joins) execute batch-at-a-time over columnar row batches with
    selection vectors ({!Batch}); the remaining operators — and the
    plan root — keep the lazy tuple-stream interface, with adapters at
    every boundary (per-node routing via
    {!Sb_optimizer.Plan.batch_capable}).  Join {e methods} are control
    structures; join {e kinds} are the functions performed during the
    join — one operator handles many kinds, new kinds register here,
    and kind implementations always see materialized tuples, so they
    are engine-agnostic.  Subqueries run through a single uniform
    {e evaluate-on-demand} mechanism with a cache keyed on correlation
    values.

    Runtime failures raise structured {!Sb_resil.Err} values with
    stage [Exec]. *)

open Sb_storage
module Functions = Sb_hydrogen.Functions

type counters = {
  mutable c_scanned : int;  (** tuples read from base tables *)
  mutable c_index_probes : int;
  mutable c_shipped : int;
  mutable c_sorted : int;
  mutable c_sub_evals : int;  (** subquery (re)materializations *)
  mutable c_sub_cache_hits : int;
  mutable c_or_branch_evals : int;
  mutable c_fixpoint_rounds : int;
  mutable c_batches : int;  (** batches emitted by vectorized operators *)
  mutable c_output : int;
}

val fresh_counters : unit -> counters

(** An extension join kind: given the outer tuple, the candidate inner
    tuples (pre-filtered by equi-columns under hash/merge), and the kind
    predicate over the concatenated row, produce the output rows. *)
type kind_impl =
  outer:Tuple.t ->
  inners:Tuple.t list ->
  pred:(Tuple.t -> bool option) ->
  inner_width:int ->
  Tuple.t list

type db = {
  x_cat : Catalog.t;
  x_fns : Functions.t;
  x_kinds : (string, kind_impl) Hashtbl.t;
  mutable x_demand_cache : bool;
      (** evaluate-on-demand correlation caching (on by default; the
          bench harness turns it off to measure its effect) *)
  mutable x_vectorized : bool;
      (** batch-at-a-time execution of capable operators (on by
          default; turning it off selects the tuple-at-a-time engine,
          which doubles as the differential-testing oracle) *)
}

val make_db : catalog:Catalog.t -> functions:Functions.t -> db

val register_join_kind : db -> string -> kind_impl -> unit

(** Runs a plan to completion.  [hosts] binds host variables.  [gov] is
    the per-query resource governor — operator instantiations and every
    intermediate/output row are charged to it; when omitted a fresh
    governor over {!Sb_resil.Limits.default} applies, so the finite
    intermediate-row ceiling holds even outside Corona. *)
val run :
  ?hosts:(string * Value.t) list ->
  ?counters:counters ->
  ?gov:Sb_resil.Limits.gov ->
  db ->
  Sb_optimizer.Plan.plan ->
  Tuple.t list

(** Per-operator runtime accounting for EXPLAIN ANALYZE: rows produced
    (across all re-evaluations, e.g. of a join's inner), batches
    emitted (0 for tuple-at-a-time operators), and inclusive elapsed
    time.  Row counts are exact under both engines. *)
type op_stats = {
  mutable os_rows : int;
  mutable os_batches : int;
  mutable os_ns : int64;
}

(** Like {!run}, but with per-operator accounting: also returns a lookup
    from plan node (by physical identity, including subplans embedded in
    expressions) to its statistics. *)
val run_analyzed :
  ?hosts:(string * Value.t) list ->
  ?counters:counters ->
  ?gov:Sb_resil.Limits.gov ->
  db ->
  Sb_optimizer.Plan.plan ->
  Tuple.t list * (Sb_optimizer.Plan.plan -> op_stats option)

(** Streams a plan's results (lazy, single pass). *)
val run_seq :
  ?hosts:(string * Value.t) list ->
  ?counters:counters ->
  ?gov:Sb_resil.Limits.gov ->
  db ->
  Sb_optimizer.Plan.plan ->
  Tuple.t Seq.t

(** Evaluates a standalone runtime expression over one row (used by the
    facade for UPDATE/DELETE predicates and SET expressions). *)
val eval_row :
  ?hosts:(string * Value.t) list ->
  db ->
  row:Tuple.t ->
  Sb_optimizer.Plan.rexpr ->
  Value.t
