(** Columnar row batches with selection vectors — the unit of exchange
    between vectorized QES operators.

    A batch holds up to {!capacity} rows column-chunked ([width] arrays
    of {!Sb_storage.Value.t}), plus a {e selection vector}: the physical
    indices of the rows still live.  Filters refine the selection in
    place instead of copying rows; materializing operators read through
    it.  A batch is owned by its consumer — each operator either
    mutates the batch it received (selection refinement, truncation) or
    builds fresh ones; batches are never shared between consumers.

    [Tuple.t Seq.t] remains the lingua franca at the plan root and at
    operators that are not vectorized; {!of_seq} and {!to_seq} are the
    adapters between the two worlds. *)

open Sb_storage

type t

(** Rows per batch (1024). *)
val capacity : int

val create : ?cap:int -> int -> t

val width : t -> int

(** Live rows (after selection refinement). *)
val count : t -> int

(** No more physical rows fit. *)
val full : t -> bool

(** Appends a row (copied into the columns).  The row becomes live. *)
val append : t -> Tuple.t -> unit

(** [append_init b f] appends the row [f 0 .. f (width-1)] without an
    intermediate array. *)
val append_init : t -> (int -> Value.t) -> unit

(** [append_concat b a c] appends the row [a @ c] (a join's outer and
    inner halves) without materializing the concatenation;
    [length a + length c] must equal [width b]. *)
val append_concat : t -> Tuple.t -> Tuple.t -> unit

(** [append_cols b row cols] appends the row
    [row.(cols.(0)) .. row.(cols.(width-1))] (the scan's base-column
    projection) without a per-row closure. *)
val append_cols : t -> Tuple.t -> int array -> unit

(** [append_select b src i cols] appends the [cols] columns of [src]'s
    [i]th live row — the column-only projection, batch to batch. *)
val append_select : t -> t -> int -> int array -> unit

(** [pad b n] appends [n] blank rows (the width-0 projection: only the
    row count carries information).  [n] must fit the batch. *)
val pad : t -> int -> unit

(** [value b ~col i] reads column [col] of the [i]th {e live} row. *)
val value : t -> col:int -> int -> Value.t

(** Materializes the [i]th live row as a fresh tuple. *)
val get : t -> int -> Tuple.t

(** Copies the [i]th live row into [dst] (a scratch row for expression
    evaluation; [dst] must have length [width]). *)
val blit_row : t -> int -> Value.t array -> unit

(** [blit_slots b i dst slots] copies only the [slots] columns of the
    [i]th live row into [dst] — enough for expressions that read
    nothing else. *)
val blit_slots : t -> int -> Value.t array -> int array -> unit

(** The [i]th live row as a list (hash-table keys). *)
val row_list : t -> int -> Value.t list

(** [keep b pred] refines the selection in place: live row [i] survives
    iff [pred i].  [pred] is called in order with the pre-refinement
    live indices. *)
val keep : t -> (int -> bool) -> unit

(** Keeps only the first [n] live rows. *)
val truncate : t -> int -> unit

(** Chunks a tuple stream into batches (lazily; empty batches are never
    produced). *)
val of_seq : width:int -> Tuple.t Seq.t -> t Seq.t

val of_rows : width:int -> Tuple.t list -> t Seq.t

(** Flattens batches back into tuples (fresh arrays). *)
val to_seq : t Seq.t -> Tuple.t Seq.t
