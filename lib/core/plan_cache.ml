(** The shared prepared-plan cache: sharded, LRU, epoch-invalidated.

    Section 3's economic argument — compilation is microseconds while
    execution is milliseconds, "the result of the compilation stage can
    be stored for future use" — only amortizes across callers if the
    store is shared.  This cache is that store: keys are {e normalized}
    query text (plus a caller-supplied settings fingerprint), values are
    prepared plans, and every entry remembers the catalog/statistics
    epoch it was compiled at.  A lookup whose entry carries a stale
    epoch is a miss that also drops the entry, so DDL and ANALYZE
    invalidate lazily without the catalog knowing the cache exists.

    The table is split into shards, each with its own lock and LRU list,
    so concurrent sessions on different domains rarely contend.  Within
    a shard, eviction is strict LRU — no wholesale reset.

    Every shard lock is a leveled {!Sb_conc.Lock} at
    {!Sb_conc.Level.plan_cache} (all sharing one name — the hierarchy
    cares about the class, not the instance; shard locks never nest).
    Each shard's table + LRU list is its own instrumented field
    ([plan_cache.shard<i>]) so the race detector's lockset refinement
    is per shard — one field for the whole cache would empty its
    candidate set the first time two shards are touched under their
    own (different) locks. *)

module Metrics = Sb_obs.Metrics

type 'a node = {
  n_key : string;
  mutable n_value : 'a;
  mutable n_epoch : int;
  mutable n_prev : 'a node option;  (** toward most-recently-used *)
  mutable n_next : 'a node option;  (** toward least-recently-used *)
}

type 'a shard = {
  s_lock : Sb_conc.Lock.t;
  s_field : string;  (** this shard's race-detector field name *)
  s_tbl : (string, 'a node) Hashtbl.t;
  mutable s_mru : 'a node option;
  mutable s_lru : 'a node option;
  s_capacity : int;  (** max resident entries in this shard *)
  mutable s_hits : int;
  mutable s_misses : int;
  mutable s_evictions : int;
  mutable s_invalidations : int;
}

type 'a t = { shards : 'a shard array; metrics : Metrics.t option }

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  invalidations : int;
  resident : int;
}

let create ?(shards = 8) ?(capacity = 256) ?metrics () : 'a t =
  if shards <= 0 then invalid_arg "Plan_cache.create: shards must be positive";
  if capacity < shards then invalid_arg "Plan_cache.create: capacity < shards";
  let per_shard = max 1 (capacity / shards) in
  {
    shards =
      Array.init shards (fun i ->
          {
            s_lock =
              Sb_conc.Lock.create ~name:"core.plan_cache"
                ~level:Sb_conc.Level.plan_cache;
            s_field = Printf.sprintf "plan_cache.shard%d" i;
            s_tbl = Hashtbl.create (2 * per_shard);
            s_mru = None;
            s_lru = None;
            s_capacity = per_shard;
            s_hits = 0;
            s_misses = 0;
            s_evictions = 0;
            s_invalidations = 0;
          });
    metrics;
  }

(* ------------------------------------------------------------------ *)
(* Key normalization                                                   *)
(* ------------------------------------------------------------------ *)

(** Normalizes query text so lexically equivalent statements share one
    cache entry: runs of whitespace collapse to a single space,
    characters outside string literals fold to lowercase, and trailing
    [;]/whitespace is dropped.  Quoted literals (and quote-escaped
    quotes within them) pass through untouched, so ['CPU'] and ['cpu']
    stay distinct queries. *)
let normalize (text : string) : string =
  let buf = Buffer.create (String.length text) in
  let n = String.length text in
  let in_string = ref false in
  let pending_space = ref false in
  for i = 0 to n - 1 do
    let c = text.[i] in
    if !in_string then begin
      Buffer.add_char buf c;
      if c = '\'' then in_string := false
    end
    else if c = ' ' || c = '\t' || c = '\n' || c = '\r' then
      (* collapse, and drop entirely at the front of the buffer *)
      pending_space := Buffer.length buf > 0
    else begin
      if !pending_space then Buffer.add_char buf ' ';
      pending_space := false;
      if c = '\'' then begin
        in_string := true;
        Buffer.add_char buf c
      end
      else Buffer.add_char buf (Char.lowercase_ascii c)
    end
  done;
  let s = Buffer.contents buf in
  let len = String.length s in
  if len > 0 && s.[len - 1] = ';' then String.trim (String.sub s 0 (len - 1))
  else s

(* ------------------------------------------------------------------ *)
(* Intra-shard LRU list                                                *)
(* ------------------------------------------------------------------ *)

(* all list surgery runs under the shard lock *)

let unlink sh node =
  (match node.n_prev with
  | Some p -> p.n_next <- node.n_next
  | None -> sh.s_mru <- node.n_next);
  (match node.n_next with
  | Some nx -> nx.n_prev <- node.n_prev
  | None -> sh.s_lru <- node.n_prev);
  node.n_prev <- None;
  node.n_next <- None

let push_front sh node =
  node.n_prev <- None;
  node.n_next <- sh.s_mru;
  (match sh.s_mru with
  | Some old -> old.n_prev <- Some node
  | None -> sh.s_lru <- Some node);
  sh.s_mru <- Some node

let locked sh f = Sb_conc.Lock.with_lock sh.s_lock f

let watch sh ~site ~write =
  Sb_conc.Discipline.access ~field:sh.s_field ~site ~write

let shard_of t key =
  t.shards.(Hashtbl.hash key mod Array.length t.shards)

let count t name =
  match t.metrics with
  | None -> ()
  | Some m -> Metrics.incr (Metrics.counter m name)

(* ------------------------------------------------------------------ *)
(* Operations                                                          *)
(* ------------------------------------------------------------------ *)

(** [find t ~epoch key] is the cached value compiled at [epoch], if
    any.  An entry from an older epoch is dropped and counted as an
    invalidation (the lookup reports a miss). *)
let find (t : 'a t) ~(epoch : int) (key : string) : 'a option =
  let sh = shard_of t key in
  let outcome =
    locked sh (fun () ->
        watch sh ~site:"Plan_cache.find" ~write:true;
        match Hashtbl.find_opt sh.s_tbl key with
        | Some node when node.n_epoch = epoch ->
          unlink sh node;
          push_front sh node;
          sh.s_hits <- sh.s_hits + 1;
          `Hit node.n_value
        | Some node ->
          unlink sh node;
          Hashtbl.remove sh.s_tbl key;
          sh.s_invalidations <- sh.s_invalidations + 1;
          sh.s_misses <- sh.s_misses + 1;
          `Invalidated
        | None ->
          sh.s_misses <- sh.s_misses + 1;
          `Miss)
  in
  match outcome with
  | `Hit v ->
    count t "sb_plan_cache_hits_total";
    Some v
  | `Invalidated ->
    count t "sb_plan_cache_invalidations_total";
    count t "sb_plan_cache_misses_total";
    None
  | `Miss ->
    count t "sb_plan_cache_misses_total";
    None

(** Inserts (or refreshes) [key], evicting the shard's LRU entry when
    over capacity. *)
let add (t : 'a t) ~(epoch : int) (key : string) (value : 'a) : unit =
  let sh = shard_of t key in
  let evicted =
    locked sh (fun () ->
        watch sh ~site:"Plan_cache.add" ~write:true;
        (match Hashtbl.find_opt sh.s_tbl key with
        | Some node ->
          (* a concurrent compiler won the race: keep one entry *)
          node.n_value <- value;
          node.n_epoch <- epoch;
          unlink sh node;
          push_front sh node
        | None ->
          let node =
            { n_key = key; n_value = value; n_epoch = epoch;
              n_prev = None; n_next = None }
          in
          Hashtbl.replace sh.s_tbl key node;
          push_front sh node);
        let evicted = ref 0 in
        while Hashtbl.length sh.s_tbl > sh.s_capacity do
          match sh.s_lru with
          | None -> Hashtbl.reset sh.s_tbl (* unreachable *)
          | Some victim ->
            unlink sh victim;
            Hashtbl.remove sh.s_tbl victim.n_key;
            sh.s_evictions <- sh.s_evictions + 1;
            incr evicted
        done;
        !evicted)
  in
  for _ = 1 to evicted do
    count t "sb_plan_cache_evictions_total"
  done

let clear (t : 'a t) =
  Array.iter
    (fun sh ->
      locked sh (fun () ->
          watch sh ~site:"Plan_cache.clear" ~write:true;
          Hashtbl.reset sh.s_tbl;
          sh.s_mru <- None;
          sh.s_lru <- None))
    t.shards

let stats (t : 'a t) : stats =
  Array.fold_left
    (fun acc sh ->
      locked sh (fun () ->
          watch sh ~site:"Plan_cache.stats" ~write:false;
          {
            hits = acc.hits + sh.s_hits;
            misses = acc.misses + sh.s_misses;
            evictions = acc.evictions + sh.s_evictions;
            invalidations = acc.invalidations + sh.s_invalidations;
            resident = acc.resident + Hashtbl.length sh.s_tbl;
          }))
    { hits = 0; misses = 0; evictions = 0; invalidations = 0; resident = 0 }
    t.shards
