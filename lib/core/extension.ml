(** The database customizer's (DBC's) interface: every extension point
    Corona and Core expose, in one place.

    A DBC may add — without touching base-system code —
    {ul
    {- new column datatypes ({!register_datatype});}
    {- new scalar / aggregate / set-predicate / table functions;}
    {- new storage managers and access-method kinds (Core attachments);}
    {- new query-rewrite rules, in existing or new rule classes;}
    {- new optimizer STARs / alternatives, and index probe matchers;}
    {- new join kinds and SELECT-box plan handlers in the QES;}
    {- new table operations in the language (enabled by name).}} *)

open Sb_storage
module Functions = Sb_hydrogen.Functions
module Rule = Sb_rewrite.Rule
module Star = Sb_optimizer.Star
module Generator = Sb_optimizer.Generator
module Exec = Sb_qes.Exec

type t = Corona.t

(* --- language extensions --- *)

(* Catalog-level registries are shared by every session of a
   multi-session server, and each session runs the same extension
   installer — so catalog registrations are idempotent: re-registering
   an already-present name is a no-op rather than a duplicate error. *)

let register_datatype (db : t) ops =
  let reg = db.Corona.catalog.Catalog.datatypes in
  if Datatype.find reg ops.Datatype.ext_name = None then
    Datatype.register reg ops

let register_scalar_function (db : t) f =
  Functions.register_scalar db.Corona.functions f

let register_aggregate_function (db : t) f =
  Functions.register_aggregate db.Corona.functions f

let register_set_predicate (db : t) f =
  Functions.register_set_predicate db.Corona.functions f

let register_table_function (db : t) f =
  Functions.register_table_fn db.Corona.functions f

(** Enables an extension table operation in the language (e.g.
    ["left_outer_join"]); the builder refuses the syntax until then. *)
let enable_operation (db : t) name =
  let cfg = db.Corona.builder_cfg in
  if not (List.mem name cfg.Sb_qgm.Builder.enabled_ops) then
    cfg.Sb_qgm.Builder.enabled_ops <- name :: cfg.Sb_qgm.Builder.enabled_ops

(* --- data management extensions (Core attachments) --- *)

let register_storage_manager (db : t) factory =
  let reg = db.Corona.catalog.Catalog.storage_managers in
  if Storage_manager.find reg factory.Storage_manager.factory_name = None then
    Storage_manager.register reg factory

let register_access_method (db : t) kind =
  let reg = db.Corona.catalog.Catalog.access_methods in
  if Access_method.find reg kind.Access_method.kind_name = None then
    Access_method.register reg kind

(** Assigns tables to (simulated) sites; the optimizer inserts SHIP
    operators and charges network cost for cross-site access. *)
let set_site_map (db : t) site_of = db.Corona.catalog.Catalog.site_of <- site_of

(* --- query rewrite extensions --- *)

let register_rewrite_rule (db : t) rule = Rule.add db.Corona.rules rule

(** The verified path: the declarative rule is statically checked at
    registration (obligations proved, or guarded, or the registration
    refused with a structured error) — unlike {!register_rewrite_rule},
    whose closures the system must take on trust. *)
let register_dsl_rewrite_rule (db : t) rule = Corona.register_dsl_rule db rule

let rewrite_rule_classes (db : t) = Rule.classes db.Corona.rules

(* --- optimizer extensions --- *)

let register_star (db : t) name alternatives =
  Star.register db.Corona.optimizer.Generator.sctx name alternatives

let register_probe_matcher (db : t) matcher =
  let sctx = db.Corona.optimizer.Generator.sctx in
  sctx.Star.probe_matchers <- sctx.Star.probe_matchers @ [ matcher ]

let register_select_handler (db : t) handler =
  db.Corona.optimizer.Generator.select_handlers <-
    db.Corona.optimizer.Generator.select_handlers @ [ handler ]

(* --- QES extensions --- *)

let register_join_kind (db : t) name impl =
  Exec.register_join_kind db.Corona.exec_db name impl
