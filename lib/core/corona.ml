(** Corona, the Starburst query language processor: the full pipeline of
    Figure 1 — parse → QGM (with semantic analysis) → query rewrite →
    cost-based plan optimization → plan refinement → execution — over
    the Core data manager, in one handle.

    {[
      let db = Starburst.create () in
      Starburst.run db "CREATE TABLE parts (partno INT UNIQUE, name STRING)";
      Starburst.run db "INSERT INTO parts VALUES (1, 'bolt')";
      match Starburst.run db "SELECT name FROM parts WHERE partno = 1" with
      | Rows { rows; _ } -> ...
    ]} *)

open Sb_storage
module Ast = Sb_hydrogen.Ast
module Parser = Sb_hydrogen.Parser
module Pretty = Sb_hydrogen.Pretty
module Functions = Sb_hydrogen.Functions
module Qgm = Sb_qgm.Qgm
module Builder = Sb_qgm.Builder
module Check = Sb_qgm.Check
module Qgm_print = Sb_qgm.Print
module Rule = Sb_rewrite.Rule
module Engine = Sb_rewrite.Engine
module Base_rules = Sb_rewrite.Base_rules
module Rule_dsl = Sb_ruledsl.Dsl
module Rule_compile = Sb_ruledsl.Compile
module Rule_verify = Sb_ruledsl.Verify
module Rule_builtin = Sb_ruledsl.Builtin
module Plan = Sb_optimizer.Plan
module Star = Sb_optimizer.Star
module Generator = Sb_optimizer.Generator
module Exec = Sb_qes.Exec
module Trace = Sb_obs.Trace
module Metrics = Sb_obs.Metrics
module Plan_check = Sb_verify.Plan_check
module Rule_audit = Sb_verify.Rule_audit
module Lint = Sb_verify.Lint
module Infer = Sb_analysis.Infer
module Err = Sb_resil.Err
module Limits = Sb_resil.Limits
module Faults = Sb_resil.Faults

exception Error of Err.t

(* most in-pipeline errors raised here are semantic (bad names, arity
   mismatches, invalid options); other stages raise their own
   exceptions, classified at the {!run} boundary *)
let error fmt =
  Fmt.kstr (fun s -> raise (Error (Err.make Err.Semantic s))) fmt

(** A compiled query: "these two stages may be separated in time, since
    the result of the compilation stage can be stored for future use"
    (section 3).  Host variables are bound at execution time, so one
    prepared plan serves many parameter values. *)
type prepared = {
  prep_text : string;
  prep_columns : string list;
  prep_plan : Plan.plan;
}

type t = {
  catalog : Catalog.t;
  plan_cache : prepared Plan_cache.t;
      (** shared when several sessions are created over one catalog *)
  functions : Functions.t;
  builder_cfg : Builder.config;
  rules : Rule.set;
  rule_stats : (string, int * int) Hashtbl.t;
      (** cumulative per-rule (fires, attempts) across the session *)
  mutable dsl_statuses : (string * Rule_verify.status) list;
      (** verification status of every DSL-compiled rule, by name *)
  optimizer : Generator.t;
  exec_db : Exec.db;
  mutable rewrite_enabled : bool;
  mutable rewrite_strategy : Engine.strategy;
  mutable rewrite_search : Engine.search;
  mutable rewrite_budget : int option;
  mutable check_qgm : bool;  (** verify QGM consistency after each rule *)
  mutable paranoid : bool;
      (** sanitizer mode ([STARBURST_PARANOID=1] / [SET paranoid = on]):
          per-firing rule audits, plan validation after optimization,
          and differential execution of rewritten queries *)
  mutable hosts : (string * Value.t) list;  (** host-variable bindings *)
  mutable last_counters : Exec.counters;
  mutable last_rewrite : Engine.stats option;
  metrics : Metrics.t;
  mutable tracer : Trace.t;  (** {!Trace.noop} unless tracing is on *)
  limits : Limits.t;  (** per-query resource limits (SET limit_<name>) *)
  mutable last_gov : Limits.gov;  (** governor of the current/last query *)
  mutable last_degraded : string option;
      (** why the last statement fell back to a degraded compilation *)
  (* -- durability: every DML statement is an implicit transaction -- *)
  mutable txn_current : int;
      (** transaction id of the in-flight statement; 0 when none *)
  mutable txn_undo : (string * Tuple.t option * Tuple.t option) list;
      (** the statement's logged changes, newest first, for rollback *)
  mutable txn_replaying : bool;
      (** recovery replay in progress: suppress logging and the
          needs-recovery gate *)
  mutable last_txn : int;  (** id of the last committed transaction *)
  mutable wal_checkpoint_every : int;
      (** take a fuzzy checkpoint every N commits; 0 disables *)
  mutable commits_since_checkpoint : int;
}

type result =
  | Rows of { columns : string list; rows : Tuple.t list }
  | Affected of int
  | Message of string

let create ?(pool_capacity = 256) ?limits ?catalog ?plan_cache () : t =
  let catalog =
    match catalog with
    | Some c -> c
    | None -> Catalog.create ~pool_capacity ()
  in
  let functions = Functions.create () in
  let builder_cfg = Builder.make_config ~catalog ~functions in
  let limits =
    match limits with
    | Some l -> l
    | None -> Limits.apply_env (Limits.default ())
  in
  let metrics = Metrics.create () in
  let plan_cache =
    match plan_cache with
    | Some pc -> pc
    | None -> Plan_cache.create ~metrics ()
  in
  Wal.set_metrics catalog.Catalog.wal metrics;
  {
    catalog;
    plan_cache;
    functions;
    builder_cfg;
    rules = Base_rules.default_set ~catalog;
    rule_stats = Hashtbl.create 32;
    dsl_statuses = [];
    optimizer = Generator.create ~catalog ~functions ();
    exec_db = Exec.make_db ~catalog ~functions;
    rewrite_enabled = true;
    rewrite_strategy = Engine.Sequential;
    rewrite_search = Engine.Depth_first;
    rewrite_budget = None;
    check_qgm = false;
    paranoid = Rule_audit.paranoid_env ();
    hosts = [];
    last_counters = Exec.fresh_counters ();
    last_rewrite = None;
    metrics;
    tracer = Trace.noop;
    limits;
    last_gov = Limits.start limits;
    last_degraded = None;
    txn_current = 0;
    txn_undo = [];
    txn_replaying = false;
    last_txn = 0;
    wal_checkpoint_every = 0;
    commits_since_checkpoint = 0;
  }

let bind_host t name value =
  t.hosts <- (name, value) :: List.remove_assoc name t.hosts

let counters t = t.last_counters
let last_rewrite t = t.last_rewrite

(* ------------------------------------------------------------------ *)
(* Resilience                                                          *)
(* ------------------------------------------------------------------ *)

let limits t = t.limits
let last_gov t = t.last_gov
let last_degraded t = t.last_degraded

(** Opens a fresh governor for one statement: all pipeline stages —
    optimizer plan generation included — charge against it. *)
let begin_statement t : Limits.gov =
  let gov = Limits.start t.limits in
  t.last_gov <- gov;
  t.last_degraded <- None;
  t.last_rewrite <- None;
  t.optimizer.Generator.sctx.Star.governor <- Some gov;
  gov

(** Installs a fault-injection plan on storage (catalog lookups, buffer
    pool, index searches); injections and retries land in {!metrics}. *)
let set_faults t (f : Faults.t) =
  Faults.set_metrics f t.metrics;
  Catalog.set_faults t.catalog f

let faults t = Catalog.faults t.catalog

(* runs [f] with the optimizer governor suspended (paranoid baselines
   and greedy fallbacks must not charge the statement's plan budget) *)
let without_opt_governor t f =
  let sctx = t.optimizer.Generator.sctx in
  let saved = sctx.Star.governor in
  sctx.Star.governor <- None;
  Fun.protect ~finally:(fun () -> sctx.Star.governor <- saved) f

(* ------------------------------------------------------------------ *)
(* Observability                                                       *)
(* ------------------------------------------------------------------ *)

let tracer t = t.tracer
let metrics t = t.metrics

(** Installs [tr] on the pipeline: Corona's stage spans, the rewrite
    engine's per-firing spans, and the optimizer's STAR expansion spans
    all record into it. *)
let set_tracer t (tr : Trace.t) =
  t.tracer <- tr;
  t.optimizer.Generator.sctx.Star.tracer <- tr

(** Wraps one pipeline stage: a [stage.<name>] span plus a latency
    observation in the [sb_stage_duration_ns] histogram.  Free when
    tracing is disabled. *)
let stage t name f =
  if not (Trace.enabled t.tracer) then f ()
  else begin
    let t0 = Trace.now_ns () in
    let v = Trace.with_span t.tracer ("stage." ^ name) f in
    Metrics.observe_ns
      (Metrics.histogram ~label:("stage", name) t.metrics "sb_stage_duration_ns")
      (Int64.sub (Trace.now_ns ()) t0);
    v
  end

(* one output path for execution counters: fold each run's Exec.counters
   into the metrics registry (satellite: c_* and the per-operator
   metrics share the dump) *)
let record_exec_counters t (c : Exec.counters) =
  let add name v =
    if v > 0 then Metrics.incr ~by:v (Metrics.counter t.metrics name)
  in
  add "sb_exec_scanned_total" c.Exec.c_scanned;
  add "sb_exec_index_probes_total" c.Exec.c_index_probes;
  add "sb_exec_shipped_total" c.Exec.c_shipped;
  add "sb_exec_sorted_total" c.Exec.c_sorted;
  add "sb_exec_sub_evals_total" c.Exec.c_sub_evals;
  add "sb_exec_sub_cache_hits_total" c.Exec.c_sub_cache_hits;
  add "sb_exec_or_branch_evals_total" c.Exec.c_or_branch_evals;
  add "sb_exec_fixpoint_rounds_total" c.Exec.c_fixpoint_rounds;
  add "sb_exec_batches_total" c.Exec.c_batches;
  add "sb_exec_output_total" c.Exec.c_output

let record_rewrite_stats t (stats : Engine.stats) =
  (* cumulative per-rule accounting backs EXPLAIN RULES, the shell's
     [\rules] and the dead-rule lint — always on, unlike the metrics *)
  let bump fires attempts name =
    let f0, a0 =
      Option.value ~default:(0, 0) (Hashtbl.find_opt t.rule_stats name)
    in
    Hashtbl.replace t.rule_stats name (f0 + fires, a0 + attempts)
  in
  List.iter (fun (rule, n) -> bump 0 n rule) stats.Engine.attempts;
  List.iter (fun (rule, n) -> bump n 0 rule) stats.Engine.firings;
  if Trace.enabled t.tracer then
    List.iter
      (fun (rule, n) ->
        Metrics.incr ~by:n
          (Metrics.counter ~label:("rule", rule) t.metrics
             "sb_rewrite_rule_fires_total"))
      stats.Engine.firings

(** Cumulative per-rule [(name, (fires, attempts))] rows, sorted by
    name. *)
let rule_stats t : (string * (int * int)) list =
  Hashtbl.fold (fun name fa acc -> (name, fa) :: acc) t.rule_stats []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* ------------------------------------------------------------------ *)
(* The rule DSL                                                        *)
(* ------------------------------------------------------------------ *)

(** Compiles and registers a declarative rewrite rule.  The static
    verifier runs at registration: a [Rejected] rule never enters the
    rule set — it surfaces as a structured semantic {!Err.t} naming the
    failed obligation and the counterexample sketch.  [Conditional]
    rules register with their runtime guards auto-inserted; the
    returned status says which obligations were discharged statically. *)
let register_dsl_rule t (r : Rule_dsl.rule) : Rule_verify.status =
  match Rule_compile.compile ~catalog:t.catalog r with
  | Error status ->
    raise
      (Error
         (Err.make Err.Semantic
            (Fmt.str "rule %s rejected by the static verifier: %s"
               r.Rule_dsl.name
               (Rule_verify.status_to_string status))))
  | Ok (rule, status) ->
    Rule.add t.rules rule;
    t.dsl_statuses <-
      (r.Rule_dsl.name, status)
      :: List.remove_assoc r.Rule_dsl.name t.dsl_statuses;
    status

(** Replaces the native predicate/redundant rule families with their
    DSL-compiled ports, in place (registration order, priorities and
    rewrite behavior are unchanged — the ports rewrite byte-identically,
    which the fuzz oracle's [--rules both] mode checks).  A builtin the
    verifier rejects is an internal error: the build's strict mode
    ([fuzz_main --rules-status]) fails on it. *)
let use_dsl_builtins t : unit =
  let compiled =
    List.map
      (fun (r : Rule_dsl.rule) ->
        match Rule_compile.compile ~catalog:t.catalog r with
        | Ok (rule, status) -> (r.Rule_dsl.name, (rule, status))
        | Error status ->
          raise
            (Error
               (Err.make Err.Internal
                  (Fmt.str "builtin rule %s rejected: %s" r.Rule_dsl.name
                     (Rule_verify.status_to_string status)))))
      Rule_builtin.all
  in
  t.rules.Rule.rules <-
    List.map
      (fun (r : Rule.t) ->
        match List.assoc_opt r.Rule.rule_name compiled with
        | Some (rule, _) -> rule
        | None -> r)
      t.rules.Rule.rules;
  List.iter
    (fun (name, (_, status)) ->
      t.dsl_statuses <-
        (name, status) :: List.remove_assoc name t.dsl_statuses)
    compiled

(** The EXPLAIN RULES / [\rules] report: every registered rule with its
    class, priority, origin, verification status (DSL rules only —
    native closures are opaque to the verifier) and cumulative
    fire/attempt counts, followed by any dead-rule lints. *)
let rules_report t : string =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Fmt.str "%-28s %-10s %4s  %-6s  %-24s %10s\n" "rule" "class" "prio"
       "origin" "verification" "fires/attempts");
  List.iter
    (fun (r : Rule.t) ->
      let fires, attempts =
        Option.value ~default:(0, 0)
          (Hashtbl.find_opt t.rule_stats r.Rule.rule_name)
      in
      let verification =
        match r.Rule.rule_origin with
        | Rule.Native -> "-"
        | Rule.Dsl -> (
          match List.assoc_opt r.Rule.rule_name t.dsl_statuses with
          | Some s -> Rule_verify.status_to_string s
          | None -> "?")
      in
      Buffer.add_string buf
        (Fmt.str "%-28s %-10s %4d  %-6s  %-24s %6d/%-6d\n" r.Rule.rule_name
           r.Rule.rule_class r.Rule.rule_priority
           (match r.Rule.rule_origin with
           | Rule.Native -> "native"
           | Rule.Dsl -> "dsl")
           verification fires attempts))
    (Rule.all t.rules);
  (match Lint.lint_rules (rule_stats t) with
  | [] -> ()
  | diags ->
    Buffer.add_string buf "== LINT ==\n";
    List.iter
      (fun d -> Buffer.add_string buf ("  " ^ Lint.diag_to_string d ^ "\n"))
      diags);
  Buffer.contents buf

(** The Prometheus-style text dump of the database's metrics registry:
    stage latencies, per-rule firings, and execution counters. *)
let metrics_dump t = Metrics.dump t.metrics

(* ------------------------------------------------------------------ *)
(* The compilation pipeline                                            *)
(* ------------------------------------------------------------------ *)

let build_qgm t (wq : Ast.with_query) : Qgm.t =
  stage t "build" (fun () -> Builder.build t.builder_cfg wq)

let rewrite t (g : Qgm.t) : Engine.stats =
  (* paranoid mode wraps every rule in the soundness audit (consistency
     asserted before and after each firing, attributed by rule name) and
     the inference audit (inferred top-box properties compared before
     and after each firing; regressions are logged and counted, never
     fatal — a rewrite may trade derivable precision for shape) *)
  let rules = Rule.all t.rules in
  let rules =
    if t.paranoid then
      Rule_audit.instrument_inference ~catalog:t.catalog
        ~on_regression:(fun msg ->
          Metrics.incr (Metrics.counter t.metrics "sb_analysis_regressions_total");
          Logs.warn (fun m -> m "analysis regression: %s" msg))
        (Rule_audit.instrument rules)
    else rules
  in
  let stats =
    stage t "rewrite" (fun () ->
        Engine.run ~strategy:t.rewrite_strategy ~search:t.rewrite_search
          ?budget:t.rewrite_budget
          ~check_each:(t.check_qgm || t.paranoid)
          ~tracer:t.tracer ~rules g)
  in
  t.last_rewrite <- Some stats;
  record_rewrite_stats t stats;
  stats

let parse t (text : string) : Ast.with_query =
  stage t "parse" (fun () -> Parser.query_text text)

(** Plan refinement (Figure 1's final compile phase): cleanups between
    the optimizer's output and the executable plan —
    residual CHOOSE nodes resolve to their first alternative, empty
    filters disappear, subquery-free filters collapse into the SCAN
    below them, and adjacent projections fuse. *)
let rec refine (p : Plan.plan) : Plan.plan =
  let p = { p with Plan.inputs = List.map refine p.Plan.inputs } in
  match p.Plan.op, p.Plan.inputs with
  | Plan.Choose_op, first :: _ -> first
  | Plan.Filter [], [ input ] -> input
  | ( Plan.Filter preds,
      [ { Plan.op = Plan.Scan { sc_table; sc_cols; sc_preds }; inputs = []; props = _ } ] )
    when not (List.exists Plan.rexpr_has_sub preds) ->
    (* scan predicates are expressed over base column indices; remap the
       filter's output-slot references through sc_cols *)
    let cols = Array.of_list sc_cols in
    let remapped =
      List.map (Plan.map_rexpr (function
        | Plan.RCol i when i < Array.length cols -> Plan.RCol cols.(i)
        | e -> e))
        preds
    in
    {
      p with
      Plan.op = Plan.Scan { sc_table; sc_cols; sc_preds = sc_preds @ remapped };
      inputs = [];
    }
  | Plan.Project outer_exprs, [ { Plan.op = Plan.Project inner_exprs; inputs; props = _ } ]
    when not (List.exists Plan.rexpr_has_sub (outer_exprs @ inner_exprs)) ->
    (* compose: outer slots index into inner expressions *)
    let inner = Array.of_list inner_exprs in
    let composed =
      List.map
        (Plan.map_rexpr (function
          | Plan.RCol i when i < Array.length inner -> inner.(i)
          | e -> e))
        outer_exprs
    in
    { p with Plan.op = Plan.Project composed; inputs }
  | _ -> p

let optimize t (g : Qgm.t) : Plan.plan =
  let plan = stage t "optimize" (fun () -> Generator.optimize t.optimizer g) in
  (* paranoid: validate the optimizer's claims before refinement runs *)
  if t.paranoid then Plan_check.assert_valid ~catalog:t.catalog plan;
  plan

let refine_plan t (p : Plan.plan) : Plan.plan = stage t "refine" (fun () -> refine p)

(* ------------------------------------------------------------------ *)
(* Graceful degradation                                                *)
(* ------------------------------------------------------------------ *)

let exn_message = function
  | Error e | Err.Error e -> Err.to_string e
  | Qgm.Qgm_error m | Star.Opt_error m | Generator.Unsupported m
  | Plan_check.Invalid_plan m | Rule_audit.Unsound m | Failure m ->
    m
  | exn -> Printexc.to_string exn

let degrade t ~stage:stage_name ~reason =
  t.last_degraded <- Some reason;
  Metrics.incr
    (Metrics.counter ~label:("stage", stage_name) t.metrics "sb_degraded_total");
  if Trace.enabled t.tracer then
    Trace.with_span t.tracer "degraded"
      ~attrs:[ ("stage", stage_name); ("reason", reason) ]
      (fun () -> ())

(** Rewrite with fallback: if the engine (or a paranoid audit) fails,
    the half-transformed graph is discarded and the canonical QGM is
    rebuilt from the AST — the query still runs, un-rewritten, with a
    degradation span + metric recorded.  Returns the graph to continue
    compiling. *)
let rewrite_degradable t (wq : Ast.with_query) (g : Qgm.t) : Qgm.t =
  if not t.rewrite_enabled then g
  else
    match rewrite t g with
    | _ -> g
    | exception ((Stack_overflow | Out_of_memory) as exn) -> raise exn
    | exception exn -> (
      match build_qgm t wq with
      | g0 ->
        degrade t ~stage:"rewrite"
          ~reason:(Fmt.str "rewrite failed: %s" (exn_message exn));
        g0
      | exception _ -> raise exn)

(** Optimization with fallback: on failure (including a blown plan-node
    budget) retry under {!Star.greedy_strategy} with the governor
    suspended — one cheap plan per STAR always exists for the base
    rules.  Re-raises the original error if even that fails. *)
let optimize_degradable t (g : Qgm.t) : Plan.plan =
  try optimize t g with
  | (Stack_overflow | Out_of_memory) as exn -> raise exn
  | exn -> (
    let sctx = t.optimizer.Generator.sctx in
    let saved = sctx.Star.strategy in
    let retry () =
      Fun.protect
        ~finally:(fun () -> sctx.Star.strategy <- saved)
        (fun () ->
          sctx.Star.strategy <- Star.greedy_strategy;
          without_opt_governor t (fun () -> optimize t g))
    in
    match retry () with
    | plan ->
      degrade t ~stage:"optimize"
        ~reason:(Fmt.str "optimize failed: %s; greedy fallback" (exn_message exn));
      plan
    | exception _ -> raise exn)

let compile ?(rewrite_enabled = true) t (wq : Ast.with_query) : Plan.plan =
  ignore (begin_statement t);
  let g = build_qgm t wq in
  let g = if rewrite_enabled then rewrite_degradable t wq g else g in
  refine_plan t (optimize_degradable t g)

let compile_text t (text : string) : Plan.plan = compile t (parse t text)

(* ------------------------------------------------------------------ *)
(* Query execution                                                     *)
(* ------------------------------------------------------------------ *)

let exec_plan t (gov : Limits.gov) (plan : Plan.plan) : Tuple.t list =
  let counters = Exec.fresh_counters () in
  t.last_counters <- counters;
  let rows =
    stage t "execute" (fun () ->
        Exec.run ~hosts:t.hosts ~counters ~gov t.exec_db plan)
  in
  record_exec_counters t counters;
  rows

let run_plan t (plan : Plan.plan) : Tuple.t list =
  exec_plan t (begin_statement t) plan

(* A query's results are deterministic unless some box keeps LIMIT rows
   of an unordered stream — the one case the differential oracle must
   skip (both sides are "right" with different rows). *)
let deterministic_results (g : Qgm.t) : bool =
  List.for_all
    (fun (b : Qgm.box) -> b.Qgm.b_limit = None || b.Qgm.b_order <> [])
    (Qgm.reachable_boxes g)

(* ORDER BY pins only its keys, so the differential comparison must let
   rows tied on every key permute.  Map each order key to the head
   column carrying the same expression; keys not exposed in the head
   cannot be checked positionally and are skipped (the bag comparison
   still covers them). *)
let audit_sort_keys (g : Qgm.t) : int list =
  let tb = Qgm.top_box g in
  List.filter_map
    (fun (e, _dir) ->
      let rec idx i = function
        | [] -> None
        | (hc : Qgm.head_col) :: rest ->
          if hc.Qgm.hc_expr = Some e then Some i else idx (i + 1) rest
      in
      idx 0 tb.Qgm.b_head)
    tb.Qgm.b_order

let query_ast t (wq : Ast.with_query) : string list * Tuple.t list =
  let gov = begin_statement t in
  let g = build_qgm t wq in
  (* paranoid: execute the un-rewritten compilation first; the rewritten
     one must return the same rows.  The baseline is rebuilt from the
     AST (the engine garbage-collects unreachable copies). *)
  let baseline =
    if t.paranoid && t.rewrite_enabled && deterministic_results g then begin
      let g0 = build_qgm t wq in
      (* executed without counter/metrics recording, and outside the
         statement's plan budget: the oracle run must not be observable
         as a second query *)
      Some
        (without_opt_governor t (fun () ->
             Exec.run ~hosts:t.hosts t.exec_db (refine_plan t (optimize t g0))))
    end
    else None
  in
  let g = rewrite_degradable t wq g in
  let columns =
    List.map (fun hc -> hc.Qgm.hc_name) (Qgm.top_box g).Qgm.b_head
  in
  let plan = refine_plan t (optimize_degradable t g) in
  let rows = exec_plan t gov plan in
  Option.iter
    (fun before ->
      Rule_audit.assert_equivalent ~registry:t.catalog.Catalog.datatypes
        ~ordered:((Qgm.top_box g).Qgm.b_order <> [])
        ~sort_keys:(audit_sort_keys g) ~what:"rewrite" before rows)
    baseline;
  (columns, rows)

(** Runs a query text, returning its rows. *)
let query t (text : string) : Tuple.t list = snd (query_ast t (parse t text))

(* ------------------------------------------------------------------ *)
(* Prepared statements                                                 *)
(* ------------------------------------------------------------------ *)

(** Compiles [text] once; see {!execute_prepared}. *)
let prepare t (text : string) : prepared =
  ignore (begin_statement t);
  let wq = parse t text in
  let g = build_qgm t wq in
  let g = rewrite_degradable t wq g in
  let columns = List.map (fun hc -> hc.Qgm.hc_name) (Qgm.top_box g).Qgm.b_head in
  let plan = refine_plan t (optimize_degradable t g) in
  { prep_text = text; prep_columns = columns; prep_plan = plan }

(** Executes a prepared query under the current host-variable bindings. *)
let execute_prepared t (p : prepared) : Tuple.t list = run_plan t p.prep_plan

(* A plan is only reusable under the compile options it was built with,
   so those options are part of the cache key.  This is also what keeps
   a shed (greedy-strategy) compilation from being served to sessions
   running at full optimization, and vice versa. *)
let settings_fingerprint t : string =
  let strategy =
    match t.rewrite_strategy with
    | Engine.Sequential -> "seq"
    | Engine.Priority -> "pri"
    | Engine.Statistical { seed; _ } -> Fmt.str "stat:%d" seed
  in
  Fmt.str "rw=%b,%s,%s,%s;opt=%s,%b,%b"
    t.rewrite_enabled strategy
    (match t.rewrite_search with
    | Engine.Depth_first -> "dfs"
    | Engine.Breadth_first -> "bfs")
    (match t.rewrite_budget with None -> "-" | Some n -> string_of_int n)
    t.optimizer.Generator.sctx.Star.strategy.Star.st_name
    t.optimizer.Generator.allow_bushy t.optimizer.Generator.allow_cartesian

let plan_cache_key t (text : string) : string =
  Plan_cache.normalize text ^ "\x00" ^ settings_fingerprint t

(** Like {!query}, but caches the compiled plan, keyed on normalized
    query text plus the session's compile options.  Entries remember the
    catalog/statistics epoch they were compiled at, so DDL and ANALYZE
    (from this session or any other sharing the catalog) invalidate
    them; eviction is LRU.  A degraded compilation is executed but never
    cached. *)
let cached_query t (text : string) : Tuple.t list =
  let key = plan_cache_key t text in
  let epoch = Catalog.epoch t.catalog in
  match Plan_cache.find t.plan_cache ~epoch key with
  | Some p -> execute_prepared t p
  | None ->
    let p = prepare t text in
    if t.last_degraded = None then Plan_cache.add t.plan_cache ~epoch key p;
    execute_prepared t p

let clear_plan_cache t = Plan_cache.clear t.plan_cache
let plan_cache_stats t = Plan_cache.stats t.plan_cache

(* ------------------------------------------------------------------ *)
(* DML                                                                 *)
(* ------------------------------------------------------------------ *)

(** Compiles an expression over a single table's row (no subqueries) for
    UPDATE/DELETE; columns resolve against the table schema. *)
let compile_row_expr t ~(schema : Schema.t) ~alias (e : Ast.expr) : Plan.rexpr =
  let rec go (e : Ast.expr) : Plan.rexpr =
    match e with
    | Ast.Lit v -> Plan.RLit v
    | Ast.Host v -> Plan.RHost v
    | Ast.Col (qual, name) -> (
      (match qual with
      | Some q when Option.map String.lowercase_ascii alias
                    <> Some (String.lowercase_ascii q)
                    && String.lowercase_ascii q
                       <> String.lowercase_ascii (Option.value ~default:q alias) ->
        ()
      | _ -> ());
      match Schema.find_index schema name with
      | Some i -> Plan.RCol i
      | None -> error "unknown column %s" name)
    | Ast.Bin (op, a, b) -> Plan.RBin (op, go a, go b)
    | Ast.Un (op, a) -> Plan.RUn (op, go a)
    | Ast.Func (name, args) ->
      if Functions.find_scalar t.functions name = None then
        error "unknown function %s" name;
      Plan.RFun (name, List.map go args)
    | Ast.Case (arms, els) ->
      Plan.RCase (List.map (fun (c, v) -> (go c, go v)) arms, Option.map go els)
    | Ast.Is_null a -> Plan.RIs_null (go a)
    | Ast.Like (a, pat) -> Plan.RLike (go a, pat)
    | Ast.Between (a, lo, hi) ->
      let x = go a in
      Plan.RBin (Ast.And, Plan.RBin (Ast.Ge, x, go lo), Plan.RBin (Ast.Le, x, go hi))
    | Ast.In_list (a, items) ->
      let x = go a in
      List.fold_left
        (fun acc item -> Plan.RBin (Ast.Or, acc, Plan.RBin (Ast.Eq, x, go item)))
        (Plan.RLit (Value.Bool false))
        items
    | Ast.Agg _ | Ast.In_query _ | Ast.Exists _ | Ast.Quant_cmp _
    | Ast.Scalar_query _ ->
      error "subqueries and aggregates are not supported in UPDATE/DELETE"
  in
  go e

(* ------------------------------------------------------------------ *)
(* Durability: implicit transactions over the WAL                      *)
(* ------------------------------------------------------------------ *)

let wal t = t.catalog.Catalog.wal
let wal_stats t = Wal.stats (wal t)
let last_txn t = t.last_txn

(* Logs one value-based change of the in-flight transaction and keeps
   its inverse for rollback.  No-op outside a transaction (WAL off or
   recovery replay). *)
let log_update t ~table ~before ~after =
  if t.txn_current <> 0 then begin
    t.txn_undo <- (table, before, after) :: t.txn_undo;
    ignore
      (Wal.append (wal t)
         (Wal.Update
            { u_txn = t.txn_current; u_table = table; u_before = before; u_after = after }))
  end

(* Undoes the statement's logged changes, newest first, through
   Table_store (so indexes stay consistent).  Compensations are not
   logged — recovery simply never replays a transaction without a
   Commit record.  Fault injection is suspended: a rollback must not
   itself be failed. *)
let rollback_statement t =
  match t.txn_undo with
  | [] -> ()
  | undo ->
    t.txn_undo <- [];
    let saved = Catalog.faults t.catalog in
    Catalog.set_faults t.catalog Faults.none;
    Fun.protect ~finally:(fun () -> Catalog.set_faults t.catalog saved)
    @@ fun () ->
    List.iter
      (fun (table, before, after) ->
        match Catalog.find_table t.catalog table with
        | None -> ()
        | Some tab ->
          let find_rid row =
            Seq.find_map
              (fun (rid, r) ->
                if Tuple.equal ~registry:tab.Table_store.registry r row then
                  Some rid
                else None)
              (Table_store.scan tab)
          in
          (match (before, after) with
          | None, Some row -> (
            (* inserted: delete it back out *)
            match find_rid row with
            | Some rid -> ignore (Table_store.delete tab rid)
            | None -> ())
          | Some row, None ->
            (* deleted: reinsert the before image *)
            ignore (Table_store.insert tab row)
          | Some b, Some a -> (
            (* updated: restore the before image *)
            match find_rid a with
            | Some rid -> ignore (Table_store.update tab rid b)
            | None -> ())
          | None, None -> ()))
      undo

let maybe_checkpoint t =
  if t.wal_checkpoint_every > 0 then begin
    t.commits_since_checkpoint <- t.commits_since_checkpoint + 1;
    if t.commits_since_checkpoint >= t.wal_checkpoint_every then begin
      t.commits_since_checkpoint <- 0;
      Wal.checkpoint (wal t) ~tables:(Catalog.snapshot_tables t.catalog)
    end
  end

(* Brackets one DML statement in an implicit transaction: Begin before,
   Commit + log force (group commit) on success, rollback + Abort on any
   error.  A simulated crash propagates untouched — the caller discards
   all volatile state, so there is nothing to roll back. *)
let with_txn t (f : unit -> result) : result =
  let w = wal t in
  if t.txn_replaying || (not (Wal.enabled w)) || t.txn_current <> 0 then f ()
  else begin
    let txn = Wal.begin_txn w in
    t.txn_current <- txn;
    t.txn_undo <- [];
    match f () with
    | res ->
      ignore (Wal.append w (Wal.Commit txn));
      t.txn_current <- 0;
      t.txn_undo <- [];
      (* force the log: the commit — and by group commit everything
         queued before it — becomes durable here *)
      Wal.flush w;
      t.last_txn <- txn;
      if Buffer_pool.force_policy t.catalog.Catalog.pool then
        ignore (Buffer_pool.flush_all t.catalog.Catalog.pool : int);
      maybe_checkpoint t;
      res
    | exception Faults.Crashed site ->
      t.txn_current <- 0;
      t.txn_undo <- [];
      raise (Faults.Crashed site)
    | exception exn ->
      t.txn_current <- 0;
      (try rollback_statement t
       with Faults.Crashed _ as c ->
         t.txn_undo <- [];
         raise c);
      ignore (Wal.append w (Wal.Abort txn));
      raise exn
  end

(* DDL auto-commits: one Ddl record, forced immediately.  A crash at
   the append loses the record — and recovery then (correctly) does not
   replay a statement whose success the client never saw. *)
let log_ddl t (text : string) =
  if not t.txn_replaying then begin
    let w = wal t in
    if Wal.enabled w then begin
      ignore (Wal.append w (Wal.Ddl text));
      Wal.flush w
    end
  end

let find_table t name =
  match Catalog.find_table t.catalog name with
  | Some tab -> tab
  | None -> error "no such table %s" name

let do_insert t ~table ~columns (wq : Ast.with_query) : result =
  let tab = find_table t table in
  let schema = tab.Table_store.schema in
  let _, rows = query_ast t wq in
  let positions =
    match columns with
    | None -> List.init (Array.length schema) Fun.id
    | Some names ->
      List.map
        (fun name ->
          match Schema.find_index schema name with
          | Some i -> i
          | None -> error "no column %s in %s" name table)
        names
  in
  let n = ref 0 in
  List.iter
    (fun row ->
      if Array.length row <> List.length positions then
        error "INSERT arity mismatch: %d values for %d columns"
          (Array.length row) (List.length positions);
      let tuple = Array.make (Array.length schema) Value.Null in
      List.iteri (fun i pos -> tuple.(pos) <- row.(i)) positions;
      (try ignore (Table_store.insert tab tuple) with
      | Invalid_argument msg -> error "%s" msg
      (* a constraint violation is a runtime (Exec-stage) failure, like
         the boundary classifier stamps it when it escapes raw *)
      | Table_store.Constraint_violation msg ->
        raise (Error (Err.make Err.Exec msg)));
      log_update t ~table ~before:None ~after:(Some tuple);
      incr n)
    rows;
  Affected !n

let do_delete t ~table ~alias ~where : result =
  let tab = find_table t table in
  let pred =
    Option.map (compile_row_expr t ~schema:tab.Table_store.schema ~alias) where
  in
  let victims =
    Seq.filter_map
      (fun (rid, row) ->
        match pred with
        | None -> Some (rid, row)
        | Some p -> (
          match Exec.eval_row ~hosts:t.hosts t.exec_db ~row p with
          | Value.Bool true -> Some (rid, row)
          | _ -> None))
      (Table_store.scan tab)
    |> List.of_seq
  in
  List.iter
    (fun (rid, row) ->
      if Table_store.delete tab rid then
        log_update t ~table ~before:(Some (Array.copy row)) ~after:None)
    victims;
  Affected (List.length victims)

let do_update t ~table ~alias ~sets ~where : result =
  let tab = find_table t table in
  let schema = tab.Table_store.schema in
  let pred = Option.map (compile_row_expr t ~schema ~alias) where in
  let compiled_sets =
    List.map
      (fun (col, e) ->
        match Schema.find_index schema col with
        | Some i -> (i, compile_row_expr t ~schema ~alias e)
        | None -> error "no column %s in %s" col table)
      sets
  in
  let updates =
    Seq.filter_map
      (fun (rid, row) ->
        let keep =
          match pred with
          | None -> true
          | Some p ->
            Exec.eval_row ~hosts:t.hosts t.exec_db ~row p = Value.Bool true
        in
        if keep then begin
          let row' = Array.copy row in
          List.iter
            (fun (i, e) -> row'.(i) <- Exec.eval_row ~hosts:t.hosts t.exec_db ~row e)
            compiled_sets;
          Some (rid, Array.copy row, row')
        end
        else None)
      (Table_store.scan tab)
    |> List.of_seq
  in
  List.iter
    (fun (rid, before, row) ->
      (try ignore (Table_store.update tab rid row) with
      | Invalid_argument msg -> error "%s" msg
      (* a constraint violation is a runtime (Exec-stage) failure, like
         the boundary classifier stamps it when it escapes raw *)
      | Table_store.Constraint_violation msg ->
        raise (Error (Err.make Err.Exec msg)));
      log_update t ~table ~before:(Some before) ~after:(Some row))
    updates;
  Affected (List.length updates)

(* ------------------------------------------------------------------ *)
(* DDL                                                                 *)
(* ------------------------------------------------------------------ *)

let do_create_table t ~name ~columns ~storage : result =
  let schema =
    Array.of_list
      (List.map
         (fun (cname, ctype, nullable, unique) ->
           match Datatype.of_string t.catalog.Catalog.datatypes ctype with
           | Some ty -> Schema.column ~nullable ~unique cname ty
           | None -> error "unknown type %s" ctype)
         columns)
  in
  (try
     ignore
       (Catalog.create_table t.catalog ?storage ~name ~schema ()
         : Table_store.t)
   with Catalog.Catalog_error msg -> error "%s" msg);
  Message (Fmt.str "table %s created" name)

(* ------------------------------------------------------------------ *)
(* SET options                                                         *)
(* ------------------------------------------------------------------ *)

let on_off = function
  | "on" | "true" | "1" -> true
  | "off" | "false" | "0" -> false
  | v -> error "expected on/off, got %s" v

let do_set t key value : result =
  (match key with
  | "rewrite" -> t.rewrite_enabled <- on_off value
  | "trace" ->
    set_tracer t
      (if on_off value then
         if Trace.enabled t.tracer then t.tracer else Trace.create ()
       else Trace.noop)
  | "bushy" -> t.optimizer.Generator.allow_bushy <- on_off value
  | "cartesian" -> t.optimizer.Generator.allow_cartesian <- on_off value
  | "check_qgm" -> t.check_qgm <- on_off value
  | "paranoid" -> t.paranoid <- on_off value
  | "rewrite_budget" ->
    t.rewrite_budget <-
      (match int_of_string_opt value with
      | Some n when n >= 0 -> Some n
      | _ -> error "rewrite_budget expects an integer")
  | "rewrite_strategy" ->
    t.rewrite_strategy <-
      (match value with
      | "sequential" -> Engine.Sequential
      | "priority" -> Engine.Priority
      | "statistical" -> Engine.Statistical { weights = []; seed = 42 }
      | v -> error "unknown rewrite strategy %s" v)
  | "rewrite_search" ->
    t.rewrite_search <-
      (match value with
      | "depth" | "depth_first" -> Engine.Depth_first
      | "breadth" | "breadth_first" -> Engine.Breadth_first
      | v -> error "unknown search strategy %s" v)
  | "wal" -> Wal.set_enabled t.catalog.Catalog.wal (on_off value)
  | "wal_checkpoint" ->
    t.wal_checkpoint_every <-
      (match int_of_string_opt value with
      | Some n when n >= 0 -> n
      | _ -> error "wal_checkpoint expects a commit count (0 = off)")
  | "wal_force_pages" ->
    Buffer_pool.set_force_policy t.catalog.Catalog.pool (on_off value)
  | "vectorized" -> t.exec_db.Exec.x_vectorized <- on_off value
  | "demand_cache" -> t.exec_db.Exec.x_demand_cache <- on_off value
  | k when String.length k > 6 && String.sub k 0 6 = "limit_" -> (
    match int_of_string_opt value with
    | None -> error "%s expects an integer (0 = unlimited)" k
    | Some n -> (
      match Limits.set t.limits k n with
      | Ok () -> ()
      | Error msg -> error "%s" msg))
  | k -> error "unknown option %s" k);
  Message (Fmt.str "%s = %s" key value)

(* ------------------------------------------------------------------ *)
(* EXPLAIN                                                             *)
(* ------------------------------------------------------------------ *)

(** Renders a plan with the optimizer's estimates next to the actual
    per-operator rows and inclusive time measured by
    {!Exec.run_analyzed}.  An operator the execution never pulled from
    (e.g. behind an empty outer) shows as [never executed]. *)
let pp_analyzed_plan buf (lookup : Plan.plan -> Exec.op_stats option) plan =
  let rec render indent (p : Plan.plan) =
    let detail = Plan.op_detail p.Plan.op in
    let actual =
      match lookup p with
      | Some st ->
        Fmt.str "rows=%d%s time=%s" st.Exec.os_rows
          (if st.Exec.os_batches > 0 then
             Fmt.str " batches=%d" st.Exec.os_batches
           else "")
          (Trace.dur_string st.Exec.os_ns)
      | None -> "never executed"
    in
    Buffer.add_string buf
      (Fmt.str "%s%s%s  {est_rows=%.0f cost=%.2f | actual %s}\n"
         (String.make (indent * 2) ' ')
         (Plan.op_name p.Plan.op)
         (if detail = "" then "" else " " ^ detail)
         p.Plan.props.Plan.p_card p.Plan.props.Plan.p_cost actual);
    List.iter (render (indent + 1)) p.Plan.inputs
  in
  render 0 plan

(** EXPLAIN ANALYZE: compiles with per-stage wall-clock timings, runs
    the plan with per-operator accounting, and prints the LOLEPOP tree
    with estimated vs. actual rows and time. *)
let explain_analyze t (wq : Ast.with_query) : string =
  let gov = begin_statement t in
  let time f =
    let t0 = Trace.now_ns () in
    let v = f () in
    (v, Int64.sub (Trace.now_ns ()) t0)
  in
  let g, build_ns = time (fun () -> build_qgm t wq) in
  let (g, rewrite_stats), rewrite_ns =
    if t.rewrite_enabled then
      let g', ns = time (fun () -> rewrite_degradable t wq g) in
      ((g', t.last_rewrite), ns)
    else ((g, None), 0L)
  in
  let raw_plan, optimize_ns = time (fun () -> optimize_degradable t g) in
  let plan, refine_ns = time (fun () -> refine raw_plan) in
  let counters = Exec.fresh_counters () in
  t.last_counters <- counters;
  let (rows, lookup), execute_ns =
    time (fun () ->
        Exec.run_analyzed ~hosts:t.hosts ~counters ~gov t.exec_db plan)
  in
  record_exec_counters t counters;
  let buf = Buffer.create 1024 in
  (match t.last_degraded with
  | Some reason -> Buffer.add_string buf (Fmt.str "degraded: %s\n" reason)
  | None -> ());
  Buffer.add_string buf "== STAGE TIMINGS ==\n";
  let stage_line name ns extra =
    Buffer.add_string buf
      (Fmt.str "  %-10s %10s%s\n" name (Trace.dur_string ns) extra)
  in
  stage_line "build" build_ns "";
  (match rewrite_stats with
  | Some stats ->
    stage_line "rewrite" rewrite_ns
      (Fmt.str "  (%d rules fired in %d passes)" stats.Engine.rules_fired
         stats.Engine.passes)
  | None -> stage_line "rewrite" 0L "  (disabled)");
  stage_line "optimize" optimize_ns "";
  stage_line "refine" refine_ns "";
  stage_line "execute" execute_ns "";
  Buffer.add_string buf "== PLAN (estimated vs. actual) ==\n";
  pp_analyzed_plan buf lookup plan;
  Buffer.add_string buf (Fmt.str "%d row(s)\n" (List.length rows));
  Buffer.contents buf

(** EXPLAIN VERIFY (and the shell's [\check]): one report from the whole
    {!Sb_verify} suite — QGM consistency before and after rewriting
    (with every firing audited), lints, plan validation against the
    catalog, and differential execution of the un-rewritten vs.
    rewritten compilation. *)
let explain_verify t (wq : Ast.with_query) : string =
  ignore (begin_statement t);
  let buf = Buffer.create 512 in
  let add fmt = Fmt.kstr (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  let report name = function
    | [] -> add "%-26s ok" name
    | msgs ->
      add "%-26s %d violation(s)" name (List.length msgs);
      List.iter (fun m -> add "    %s" m) msgs
  in
  add "== VERIFY ==";
  let g = build_qgm t wq in
  report "qgm (built)" (Check.check g);
  (match Lint.lint_qgm ~catalog:t.catalog g @ Lint.lint_catalog t.catalog with
  | [] -> add "%-26s none" "lint"
  | diags ->
    add "%-26s %d diagnostic(s)" "lint" (List.length diags);
    List.iter (fun d -> add "    %s" (Lint.diag_to_string d)) diags);
  (* baseline: the un-rewritten compilation, executed (when its result
     is deterministic) as the differential oracle *)
  let baseline =
    if t.rewrite_enabled && deterministic_results g then
      Some
        (Exec.run ~hosts:t.hosts t.exec_db
           (refine_plan t
              (stage t "optimize" (fun () ->
                   Generator.optimize t.optimizer (build_qgm t wq)))))
    else None
  in
  (if t.rewrite_enabled then begin
     let audited = Rule_audit.instrument (Rule.all t.rules) in
     match
       stage t "rewrite" (fun () ->
           Engine.run ~strategy:t.rewrite_strategy ~search:t.rewrite_search
             ?budget:t.rewrite_budget ~check_each:true ~tracer:t.tracer
             ~rules:audited g)
     with
     | stats ->
       add "%-26s ok (%d firing(s) audited)" "rule audit" stats.Engine.rules_fired
     | exception Rule_audit.Unsound msg -> add "%-26s UNSOUND: %s" "rule audit" msg
   end
   else add "%-26s skipped (rewrite disabled)" "rule audit");
  report "qgm (rewritten)" (Check.check g);
  let plan = stage t "optimize" (fun () -> Generator.optimize t.optimizer g) in
  report "plan (optimized)"
    (List.map Plan_check.violation_to_string
       (Plan_check.check ~catalog:t.catalog plan));
  let refined = refine_plan t plan in
  report "plan (refined)"
    (List.map Plan_check.violation_to_string
       (Plan_check.check ~catalog:t.catalog refined));
  (match baseline with
  | None ->
    add "%-26s skipped (%s)" "differential"
      (if t.rewrite_enabled then "LIMIT without ORDER BY" else "rewrite disabled")
  | Some before -> (
    let after = run_plan t refined in
    match
      Rule_audit.compare_results ~registry:t.catalog.Catalog.datatypes
        ~ordered:((Qgm.top_box g).Qgm.b_order <> [])
        ~sort_keys:(audit_sort_keys g) before after
    with
    | Ok () -> add "%-26s ok (%d row(s))" "differential" (List.length after)
    | Error msg -> add "%-26s DIVERGED: %s" "differential" msg));
  Buffer.contents buf

(** EXPLAIN ANALYSIS (and the shell's [\infer]): the semantic analysis
    of the rewritten QGM — per-box inferred column properties
    (nullability, value ranges), derived keys, row bounds and provable
    emptiness ({!Sb_analysis.Infer}), the prover-backed lint findings,
    and the plan with inference-tightened estimates. *)
let explain_analysis t (wq : Ast.with_query) : string =
  ignore (begin_statement t);
  let buf = Buffer.create 1024 in
  let g = build_qgm t wq in
  if t.rewrite_enabled then ignore (rewrite_degradable t wq g);
  let t0 = Trace.now_ns () in
  let inf = Infer.analyze ~trust_stats:true ~catalog:t.catalog g in
  let infer_ns = Int64.sub (Trace.now_ns ()) t0 in
  Buffer.add_string buf
    (Fmt.str "== ANALYSIS (%d fact(s), %s) ==\n" (Infer.fact_count inf)
       (Trace.dur_string infer_ns));
  Buffer.add_string buf (Infer.to_string inf g);
  (match Lint.lint_qgm ~catalog:t.catalog g with
  | [] -> ()
  | diags ->
    Buffer.add_string buf "== LINT ==\n";
    List.iter
      (fun d -> Buffer.add_string buf ("  " ^ Lint.diag_to_string d ^ "\n"))
      diags);
  (match refine (optimize_degradable t g) with
  | plan ->
    Buffer.add_string buf "== PLAN (inference-tightened estimates) ==\n";
    Buffer.add_string buf (Plan.to_string plan)
  | exception Generator.Unsupported msg ->
    Buffer.add_string buf (Fmt.str "== PLAN ==\nunsupported: %s\n" msg));
  Buffer.contents buf

let explain t mode (wq : Ast.with_query) : string =
  if mode = Ast.Explain_rules then rules_report t
  else if mode = Ast.Explain_analyze then explain_analyze t wq
  else if mode = Ast.Explain_analysis then explain_analysis t wq
  else if mode = Ast.Explain_verify then explain_verify t wq
  else begin
  ignore (begin_statement t);
  let buf = Buffer.create 512 in
  let g = build_qgm t wq in
  (match mode with
  | Ast.Explain_qgm | Ast.Explain_all ->
    Buffer.add_string buf "== QGM ==\n";
    Buffer.add_string buf (Qgm_print.to_string g)
  | _ -> ());
  let g =
    if t.rewrite_enabled then begin
      let g' = rewrite_degradable t wq g in
      (match mode with
      | Ast.Explain_rewrite | Ast.Explain_all ->
        let fired =
          match t.last_rewrite with
          | Some stats -> stats.Engine.rules_fired
          | None -> 0
        in
        Buffer.add_string buf
          (Fmt.str "== QGM after rewrite (%d rules fired) ==\n" fired);
        Buffer.add_string buf (Qgm_print.to_string g')
      | _ -> ());
      g'
    end
    else g
  in
  (match mode with
  | Ast.Explain_dot ->
    (* Graphviz rendering of the (rewritten) QGM, drawn with the
       paper's Figure 2 conventions *)
    Buffer.add_string buf (Qgm_print.to_dot g)
  | _ -> ());
  (match mode with
  | Ast.Explain_plan | Ast.Explain_all ->
    let plan = refine (optimize_degradable t g) in
    Buffer.add_string buf "== PLAN ==\n";
    Buffer.add_string buf (Plan.to_string plan)
  | _ -> ());
  (match t.last_degraded with
  | Some reason -> Buffer.add_string buf (Fmt.str "degraded: %s\n" reason)
  | None -> ());
  Buffer.contents buf
  end

(* ------------------------------------------------------------------ *)
(* Statement dispatch                                                  *)
(* ------------------------------------------------------------------ *)

(* No wholesale cache clearing here: DDL and ANALYZE bump the catalog
   epoch (inside Catalog, plus {!Catalog.bump_epoch} for the single-table
   path below), which invalidates cached plans lazily; SET changes the
   settings fingerprint, steering lookups away from stale entries. *)
let rec run_statement t (stmt : Ast.statement) : result =
  (* after a (simulated) crash, nothing runs until recovery has: a
     stale in-memory state must never be served as an answer *)
  if (not t.txn_replaying) && Wal.needs_recovery (wal t) then
    raise
      (Error
         (Err.make Err.Storage
            "crash recovery required before statements can run"));
  match stmt with
  | Ast.Stmt_query wq ->
    let columns, rows = query_ast t wq in
    Rows { columns; rows }
  | Ast.Stmt_insert { ins_table; ins_columns; ins_source = Ast.Ins_query wq } ->
    with_txn t (fun () -> do_insert t ~table:ins_table ~columns:ins_columns wq)
  | Ast.Stmt_update { upd_table; upd_alias; upd_sets; upd_where } ->
    with_txn t (fun () ->
        do_update t ~table:upd_table ~alias:upd_alias ~sets:upd_sets
          ~where:upd_where)
  | Ast.Stmt_delete { del_table; del_alias; del_where } ->
    with_txn t (fun () ->
        do_delete t ~table:del_table ~alias:del_alias ~where:del_where)
  | Ast.Stmt_create_table { ct_name; ct_source = Some wq; _ } ->
    (* CREATE TABLE AS: infer the schema from the query's head *)
    let g = build_qgm t wq in
    let schema =
      Array.of_list
        (List.map
           (fun hc ->
             Schema.column hc.Qgm.hc_name
               (Option.value ~default:Datatype.String hc.Qgm.hc_type))
           (Qgm.top_box g).Qgm.b_head)
    in
    (try ignore (Catalog.create_table t.catalog ~name:ct_name ~schema () : Table_store.t)
     with Catalog.Catalog_error msg -> error "%s" msg);
    (* CREATE TABLE AS replays as plain DDL (the inferred schema spelled
       out) followed by the populating inserts, which log as an ordinary
       transaction *)
    log_ddl t
      (Fmt.str "CREATE TABLE %s (%s)" ct_name
         (String.concat ", "
            (List.map
               (fun col ->
                 Fmt.str "%s %s" col.Schema.col_name
                   (Datatype.to_string col.Schema.col_type))
               (Array.to_list schema))));
    let n =
      match with_txn t (fun () -> do_insert t ~table:ct_name ~columns:None wq) with
      | Affected n -> n
      | _ -> 0
    in
    Message (Fmt.str "table %s created (%d rows)" ct_name n)
  | Ast.Stmt_create_table { ct_name; ct_columns; ct_storage; ct_source = None } ->
    let res = do_create_table t ~name:ct_name ~columns:ct_columns ~storage:ct_storage in
    log_ddl t (Pretty.statement_to_string stmt);
    res
  | Ast.Stmt_create_index { ci_name; ci_table; ci_kind; ci_columns } ->
    (try
       ignore
         (Catalog.create_index t.catalog ~name:ci_name ~table:ci_table
            ~kind:(Option.value ~default:"btree" ci_kind)
            ~columns:ci_columns)
     with Catalog.Catalog_error msg -> error "%s" msg);
    log_ddl t (Pretty.statement_to_string stmt);
    Message (Fmt.str "index %s created" ci_name)
  | Ast.Stmt_create_view { cv_name; cv_columns; cv_text } ->
    (* validate the definition now, as DDL should *)
    let _ =
      try Builder.build t.builder_cfg (Parser.query_text cv_text)
      with Builder.Semantic_error msg -> error "invalid view: %s" msg
    in
    (try Catalog.create_view t.catalog ~name:cv_name ~text:cv_text ?columns:cv_columns ()
     with Catalog.Catalog_error msg -> error "%s" msg);
    log_ddl t (Pretty.statement_to_string stmt);
    Message (Fmt.str "view %s created" cv_name)
  | Ast.Stmt_drop_table name ->
    (try Catalog.drop_table t.catalog name
     with Catalog.Catalog_error msg -> error "%s" msg);
    log_ddl t (Pretty.statement_to_string stmt);
    Message (Fmt.str "table %s dropped" name)
  | Ast.Stmt_drop_view name ->
    (try Catalog.drop_view t.catalog name
     with Catalog.Catalog_error msg -> error "%s" msg);
    log_ddl t (Pretty.statement_to_string stmt);
    Message (Fmt.str "view %s dropped" name)
  | Ast.Stmt_drop_index { di_table; di_name } ->
    (try Catalog.drop_index t.catalog ~table:di_table ~name:di_name
     with Catalog.Catalog_error msg -> error "%s" msg);
    log_ddl t (Pretty.statement_to_string stmt);
    Message (Fmt.str "index %s dropped" di_name)
  | Ast.Stmt_analyze None ->
    Catalog.analyze_all t.catalog;
    Message "statistics updated"
  | Ast.Stmt_analyze (Some name) ->
    ignore (Table_store.analyze (find_table t name));
    Catalog.bump_epoch t.catalog;
    Message (Fmt.str "statistics updated for %s" name)
  | Ast.Stmt_set (key, value) -> do_set t key value
  | Ast.Stmt_explain (Ast.Explain_rules, _) -> Message (rules_report t)
  | Ast.Stmt_explain (mode, Ast.Stmt_query wq) -> Message (explain t mode wq)
  | Ast.Stmt_explain
      (_, (Ast.Stmt_insert _ | Ast.Stmt_update _ | Ast.Stmt_delete _ as inner))
    ->
    (* DML under EXPLAIN runs as usual but reports its transaction *)
    let res = run_statement t inner in
    let n = match res with Affected n -> n | _ -> 0 in
    let w = wal t in
    Message
      (Fmt.str "txn %d: %d row(s) affected (wal %s, lsn %d)" t.last_txn n
         (if Wal.enabled w then "on" else "off")
         (Wal.current_lsn w))
  | Ast.Stmt_explain (_, inner) -> run_statement t inner

(* exception classification at the pipeline boundary: every failure
   escaping [run] becomes a structured [Error] carrying its stage, the
   statement text, and a retryable flag.  Asynchronous/fatal exceptions
   (Out_of_memory, Stack_overflow, ...) pass through unclassified. *)
let classify_exn (text : string) (exn : exn) : exn option =
  let mk ?retryable stage msg =
    Some (Error (Err.make ~query:text ?retryable stage msg))
  in
  match exn with
  | Error e | Err.Error e -> Some (Error (Err.with_query text e))
  | Parser.Parse_error (msg, _) -> mk Err.Parse ("parse error: " ^ msg)
  | Sb_hydrogen.Lexer.Lex_error (msg, _) -> mk Err.Parse ("lex error: " ^ msg)
  | Builder.Semantic_error msg | Functions.Function_error msg
  | Catalog.Catalog_error msg ->
    mk Err.Semantic msg
  | Qgm.Qgm_error msg -> mk Err.Rewrite msg
  | Generator.Unsupported msg | Star.Opt_error msg -> mk Err.Optimize msg
  | Value.Type_error msg | Table_store.Constraint_violation msg ->
    mk Err.Exec msg
  | Rule_audit.Unsound msg -> mk Err.Internal ("rule audit: " ^ msg)
  | Plan_check.Invalid_plan msg -> mk Err.Internal ("plan check: " ^ msg)
  | Failure msg -> mk Err.Internal msg
  | Invalid_argument msg -> mk Err.Internal msg
  | _ -> None

(* A simulated crash escaping a statement IS the process death: all
   volatile state — tables, views, buffered pages, the WAL's unflushed
   tail — is discarded atomically, and the failure surfaces as a
   structured Storage error.  Only recovery can bring the instance
   back. *)
let handle_crash t (text : string) (site : string) : exn =
  t.txn_current <- 0;
  t.txn_undo <- [];
  Recovery.crash ~catalog:t.catalog;
  Metrics.incr (Metrics.counter t.metrics "sb_wal_crashes_total");
  Error
    (Err.make ~query:text Err.Storage
       (Fmt.str "simulated crash at %s: volatile state lost, recovery required"
          site))

(** Parses and runs one statement. *)
let run t (text : string) : result =
  try run_statement t (stage t "parse" (fun () -> Parser.statement text)) with
  | Faults.Crashed site -> raise (handle_crash t text site)
  | exn -> (
    match classify_exn text exn with
    | Some classified -> raise classified
    | None -> raise exn)

(** Parses and runs a [;]-separated script, returning each result. *)
let run_script t (text : string) : result list =
  try List.map (run_statement t) (Parser.script text) with
  | Faults.Crashed site -> raise (handle_crash t text site)
  | exn -> (
    match classify_exn text exn with
    | Some classified -> raise classified
    | None -> raise exn)

(* ------------------------------------------------------------------ *)
(* Recovery                                                            *)
(* ------------------------------------------------------------------ *)

(** Rebuilds the database from the stable log: analysis finds the
    committed transactions, redo replays the checkpoint + DDL + their
    updates, and a final ANALYZE refreshes statistics and bumps the
    epoch (cached plans cannot survive a crash).  Logging is suppressed
    for the duration — recovery must not write the history it reads.
    @raise Error (stage [Storage]) when the WAL is disabled: recovery
    without a log is reported, never guessed at. *)
let recover t : Recovery.stats =
  t.txn_current <- 0;
  t.txn_undo <- [];
  t.txn_replaying <- true;
  Fun.protect ~finally:(fun () -> t.txn_replaying <- false) @@ fun () ->
  try
    Recovery.run ~metrics:t.metrics ~catalog:t.catalog
      ~replay_ddl:(fun text ->
        ignore (run_statement t (Parser.statement text)))
      ()
  with Err.Error e -> raise (Error e)

(** Renders a [Rows] result as an aligned table. *)
let render_result ?registry (r : result) : string =
  match r with
  | Message m -> m
  | Affected n -> Fmt.str "%d row(s) affected" n
  | Rows { columns; rows } ->
    let cells =
      columns
      :: List.map
           (fun row ->
             Array.to_list (Array.map (fun v -> Value.to_string ?registry v) row))
           rows
    in
    let ncols = List.length columns in
    let widths = Array.make ncols 0 in
    List.iter
      (List.iteri (fun i s ->
           if i < ncols then widths.(i) <- max widths.(i) (String.length s)))
      cells;
    let line fill =
      "+"
      ^ String.concat "+"
          (Array.to_list (Array.map (fun w -> String.make (w + 2) fill) widths))
      ^ "+"
    in
    let render_row cells_row =
      "|"
      ^ String.concat "|"
          (List.mapi
             (fun i s ->
               Fmt.str " %s%s " s (String.make (widths.(i) - String.length s) ' '))
             cells_row)
      ^ "|"
    in
    String.concat "\n"
      ([ line '-'; render_row columns; line '-' ]
      @ List.map render_row (List.tl cells)
      @ [ line '-'; Fmt.str "%d row(s)" (List.length rows) ])
