(** Shared prepared-plan cache: sharded, LRU, epoch-invalidated.

    Keys are normalized query text (callers may append a settings
    fingerprint); values are prepared plans.  Entries remember the
    catalog/statistics epoch they were compiled at and are dropped on
    mismatch, so DDL and ANALYZE invalidate lazily.  Each shard has its
    own lock, so sessions on different domains rarely contend. *)

type 'a t

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  invalidations : int;
  resident : int;  (** entries currently cached, across all shards *)
}

(** [create ()] is an empty cache of [capacity] total entries spread
    over [shards] independently locked shards.  When [metrics] is given,
    lookups and evictions also drive the
    [sb_plan_cache_{hits,misses,evictions,invalidations}_total]
    counters.
    @raise Invalid_argument if [shards <= 0] or [capacity < shards]. *)
val create : ?shards:int -> ?capacity:int -> ?metrics:Sb_obs.Metrics.t -> unit -> 'a t

(** Normalizes query text so lexically equivalent statements share one
    cache entry: whitespace runs collapse to one space, characters
    outside ['...'] literals fold to lowercase, and a trailing [;] is
    dropped. *)
val normalize : string -> string

(** [find t ~epoch key] is the cached value compiled at [epoch], if any.
    An entry from an older epoch is dropped and counted as an
    invalidation; the lookup reports a miss. *)
val find : 'a t -> epoch:int -> string -> 'a option

(** Inserts (or refreshes) [key], evicting LRU entries over capacity. *)
val add : 'a t -> epoch:int -> string -> 'a -> unit

(** Drops every entry (counters are kept). *)
val clear : 'a t -> unit

val stats : 'a t -> stats
