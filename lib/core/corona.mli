(** Corona, the Starburst query language processor: the full pipeline of
    the paper's Figure 1 — parse → QGM (with semantic analysis) → query
    rewrite → cost-based plan optimization → plan refinement →
    execution — over the Core data manager, in one handle.

    All of this module is re-exported by {!Starburst}, so application
    code normally writes [Starburst.create] / [Starburst.run]. *)

open Sb_storage
module Ast = Sb_hydrogen.Ast
module Parser = Sb_hydrogen.Parser
module Pretty = Sb_hydrogen.Pretty
module Functions = Sb_hydrogen.Functions
module Qgm = Sb_qgm.Qgm
module Builder = Sb_qgm.Builder
module Check = Sb_qgm.Check
module Qgm_print = Sb_qgm.Print
module Rule = Sb_rewrite.Rule
module Engine = Sb_rewrite.Engine
module Base_rules = Sb_rewrite.Base_rules
module Rule_dsl = Sb_ruledsl.Dsl
module Rule_compile = Sb_ruledsl.Compile
module Rule_verify = Sb_ruledsl.Verify
module Rule_builtin = Sb_ruledsl.Builtin
module Plan = Sb_optimizer.Plan
module Star = Sb_optimizer.Star
module Generator = Sb_optimizer.Generator
module Exec = Sb_qes.Exec
module Trace = Sb_obs.Trace
module Metrics = Sb_obs.Metrics
module Plan_check = Sb_verify.Plan_check
module Rule_audit = Sb_verify.Rule_audit
module Lint = Sb_verify.Lint
module Err = Sb_resil.Err
module Limits = Sb_resil.Limits
module Faults = Sb_resil.Faults

(** Every failure escaping {!run} / {!run_script} is a structured
    {!Err.t}: classified by pipeline stage, carrying the statement
    text, and flagged retryable when it was a transient fault. *)
exception Error of Err.t

(** A compiled query: "these two stages may be separated in time, since
    the result of the compilation stage can be stored for future use"
    (section 3).  Host variables are bound at execution time, so one
    prepared plan serves many parameter values. *)
type prepared = {
  prep_text : string;
  prep_columns : string list;
  prep_plan : Plan.plan;
}

(** One database instance.  Fields are exposed for extensions, tests and
    instrumentation; ordinary use goes through the functions below. *)
type t = {
  catalog : Catalog.t;
  plan_cache : prepared Plan_cache.t;
      (** shared when several sessions are created over one catalog *)
  functions : Functions.t;
  builder_cfg : Builder.config;
  rules : Rule.set;
  rule_stats : (string, int * int) Hashtbl.t;
      (** cumulative per-rule (fires, attempts) across the session *)
  mutable dsl_statuses : (string * Rule_verify.status) list;
      (** verification status of every DSL-compiled rule, by name *)
  optimizer : Generator.t;
  exec_db : Exec.db;
  mutable rewrite_enabled : bool;
  mutable rewrite_strategy : Engine.strategy;
  mutable rewrite_search : Engine.search;
  mutable rewrite_budget : int option;
  mutable check_qgm : bool;  (** verify QGM consistency after each rule *)
  mutable paranoid : bool;
      (** sanitizer mode ([STARBURST_PARANOID=1] / [SET paranoid = on]):
          per-firing rule audits ({!Rule_audit.instrument}), plan
          validation after optimization ({!Plan_check.assert_valid}),
          and differential execution of rewritten queries *)
  mutable hosts : (string * Value.t) list;  (** host-variable bindings *)
  mutable last_counters : Exec.counters;
  mutable last_rewrite : Engine.stats option;
  metrics : Metrics.t;
  mutable tracer : Trace.t;  (** {!Trace.noop} unless tracing is on *)
  limits : Limits.t;  (** per-query resource limits (SET limit_<name>) *)
  mutable last_gov : Limits.gov;  (** governor of the current/last query *)
  mutable last_degraded : string option;
      (** why the last statement fell back to a degraded compilation *)
  (* -- durability: every DML statement is an implicit transaction -- *)
  mutable txn_current : int;
      (** transaction id of the in-flight statement; 0 when none *)
  mutable txn_undo : (string * Tuple.t option * Tuple.t option) list;
      (** the statement's logged changes, newest first, for rollback *)
  mutable txn_replaying : bool;
      (** recovery replay in progress: suppress logging and the
          needs-recovery gate *)
  mutable last_txn : int;  (** id of the last committed transaction *)
  mutable wal_checkpoint_every : int;
      (** take a fuzzy checkpoint every N commits ([SET wal_checkpoint]);
          0 disables *)
  mutable commits_since_checkpoint : int;
}

(** Execution outcome of one statement. *)
type result =
  | Rows of { columns : string list; rows : Tuple.t list }
  | Affected of int
  | Message of string

(** A fresh database with the base rule set, the base STAR array, the
    built-in storage managers, access methods and functions installed.
    [limits] seeds the per-query resource governor; when omitted,
    {!Limits.default} with [STARBURST_LIMITS] applied on top.
    [catalog] and [plan_cache] let a multi-session server share one
    database and one compiled-plan cache among per-session handles
    (when omitted, each handle gets its own). *)
val create :
  ?pool_capacity:int ->
  ?limits:Limits.t ->
  ?catalog:Catalog.t ->
  ?plan_cache:prepared Plan_cache.t ->
  unit ->
  t

(** Binds a host-language variable for subsequent executions. *)
val bind_host : t -> string -> Value.t -> unit

(** Execution counters of the most recent query. *)
val counters : t -> Exec.counters

(** Rewrite statistics of the most recent rewritten query. *)
val last_rewrite : t -> Engine.stats option

(** {1 The rule DSL}

    Declarative rewrite rules ({!Sb_ruledsl.Dsl.rule}) are compiled to
    ordinary {!Rule.t}s at registration, after a static verification
    pass: metavariable scoping, then soundness obligations discharged
    through {!Sb_analysis.Prover} under schema-only facts.  A rule is
    [Verified] (all obligations proved), [Conditional] (runtime guards
    auto-inserted for the unproved ones) or [Rejected] (registration
    refused with a counterexample sketch). *)

(** Compiles, verifies and registers a DSL rule; returns its status.
    @raise Error (semantic) when the verifier rejects the rule — the
    message names the failed obligation and the counterexample sketch. *)
val register_dsl_rule : t -> Rule_dsl.rule -> Rule_verify.status

(** Replaces the native predicate/redundant rule families with their
    DSL-compiled ports, in place; rewrite behavior is byte-identical
    (checked differentially by the fuzz oracle's [--rules both] mode). *)
val use_dsl_builtins : t -> unit

(** Cumulative per-rule [(name, (fires, attempts))] rows, sorted by
    name — the input to {!Sb_verify.Lint.lint_rules}. *)
val rule_stats : t -> (string * (int * int)) list

(** The [EXPLAIN RULES] / shell [\rules] report: every registered rule
    with class, priority, origin, verification status and cumulative
    fire/attempt counts, plus dead-rule lints. *)
val rules_report : t -> string

(** {1 Resilience}

    A per-statement resource governor enforces {!limits} cooperatively
    inside QES operator loops and the STAR generator; breaches raise a
    structured [Resource] error naming the limit, leaving the session
    usable.  If rewrite or optimization fails (or blows its budget),
    compilation degrades — un-rewritten plan, or greedy STAR strategy —
    instead of failing the query, and records why. *)

(** The session's limits; mutate directly or via [SET limit_* = n]. *)
val limits : t -> Limits.t

(** The governor of the current (or most recent) statement — its
    {!Limits.consumption} backs the shell's [\limits]. *)
val last_gov : t -> Limits.gov

(** [Some reason] if the last statement's compilation degraded
    (also shown by EXPLAIN as [degraded: <reason>]). *)
val last_degraded : t -> string option

(** Installs a fault-injection plan on storage (catalog lookups,
    buffer-pool pins, index searches); injections and retries are
    counted in {!metrics}. *)
val set_faults : t -> Faults.t -> unit

val faults : t -> Faults.t

(** {1 Observability}

    The pipeline is instrumented with {!Sb_obs} spans and metrics:
    each stage (parse, build, rewrite, optimize, refine, execute) is a
    span and a latency-histogram observation, the rewrite engine records
    one span per rule firing, and the optimizer one per STAR expansion.
    The default tracer is {!Trace.noop}, which costs one branch per
    stage; install a real one with {!set_tracer} or [SET trace = on]. *)

val tracer : t -> Trace.t

(** Installs a tracer on every pipeline layer (Corona stages, rewrite
    engine, STAR evaluator). *)
val set_tracer : t -> Trace.t -> unit

(** The database's metrics registry (stage latencies, per-rule firings,
    execution counters). *)
val metrics : t -> Metrics.t

(** Prometheus-style text dump of {!metrics}. *)
val metrics_dump : t -> string

(** {1 Pipeline stages (exposed for instrumentation and extensions)} *)

val parse : t -> string -> Ast.with_query
val build_qgm : t -> Ast.with_query -> Qgm.t
val rewrite : t -> Qgm.t -> Engine.stats

(** Plan refinement: residual CHOOSE nodes resolve to their first
    alternative and trivial pass-throughs collapse. *)
val refine : Plan.plan -> Plan.plan

(** {!Generator.optimize} / {!refine} wrapped in their stage spans. *)
val optimize : t -> Qgm.t -> Plan.plan

val refine_plan : t -> Plan.plan -> Plan.plan

(** The full compile pipeline (without executing). *)
val compile : ?rewrite_enabled:bool -> t -> Ast.with_query -> Plan.plan

val compile_text : t -> string -> Plan.plan
val run_plan : t -> Plan.plan -> Tuple.t list

(** {1 Queries} *)

(** Runs a query text, returning its rows. *)
val query : t -> string -> Tuple.t list

(** {1 Prepared statements} *)

val prepare : t -> string -> prepared
val execute_prepared : t -> prepared -> Tuple.t list

(** The compile options that qualify a cached plan's reusability —
    appended to the normalized text to form the plan-cache key. *)
val settings_fingerprint : t -> string

(** The plan-cache key for [text] under the session's current options:
    [Plan_cache.normalize text] plus {!settings_fingerprint}. *)
val plan_cache_key : t -> string -> string

(** Like {!query}, but caches the compiled plan, keyed on normalized
    query text plus {!settings_fingerprint}.  Entries remember the
    catalog/statistics epoch they were compiled at, so DDL and ANALYZE —
    from this session or any other sharing the catalog — invalidate them
    lazily; eviction is LRU.  A degraded compilation runs but is never
    cached. *)
val cached_query : t -> string -> Tuple.t list

val clear_plan_cache : t -> unit

(** Hit/miss/eviction/invalidation counters and resident-entry count of
    the session's (possibly shared) plan cache. *)
val plan_cache_stats : t -> Plan_cache.stats

(** {1 Statements} *)

(** Renders EXPLAIN output for a query at the given stage(s).
    [Explain_analyze] additionally executes the plan and prints
    per-operator estimated vs. actual rows and inclusive time, plus
    per-stage wall-clock timings. *)
val explain : t -> Ast.explain_mode -> Ast.with_query -> string

(** The [EXPLAIN ANALYZE] renderer (also reachable via {!explain}). *)
val explain_analyze : t -> Ast.with_query -> string

(** The [EXPLAIN ANALYSIS] renderer (also reachable via {!explain} and
    the shell's [\infer]): the semantic analysis of the rewritten QGM —
    inferred per-box column properties (nullability, value ranges),
    derived keys, row bounds, provable emptiness, the prover-backed
    lint findings, and the plan with inference-tightened estimates. *)
val explain_analysis : t -> Ast.with_query -> string

(** The [EXPLAIN VERIFY] renderer (also reachable via {!explain} and the
    shell's [\check]): QGM consistency before/after rewrite with every
    firing audited, lints, plan validation against the catalog, and
    differential execution of the un-rewritten vs. rewritten
    compilation. *)
val explain_verify : t -> Ast.with_query -> string

val run_statement : t -> Ast.statement -> result

(** The exception classifier used at the {!run} boundary: [Some (Error e)]
    with the pipeline stage and statement text filled in, or [None] for
    asynchronous/fatal exceptions that must pass through unclassified.
    Exposed so alternative front ends (the multi-session server) report
    the same structured errors as {!run}. *)
val classify_exn : string -> exn -> exn option

(** Parses and runs one statement.
    @raise Error on parse, semantic, planning or execution failures. *)
val run : t -> string -> result

(** Parses and runs a [;]-separated script. *)
val run_script : t -> string -> result list

(** {1 Durability}

    Every DML statement runs as an implicit transaction over the
    instance's write-ahead log ({!Catalog.t.wal}): value-based
    before/after images per changed row, Commit + log force on success
    (group commit — one force covers everything queued before it),
    rollback + Abort on failure.  DDL auto-commits as logged statement
    text.  A simulated crash ({!Faults.Crashed} escaping a statement)
    atomically discards all volatile state; {!recover} rebuilds exactly
    the committed prefix.  [SET wal = off] disables logging,
    [SET wal_checkpoint = n] checkpoints every n commits,
    [SET wal_force_pages = on] flushes dirty pages at commit. *)

(** The WAL's counters and state, backing the shell's [\wal]. *)
val wal_stats : t -> Wal.stats

(** Id of the most recently committed transaction (0 if none). *)
val last_txn : t -> int

(** Rebuilds the database from the stable log (analysis + redo of
    committed transactions), refreshes statistics, bumps the catalog
    epoch and clears the needs-recovery flag.
    @raise Error (stage [Storage]) when the WAL is disabled. *)
val recover : t -> Recovery.stats

(** Renders a result as an aligned text table. *)
val render_result : ?registry:Datatype.registry -> result -> string
