(** Starburst: an extensible relational DBMS after Haas, Freytag, Lohman
    and Pirahesh, "Extensible Query Processing in Starburst" (SIGMOD
    1989).

    {!Corona} is the query language processor (the full compile-and-
    execute pipeline); {!Extension} is the database customizer's (DBC's)
    interface for extending the language, the data manager, query
    rewrite, the optimizer and the query evaluation system.  All of
    Corona's operations are re-exported here, so [Starburst.create] and
    [Starburst.run] are the two calls a quickstart needs. *)

module Corona = Corona
module Extension = Extension
module Plan_cache = Plan_cache
include Corona
